// Package trace records per-traversal-execution spans on each backend
// server — the observable form of the paper's §IV-C status-and-progress
// tracing. The coordinator ledger already logs every execution's creation
// and termination to detect quiescence; this package captures *what each
// execution did* on its way to termination: which step it served, how many
// frontier entries it carried, how long those entries waited in the shared
// executor queue, how the traversal-affiliate cache and execution merging
// disposed of them, and how long the execution lived on its server.
//
// Spans are buffered in a fixed-capacity ring per server (old spans are
// evicted, never blocking the engine) and aggregated on demand into
// per-(step, server) cost breakdowns — the per-operator profiling that
// traversal engines like GRAPHITE and the Gremlin traversal machine treat
// as a first-class primitive. Because exactly one span is recorded per
// terminated execution, span counts double as a cross-check of the
// ledger's quiescence accounting: for a cleanly completed traversal, the
// spans recorded across the cluster equal the executions the ledger saw
// created and terminated.
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Span is one completed traversal execution, as observed by the server
// that ran it. The per-entry disposition counts satisfy the same §VII-A
// identity as the server counters: Redundant + Combined + Real ==
// Frontier for executions that processed normally.
type Span struct {
	// Travel is the cluster-wide traversal id.
	Travel uint64 `json:"travel"`
	// Exec is the execution id registered in the coordinator ledger.
	Exec uint64 `json:"exec"`
	// Parent is the ledger id of the execution whose outputs created this
	// one — the causal edge the DAG assembler joins on. Zero marks a root
	// execution (client submission or seed scan): real execution ids carry
	// a nonzero server tag, so zero is unambiguous.
	Parent uint64 `json:"parent,omitempty"`
	// Server ran the execution.
	Server int32 `json:"server"`
	// Step is the traversal step the execution served.
	Step int32 `json:"step"`
	// Frontier is the number of entries the execution carried.
	Frontier int `json:"frontier"`
	// Redundant entries were dropped by the traversal-affiliate cache.
	Redundant int `json:"redundant"`
	// Combined entries were served by another entry's merged disk access.
	Combined int `json:"combined"`
	// Real entries triggered a storage access of their own.
	Real int `json:"real"`
	// QueueWaitNs is the worst enqueue→pop wait among the execution's
	// entries in the shared executor queue.
	QueueWaitNs int64 `json:"queue_wait_ns"`
	// WallNs is the execution's creation→termination time on this server,
	// queue wait included.
	WallNs int64 `json:"wall_ns"`
	// StartNs is the execution's creation time as unix nanoseconds, so
	// spans gathered from several servers order on one timeline (the
	// in-process fabric and single-host TCP deployments share a clock;
	// cross-host skew shows up as negative parent→child gaps, which the
	// assembler clamps).
	StartNs int64 `json:"start_ns"`
	// FetchNs is time spent in storage vertex fetches (the merged disk
	// access of §V-B), attributed to the group head that paid it.
	FetchNs int64 `json:"fetch_ns,omitempty"`
	// FilterNs is time spent evaluating step predicates.
	FilterNs int64 `json:"filter_ns,omitempty"`
	// ScanNs is time spent iterating next-step edges, dispatch buffering
	// included (DispatchNs is the contained sub-phase).
	ScanNs int64 `json:"scan_ns,omitempty"`
	// DispatchNs is time spent buffering frontier dispatches toward their
	// owners — the fan-out cost. A sub-interval of ScanNs, not additive
	// with it.
	DispatchNs int64 `json:"dispatch_ns,omitempty"`
	// Err is the first failure the execution observed, if any.
	Err string `json:"err,omitempty"`
}

// EndNs is the span's termination time as unix nanoseconds.
func (s Span) EndNs() int64 { return s.StartNs + s.WallNs }

// Builder accumulates one in-flight execution's span. All methods are safe
// for concurrent use — merged scheduler groups let several workers touch
// the same execution — and are no-ops on a nil receiver, so the engine can
// run with tracing disabled without branching at every call site.
type Builder struct {
	travel   uint64
	exec     uint64
	parent   uint64
	server   int32
	step     int32
	frontier int
	start    time.Time

	redundant  atomic.Int64
	combined   atomic.Int64
	real       atomic.Int64
	waitNs     atomic.Int64
	fetchNs    atomic.Int64
	filterNs   atomic.Int64
	scanNs     atomic.Int64
	dispatchNs atomic.Int64
	err        atomic.Pointer[string]
}

// Begin starts a span for an execution of `frontier` entries created by
// `parent` (zero for roots).
func Begin(travel, exec, parent uint64, server, step int32, frontier int) *Builder {
	return &Builder{
		travel: travel, exec: exec, parent: parent, server: server,
		step: step, frontier: frontier, start: time.Now(),
	}
}

// AddRedundant counts n cache-eliminated entries.
func (b *Builder) AddRedundant(n int) {
	if b != nil {
		b.redundant.Add(int64(n))
	}
}

// AddCombined counts n merge-served entries.
func (b *Builder) AddCombined(n int) {
	if b != nil {
		b.combined.Add(int64(n))
	}
}

// AddReal counts n entries that paid a real storage access.
func (b *Builder) AddReal(n int) {
	if b != nil {
		b.real.Add(int64(n))
	}
}

// ObserveWait records one entry's enqueue→pop wait, keeping the maximum.
func (b *Builder) ObserveWait(d time.Duration) {
	if b == nil || d <= 0 {
		return
	}
	for {
		cur := b.waitNs.Load()
		if int64(d) <= cur || b.waitNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// AddFetch accumulates storage vertex-fetch time.
func (b *Builder) AddFetch(d time.Duration) {
	if b != nil {
		b.fetchNs.Add(int64(d))
	}
}

// AddFilter accumulates step-predicate evaluation time.
func (b *Builder) AddFilter(d time.Duration) {
	if b != nil {
		b.filterNs.Add(int64(d))
	}
}

// AddScan accumulates next-step edge-scan time (dispatch buffering
// included).
func (b *Builder) AddScan(d time.Duration) {
	if b != nil {
		b.scanNs.Add(int64(d))
	}
}

// AddDispatch accumulates dispatch fan-out (outbox buffering) time.
func (b *Builder) AddDispatch(d time.Duration) {
	if b != nil {
		b.dispatchNs.Add(int64(d))
	}
}

// Fail records the execution's failure; the first recorded message wins.
func (b *Builder) Fail(msg string) {
	if b != nil {
		b.err.CompareAndSwap(nil, &msg)
	}
}

// Finish seals the builder into an immutable Span. Call it exactly once,
// when the execution terminates.
func (b *Builder) Finish() Span {
	s := Span{
		Travel: b.travel, Exec: b.exec, Parent: b.parent,
		Server: b.server, Step: b.step,
		Frontier:    b.frontier,
		Redundant:   int(b.redundant.Load()),
		Combined:    int(b.combined.Load()),
		Real:        int(b.real.Load()),
		QueueWaitNs: b.waitNs.Load(),
		WallNs:      int64(time.Since(b.start)),
		StartNs:     b.start.UnixNano(),
		FetchNs:     b.fetchNs.Load(),
		FilterNs:    b.filterNs.Load(),
		ScanNs:      b.scanNs.Load(),
		DispatchNs:  b.dispatchNs.Load(),
	}
	if e := b.err.Load(); e != nil {
		s.Err = *e
	}
	return s
}

// TravelSummary is the coordinator's end-of-traversal trace record,
// written when the ledger retires: the quiescence accounting (created and
// terminated execution totals) plus the outcome. Created == Ended for a
// cleanly completed traversal; the recorded span count across the cluster
// should match both.
type TravelSummary struct {
	// Travel is the traversal id.
	Travel uint64 `json:"travel"`
	// Mode names the engine that ran the traversal.
	Mode string `json:"mode"`
	// Coordinator is the backend that kept the ledger.
	Coordinator int32 `json:"coordinator"`
	// Created is the total executions registered over the traversal's life.
	Created int `json:"created"`
	// Ended is the total executions that reported termination.
	Ended int `json:"ended"`
	// Results is the number of distinct vertices returned.
	Results int `json:"results"`
	// Err is the traversal's failure, if it did not complete cleanly.
	Err string `json:"err,omitempty"`
	// ElapsedNs is ledger creation → retirement at the coordinator.
	ElapsedNs int64 `json:"elapsed_ns"`
}

// StepStat is one row of an aggregated trace: every span of one step on
// one server, summed. Server == -1 after MergeSteps folds servers together.
type StepStat struct {
	Step      int32 `json:"step"`
	Server    int32 `json:"server"`
	Execs     int   `json:"execs"`
	Frontier  int   `json:"frontier"`
	Redundant int   `json:"redundant"`
	Combined  int   `json:"combined"`
	Real      int   `json:"real"`
	// MaxQueueWaitNs is the worst entry wait across the rolled-up spans.
	MaxQueueWaitNs int64 `json:"max_queue_wait_ns"`
	// WallNs sums the rolled-up spans' wall times.
	WallNs int64 `json:"wall_ns"`
	// MaxWallNs is the slowest single execution — the straggler signal.
	MaxWallNs int64 `json:"max_wall_ns"`
	// Errs counts spans that recorded a failure.
	Errs int `json:"errs,omitempty"`
}

func (st *StepStat) add(s Span) {
	st.Execs++
	st.Frontier += s.Frontier
	st.Redundant += s.Redundant
	st.Combined += s.Combined
	st.Real += s.Real
	st.MaxQueueWaitNs = max(st.MaxQueueWaitNs, s.QueueWaitNs)
	st.WallNs += s.WallNs
	st.MaxWallNs = max(st.MaxWallNs, s.WallNs)
	if s.Err != "" {
		st.Errs++
	}
}

func (st *StepStat) merge(o StepStat) {
	st.Execs += o.Execs
	st.Frontier += o.Frontier
	st.Redundant += o.Redundant
	st.Combined += o.Combined
	st.Real += o.Real
	st.MaxQueueWaitNs = max(st.MaxQueueWaitNs, o.MaxQueueWaitNs)
	st.WallNs += o.WallNs
	st.MaxWallNs = max(st.MaxWallNs, o.MaxWallNs)
	st.Errs += o.Errs
}

// Aggregate rolls spans up into per-(step, server) rows, sorted by step
// then server — the per-operator cost breakdown of a traversal.
func Aggregate(spans []Span) []StepStat {
	type key struct {
		step   int32
		server int32
	}
	byKey := make(map[key]*StepStat)
	for _, s := range spans {
		k := key{s.Step, s.Server}
		st, ok := byKey[k]
		if !ok {
			st = &StepStat{Step: s.Step, Server: s.Server}
			byKey[k] = st
		}
		st.add(s)
	}
	out := make([]StepStat, 0, len(byKey))
	for _, st := range byKey {
		out = append(out, *st)
	}
	sortStats(out)
	return out
}

// MergeSteps folds per-(step, server) rows — possibly gathered from
// several servers — into one row per step with Server == -1.
func MergeSteps(stats []StepStat) []StepStat {
	byStep := make(map[int32]*StepStat)
	for _, st := range stats {
		m, ok := byStep[st.Step]
		if !ok {
			m = &StepStat{Step: st.Step, Server: -1}
			byStep[st.Step] = m
		}
		m.merge(st)
	}
	out := make([]StepStat, 0, len(byStep))
	for _, st := range byStep {
		out = append(out, *st)
	}
	sortStats(out)
	return out
}

// Sort orders rows by step then server — the canonical display order for
// rows concatenated from several servers' responses.
func Sort(stats []StepStat) { sortStats(stats) }

func sortStats(stats []StepStat) {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Step != stats[j].Step {
			return stats[i].Step < stats[j].Step
		}
		return stats[i].Server < stats[j].Server
	})
}
