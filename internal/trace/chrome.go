package trace

import (
	"encoding/json"
	"strconv"
)

// Chrome trace_event export: an assembled DAG rendered as the JSON object
// format consumed by about:tracing and Perfetto. Each server becomes a
// process row, each traversal step a thread row within it, each execution
// a complete ("X") slice, and each parent→child edge a flow arrow
// ("s"/"f" pair) from the parent's end to the child's start — the causal
// fan-out drawn over the timeline.
//
// Timestamps and durations are microseconds (the format's unit), rebased
// to the earliest span so the viewer opens at t=0.

// chromeEvent is one trace_event record. Fields follow the Trace Event
// Format's short names; Dur/TS are float64 so sub-microsecond spans do not
// collapse to zero-width slices.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Meta        map[string]any `json:"otherData,omitempty"`
}

// ChromeTrace renders the DAG as trace_event JSON.
func (d *DAG) ChromeTrace() ([]byte, error) {
	doc := chromeDoc{
		TraceEvents: make([]chromeEvent, 0, 3*len(d.Nodes)),
		Meta:        map[string]any{"travel": d.Travel},
	}
	if d.Summary != nil {
		doc.Meta["mode"] = d.Summary.Mode
		doc.Meta["created"] = d.Summary.Created
		doc.Meta["elapsed_ns"] = d.Summary.ElapsedNs
	}
	var base int64
	seenProc := make(map[int32]bool)
	for i, n := range d.Nodes {
		if i == 0 || n.StartNs < base {
			base = n.StartNs
		}
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	onPath := make(map[uint64]bool)
	if d.CriticalPath != nil {
		for _, h := range d.CriticalPath.Hops {
			onPath[h.Exec] = true
		}
	}
	for _, n := range d.Nodes {
		if !seenProc[n.Server] {
			seenProc[n.Server] = true
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: int64(n.Server),
				Args: map[string]any{"name": "server " + itoa(int64(n.Server))},
			})
		}
		cat := "exec"
		if onPath[n.Exec] {
			cat = "exec,critical"
		}
		dur := us(n.WallNs)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "step " + itoa(int64(n.Step)), Phase: "X", Cat: cat,
			TS: us(n.StartNs - base), Dur: &dur,
			PID: int64(n.Server), TID: int64(n.Step),
			Args: map[string]any{
				"exec": n.Exec, "parent": n.Parent,
				"frontier": n.Frontier, "redundant": n.Redundant,
				"combined": n.Combined, "real": n.Real,
				"queue_wait_ns": n.QueueWaitNs, "err": n.Err,
			},
		})
	}
	// Flow arrows need the parent's coordinates, so a second pass over the
	// joined map.
	byExec := make(map[uint64]*DAGNode, len(d.Nodes))
	for i := range d.Nodes {
		byExec[d.Nodes[i].Exec] = &d.Nodes[i]
	}
	for _, n := range d.Nodes {
		p, ok := byExec[n.Parent]
		if n.Parent == 0 || !ok {
			continue
		}
		id := strconv.FormatUint(n.Exec, 10)
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "dispatch", Phase: "s", Cat: "flow", ID: id,
			TS: us(p.EndNs() - base), PID: int64(p.Server), TID: int64(p.Step),
		}, chromeEvent{
			Name: "dispatch", Phase: "f", Cat: "flow", ID: id, BP: "e",
			TS: us(max(n.StartNs, p.EndNs()) - base), PID: int64(n.Server), TID: int64(n.Step),
		})
	}
	return json.Marshal(doc)
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
