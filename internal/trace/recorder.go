package trace

// summaryCap bounds the per-server history of coordinator travel
// summaries. Summaries are tiny and one-per-traversal, so a short history
// suffices for the observability endpoints.
const summaryCap = 512

// RingStats describes a recorder's buffering state, for the /metrics
// endpoint: how many spans were ever recorded, how many are still
// buffered, and how many the ring evicted (a nonzero eviction count warns
// that aggregations over old traversals may be incomplete).
type RingStats struct {
	SpansRecorded uint64 `json:"spans_recorded"`
	SpansBuffered int    `json:"spans_buffered"`
	SpansEvicted  uint64 `json:"spans_evicted"`
	Summaries     int    `json:"summaries"`
}

// Recorder is one server's trace sink: a span ring plus a travel-summary
// ring (populated only on servers that coordinate traversals). A nil
// Recorder is valid and discards everything — the disabled state.
type Recorder struct {
	spans     *Ring[Span]
	summaries *Ring[TravelSummary]
}

// NewRecorder creates a recorder buffering up to spanCap spans.
func NewRecorder(spanCap int) *Recorder {
	return &Recorder{
		spans:     NewRing[Span](spanCap),
		summaries: NewRing[TravelSummary](summaryCap),
	}
}

// RecordSpan buffers one completed execution's span.
func (r *Recorder) RecordSpan(s Span) {
	if r != nil {
		r.spans.Record(s)
	}
}

// RecordSummary buffers one retired traversal's coordinator summary.
func (r *Recorder) RecordSummary(s TravelSummary) {
	if r != nil {
		r.summaries.Record(s)
	}
}

// Spans returns the buffered spans for one traversal, oldest first;
// travel == 0 selects every buffered span.
func (r *Recorder) Spans(travel uint64) []Span {
	if r == nil {
		return nil
	}
	if travel == 0 {
		return r.spans.Snapshot()
	}
	return r.spans.Filter(func(s Span) bool { return s.Travel == travel })
}

// Summaries returns the buffered travel summaries, oldest first.
func (r *Recorder) Summaries() []TravelSummary {
	if r == nil {
		return nil
	}
	return r.summaries.Snapshot()
}

// Summary returns the summary for one traversal, if still buffered.
func (r *Recorder) Summary(travel uint64) (TravelSummary, bool) {
	if r == nil {
		return TravelSummary{}, false
	}
	match := r.summaries.Filter(func(s TravelSummary) bool { return s.Travel == travel })
	if len(match) == 0 {
		return TravelSummary{}, false
	}
	return match[len(match)-1], true
}

// Stats reports the recorder's buffering counters.
func (r *Recorder) Stats() RingStats {
	if r == nil {
		return RingStats{}
	}
	return RingStats{
		SpansRecorded: r.spans.Total(),
		SpansBuffered: r.spans.Len(),
		SpansEvicted:  r.spans.Evicted(),
		Summaries:     r.summaries.Len(),
	}
}
