package trace

import "sync"

// Ring is a fixed-capacity, concurrency-safe ring buffer: recording never
// blocks and never grows, the engine's requirement for always-on tracing.
// When full, the oldest element is overwritten (evicted).
type Ring[T any] struct {
	mu    sync.Mutex
	buf   []T
	cap   int
	next  int    // slot the next Record writes
	total uint64 // elements ever recorded
}

// NewRing creates a ring holding up to capacity elements (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{cap: capacity}
}

// Record appends v, evicting the oldest element when full.
func (r *Ring[T]) Record(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next] = v
	}
	r.next = (r.next + 1) % r.cap
	r.total++
}

// Snapshot copies the buffered elements, oldest first.
func (r *Ring[T]) Snapshot() []T {
	return r.Filter(func(T) bool { return true })
}

// Filter copies the buffered elements that satisfy keep, oldest first.
func (r *Ring[T]) Filter(keep func(T) bool) []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, len(r.buf))
	start := 0
	if len(r.buf) == r.cap {
		start = r.next // buffer full: oldest element sits at next
	}
	for i := 0; i < len(r.buf); i++ {
		v := r.buf[(start+i)%len(r.buf)]
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}

// Len reports the number of buffered elements.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total reports the number of elements ever recorded.
func (r *Ring[T]) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Evicted reports how many recorded elements have been overwritten.
func (r *Ring[T]) Evicted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}
