package trace

import (
	"encoding/json"
	"testing"
)

// dagSpans is a small hand-built traversal: one root fanning out to two
// children on another server, one of which dispatches a grandchild.
//
//	100 (srv 0, step 0, 1000..1050)
//	├── 200 (srv 1, step 1, 1100..1130, queue wait 10)
//	│    └── 400 (srv 0, step 2, 1150..1190)
//	└── 300 (srv 1, step 1, 1060..1260)   <- slowest chain end
func dagSpans() []Span {
	return []Span{
		{Travel: 7, Exec: 100, Parent: 0, Server: 0, Step: 0, StartNs: 1000, WallNs: 50},
		{Travel: 7, Exec: 200, Parent: 100, Server: 1, Step: 1, StartNs: 1100, WallNs: 30, QueueWaitNs: 10},
		{Travel: 7, Exec: 300, Parent: 100, Server: 1, Step: 1, StartNs: 1060, WallNs: 200},
		{Travel: 7, Exec: 400, Parent: 200, Server: 0, Step: 2, StartNs: 1150, WallNs: 40},
	}
}

func TestAssembleJoinsSpans(t *testing.T) {
	spans := append(dagSpans(),
		Span{Travel: 9, Exec: 555, Parent: 0, Server: 0, StartNs: 1, WallNs: 1}, // other travel: ignored
	)
	d := Assemble(7, spans, &TravelSummary{Travel: 7, Created: 4, Ended: 4, ElapsedNs: 400})
	if len(d.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(d.Nodes))
	}
	if len(d.Roots) != 1 || d.Roots[0] != 100 {
		t.Fatalf("roots = %v, want [100]", d.Roots)
	}
	if len(d.Orphans) != 0 || len(d.Duplicates) != 0 {
		t.Fatalf("orphans %v duplicates %v, want none", d.Orphans, d.Duplicates)
	}
	if !d.Complete() {
		t.Fatal("Complete() = false for a clean 4-exec trace with Created=4")
	}
	// Nodes sort by StartNs: 100, 300, 200, 400.
	wantOrder := []uint64{100, 300, 200, 400}
	for i, w := range wantOrder {
		if d.Nodes[i].Exec != w {
			t.Fatalf("node[%d] = %d, want %d", i, d.Nodes[i].Exec, w)
		}
	}
	// Root 100's children sorted ascending.
	for _, n := range d.Nodes {
		if n.Exec == 100 {
			if len(n.Children) != 2 || n.Children[0] != 200 || n.Children[1] != 300 {
				t.Fatalf("children of 100 = %v, want [200 300]", n.Children)
			}
		}
	}
}

func TestCriticalPathPicksSlowestChain(t *testing.T) {
	d := Assemble(7, dagSpans(), nil)
	cp := d.CriticalPath
	if cp == nil {
		t.Fatal("no critical path")
	}
	// Slowest endpoint is 300: end 1260 - root start 1000 = 260. (Exec 400
	// ends at 1190; exec 200 at 1130.)
	if cp.Root != 100 || cp.Leaf != 300 || cp.DurationNs != 260 {
		t.Fatalf("critical path root=%d leaf=%d dur=%d, want 100/300/260", cp.Root, cp.Leaf, cp.DurationNs)
	}
	if len(cp.Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(cp.Hops))
	}
	// Hop attribution: root has no gap; 300 starts at 1060, 10ns after the
	// parent's end (1050).
	if h := cp.Hops[0]; h.Exec != 100 || h.GapNs != 0 || h.ComputeNs != 50 {
		t.Fatalf("hop[0] = %+v, want exec 100, gap 0, compute 50", h)
	}
	if h := cp.Hops[1]; h.Exec != 300 || h.GapNs != 10 || h.ComputeNs != 200 {
		t.Fatalf("hop[1] = %+v, want exec 300, gap 10, compute 200", h)
	}
	// Every chain is at least as long as its own node's wall time, and the
	// critical path dominates them all.
	for _, ch := range d.TopChains(0) {
		if ch.DurationNs > cp.DurationNs {
			t.Fatalf("chain to %d (%dns) exceeds critical path (%dns)", ch.Leaf, ch.DurationNs, cp.DurationNs)
		}
	}
}

func TestHopComputeNetOfQueueWait(t *testing.T) {
	d := Assemble(7, dagSpans(), nil)
	for _, ch := range d.TopChains(0) {
		for _, h := range ch.Hops {
			if h.Exec == 200 {
				if h.QueueNs != 10 || h.ComputeNs != 20 {
					t.Fatalf("hop 200 queue=%d compute=%d, want 10/20", h.QueueNs, h.ComputeNs)
				}
				return
			}
		}
	}
	t.Fatal("no chain visited exec 200")
}

func TestAssembleReportsOrphansAndDuplicates(t *testing.T) {
	spans := dagSpans()
	spans = append(spans,
		Span{Travel: 7, Exec: 500, Parent: 999, Server: 1, Step: 3, StartNs: 1300, WallNs: 5}, // parent unknown
		Span{Travel: 7, Exec: 200, Parent: 100, Server: 1, Step: 1, StartNs: 2000, WallNs: 1}, // duplicate exec id
	)
	d := Assemble(7, spans, &TravelSummary{Travel: 7, Created: 5, Ended: 5})
	if len(d.Orphans) != 1 || d.Orphans[0] != 500 {
		t.Fatalf("orphans = %v, want [500]", d.Orphans)
	}
	if len(d.Duplicates) != 1 || d.Duplicates[0] != 200 {
		t.Fatalf("duplicates = %v, want [200]", d.Duplicates)
	}
	// The orphan still anchors a subtree: it is also a root.
	if len(d.Roots) != 2 {
		t.Fatalf("roots = %v, want [100 500]", d.Roots)
	}
	if d.Complete() {
		t.Fatal("Complete() = true despite orphan and duplicate")
	}
	// Duplicate keeps the first span seen.
	for _, n := range d.Nodes {
		if n.Exec == 200 && n.StartNs != 1100 {
			t.Fatalf("duplicate resolution kept StartNs %d, want first span's 1100", n.StartNs)
		}
	}
}

func TestCompleteRequiresSummaryMatch(t *testing.T) {
	if d := Assemble(7, dagSpans(), nil); d.Complete() {
		t.Fatal("Complete() without a summary")
	}
	if d := Assemble(7, dagSpans(), &TravelSummary{Travel: 7, Created: 9}); d.Complete() {
		t.Fatal("Complete() with Created=9 but only 4 spans")
	}
}

func TestTopChainsOrderAndLimit(t *testing.T) {
	d := Assemble(7, dagSpans(), nil)
	all := d.TopChains(0)
	if len(all) != 4 {
		t.Fatalf("TopChains(0) = %d chains, want one per node", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].DurationNs > all[i-1].DurationNs {
			t.Fatalf("chains not descending at %d: %d > %d", i, all[i].DurationNs, all[i-1].DurationNs)
		}
	}
	top2 := d.TopChains(2)
	if len(top2) != 2 || top2[0].Leaf != 300 || top2[1].Leaf != 400 {
		t.Fatalf("TopChains(2) leaves = %v, want [300 400]", []uint64{top2[0].Leaf, top2[1].Leaf})
	}
}

func TestAssembleEmpty(t *testing.T) {
	d := Assemble(7, nil, nil)
	if len(d.Nodes) != 0 || d.CriticalPath != nil || d.Complete() {
		t.Fatalf("empty assemble produced nodes=%d critical=%v", len(d.Nodes), d.CriticalPath)
	}
}

func TestChromeTraceFormat(t *testing.T) {
	d := Assemble(7, dagSpans(), &TravelSummary{Travel: 7, Mode: "GraphTrek", Created: 4, Ended: 4, ElapsedNs: 400})
	buf, err := d.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Meta        map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.Meta["mode"] != "GraphTrek" {
		t.Fatalf("otherData.mode = %v", doc.Meta["mode"])
	}
	var slices, meta, flowStarts, flowEnds int
	minTS := 1e18
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			slices++
			ts := ev["ts"].(float64)
			if ts < minTS {
				minTS = ts
			}
		case "M":
			meta++
		case "s":
			flowStarts++
		case "f":
			flowEnds++
		default:
			t.Fatalf("unexpected phase %q in %v", ph, ev)
		}
	}
	if slices != 4 {
		t.Fatalf("slices = %d, want 4", slices)
	}
	if meta != 2 { // two servers -> two process_name records
		t.Fatalf("metadata events = %d, want 2", meta)
	}
	// Three parent->child edges, one s/f pair each.
	if flowStarts != 3 || flowEnds != 3 {
		t.Fatalf("flow events = %d/%d, want 3/3", flowStarts, flowEnds)
	}
	if minTS != 0 {
		t.Fatalf("earliest slice ts = %v, want rebased to 0", minTS)
	}
}
