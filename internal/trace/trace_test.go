package trace

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestBuilderLifecycle(t *testing.T) {
	b := Begin(7, 42, 9, 3, 2, 10)
	b.AddRedundant(4)
	b.AddCombined(5)
	b.AddReal(1)
	b.ObserveWait(3 * time.Millisecond)
	b.ObserveWait(9 * time.Millisecond)
	b.ObserveWait(time.Millisecond) // smaller: must not lower the max
	s := b.Finish()

	if s.Travel != 7 || s.Exec != 42 || s.Parent != 9 || s.Server != 3 || s.Step != 2 {
		t.Errorf("identity fields wrong: %+v", s)
	}
	if s.Frontier != 10 || s.Redundant != 4 || s.Combined != 5 || s.Real != 1 {
		t.Errorf("disposition counts wrong: %+v", s)
	}
	if s.Redundant+s.Combined+s.Real != s.Frontier {
		t.Errorf("span identity violated: %+v", s)
	}
	if s.QueueWaitNs != int64(9*time.Millisecond) {
		t.Errorf("QueueWaitNs = %d, want max of observations", s.QueueWaitNs)
	}
	if s.WallNs <= 0 {
		t.Errorf("WallNs = %d, want > 0", s.WallNs)
	}
	if s.Err != "" {
		t.Errorf("unexpected err %q", s.Err)
	}
}

func TestBuilderFailFirstWins(t *testing.T) {
	b := Begin(1, 1, 0, 0, 0, 1)
	b.Fail("first")
	b.Fail("second")
	if s := b.Finish(); s.Err != "first" {
		t.Errorf("Err = %q, want first recorded failure", s.Err)
	}
}

func TestNilBuilderIsSafe(t *testing.T) {
	var b *Builder
	b.AddRedundant(1)
	b.AddCombined(1)
	b.AddReal(1)
	b.ObserveWait(time.Second)
	b.Fail("x") // must not panic
}

func TestBuilderConcurrentAttribution(t *testing.T) {
	b := Begin(1, 1, 0, 0, 0, 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				b.AddCombined(1)
				b.ObserveWait(time.Duration(i*8+j) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	s := b.Finish()
	if s.Combined != 64 {
		t.Errorf("Combined = %d, want 64", s.Combined)
	}
	if s.QueueWaitNs != int64(63*time.Microsecond) {
		t.Errorf("QueueWaitNs = %d, want the max observation", s.QueueWaitNs)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing[int](4)
	for i := 1; i <= 10; i++ {
		r.Record(i)
	}
	if got := r.Snapshot(); !reflect.DeepEqual(got, []int{7, 8, 9, 10}) {
		t.Errorf("Snapshot = %v, want newest 4 oldest-first", got)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d", r.Total())
	}
	if r.Evicted() != 6 {
		t.Errorf("Evicted = %d", r.Evicted())
	}
}

func TestRingPartiallyFull(t *testing.T) {
	r := NewRing[string](8)
	r.Record("a")
	r.Record("b")
	if got := r.Snapshot(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Snapshot = %v", got)
	}
	if r.Evicted() != 0 {
		t.Errorf("Evicted = %d, want 0", r.Evicted())
	}
}

func TestRingDegenerateCapacity(t *testing.T) {
	r := NewRing[int](0) // clamped to 1
	r.Record(1)
	r.Record(2)
	if got := r.Snapshot(); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Snapshot = %v", got)
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing[int](8)
	for i := 0; i < 8; i++ {
		r.Record(i)
	}
	got := r.Filter(func(v int) bool { return v%2 == 0 })
	if !reflect.DeepEqual(got, []int{0, 2, 4, 6}) {
		t.Errorf("Filter = %v", got)
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing[int](128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(i)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Errorf("Total = %d, want 800", r.Total())
	}
	if r.Len() != 128 {
		t.Errorf("Len = %d, want capacity", r.Len())
	}
}

func TestAggregate(t *testing.T) {
	spans := []Span{
		{Travel: 1, Step: 0, Server: 0, Frontier: 3, Real: 3, QueueWaitNs: 5, WallNs: 10},
		{Travel: 1, Step: 0, Server: 0, Frontier: 2, Redundant: 1, Real: 1, QueueWaitNs: 9, WallNs: 30},
		{Travel: 1, Step: 0, Server: 1, Frontier: 4, Combined: 3, Real: 1, WallNs: 20},
		{Travel: 1, Step: 1, Server: 0, Frontier: 1, Real: 1, WallNs: 7, Err: "boom"},
	}
	got := Aggregate(spans)
	want := []StepStat{
		{Step: 0, Server: 0, Execs: 2, Frontier: 5, Redundant: 1, Real: 4, MaxQueueWaitNs: 9, WallNs: 40, MaxWallNs: 30},
		{Step: 0, Server: 1, Execs: 1, Frontier: 4, Combined: 3, Real: 1, WallNs: 20, MaxWallNs: 20},
		{Step: 1, Server: 0, Execs: 1, Frontier: 1, Real: 1, WallNs: 7, MaxWallNs: 7, Errs: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Aggregate:\n got %+v\nwant %+v", got, want)
	}
}

func TestMergeSteps(t *testing.T) {
	stats := []StepStat{
		{Step: 0, Server: 0, Execs: 2, Frontier: 5, Real: 4, Redundant: 1, MaxQueueWaitNs: 9, WallNs: 40, MaxWallNs: 30},
		{Step: 0, Server: 1, Execs: 1, Frontier: 4, Combined: 3, Real: 1, WallNs: 20, MaxWallNs: 20},
		{Step: 1, Server: 0, Execs: 1, Frontier: 1, Real: 1, WallNs: 7, MaxWallNs: 7},
	}
	got := MergeSteps(stats)
	want := []StepStat{
		{Step: 0, Server: -1, Execs: 3, Frontier: 9, Redundant: 1, Combined: 3, Real: 5, MaxQueueWaitNs: 9, WallNs: 60, MaxWallNs: 30},
		{Step: 1, Server: -1, Execs: 1, Frontier: 1, Real: 1, WallNs: 7, MaxWallNs: 7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeSteps:\n got %+v\nwant %+v", got, want)
	}
}

func TestRecorderNilIsSafe(t *testing.T) {
	var r *Recorder
	r.RecordSpan(Span{})
	r.RecordSummary(TravelSummary{})
	if got := r.Spans(0); got != nil {
		t.Errorf("Spans on nil = %v", got)
	}
	if got := r.Summaries(); got != nil {
		t.Errorf("Summaries on nil = %v", got)
	}
	if _, ok := r.Summary(1); ok {
		t.Error("Summary on nil reported a hit")
	}
	if st := r.Stats(); st != (RingStats{}) {
		t.Errorf("Stats on nil = %+v", st)
	}
}

func TestRecorderFiltersByTravel(t *testing.T) {
	r := NewRecorder(16)
	r.RecordSpan(Span{Travel: 1, Exec: 10})
	r.RecordSpan(Span{Travel: 2, Exec: 20})
	r.RecordSpan(Span{Travel: 1, Exec: 11})
	if got := r.Spans(1); len(got) != 2 || got[0].Exec != 10 || got[1].Exec != 11 {
		t.Errorf("Spans(1) = %+v", got)
	}
	if got := r.Spans(0); len(got) != 3 {
		t.Errorf("Spans(0) = %d spans, want all", len(got))
	}
	r.RecordSummary(TravelSummary{Travel: 1, Created: 3, Ended: 3})
	r.RecordSummary(TravelSummary{Travel: 1, Created: 5, Ended: 5})
	sum, ok := r.Summary(1)
	if !ok || sum.Created != 5 {
		t.Errorf("Summary(1) = %+v, %v — want the most recent", sum, ok)
	}
	st := r.Stats()
	if st.SpansRecorded != 3 || st.SpansBuffered != 3 || st.SpansEvicted != 0 || st.Summaries != 2 {
		t.Errorf("Stats = %+v", st)
	}
}
