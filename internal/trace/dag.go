package trace

import "sort"

// This file reconstructs a traversal's causal execution DAG from the spans
// its servers buffered. Every span carries the ledger id of the execution
// that created it (Span.Parent), so joining spans on exec id rebuilds the
// traverser lineage the asynchronous dispatch model makes invisible at run
// time: which hop chain produced each execution, and which chain the
// traversal's end-to-end latency actually waited on. The assembly doubles
// as an end-to-end cross-check of the §IV-C quiescence ledger — for a
// cleanly traced traversal every Created execution appears exactly once —
// and any deviation is reported precisely (orphaned parents, duplicate
// exec ids) instead of silently absorbed.

// SpanDump is one server's raw-span answer to a trace pull (KindTraceReq
// with the raw-span mode bit): the spans it buffered for the traversal
// plus, when this server coordinated it, the ledger summary. Dropped
// counts the spans its ring evicted since start, so an assembler can tell
// a wrapped ring from a tracing bug when spans are missing.
type SpanDump struct {
	Server  int32          `json:"server"`
	Spans   []Span         `json:"spans"`
	Summary *TravelSummary `json:"summary,omitempty"`
	Dropped uint64         `json:"dropped,omitempty"`
}

// DAGNode is one execution in the assembled DAG: its span plus the exec
// ids it dispatched (children sorted ascending for determinism).
type DAGNode struct {
	Span
	Children []uint64 `json:"children,omitempty"`
}

// Hop attributes one edge of a chain: the time the child execution spent
// queued, computing, and the network/batching gap between its parent's
// termination and its own start.
type Hop struct {
	Exec   uint64 `json:"exec"`
	Server int32  `json:"server"`
	Step   int32  `json:"step"`
	// QueueNs is the child's worst executor-queue wait.
	QueueNs int64 `json:"queue_ns"`
	// ComputeNs is the child's wall time net of queue wait.
	ComputeNs int64 `json:"compute_ns"`
	// GapNs is parent end → child start: wire latency plus outbox batching
	// delay. Clamped at zero — a child can legitimately start before its
	// parent terminates when the batch-size threshold flushed early.
	GapNs int64 `json:"gap_ns"`
}

// Chain is one root→leaf path through the DAG with per-hop attribution.
type Chain struct {
	Root uint64 `json:"root"`
	Leaf uint64 `json:"leaf"`
	// DurationNs is root start → leaf end on the shared timeline.
	DurationNs int64 `json:"duration_ns"`
	Hops       []Hop `json:"hops"`
}

// DAG is the assembled causal graph of one traversal.
type DAG struct {
	Travel uint64 `json:"travel"`
	// Summary is the coordinator's ledger record, when available.
	Summary *TravelSummary `json:"summary,omitempty"`
	// Nodes holds every distinct execution, sorted by StartNs then exec id.
	Nodes []DAGNode `json:"nodes"`
	// Roots lists exec ids with Parent == 0 or an unknown parent.
	Roots []uint64 `json:"roots,omitempty"`
	// Orphans lists exec ids whose nonzero Parent has no span — either a
	// ring eviction (see SpansDropped) or a causality bug.
	Orphans []uint64 `json:"orphans,omitempty"`
	// Duplicates lists exec ids that appeared in more than one span —
	// possible under chaos transports that duplicate dispatches.
	Duplicates []uint64 `json:"duplicates,omitempty"`
	// SpansDropped sums ring evictions across the contributing servers:
	// nonzero means orphans may be wrapped-ring artifacts, not bugs.
	SpansDropped uint64 `json:"spans_dropped,omitempty"`
	// CriticalPath is the chain maximizing root start → leaf end.
	CriticalPath *Chain `json:"critical_path,omitempty"`
}

// Assemble joins spans (typically gathered from every server) into the
// traversal's causal DAG, verifies it against the ledger summary when one
// is supplied, and computes the critical path. Spans from other traversals
// are ignored; duplicate exec ids keep the first span seen and are
// reported.
func Assemble(travel uint64, spans []Span, summary *TravelSummary) *DAG {
	d := &DAG{Travel: travel, Summary: summary}
	byExec := make(map[uint64]*DAGNode, len(spans))
	order := make([]uint64, 0, len(spans))
	dupSeen := make(map[uint64]bool)
	for _, sp := range spans {
		if travel != 0 && sp.Travel != travel {
			continue
		}
		if _, ok := byExec[sp.Exec]; ok {
			if !dupSeen[sp.Exec] {
				dupSeen[sp.Exec] = true
				d.Duplicates = append(d.Duplicates, sp.Exec)
			}
			continue
		}
		byExec[sp.Exec] = &DAGNode{Span: sp}
		order = append(order, sp.Exec)
	}
	for _, id := range order {
		n := byExec[id]
		if n.Parent == 0 {
			d.Roots = append(d.Roots, id)
			continue
		}
		p, ok := byExec[n.Parent]
		if !ok {
			// The parent terminated but its span is gone (ring wrap) or was
			// never recorded (bug). The node still anchors a subtree.
			d.Orphans = append(d.Orphans, id)
			d.Roots = append(d.Roots, id)
			continue
		}
		p.Children = append(p.Children, id)
	}
	for _, n := range byExec {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i] < n.Children[j] })
	}
	d.Nodes = make([]DAGNode, 0, len(order))
	for _, id := range order {
		d.Nodes = append(d.Nodes, *byExec[id])
	}
	sort.Slice(d.Nodes, func(i, j int) bool {
		if d.Nodes[i].StartNs != d.Nodes[j].StartNs {
			return d.Nodes[i].StartNs < d.Nodes[j].StartNs
		}
		return d.Nodes[i].Exec < d.Nodes[j].Exec
	})
	sortIDs(d.Roots)
	sortIDs(d.Orphans)
	sortIDs(d.Duplicates)
	d.CriticalPath = d.criticalPath(byExec)
	return d
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Complete reports whether the DAG passed the ledger cross-check: a
// summary is present, every Created execution contributed exactly one
// node, and no parent link dangled. This is the end-to-end verification
// of the §IV-C quiescence accounting — the ledger's Created set and the
// cluster's recorded spans describe the same execution population.
func (d *DAG) Complete() bool {
	return d.Summary != nil && len(d.Nodes) == d.Summary.Created &&
		len(d.Orphans) == 0 && len(d.Duplicates) == 0
}

// criticalPath finds the chain with the largest root-start→node-end
// duration over every node, then walks it leaf→root to attribute hops.
// Any node may be the slowest endpoint — not only childless ones, since a
// parent can outlive all its children's subtrees.
func (d *DAG) criticalPath(byExec map[uint64]*DAGNode) *Chain {
	if len(d.Nodes) == 0 {
		return nil
	}
	var bestLeaf uint64
	var bestDur int64 = -1
	for _, n := range d.Nodes {
		dur := n.EndNs() - chainRootStart(byExec, n.Exec)
		if dur > bestDur || (dur == bestDur && n.Exec < bestLeaf) {
			bestDur, bestLeaf = dur, n.Exec
		}
	}
	ch := buildChain(byExec, bestLeaf, bestDur)
	return &ch
}

// buildChain walks leaf → root collecting hop attribution, then reverses
// into dispatch order. An orphaned link roots the chain at the oldest
// known ancestor.
func buildChain(byExec map[uint64]*DAGNode, leaf uint64, dur int64) Chain {
	ch := Chain{Leaf: leaf, DurationNs: dur}
	for id := leaf; ; {
		n := byExec[id]
		ch.Root = id
		ch.Hops = append(ch.Hops, Hop{
			Exec: n.Exec, Server: n.Server, Step: n.Step,
			QueueNs:   n.QueueWaitNs,
			ComputeNs: max(0, n.WallNs-n.QueueWaitNs),
			GapNs:     hopGap(byExec, n),
		})
		p, ok := byExec[n.Parent]
		if n.Parent == 0 || !ok {
			break
		}
		id = p.Exec
	}
	for i, j := 0, len(ch.Hops)-1; i < j; i, j = i+1, j-1 {
		ch.Hops[i], ch.Hops[j] = ch.Hops[j], ch.Hops[i]
	}
	return ch
}

// chainRootStart resolves the start time of the oldest known ancestor of
// an execution — the chain's origin on the timeline.
func chainRootStart(byExec map[uint64]*DAGNode, id uint64) int64 {
	for {
		n := byExec[id]
		if n.Parent == 0 {
			return n.StartNs
		}
		p, ok := byExec[n.Parent]
		if !ok {
			return n.StartNs
		}
		id = p.Exec
	}
}

func hopGap(byExec map[uint64]*DAGNode, n *DAGNode) int64 {
	if n.Parent == 0 {
		return 0
	}
	p, ok := byExec[n.Parent]
	if !ok {
		return 0
	}
	return max(0, n.StartNs-p.EndNs())
}

// TopChains ranks every node's chain by duration, descending, and returns
// the k slowest with distinct leaves — the "which hop chains made this
// traversal slow" report behind gtq -critical-path. k <= 0 returns all.
func (d *DAG) TopChains(k int) []Chain {
	byExec := make(map[uint64]*DAGNode, len(d.Nodes))
	for i := range d.Nodes {
		byExec[d.Nodes[i].Exec] = &d.Nodes[i]
	}
	type cand struct {
		leaf uint64
		dur  int64
	}
	cands := make([]cand, 0, len(d.Nodes))
	for _, n := range d.Nodes {
		cands = append(cands, cand{n.Exec, n.EndNs() - chainRootStart(byExec, n.Exec)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dur != cands[j].dur {
			return cands[i].dur > cands[j].dur
		}
		return cands[i].leaf < cands[j].leaf
	})
	if k > 0 && k < len(cands) {
		cands = cands[:k]
	}
	out := make([]Chain, 0, len(cands))
	for _, c := range cands {
		out = append(out, buildChain(byExec, c.leaf, c.dur))
	}
	return out
}
