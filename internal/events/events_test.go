package events

import (
	"sync"
	"testing"
)

func TestJournalRecordAndOrder(t *testing.T) {
	j := NewJournal(3, 8)
	j.Record(Event{Type: SuspicionUp, Peer: 1, Part: -1})
	j.Record(Event{Type: Promotion, Part: 2, Peer: -1, Epoch: 5})
	got := j.Events()
	if len(got) != 2 {
		t.Fatalf("Events() = %d entries, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("seqs = %d,%d, want 1,2", got[0].Seq, got[1].Seq)
	}
	if got[0].Server != 3 || got[1].Server != 3 {
		t.Fatalf("server stamp = %d,%d, want 3", got[0].Server, got[1].Server)
	}
	if got[0].TimeUnixNano == 0 || got[1].TimeUnixNano < got[0].TimeUnixNano {
		t.Fatalf("time stamps not monotone: %d then %d", got[0].TimeUnixNano, got[1].TimeUnixNano)
	}
	if got[1].Type != Promotion || got[1].Epoch != 5 {
		t.Fatalf("second event = %+v", got[1])
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(0, 4)
	for i := 0; i < 10; i++ {
		j.Record(Event{Type: EpochBump, Part: i, Peer: -1})
	}
	got := j.Events()
	if len(got) != 4 {
		t.Fatalf("Events() = %d entries, want cap 4", len(got))
	}
	// Oldest six evicted: remaining are parts 6..9 with seqs 7..10.
	for i, e := range got {
		if e.Part != 6+i || e.Seq != uint64(7+i) {
			t.Fatalf("entry %d = part %d seq %d, want part %d seq %d", i, e.Part, e.Seq, 6+i, 7+i)
		}
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
}

func TestJournalBackpressureCoalesces(t *testing.T) {
	j := NewJournal(0, 8)
	for i := 0; i < 5; i++ {
		j.Record(Event{Type: Backpressure, Part: 1, Peer: -1})
	}
	j.Record(Event{Type: Backpressure, Part: 2, Peer: -1}) // different partition: new entry
	got := j.Events()
	if len(got) != 2 {
		t.Fatalf("Events() = %d entries, want 2 coalesced", len(got))
	}
	if got[0].Count != 5 || got[0].Part != 1 {
		t.Fatalf("burst entry = %+v, want count 5 on part 1", got[0])
	}
	if got[1].Count != 1 || got[1].Part != 2 {
		t.Fatalf("second entry = %+v", got[1])
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(Event{Type: SuspicionUp}) // must not panic
	if j.Events() != nil {
		t.Fatal("nil journal returned events")
	}
	if j.Dropped() != 0 {
		t.Fatal("nil journal reported drops")
	}
}

// TestStressEventJournalConcurrent hammers Record/Events under the race
// detector (`make stress` picks TestStress* up by name convention).
func TestStressEventJournalConcurrent(t *testing.T) {
	j := NewJournal(0, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				j.Record(Event{Type: EpochBump, Part: w, Peer: -1, Epoch: uint64(i)})
				if i%64 == 0 {
					_ = j.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	got := j.Events()
	if len(got) != 64 {
		t.Fatalf("Events() = %d, want full ring 64", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
	if total := uint64(len(got)) + j.Dropped(); total != 8000 {
		t.Fatalf("retained+dropped = %d, want 8000", total)
	}
}
