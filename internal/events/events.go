// Package events keeps a bounded, in-memory journal of control-plane
// transitions on one backend server: failure-detector suspicions,
// promotions, epoch bumps, shard handoffs, rejoin nudges, executor
// backpressure bursts and slow-traversal captures. Traversal data-path
// activity is deliberately out of scope — counters and traces cover it —
// so the journal stays small, cheap and human-sized: it answers "what did
// the cluster DO around 14:03" without log scraping.
//
// The journal is served over HTTP by internal/obs (/events), pulled over
// the wire by wire.KindEventsReq, and merged cluster-wide + time-sorted
// by `gtq -events`.
package events

import (
	"sync"
	"time"
)

// Type discriminates journal entries. String-typed so the JSON forms are
// self-describing and stable across versions.
type Type string

const (
	// SuspicionUp records a peer transitioning alive → suspected-dead,
	// detected locally by missed heartbeats or adopted from a PeerDown
	// broadcast (Detail distinguishes).
	SuspicionUp Type = "suspicion_up"
	// SuspicionDown records a suspected peer proving itself alive again.
	SuspicionDown Type = "suspicion_down"
	// Promotion records this server promoting itself follower → primary
	// for Part, fenced at Epoch.
	Promotion Type = "promotion"
	// EpochBump records Part's fencing epoch advancing to Epoch without a
	// role change (replica-set growth, handoff completion, re-assertion).
	EpochBump Type = "epoch_bump"
	// HandoffStart records this primary beginning a snapshot stream of
	// Part to Peer (shard handoff or follower catch-up).
	HandoffStart Type = "handoff_start"
	// HandoffDone records the snapshot stream completing and Peer joining
	// Part's replica set.
	HandoffDone Type = "handoff_done"
	// RejoinNudge records this primary inviting recovered Peer back into
	// Part's replica set after a false suspicion.
	RejoinNudge Type = "rejoin_nudge"
	// Backpressure records the shared executor refusing request batches
	// (queue depth limit). Consecutive rejections coalesce into one entry
	// with a growing Count, so a burst cannot wash the journal.
	Backpressure Type = "backpressure"
	// SlowTravel records a coordinator capturing a slow traversal's full
	// causal trace DAG (threshold in core.Config.SlowTravelNs).
	SlowTravel Type = "slow_travel"
)

// Event is one journal entry. Part and Peer are -1 when the event has no
// partition or peer subject; Epoch and Count are meaningful only where
// their Type says so.
type Event struct {
	// Seq orders events on one server (monotonic from 1, survives ring
	// eviction — a gap at the front means old entries were dropped).
	Seq uint64 `json:"seq"`
	// TimeUnixNano is the wall-clock stamp.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Server is the recording backend's node id.
	Server int `json:"server"`
	// Type is the transition kind.
	Type Type `json:"type"`
	// Part is the subject partition, -1 if none.
	Part int `json:"part"`
	// Peer is the subject peer server, -1 if none.
	Peer int `json:"peer"`
	// Epoch is the fencing epoch for promotion/epoch-bump events.
	Epoch uint64 `json:"epoch,omitempty"`
	// Count aggregates coalesced occurrences (backpressure bursts).
	Count int64 `json:"count,omitempty"`
	// Detail is a short human-readable qualifier.
	Detail string `json:"detail,omitempty"`
}

// Journal is a bounded ring of events. A nil *Journal is a valid no-op
// recorder, so call sites need no guards. All methods are safe for
// concurrent use.
type Journal struct {
	mu      sync.Mutex
	server  int
	cap     int
	seq     uint64
	buf     []Event
	start   int // index of oldest entry
	n       int
	dropped uint64
}

// coalesceWindow bounds how stale the newest Backpressure entry may be
// and still absorb another rejection burst into its Count.
const coalesceWindow = time.Second

// NewJournal makes a journal for one server holding up to capacity
// events; capacity <= 0 selects 256.
func NewJournal(server, capacity int) *Journal {
	if capacity <= 0 {
		capacity = 256
	}
	return &Journal{server: server, cap: capacity}
}

// Record stamps e with the next sequence number, the current time and the
// journal's server id, then appends it, evicting the oldest entry when
// full. Backpressure events arriving within coalesceWindow of a previous
// Backpressure entry for the same partition merge into it instead.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	now := time.Now().UnixNano()
	j.mu.Lock()
	defer j.mu.Unlock()
	if e.Type == Backpressure && j.n > 0 {
		last := &j.buf[(j.start+j.n-1)%len(j.buf)]
		if last.Type == Backpressure && last.Part == e.Part && now-last.TimeUnixNano < int64(coalesceWindow) {
			last.TimeUnixNano = now
			if e.Count <= 0 {
				e.Count = 1
			}
			last.Count += e.Count
			return
		}
	}
	j.seq++
	e.Seq = j.seq
	e.TimeUnixNano = now
	e.Server = j.server
	if e.Count == 0 && e.Type == Backpressure {
		e.Count = 1
	}
	if j.buf == nil {
		j.buf = make([]Event, j.cap)
	}
	if j.n == len(j.buf) {
		j.buf[j.start] = e
		j.start = (j.start + 1) % len(j.buf)
		j.dropped++
		return
	}
	j.buf[(j.start+j.n)%len(j.buf)] = e
	j.n++
}

// Events returns a copy of the buffered entries, oldest first. Nil
// receivers report nothing.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(j.start+i)%len(j.buf)])
	}
	return out
}

// Dropped counts entries evicted by the ring bound since start.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}
