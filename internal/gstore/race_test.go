package gstore

import (
	"fmt"
	"sync"
	"testing"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// TestConcurrentPutsWithLabelChanges hammers the read-modify-write vertex
// path the Graph contract promises is concurrency-safe: writers racing on
// the same small id set, flipping labels and indexed property values. Run
// under -race (make check does); afterwards every vertex must have exactly
// one by-label row and exactly one index row, both matching its final
// version — interleaved get/delete/put sequences used to strand stale rows.
func TestConcurrentPutsWithLabelChanges(t *testing.T) {
	labels := []string{"User", "Execution", "File"}
	for name, g := range indexedStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := g.EnableIndex("p"); err != nil {
				t.Fatal(err)
			}
			const (
				writers = 8
				rounds  = 120
				nIDs    = 5 // few ids = maximal collision pressure
			)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						id := model.VertexID(r % nIDs)
						err := g.PutVertex(model.Vertex{
							ID:    id,
							Label: labels[(w+r)%len(labels)],
							Props: property.Map{"p": property.Int(int64(w*rounds + r))},
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			for id := model.VertexID(0); id < nIDs; id++ {
				v, ok, err := g.GetVertex(id)
				if err != nil || !ok {
					t.Fatalf("vertex %v: ok=%v err=%v", id, ok, err)
				}
				// Exactly one by-label row, under the final label.
				for _, l := range labels {
					found := false
					g.ScanVerticesByLabel(l, func(got model.VertexID) bool {
						if got == id {
							found = true
						}
						return true
					})
					if found != (l == v.Label) {
						t.Errorf("vertex %v (label %q): by-label row under %q = %v", id, v.Label, l, found)
					}
				}
				// Exactly one index row, under the final value.
				hits := 0
				lo, hi := property.Int(0), property.Int(int64(writers*rounds))
				ids, err := g.LookupVerticesRange("p", lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				for _, got := range ids {
					if got == id {
						hits++
					}
				}
				if hits != 1 {
					t.Errorf("vertex %v: %d index rows, want 1", id, hits)
				}
				want, err2 := g.LookupVertices("p", v.Props["p"])
				if err2 != nil {
					t.Fatal(err2)
				}
				if !containsID(want, id) {
					t.Errorf("vertex %v: final value %v not in index", id, v.Props["p"])
				}
			}
		})
	}
}

// TestEnableIndexRacesConcurrentPuts races the backfill scan against
// writers: every vertex written before, during or after EnableIndex must
// end with exactly one index row for its final value.
func TestEnableIndexRacesConcurrentPuts(t *testing.T) {
	for name, g := range indexedStores(t) {
		t.Run(name, func(t *testing.T) {
			const n = 200
			// Pre-existing population for the backfill to walk.
			for i := 0; i < n; i++ {
				if err := g.PutVertex(model.Vertex{ID: model.VertexID(i), Label: "User",
					Props: property.Map{"name": property.String(fmt.Sprintf("u%03d", i))}}); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // overwrite every vertex while the backfill runs
				defer wg.Done()
				for i := 0; i < n; i++ {
					g.PutVertex(model.Vertex{ID: model.VertexID(i), Label: "User",
						Props: property.Map{"name": property.String(fmt.Sprintf("v%03d", i))}})
				}
			}()
			var enableErr error
			go func() {
				defer wg.Done()
				enableErr = g.EnableIndex("name")
			}()
			wg.Wait()
			if enableErr != nil {
				t.Fatal(enableErr)
			}
			for i := 0; i < n; i++ {
				v, ok, err := g.GetVertex(model.VertexID(i))
				if err != nil || !ok {
					t.Fatalf("vertex %d: ok=%v err=%v", i, ok, err)
				}
				ids, err := g.LookupVertices("name", v.Props["name"])
				if err != nil {
					t.Fatal(err)
				}
				if !containsID(ids, v.ID) {
					t.Errorf("vertex %d: final value %v missing from index", i, v.Props["name"])
				}
				// The overwritten value must not have a stranded row.
				old, err := g.LookupVertices("name", property.String(fmt.Sprintf("u%03d", i)))
				if err != nil {
					t.Fatal(err)
				}
				if v.Props["name"].Str() != fmt.Sprintf("u%03d", i) && containsID(old, v.ID) {
					t.Errorf("vertex %d: stale index row for overwritten value", i)
				}
			}
		})
	}
}

func containsID(ids []model.VertexID, id model.VertexID) bool {
	for _, got := range ids {
		if got == id {
			return true
		}
	}
	return false
}
