package gstore

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// TestIndexStoreMemEquivalenceQuick drives both PropertyIndex
// implementations through the same randomized write history — puts,
// overwrites that change or drop the indexed value, deletes, with one key
// enabled before the load and one enabled after (exercising both the
// incremental and the backfill path) — then checks every EQ and RANGE
// lookup against a brute-force oracle over the final vertex set. The two
// stores index with different machinery (ordered key rows vs an
// exact-match map), so agreement here is what lets tests and simulations
// swap one for the other.
func TestIndexStoreMemEquivalenceQuick(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		stores := indexedStores(t)
		r := rand.New(rand.NewSource(seed))
		oracle := make(map[model.VertexID]model.Vertex)

		if err := stores["disk"].EnableIndex("num"); err != nil {
			t.Fatal(err)
		}
		if err := stores["mem"].EnableIndex("num"); err != nil {
			t.Fatal(err)
		}

		const nIDs = 40
		for op := 0; op < 300; op++ {
			id := model.VertexID(r.Intn(nIDs))
			if r.Intn(10) == 0 {
				delete(oracle, id)
				for _, g := range stores {
					if err := g.DeleteVertex(id); err != nil {
						t.Fatal(err)
					}
				}
				continue
			}
			props := property.Map{}
			if r.Intn(4) != 0 { // sometimes the indexed key is absent
				props["num"] = property.Int(int64(r.Intn(20) - 10))
			}
			if r.Intn(2) == 0 {
				props["f"] = property.Float(float64(r.Intn(40))/4 - 5)
			}
			if r.Intn(3) == 0 {
				props["name"] = property.String(string(rune('a' + r.Intn(5))))
			}
			v := model.Vertex{ID: id, Label: []string{"User", "File"}[r.Intn(2)], Props: props}
			oracle[id] = v
			for _, g := range stores {
				if err := g.PutVertex(v); err != nil {
					t.Fatal(err)
				}
			}
		}

		// "f" and "name" only get enabled now: pure backfill.
		for _, key := range []string{"f", "name"} {
			for _, g := range stores {
				if err := g.EnableIndex(key); err != nil {
					t.Fatal(err)
				}
			}
		}

		expectEQ := func(key string, want property.Value) []model.VertexID {
			var ids []model.VertexID
			for id, v := range oracle {
				if got, ok := v.Props[key]; ok && got.Equal(want) {
					ids = append(ids, id)
				}
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids
		}
		expectRange := func(key string, lo, hi property.Value) []model.VertexID {
			var ids []model.VertexID
			for id, v := range oracle {
				got, ok := v.Props[key]
				if ok && got.Kind() == lo.Kind() && got.Compare(lo) >= 0 && got.Compare(hi) <= 0 {
					ids = append(ids, id)
				}
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids
		}
		same := func(got, want []model.VertexID) bool {
			return len(got) == len(want) && (len(got) == 0 || reflect.DeepEqual(got, want))
		}

		for q := 0; q < 60; q++ {
			var key string
			var val property.Value
			switch r.Intn(3) {
			case 0:
				key, val = "num", property.Int(int64(r.Intn(24)-12))
			case 1:
				key, val = "f", property.Float(float64(r.Intn(48))/4-6)
			default:
				key, val = "name", property.String(string(rune('a'+r.Intn(6))))
			}
			want := expectEQ(key, val)
			for name, g := range stores {
				got, err := g.LookupVertices(key, val)
				if err != nil {
					t.Fatal(err)
				}
				if !same(got, want) {
					t.Fatalf("seed %d %s: EQ %s=%v = %v, oracle %v", seed, name, key, val, got, want)
				}
			}

			var lo, hi property.Value
			if key == "name" { // strings are not range-indexable; range on "num"
				key = "num"
			}
			if key == "num" {
				a, b := int64(r.Intn(24)-12), int64(r.Intn(24)-12)
				if a > b {
					a, b = b, a
				}
				lo, hi = property.Int(a), property.Int(b)
			} else {
				a, b := float64(r.Intn(48))/4-6, float64(r.Intn(48))/4-6
				if a > b {
					a, b = b, a
				}
				lo, hi = property.Float(a), property.Float(b)
			}
			want = expectRange(key, lo, hi)
			for name, g := range stores {
				got, err := g.LookupVerticesRange(key, lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				if !same(got, want) {
					t.Fatalf("seed %d %s: RANGE %s in [%v,%v] = %v, oracle %v", seed, name, key, lo, hi, got, want)
				}
			}
		}
	}
}

// TestLookupRangeErrorContract pins the error cases both implementations
// must share, so the seed-selection fallback behaves identically over
// either store: un-enabled keys, string ranges, mixed-kind bounds and
// inverted bounds all refuse rather than return empty.
func TestLookupRangeErrorContract(t *testing.T) {
	for name, g := range indexedStores(t) {
		t.Run(name, func(t *testing.T) {
			g.PutVertex(model.Vertex{ID: 1, Label: "User",
				Props: property.Map{"n": property.Int(3), "s": property.String("x")}})
			if _, err := g.LookupVertices("n", property.Int(3)); err == nil {
				t.Error("EQ lookup on un-enabled key should error")
			}
			if _, err := g.LookupVerticesRange("n", property.Int(0), property.Int(9)); err == nil {
				t.Error("RANGE lookup on un-enabled key should error")
			}
			for _, key := range []string{"n", "s"} {
				if err := g.EnableIndex(key); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := g.LookupVerticesRange("s", property.String("a"), property.String("z")); err == nil {
				t.Error("string RANGE should error (encoding is not order-preserving)")
			}
			if _, err := g.LookupVerticesRange("n", property.Int(0), property.Float(9)); err == nil {
				t.Error("mixed-kind bounds should error")
			}
			if _, err := g.LookupVerticesRange("n", property.Int(9), property.Int(0)); err == nil {
				t.Error("inverted bounds should error")
			}
			// The contract is refusal, not silent emptiness — the scan
			// fallback in the engine depends on seeing the error.
			if ids, err := g.LookupVerticesRange("n", property.Int(0), property.Int(9)); err != nil || len(ids) != 1 {
				t.Errorf("valid range after errors: ids=%v err=%v", ids, err)
			}
		})
	}
}
