package gstore

import (
	"encoding/binary"
	"fmt"
)

// FeedRecord is one committed change-feed entry: the mutation batch a
// single quorum-acknowledged write applied, stamped with the primary epoch
// that sequenced it and its per-partition sequence number. Consumers resume
// by presenting the last Seq they processed as a cursor; Seq is monotone
// along the surviving replica lineage, including across failover, because a
// promoted follower continues numbering from its applied sequence.
type FeedRecord struct {
	Epoch uint64
	Seq   uint64
	Muts  []Mutation
}

// AppendFeedRecords serializes a feed batch, appending to b: a record
// count, then per record epoch, seq, and a length-prefixed EncodeBatch
// payload. Reusing the replication batch codec means a feed consumer
// replays exactly the bytes followers applied.
func AppendFeedRecords(b []byte, recs []FeedRecord) []byte {
	b = AppendFeedCount(b, len(recs))
	for _, r := range recs {
		b = AppendFeedRecordRaw(b, r.Epoch, r.Seq, EncodeBatch(r.Muts))
	}
	return b
}

// AppendFeedCount appends a feed batch's record-count prefix.
func AppendFeedCount(b []byte, n int) []byte {
	return binary.AppendUvarint(b, uint64(n))
}

// AppendFeedRecordRaw appends one record whose mutation batch is already in
// EncodeBatch form — the replication ring's native representation — so the
// feed hot path never decodes and re-encodes payloads it is only relaying.
func AppendFeedRecordRaw(b []byte, epoch, seq uint64, batch []byte) []byte {
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendUvarint(b, seq)
	return appendLenPrefixed(b, batch)
}

// DecodeFeedRecords parses an AppendFeedRecords payload. The entire input
// must be consumed. Like DecodeBatch it bounds allocation by the bytes
// actually present before trusting any declared count — the decoder sits on
// a network trust boundary.
func DecodeFeedRecords(b []byte) ([]FeedRecord, error) {
	d := mutDecoder{b: b}
	n := d.uvarint()
	// Every record takes >= 3 bytes (epoch, seq, empty batch length).
	if n > uint64(len(b))/3+1 {
		return nil, fmt.Errorf("gstore: declared %d feed records in %d bytes", n, len(b))
	}
	recs := make([]FeedRecord, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		r := FeedRecord{Epoch: d.uvarint(), Seq: d.uvarint()}
		payload := d.lenPrefixed()
		if d.err != nil {
			break
		}
		ms, err := DecodeBatch(payload)
		if err != nil {
			return nil, err
		}
		r.Muts = ms
		recs = append(recs, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("gstore: %d trailing bytes in feed batch", len(d.b))
	}
	return recs, nil
}
