package gstore

import (
	"encoding/binary"
	"fmt"

	"graphtrek/internal/model"
)

// Replication ships graph mutations, not raw kv WAL records: a mutation
// batch replays identically on any Graph implementation (Store or
// MemStore), and each replica regenerates its own index rows locally, so
// followers never depend on the primary's kv file layout. The kv WAL stays
// what it is — each replica's private local-durability log.
//
// All four ops are idempotent upserts/deletes, which is what makes the
// protocol's at-least-once delivery (gap re-ship, snapshot/live-tail
// overlap during handoff) safe to apply without sequence bookkeeping at
// this layer.

// MutOp discriminates mutation payloads.
type MutOp uint8

const (
	// OpPutVertex upserts a vertex (Vertex field).
	OpPutVertex MutOp = iota + 1
	// OpDelVertex deletes a vertex and its out-edges (ID field).
	OpDelVertex
	// OpPutEdge upserts a directed edge (Edge field).
	OpPutEdge
	// OpDelEdge deletes a directed edge (Src, Label, Dst fields).
	OpDelEdge
	// OpIntern installs one interning-dictionary pair (Name, ID fields).
	// The ID was allocated by the partition primary; replicas replay it via
	// Interner.ApplyIntern, which is idempotent like every other op.
	OpIntern
)

// Mutation is one replicated graph write.
type Mutation struct {
	Op     MutOp
	Vertex model.Vertex // OpPutVertex
	Edge   model.Edge   // OpPutEdge
	ID     model.VertexID
	Src    model.VertexID
	Dst    model.VertexID
	Label  string
	Name   string // OpIntern: the external name bound to ID
}

// RoutingID returns the vertex whose partition owns this mutation: the
// vertex itself, or an edge's source (edges live with their source vertex,
// the edge-cut placement of §VI).
func (m Mutation) RoutingID() model.VertexID {
	switch m.Op {
	case OpPutVertex:
		return m.Vertex.ID
	case OpDelVertex:
		return m.ID
	case OpPutEdge:
		return m.Edge.Src
	case OpIntern:
		// The interned id embeds its partition, so routing by it lands the
		// mutation on the allocating partition.
		return m.ID
	default:
		return m.Src
	}
}

// Apply replays the mutation onto g.
func (m Mutation) Apply(g Graph) error {
	switch m.Op {
	case OpPutVertex:
		return g.PutVertex(m.Vertex)
	case OpDelVertex:
		return g.DeleteVertex(m.ID)
	case OpPutEdge:
		return g.PutEdge(m.Edge)
	case OpDelEdge:
		return g.DeleteEdge(m.Src, m.Label, m.Dst)
	case OpIntern:
		in, ok := InternerOf(g)
		if !ok {
			return fmt.Errorf("gstore: store cannot apply intern mutation")
		}
		return in.ApplyIntern(m.Name, m.ID)
	default:
		return fmt.Errorf("gstore: unknown mutation op %d", m.Op)
	}
}

// AppendMutation serializes one mutation, appending to b. The encoding
// reuses the storage value codecs, so a replicated vertex round-trips
// through exactly the bytes the store would persist.
func AppendMutation(b []byte, m Mutation) []byte {
	b = append(b, byte(m.Op))
	switch m.Op {
	case OpPutVertex:
		b = binary.AppendUvarint(b, uint64(m.Vertex.ID))
		b = appendLenPrefixed(b, model.AppendVertexValue(nil, m.Vertex))
	case OpDelVertex:
		b = binary.AppendUvarint(b, uint64(m.ID))
	case OpPutEdge:
		b = binary.AppendUvarint(b, uint64(m.Edge.Src))
		b = binary.AppendUvarint(b, uint64(m.Edge.Dst))
		b = appendLenPrefixed(b, []byte(m.Edge.Label))
		b = appendLenPrefixed(b, model.AppendEdgeValue(nil, m.Edge))
	case OpDelEdge:
		b = binary.AppendUvarint(b, uint64(m.Src))
		b = binary.AppendUvarint(b, uint64(m.Dst))
		b = appendLenPrefixed(b, []byte(m.Label))
	case OpIntern:
		b = binary.AppendUvarint(b, uint64(m.ID))
		b = appendLenPrefixed(b, []byte(m.Name))
	}
	return b
}

func appendLenPrefixed(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// EncodeBatch serializes a mutation batch for a replication append or
// snapshot chunk payload.
func EncodeBatch(ms []Mutation) []byte {
	b := binary.AppendUvarint(nil, uint64(len(ms)))
	for _, m := range ms {
		b = AppendMutation(b, m)
	}
	return b
}

// DecodeBatch parses an EncodeBatch payload.
func DecodeBatch(b []byte) ([]Mutation, error) {
	d := mutDecoder{b: b}
	n := d.uvarint()
	if n > uint64(len(b)) { // every mutation takes >= 1 byte
		return nil, fmt.Errorf("gstore: declared %d mutations in %d bytes", n, len(b))
	}
	ms := make([]Mutation, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		ms = append(ms, d.mutation())
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("gstore: %d trailing bytes in mutation batch", len(d.b))
	}
	return ms, nil
}

type mutDecoder struct {
	b   []byte
	err error
}

func (d *mutDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, sz := binary.Uvarint(d.b)
	if sz <= 0 {
		d.err = fmt.Errorf("gstore: truncated mutation")
		return 0
	}
	d.b = d.b[sz:]
	return v
}

func (d *mutDecoder) lenPrefixed() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("gstore: truncated mutation payload")
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *mutDecoder) mutation() Mutation {
	if d.err != nil {
		return Mutation{}
	}
	if len(d.b) == 0 {
		d.err = fmt.Errorf("gstore: truncated mutation op")
		return Mutation{}
	}
	op := MutOp(d.b[0])
	d.b = d.b[1:]
	m := Mutation{Op: op}
	switch op {
	case OpPutVertex:
		id := model.VertexID(d.uvarint())
		val := d.lenPrefixed()
		if d.err != nil {
			return Mutation{}
		}
		v, err := model.DecodeVertexValue(id, val)
		if err != nil {
			d.err = err
			return Mutation{}
		}
		m.Vertex = v
	case OpDelVertex:
		m.ID = model.VertexID(d.uvarint())
	case OpPutEdge:
		src := model.VertexID(d.uvarint())
		dst := model.VertexID(d.uvarint())
		label := string(d.lenPrefixed())
		val := d.lenPrefixed()
		if d.err != nil {
			return Mutation{}
		}
		e, err := model.DecodeEdgeValue(src, dst, label, val)
		if err != nil {
			d.err = err
			return Mutation{}
		}
		m.Edge = e
	case OpDelEdge:
		m.Src = model.VertexID(d.uvarint())
		m.Dst = model.VertexID(d.uvarint())
		m.Label = string(d.lenPrefixed())
	case OpIntern:
		m.ID = model.VertexID(d.uvarint())
		m.Name = string(d.lenPrefixed())
	default:
		d.err = fmt.Errorf("gstore: unknown mutation op %d", op)
	}
	return m
}

// SnapshotMutations scans g and emits every vertex and edge whose routing
// vertex satisfies keep as OpPutVertex/OpPutEdge mutations, in batches of
// batchSize, calling emit for each batch. It is the producer side of a
// shard handoff: applied in order to an empty replica, the batches
// reconstruct the partition. Writes that land during the scan are covered
// by the live tail the primary forwards alongside the snapshot.
func SnapshotMutations(g Graph, keep func(model.VertexID) bool, batchSize int, emit func([]Mutation) error) error {
	if batchSize <= 0 {
		batchSize = 256
	}
	batch := make([]Mutation, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := emit(batch)
		batch = batch[:0]
		return err
	}
	var ids []model.VertexID
	var scanErr error
	// Dictionary entries ship first: a replica that can resolve names from
	// the start can serve reads the moment its graph rows land, and intern
	// pairs are standalone (no vertex dependency), so fronting them is free.
	if in, ok := InternerOf(g); ok {
		err := in.ScanInterned(func(name string, id model.VertexID) bool {
			if !keep(id) {
				return true
			}
			batch = append(batch, Mutation{Op: OpIntern, ID: id, Name: name})
			if len(batch) >= batchSize {
				if scanErr = flush(); scanErr != nil {
					return false
				}
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return err
		}
		scanErr = nil
	}
	err := g.ScanVertices(func(v model.Vertex) bool {
		if !keep(v.ID) {
			return true
		}
		ids = append(ids, v.ID)
		batch = append(batch, Mutation{Op: OpPutVertex, Vertex: v})
		if len(batch) >= batchSize {
			if scanErr = flush(); scanErr != nil {
				return false
			}
		}
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return err
	}
	// Edges ship after their source vertices so a replica never holds an
	// edge for a vertex it has not yet seen.
	for _, id := range ids {
		scanErr = nil
		err = g.ScanAllEdges(id, func(e model.Edge) bool {
			batch = append(batch, Mutation{Op: OpPutEdge, Edge: e})
			if len(batch) >= batchSize {
				if scanErr = flush(); scanErr != nil {
					return false
				}
			}
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return err
		}
	}
	return flush()
}
