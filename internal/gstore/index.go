package gstore

import (
	"encoding/binary"
	"fmt"
	"sync"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// PropertyIndex is the optional secondary-index capability of a Graph: the
// "searching or indexing mechanisms provided by the underlying graph
// storage" that §III says GTravel entry points are retrieved with. An
// enabled index maps one property key's exact values to vertex ids, so
// v() seeds like "the user named sam" resolve without a scan.
type PropertyIndex interface {
	// EnableIndex starts indexing the property key, backfilling existing
	// vertices. Enabling twice is a no-op.
	EnableIndex(key string) error
	// LookupVertices returns the ids of vertices whose property `key`
	// equals v, in ascending order. Looking up a key that was never
	// enabled is an error.
	LookupVertices(key string, v property.Value) ([]model.VertexID, error)
}

var (
	_ PropertyIndex = (*Store)(nil)
	_ PropertyIndex = (*MemStore)(nil)
)

// Persistent store implementation. Index rows live under their own tag:
//
//	'P' <len(key):uvarint> <key> <value encoding> <id:8> -> nil
//
// The value encoding is property.AppendValue, which is deterministic, so
// exact-match lookups are one prefix scan.
func propIndexKey(key string, v property.Value, id model.VertexID) []byte {
	b := propIndexPrefix(key, v)
	return binary.BigEndian.AppendUint64(b, uint64(id))
}

func propIndexPrefix(key string, v property.Value) []byte {
	b := make([]byte, 0, 2+len(key)+16)
	b = append(b, 'P')
	b = binary.AppendUvarint(b, uint64(len(key)))
	b = append(b, key...)
	return property.AppendValue(b, v)
}

// indexedKeys returns the Store's enabled index keys (guarded by idxMu).
func (s *Store) indexEnabled(key string) bool {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.indexed[key]
}

// EnableIndex implements PropertyIndex.
func (s *Store) EnableIndex(key string) error {
	if key == "" {
		return fmt.Errorf("gstore: cannot index empty property key")
	}
	s.idxMu.Lock()
	if s.indexed == nil {
		s.indexed = make(map[string]bool)
	}
	if s.indexed[key] {
		s.idxMu.Unlock()
		return nil
	}
	s.indexed[key] = true
	s.idxMu.Unlock()
	// Backfill: one pass over existing vertices. Collect first — writing
	// during iteration is not allowed.
	type row struct {
		v  property.Value
		id model.VertexID
	}
	var rows []row
	err := s.ScanVertices(func(v model.Vertex) bool {
		if val, ok := v.Props[key]; ok {
			rows = append(rows, row{val, v.ID})
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := s.db.Put(propIndexKey(key, r.v, r.id), nil); err != nil {
			return err
		}
	}
	return nil
}

// LookupVertices implements PropertyIndex.
func (s *Store) LookupVertices(key string, v property.Value) ([]model.VertexID, error) {
	if !s.indexEnabled(key) {
		return nil, fmt.Errorf("gstore: property %q is not indexed", key)
	}
	var ids []model.VertexID
	err := s.db.Scan(propIndexPrefix(key, v), func(k, _ []byte) bool {
		ids = append(ids, model.VertexID(binary.BigEndian.Uint64(k[len(k)-8:])))
		return true
	})
	return ids, err
}

// updatePropIndexes maintains index rows across a vertex write. old holds
// the previous version when one existed.
func (s *Store) updatePropIndexes(old model.Vertex, hadOld bool, v model.Vertex) error {
	s.idxMu.RLock()
	keys := make([]string, 0, len(s.indexed))
	for k := range s.indexed {
		keys = append(keys, k)
	}
	s.idxMu.RUnlock()
	for _, key := range keys {
		newVal, hasNew := v.Props[key]
		if hadOld {
			if oldVal, hasOldVal := old.Props[key]; hasOldVal && (!hasNew || !oldVal.Equal(newVal)) {
				if err := s.db.Delete(propIndexKey(key, oldVal, v.ID)); err != nil {
					return err
				}
			}
		}
		if hasNew {
			if err := s.db.Put(propIndexKey(key, newVal, v.ID), nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropPropIndexes removes a deleted vertex's index rows.
func (s *Store) dropPropIndexes(v model.Vertex) error {
	s.idxMu.RLock()
	keys := make([]string, 0, len(s.indexed))
	for k := range s.indexed {
		keys = append(keys, k)
	}
	s.idxMu.RUnlock()
	for _, key := range keys {
		if val, ok := v.Props[key]; ok {
			if err := s.db.Delete(propIndexKey(key, val, v.ID)); err != nil {
				return err
			}
		}
	}
	return nil
}

// In-memory implementation.

type memIndex struct {
	mu      sync.RWMutex
	byKey   map[string]map[string][]model.VertexID // key -> encoded value -> sorted ids
	enabled map[string]bool
}

func valueToken(v property.Value) string {
	return string(property.AppendValue(nil, v))
}

// EnableIndex implements PropertyIndex.
func (m *MemStore) EnableIndex(key string) error {
	if key == "" {
		return fmt.Errorf("gstore: cannot index empty property key")
	}
	m.idx.mu.Lock()
	if m.idx.enabled == nil {
		m.idx.enabled = make(map[string]bool)
		m.idx.byKey = make(map[string]map[string][]model.VertexID)
	}
	if m.idx.enabled[key] {
		m.idx.mu.Unlock()
		return nil
	}
	m.idx.enabled[key] = true
	m.idx.byKey[key] = make(map[string][]model.VertexID)
	m.idx.mu.Unlock()
	return m.ScanVertices(func(v model.Vertex) bool {
		if val, ok := v.Props[key]; ok {
			m.idx.insert(key, val, v.ID)
		}
		return true
	})
}

// LookupVertices implements PropertyIndex.
func (m *MemStore) LookupVertices(key string, v property.Value) ([]model.VertexID, error) {
	m.idx.mu.RLock()
	defer m.idx.mu.RUnlock()
	if !m.idx.enabled[key] {
		return nil, fmt.Errorf("gstore: property %q is not indexed", key)
	}
	ids := m.idx.byKey[key][valueToken(v)]
	return append([]model.VertexID(nil), ids...), nil
}

func (ix *memIndex) insert(key string, v property.Value, id model.VertexID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tok := valueToken(v)
	ix.byKey[key][tok] = insertID(ix.byKey[key][tok], id)
}

func (ix *memIndex) remove(key string, v property.Value, id model.VertexID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tok := valueToken(v)
	ix.byKey[key][tok] = removeID(ix.byKey[key][tok], id)
}

// update maintains the in-memory index across a vertex write or delete.
func (ix *memIndex) update(old model.Vertex, hadOld bool, v model.Vertex, hasNew bool) {
	ix.mu.RLock()
	keys := make([]string, 0, len(ix.enabled))
	for k := range ix.enabled {
		keys = append(keys, k)
	}
	ix.mu.RUnlock()
	for _, key := range keys {
		var oldVal, newVal property.Value
		hasOldVal, hasNewVal := false, false
		if hadOld {
			oldVal, hasOldVal = old.Props[key]
		}
		if hasNew {
			newVal, hasNewVal = v.Props[key]
		}
		switch {
		case hasOldVal && hasNewVal && oldVal.Equal(newVal):
			// unchanged
		default:
			if hasOldVal {
				ix.remove(key, oldVal, old.ID)
			}
			if hasNewVal {
				ix.insert(key, newVal, v.ID)
			}
		}
	}
}
