package gstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"graphtrek/internal/kv"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// PropertyIndex is the optional secondary-index capability of a Graph: the
// "searching or indexing mechanisms provided by the underlying graph
// storage" that §III says GTravel entry points are retrieved with. An
// enabled index maps one property key's values to vertex ids, so v() seeds
// like "the user named sam" resolve without a scan, and numeric RANGE seeds
// resolve as one bounded key-range scan.
type PropertyIndex interface {
	// EnableIndex starts indexing the property key, backfilling existing
	// vertices. Enabling twice is a no-op. Safe to call concurrently with
	// writes: a vertex written while the backfill runs is indexed exactly
	// once, under its current value.
	EnableIndex(key string) error
	// HasIndex reports whether the property key is indexed.
	HasIndex(key string) bool
	// LookupVertices returns the ids of vertices whose property `key`
	// equals v, in ascending order. Looking up a key that was never
	// enabled is an error.
	LookupVertices(key string, v property.Value) ([]model.VertexID, error)
	// LookupVerticesRange returns the ids of vertices whose property `key`
	// lies in [lo, hi], ascending. lo and hi must share an order-comparable
	// kind (property.OrderComparable); string ranges are not indexable and
	// return an error — callers fall back to the scan path.
	LookupVerticesRange(key string, lo, hi property.Value) ([]model.VertexID, error)
}

var (
	_ PropertyIndex = (*Store)(nil)
	_ PropertyIndex = (*MemStore)(nil)
)

// Persistent store implementation. Index rows live under their own tag:
//
//	'P' <len(key):uvarint> <key> <ordered value encoding> <id:8> -> nil
//
// The value encoding is property.AppendOrderedValue: deterministic and
// prefix-free, so exact-match lookups are one prefix scan, and
// order-preserving for numeric kinds, so RANGE lookups are one bounded
// [lo, hi] key-range scan instead of a full-index sweep.
func propIndexKey(key string, v property.Value, id model.VertexID) []byte {
	b := propIndexPrefix(key, v)
	return binary.BigEndian.AppendUint64(b, uint64(id))
}

func propIndexPrefix(key string, v property.Value) []byte {
	return property.AppendOrderedValue(propIndexKeyPrefix(key), v)
}

// propIndexKeyPrefix covers every index row of one property key.
func propIndexKeyPrefix(key string) []byte {
	b := make([]byte, 0, 2+len(key)+16)
	b = append(b, 'P')
	b = binary.AppendUvarint(b, uint64(len(key)))
	return append(b, key...)
}

// prefixSuccessor returns the smallest key greater than every key having b
// as a prefix — the exclusive upper bound for a prefix-closed range scan.
// Nil means no bound (b was all 0xFF).
func prefixSuccessor(b []byte) []byte {
	end := append([]byte(nil), b...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// indexedKeys returns the Store's enabled index keys (guarded by idxMu).
func (s *Store) indexEnabled(key string) bool {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.indexed[key]
}

// HasIndex implements PropertyIndex.
func (s *Store) HasIndex(key string) bool { return s.indexEnabled(key) }

// EnableIndex implements PropertyIndex.
func (s *Store) EnableIndex(key string) error {
	if key == "" {
		return fmt.Errorf("gstore: cannot index empty property key")
	}
	s.idxMu.Lock()
	if s.indexed == nil {
		s.indexed = make(map[string]bool)
	}
	if s.indexed[key] {
		s.idxMu.Unlock()
		return nil
	}
	s.indexed[key] = true
	s.idxMu.Unlock()
	// Backfill: one pass over existing vertices. Collect ids first —
	// writing during iteration is not allowed — then index each vertex
	// under its stripe lock, re-reading the current value so a PutVertex
	// racing the backfill can't strand a row for an overwritten value:
	// whichever of the two runs second sees the other's effect.
	var ids []model.VertexID
	err := s.ScanVertices(func(v model.Vertex) bool {
		if _, ok := v.Props[key]; ok {
			ids = append(ids, v.ID)
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, id := range ids {
		mu := s.stripe(id)
		mu.Lock()
		v, ok, err := s.GetVertex(id)
		if err == nil && ok {
			if val, has := v.Props[key]; has {
				err = s.db.Put(propIndexKey(key, val, id), nil)
			}
		}
		mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// LookupVertices implements PropertyIndex.
func (s *Store) LookupVertices(key string, v property.Value) ([]model.VertexID, error) {
	if !s.indexEnabled(key) {
		return nil, fmt.Errorf("gstore: property %q is not indexed", key)
	}
	var ids []model.VertexID
	err := s.db.Scan(propIndexPrefix(key, v), func(k, _ []byte) bool {
		ids = append(ids, model.VertexID(binary.BigEndian.Uint64(k[len(k)-8:])))
		return true
	})
	return ids, err
}

// LookupVerticesRange implements PropertyIndex. The ordered value encoding
// makes [lo, hi] one contiguous key interval: rows of other kinds sort
// entirely before or after it (the kind tag leads), so the scan touches
// exactly the matching rows.
func (s *Store) LookupVerticesRange(key string, lo, hi property.Value) ([]model.VertexID, error) {
	if !s.indexEnabled(key) {
		return nil, fmt.Errorf("gstore: property %q is not indexed", key)
	}
	if err := checkRangeBounds(lo, hi); err != nil {
		return nil, err
	}
	start := propIndexPrefix(key, lo)
	end := prefixSuccessor(propIndexPrefix(key, hi))
	it, err := s.db.NewIterator(kv.IterOptions{Start: start, End: end})
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var ids []model.VertexID
	for ; it.Valid(); it.Next() {
		k := it.Key()
		ids = append(ids, model.VertexID(binary.BigEndian.Uint64(k[len(k)-8:])))
	}
	// Rows sort by value first, id second; a multi-value range needs an
	// id-order result like LookupVertices. A vertex carries one value per
	// key, so there are no duplicates to drop.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// checkRangeBounds validates an index range request: bounds must share an
// order-comparable kind and satisfy lo <= hi.
func checkRangeBounds(lo, hi property.Value) error {
	if lo.Kind() != hi.Kind() {
		return fmt.Errorf("gstore: range bounds have different kinds (%s, %s)", lo.Kind(), hi.Kind())
	}
	if !property.OrderComparable(lo.Kind()) {
		return fmt.Errorf("gstore: %s values are not range-indexable", lo.Kind())
	}
	if lo.Compare(hi) > 0 {
		return fmt.Errorf("gstore: range has lo > hi")
	}
	return nil
}

// updatePropIndexes maintains index rows across a vertex write. old holds
// the previous version when one existed.
func (s *Store) updatePropIndexes(old model.Vertex, hadOld bool, v model.Vertex) error {
	s.idxMu.RLock()
	keys := make([]string, 0, len(s.indexed))
	for k := range s.indexed {
		keys = append(keys, k)
	}
	s.idxMu.RUnlock()
	for _, key := range keys {
		newVal, hasNew := v.Props[key]
		if hadOld {
			if oldVal, hasOldVal := old.Props[key]; hasOldVal && (!hasNew || !oldVal.Equal(newVal)) {
				if err := s.db.Delete(propIndexKey(key, oldVal, v.ID)); err != nil {
					return err
				}
			}
		}
		if hasNew {
			if err := s.db.Put(propIndexKey(key, newVal, v.ID), nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// dropPropIndexes removes a deleted vertex's index rows.
func (s *Store) dropPropIndexes(v model.Vertex) error {
	s.idxMu.RLock()
	keys := make([]string, 0, len(s.indexed))
	for k := range s.indexed {
		keys = append(keys, k)
	}
	s.idxMu.RUnlock()
	for _, key := range keys {
		if val, ok := v.Props[key]; ok {
			if err := s.db.Delete(propIndexKey(key, val, v.ID)); err != nil {
				return err
			}
		}
	}
	return nil
}

// In-memory implementation.

type memIndex struct {
	mu      sync.RWMutex
	byKey   map[string]map[string][]model.VertexID // key -> encoded value -> sorted ids
	enabled map[string]bool
}

func valueToken(v property.Value) string {
	return string(property.AppendValue(nil, v))
}

// HasIndex implements PropertyIndex.
func (m *MemStore) HasIndex(key string) bool {
	m.idx.mu.RLock()
	defer m.idx.mu.RUnlock()
	return m.idx.enabled[key]
}

// EnableIndex implements PropertyIndex.
func (m *MemStore) EnableIndex(key string) error {
	if key == "" {
		return fmt.Errorf("gstore: cannot index empty property key")
	}
	m.idx.mu.Lock()
	if m.idx.enabled == nil {
		m.idx.enabled = make(map[string]bool)
		m.idx.byKey = make(map[string]map[string][]model.VertexID)
	}
	if m.idx.enabled[key] {
		m.idx.mu.Unlock()
		return nil
	}
	m.idx.enabled[key] = true
	m.idx.byKey[key] = make(map[string][]model.VertexID)
	m.idx.mu.Unlock()
	// Backfill the population existing at this point; anything written
	// after the enabled flag above indexes itself through PutVertex. Each
	// vertex is read and indexed under the store lock so a racing write
	// can't leave a row for an overwritten value (the write path holds the
	// same lock across its vertex + index update).
	m.mu.RLock()
	ids := make([]model.VertexID, 0, len(m.vertices))
	for id := range m.vertices {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	for _, id := range ids {
		m.mu.RLock()
		if v, ok := m.vertices[id]; ok {
			if val, has := v.Props[key]; has {
				m.idx.insert(key, val, v.ID)
			}
		}
		m.mu.RUnlock()
	}
	return nil
}

// LookupVertices implements PropertyIndex.
func (m *MemStore) LookupVertices(key string, v property.Value) ([]model.VertexID, error) {
	m.idx.mu.RLock()
	defer m.idx.mu.RUnlock()
	if !m.idx.enabled[key] {
		return nil, fmt.Errorf("gstore: property %q is not indexed", key)
	}
	ids := m.idx.byKey[key][valueToken(v)]
	return append([]model.VertexID(nil), ids...), nil
}

// LookupVerticesRange implements PropertyIndex. The in-memory index is an
// exact-match map, so the range walks the key's distinct values, keeping the
// same bound semantics (and errors) as the persistent store.
func (m *MemStore) LookupVerticesRange(key string, lo, hi property.Value) ([]model.VertexID, error) {
	m.idx.mu.RLock()
	defer m.idx.mu.RUnlock()
	if !m.idx.enabled[key] {
		return nil, fmt.Errorf("gstore: property %q is not indexed", key)
	}
	if err := checkRangeBounds(lo, hi); err != nil {
		return nil, err
	}
	var ids []model.VertexID
	for tok, bucket := range m.idx.byKey[key] {
		v, _, err := property.ConsumeValue([]byte(tok))
		if err != nil {
			return nil, err
		}
		if v.Kind() == lo.Kind() && v.Compare(lo) >= 0 && v.Compare(hi) <= 0 {
			ids = append(ids, bucket...)
		}
	}
	// One value per vertex per key, so buckets are disjoint: sorting alone
	// yields the ascending, duplicate-free contract.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func (ix *memIndex) insert(key string, v property.Value, id model.VertexID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tok := valueToken(v)
	ix.byKey[key][tok] = insertID(ix.byKey[key][tok], id)
}

func (ix *memIndex) remove(key string, v property.Value, id model.VertexID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	tok := valueToken(v)
	ix.byKey[key][tok] = removeID(ix.byKey[key][tok], id)
}

// update maintains the in-memory index across a vertex write or delete.
func (ix *memIndex) update(old model.Vertex, hadOld bool, v model.Vertex, hasNew bool) {
	ix.mu.RLock()
	keys := make([]string, 0, len(ix.enabled))
	for k := range ix.enabled {
		keys = append(keys, k)
	}
	ix.mu.RUnlock()
	for _, key := range keys {
		var oldVal, newVal property.Value
		hasOldVal, hasNewVal := false, false
		if hadOld {
			oldVal, hasOldVal = old.Props[key]
		}
		if hasNew {
			newVal, hasNewVal = v.Props[key]
		}
		switch {
		case hasOldVal && hasNewVal && oldVal.Equal(newVal):
			// unchanged
		default:
			if hasOldVal {
				ix.remove(key, oldVal, old.ID)
			}
			if hasNewVal {
				ix.insert(key, newVal, v.ID)
			}
		}
	}
}
