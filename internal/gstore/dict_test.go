package gstore

import (
	"fmt"
	"reflect"
	"testing"

	"graphtrek/internal/kv"
	"graphtrek/internal/model"
)

// dictStores builds one store of each implementation for a subtest sweep.
func dictStores(t *testing.T) map[string]Graph {
	t.Helper()
	disk, err := Open(t.TempDir(), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return map[string]Graph{
		"mem":    NewMemStore(),
		"disk":   disk,
		"cached": NewCachedGraph(NewMemStore(), 1<<20),
	}
}

func TestInternAllocatesDenseIDsPerPartition(t *testing.T) {
	for name, g := range dictStores(t) {
		t.Run(name, func(t *testing.T) {
			in, ok := InternerOf(g)
			if !ok {
				t.Fatal("store has no interner")
			}
			// Dense per-partition counters, partition embedded in the id.
			for part := 0; part < 3; part++ {
				for ctr := uint64(0); ctr < 4; ctr++ {
					id, err := in.Intern(fmt.Sprintf("p%d-n%d", part, ctr), part)
					if err != nil {
						t.Fatal(err)
					}
					if want := model.InternedID(part, ctr); id != want {
						t.Fatalf("intern(p%d #%d) = %x, want %x", part, ctr, uint64(id), uint64(want))
					}
					if !id.Interned() || id.InternedPartition() != part || id.InternedCounter() != ctr {
						t.Fatalf("id %x decodes to part=%d ctr=%d", uint64(id), id.InternedPartition(), id.InternedCounter())
					}
				}
			}
			// Re-interning an existing name returns its id, no allocation.
			id, err := in.Intern("p1-n2", 1)
			if err != nil {
				t.Fatal(err)
			}
			if want := model.InternedID(1, 2); id != want {
				t.Fatalf("re-intern = %x, want %x", uint64(id), uint64(want))
			}
			// Both lookup directions.
			if got, ok, err := in.LookupID("p2-n3"); err != nil || !ok || got != model.InternedID(2, 3) {
				t.Fatalf("LookupID = %x/%v/%v", uint64(got), ok, err)
			}
			if name, ok, err := in.LookupName(model.InternedID(0, 1)); err != nil || !ok || name != "p0-n1" {
				t.Fatalf("LookupName = %q/%v/%v", name, ok, err)
			}
			if _, ok, err := in.LookupID("ghost"); err != nil || ok {
				t.Fatalf("ghost LookupID ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestApplyInternIdempotentAndAdvancesAllocator(t *testing.T) {
	for name, g := range dictStores(t) {
		t.Run(name, func(t *testing.T) {
			in, _ := InternerOf(g)
			// A replica replays a primary-allocated pair (twice — replication
			// is at-least-once).
			id := model.InternedID(4, 7)
			for i := 0; i < 2; i++ {
				if err := in.ApplyIntern("replayed", id); err != nil {
					t.Fatal(err)
				}
			}
			if got, ok, _ := in.LookupID("replayed"); !ok || got != id {
				t.Fatalf("after replay: %x/%v", uint64(got), ok)
			}
			// Promotion: the replica now allocates for partition 4 and must
			// continue past the replayed counter, not collide with it.
			next, err := in.Intern("fresh", 4)
			if err != nil {
				t.Fatal(err)
			}
			if want := model.InternedID(4, 8); next != want {
				t.Fatalf("post-replay allocation = %x, want %x", uint64(next), uint64(want))
			}
			if err := in.ApplyIntern("bogus", model.VertexID(123)); err == nil {
				t.Fatal("ApplyIntern accepted a non-interned id")
			}
		})
	}
}

func TestScanInternedAndSnapshotCarriesDictionary(t *testing.T) {
	for name, g := range dictStores(t) {
		t.Run(name, func(t *testing.T) {
			in, _ := InternerOf(g)
			want := map[string]model.VertexID{}
			for i := 0; i < 5; i++ {
				n := fmt.Sprintf("n%d", i)
				id, err := in.Intern(n, i%2)
				if err != nil {
					t.Fatal(err)
				}
				want[n] = id
			}
			got := map[string]model.VertexID{}
			if err := in.ScanInterned(func(n string, id model.VertexID) bool {
				got[n] = id
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ScanInterned = %v, want %v", got, want)
			}

			// A handoff snapshot keeping partition 0 ships exactly partition
			// 0's intern pairs, and replaying them onto an empty store
			// reconstructs the mapping.
			fresh := NewMemStore()
			err := SnapshotMutations(g, func(id model.VertexID) bool {
				return id.Interned() && id.InternedPartition() == 0
			}, 2, func(ms []Mutation) error {
				enc := EncodeBatch(ms)
				dec, err := DecodeBatch(enc)
				if err != nil {
					return err
				}
				for _, m := range dec {
					if err := m.Apply(fresh); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for n, id := range want {
				gotID, ok, _ := fresh.LookupID(n)
				if id.InternedPartition() == 0 {
					if !ok || gotID != id {
						t.Errorf("after handoff: LookupID(%q) = %x/%v, want %x", n, uint64(gotID), ok, uint64(id))
					}
				} else if ok {
					t.Errorf("after handoff: foreign-partition name %q present", n)
				}
			}
		})
	}
}

func TestInternMutationRoundTrip(t *testing.T) {
	ms := []Mutation{
		{Op: OpIntern, ID: model.InternedID(3, 9), Name: "users/sam"},
		{Op: OpPutVertex, Vertex: model.Vertex{ID: model.InternedID(3, 9), Label: "User"}},
	}
	dec, err := DecodeBatch(EncodeBatch(ms))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, ms) {
		t.Fatalf("round trip = %+v, want %+v", dec, ms)
	}
	if got := ms[0].RoutingID(); got != model.InternedID(3, 9) {
		t.Fatalf("RoutingID = %x", uint64(got))
	}
}
