package gstore

import (
	"encoding/binary"
	"fmt"

	"graphtrek/internal/model"
)

// The interning dictionary maps external string vertex names to dense
// interned ids (model.InternedID) and back. Each partition allocates from
// its own counter, and the id embeds the partition, so allocation needs no
// cross-partition coordination and routing needs no dictionary.
//
// The mapping is replicated state: the partition primary allocates under
// its write path (an OpIntern mutation per new name, shipped through the
// same quorum machinery as graph writes), followers and joining servers
// replay ApplyIntern, and SnapshotMutations emits the kept partitions'
// entries so a shard handoff reconstructs the dictionary alongside the
// graph. Strings are materialized from the id→name direction only at the
// client boundary (rtn() results, gtq output, traces).
//
// Store key layout (alongside the graph rows):
//
//	'D' <name>          -> id:8 (big-endian)   name → id
//	'N' <id:8>          -> name                id → name
//	'C' <part:uvarint>  -> next counter:8      per-partition allocator
const (
	tagDictName = 'D'
	tagDictID   = 'N'
	tagDictCtr  = 'C'
)

// Interner is the dictionary capability a Graph may implement. All methods
// are safe for concurrent use.
type Interner interface {
	// Intern returns the interned id for name, allocating the next dense id
	// of part if the name is new. Only the partition's current primary may
	// allocate; replicas receive the result via ApplyIntern.
	Intern(name string, part int) (model.VertexID, error)
	// ApplyIntern installs a primary-allocated (name, id) pair, advancing
	// the local allocator past it. Idempotent: replaying a pair already
	// present is a no-op, which is what makes at-least-once replication and
	// snapshot/live-tail overlap safe.
	ApplyIntern(name string, id model.VertexID) error
	// LookupID resolves a name to its interned id.
	LookupID(name string) (model.VertexID, bool, error)
	// LookupName resolves an interned id back to its name — the client-
	// boundary materialization direction.
	LookupName(id model.VertexID) (string, bool, error)
	// ScanInterned visits every (name, id) pair in id order. Return false
	// to stop early.
	ScanInterned(fn func(name string, id model.VertexID) bool) error
}

// InternerOf unwraps g to its Interner capability, reaching through a
// CachedGraph if needed.
func InternerOf(g Graph) (Interner, bool) {
	if c, ok := g.(*CachedGraph); ok {
		g = c.Unwrap()
	}
	in, ok := g.(Interner)
	return in, ok
}

func dictNameKey(name string) []byte {
	b := make([]byte, 0, 1+len(name))
	b = append(b, tagDictName)
	return append(b, name...)
}

func dictIDKey(id model.VertexID) []byte {
	b := make([]byte, 0, 9)
	b = append(b, tagDictID)
	return binary.BigEndian.AppendUint64(b, uint64(id))
}

func dictCtrKey(part int) []byte {
	b := make([]byte, 0, 1+binary.MaxVarintLen64)
	b = append(b, tagDictCtr)
	return binary.AppendUvarint(b, uint64(part))
}

var (
	_ Interner = (*Store)(nil)
	_ Interner = (*MemStore)(nil)
	_ Interner = (*CachedGraph)(nil)
)

// Intern implements Interner.
func (s *Store) Intern(name string, part int) (model.VertexID, error) {
	if name == "" {
		return 0, fmt.Errorf("gstore: cannot intern empty name")
	}
	if part < 0 || part > model.MaxInternPart {
		return 0, fmt.Errorf("gstore: partition %d out of interning range", part)
	}
	s.dictMu.Lock()
	defer s.dictMu.Unlock()
	if val, ok, err := s.db.Get(dictNameKey(name)); err != nil {
		return 0, err
	} else if ok {
		return model.VertexID(binary.BigEndian.Uint64(val)), nil
	}
	ctr := uint64(0)
	if val, ok, err := s.db.Get(dictCtrKey(part)); err != nil {
		return 0, err
	} else if ok {
		ctr = binary.BigEndian.Uint64(val)
	}
	if ctr > model.MaxInternCtr {
		return 0, fmt.Errorf("gstore: partition %d interning counter exhausted", part)
	}
	id := model.InternedID(part, ctr)
	if err := s.putInternLocked(name, id); err != nil {
		return 0, err
	}
	return id, nil
}

// ApplyIntern implements Interner.
func (s *Store) ApplyIntern(name string, id model.VertexID) error {
	if !id.Interned() {
		return fmt.Errorf("gstore: ApplyIntern of non-interned id %v", id)
	}
	s.dictMu.Lock()
	defer s.dictMu.Unlock()
	return s.putInternLocked(name, id)
}

// putInternLocked writes both directions and advances the partition's
// allocator past id. Caller holds dictMu.
func (s *Store) putInternLocked(name string, id model.VertexID) error {
	if err := s.db.Put(dictNameKey(name), binary.BigEndian.AppendUint64(nil, uint64(id))); err != nil {
		return err
	}
	if err := s.db.Put(dictIDKey(id), []byte(name)); err != nil {
		return err
	}
	part, next := id.InternedPartition(), id.InternedCounter()+1
	cur := uint64(0)
	if val, ok, err := s.db.Get(dictCtrKey(part)); err != nil {
		return err
	} else if ok {
		cur = binary.BigEndian.Uint64(val)
	}
	if next > cur {
		return s.db.Put(dictCtrKey(part), binary.BigEndian.AppendUint64(nil, next))
	}
	return nil
}

// LookupID implements Interner.
func (s *Store) LookupID(name string) (model.VertexID, bool, error) {
	val, ok, err := s.db.Get(dictNameKey(name))
	if err != nil || !ok {
		return 0, false, err
	}
	return model.VertexID(binary.BigEndian.Uint64(val)), true, nil
}

// LookupName implements Interner.
func (s *Store) LookupName(id model.VertexID) (string, bool, error) {
	val, ok, err := s.db.Get(dictIDKey(id))
	if err != nil || !ok {
		return "", false, err
	}
	return string(val), true, nil
}

// ScanInterned implements Interner.
func (s *Store) ScanInterned(fn func(name string, id model.VertexID) bool) error {
	return s.db.Scan([]byte{tagDictID}, func(k, v []byte) bool {
		return fn(string(v), model.VertexID(binary.BigEndian.Uint64(k[1:9])))
	})
}

// memDict is the MemStore side of the dictionary.
type memDict struct {
	names map[string]model.VertexID
	ids   map[model.VertexID]string
	ctrs  map[int]uint64
}

// Intern implements Interner.
func (m *MemStore) Intern(name string, part int) (model.VertexID, error) {
	if name == "" {
		return 0, fmt.Errorf("gstore: cannot intern empty name")
	}
	if part < 0 || part > model.MaxInternPart {
		return 0, fmt.Errorf("gstore: partition %d out of interning range", part)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dictInitLocked()
	if id, ok := m.dict.names[name]; ok {
		return id, nil
	}
	ctr := m.dict.ctrs[part]
	if ctr > model.MaxInternCtr {
		return 0, fmt.Errorf("gstore: partition %d interning counter exhausted", part)
	}
	id := model.InternedID(part, ctr)
	m.putInternLocked(name, id)
	return id, nil
}

// ApplyIntern implements Interner.
func (m *MemStore) ApplyIntern(name string, id model.VertexID) error {
	if !id.Interned() {
		return fmt.Errorf("gstore: ApplyIntern of non-interned id %v", id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dictInitLocked()
	m.putInternLocked(name, id)
	return nil
}

func (m *MemStore) dictInitLocked() {
	if m.dict.names == nil {
		m.dict.names = make(map[string]model.VertexID)
		m.dict.ids = make(map[model.VertexID]string)
		m.dict.ctrs = make(map[int]uint64)
	}
}

func (m *MemStore) putInternLocked(name string, id model.VertexID) {
	m.dict.names[name] = id
	m.dict.ids[id] = name
	if next := id.InternedCounter() + 1; next > m.dict.ctrs[id.InternedPartition()] {
		m.dict.ctrs[id.InternedPartition()] = next
	}
}

// LookupID implements Interner.
func (m *MemStore) LookupID(name string) (model.VertexID, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok := m.dict.names[name]
	return id, ok, nil
}

// LookupName implements Interner.
func (m *MemStore) LookupName(id model.VertexID) (string, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	name, ok := m.dict.ids[id]
	return name, ok, nil
}

// ScanInterned implements Interner.
func (m *MemStore) ScanInterned(fn func(name string, id model.VertexID) bool) error {
	m.mu.RLock()
	ids := make([]model.VertexID, 0, len(m.dict.ids))
	for id := range m.dict.ids {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sortIDs(ids)
	for _, id := range ids {
		m.mu.RLock()
		name, ok := m.dict.ids[id]
		m.mu.RUnlock()
		if ok && !fn(name, id) {
			return nil
		}
	}
	return nil
}

// Dictionary reads and writes pass through the cache wrapper untouched:
// intern entries are immutable once allocated, so there is nothing to
// invalidate, and the id→name direction is only exercised at the client
// boundary where a kv read per result is fine.

// Intern implements Interner.
func (c *CachedGraph) Intern(name string, part int) (model.VertexID, error) {
	in, ok := InternerOf(c.g)
	if !ok {
		return 0, fmt.Errorf("gstore: underlying store has no interner")
	}
	return in.Intern(name, part)
}

// ApplyIntern implements Interner.
func (c *CachedGraph) ApplyIntern(name string, id model.VertexID) error {
	in, ok := InternerOf(c.g)
	if !ok {
		return fmt.Errorf("gstore: underlying store has no interner")
	}
	return in.ApplyIntern(name, id)
}

// LookupID implements Interner.
func (c *CachedGraph) LookupID(name string) (model.VertexID, bool, error) {
	in, ok := InternerOf(c.g)
	if !ok {
		return 0, false, fmt.Errorf("gstore: underlying store has no interner")
	}
	return in.LookupID(name)
}

// LookupName implements Interner.
func (c *CachedGraph) LookupName(id model.VertexID) (string, bool, error) {
	in, ok := InternerOf(c.g)
	if !ok {
		return "", false, fmt.Errorf("gstore: underlying store has no interner")
	}
	return in.LookupName(id)
}

// ScanInterned implements Interner.
func (c *CachedGraph) ScanInterned(fn func(name string, id model.VertexID) bool) error {
	in, ok := InternerOf(c.g)
	if !ok {
		return fmt.Errorf("gstore: underlying store has no interner")
	}
	return in.ScanInterned(fn)
}
