package gstore

import (
	"reflect"
	"testing"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

func replTestMutations() []Mutation {
	return []Mutation{
		{Op: OpPutVertex, Vertex: model.Vertex{ID: 1, Label: "User", Props: property.Map{"name": property.String("ada")}}},
		{Op: OpPutVertex, Vertex: model.Vertex{ID: 2, Label: "File"}},
		{Op: OpPutEdge, Edge: model.Edge{Src: 1, Dst: 2, Label: "read", Props: property.Map{"bytes": property.Int(42)}}},
		{Op: OpPutEdge, Edge: model.Edge{Src: 1, Dst: 2, Label: "write"}},
		{Op: OpDelEdge, Src: 1, Dst: 2, Label: "write"},
		{Op: OpPutVertex, Vertex: model.Vertex{ID: 3, Label: "User"}},
		{Op: OpDelVertex, ID: 3},
	}
}

func TestMutationBatchRoundTrip(t *testing.T) {
	ms := replTestMutations()
	got, err := DecodeBatch(EncodeBatch(ms))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ms) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, ms)
	}
	// Truncations fail cleanly.
	enc := EncodeBatch(ms)
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeBatch(enc[:i]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", i)
		}
	}
	if _, err := DecodeBatch(append(enc, 9)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}

// Applying the same batch twice must converge to the same state —
// replication delivers at-least-once.
func TestMutationApplyIdempotent(t *testing.T) {
	ms := replTestMutations()
	apply := func(times int) *MemStore {
		g := NewMemStore()
		for i := 0; i < times; i++ {
			for _, m := range ms {
				if err := m.Apply(g); err != nil {
					t.Fatal(err)
				}
			}
		}
		return g
	}
	once, twice := apply(1), apply(2)
	for _, g := range []*MemStore{once, twice} {
		v, ok, _ := g.GetVertex(1)
		if !ok || v.Label != "User" {
			t.Fatalf("vertex 1: %+v ok=%v", v, ok)
		}
		if _, ok, _ := g.GetVertex(3); ok {
			t.Fatal("deleted vertex 3 present")
		}
		var edges []model.Edge
		if err := g.ScanAllEdges(1, func(e model.Edge) bool { edges = append(edges, e); return true }); err != nil {
			t.Fatal(err)
		}
		if len(edges) != 1 || edges[0].Label != "read" {
			t.Fatalf("edges of 1: %+v", edges)
		}
	}
}

func TestSnapshotMutationsRebuildsPartition(t *testing.T) {
	src := NewMemStore()
	keep := func(id model.VertexID) bool { return id%2 == 0 }
	for id := model.VertexID(0); id < 20; id++ {
		if err := src.PutVertex(model.Vertex{ID: id, Label: "N"}); err != nil {
			t.Fatal(err)
		}
		// Edges to both kept and dropped destinations; routing is by source.
		if err := src.PutEdge(model.Edge{Src: id, Dst: (id + 1) % 20, Label: "next"}); err != nil {
			t.Fatal(err)
		}
	}

	dst := NewMemStore()
	var batches, total int
	err := SnapshotMutations(src, keep, 4, func(ms []Mutation) error {
		batches++
		total += len(ms)
		for _, m := range ms {
			if !keep(m.RoutingID()) {
				t.Fatalf("snapshot leaked mutation routed to %d", m.RoutingID())
			}
			if err := m.Apply(dst); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 { // 10 vertices + 10 edges
		t.Fatalf("snapshot emitted %d mutations in %d batches, want 20", total, batches)
	}
	if batches < 5 {
		t.Fatalf("snapshot ignored batch size: %d batches for 20 mutations", batches)
	}
	for id := model.VertexID(0); id < 20; id++ {
		_, ok, _ := dst.GetVertex(id)
		if ok != keep(id) {
			t.Fatalf("vertex %d present=%v want %v", id, ok, keep(id))
		}
		var n int
		if err := dst.ScanAllEdges(id, func(model.Edge) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if want := 0; keep(id) {
			want = 1
			if n != want {
				t.Fatalf("vertex %d: %d edges want %d", id, n, want)
			}
		} else if n != 0 {
			t.Fatalf("vertex %d: %d edges want 0", id, n)
		}
	}
}
