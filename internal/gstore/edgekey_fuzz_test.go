package gstore

import (
	"testing"
)

// TestParseEdgeKeyBoundsWrap pins the regression: a key whose multi-byte
// uvarint declares a label longer than the room left used to slip past the
// bounds guard (the signed subtraction was compared as uint64, wrapping
// negative room past any declared length) and panic slicing the label out.
func TestParseEdgeKeyBoundsWrap(t *testing.T) {
	// 'E' + src8 + uvarint{0x80,0x01}=128 + 7 bytes: room = 9-2-8 = -1.
	bad := append([]byte{tagEdge}, make([]byte, 8)...)
	bad = append(bad, 0x80, 0x01)
	bad = append(bad, make([]byte, 7)...)
	if _, _, _, err := parseEdgeKey(bad); err == nil {
		t.Fatal("malformed key with wrapping bounds accepted")
	}
}

// FuzzParseEdgeKey asserts parseEdgeKey never panics on arbitrary input and
// that any accepted key describes a triple that round-trips: re-encoding the
// triple and re-parsing yields the same triple. (Byte-level round-trip is
// deliberately not required — Uvarint accepts non-minimal length encodings,
// which re-encode shorter.)
func FuzzParseEdgeKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{tagEdge})
	f.Add(edgeKey(1, "run", 2))
	f.Add(edgeKey(0, "", 1<<63))
	f.Add(edgeKey(42, "a-rather-long-edge-label", 7))
	bad := append([]byte{tagEdge}, make([]byte, 8)...)
	bad = append(bad, 0x80, 0x01)
	bad = append(bad, make([]byte, 7)...)
	f.Add(bad)
	f.Fuzz(func(t *testing.T, key []byte) {
		src, label, dst, err := parseEdgeKey(key)
		if err != nil {
			return
		}
		src2, label2, dst2, err := parseEdgeKey(edgeKey(src, label, dst))
		if err != nil {
			t.Fatalf("re-encoded key rejected: (%d,%q,%d): %v", src, label, dst, err)
		}
		if src2 != src || label2 != label || dst2 != dst {
			t.Fatalf("round trip changed triple: (%d,%q,%d) -> (%d,%q,%d)", src, label, dst, src2, label2, dst2)
		}
	})
}
