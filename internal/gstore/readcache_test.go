package gstore

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

func collectEdges(t *testing.T, g Graph, src model.VertexID, label string) []model.Edge {
	t.Helper()
	var edges []model.Edge
	if err := g.ScanEdges(src, label, func(e model.Edge) bool {
		edges = append(edges, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return edges
}

func collectEdgeIDs(t *testing.T, g Graph, src model.VertexID, label string) []model.VertexID {
	t.Helper()
	var ids []model.VertexID
	if err := g.ScanEdgeIDs(src, label, func(dst model.VertexID) bool {
		ids = append(ids, dst)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCachedGraph(NewMemStore(), 1<<20)
	v := model.Vertex{ID: 7, Label: "User", Props: property.Map{"name": property.String("sam")}}
	if err := c.PutVertex(v); err != nil {
		t.Fatal(err)
	}
	c.PutEdge(model.Edge{Src: 7, Dst: 8, Label: "run"})
	c.PutEdge(model.Edge{Src: 7, Dst: 9, Label: "run"})

	for i := 0; i < 3; i++ {
		got, ok, err := c.GetVertex(7)
		if err != nil || !ok || !reflect.DeepEqual(got, v) {
			t.Fatalf("read %d: %+v ok=%v err=%v", i, got, ok, err)
		}
	}
	for i := 0; i < 3; i++ {
		if ids := collectEdgeIDs(t, c, 7, "run"); len(ids) != 2 {
			t.Fatalf("scan %d: %v", i, ids)
		}
	}
	// Property-bearing scans pass through uncached and leave the adjacency
	// counters untouched.
	if edges := collectEdges(t, c, 7, "run"); len(edges) != 2 {
		t.Fatalf("ScanEdges: %v", edges)
	}
	// Negative vertex reads are never cached: both count as misses.
	for i := 0; i < 2; i++ {
		if _, ok, _ := c.GetVertex(999); ok {
			t.Fatal("ghost vertex found")
		}
	}
	st := c.CacheStats()
	want := CacheStats{VtxHits: 2, VtxMisses: 3, AdjHits: 2, AdjMisses: 1, Bytes: st.Bytes}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
	if st.Bytes <= 0 {
		t.Errorf("cached bytes = %d, want > 0", st.Bytes)
	}
}

// TestCacheInvalidation checks every write shape drops exactly the entries
// it makes stale: a read issued after the write returns must see the new
// version.
func TestCacheInvalidation(t *testing.T) {
	c := NewCachedGraph(NewMemStore(), 1<<20)
	c.PutVertex(model.Vertex{ID: 1, Label: "User", Props: property.Map{"n": property.Int(1)}})
	c.PutEdge(model.Edge{Src: 1, Dst: 2, Label: "run"})

	c.GetVertex(1) // populate both shapes
	collectEdges(t, c, 1, "run")

	// Overwrite the vertex: the cached copy must not survive.
	c.PutVertex(model.Vertex{ID: 1, Label: "User", Props: property.Map{"n": property.Int(2)}})
	if got, _, _ := c.GetVertex(1); got.Props["n"].I64() != 2 {
		t.Errorf("after PutVertex: read %v", got.Props["n"])
	}

	// Add an edge under the cached label: the slice must refresh.
	c.PutEdge(model.Edge{Src: 1, Dst: 3, Label: "run"})
	if edges := collectEdges(t, c, 1, "run"); len(edges) != 2 {
		t.Errorf("after PutEdge: %v", edges)
	}

	// Remove one edge: the refreshed slice must shrink.
	collectEdges(t, c, 1, "run") // re-populate
	c.DeleteEdge(1, "run", 2)
	if edges := collectEdges(t, c, 1, "run"); len(edges) != 1 || edges[0].Dst != 3 {
		t.Errorf("after DeleteEdge: %v", edges)
	}

	// Delete the vertex: both the vertex and its adjacency must go.
	c.GetVertex(1)
	collectEdges(t, c, 1, "run")
	c.DeleteVertex(1)
	if _, ok, _ := c.GetVertex(1); ok {
		t.Error("after DeleteVertex: vertex still readable")
	}
	if edges := collectEdges(t, c, 1, "run"); len(edges) != 0 {
		t.Errorf("after DeleteVertex: edges %v", edges)
	}
}

// TestCacheDifferentialQuick runs the same randomized op sequence against a
// cached store and a plain MemStore oracle, comparing every read. Three
// capacities: ample (everything fits), tiny (constant eviction pressure on
// a handful of entries) and zero (nothing is ever cached) — correctness
// must not depend on what happens to be resident.
func TestCacheDifferentialQuick(t *testing.T) {
	for _, maxBytes := range []int64{1 << 20, 4096, 0} {
		c := NewCachedGraph(NewMemStore(), maxBytes)
		oracle := NewMemStore()
		r := rand.New(rand.NewSource(maxBytes + 1))
		const nIDs = 30
		labels := []string{"run", "read", "write"}
		for op := 0; op < 2000; op++ {
			id := model.VertexID(r.Intn(nIDs))
			label := labels[r.Intn(len(labels))]
			switch r.Intn(8) {
			case 0:
				v := model.Vertex{ID: id, Label: "User",
					Props: property.Map{"n": property.Int(int64(op))}}
				c.PutVertex(v)
				oracle.PutVertex(v)
			case 1:
				e := model.Edge{Src: id, Dst: model.VertexID(r.Intn(nIDs)), Label: label,
					Props: property.Map{"w": property.Int(int64(op % 7))}}
				c.PutEdge(e)
				oracle.PutEdge(e)
			case 2:
				dst := model.VertexID(r.Intn(nIDs))
				c.DeleteEdge(id, label, dst)
				oracle.DeleteEdge(id, label, dst)
			case 3:
				if r.Intn(4) == 0 { // rare: deletes drop adjacency too
					c.DeleteVertex(id)
					oracle.DeleteVertex(id)
				}
			case 4, 5:
				got, okGot, _ := c.GetVertex(id)
				want, okWant, _ := oracle.GetVertex(id)
				if okGot != okWant || !reflect.DeepEqual(got, want) {
					t.Fatalf("cap %d op %d: GetVertex(%d) = %+v/%v, want %+v/%v",
						maxBytes, op, id, got, okGot, want, okWant)
				}
			case 6:
				got := collectEdges(t, c, id, label)
				want := collectEdges(t, oracle, id, label)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cap %d op %d: ScanEdges(%d,%s) = %v, want %v",
						maxBytes, op, id, label, got, want)
				}
			default:
				got := collectEdgeIDs(t, c, id, label)
				want := collectEdgeIDs(t, oracle, id, label)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cap %d op %d: ScanEdgeIDs(%d,%s) = %v, want %v",
						maxBytes, op, id, label, got, want)
				}
			}
		}
		st := c.CacheStats()
		if maxBytes == 0 && st.Bytes != 0 {
			t.Errorf("zero-capacity cache holds %d bytes", st.Bytes)
		}
		if st.Bytes > maxBytes {
			t.Errorf("cap %d: cache holds %d bytes over budget", maxBytes, st.Bytes)
		}
		if maxBytes == 1<<20 && st.VtxHits+st.AdjHits == 0 {
			t.Error("ample cache never hit")
		}
	}
}

// TestCacheConcurrentReadsAndWrites is a -race exercise of the gen-guarded
// miss path: readers and writers race on a small id set, then a quiesced
// final pass must observe exactly the underlying state (a stale insert
// published over a newer write would survive to this point).
func TestCacheConcurrentReadsAndWrites(t *testing.T) {
	c := NewCachedGraph(NewMemStore(), 1<<18)
	const (
		nIDs    = 8
		writers = 4
		readers = 4
		rounds  = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := model.VertexID(i % nIDs)
				c.PutVertex(model.Vertex{ID: id, Label: "User",
					Props: property.Map{"n": property.Int(int64(w*rounds + i))}})
				c.PutEdge(model.Edge{Src: id, Dst: model.VertexID((i + 1) % nIDs), Label: "run"})
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c.GetVertex(model.VertexID(i % nIDs))
				c.ScanEdgeIDs(model.VertexID(i%nIDs), "run", func(model.VertexID) bool { return true })
			}
		}()
	}
	wg.Wait()
	for id := model.VertexID(0); id < nIDs; id++ {
		got, okGot, _ := c.GetVertex(id)
		want, okWant, _ := c.Unwrap().GetVertex(id)
		if okGot != okWant || !reflect.DeepEqual(got, want) {
			t.Errorf("quiesced GetVertex(%d) = %+v/%v, underlying %+v/%v", id, got, okGot, want, okWant)
		}
		if got, want := collectEdgeIDs(t, c, id, "run"), collectEdgeIDs(t, c.Unwrap(), id, "run"); !reflect.DeepEqual(got, want) {
			t.Errorf("quiesced ScanEdgeIDs(%d) = %v, underlying %v", id, got, want)
		}
	}
}

// TestCachePackedAdjBudgetEviction pins the byte accounting of packed
// adjacency entries under a tiny budget: each run is charged for its slice
// backing array (8 bytes per slot of capacity, not just the header), so two
// large runs cannot co-reside in a shard whose budget fits only one, and
// re-scanning the evicted run is a fresh miss.
func TestCachePackedAdjBudgetEviction(t *testing.T) {
	const perShard = 2048
	c := NewCachedGraph(NewMemStore(), 16*perShard)
	const src, fanout = model.VertexID(5), 100
	for _, label := range []string{"aa", "bb"} {
		for d := 0; d < fanout; d++ {
			c.PutEdge(model.Edge{Src: src, Dst: model.VertexID(1000 + d), Label: label})
		}
	}
	// One packed run costs 64 + 2 + 8*cap bytes; with append growth to 128
	// slots that is ~1090 — over half the shard budget — so caching "bb"
	// must evict "aa".
	collectEdgeIDs(t, c, src, "aa")
	st := c.CacheStats()
	if min := int64(adjOverhead + 2 + 8*fanout); st.Bytes < min {
		t.Errorf("one run charged %d bytes, want >= %d (backing array, not header)", st.Bytes, min)
	}
	collectEdgeIDs(t, c, src, "bb")
	if st := c.CacheStats(); st.Bytes > perShard {
		t.Errorf("shard over budget: %d > %d", st.Bytes, perShard)
	}
	if ids := collectEdgeIDs(t, c, src, "aa"); len(ids) != fanout {
		t.Fatalf("re-scan returned %d ids", len(ids))
	}
	st = c.CacheStats()
	if st.AdjMisses != 3 {
		t.Errorf("adj misses = %d, want 3 (aa, bb, aa-after-eviction)", st.AdjMisses)
	}
	if st.AdjHits != 0 {
		t.Errorf("adj hits = %d, want 0", st.AdjHits)
	}
}

// TestCacheOversizeEntryNotCached pins the budget rule: an entry larger
// than one shard's budget passes through without being cached (and without
// evicting the whole shard to make room for something that cannot fit).
func TestCacheOversizeEntryNotCached(t *testing.T) {
	c := NewCachedGraph(NewMemStore(), 16*200) // 200 bytes per shard
	big := model.Vertex{ID: 1, Label: "User",
		Props: property.Map{"blob": property.String(string(make([]byte, 4096)))}}
	c.PutVertex(big)
	for i := 0; i < 2; i++ {
		if _, ok, _ := c.GetVertex(1); !ok {
			t.Fatal("oversize vertex unreadable")
		}
	}
	st := c.CacheStats()
	if st.VtxHits != 0 || st.VtxMisses != 2 {
		t.Errorf("oversize entry was cached: %+v", st)
	}
	if st.Bytes != 0 {
		t.Errorf("oversize entry charged %d bytes", st.Bytes)
	}
}
