package gstore

import (
	"sort"
	"sync"

	"graphtrek/internal/model"
)

// MemStore is an in-memory Graph. It keeps adjacency grouped by label and
// sorted by destination, matching the iteration order of the persistent
// Store, so the two are interchangeable in tests and simulations.
type MemStore struct {
	mu       sync.RWMutex
	vertices map[model.VertexID]model.Vertex
	byLabel  map[string][]model.VertexID // sorted ids per vertex label
	edges    map[model.VertexID]map[string][]model.Edge
	idx      memIndex
	dict     memDict // interning dictionary, lazily initialized (dict.go)
}

// sortIDs orders vertex ids ascending (dictionary scans mirror the
// persistent store's key order).
func sortIDs(ids []model.VertexID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

var _ Graph = (*MemStore)(nil)

// NewMemStore returns an empty in-memory graph.
func NewMemStore() *MemStore {
	return &MemStore{
		vertices: make(map[model.VertexID]model.Vertex),
		byLabel:  make(map[string][]model.VertexID),
		edges:    make(map[model.VertexID]map[string][]model.Edge),
	}
}

// Close implements Graph; a MemStore has nothing to release.
func (m *MemStore) Close() error { return nil }

// PutVertex implements Graph. The index update happens inside the store
// lock: with it outside, two racing writers to one id could apply their
// index transitions in the opposite order of their vertex writes and
// strand a row for an overwritten value.
func (m *MemStore) PutVertex(v model.Vertex) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	old, hadOld := m.vertices[v.ID]
	if hadOld {
		if old.Label != v.Label {
			m.byLabel[old.Label] = removeID(m.byLabel[old.Label], v.ID)
			m.byLabel[v.Label] = insertID(m.byLabel[v.Label], v.ID)
		}
	} else {
		m.byLabel[v.Label] = insertID(m.byLabel[v.Label], v.ID)
	}
	m.vertices[v.ID] = v
	m.idx.update(old, hadOld, v, true)
	return nil
}

func insertID(ids []model.VertexID, id model.VertexID) []model.VertexID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

func removeID(ids []model.VertexID, id model.VertexID) []model.VertexID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return append(ids[:i], ids[i+1:]...)
	}
	return ids
}

// GetVertex implements Graph.
func (m *MemStore) GetVertex(id model.VertexID) (model.Vertex, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.vertices[id]
	return v, ok, nil
}

// DeleteVertex implements Graph. Index maintenance stays inside the store
// lock for the same write-write ordering reason as PutVertex.
func (m *MemStore) DeleteVertex(id model.VertexID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vertices[id]
	if !ok {
		return nil
	}
	delete(m.vertices, id)
	m.byLabel[v.Label] = removeID(m.byLabel[v.Label], id)
	delete(m.edges, id)
	m.idx.update(v, true, model.Vertex{}, false)
	return nil
}

// PutEdge implements Graph.
func (m *MemStore) PutEdge(e model.Edge) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	byLabel, ok := m.edges[e.Src]
	if !ok {
		byLabel = make(map[string][]model.Edge)
		m.edges[e.Src] = byLabel
	}
	list := byLabel[e.Label]
	i := sort.Search(len(list), func(i int) bool { return list[i].Dst >= e.Dst })
	if i < len(list) && list[i].Dst == e.Dst {
		list[i] = e
		return nil
	}
	list = append(list, model.Edge{})
	copy(list[i+1:], list[i:])
	list[i] = e
	byLabel[e.Label] = list
	return nil
}

// DeleteEdge implements Graph.
func (m *MemStore) DeleteEdge(src model.VertexID, label string, dst model.VertexID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	byLabel, ok := m.edges[src]
	if !ok {
		return nil
	}
	list := byLabel[label]
	i := sort.Search(len(list), func(i int) bool { return list[i].Dst >= dst })
	if i < len(list) && list[i].Dst == dst {
		byLabel[label] = append(list[:i], list[i+1:]...)
	}
	return nil
}

// ScanEdges implements Graph.
func (m *MemStore) ScanEdges(src model.VertexID, label string, fn func(model.Edge) bool) error {
	m.mu.RLock()
	list := m.edges[src][label]
	m.mu.RUnlock()
	for _, e := range list {
		if !fn(e) {
			return nil
		}
	}
	return nil
}

// ScanEdgeIDs implements Graph.
func (m *MemStore) ScanEdgeIDs(src model.VertexID, label string, fn func(model.VertexID) bool) error {
	m.mu.RLock()
	list := m.edges[src][label]
	m.mu.RUnlock()
	for _, e := range list {
		if !fn(e.Dst) {
			return nil
		}
	}
	return nil
}

// ScanAllEdges implements Graph. Labels are visited in sorted order to
// match the persistent store's key order.
func (m *MemStore) ScanAllEdges(src model.VertexID, fn func(model.Edge) bool) error {
	m.mu.RLock()
	byLabel := m.edges[src]
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	m.mu.RUnlock()
	// Persistent-store key order: labels sort by (length, bytes) because
	// the key embeds a uvarint length before the label text.
	sort.Slice(labels, func(i, j int) bool {
		if len(labels[i]) != len(labels[j]) {
			return len(labels[i]) < len(labels[j])
		}
		return labels[i] < labels[j]
	})
	for _, l := range labels {
		m.mu.RLock()
		list := m.edges[src][l]
		m.mu.RUnlock()
		for _, e := range list {
			if !fn(e) {
				return nil
			}
		}
	}
	return nil
}

// ScanVerticesByLabel implements Graph.
func (m *MemStore) ScanVerticesByLabel(label string, fn func(model.VertexID) bool) error {
	m.mu.RLock()
	ids := append([]model.VertexID(nil), m.byLabel[label]...)
	m.mu.RUnlock()
	for _, id := range ids {
		if !fn(id) {
			return nil
		}
	}
	return nil
}

// ScanVertices implements Graph.
func (m *MemStore) ScanVertices(fn func(model.Vertex) bool) error {
	m.mu.RLock()
	ids := make([]model.VertexID, 0, len(m.vertices))
	for id := range m.vertices {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.mu.RLock()
		v, ok := m.vertices[id]
		m.mu.RUnlock()
		if ok && !fn(v) {
			return nil
		}
	}
	return nil
}

// NumVertices reports the vertex count (for generators and stats).
func (m *MemStore) NumVertices() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.vertices)
}

// NumEdges reports the edge count (for generators and stats).
func (m *MemStore) NumEdges() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, byLabel := range m.edges {
		for _, list := range byLabel {
			n += len(list)
		}
	}
	return n
}
