package gstore

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// CachedGraph wraps a Graph with a memory-bounded, sharded read cache over
// the two hot read shapes of the traversal engine: decoded vertices
// (GetVertex, one per merged execution group) and CSR-style packed per-
// (src,label) adjacency runs (ScanEdgeIDs, one per expansion) — a plain
// []VertexID, 8 bytes per edge, no Edge structs, no property maps. A hit
// skips the LSM lookup and all decoding — the stand-in for the RocksDB
// block cache §VI leans on, but holding the compact secondary structure a
// traversal actually consumes. ScanEdges (edge properties needed) passes
// through uncached; the engines only take it when a step carries edge
// filters.
//
// Consistency: writes go to the underlying store first, then invalidate the
// affected entries before returning, so a reader that starts after a write
// returns never sees the overwritten version. Concurrent read/write races
// are handled with a per-shard generation counter: a reader snapshots the
// generation before fetching from the underlying store and only inserts if
// no invalidation happened in between, so a stale fetch can never be
// published over a newer write.
type CachedGraph struct {
	g      Graph
	budget int64 // per-shard byte budget
	shards [cacheShards]cacheShard

	vtxHits   atomic.Int64
	vtxMisses atomic.Int64
	adjHits   atomic.Int64
	adjMisses atomic.Int64
}

// CacheStats are the cumulative hit/miss counters of a CachedGraph.
type CacheStats struct {
	VtxHits   int64
	VtxMisses int64
	AdjHits   int64
	AdjMisses int64
	Bytes     int64 // current cached bytes (estimate)
}

// CacheStatter is implemented by stores that expose read-cache counters;
// the server overlays them into its metrics snapshot.
type CacheStatter interface {
	CacheStats() CacheStats
}

// cacheShards is the number of independently locked cache segments. Both a
// vertex and its out-adjacency hash to the same shard (by vertex / source
// id), so DeleteVertex invalidates everything it affects under one lock.
const cacheShards = 16

type cacheShard struct {
	mu    sync.Mutex
	gen   uint64 // bumped on every invalidation; guards miss-path inserts
	lru   *list.List
	vtx   map[model.VertexID]*list.Element
	adj   map[model.VertexID]map[string]*list.Element // src -> label -> entry
	bytes int64
}

// cacheEntry is one LRU node: either a vertex or one (src,label) packed
// adjacency run, tagged by isVtx.
type cacheEntry struct {
	isVtx  bool
	id     model.VertexID // vertex id, or adjacency source id
	label  string         // adjacency edge label (unused for vertices)
	vertex model.Vertex
	adj    []model.VertexID // packed destination ids, in dst order
	size   int64
}

var (
	_ Graph         = (*CachedGraph)(nil)
	_ PropertyIndex = (*CachedGraph)(nil)
	_ CacheStatter  = (*CachedGraph)(nil)
)

// NewCachedGraph wraps g with a read cache bounded to roughly maxBytes of
// cached value memory. The budget divides evenly across shards; an entry
// larger than one shard's budget is never cached. maxBytes <= 0 yields a
// cache that stores nothing but still counts hits and misses.
func NewCachedGraph(g Graph, maxBytes int64) *CachedGraph {
	c := &CachedGraph{g: g, budget: maxBytes / cacheShards}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.lru = list.New()
		sh.vtx = make(map[model.VertexID]*list.Element)
		sh.adj = make(map[model.VertexID]map[string]*list.Element)
	}
	return c
}

// Unwrap returns the underlying store.
func (c *CachedGraph) Unwrap() Graph { return c.g }

// CacheStats implements CacheStatter.
func (c *CachedGraph) CacheStats() CacheStats {
	st := CacheStats{
		VtxHits:   c.vtxHits.Load(),
		VtxMisses: c.vtxMisses.Load(),
		AdjHits:   c.adjHits.Load(),
		AdjMisses: c.adjMisses.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

func (c *CachedGraph) shard(id model.VertexID) *cacheShard {
	// Fibonacci hashing: dense loader-assigned ids would otherwise pile
	// into a few shards under a plain modulo.
	return &c.shards[(uint64(id)*0x9e3779b97f4a7c15)>>(64-4)]
}

// Size accounting. The estimates charge Go object overhead per entry so a
// budget of N bytes holds roughly N bytes of live heap, not just payload.
const (
	vertexOverhead = 64 // list element + map entry + struct headers
	adjOverhead    = 64
	perPropCost    = 32 // map bucket share + Value struct
)

func propsSize(m property.Map) int64 {
	n := int64(0)
	for k, v := range m {
		n += perPropCost + int64(len(k))
		if v.Kind() == property.KindString {
			n += int64(len(v.Str()))
		}
	}
	return n
}

func vertexSize(v model.Vertex) int64 {
	return vertexOverhead + int64(len(v.Label)) + propsSize(v.Props)
}

func adjSize(label string, adj []model.VertexID) int64 {
	// Charge the slice's backing array by capacity, not length: the array
	// is what the entry pins on the heap, and append growth can leave
	// cap > len. 8 bytes per slot (VertexID is uint64).
	return adjOverhead + int64(len(label)) + 8*int64(cap(adj))
}

// removeLocked unlinks one entry. Caller holds sh.mu.
func (sh *cacheShard) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	sh.lru.Remove(el)
	sh.bytes -= ent.size
	if ent.isVtx {
		delete(sh.vtx, ent.id)
	} else if byLabel := sh.adj[ent.id]; byLabel != nil {
		delete(byLabel, ent.label)
		if len(byLabel) == 0 {
			delete(sh.adj, ent.id)
		}
	}
}

// evictLocked trims the shard back under budget. Caller holds sh.mu.
func (sh *cacheShard) evictLocked(budget int64) {
	for sh.bytes > budget {
		back := sh.lru.Back()
		if back == nil {
			return
		}
		sh.removeLocked(back)
	}
}

// insert publishes a miss-path fetch unless the shard was invalidated since
// gen was snapshotted (the fetch may predate a concurrent write) or the
// entry cannot fit.
func (sh *cacheShard) insert(gen uint64, budget int64, ent *cacheEntry) {
	if ent.size > budget {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.gen != gen {
		return
	}
	// A racing reader may have inserted the same entry already; replace it
	// so the books stay balanced.
	if ent.isVtx {
		if el, ok := sh.vtx[ent.id]; ok {
			sh.removeLocked(el)
		}
		sh.vtx[ent.id] = sh.lru.PushFront(ent)
	} else {
		byLabel := sh.adj[ent.id]
		if byLabel == nil {
			byLabel = make(map[string]*list.Element)
			sh.adj[ent.id] = byLabel
		} else if el, ok := byLabel[ent.label]; ok {
			sh.removeLocked(el)
			if sh.adj[ent.id] == nil { // removeLocked dropped the empty map
				byLabel = make(map[string]*list.Element)
				sh.adj[ent.id] = byLabel
			}
		}
		byLabel[ent.label] = sh.lru.PushFront(ent)
	}
	sh.bytes += ent.size
	sh.evictLocked(budget)
}

// invalidateVertex drops the cached copy of one vertex.
func (sh *cacheShard) invalidateVertex(id model.VertexID) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.gen++
	if el, ok := sh.vtx[id]; ok {
		sh.removeLocked(el)
	}
}

// invalidateAdj drops one (src,label) adjacency slice.
func (sh *cacheShard) invalidateAdj(src model.VertexID, label string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.gen++
	if el, ok := sh.adj[src][label]; ok {
		sh.removeLocked(el)
	}
}

// invalidateSrc drops a vertex and every adjacency slice rooted at it —
// DeleteVertex removes the out-edges too, so both shapes go stale at once.
func (sh *cacheShard) invalidateSrc(id model.VertexID) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.gen++
	if el, ok := sh.vtx[id]; ok {
		sh.removeLocked(el)
	}
	for _, el := range sh.adj[id] {
		sh.removeLocked(el)
	}
}

// GetVertex implements Graph.
func (c *CachedGraph) GetVertex(id model.VertexID) (model.Vertex, bool, error) {
	sh := c.shard(id)
	sh.mu.Lock()
	if el, ok := sh.vtx[id]; ok {
		sh.lru.MoveToFront(el)
		v := el.Value.(*cacheEntry).vertex
		sh.mu.Unlock()
		c.vtxHits.Add(1)
		return v, true, nil
	}
	gen := sh.gen
	sh.mu.Unlock()
	c.vtxMisses.Add(1)
	v, ok, err := c.g.GetVertex(id)
	if err != nil || !ok {
		// Negative results are not cached: missing-vertex reads are not a
		// hot traversal shape, and skipping them keeps invalidation simple.
		return v, ok, err
	}
	sh.insert(gen, c.budget, &cacheEntry{isVtx: true, id: id, vertex: v, size: vertexSize(v)})
	return v, true, nil
}

// ScanEdges implements Graph. Property-bearing edge scans pass through
// uncached: the engines only take this path when a step filters on edge
// properties, and caching decoded Edge structs is exactly the bloat the
// packed ScanEdgeIDs cache exists to avoid.
func (c *CachedGraph) ScanEdges(src model.VertexID, label string, fn func(model.Edge) bool) error {
	return c.g.ScanEdges(src, label, fn)
}

// ScanEdgeIDs implements Graph. The full (src,label) packed run is
// materialized on a miss even if fn stops early — the engine always
// consumes whole scans, and a complete run is the only version safe to
// replay for later calls.
func (c *CachedGraph) ScanEdgeIDs(src model.VertexID, label string, fn func(model.VertexID) bool) error {
	sh := c.shard(src)
	sh.mu.Lock()
	if el, ok := sh.adj[src][label]; ok {
		sh.lru.MoveToFront(el)
		adj := el.Value.(*cacheEntry).adj
		sh.mu.Unlock()
		c.adjHits.Add(1)
		for _, dst := range adj {
			if !fn(dst) {
				break
			}
		}
		return nil
	}
	gen := sh.gen
	sh.mu.Unlock()
	c.adjMisses.Add(1)
	var adj []model.VertexID
	if err := c.g.ScanEdgeIDs(src, label, func(dst model.VertexID) bool {
		adj = append(adj, dst)
		return true
	}); err != nil {
		return err
	}
	sh.insert(gen, c.budget, &cacheEntry{id: src, label: label, adj: adj, size: adjSize(label, adj)})
	for _, dst := range adj {
		if !fn(dst) {
			break
		}
	}
	return nil
}

// PutVertex implements Graph.
func (c *CachedGraph) PutVertex(v model.Vertex) error {
	if err := c.g.PutVertex(v); err != nil {
		return err
	}
	c.shard(v.ID).invalidateVertex(v.ID)
	return nil
}

// DeleteVertex implements Graph.
func (c *CachedGraph) DeleteVertex(id model.VertexID) error {
	if err := c.g.DeleteVertex(id); err != nil {
		return err
	}
	c.shard(id).invalidateSrc(id)
	return nil
}

// PutEdge implements Graph.
func (c *CachedGraph) PutEdge(e model.Edge) error {
	if err := c.g.PutEdge(e); err != nil {
		return err
	}
	c.shard(e.Src).invalidateAdj(e.Src, e.Label)
	return nil
}

// DeleteEdge implements Graph.
func (c *CachedGraph) DeleteEdge(src model.VertexID, label string, dst model.VertexID) error {
	if err := c.g.DeleteEdge(src, label, dst); err != nil {
		return err
	}
	c.shard(src).invalidateAdj(src, label)
	return nil
}

// ScanAllEdges implements Graph; all-label scans are a bulk/maintenance
// shape, so they pass through uncached.
func (c *CachedGraph) ScanAllEdges(src model.VertexID, fn func(model.Edge) bool) error {
	return c.g.ScanAllEdges(src, fn)
}

// ScanVerticesByLabel implements Graph (uncached pass-through).
func (c *CachedGraph) ScanVerticesByLabel(label string, fn func(model.VertexID) bool) error {
	return c.g.ScanVerticesByLabel(label, fn)
}

// ScanVertices implements Graph (uncached pass-through).
func (c *CachedGraph) ScanVertices(fn func(model.Vertex) bool) error {
	return c.g.ScanVertices(fn)
}

// Close implements Graph.
func (c *CachedGraph) Close() error { return c.g.Close() }

// The index capability passes through to the underlying store; index rows
// are derived from the same writes that invalidate the cache, so no extra
// coordination is needed.

// EnableIndex implements PropertyIndex.
func (c *CachedGraph) EnableIndex(key string) error {
	ix, ok := c.g.(PropertyIndex)
	if !ok {
		return fmt.Errorf("gstore: underlying store has no property index")
	}
	return ix.EnableIndex(key)
}

// HasIndex implements PropertyIndex.
func (c *CachedGraph) HasIndex(key string) bool {
	ix, ok := c.g.(PropertyIndex)
	return ok && ix.HasIndex(key)
}

// LookupVertices implements PropertyIndex.
func (c *CachedGraph) LookupVertices(key string, v property.Value) ([]model.VertexID, error) {
	ix, ok := c.g.(PropertyIndex)
	if !ok {
		return nil, fmt.Errorf("gstore: underlying store has no property index")
	}
	return ix.LookupVertices(key, v)
}

// LookupVerticesRange implements PropertyIndex.
func (c *CachedGraph) LookupVerticesRange(key string, lo, hi property.Value) ([]model.VertexID, error) {
	ix, ok := c.g.(PropertyIndex)
	if !ok {
		return nil, fmt.Errorf("gstore: underlying store has no property index")
	}
	return ix.LookupVerticesRange(key, lo, hi)
}
