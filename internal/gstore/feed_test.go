package gstore

import (
	"reflect"
	"testing"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

func sampleMutations() []Mutation {
	return []Mutation{
		{Op: OpPutVertex, Vertex: model.Vertex{ID: 7, Label: "file", Props: property.Map{"size": property.Int(42)}}},
		{Op: OpPutEdge, Edge: model.Edge{Src: 7, Dst: 9, Label: "run", Props: property.Map{"ts": property.Int(100)}}},
		{Op: OpDelEdge, Src: 7, Label: "run", Dst: 9},
		{Op: OpDelVertex, ID: 9},
		{Op: OpIntern, ID: model.InternedID(2, 5), Name: "job-1"},
	}
}

// TestFeedRecordsRoundTrip pins the feed batch codec: records survive
// encode/decode structurally, and the raw-append path (relaying a ring blob
// without decoding it) produces byte-identical output to the struct path.
func TestFeedRecordsRoundTrip(t *testing.T) {
	muts := sampleMutations()
	recs := []FeedRecord{
		{Epoch: 3, Seq: 11, Muts: muts[:2]},
		{Epoch: 3, Seq: 12, Muts: muts[2:]},
		{Epoch: 4, Seq: 13, Muts: nil},
	}
	b := AppendFeedRecords(nil, recs)
	got, err := DecodeFeedRecords(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Epoch != recs[i].Epoch || got[i].Seq != recs[i].Seq {
			t.Fatalf("record %d header (%d,%d), want (%d,%d)", i, got[i].Epoch, got[i].Seq, recs[i].Epoch, recs[i].Seq)
		}
		if len(got[i].Muts) != len(recs[i].Muts) {
			t.Fatalf("record %d has %d mutations, want %d", i, len(got[i].Muts), len(recs[i].Muts))
		}
	}
	// Raw relay path: appending pre-encoded batches must be byte-identical.
	raw := AppendFeedCount(nil, len(recs))
	for _, r := range recs {
		raw = AppendFeedRecordRaw(raw, r.Epoch, r.Seq, EncodeBatch(r.Muts))
	}
	if !reflect.DeepEqual(raw, b) {
		t.Fatal("raw-append path diverged from AppendFeedRecords")
	}
}

// TestDecodeFeedRecordsRejects pins the trust-boundary guards: truncation,
// trailing garbage and absurd declared counts all error instead of
// over-allocating or panicking.
func TestDecodeFeedRecordsRejects(t *testing.T) {
	good := AppendFeedRecords(nil, []FeedRecord{{Epoch: 1, Seq: 2, Muts: sampleMutations()}})
	for i := 1; i < len(good); i++ {
		if _, err := DecodeFeedRecords(good[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	if _, err := DecodeFeedRecords(append(good[:len(good):len(good)], 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Count prefix claims ~2^35 records in a 6-byte payload.
	if _, err := DecodeFeedRecords([]byte{0xff, 0xff, 0xff, 0xff, 0x7f, 0x00}); err == nil {
		t.Fatal("absurd declared count accepted")
	}
	if recs, err := DecodeFeedRecords(AppendFeedCount(nil, 0)); err != nil || len(recs) != 0 {
		t.Fatalf("empty batch: %v, %d records", err, len(recs))
	}
}

// FuzzDecodeBatch asserts the replication mutation-batch decoder never
// panics on arbitrary input, and that anything it accepts is a fixed point:
// re-encoding the decoded batch and decoding again yields the same
// mutations. (Byte-level stability is not required — Uvarint tolerates
// non-minimal length encodings, which re-encode shorter.)
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBatch(nil))
	f.Add(EncodeBatch(sampleMutations()))
	f.Add([]byte{0x05})                         // declares 5 mutations, provides none
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // absurd count
	f.Fuzz(func(t *testing.T, b []byte) {
		ms, err := DecodeBatch(b)
		if err != nil {
			return
		}
		ms2, err := DecodeBatch(EncodeBatch(ms))
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v", err)
		}
		if !reflect.DeepEqual(ms2, ms) {
			t.Fatalf("round trip changed batch: %#v -> %#v", ms, ms2)
		}
	})
}

// FuzzDecodeFeedRecords asserts the feed batch decoder never panics on
// arbitrary input and accepted payloads are a round-trip fixed point.
func FuzzDecodeFeedRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFeedCount(nil, 0))
	f.Add(AppendFeedRecords(nil, []FeedRecord{{Epoch: 9, Seq: 1, Muts: sampleMutations()}}))
	f.Add(AppendFeedRecordRaw(AppendFeedCount(nil, 1), 1, 2, EncodeBatch(nil)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f, 0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, err := DecodeFeedRecords(b)
		if err != nil {
			return
		}
		recs2, err := DecodeFeedRecords(AppendFeedRecords(nil, recs))
		if err != nil {
			t.Fatalf("re-encoded feed batch rejected: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs2[i].Epoch != recs[i].Epoch || recs2[i].Seq != recs[i].Seq || !reflect.DeepEqual(recs2[i].Muts, recs[i].Muts) {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}
