// Package gstore implements the property-graph storage layer each backend
// server runs, mapping vertices and edges onto an ordered key-value store
// the way the paper's storage system does (§VI):
//
//   - a vertex's attributes and its connected edges become key-value pairs
//     that sort contiguously, so scanning them is sequential I/O;
//   - edges of the same type (label) are stored together, making the typed
//     edge iteration of a traversal step one prefix scan;
//   - vertex types live in separate namespaces via a by-label index.
//
// Two implementations share the Graph interface: Store persists through the
// kv LSM store (the RocksDB stand-in), and MemStore keeps everything in
// process memory for tests and large simulated clusters.
package gstore

import (
	"encoding/binary"
	"fmt"
	"sync"

	"graphtrek/internal/kv"
	"graphtrek/internal/model"
)

// Graph is the storage contract the traversal engines consume. All methods
// are safe for concurrent use. Scan callbacks return false to stop early.
type Graph interface {
	// PutVertex inserts or replaces a vertex and its by-label index entry.
	PutVertex(v model.Vertex) error
	// GetVertex fetches one vertex by id.
	GetVertex(id model.VertexID) (model.Vertex, bool, error)
	// DeleteVertex removes a vertex, its index entry and its out-edges.
	DeleteVertex(id model.VertexID) error
	// PutEdge inserts or replaces one directed edge.
	PutEdge(e model.Edge) error
	// DeleteEdge removes one directed edge.
	DeleteEdge(src model.VertexID, label string, dst model.VertexID) error
	// ScanEdges visits the out-edges of src with the given label in
	// destination order — the sequential typed-edge scan of §IV-B.
	ScanEdges(src model.VertexID, label string, fn func(model.Edge) bool) error
	// ScanEdgeIDs visits only the destination ids of src's out-edges with
	// the given label, in destination order. It is the packed-adjacency fast
	// path: destinations come straight from the key bytes, so no edge value
	// is fetched and no property map is decoded. Filters that need edge
	// properties must use ScanEdges instead.
	ScanEdgeIDs(src model.VertexID, label string, fn func(model.VertexID) bool) error
	// ScanAllEdges visits every out-edge of src grouped by label.
	ScanAllEdges(src model.VertexID, fn func(model.Edge) bool) error
	// ScanVerticesByLabel visits the ids of all vertices with a label.
	ScanVerticesByLabel(label string, fn func(model.VertexID) bool) error
	// ScanVertices visits every vertex in id order.
	ScanVertices(fn func(model.Vertex) bool) error
	// Close releases the store.
	Close() error
}

// Key layout. IDs are big-endian so byte order equals numeric order, and
// labels are length-prefixed so one label can never be a key-prefix of
// another ("read" vs "readBy").
//
//	'V' <id:8>                      -> vertex label + props
//	'L' <len(label):uvarint> <label> <id:8> -> nil   (by-label index)
//	'E' <src:8> <len(label):uvarint> <label> <dst:8> -> edge props
const (
	tagVertex = 'V'
	tagLabel  = 'L'
	tagEdge   = 'E'
)

func vertexKey(id model.VertexID) []byte {
	b := make([]byte, 0, 9)
	b = append(b, tagVertex)
	return binary.BigEndian.AppendUint64(b, uint64(id))
}

func labelKey(label string, id model.VertexID) []byte {
	b := make([]byte, 0, 2+len(label)+9)
	b = append(b, tagLabel)
	b = binary.AppendUvarint(b, uint64(len(label)))
	b = append(b, label...)
	return binary.BigEndian.AppendUint64(b, uint64(id))
}

func labelPrefix(label string) []byte {
	b := make([]byte, 0, 2+len(label))
	b = append(b, tagLabel)
	b = binary.AppendUvarint(b, uint64(len(label)))
	return append(b, label...)
}

func edgeKey(src model.VertexID, label string, dst model.VertexID) []byte {
	b := make([]byte, 0, 1+8+2+len(label)+8)
	b = append(b, tagEdge)
	b = binary.BigEndian.AppendUint64(b, uint64(src))
	b = binary.AppendUvarint(b, uint64(len(label)))
	b = append(b, label...)
	return binary.BigEndian.AppendUint64(b, uint64(dst))
}

func edgeLabelPrefix(src model.VertexID, label string) []byte {
	b := make([]byte, 0, 1+8+2+len(label))
	b = append(b, tagEdge)
	b = binary.BigEndian.AppendUint64(b, uint64(src))
	b = binary.AppendUvarint(b, uint64(len(label)))
	return append(b, label...)
}

func edgePrefix(src model.VertexID) []byte {
	b := make([]byte, 0, 9)
	b = append(b, tagEdge)
	return binary.BigEndian.AppendUint64(b, uint64(src))
}

// parseEdgeKey recovers (src, label, dst) from an edge key.
func parseEdgeKey(key []byte) (src model.VertexID, label string, dst model.VertexID, err error) {
	if len(key) < 1+8+1+8 || key[0] != tagEdge {
		return 0, "", 0, fmt.Errorf("gstore: malformed edge key (%d bytes)", len(key))
	}
	src = model.VertexID(binary.BigEndian.Uint64(key[1:9]))
	rest := key[9:]
	n, sz := binary.Uvarint(rest)
	// The room left for the label must be computed in signed ints: with a
	// multi-byte uvarint the subtraction can go negative, and comparing it
	// as uint64 would wrap past any declared length.
	room := len(rest) - sz - 8
	if sz <= 0 || room < 0 || uint64(room) < n {
		return 0, "", 0, fmt.Errorf("gstore: malformed edge key label")
	}
	label = string(rest[sz : sz+int(n)])
	dst = model.VertexID(binary.BigEndian.Uint64(rest[sz+int(n):]))
	return src, label, dst, nil
}

// numStripes is the size of the Store's per-vertex write-lock stripe array.
const numStripes = 64

// Store is the persistent Graph backed by the kv LSM store.
type Store struct {
	db *kv.DB

	// stripes serializes the read-modify-write vertex updates (PutVertex,
	// DeleteVertex, index backfill) per vertex-id stripe. Without it, two
	// concurrent writers to the same vertex can interleave their get/delete/
	// put sequences and strand stale by-label or property-index rows. Edge
	// writes are single kv operations and bypass the stripes.
	stripes [numStripes]sync.Mutex

	// idxMu guards the set of property keys with secondary indexes.
	idxMu   sync.RWMutex
	indexed map[string]bool

	// dictMu serializes interning-dictionary allocation (read counter,
	// write rows, bump counter) — see dict.go.
	dictMu sync.Mutex
}

// stripe returns the write lock serializing updates to one vertex.
func (s *Store) stripe(id model.VertexID) *sync.Mutex {
	// Fibonacci hashing spreads strided and sequential id patterns evenly.
	return &s.stripes[(uint64(id)*0x9e3779b97f4a7c15)>>(64-6)]
}

var _ Graph = (*Store)(nil)

// Open opens (creating if needed) a persistent graph store in dir.
func Open(dir string, opts kv.Options) (*Store, error) {
	db, err := kv.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Store{db: db}, nil
}

// DB exposes the underlying kv store for stats and maintenance.
func (s *Store) DB() *kv.DB { return s.db }

// Close flushes and closes the store.
func (s *Store) Close() error { return s.db.Close() }

// Flush persists buffered writes to an SSTable.
func (s *Store) Flush() error { return s.db.Flush() }

// PutVertex implements Graph.
func (s *Store) PutVertex(v model.Vertex) error {
	mu := s.stripe(v.ID)
	mu.Lock()
	defer mu.Unlock()
	// Replacing a vertex whose label changed must drop the stale index row.
	old, hadOld, err := s.GetVertex(v.ID)
	if err != nil {
		return err
	}
	if hadOld && old.Label != v.Label {
		if err := s.db.Delete(labelKey(old.Label, v.ID)); err != nil {
			return err
		}
	}
	if err := s.db.Put(vertexKey(v.ID), model.AppendVertexValue(nil, v)); err != nil {
		return err
	}
	if err := s.db.Put(labelKey(v.Label, v.ID), nil); err != nil {
		return err
	}
	return s.updatePropIndexes(old, hadOld, v)
}

// GetVertex implements Graph.
func (s *Store) GetVertex(id model.VertexID) (model.Vertex, bool, error) {
	val, ok, err := s.db.Get(vertexKey(id))
	if err != nil || !ok {
		return model.Vertex{}, false, err
	}
	v, err := model.DecodeVertexValue(id, val)
	if err != nil {
		return model.Vertex{}, false, err
	}
	return v, true, nil
}

// DeleteVertex implements Graph.
func (s *Store) DeleteVertex(id model.VertexID) error {
	mu := s.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	v, ok, err := s.GetVertex(id)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	// Collect out-edge keys first: writing during iteration is not allowed.
	var edgeKeys [][]byte
	err = s.db.Scan(edgePrefix(id), func(k, _ []byte) bool {
		edgeKeys = append(edgeKeys, append([]byte(nil), k...))
		return true
	})
	if err != nil {
		return err
	}
	for _, k := range edgeKeys {
		if err := s.db.Delete(k); err != nil {
			return err
		}
	}
	if err := s.db.Delete(labelKey(v.Label, id)); err != nil {
		return err
	}
	if err := s.db.Delete(vertexKey(id)); err != nil {
		return err
	}
	return s.dropPropIndexes(v)
}

// PutEdge implements Graph.
func (s *Store) PutEdge(e model.Edge) error {
	return s.db.Put(edgeKey(e.Src, e.Label, e.Dst), model.AppendEdgeValue(nil, e))
}

// DeleteEdge implements Graph.
func (s *Store) DeleteEdge(src model.VertexID, label string, dst model.VertexID) error {
	return s.db.Delete(edgeKey(src, label, dst))
}

// ScanEdges implements Graph.
func (s *Store) ScanEdges(src model.VertexID, label string, fn func(model.Edge) bool) error {
	var scanErr error
	err := s.db.Scan(edgeLabelPrefix(src, label), func(k, v []byte) bool {
		ksrc, klabel, kdst, err := parseEdgeKey(k)
		if err != nil {
			scanErr = err
			return false
		}
		e, err := model.DecodeEdgeValue(ksrc, kdst, klabel, v)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(e)
	})
	if err != nil {
		return err
	}
	return scanErr
}

// ScanEdgeIDs implements Graph. The destination is the last 8 bytes of the
// edge key, so the scan never touches edge values — a key-only pass over
// one (src,label) run, which is what makes large fan-out expansion cheap.
func (s *Store) ScanEdgeIDs(src model.VertexID, label string, fn func(model.VertexID) bool) error {
	var scanErr error
	err := s.db.Scan(edgeLabelPrefix(src, label), func(k, _ []byte) bool {
		if len(k) < 8 {
			scanErr = fmt.Errorf("gstore: malformed edge key (%d bytes)", len(k))
			return false
		}
		return fn(model.VertexID(binary.BigEndian.Uint64(k[len(k)-8:])))
	})
	if err != nil {
		return err
	}
	return scanErr
}

// ScanAllEdges implements Graph.
func (s *Store) ScanAllEdges(src model.VertexID, fn func(model.Edge) bool) error {
	var scanErr error
	err := s.db.Scan(edgePrefix(src), func(k, v []byte) bool {
		ksrc, klabel, kdst, err := parseEdgeKey(k)
		if err != nil {
			scanErr = err
			return false
		}
		e, err := model.DecodeEdgeValue(ksrc, kdst, klabel, v)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(e)
	})
	if err != nil {
		return err
	}
	return scanErr
}

// ScanVerticesByLabel implements Graph.
func (s *Store) ScanVerticesByLabel(label string, fn func(model.VertexID) bool) error {
	prefix := labelPrefix(label)
	return s.db.Scan(prefix, func(k, _ []byte) bool {
		id := model.VertexID(binary.BigEndian.Uint64(k[len(k)-8:]))
		return fn(id)
	})
}

// ScanVertices implements Graph.
func (s *Store) ScanVertices(fn func(model.Vertex) bool) error {
	var scanErr error
	err := s.db.Scan([]byte{tagVertex}, func(k, v []byte) bool {
		id := model.VertexID(binary.BigEndian.Uint64(k[1:9]))
		vx, err := model.DecodeVertexValue(id, v)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(vx)
	})
	if err != nil {
		return err
	}
	return scanErr
}
