package gstore

import (
	"reflect"
	"testing"

	"graphtrek/internal/kv"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// indexedStores returns both implementations as PropertyIndex-capable
// graphs.
func indexedStores(t *testing.T) map[string]interface {
	Graph
	PropertyIndex
} {
	t.Helper()
	disk, err := Open(t.TempDir(), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return map[string]interface {
		Graph
		PropertyIndex
	}{"disk": disk, "mem": NewMemStore()}
}

func lookup(t *testing.T, g PropertyIndex, key, val string) []model.VertexID {
	t.Helper()
	ids, err := g.LookupVertices(key, property.String(val))
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestIndexLookupAfterEnable(t *testing.T) {
	for name, g := range indexedStores(t) {
		t.Run(name, func(t *testing.T) {
			// Pre-existing vertices must be backfilled.
			g.PutVertex(model.Vertex{ID: 1, Label: "User", Props: property.Map{"name": property.String("sam")}})
			g.PutVertex(model.Vertex{ID: 2, Label: "User", Props: property.Map{"name": property.String("john")}})
			if err := g.EnableIndex("name"); err != nil {
				t.Fatal(err)
			}
			// Post-enable writes must be indexed too.
			g.PutVertex(model.Vertex{ID: 3, Label: "User", Props: property.Map{"name": property.String("sam")}})
			if got := lookup(t, g, "name", "sam"); !reflect.DeepEqual(got, []model.VertexID{1, 3}) {
				t.Errorf("sam = %v", got)
			}
			if got := lookup(t, g, "name", "john"); !reflect.DeepEqual(got, []model.VertexID{2}) {
				t.Errorf("john = %v", got)
			}
			if got := lookup(t, g, "name", "ghost"); len(got) != 0 {
				t.Errorf("ghost = %v", got)
			}
		})
	}
}

func TestIndexTracksUpdatesAndDeletes(t *testing.T) {
	for name, g := range indexedStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := g.EnableIndex("name"); err != nil {
				t.Fatal(err)
			}
			g.PutVertex(model.Vertex{ID: 1, Label: "User", Props: property.Map{"name": property.String("sam")}})
			// Rename: the old row must disappear.
			g.PutVertex(model.Vertex{ID: 1, Label: "User", Props: property.Map{"name": property.String("samuel")}})
			if got := lookup(t, g, "name", "sam"); len(got) != 0 {
				t.Errorf("stale index row: %v", got)
			}
			if got := lookup(t, g, "name", "samuel"); !reflect.DeepEqual(got, []model.VertexID{1}) {
				t.Errorf("samuel = %v", got)
			}
			// Dropping the property removes the row.
			g.PutVertex(model.Vertex{ID: 1, Label: "User"})
			if got := lookup(t, g, "name", "samuel"); len(got) != 0 {
				t.Errorf("row survived property removal: %v", got)
			}
			// Delete removes rows.
			g.PutVertex(model.Vertex{ID: 2, Label: "User", Props: property.Map{"name": property.String("kim")}})
			g.DeleteVertex(2)
			if got := lookup(t, g, "name", "kim"); len(got) != 0 {
				t.Errorf("row survived vertex delete: %v", got)
			}
		})
	}
}

func TestIndexUnindexedKeyErrors(t *testing.T) {
	for name, g := range indexedStores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := g.LookupVertices("nope", property.Int(1)); err == nil {
				t.Error("lookup on unindexed key should error")
			}
			if err := g.EnableIndex(""); err == nil {
				t.Error("empty key should error")
			}
			// Double enable is a no-op.
			if err := g.EnableIndex("k"); err != nil {
				t.Fatal(err)
			}
			if err := g.EnableIndex("k"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIndexDistinguishesValueKinds(t *testing.T) {
	for name, g := range indexedStores(t) {
		t.Run(name, func(t *testing.T) {
			g.EnableIndex("v")
			g.PutVertex(model.Vertex{ID: 1, Label: "X", Props: property.Map{"v": property.Int(1)}})
			g.PutVertex(model.Vertex{ID: 2, Label: "X", Props: property.Map{"v": property.String("1")}})
			ints, err := g.LookupVertices("v", property.Int(1))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ints, []model.VertexID{1}) {
				t.Errorf("Int(1) = %v", ints)
			}
			strs, _ := g.LookupVertices("v", property.String("1"))
			if !reflect.DeepEqual(strs, []model.VertexID{2}) {
				t.Errorf("String(1) = %v", strs)
			}
		})
	}
}

func TestIndexPersistsAcrossReopenWithReenable(t *testing.T) {
	dir := t.TempDir()
	g, err := Open(dir, kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.EnableIndex("name")
	g.PutVertex(model.Vertex{ID: 5, Label: "User", Props: property.Map{"name": property.String("sam")}})
	g.Close()

	g2, err := Open(dir, kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	// The enabled-key set is in-memory configuration; re-enabling reuses
	// (and re-verifies) the persisted rows.
	if err := g2.EnableIndex("name"); err != nil {
		t.Fatal(err)
	}
	if got := lookup(t, g2, "name", "sam"); !reflect.DeepEqual(got, []model.VertexID{5}) {
		t.Errorf("after reopen = %v", got)
	}
}
