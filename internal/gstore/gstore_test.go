package gstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphtrek/internal/kv"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// stores returns one instance of each Graph implementation for a subtest.
func stores(t *testing.T) map[string]Graph {
	t.Helper()
	disk, err := Open(t.TempDir(), kv.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { disk.Close() })
	return map[string]Graph{"disk": disk, "mem": NewMemStore()}
}

func TestVertexCRUD(t *testing.T) {
	for name, g := range stores(t) {
		t.Run(name, func(t *testing.T) {
			v := model.Vertex{ID: 7, Label: "User", Props: property.Map{"name": property.String("sam")}}
			if err := g.PutVertex(v); err != nil {
				t.Fatal(err)
			}
			got, ok, err := g.GetVertex(7)
			if err != nil || !ok {
				t.Fatalf("GetVertex: %v %v", ok, err)
			}
			if got.Label != "User" || !got.Props["name"].Equal(property.String("sam")) {
				t.Errorf("got %+v", got)
			}
			if _, ok, _ := g.GetVertex(8); ok {
				t.Error("absent vertex found")
			}
			if err := g.DeleteVertex(7); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := g.GetVertex(7); ok {
				t.Error("deleted vertex found")
			}
			// Deleting an absent vertex is a no-op.
			if err := g.DeleteVertex(99); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVertexLabelChangeUpdatesIndex(t *testing.T) {
	for name, g := range stores(t) {
		t.Run(name, func(t *testing.T) {
			g.PutVertex(model.Vertex{ID: 1, Label: "File"})
			g.PutVertex(model.Vertex{ID: 1, Label: "Executable"})
			if ids := collectByLabel(t, g, "File"); len(ids) != 0 {
				t.Errorf("stale File index: %v", ids)
			}
			if ids := collectByLabel(t, g, "Executable"); !reflect.DeepEqual(ids, []model.VertexID{1}) {
				t.Errorf("Executable index: %v", ids)
			}
		})
	}
}

func collectByLabel(t *testing.T, g Graph, label string) []model.VertexID {
	t.Helper()
	var ids []model.VertexID
	if err := g.ScanVerticesByLabel(label, func(id model.VertexID) bool {
		ids = append(ids, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestEdgeCRUDAndTypedScan(t *testing.T) {
	for name, g := range stores(t) {
		t.Run(name, func(t *testing.T) {
			// Vertex 1 has read edges to 10,11 and a readBy edge to 12.
			// The labels share a prefix on purpose: the scan must not leak
			// across labels.
			for _, e := range []model.Edge{
				{Src: 1, Dst: 11, Label: "read"},
				{Src: 1, Dst: 10, Label: "read", Props: property.Map{"ts": property.Int(5)}},
				{Src: 1, Dst: 12, Label: "readBy"},
				{Src: 2, Dst: 10, Label: "read"},
			} {
				if err := g.PutEdge(e); err != nil {
					t.Fatal(err)
				}
			}
			var dsts []model.VertexID
			err := g.ScanEdges(1, "read", func(e model.Edge) bool {
				dsts = append(dsts, e.Dst)
				if e.Dst == 10 && !e.Props["ts"].Equal(property.Int(5)) {
					t.Errorf("edge props lost: %+v", e)
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dsts, []model.VertexID{10, 11}) {
				t.Errorf("read scan = %v, want sorted [10 11]", dsts)
			}
			if err := g.DeleteEdge(1, "read", 10); err != nil {
				t.Fatal(err)
			}
			dsts = nil
			g.ScanEdges(1, "read", func(e model.Edge) bool { dsts = append(dsts, e.Dst); return true })
			if !reflect.DeepEqual(dsts, []model.VertexID{11}) {
				t.Errorf("after delete = %v", dsts)
			}
		})
	}
}

func TestScanAllEdgesGroupsByLabel(t *testing.T) {
	for name, g := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, e := range []model.Edge{
				{Src: 1, Dst: 3, Label: "write"},
				{Src: 1, Dst: 1, Label: "run"},
				{Src: 1, Dst: 2, Label: "run"},
			} {
				g.PutEdge(e)
			}
			var got []string
			g.ScanAllEdges(1, func(e model.Edge) bool {
				got = append(got, fmt.Sprintf("%s-%d", e.Label, e.Dst))
				return true
			})
			want := []string{"run-1", "run-2", "write-3"}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("ScanAllEdges = %v, want %v (grouped by label)", got, want)
			}
		})
	}
}

func TestScanEarlyTermination(t *testing.T) {
	for name, g := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				g.PutVertex(model.Vertex{ID: model.VertexID(i), Label: "File"})
				g.PutEdge(model.Edge{Src: 1, Dst: model.VertexID(100 + i), Label: "read"})
			}
			count := 0
			g.ScanEdges(1, "read", func(model.Edge) bool { count++; return count < 3 })
			if count != 3 {
				t.Errorf("edge scan visited %d, want 3", count)
			}
			count = 0
			g.ScanVerticesByLabel("File", func(model.VertexID) bool { count++; return count < 4 })
			if count != 4 {
				t.Errorf("label scan visited %d, want 4", count)
			}
			count = 0
			g.ScanVertices(func(model.Vertex) bool { count++; return false })
			if count != 1 {
				t.Errorf("vertex scan visited %d, want 1", count)
			}
		})
	}
}

func TestDeleteVertexRemovesOutEdges(t *testing.T) {
	for name, g := range stores(t) {
		t.Run(name, func(t *testing.T) {
			g.PutVertex(model.Vertex{ID: 1, Label: "User"})
			g.PutEdge(model.Edge{Src: 1, Dst: 2, Label: "run"})
			g.DeleteVertex(1)
			n := 0
			g.ScanEdges(1, "run", func(model.Edge) bool { n++; return true })
			if n != 0 {
				t.Error("out-edges should be removed with the vertex")
			}
		})
	}
}

func TestEdgeKeyRoundTripQuick(t *testing.T) {
	f := func(src, dst uint64, labelBytes []byte) bool {
		label := string(labelBytes)
		key := edgeKey(model.VertexID(src), label, model.VertexID(dst))
		s, l, d, err := parseEdgeKey(key)
		return err == nil && uint64(s) == src && l == label && uint64(d) == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseEdgeKeyErrors(t *testing.T) {
	if _, _, _, err := parseEdgeKey([]byte("short")); err == nil {
		t.Error("short key should error")
	}
	key := edgeKey(1, "run", 2)
	key[0] = 'X'
	if _, _, _, err := parseEdgeKey(key); err == nil {
		t.Error("wrong tag should error")
	}
}

func TestLabelPrefixNoCollision(t *testing.T) {
	// "read" must not be a key-prefix of "readBy" thanks to the length
	// prefix in the encoding.
	p1 := string(edgeLabelPrefix(1, "read"))
	p2 := string(edgeLabelPrefix(1, "readBy"))
	if len(p2) >= len(p1) && p2[:len(p1)] == p1 {
		t.Error("edge label prefixes collide")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	g, err := Open(dir, kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.PutVertex(model.Vertex{ID: 1, Label: "User", Props: property.Map{"name": property.String("john")}})
	g.PutEdge(model.Edge{Src: 1, Dst: 2, Label: "run"})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(dir, kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	v, ok, err := g2.GetVertex(1)
	if err != nil || !ok || v.Props["name"].Str() != "john" {
		t.Fatalf("vertex lost across reopen: %+v %v %v", v, ok, err)
	}
	n := 0
	g2.ScanEdges(1, "run", func(model.Edge) bool { n++; return true })
	if n != 1 {
		t.Error("edge lost across reopen")
	}
}

// TestDifferentialMemVsDisk drives both implementations with the same
// random operation sequence and asserts identical observable state.
func TestDifferentialMemVsDisk(t *testing.T) {
	disk, err := Open(t.TempDir(), kv.Options{MemtableBytes: 2 << 10, CompactAt: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	mem := NewMemStore()
	r := rand.New(rand.NewSource(42))
	labels := []string{"run", "read", "readBy", "write", "exe"}
	vlabels := []string{"User", "Execution", "File"}

	apply := func(g Graph, op int, a, b uint64, li, vi int) error {
		switch op {
		case 0, 1, 2:
			return g.PutVertex(model.Vertex{
				ID: model.VertexID(a % 50), Label: vlabels[vi],
				Props: property.Map{"p": property.Int(int64(b))},
			})
		case 3, 4, 5:
			return g.PutEdge(model.Edge{
				Src: model.VertexID(a % 50), Dst: model.VertexID(b % 50), Label: labels[li],
				Props: property.Map{"w": property.Int(int64(a ^ b))},
			})
		case 6:
			return g.DeleteEdge(model.VertexID(a%50), labels[li], model.VertexID(b%50))
		default:
			return g.DeleteVertex(model.VertexID(a % 50))
		}
	}

	for i := 0; i < 2000; i++ {
		op, a, b, li, vi := r.Intn(8), r.Uint64(), r.Uint64(), r.Intn(len(labels)), r.Intn(len(vlabels))
		if err := apply(disk, op, a, b, li, vi); err != nil {
			t.Fatalf("disk op %d: %v", i, err)
		}
		if err := apply(mem, op, a, b, li, vi); err != nil {
			t.Fatalf("mem op %d: %v", i, err)
		}
	}

	// Compare: every vertex, every label scan, every edge list.
	var diskVerts, memVerts []model.Vertex
	disk.ScanVertices(func(v model.Vertex) bool { diskVerts = append(diskVerts, v); return true })
	mem.ScanVertices(func(v model.Vertex) bool { memVerts = append(memVerts, v); return true })
	if len(diskVerts) != len(memVerts) {
		t.Fatalf("vertex count: disk %d mem %d", len(diskVerts), len(memVerts))
	}
	for i := range diskVerts {
		dv, mv := diskVerts[i], memVerts[i]
		if dv.ID != mv.ID || dv.Label != mv.Label || !dv.Props["p"].Equal(mv.Props["p"]) {
			t.Fatalf("vertex %d: disk %+v mem %+v", i, dv, mv)
		}
	}
	for _, vl := range vlabels {
		if d, m := collectByLabel(t, disk, vl), collectByLabel(t, mem, vl); !reflect.DeepEqual(d, m) {
			t.Errorf("label %s: disk %v mem %v", vl, d, m)
		}
	}
	for src := uint64(0); src < 50; src++ {
		for _, l := range labels {
			var d, m []model.Edge
			disk.ScanEdges(model.VertexID(src), l, func(e model.Edge) bool { d = append(d, e); return true })
			mem.ScanEdges(model.VertexID(src), l, func(e model.Edge) bool { m = append(m, e); return true })
			if len(d) != len(m) {
				t.Fatalf("edges %d/%s: disk %d mem %d", src, l, len(d), len(m))
			}
			for i := range d {
				if d[i].Dst != m[i].Dst || !d[i].Props["w"].Equal(m[i].Props["w"]) {
					t.Fatalf("edge %d/%s[%d]: disk %+v mem %+v", src, l, i, d[i], m[i])
				}
			}
		}
		var d, m []model.Edge
		disk.ScanAllEdges(model.VertexID(src), func(e model.Edge) bool { d = append(d, e); return true })
		mem.ScanAllEdges(model.VertexID(src), func(e model.Edge) bool { m = append(m, e); return true })
		if len(d) != len(m) {
			t.Fatalf("all-edges %d: disk %d mem %d", src, len(d), len(m))
		}
		for i := range d {
			if d[i].Label != m[i].Label || d[i].Dst != m[i].Dst {
				t.Fatalf("all-edges %d[%d]: disk %+v mem %+v", src, i, d[i], m[i])
			}
		}
	}
}

func TestMemStoreCounts(t *testing.T) {
	m := NewMemStore()
	m.PutVertex(model.Vertex{ID: 1, Label: "User"})
	m.PutVertex(model.Vertex{ID: 2, Label: "File"})
	m.PutEdge(model.Edge{Src: 1, Dst: 2, Label: "read"})
	m.PutEdge(model.Edge{Src: 1, Dst: 2, Label: "read"}) // replace, not add
	if m.NumVertices() != 2 || m.NumEdges() != 1 {
		t.Errorf("counts = %d vertices %d edges", m.NumVertices(), m.NumEdges())
	}
}
