// Package partition maps vertices to owner servers. GraphTrek, like most
// graph databases, uses edge-cut partitioning (§VI): a vertex and all of its
// out-edges live on one server chosen by a hash of the vertex id. A range
// partitioner is provided as an ablation alternative — it preserves id
// locality, which concentrates the high-degree head of a power-law graph on
// few servers and makes stragglers worse, illustrating why the paper's
// imbalance argument holds regardless of partitioning choice.
package partition

import (
	"sort"

	"graphtrek/internal/model"
)

// Partitioner assigns every vertex to one of N servers.
type Partitioner interface {
	// Owner returns the server index in [0, N) that stores the vertex and
	// its out-edges.
	Owner(id model.VertexID) int
	// N returns the number of servers.
	N() int
}

// Hash is the default edge-cut partitioner: a 64-bit mix of the vertex id
// modulo the server count. The mix (splitmix64 finalizer) breaks up the
// sequential ids the generators assign, spreading hot vertices uniformly.
type Hash struct {
	n int
}

// NewHash returns a hash partitioner over n servers; n must be positive.
func NewHash(n int) Hash {
	if n <= 0 {
		panic("partition: server count must be positive")
	}
	return Hash{n: n}
}

// Owner implements Partitioner.
func (h Hash) Owner(id model.VertexID) int {
	if id.Interned() {
		// Interned ids embed the partition the dictionary chose at intern
		// time (by hashing the original name through this same partitioner),
		// so routing needs no dictionary lookup. The modulo only matters if
		// the cluster was resized after interning.
		return id.InternedPartition() % h.n
	}
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(h.n))
}

// N implements Partitioner.
func (h Hash) N() int { return h.n }

// Balanced is a degree-aware edge-cut partitioner — the "automatic load
// balancing" the paper lists as future work (§VIII). Built from the
// loader's out-degree census, it places vertices greedily: heaviest first,
// each onto the currently lightest server, where a vertex's weight is
// 1 + its out-degree (one storage row plus its edge list — the I/O a
// traversal step pays). On power-law graphs this splits the hub load that
// hash partitioning concentrates by chance.
type Balanced struct {
	n      int
	owner  map[model.VertexID]int
	fallba Hash // vertices outside the census fall back to hashing
	loads  []int64
}

// NewBalanced builds a balanced partitioner over n servers from a degree
// census (vertex -> out-degree). Vertices absent from the census are
// placed by hash.
func NewBalanced(n int, degrees map[model.VertexID]int) *Balanced {
	if n <= 0 {
		panic("partition: server count must be positive")
	}
	b := &Balanced{
		n:      n,
		owner:  make(map[model.VertexID]int, len(degrees)),
		fallba: NewHash(n),
		loads:  make([]int64, n),
	}
	type vd struct {
		id  model.VertexID
		deg int
	}
	order := make([]vd, 0, len(degrees))
	for id, deg := range degrees {
		order = append(order, vd{id, deg})
	}
	// Heaviest first; ties by id for determinism.
	sort.Slice(order, func(i, j int) bool {
		if order[i].deg != order[j].deg {
			return order[i].deg > order[j].deg
		}
		return order[i].id < order[j].id
	})
	for _, v := range order {
		lightest := 0
		for s := 1; s < n; s++ {
			if b.loads[s] < b.loads[lightest] {
				lightest = s
			}
		}
		b.owner[v.id] = lightest
		b.loads[lightest] += int64(1 + v.deg)
	}
	return b
}

// Owner implements Partitioner.
func (b *Balanced) Owner(id model.VertexID) int {
	if s, ok := b.owner[id]; ok {
		return s
	}
	return b.fallba.Owner(id)
}

// N implements Partitioner.
func (b *Balanced) N() int { return b.n }

// Loads returns the per-server placed weight, for imbalance reporting.
func (b *Balanced) Loads() []int64 {
	return append([]int64(nil), b.loads...)
}

// Range partitions the id space [0, MaxID] into n contiguous slices.
type Range struct {
	n     int
	maxID uint64
}

// NewRange returns a range partitioner over n servers for ids in
// [0, maxID]. Both arguments must be positive.
func NewRange(n int, maxID uint64) Range {
	if n <= 0 {
		panic("partition: server count must be positive")
	}
	if maxID == 0 {
		panic("partition: maxID must be positive")
	}
	return Range{n: n, maxID: maxID}
}

// Owner implements Partitioner. IDs above MaxID fold into the last slice.
func (r Range) Owner(id model.VertexID) int {
	if uint64(id) > r.maxID {
		return r.n - 1
	}
	per := (r.maxID + uint64(r.n)) / uint64(r.n) // ceil((max+1)/n)
	return int(uint64(id) / per)
}

// N implements Partitioner.
func (r Range) N() int { return r.n }
