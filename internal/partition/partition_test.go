package partition

import (
	"testing"
	"testing/quick"

	"graphtrek/internal/model"
)

func TestHashOwnerInRangeQuick(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 32} {
		p := NewHash(n)
		if p.N() != n {
			t.Fatalf("N() = %d, want %d", p.N(), n)
		}
		f := func(id uint64) bool {
			o := p.Owner(model.VertexID(id))
			return o >= 0 && o < n
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	p := NewHash(8)
	for id := uint64(0); id < 100; id++ {
		if p.Owner(model.VertexID(id)) != p.Owner(model.VertexID(id)) {
			t.Fatal("Owner not deterministic")
		}
	}
}

func TestHashBalance(t *testing.T) {
	// Sequential ids must spread near-uniformly: with 64k ids over 32
	// servers, each server expects 2048; allow ±25%.
	p := NewHash(32)
	counts := make([]int, 32)
	const n = 1 << 16
	for id := 0; id < n; id++ {
		counts[p.Owner(model.VertexID(id))]++
	}
	want := n / 32
	for s, c := range counts {
		if c < want*3/4 || c > want*5/4 {
			t.Errorf("server %d has %d vertices, want ~%d", s, c, want)
		}
	}
}

func TestRangeOwner(t *testing.T) {
	p := NewRange(4, 99) // ids 0..99, 25 per server
	cases := map[uint64]int{0: 0, 24: 0, 25: 1, 50: 2, 75: 3, 99: 3, 1000: 3}
	for id, want := range cases {
		if got := p.Owner(model.VertexID(id)); got != want {
			t.Errorf("Owner(%d) = %d, want %d", id, got, want)
		}
	}
	if p.N() != 4 {
		t.Errorf("N() = %d", p.N())
	}
}

func TestRangeOwnerInRangeQuick(t *testing.T) {
	p := NewRange(7, 1<<20)
	f := func(id uint64) bool {
		o := p.Owner(model.VertexID(id))
		return o >= 0 && o < 7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeCoversAllServers(t *testing.T) {
	p := NewRange(32, 1<<10-1)
	seen := make(map[int]bool)
	for id := uint64(0); id < 1<<10; id++ {
		seen[p.Owner(model.VertexID(id))] = true
	}
	if len(seen) != 32 {
		t.Errorf("range partitioner used %d of 32 servers", len(seen))
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"hash zero":   func() { NewHash(0) },
		"range zero":  func() { NewRange(0, 10) },
		"range maxID": func() { NewRange(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBalancedSpreadsHubs(t *testing.T) {
	// A power-law census: a few hubs, many leaves.
	degrees := map[model.VertexID]int{}
	for i := 0; i < 4; i++ {
		degrees[model.VertexID(i)] = 1000 // hubs
	}
	for i := 4; i < 104; i++ {
		degrees[model.VertexID(i)] = 2
	}
	b := NewBalanced(4, degrees)
	// Each server must get exactly one hub.
	hubOwners := map[int]int{}
	for i := 0; i < 4; i++ {
		hubOwners[b.Owner(model.VertexID(i))]++
	}
	for s := 0; s < 4; s++ {
		if hubOwners[s] != 1 {
			t.Errorf("server %d owns %d hubs, want 1 (owners %v)", s, hubOwners[s], hubOwners)
		}
	}
	// Loads must be near-equal.
	loads := b.Loads()
	min, max := loads[0], loads[0]
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 100 {
		t.Errorf("load spread %d too wide: %v", max-min, loads)
	}
}

func TestBalancedFallbackToHash(t *testing.T) {
	b := NewBalanced(3, map[model.VertexID]int{1: 5})
	h := NewHash(3)
	// A vertex outside the census hashes like the plain partitioner.
	if b.Owner(999) != h.Owner(999) {
		t.Error("fallback owner should match hash partitioner")
	}
	if b.N() != 3 {
		t.Errorf("N = %d", b.N())
	}
}

func TestBalancedDeterministic(t *testing.T) {
	degrees := map[model.VertexID]int{}
	for i := 0; i < 50; i++ {
		degrees[model.VertexID(i)] = i % 7
	}
	b1 := NewBalanced(4, degrees)
	b2 := NewBalanced(4, degrees)
	for i := 0; i < 50; i++ {
		if b1.Owner(model.VertexID(i)) != b2.Owner(model.VertexID(i)) {
			t.Fatalf("nondeterministic placement for %d", i)
		}
	}
}

func TestBalancedPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBalanced(0, nil)
}

func TestHashRoutesInternedIDsByEmbeddedPartition(t *testing.T) {
	h := NewHash(5)
	for part := 0; part < 5; part++ {
		for ctr := uint64(0); ctr < 100; ctr += 13 {
			id := model.InternedID(part, ctr)
			if got := h.Owner(id); got != part {
				t.Fatalf("Owner(interned part=%d ctr=%d) = %d", part, ctr, got)
			}
		}
	}
	// The intern-time placement contract: a name's partition is its hash
	// routed like a plain vertex id, so interned data lands where the raw
	// hash would have.
	name := "users/sam"
	part := h.Owner(model.VertexID(model.HashName(name)))
	if got := h.Owner(model.InternedID(part, 0)); got != part {
		t.Fatalf("name partition %d routes to %d", part, got)
	}
}
