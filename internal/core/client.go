package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/partition"
	"graphtrek/internal/query"
	"graphtrek/internal/route"
	"graphtrek/internal/trace"
	"graphtrek/internal/wire"
)

// Client submits GTravel traversals to the cluster. For the server-side
// modes it ships the whole plan to one backend (the coordinator) and waits
// for the results; for ModeClientSide it plays the central controller of
// Fig 2a itself, pulling every intermediate frontier back over the
// client-server link. A Client occupies one node id on the transport
// (>= Part.N(), i.e. outside the backend range).
type Client struct {
	tr   transport
	part partition.Partitioner
	// route is part's concrete *route.View when the cluster runs with
	// replication: it lets the client address partitions for writes and
	// merge gossiped/piggybacked table updates. Nil on replication-free
	// clusters.
	route *route.View
	seq   atomic.Uint64
	rtt   time.Duration

	mu      sync.Mutex
	pending map[uint64]*pendingTravel
	reqs    map[uint64]chan wire.Message
	// feeds holds this client's open change-feed subscriptions, one per
	// partition (see feedclient.go).
	feeds  map[int]*Feed
	reqSeq atomic.Uint64
}

type pendingTravel struct {
	results []model.VertexID
	done    chan struct{}
	err     error
}

// NewClient creates a client; Bind must be called with its transport.
func NewClient(part partition.Partitioner) *Client {
	c := &Client{
		part:    part,
		pending: make(map[uint64]*pendingTravel),
		reqs:    make(map[uint64]chan wire.Message),
	}
	if v, ok := part.(*route.View); ok {
		c.route = v
	}
	// Travel ids embed this client's node slot and a sequence number. The
	// sequence is seeded from the clock so a restarted client process never
	// reuses an id a previous incarnation already completed — the servers
	// remember recently finished traversals and drop late messages for
	// them, which would silently swallow a replayed id's StartTravel.
	c.seq.Store(uint64(time.Now().UnixNano()) & (1<<47 - 1))
	return c
}

// Bind attaches the transport; call before submitting.
func (c *Client) Bind(tr transport) { c.tr = tr }

// SetRTT models the client-server network round-trip cost in simulated
// deployments. Server-side traversal pays it twice per traversal (submit
// and results); the client-side mode pays it on every per-step visit
// request — the asymmetry of Fig 2 that makes client-side traversal slow
// on a real, busy client-server network.
func (c *Client) SetRTT(d time.Duration) { c.rtt = d }

// Handle is the client's transport handler.
func (c *Client) Handle(_ int, msg wire.Message) {
	switch msg.Kind {
	case wire.KindResult:
		c.mu.Lock()
		if p, ok := c.pending[msg.TravelID]; ok {
			p.results = append(p.results, msg.Verts...)
		}
		c.mu.Unlock()
	case wire.KindTravelDone:
		c.mu.Lock()
		p, ok := c.pending[msg.TravelID]
		if ok {
			delete(c.pending, msg.TravelID)
		}
		c.mu.Unlock()
		if ok {
			if msg.Err != "" {
				p.err = errors.New(msg.Err)
			}
			close(p.done)
		}
	case wire.KindVisitResp, wire.KindProgressResp, wire.KindTraceResp, wire.KindWriteResp,
		wire.KindEventsResp, wire.KindStatusResp:
		// A rejected write piggybacks the server's route table so the retry
		// is already re-routed when the caller sees the error. (A successful
		// write response's Blob is payload — an intern request's id list —
		// never a table.)
		if msg.Kind == wire.KindWriteResp && msg.Err != "" && len(msg.Blob) > 0 {
			c.mergeRoute(msg.Blob)
		}
		c.mu.Lock()
		ch, ok := c.reqs[msg.ReqID]
		if ok {
			delete(c.reqs, msg.ReqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg
		}
	case wire.KindRouteUpdate:
		c.mergeRoute(msg.Blob)
	case wire.KindFeedBatch:
		c.mu.Lock()
		f := c.feeds[int(msg.Part)]
		c.mu.Unlock()
		if f != nil {
			f.handleBatch(msg)
		}
	}
}

// mergeRoute folds an encoded route table into the client's view; clients
// without a view (replication off) ignore route traffic.
func (c *Client) mergeRoute(blob []byte) {
	if c.route == nil {
		return
	}
	if tbl, err := route.DecodeTable(blob); err == nil {
		c.route.Update(tbl)
	}
}

// WriteOptions tunes a replicated write.
type WriteOptions struct {
	// Timeout bounds the whole Write call (default 30s).
	Timeout time.Duration
	// Retries re-sends a failed per-partition batch up to this many
	// additional times when the error is Retryable — e.g. a write fenced
	// mid-failover retries against the newly promoted primary after the
	// piggybacked route table is merged. Default (zero) retries 3 times;
	// negative disables retries.
	Retries int
}

// Write applies graph mutations durably through the replication protocol:
// each mutation is routed to its partition's primary, which acknowledges
// only once a quorum of the replica set holds it. Mutations for the same
// partition ship as one batch (one quorum round). Requires a cluster built
// with replication (a *route.View partitioner).
func (c *Client) Write(muts []gstore.Mutation, opts WriteOptions) error {
	if c.tr == nil {
		return errors.New("core: client not bound to a transport")
	}
	if c.route == nil {
		return errors.New("core: replication is not enabled on this cluster")
	}
	if len(muts) == 0 {
		return nil
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	deadline := time.Now().Add(opts.Timeout)
	byPart := make(map[int][]gstore.Mutation)
	for _, m := range muts {
		p := c.route.Partition(m.RoutingID())
		byPart[p] = append(byPart[p], m)
	}
	for p, batch := range byPart {
		blob := gstore.EncodeBatch(batch)
		var lastErr error
		for attempt := 0; ; attempt++ {
			// Split the remaining budget across the attempts left, so one
			// silent drop (e.g. a primary that died before gossip reached us)
			// cannot consume the whole deadline and starve the re-routed
			// retries.
			attemptDeadline := deadline
			if left := opts.Retries - attempt; left > 0 {
				if slice := time.Until(deadline) / time.Duration(left+1); slice > 0 {
					attemptDeadline = time.Now().Add(slice)
				}
			}
			lastErr = c.writePart(p, blob, attemptDeadline)
			if lastErr == nil {
				break
			}
			if attempt >= opts.Retries || !Retryable(lastErr) {
				return lastErr
			}
		}
	}
	return nil
}

// writePart runs one quorum round for one partition's batch against the
// partition's current primary.
func (c *Client) writePart(p int, blob []byte, deadline time.Time) error {
	primary := int(c.route.Assignment(p).Primary)
	reqID := c.reqSeq.Add(1)
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	c.reqs[reqID] = ch
	c.mu.Unlock()
	err := c.tr.Send(primary, wire.Message{
		Kind: wire.KindWriteReq, ReqID: reqID, Part: int32(p), Blob: blob,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return err
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return errors.New(resp.Err)
		}
		return nil
	case <-time.After(time.Until(deadline)):
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return fmt.Errorf("core: write to partition %d (server %d) timed out", p, primary)
	}
}

// Intern allocates (or looks up) dense interned ids for external vertex
// names through the replication protocol: each name goes to the primary of
// the partition its hash routes to, which allocates from that partition's
// counter and acknowledges once a quorum of replicas holds the allocation.
// The returned ids are positionally aligned with names. Interning is
// idempotent — re-interning a name returns its existing id.
func (c *Client) Intern(names []string, opts WriteOptions) ([]model.VertexID, error) {
	return c.nameRequest(names, wire.WriteModeIntern, opts)
}

// ResolveNames is the read-only counterpart of Intern: each name resolves
// to its interned id on the partition primary, or 0 when the name was never
// interned (0 is never a valid interned id).
func (c *Client) ResolveNames(names []string, opts WriteOptions) ([]model.VertexID, error) {
	return c.nameRequest(names, wire.WriteModeResolve, opts)
}

// nameRequest runs Intern/ResolveNames: group names by the partition their
// hash routes to, one request per partition, same retry/re-route policy as
// Write. Interning needs a replicated cluster (the server enforces it);
// the read-only resolve mode also works against unreplicated clusters,
// where partition == server.
func (c *Client) nameRequest(names []string, mode uint8, opts WriteOptions) ([]model.VertexID, error) {
	if c.tr == nil {
		return nil, errors.New("core: client not bound to a transport")
	}
	if c.route == nil && mode == wire.WriteModeIntern {
		return nil, errors.New("core: replication is not enabled on this cluster")
	}
	if len(names) == 0 {
		return nil, nil
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	deadline := time.Now().Add(opts.Timeout)
	type group struct {
		idx   []int
		names []string
	}
	byPart := make(map[int]*group)
	for i, name := range names {
		p := c.part.Owner(model.VertexID(model.HashName(name)))
		if c.route != nil {
			p = c.route.Partition(model.VertexID(model.HashName(name)))
		}
		g := byPart[p]
		if g == nil {
			g = &group{}
			byPart[p] = g
		}
		g.idx = append(g.idx, i)
		g.names = append(g.names, name)
	}
	out := make([]model.VertexID, len(names))
	for p, g := range byPart {
		blob := wire.EncodeNames(g.names)
		var ids []model.VertexID
		var lastErr error
		for attempt := 0; ; attempt++ {
			attemptDeadline := deadline
			if left := opts.Retries - attempt; left > 0 {
				if slice := time.Until(deadline) / time.Duration(left+1); slice > 0 {
					attemptDeadline = time.Now().Add(slice)
				}
			}
			ids, lastErr = c.namePart(p, mode, blob, attemptDeadline)
			if lastErr == nil {
				break
			}
			if attempt >= opts.Retries || !Retryable(lastErr) {
				return nil, lastErr
			}
		}
		if len(ids) != len(g.names) {
			return nil, fmt.Errorf("core: partition %d returned %d ids for %d names", p, len(ids), len(g.names))
		}
		for j, id := range ids {
			out[g.idx[j]] = id
		}
	}
	return out, nil
}

// NamesOf materializes interned ids back to their external names — the
// client-boundary direction for presenting traversal results. Ids that were
// never interned come back as "". Each id is looked up on its owning
// server (interned ids embed their partition, so no dictionary round-trip
// is needed to route the lookup itself).
func (c *Client) NamesOf(ids []model.VertexID, opts WriteOptions) ([]string, error) {
	if c.tr == nil {
		return nil, errors.New("core: client not bound to a transport")
	}
	if len(ids) == 0 {
		return nil, nil
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	deadline := time.Now().Add(opts.Timeout)
	type group struct {
		idx []int
		ids []model.VertexID
	}
	byPart := make(map[int]*group)
	for i, id := range ids {
		p := c.part.Owner(id)
		if c.route != nil {
			p = c.route.Partition(id)
		}
		g := byPart[p]
		if g == nil {
			g = &group{}
			byPart[p] = g
		}
		g.idx = append(g.idx, i)
		g.ids = append(g.ids, id)
	}
	out := make([]string, len(ids))
	for p, g := range byPart {
		blob := wire.EncodeIDs(g.ids)
		var resp []byte
		var lastErr error
		for attempt := 0; ; attempt++ {
			attemptDeadline := deadline
			if left := opts.Retries - attempt; left > 0 {
				if slice := time.Until(deadline) / time.Duration(left+1); slice > 0 {
					attemptDeadline = time.Now().Add(slice)
				}
			}
			resp, lastErr = c.rawNamePart(p, wire.WriteModeNames, blob, attemptDeadline)
			if lastErr == nil {
				break
			}
			if attempt >= opts.Retries || !Retryable(lastErr) {
				return nil, lastErr
			}
		}
		names, err := wire.DecodeNames(resp)
		if err != nil {
			return nil, err
		}
		if len(names) != len(g.ids) {
			return nil, fmt.Errorf("core: partition %d returned %d names for %d ids", p, len(names), len(g.ids))
		}
		for j, name := range names {
			out[g.idx[j]] = name
		}
	}
	return out, nil
}

// namePart runs one Intern/Resolve round against a partition's current
// primary.
func (c *Client) namePart(p int, mode uint8, blob []byte, deadline time.Time) ([]model.VertexID, error) {
	resp, err := c.rawNamePart(p, mode, blob, deadline)
	if err != nil {
		return nil, err
	}
	return wire.DecodeIDs(resp)
}

// rawNamePart ships one name-service request to a partition's primary (or,
// without a route view, straight to the owning server) and returns the
// response payload.
func (c *Client) rawNamePart(p int, mode uint8, blob []byte, deadline time.Time) ([]byte, error) {
	primary := p
	if c.route != nil {
		primary = int(c.route.Assignment(p).Primary)
	}
	reqID := c.reqSeq.Add(1)
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	c.reqs[reqID] = ch
	c.mu.Unlock()
	err := c.tr.Send(primary, wire.Message{
		Kind: wire.KindWriteReq, ReqID: reqID, Part: int32(p), Mode: mode, Blob: blob,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, errors.New(resp.Err)
		}
		return resp.Blob, nil
	case <-time.After(time.Until(deadline)):
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return nil, fmt.Errorf("core: name request on partition %d (server %d) timed out", p, primary)
	}
}

// SubmitOptions tunes one traversal submission.
type SubmitOptions struct {
	// Mode selects the engine; default ModeGraphTrek.
	Mode Mode
	// Coordinator picks the backend that coordinates the traversal;
	// negative selects one by hashing the traversal id (the paper's
	// "selected backend server").
	Coordinator int
	// Timeout bounds the client-side wait (default 120s).
	Timeout time.Duration
	// Retries restarts a failed traversal from scratch up to this many
	// additional times — the recovery policy of §IV-C ("this failure will
	// simply cause the traversal to be restarted"). Each retry gets a
	// fresh traversal id and, when Coordinator is negative, a different
	// coordinator, so a dead coordinator is routed around.
	Retries int
}

// Submit runs a traversal and returns the vertices its rtn()-marked steps
// (or, without rtn(), its final step) produced, sorted and deduplicated.
func (c *Client) Submit(t *query.Travel, opts SubmitOptions) ([]model.VertexID, error) {
	plan, err := t.Compile()
	if err != nil {
		return nil, err
	}
	return c.SubmitPlan(plan, opts)
}

// SubmitPlan runs an already compiled traversal plan, restarting it on
// failure per SubmitOptions.Retries.
func (c *Client) SubmitPlan(plan *query.Plan, opts SubmitOptions) ([]model.VertexID, error) {
	if opts.Retries < 0 {
		// A negative count must not skip the loop entirely and report an
		// empty result as success.
		opts.Retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= opts.Retries; attempt++ {
		res, err := c.submitOnce(plan, opts)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !Retryable(err) {
			break // a malformed plan or cancellation never heals with retries
		}
	}
	return nil, lastErr
}

// submitOnce runs a single traversal attempt.
func (c *Client) submitOnce(plan *query.Plan, opts SubmitOptions) ([]model.VertexID, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}
	if opts.Mode == ModeClientSide {
		if c.tr == nil {
			return nil, errors.New("core: client not bound to a transport")
		}
		travelID := uint64(c.tr.Self()+1)<<48 | c.seq.Add(1)
		return c.runClientSide(plan, travelID, opts)
	}
	h, err := c.SubmitPlanAsync(plan, opts)
	if err != nil {
		return nil, err
	}
	return h.Wait(opts.Timeout)
}

// Handle tracks an in-flight server-side traversal submitted with
// SubmitPlanAsync: the caller can poll Progress while the cluster works and
// collect the results with Wait.
type Handle struct {
	client   *Client
	travelID uint64
	coord    int
	p        *pendingTravel
}

// SubmitPlanAsync starts a server-side traversal and returns immediately.
// ModeClientSide is inherently synchronous at the client and is rejected.
func (c *Client) SubmitPlanAsync(plan *query.Plan, opts SubmitOptions) (*Handle, error) {
	if c.tr == nil {
		return nil, errors.New("core: client not bound to a transport")
	}
	if opts.Mode == ModeClientSide {
		return nil, errors.New("core: client-side traversal cannot run asynchronously")
	}
	travelID := uint64(c.tr.Self()+1)<<48 | c.seq.Add(1)
	coord := opts.Coordinator
	if coord < 0 || coord >= c.part.N() {
		coord = int(travelID % uint64(c.part.N()))
	}
	p := &pendingTravel{done: make(chan struct{})}
	c.mu.Lock()
	c.pending[travelID] = p
	c.mu.Unlock()

	err := c.tr.Send(coord, wire.Message{
		Kind: wire.KindStartTravel, TravelID: travelID,
		Mode: uint8(opts.Mode), Coord: int32(c.tr.Self()), Plan: plan.Encode(),
	})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, travelID)
		c.mu.Unlock()
		return nil, err
	}
	return &Handle{client: c, travelID: travelID, coord: coord, p: p}, nil
}

// TravelID returns the traversal's cluster-wide id.
func (h *Handle) TravelID() uint64 { return h.travelID }

// Coordinator returns the backend server coordinating the traversal.
func (h *Handle) Coordinator() int { return h.coord }

// Wait blocks until the traversal completes and returns its results.
func (h *Handle) Wait(timeout time.Duration) ([]model.VertexID, error) {
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	select {
	case <-h.p.done:
	case <-time.After(timeout):
		h.client.mu.Lock()
		delete(h.client.pending, h.travelID)
		h.client.mu.Unlock()
		return nil, fmt.Errorf("core: traversal %d timed out after %v at the client", h.travelID, timeout)
	}
	if h.p.err != nil {
		return nil, h.p.err
	}
	return sortedUnique(h.p.results), nil
}

// Cancel asks the coordinator to abort the traversal. Wait subsequently
// returns a cancellation error. Cancelling a finished traversal is a
// harmless no-op.
func (h *Handle) Cancel() error {
	return h.client.tr.Send(h.coord, wire.Message{
		Kind: wire.KindCancel, TravelID: h.travelID,
	})
}

// Progress queries the coordinator's ledger for the number of live
// executions per step (§IV-C): the user-facing remaining-work estimate.
// A finished traversal reports an empty map.
func (h *Handle) Progress(timeout time.Duration) (map[int32]int, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := h.client
	reqID := c.reqSeq.Add(1)
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	c.reqs[reqID] = ch
	c.mu.Unlock()
	err := c.tr.Send(h.coord, wire.Message{
		Kind: wire.KindProgressReq, TravelID: h.travelID, ReqID: reqID,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case resp := <-ch:
		out := make(map[int32]int, len(resp.Created))
		for _, ref := range resp.Created {
			out[ref.Step] = int(ref.ID)
		}
		if resp.Err != "" && len(out) == 0 {
			// Finished or unknown: report empty progress, not an error —
			// completion races with the query by design.
			return out, nil
		}
		return out, nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return nil, fmt.Errorf("core: progress query for traversal %d timed out", h.travelID)
	}
}

// Profile gathers the traversal's execution-trace aggregate from every
// backend: one StepStat row per (step, server) that ran executions, sorted
// by step then server. Call it after Wait — spans are buffered in each
// server's trace ring, so a completed traversal stays profilable until
// later traversals evict its spans. Servers with tracing disabled (or
// nothing buffered) contribute no rows; a backend that cannot be reached
// fails the profile.
func (h *Handle) Profile(timeout time.Duration) ([]trace.StepStat, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := h.client
	deadline := time.Now().Add(timeout)
	var all []trace.StepStat
	for srv := 0; srv < c.part.N(); srv++ {
		reqID := c.reqSeq.Add(1)
		ch := make(chan wire.Message, 1)
		c.mu.Lock()
		c.reqs[reqID] = ch
		c.mu.Unlock()
		err := c.tr.Send(srv, wire.Message{
			Kind: wire.KindTraceReq, TravelID: h.travelID, ReqID: reqID,
		})
		if err != nil {
			c.mu.Lock()
			delete(c.reqs, reqID)
			c.mu.Unlock()
			return nil, err
		}
		select {
		case resp := <-ch:
			if resp.Err != "" {
				return nil, errors.New(resp.Err)
			}
			if len(resp.Blob) > 0 {
				var stats []trace.StepStat
				if err := json.Unmarshal(resp.Blob, &stats); err != nil {
					return nil, fmt.Errorf("core: bad trace payload from server %d: %v", srv, err)
				}
				all = append(all, stats...)
			}
		case <-time.After(time.Until(deadline)):
			c.mu.Lock()
			delete(c.reqs, reqID)
			c.mu.Unlock()
			return nil, fmt.Errorf("core: trace query to server %d timed out", srv)
		}
	}
	trace.Sort(all)
	return all, nil
}

// FetchDAG pulls every backend's raw spans for the traversal and joins
// them into its causal execution DAG: span linkage across servers, ledger
// cross-check against the coordinator summary, and critical-path
// attribution (see trace.Assemble). Call it after Wait — like Profile, it
// reads the servers' trace rings, so the DAG stays fetchable until later
// traversals evict the spans (DAG.SpansDropped reports ring churn).
func (h *Handle) FetchDAG(timeout time.Duration) (*trace.DAG, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := h.client
	deadline := time.Now().Add(timeout)
	var spans []trace.Span
	var summary *trace.TravelSummary
	var dropped uint64
	for srv := 0; srv < c.part.N(); srv++ {
		reqID := c.reqSeq.Add(1)
		ch := make(chan wire.Message, 1)
		c.mu.Lock()
		c.reqs[reqID] = ch
		c.mu.Unlock()
		err := c.tr.Send(srv, wire.Message{
			Kind: wire.KindTraceReq, TravelID: h.travelID, ReqID: reqID, Mode: traceModeRaw,
		})
		if err != nil {
			c.mu.Lock()
			delete(c.reqs, reqID)
			c.mu.Unlock()
			return nil, err
		}
		select {
		case resp := <-ch:
			if resp.Err != "" {
				return nil, errors.New(resp.Err)
			}
			if len(resp.Blob) == 0 {
				continue
			}
			var dump trace.SpanDump
			if err := json.Unmarshal(resp.Blob, &dump); err != nil {
				return nil, fmt.Errorf("core: bad span payload from server %d: %v", srv, err)
			}
			spans = append(spans, dump.Spans...)
			dropped += dump.Dropped
			if dump.Summary != nil {
				summary = dump.Summary
			}
		case <-time.After(time.Until(deadline)):
			c.mu.Lock()
			delete(c.reqs, reqID)
			c.mu.Unlock()
			return nil, fmt.Errorf("core: span query to server %d timed out", srv)
		}
	}
	d := trace.Assemble(h.travelID, spans, summary)
	d.SpansDropped = dropped
	return d, nil
}

func sortedUnique(ids []model.VertexID) []model.VertexID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// runClientSide drives the traversal step by step from the client: every
// frontier is shipped back, aggregated, deduplicated, and redistributed —
// the client-side traversal of Fig 2a.
func (c *Client) runClientSide(plan *query.Plan, travelID uint64, opts SubmitOptions) ([]model.VertexID, error) {
	deadline := time.Now().Add(opts.Timeout)
	// Register the plan on every backend.
	for srv := 0; srv < c.part.N(); srv++ {
		err := c.tr.Send(srv, wire.Message{
			Kind: wire.KindStartTravel, TravelID: travelID,
			Mode: uint8(ModeClientSide), Coord: int32(c.tr.Self()), Plan: plan.Encode(),
		})
		if err != nil {
			return nil, err
		}
	}
	defer func() {
		for srv := 0; srv < c.part.N(); srv++ {
			c.tr.Send(srv, wire.Message{Kind: wire.KindTravelDone, TravelID: travelID})
		}
	}()

	type hop struct{ from, to model.VertexID }
	numSteps := plan.NumSteps()
	survivors := make([]map[model.VertexID]bool, numSteps)
	hops := make([][]hop, numSteps)

	// Step 0 candidates: explicit ids, or a per-server scan request.
	candidates := map[model.VertexID]bool{}
	if len(plan.Steps[0].SourceIDs) > 0 {
		for _, id := range plan.Steps[0].SourceIDs {
			candidates[id] = true
		}
	} else {
		for srv := 0; srv < c.part.N(); srv++ {
			resp, err := c.visit(srv, travelID, 0, 0, nil, true, deadline)
			if err != nil {
				return nil, err
			}
			for _, v := range resp.Verts {
				candidates[v] = true
			}
		}
	}

	// Client-mode spans chain at step granularity: each step's requests
	// carry the previous step's first request id as ParentExec (scan and
	// step-0 requests are roots). Coarser than the per-execution lineage of
	// the server-side engines — the client aggregates frontiers, erasing
	// which request produced which candidate — but enough to assemble the
	// per-step timeline into one rooted DAG.
	var stepParent uint64
	for step := 0; step < numSteps; step++ {
		byOwner := make(map[int][]wire.Entry)
		for v := range candidates {
			byOwner[c.part.Owner(v)] = append(byOwner[c.part.Owner(v)], wire.Entry{Vertex: v})
		}
		survivors[step] = make(map[model.VertexID]bool)
		next := map[model.VertexID]bool{}
		var firstReq uint64
		for owner, entries := range byOwner {
			resp, err := c.visit(owner, travelID, int32(step), stepParent, entries, false, deadline)
			if err != nil {
				return nil, err
			}
			if firstReq == 0 {
				firstReq = resp.ReqID
			}
			for _, v := range resp.Verts {
				survivors[step][v] = true
			}
			for _, e := range resp.Entries {
				// Expansion: e.Anc is the surviving source, e.Vertex the
				// next-step candidate.
				hops[step+1] = append(hops[step+1], hop{from: e.Anc, to: e.Vertex})
				next[e.Vertex] = true
			}
		}
		stepParent = firstReq
		candidates = next
	}

	// Backward liveness, as in the reference evaluator.
	alive := make([]map[model.VertexID]bool, numSteps)
	alive[numSteps-1] = survivors[numSteps-1]
	for i := numSteps - 1; i > 0; i-- {
		alive[i-1] = make(map[model.VertexID]bool)
		for _, h := range hops[i] {
			if alive[i][h.to] && survivors[i-1][h.from] {
				alive[i-1][h.from] = true
			}
		}
	}
	var out []model.VertexID
	seen := map[model.VertexID]bool{}
	for i := 0; i < numSteps; i++ {
		if !plan.Returned(i) {
			continue
		}
		for v := range alive[i] {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return sortedUnique(out), nil
}

// visit performs one synchronous VisitReq round trip. parent is the
// ParentExec stamped on the request (zero for roots).
func (c *Client) visit(srv int, travelID uint64, step int32, parent uint64, entries []wire.Entry, scan bool, deadline time.Time) (wire.Message, error) {
	reqID := c.reqSeq.Add(1)
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	c.reqs[reqID] = ch
	c.mu.Unlock()
	msg := wire.Message{
		Kind: wire.KindVisitReq, TravelID: travelID,
		Step: step, ReqID: reqID, ParentExec: parent, Entries: entries,
	}
	if scan {
		msg.Mode = 1 // scan request marker
	}
	if c.rtt > 0 {
		time.Sleep(c.rtt)
	}
	if err := c.tr.Send(srv, msg); err != nil {
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return wire.Message{}, err
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return wire.Message{}, errors.New(resp.Err)
		}
		return resp, nil
	case <-time.After(time.Until(deadline)):
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return wire.Message{}, fmt.Errorf("core: visit request to server %d timed out", srv)
	}
}
