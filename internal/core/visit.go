package core

import (
	"time"

	"graphtrek/internal/cache"
	"graphtrek/internal/model"
	"graphtrek/internal/query"
	"graphtrek/internal/sched"
	"graphtrek/internal/trace"
	"graphtrek/internal/wire"
)

// spanOf resolves the trace builder behind a scheduled item; nil (all
// methods no-ops) when tracing is disabled.
func spanOf(it sched.Item) *trace.Builder { return it.Exec.(accumulator).span() }

// processGroup serves one scheduler group: every pending request for one
// vertex of one traversal. This is the server's unit of work from §IV-B —
// fetch the vertex, apply the step's vertex filters, iterate the next
// step's typed edges, and buffer dispatches to the owners of the new
// frontier — extended with the §V optimizations:
//
//   - traversal-affiliate caching: a request whose {travel, step, vertex,
//     ancestor} was already served is dropped as redundant;
//   - execution merging: all surviving requests in the group share one
//     disk access.
func (s *Server) processGroup(ts *travelState, g sched.Group) {
	// The scheduler stamped the pop time; reusing it keeps span-level wait
	// attribution consistent with the server's queue-wait metric.
	now := g.Popped
	if now.IsZero() {
		now = time.Now()
	}
	live := g.Items[:0:0]
	var dropped []sched.Item
	for _, it := range g.Items {
		if !it.Enqueued.IsZero() {
			spanOf(it).ObserveWait(now.Sub(it.Enqueued))
		}
		if ts.tun.useCache {
			k := cache.Key{
				Travel: ts.id, Step: it.Step, Vertex: it.Vertex,
				Anc: it.Anc, AncStep: it.AncStep,
			}
			if s.cache.CheckAndInsert(k) {
				s.met.AddRedundant(1)
				spanOf(it).AddRedundant(1)
				dropped = append(dropped, it)
				continue
			}
		}
		live = append(live, it)
	}
	s.finishItems(ts, dropped, nil)
	if len(live) == 0 {
		return
	}
	s.met.AddRealIO(1)
	s.met.AddCombined(len(live) - 1)
	// The first live entry pays the (merged) storage access; the rest ride
	// along — the same attribution the server counters use, so per-span
	// dispositions sum to the server totals.
	spanOf(live[0]).AddReal(1)
	for _, it := range live[1:] {
		spanOf(it).AddCombined(1)
	}

	// One (simulated) disk access serves the whole merged group: the
	// storage layout keeps a vertex's attributes and typed edge lists
	// contiguous, so this is a single sequential read. The fetch phase is
	// attributed to the span paying the access, like the real-IO counter.
	headSp := spanOf(live[0])
	var fetchStart time.Time
	if headSp != nil {
		fetchStart = time.Now()
	}
	s.disk.Access(int(live[0].Step), uint64(g.Vertex))
	vtx, found, err := s.cfg.Store.GetVertex(g.Vertex)
	if headSp != nil {
		headSp.AddFetch(time.Since(fetchStart))
	}
	if err != nil {
		s.finishItems(ts, live, err)
		return
	}
	for _, it := range live {
		if ts.mode == ModeClientSide {
			s.processVisitItem(ts, vtx, found, it)
		} else {
			s.processItem(ts, vtx, found, it)
		}
	}
	s.finishItems(ts, live, nil)
}

// stepMatches applies one step's vertex predicate. Step 0 uses the full
// source predicate (label restriction + filters): index-pushed seed
// candidates are label-agnostic, unlike the label scan they replace.
func stepMatches(plan *query.Plan, step int32, vtx model.Vertex) bool {
	if step == 0 {
		return query.SourceMatches(vtx, plan.Steps[0])
	}
	return query.VertexMatches(vtx, plan.Steps[step].VertexFilters)
}

// processItem evaluates one request against the (already fetched) vertex.
func (s *Server) processItem(ts *travelState, vtx model.Vertex, found bool, it sched.Item) {
	plan := ts.plan
	last := int32(plan.NumSteps() - 1)
	exec := it.Exec.(accumulator).execID()
	sp := spanOf(it)
	var phaseStart time.Time
	if sp != nil {
		phaseStart = time.Now()
	}
	match := found && stepMatches(plan, it.Step, vtx)
	if sp != nil {
		sp.AddFilter(time.Since(phaseStart))
	}
	if !match {
		return // the path dies here
	}

	anc, ancStep, dest := it.Anc, it.AncStep, it.Dest
	if plan.Returned(int(it.Step)) {
		if it.Step == last {
			// Final step marked (explicitly, or implicitly when the plan
			// has no rtn()): the vertex itself is a result, and its own
			// ancestor — if any — just saw a path reach the end.
			s.bufferResult(ts, it.Vertex)
		} else {
			// Intermediate rtn(): this server becomes the reporting
			// destination for everything downstream of this vertex
			// (Fig 4), and remembers how to propagate success upstream.
			s.recordRtn(ts, exec, it.Vertex, it.Step, anc, ancStep, dest)
			anc, ancStep, dest = it.Vertex, it.Step, int32(s.cfg.ID)
		}
	}
	if it.Step == last {
		if it.Dest >= 0 {
			// Signal the previous rtn level that a path survived.
			s.bufferSig(ts, exec, int(it.Dest), wire.Entry{Vertex: it.Anc, AncStep: it.AncStep})
		}
		return
	}

	// Expand the next step's typed edges; destinations go to their owners.
	// Dispatch time (outbox buffering, possibly an early batch flush) is
	// carved out of the scan interval so the two phases report separably.
	next := plan.Steps[it.Step+1]
	var scanStart time.Time
	var dispatchNs int64
	if sp != nil {
		scanStart = time.Now()
	}
	dispatch := func(dst model.VertexID) bool {
		owner := s.cfg.Part.Owner(dst)
		entry := wire.Entry{Vertex: dst, Anc: anc, AncStep: ancStep, Dest: dest}
		if sp != nil {
			d0 := time.Now()
			s.bufferDispatch(ts, exec, owner, it.Step+1, entry)
			dispatchNs += int64(time.Since(d0))
		} else {
			s.bufferDispatch(ts, exec, owner, it.Step+1, entry)
		}
		return true
	}
	var err error
	if len(next.EdgeFilters) == 0 {
		// No edge-property predicate: expand over the packed adjacency run —
		// destination ids straight from the key bytes (and the packed read
		// cache), no edge value fetch, no property-map decode.
		err = s.cfg.Store.ScanEdgeIDs(it.Vertex, next.EdgeLabel, dispatch)
	} else {
		err = s.cfg.Store.ScanEdges(it.Vertex, next.EdgeLabel, func(e model.Edge) bool {
			if !next.EdgeFilters.MatchAll(e.Props) {
				return true
			}
			return dispatch(e.Dst)
		})
	}
	if sp != nil {
		sp.AddScan(time.Since(scanStart))
		sp.AddDispatch(time.Duration(dispatchNs))
	}
	if err != nil {
		ts.addErr(err.Error())
	}
}

// recordRtn notes that vertex (marked at step) is awaiting an end-of-chain
// signal, remembering the upstream reference to notify when it arrives. If
// the vertex already received its signal via an earlier path, the new
// upstream learns of the success immediately.
func (s *Server) recordRtn(ts *travelState, exec uint64, v model.VertexID, step int32, anc model.VertexID, ancStep, dest int32) {
	up := upRef{anc: anc, ancStep: ancStep, dest: dest}
	ts.rtnMu.Lock()
	rec, ok := ts.rtn[rtnKey{v, step}]
	if !ok {
		rec = &rtnRec{}
		ts.rtn[rtnKey{v, step}] = rec
	}
	if rec.returned {
		ts.rtnMu.Unlock()
		s.notifyUp(ts, exec, up)
		return
	}
	for _, u := range rec.ups {
		if u == up {
			ts.rtnMu.Unlock()
			return
		}
	}
	rec.ups = append(rec.ups, up)
	ts.rtnMu.Unlock()
}

// notifyUp propagates an end-of-chain success one rtn level upstream.
// parent is the execution observing the success, attributed to the
// resulting signal batch.
func (s *Server) notifyUp(ts *travelState, parent uint64, up upRef) {
	if up.dest >= 0 {
		s.bufferSig(ts, parent, int(up.dest), wire.Entry{Vertex: up.anc, AncStep: up.ancStep})
	}
}

// handleReturnSig processes an end-of-chain signal batch (§IV-D): each
// signalled vertex is returned to the coordinator exactly once, and the
// success continues to ripple upstream through earlier rtn levels. Signals
// are lightweight bookkeeping — no disk access — so they run inline on the
// transport's dispatch goroutine as their own traversal execution.
func (s *Server) handleReturnSig(_ int, msg wire.Message, ts *travelState) {
	for _, e := range msg.Entries {
		ts.rtnMu.Lock()
		rec, ok := ts.rtn[rtnKey{e.Vertex, e.AncStep}]
		if !ok || rec.returned {
			ts.rtnMu.Unlock()
			continue
		}
		rec.returned = true
		ups := rec.ups
		rec.ups = nil
		ts.rtnMu.Unlock()
		s.bufferResult(ts, e.Vertex)
		for _, up := range ups {
			s.notifyUp(ts, msg.ExecID, up)
		}
	}
	ts.addEnded(msg.ExecID)
	s.recordInstantSpan(ts.id, msg.ExecID, msg.ParentExec, msg.Step, len(msg.Entries), "")
	s.flushTravel(ts)
}
