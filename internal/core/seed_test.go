package core

import (
	"math/rand"
	"testing"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
)

// seedPlans are step-0 shapes covering every pushdown case: EQ, IN and
// RANGE on the indexed key (index-resolvable), an un-indexed filter key, a
// plain label seed and an explicit id seed (never index-resolved).
func seedPlans(t *testing.T, r *rand.Rand) []*query.Plan {
	return []*query.Plan{
		mustPlan(t, query.V().Va("p", property.EQ, 3).E("run").E("read")),
		mustPlan(t, query.VLabel("User").Va("p", property.IN, 1, 4, 7).E("run")),
		mustPlan(t, query.V().Va("p", property.RANGE, 2, 6).E("write").E("read")),
		mustPlan(t, query.VLabel("Execution").Va("w", property.EQ, 5).E("read")),
		mustPlan(t, query.VLabel("File").E("write")),
		mustPlan(t, query.V(model.VertexID(r.Intn(50))).E("run").E("read")),
	}
}

// TestIndexAndCacheModesEquivalent is the acceptance matrix for the seed
// pushdown and the read cache: every engine mode must return identical
// results with indexes off, indexes on, the read cache on, both on, and
// both on with an eviction-thrashing tiny cache. Extends the
// TestTinyCacheStillCorrect principle — both structures are performance
// paths, never correctness dependencies.
func TestIndexAndCacheModesEquivalent(t *testing.T) {
	configs := []struct {
		name    string
		indexed bool
		tweak   func(*Config)
	}{
		{"baseline", false, nil},
		{"index", true, func(cfg *Config) { cfg.IndexKeys = []string{"p"} }},
		{"cache", false, func(cfg *Config) {
			cfg.Store = gstore.NewCachedGraph(cfg.Store, 1<<20)
		}},
		{"index+cache", true, func(cfg *Config) {
			cfg.Store = gstore.NewCachedGraph(cfg.Store, 1<<20)
			cfg.IndexKeys = []string{"p"}
		}},
		{"index+tinycache", true, func(cfg *Config) {
			// 512 bytes over 16 shards: almost nothing stays resident.
			cfg.Store = gstore.NewCachedGraph(cfg.Store, 512)
			cfg.IndexKeys = []string{"p"}
		}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			c := newCluster(t, 3, tc.tweak)
			r := rand.New(rand.NewSource(29))
			randomGraph(t, c, r, 50, 250)
			for _, plan := range seedPlans(t, r) {
				c.runAllModes(t, plan)
			}
			var indexHits int64
			for _, s := range c.servers {
				indexHits += s.Metrics().SeedIndexHits
			}
			if tc.indexed && indexHits == 0 {
				t.Error("indexed config never resolved a seed via the index")
			}
			if !tc.indexed && indexHits != 0 {
				t.Errorf("un-indexed config reported %d index hits", indexHits)
			}
		})
	}
}

// TestIndexEnabledMidLife enables the index after a first batch of
// traversals has already run on the scan path: the same plans must keep
// returning the same results, now index-resolved. This is the operational
// shape of adding an index to a live deployment.
func TestIndexEnabledMidLife(t *testing.T) {
	c := newCluster(t, 3, nil)
	r := rand.New(rand.NewSource(31))
	randomGraph(t, c, r, 50, 250)
	plans := seedPlans(t, r)
	for _, plan := range plans {
		c.runAllModes(t, plan)
	}
	for _, s := range c.servers {
		if hits := s.Metrics().SeedIndexHits; hits != 0 {
			t.Fatalf("index hits before any index exists: %d", hits)
		}
	}
	// The engine holds the same store instance, so enabling directly on the
	// backing stores makes HasIndex flip true for in-flight servers.
	for _, st := range c.stores {
		if err := st.EnableIndex("p"); err != nil {
			t.Fatal(err)
		}
	}
	for _, plan := range plans {
		c.runAllModes(t, plan)
	}
	var indexHits int64
	for _, s := range c.servers {
		indexHits += s.Metrics().SeedIndexHits
	}
	if indexHits == 0 {
		t.Error("mid-life enabled index never resolved a seed")
	}
}

// TestSeedScannedCountsBothPaths pins the SeedScanned semantics the
// readpath benchmark gates on: the counter totals step-0 candidates
// enumerated whichever way they were produced, so for an indexed EQ seed
// the cluster-wide total equals the number of matching vertices rather
// than the scanned population.
func TestSeedScannedCountsBothPaths(t *testing.T) {
	const n = 40
	c := newCluster(t, 3, nil)
	matches := 0
	for i := 0; i < n; i++ {
		v := model.Vertex{ID: model.VertexID(i), Label: "User",
			Props: property.Map{"p": property.Int(int64(i % 8))}}
		c.addVertex(t, v)
		if i%8 == 3 {
			matches++
		}
	}
	plan := mustPlan(t, query.VLabel("User").Va("p", property.EQ, 3))
	sum := func(get func(Metrics) int64) int64 {
		var total int64
		for _, s := range c.servers {
			total += get(s.Metrics())
		}
		return total
	}

	if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: -1}); err != nil {
		t.Fatal(err)
	}
	if got := sum(func(m Metrics) int64 { return m.SeedScanned }); got != n {
		t.Errorf("scan path SeedScanned = %d, want %d", got, n)
	}

	for _, st := range c.stores {
		if err := st.EnableIndex("p"); err != nil {
			t.Fatal(err)
		}
	}
	before := sum(func(m Metrics) int64 { return m.SeedScanned })
	if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: -1}); err != nil {
		t.Fatal(err)
	}
	if got := sum(func(m Metrics) int64 { return m.SeedScanned }) - before; got != int64(matches) {
		t.Errorf("index path SeedScanned delta = %d, want %d", got, matches)
	}
	if got := sum(func(m Metrics) int64 { return m.SeedIndexHits }); got != int64(matches) {
		t.Errorf("SeedIndexHits = %d, want %d", got, matches)
	}
}
