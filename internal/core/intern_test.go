package core

import (
	"fmt"
	"testing"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/metrics"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/route"
	"graphtrek/internal/rpc"
)

// namedAuditGraph is loadAuditGraph's structure keyed by external string
// names instead of numeric ids — the same Fig 1-style metadata graph, built
// through the interning dictionary.
type namedVertex struct {
	name  string
	label string
	props property.Map
}

type namedEdge struct {
	src, dst, label string
	props           property.Map
}

var namedAuditVerts = []namedVertex{
	{"user/sam", "User", property.Map{"name": property.String("sam")}},
	{"user/john", "User", property.Map{"name": property.String("john")}},
	{"exec/a1", "Execution", property.Map{"model": property.String("A")}},
	{"exec/b1", "Execution", property.Map{"model": property.String("B")}},
	{"exec/a2", "Execution", property.Map{"model": property.String("A")}},
	{"file/t1", "File", property.Map{"type": property.String("text")}},
	{"file/b1", "File", property.Map{"type": property.String("bin")}},
	{"file/t2", "File", property.Map{"type": property.String("text")}},
}

var namedAuditEdges = []namedEdge{
	{"user/sam", "exec/a1", "run", property.Map{"ts": property.Int(5)}},
	{"user/sam", "exec/b1", "run", property.Map{"ts": property.Int(50)}},
	{"user/john", "exec/a2", "run", property.Map{"ts": property.Int(5)}},
	{"exec/a1", "file/t1", "read", nil},
	{"exec/b1", "file/b1", "read", nil},
	{"exec/a1", "file/t2", "write", nil},
}

// numericNameOf maps loadAuditGraph's numeric ids to the named graph's
// names, so the two clusters' result sets are comparable.
var numericNameOf = map[model.VertexID]string{
	1: "user/sam", 2: "user/john",
	10: "exec/a1", 11: "exec/b1", 12: "exec/a2",
	20: "file/t1", 21: "file/b1", 22: "file/t2",
}

// internDirect interns a name straight into its owning store (the bulk-load
// path on an unreplicated cluster) and mirrors the pair into the oracle
// store.
func internDirect(t testing.TB, c *cluster, name string) model.VertexID {
	t.Helper()
	p := c.part.Owner(model.VertexID(model.HashName(name)))
	in, ok := gstore.InternerOf(c.stores[p])
	if !ok {
		t.Fatalf("store %d has no interner", p)
	}
	id, err := in.Intern(name, p)
	if err != nil {
		t.Fatal(err)
	}
	if gin, ok := gstore.InternerOf(c.global); ok {
		if err := gin.ApplyIntern(name, id); err != nil {
			t.Fatal(err)
		}
	}
	return id
}

// loadNamedAuditGraph builds the audit graph on interned ids.
func loadNamedAuditGraph(t testing.TB, c *cluster) map[string]model.VertexID {
	t.Helper()
	ids := make(map[string]model.VertexID)
	for _, v := range namedAuditVerts {
		ids[v.name] = internDirect(t, c, v.name)
	}
	for _, v := range namedAuditVerts {
		c.addVertex(t, model.Vertex{ID: ids[v.name], Label: v.label, Props: v.props})
	}
	for _, e := range namedAuditEdges {
		c.addEdge(t, model.Edge{Src: ids[e.src], Dst: ids[e.dst], Label: e.label, Props: e.props})
	}
	return ids
}

// clusterTotals sums the engine counters across a cluster's servers.
func clusterTotals(c *cluster) metrics.Snapshot {
	var total metrics.Snapshot
	for _, s := range c.servers {
		total = total.Add(s.Metrics())
	}
	return total
}

// resultNames maps a result set through an id→name table, failing on ids
// the table does not know.
func resultNames(t *testing.T, res []model.VertexID, nameOf func(model.VertexID) (string, bool)) map[string]bool {
	t.Helper()
	out := make(map[string]bool, len(res))
	for _, id := range res {
		name, ok := nameOf(id)
		if !ok {
			t.Fatalf("result id %v has no name", id)
		}
		out[name] = true
	}
	return out
}

// TestInternedDifferentialAllModes is the tentpole's differential matrix:
// the same logical graph runs once on plain numeric ids (the pre-refactor
// identity) and once on dictionary-interned ids, under seeded delay chaos,
// across every engine mode. Both paths must return the same logical result
// set (compared by name), match their own reference oracle, and agree on
// the deterministic dedup dispositions: accepted frontier entries,
// cache-eliminated redundant requests, and distinct served requests
// (combined + real — only the combined/real split is timing-dependent).
// Delay-only chaos keeps the message multiset deterministic; duplication
// is exercised separately below because duplicated batches legitimately
// inflate the counters nondeterministically.
func TestInternedDifferentialAllModes(t *testing.T) {
	plans := []struct {
		name string
		q    *query.Travel
	}{
		{"chain", query.VLabel("User").E("run").E("read")},
		{"rtn", query.VLabel("Execution").Rtn().E("read").Va("type", property.EQ, "text")},
	}
	for _, seed := range []int64{3, 11} {
		chaosCfg := func(id int) rpc.ChaosConfig {
			return rpc.ChaosConfig{
				Seed:      seed*17 + int64(id),
				DelayProb: 0.3,
				MaxDelay:  2 * time.Millisecond,
			}
		}
		numC, _ := newChaosCluster(t, 3, chaosCfg, nil)
		loadAuditGraph(t, numC)
		intC, _ := newChaosCluster(t, 3, chaosCfg, nil)
		ids := loadNamedAuditGraph(t, intC)
		if len(ids) != len(numericNameOf) {
			t.Fatalf("interned %d names, numeric graph has %d", len(ids), len(numericNameOf))
		}
		for name, id := range ids {
			if !id.Interned() {
				t.Fatalf("id for %q not interned: %v", name, id)
			}
		}
		intNameOf := func(id model.VertexID) (string, bool) {
			in, _ := gstore.InternerOf(intC.global)
			name, ok, _ := in.LookupName(id)
			return name, ok
		}
		numNameOf := func(id model.VertexID) (string, bool) {
			name, ok := numericNameOf[id]
			return name, ok
		}

		for _, p := range plans {
			plan := mustPlan(t, p.q)
			wantNum, err := query.Reference(numC.global, plan)
			if err != nil {
				t.Fatal(err)
			}
			wantInt, err := query.Reference(intC.global, plan)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range allModes {
				numBefore, intBefore := clusterTotals(numC), clusterTotals(intC)
				gotNum, err := numC.client.SubmitPlan(plan, SubmitOptions{Mode: mode, Coordinator: 0, Timeout: 30 * time.Second})
				if err != nil {
					t.Fatalf("numeric seed %d %s %v: %v", seed, p.name, mode, err)
				}
				gotInt, err := intC.client.SubmitPlan(plan, SubmitOptions{Mode: mode, Coordinator: 0, Timeout: 30 * time.Second})
				if err != nil {
					t.Fatalf("interned seed %d %s %v: %v", seed, p.name, mode, err)
				}
				if !sameIDs(gotNum, wantNum.Results) {
					t.Errorf("numeric seed %d %s %v: got %v want %v", seed, p.name, mode, gotNum, wantNum.Results)
				}
				if !sameIDs(gotInt, wantInt.Results) {
					t.Errorf("interned seed %d %s %v: got %v want %v", seed, p.name, mode, gotInt, wantInt.Results)
				}
				// The logical result sets must be identical name-for-name.
				numNames := resultNames(t, gotNum, numNameOf)
				intNames := resultNames(t, gotInt, intNameOf)
				if len(numNames) != len(intNames) {
					t.Fatalf("seed %d %s %v: numeric names %v vs interned %v", seed, p.name, mode, numNames, intNames)
				}
				for n := range numNames {
					if !intNames[n] {
						t.Errorf("seed %d %s %v: name %q missing from interned results", seed, p.name, mode, n)
					}
				}
				// Deterministic dedup dispositions agree between the paths.
				numD := clusterTotals(numC).Sub(numBefore)
				intD := clusterTotals(intC).Sub(intBefore)
				if numD.Received != intD.Received {
					t.Errorf("seed %d %s %v: Received %d (numeric) vs %d (interned)", seed, p.name, mode, numD.Received, intD.Received)
				}
				if numD.Redundant != intD.Redundant {
					t.Errorf("seed %d %s %v: Redundant %d (numeric) vs %d (interned)", seed, p.name, mode, numD.Redundant, intD.Redundant)
				}
				if ns, is := numD.Combined+numD.RealIO, intD.Combined+intD.RealIO; ns != is {
					t.Errorf("seed %d %s %v: served %d (numeric) vs %d (interned)", seed, p.name, mode, ns, is)
				}
				if !numD.Consistent() || !intD.Consistent() {
					t.Errorf("seed %d %s %v: disposition identity broken (numeric %+v, interned %+v)", seed, p.name, mode, numD, intD)
				}
			}
		}
	}
}

// TestInternedChaosDuplicationLedger re-runs the interned path under
// message duplication and checks what remains invariant there: exact
// oracle results, the disposition accounting identity, and a balanced
// execution ledger (created == ended) on every server-side mode.
func TestInternedChaosDuplicationLedger(t *testing.T) {
	c, _ := newChaosCluster(t, 3, func(id int) rpc.ChaosConfig {
		return rpc.ChaosConfig{
			Seed:      101 + int64(id),
			DupProb:   0.15,
			DelayProb: 0.3,
			MaxDelay:  3 * time.Millisecond,
		}
	}, nil)
	loadNamedAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("User").E("run").E("read"))
	want, err := query.Reference(c.global, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range allModes {
		if mode == ModeClientSide {
			// Client-mode batches are not ledger executions; the plain
			// result check below covers it via the matrix test.
			continue
		}
		before := clusterTotals(c)
		h, err := c.client.SubmitPlanAsync(plan, SubmitOptions{Mode: mode, Coordinator: 0, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Wait(30 * time.Second)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !sameIDs(got, want.Results) {
			t.Errorf("%v: got %v want %v", mode, got, want.Results)
		}
		// The exact disposition identity does not survive duplication: a
		// copy arriving after the travel retires is counted Received but
		// dropped by the done-travel guard without a classification (the
		// delay-only matrix above asserts strict equality). What must hold
		// is the inequality — classifications never exceed receipts.
		if d := clusterTotals(c).Sub(before); d.Redundant+d.Combined+d.RealIO > d.Received {
			t.Errorf("%v: classified more than received: %+v", mode, d)
		}
		dag, err := h.FetchDAG(0)
		if err != nil {
			t.Fatalf("%v: fetch DAG: %v", mode, err)
		}
		if dag.Summary == nil {
			t.Fatalf("%v: no ledger summary", mode)
		}
		if dag.Summary.Created != dag.Summary.Ended {
			t.Errorf("%v: ledger created %d != ended %d", mode, dag.Summary.Created, dag.Summary.Ended)
		}
		if len(dag.Nodes) == 0 {
			t.Errorf("%v: no spans collected", mode)
		}
	}
}

// namesForPartition generates distinct names whose hash routes to
// partition p under the view's stable id→partition map. (Deliberately not
// View.Owner, which resolves to the partition's *current primary server*
// and therefore changes across failover.)
func namesForPartition(view *route.View, p, n int, prefix string) []string {
	var out []string
	for i := 0; len(out) < n; i++ {
		name := fmt.Sprintf("%s/%d", prefix, i)
		if view.Partition(model.VertexID(model.HashName(name))) == p {
			out = append(out, name)
		}
	}
	return out
}

// TestReplInternQuorumHandoffAndFailover drives the dictionary through the
// full PR 6 lifecycle: quorum-replicated allocation, idempotent re-intern,
// snapshot + live-tail handoff onto a joining server, and epoch-fenced
// failover — after which the promoted replica must hold the identical
// mapping and continue allocating without collisions.
func TestStressReplInternQuorumHandoffAndFailover(t *testing.T) {
	const (
		n            = 3
		hb           = 100 * time.Millisecond
		suspectAfter = 3 * hb
	)
	c, chaos, views := newReplCluster(t, n, 2, func(cfg *Config) {
		cfg.HeartbeatInterval = hb
		cfg.SuspectAfter = suspectAfter
	})
	clientView := views[n]

	// Anchor everything on one partition: its boot primary is server p with
	// follower (p+1)%n, and (p+2)%n stays free to join.
	names := namesForPartition(clientView, 0, 5, "obj")
	p := 0
	primary := p
	follower := (p + 1) % n
	joiner := (p + 2) % n

	ids, err := c.client.Intern(names, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if !id.Interned() || id.InternedPartition() != p {
			t.Fatalf("id %v for %q: want interned id of partition %d", id, names[i], p)
		}
		if id.InternedCounter() != uint64(i) {
			t.Errorf("id %v for %q: counter %d, want dense %d", id, names[i], id.InternedCounter(), i)
		}
	}
	// Idempotent: re-interning returns the same ids.
	again, err := c.client.Intern(names, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(again, ids) {
		t.Fatalf("re-intern gave %v, want %v", again, ids)
	}
	// The quorum (rf=2: primary + follower) holds the mapping at ack time.
	for _, srv := range []int{primary, follower} {
		in, _ := gstore.InternerOf(c.stores[srv])
		for i, name := range names {
			id, ok, err := in.LookupID(name)
			if err != nil || !ok || id != ids[i] {
				t.Fatalf("server %d: LookupID(%q) = %v ok=%v err=%v, want %v", srv, name, id, ok, err, ids[i])
			}
		}
	}
	// Client-boundary round trips.
	resolved, err := c.client.ResolveNames(names, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(resolved, ids) {
		t.Fatalf("ResolveNames = %v, want %v", resolved, ids)
	}
	back, err := c.client.NamesOf(ids, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range back {
		if name != names[i] {
			t.Fatalf("NamesOf[%d] = %q, want %q", i, name, names[i])
		}
	}

	// Online handoff: the snapshot stream must carry the dictionary.
	if err := c.servers[joiner].JoinPartition(p); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, 5*time.Second, "joiner published as follower", func() bool {
		return clientView.Assignment(p).HasReplica(int32(joiner))
	})
	pollUntil(t, 5*time.Second, "dictionary on the joiner", func() bool {
		in, _ := gstore.InternerOf(c.stores[joiner])
		for i, name := range names {
			if id, ok, _ := in.LookupID(name); !ok || id != ids[i] {
				return false
			}
		}
		return true
	})

	// Live tail after the join: new allocations reach the joiner too.
	tailNames := namesForPartition(clientView, p, 2, "tail")
	tailIDs, err := c.client.Intern(tailNames, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pollUntil(t, 5*time.Second, "tail allocations on the joiner", func() bool {
		in, _ := gstore.InternerOf(c.stores[joiner])
		for i, name := range tailNames {
			if id, ok, _ := in.LookupID(name); !ok || id != tailIDs[i] {
				return false
			}
		}
		return true
	})

	// Failover: crash the primary; a surviving replica is promoted and must
	// keep resolving the old names AND allocate fresh ids past the dead
	// primary's counter (the replayed OpIntern entries advanced it).
	chaos[primary].Crash()
	pollUntil(t, 10*time.Second, "promotion away from the dead primary", func() bool {
		return clientView.Assignment(p).Primary != int32(primary)
	})
	lateNames := namesForPartition(clientView, p, 2, "late")
	lateIDs, err := c.client.Intern(lateNames, WriteOptions{Timeout: 20 * time.Second, Retries: 5})
	if err != nil {
		t.Fatalf("intern after failover: %v", err)
	}
	seen := make(map[model.VertexID]bool)
	for _, id := range append(append([]model.VertexID{}, ids...), tailIDs...) {
		seen[id] = true
	}
	for i, id := range lateIDs {
		if !id.Interned() || id.InternedPartition() != p {
			t.Fatalf("post-failover id %v for %q not on partition %d", id, lateNames[i], p)
		}
		if seen[id] {
			t.Fatalf("post-failover allocation %v for %q collides with a pre-failover id", id, lateNames[i])
		}
	}
	resolved, err = c.client.ResolveNames(names, WriteOptions{Timeout: 20 * time.Second, Retries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(resolved, ids) {
		t.Fatalf("post-failover ResolveNames = %v, want %v", resolved, ids)
	}
}
