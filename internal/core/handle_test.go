package core

import (
	"testing"
	"time"

	"graphtrek/internal/query"
	"graphtrek/internal/rpc"
	"graphtrek/internal/simio"
	"graphtrek/internal/wire"
)

func TestHandleWaitReturnsResults(t *testing.T) {
	c := newCluster(t, 3, nil)
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.V(1).E("run").E("read"))
	want, err := query.Reference(c.global, plan)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.client.SubmitPlanAsync(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Coordinator() != 1 {
		t.Errorf("coordinator = %d", h.Coordinator())
	}
	if h.TravelID() == 0 {
		t.Error("zero travel id")
	}
	got, err := h.Wait(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, want.Results) {
		t.Errorf("got %v want %v", got, want.Results)
	}
}

func TestHandleProgressDuringSlowTraversal(t *testing.T) {
	// A deliberately slow disk keeps the traversal in flight long enough
	// for a progress poll to observe live executions.
	c := newCluster(t, 2, func(cfg *Config) {
		cfg.Disk = simio.NewDisk(20*time.Millisecond, 1)
		cfg.Workers = 1
	})
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("File").Rtn()) // touches every file
	h, err := c.client.SubmitPlanAsync(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0})
	if err != nil {
		t.Fatal(err)
	}
	sawLive := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		prog, err := h.Progress(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(prog) > 0 {
			sawLive = true
			for step, n := range prog {
				if n <= 0 {
					t.Errorf("progress reported non-positive count %d at step %d", n, step)
				}
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := h.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !sawLive {
		t.Log("progress poll never caught the traversal in flight (timing-dependent)")
	}
	// After completion, progress reports empty.
	prog, err := h.Progress(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 0 {
		t.Errorf("finished traversal still reports progress: %v", prog)
	}
}

func TestHandleRejectsClientSideMode(t *testing.T) {
	c := newCluster(t, 2, nil)
	if _, err := c.client.SubmitPlanAsync(mustPlan(t, query.V(1)), SubmitOptions{Mode: ModeClientSide}); err == nil {
		t.Fatal("client-side mode should be rejected for async submission")
	}
}

func TestHandleCancelAbortsTraversal(t *testing.T) {
	// A slow disk keeps the traversal alive long enough to cancel it.
	c := newCluster(t, 2, func(cfg *Config) {
		cfg.Disk = simio.NewDisk(20*time.Millisecond, 1)
		cfg.Workers = 1
	})
	loadAuditGraph(t, c)
	h, err := c.client.SubmitPlanAsync(mustPlan(t, query.VLabel("File").E("readBy").E("read")),
		SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Cancel(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(10 * time.Second); err == nil {
		t.Fatal("cancelled traversal should report an error")
	}
	// Cancelling again (now finished) is a no-op.
	if err := h.Cancel(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleWaitTimeout(t *testing.T) {
	c, _ := newChaosCluster(t, 2, func(id int) rpc.ChaosConfig {
		if id == 1 {
			return rpc.ChaosConfig{DropIn: func(int, wire.Message) bool { return true }}
		}
		return rpc.ChaosConfig{}
	}, func(cfg *Config) {
		cfg.TravelTimeout = -1 // watchdog disabled: only the client times out
	})
	loadAuditGraph(t, c)
	h, err := c.client.SubmitPlanAsync(mustPlan(t, query.VLabel("User").E("run")),
		SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(100 * time.Millisecond); err == nil {
		t.Fatal("expected client-side timeout")
	}
}
