package core

import (
	"graphtrek/internal/model"
	"graphtrek/internal/query"
	"graphtrek/internal/wire"
)

// handleVisitReq serves one client-side traversal request (Fig 2a): the
// client asks this server to evaluate one step for the given candidate
// vertices and ship everything — survivors and expansions — straight back.
// There is no caching, no merging and no forwarding: every intermediate
// result crosses the client-server link, which is exactly the design the
// server-side engines exist to avoid.
func (s *Server) handleVisitReq(from int, msg wire.Message, ts *travelState) {
	resp := wire.Message{Kind: wire.KindVisitResp, TravelID: msg.TravelID, ReqID: msg.ReqID}
	if msg.Mode == 1 {
		// Seed scan: return the local step-0 candidate ids.
		s.disk.Access(0, scanBlock)
		s0 := ts.plan.Steps[0]
		var err error
		if s0.SourceLabel != "" {
			err = s.cfg.Store.ScanVerticesByLabel(s0.SourceLabel, func(id model.VertexID) bool {
				resp.Verts = append(resp.Verts, id)
				return true
			})
		} else {
			err = s.cfg.Store.ScanVertices(func(v model.Vertex) bool {
				resp.Verts = append(resp.Verts, v.ID)
				return true
			})
		}
		if err != nil {
			resp.Err = err.Error()
		}
		s.send(from, resp)
		return
	}

	plan := ts.plan
	last := int32(plan.NumSteps() - 1)
	step := plan.Steps[msg.Step]
	for _, e := range msg.Entries {
		s.met.AddReceived(1)
		s.met.AddRealIO(1)
		s.disk.Access(int(msg.Step), uint64(e.Vertex))
		vtx, found, err := s.cfg.Store.GetVertex(e.Vertex)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		if !found || !query.VertexMatches(vtx, step.VertexFilters) {
			continue
		}
		resp.Verts = append(resp.Verts, e.Vertex)
		if msg.Step == last {
			continue
		}
		next := plan.Steps[msg.Step+1]
		err = s.cfg.Store.ScanEdges(e.Vertex, next.EdgeLabel, func(edge model.Edge) bool {
			if next.EdgeFilters.MatchAll(edge.Props) {
				// Anc carries the surviving source so the client can
				// reconstruct the hop graph for rtn() liveness.
				resp.Entries = append(resp.Entries, wire.Entry{Vertex: edge.Dst, Anc: e.Vertex})
			}
			return true
		})
		if err != nil {
			resp.Err = err.Error()
			break
		}
	}
	s.send(from, resp)
}
