package core

import (
	"sync"
	"sync/atomic"

	"graphtrek/internal/model"
	"graphtrek/internal/sched"
	"graphtrek/internal/trace"
	"graphtrek/internal/wire"
)

// visitAcc accumulates one client-mode VisitReq batch's response while its
// entries flow through the shared executor like any other traversal work —
// client-driven traversals compete under the same fair-share policy and
// admission control as the server-side engines. The response ships back to
// the client when the last entry completes.
type visitAcc struct {
	pending atomic.Int32
	from    int
	// reqID is the client request id, doubling as the batch's exec identity
	// in trace spans (client-mode batches are not ledger executions).
	reqID uint64
	sp    *trace.Builder // nil when tracing is off

	mu   sync.Mutex
	resp wire.Message
}

func (a *visitAcc) ItemDone() bool { return a.pending.Add(-1) == 0 }

func (a *visitAcc) span() *trace.Builder { return a.sp }

func (a *visitAcc) execID() uint64 { return a.reqID }

// fail records the first error on the response; the client treats a
// response error as fatal for the whole traversal attempt.
func (a *visitAcc) fail(_ *Server, _ *travelState, msg string) {
	a.sp.Fail(msg)
	a.mu.Lock()
	if a.resp.Err == "" {
		a.resp.Err = msg
	}
	a.mu.Unlock()
}

func (a *visitAcc) finished(s *Server, _ *travelState) {
	a.mu.Lock()
	resp := a.resp
	a.mu.Unlock()
	if a.sp != nil {
		s.trc.RecordSpan(a.sp.Finish())
	}
	s.send(a.from, resp)
}

// handleVisitReq serves one client-side traversal request (Fig 2a): the
// client asks this server to evaluate one step for the given candidate
// vertices and ship everything — survivors and expansions — straight back.
// There is no caching, no merging and no forwarding: every intermediate
// result crosses the client-server link, which is exactly the design the
// server-side engines exist to avoid. The per-vertex work itself runs on
// the shared executor pool; only the lightweight seed scan stays inline.
func (s *Server) handleVisitReq(from int, msg wire.Message, ts *travelState) {
	resp := wire.Message{Kind: wire.KindVisitResp, TravelID: msg.TravelID, ReqID: msg.ReqID}
	if msg.Mode == 1 {
		// Seed selection: return the local step-0 candidate ids, via index
		// pushdown when one covers a step-0 filter (same path as the
		// server-side engines).
		ids, err := s.selectSeeds(ts.plan.Steps[0])
		if err != nil {
			resp.Err = err.Error()
		}
		resp.Verts = append(resp.Verts, ids...)
		s.send(from, resp)
		return
	}

	if len(msg.Entries) == 0 {
		s.send(from, resp)
		return
	}
	// Client-mode batches get spans too (Exec = the request id) for
	// observability; they are not ledger executions, so the coordinator
	// cross-check ignores them. The client chains ParentExec across steps,
	// so even client-driven traversals assemble into a causal DAG.
	acc := &visitAcc{from: from, reqID: msg.ReqID, resp: resp,
		sp: s.beginSpan(ts.id, msg.ReqID, msg.ParentExec, msg.Step, len(msg.Entries))}
	acc.pending.Store(int32(len(msg.Entries)))
	items := make([]sched.Item, len(msg.Entries))
	for i, e := range msg.Entries {
		items[i] = sched.Item{
			Travel: ts.id, Step: msg.Step, Vertex: e.Vertex,
			AncStep: -1, Dest: -1, Exec: acc,
		}
	}
	if err := s.enqueue(items); err != nil {
		resp.Err = s.admissionError(err)
		s.send(from, resp)
	}
}

// processVisitItem evaluates one client-mode entry against the (already
// fetched) vertex, accumulating the surviving vertex and its next-step
// expansions into the batch response.
func (s *Server) processVisitItem(ts *travelState, vtx model.Vertex, found bool, it sched.Item) {
	acc := it.Exec.(*visitAcc)
	plan := ts.plan
	last := int32(plan.NumSteps() - 1)
	if !found || !stepMatches(plan, it.Step, vtx) {
		return
	}
	acc.mu.Lock()
	acc.resp.Verts = append(acc.resp.Verts, it.Vertex)
	acc.mu.Unlock()
	if it.Step == last {
		return
	}
	next := plan.Steps[it.Step+1]
	expand := func(dst model.VertexID) bool {
		// Anc carries the surviving source so the client can reconstruct
		// the hop graph for rtn() liveness.
		acc.mu.Lock()
		acc.resp.Entries = append(acc.resp.Entries, wire.Entry{Vertex: dst, Anc: it.Vertex})
		acc.mu.Unlock()
		return true
	}
	var err error
	if len(next.EdgeFilters) == 0 {
		// Same packed-adjacency fast path as the server-side engines.
		err = s.cfg.Store.ScanEdgeIDs(it.Vertex, next.EdgeLabel, expand)
	} else {
		err = s.cfg.Store.ScanEdges(it.Vertex, next.EdgeLabel, func(edge model.Edge) bool {
			if next.EdgeFilters.MatchAll(edge.Props) {
				return expand(edge.Dst)
			}
			return true
		})
	}
	if err != nil {
		acc.fail(s, ts, err.Error())
	}
}
