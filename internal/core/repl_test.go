package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/route"
	"graphtrek/internal/rpc"
	"graphtrek/internal/simio"
	"graphtrek/internal/wire"
)

// TestRetryableClassification pins the single retry policy: terminal errors
// (malformed plans, explicit cancellation, local misconfiguration) never
// retry; transient cluster state (backpressure, suspected peers, watchdog
// timeouts, epoch fences, moved partitions, transport failures) always does.
func TestStressRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plan compile", errors.New("query: unknown edge label op"), false},
		{"client cancel", errors.New("core: traversal cancelled by client"), false},
		{"unbound client", errors.New("core: client not bound to a transport"), false},
		{"client-side async", errors.New("core: client-side traversal cannot run asynchronously"), false},
		{"replication off", errors.New("core: replication is not enabled on this cluster"), false},
		{"malformed write batch", errors.New("query: gstore: truncated mutation"), false},
		{"admission reject", errors.New("core: server 2 rejected traversal work, retry later: sched: queue full"), true},
		{"suspected peer", errors.New(peerDeadError(1)), true},
		{"client watchdog", errors.New("core: traversal 9 timed out after 5s at the client"), true},
		{"epoch fence", ErrWrongEpoch, true},
		{"partition moved", fmt.Errorf("%v: partition 3 is primaried by server 1", ErrPartitionMoved), true},
		{"orphaned partition", errors.New("core: partition 0 primary server 2 suspected dead; awaiting failover"), true},
		{"quorum timeout", errors.New("core: server 1 write quorum timed out, retry later"), true},
		{"transport closed", rpc.ErrClosed, true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// newReplCluster builds an n-server cluster with rf-way replication. Every
// server and the client gets its own route view seeded from the same boot
// table — exactly like separate processes — so these tests exercise real
// gossip convergence rather than shared-pointer shortcuts. Each server's
// transport is wrapped in a fault injector for crash-stop control; the
// client's endpoint stays fault-free.
func newReplCluster(t testing.TB, n, rf int, tweak func(*Config)) (*cluster, []*rpc.Chaos, []*route.View) {
	t.Helper()
	c := &cluster{
		fabric: rpc.NewFabric(n+1, 0),
		global: gstore.NewMemStore(),
	}
	views := make([]*route.View, n+1)
	for i := range views {
		views[i] = route.NewView(route.Identity(n, rf))
	}
	c.part = views[n]
	chaos := make([]*rpc.Chaos, n)
	for i := 0; i < n; i++ {
		store := gstore.NewMemStore()
		c.stores = append(c.stores, store)
		cfg := Config{ID: i, Store: store, Part: views[i], Route: views[i], ReplicationFactor: rf, TravelTimeout: 15 * time.Second}
		if tweak != nil {
			tweak(&cfg)
		}
		srv := NewServer(cfg)
		ch := rpc.NewChaos(c.fabric.Endpoint(i), rpc.ChaosConfig{})
		chaos[i] = ch
		srv.Bind(ch)
		if err := c.fabric.Endpoint(i).Start(ch.WrapHandler(srv.Handle)); err != nil {
			t.Fatal(err)
		}
		c.servers = append(c.servers, srv)
	}
	c.client = NewClient(views[n])
	c.client.Bind(c.fabric.Endpoint(n))
	if err := c.fabric.Endpoint(n).Start(c.client.Handle); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range c.servers {
			s.Close()
		}
		for _, ch := range chaos {
			ch.Close()
		}
		c.fabric.Close()
	})
	return c, chaos, views
}

var auditVertexIDs = []model.VertexID{1, 2, 10, 11, 12, 20, 21, 22}

// auditMutations is loadAuditGraph's graph expressed as a replicated write
// batch (vertices before their edges).
func auditMutations() []gstore.Mutation {
	var muts []gstore.Mutation
	verts := []model.Vertex{
		{ID: 1, Label: "User", Props: property.Map{"name": property.String("sam")}},
		{ID: 2, Label: "User", Props: property.Map{"name": property.String("john")}},
		{ID: 10, Label: "Execution", Props: property.Map{"model": property.String("A")}},
		{ID: 11, Label: "Execution", Props: property.Map{"model": property.String("B")}},
		{ID: 12, Label: "Execution", Props: property.Map{"model": property.String("A")}},
		{ID: 20, Label: "File", Props: property.Map{"type": property.String("text")}},
		{ID: 21, Label: "File", Props: property.Map{"type": property.String("bin")}},
		{ID: 22, Label: "File", Props: property.Map{"type": property.String("text")}},
	}
	edges := []model.Edge{
		{Src: 1, Dst: 10, Label: "run", Props: property.Map{"ts": property.Int(5)}},
		{Src: 1, Dst: 11, Label: "run", Props: property.Map{"ts": property.Int(50)}},
		{Src: 2, Dst: 12, Label: "run", Props: property.Map{"ts": property.Int(5)}},
		{Src: 10, Dst: 20, Label: "read"},
		{Src: 11, Dst: 21, Label: "read"},
		{Src: 10, Dst: 22, Label: "write"},
	}
	for _, v := range verts {
		muts = append(muts, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: v})
	}
	for _, e := range edges {
		muts = append(muts, gstore.Mutation{Op: gstore.OpPutEdge, Edge: e})
	}
	return muts
}

// writeAuditGraph loads the audit graph through the quorum write path and
// mirrors it into the oracle store.
func writeAuditGraph(t testing.TB, c *cluster) {
	t.Helper()
	muts := auditMutations()
	if err := c.client.Write(muts, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, m := range muts {
		if err := m.Apply(c.global); err != nil {
			t.Fatal(err)
		}
	}
}

func pollUntil(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// findFreeID returns a vertex id >= from, outside the audit graph, that
// hashes into partition p.
func findFreeID(view *route.View, p int, from model.VertexID) model.VertexID {
	for id := from; ; id++ {
		if view.Partition(id) == p {
			return id
		}
	}
}

// TestReplQuorumWriteAllModes loads the graph through quorum writes and
// checks (a) every acked vertex is durable on every replica of its
// partition, and (b) all six traversal engines return the exact reference
// results on the replicated cluster — the ownership filter must keep
// follower copies from double-seeding.
func TestStressReplQuorumWriteAllModes(t *testing.T) {
	c, _, views := newReplCluster(t, 3, 2, nil)
	writeAuditGraph(t, c)
	view := views[len(views)-1]
	for _, id := range auditVertexIDs {
		p := view.Partition(id)
		for _, r := range view.Assignment(p).Replicas() {
			if _, ok, err := c.stores[r].GetVertex(id); err != nil || !ok {
				t.Fatalf("vertex %d missing on replica %d of partition %d (ok=%v err=%v)", id, r, p, ok, err)
			}
		}
	}
	c.runAllModes(t, mustPlan(t, query.VLabel("User").E("run").E("read")))
	c.runAllModes(t, mustPlan(t, query.VLabel("Execution").Rtn().E("read").Va("type", property.EQ, "text")))
}

// TestReplFailoverPromotionAndEpochFencing is the chaos end-to-end for the
// replication tentpole: a primary is crash-stopped mid-traversal, the
// surviving follower is promoted within ~2 heartbeat intervals of the
// suspicion, no acked write is lost, a retried traversal returns results
// byte-identical to the pre-crash oracle, quorum writes resume against the
// new primary — and when the deposed primary comes back, its stale-epoch
// replication is fenced and it adopts the new route table.
func TestStressReplFailoverPromotionAndEpochFencing(t *testing.T) {
	const (
		n            = 3
		hb           = 100 * time.Millisecond
		suspectAfter = 3 * hb
	)
	c, chaos, views := newReplCluster(t, n, 2, func(cfg *Config) {
		cfg.HeartbeatInterval = hb
		cfg.SuspectAfter = suspectAfter
		cfg.Disk = simio.NewDisk(10*time.Millisecond, 2)
		cfg.Workers = 2
	})
	writeAuditGraph(t, c)
	clientView := views[n]
	// Under the identity boot table partition p is primaried by server p
	// with server (p+1)%n as its follower. Anchor the scenario on the
	// partition holding vertex 1 so the victim provably owns query data.
	p0 := clientView.Partition(1)
	victim := p0
	promotee := (p0 + 1) % n
	coord := (p0 + 2) % n

	plan := mustPlan(t, query.VLabel("User").E("run").E("read"))
	want, err := query.Reference(c.global, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: coord, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, want.Results) {
		t.Fatalf("pre-crash results %v, want %v", got, want.Results)
	}

	// Kill the primary mid-traversal (the simulated disk latency keeps the
	// traversal in flight well past the crash).
	h, err := c.client.SubmitPlanAsync(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	chaos[victim].Crash()
	start := time.Now()
	if res, werr := h.Wait(20 * time.Second); werr != nil {
		if !Retryable(werr) {
			t.Fatalf("mid-crash traversal failure must be retryable, got: %v", werr)
		}
	} else if !sameIDs(res, want.Results) {
		t.Errorf("traversal finished across the crash with %v, want %v", res, want.Results)
	}

	// Promotion within ~2 heartbeat intervals of the suspicion firing (the
	// detector scans at hb/2 granularity).
	pollUntil(t, 10*time.Second, "follower promotion", func() bool {
		return c.servers[promotee].Metrics().Promotions >= 1
	})
	if elapsed, budget := time.Since(start), suspectAfter+2*hb+hb/2; elapsed > budget {
		t.Errorf("promotion took %v after the crash, want <= %v", elapsed, budget)
	}

	// The new assignment must gossip to the other server and the client.
	pollUntil(t, 5*time.Second, "route convergence", func() bool {
		return views[coord].Assignment(p0).Primary == int32(promotee) &&
			clientView.Assignment(p0).Primary == int32(promotee)
	})
	if a := clientView.Assignment(p0); a.Epoch < 2 {
		t.Errorf("partition %d epoch = %d after failover, want >= 2", p0, a.Epoch)
	}

	// Zero lost acked writes: everything the quorum acknowledged for the
	// victim's partition is on the promoted primary.
	for _, id := range auditVertexIDs {
		if clientView.Partition(id) != p0 {
			continue
		}
		if _, ok, err := c.stores[promotee].GetVertex(id); err != nil || !ok {
			t.Errorf("acked vertex %d lost in failover (ok=%v err=%v)", id, ok, err)
		}
	}

	// Differential oracle: a retried traversal re-routes to the promoted
	// primary and returns exactly the pre-crash results. Right after the
	// promotion an attempt may still race the last view merge, so poll.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err = c.client.SubmitPlan(plan, SubmitOptions{
			Mode: ModeGraphTrek, Coordinator: coord, Timeout: 5 * time.Second, Retries: 2,
		})
		if err == nil {
			break
		}
		if !Retryable(err) {
			t.Fatalf("post-failover traversal failed terminally: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-failover traversal never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sameIDs(got, want.Results) {
		t.Errorf("post-failover results %v, want %v", got, want.Results)
	}

	// Quorum writes resume against the promoted primary.
	newID := findFreeID(clientView, p0, 1000)
	err = c.client.Write([]gstore.Mutation{
		{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: newID, Label: "Marker"}},
	}, WriteOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	if _, ok, _ := c.stores[promotee].GetVertex(newID); !ok {
		t.Errorf("post-failover write %d not on promoted primary %d", newID, promotee)
	}

	// Epoch fencing: the revived primary missed the gossip while dead and
	// still believes the old assignment. Its attempt to replicate a write
	// under the old epoch must be rejected by the follower, which hands back
	// the current table — demoting the straggler without any central
	// authority.
	before := c.servers[promotee].Metrics().EpochRejects
	chaos[victim].Revive()
	if prim := views[victim].Assignment(p0).Primary; prim != int32(victim) {
		t.Fatalf("victim's view unexpectedly updated while crashed: partition %d primary %d", p0, prim)
	}
	staleID := findFreeID(clientView, p0, newID+1)
	blob := gstore.EncodeBatch([]gstore.Mutation{
		{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: staleID, Label: "Stale"}},
	})
	c.servers[victim].Handle(n, wire.Message{Kind: wire.KindWriteReq, ReqID: 1 << 40, Part: int32(p0), Blob: blob})
	pollUntil(t, 5*time.Second, "epoch fence on the new primary", func() bool {
		return c.servers[promotee].Metrics().EpochRejects > before
	})
	pollUntil(t, 5*time.Second, "stale primary demotion", func() bool {
		return views[victim].Assignment(p0).Primary == int32(promotee)
	})
	if _, ok, _ := c.stores[promotee].GetVertex(staleID); ok {
		t.Errorf("stale-epoch write %d leaked onto the promoted primary", staleID)
	}
}

// TestReplShardHandoff moves a partition replica online: a third server
// joins a partition it never held, receives the snapshot plus the live
// tail, is published as a follower under a fresh epoch, and from then on
// participates in the partition's quorum.
func TestStressReplShardHandoff(t *testing.T) {
	const n = 3
	c, _, views := newReplCluster(t, n, 2, nil)
	writeAuditGraph(t, c)
	clientView := views[n]
	p := clientView.Partition(1) // replicas {p, (p+1)%n} at boot
	primary := p
	joiner := (p + 2) % n

	if err := c.servers[joiner].JoinPartition(p); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, 5*time.Second, "joiner published as follower", func() bool {
		return views[joiner].Assignment(p).HasReplica(int32(joiner)) &&
			clientView.Assignment(p).HasReplica(int32(joiner))
	})
	a := clientView.Assignment(p)
	if a.Epoch != 2 {
		t.Errorf("partition %d epoch = %d after handoff, want 2", p, a.Epoch)
	}
	if a.Primary != int32(primary) {
		t.Errorf("partition %d primary = %d after handoff, want %d (handoff must not move the primary)", p, a.Primary, primary)
	}
	if got := c.servers[primary].Metrics().HandoffBytes; got <= 0 {
		t.Errorf("HandoffBytes = %d on the streaming primary, want > 0", got)
	}

	// The joiner holds the partition's data: vertices and vertex 1's edges.
	for _, id := range auditVertexIDs {
		if clientView.Partition(id) != p {
			continue
		}
		if _, ok, err := c.stores[joiner].GetVertex(id); err != nil || !ok {
			t.Errorf("vertex %d missing on joiner %d after handoff (ok=%v err=%v)", id, joiner, ok, err)
		}
	}
	edges := 0
	if err := c.stores[joiner].ScanAllEdges(1, func(model.Edge) bool { edges++; return true }); err != nil {
		t.Fatal(err)
	}
	if edges != 2 {
		t.Errorf("joiner has %d out-edges for vertex 1, want 2", edges)
	}

	// A post-join quorum write reaches the new follower (the 2-of-3 quorum
	// may ack before the joiner applies, so poll).
	newID := findFreeID(clientView, p, 1000)
	err := c.client.Write([]gstore.Mutation{
		{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: newID, Label: "Marker"}},
	}, WriteOptions{})
	if err != nil {
		t.Fatalf("post-join write: %v", err)
	}
	pollUntil(t, 5*time.Second, "post-join write on the joiner", func() bool {
		_, ok, _ := c.stores[joiner].GetVertex(newID)
		return ok
	})
}

// replAppliedSeq reads a server's applied replication sequence for one
// partition (test-only peek behind replMu).
func replAppliedSeq(s *Server, p int) uint64 {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if st, ok := s.repl[p]; ok {
		return st.appliedSeq
	}
	return 0
}

// TestReplConcurrentWriteOrdering drives one partition's primary with many
// concurrent same-vertex writes, bypassing the (serializing) in-process
// fabric by invoking Handle directly — exactly what the TCP transport does
// from different peer connections. The primary must apply batches in the
// same order it assigns their sequence numbers, or followers (which replay
// strictly in sequence order) end up with a different final value for the
// contended vertex than the primary.
func TestStressReplConcurrentWriteOrdering(t *testing.T) {
	const (
		n       = 2
		writers = 32
	)
	c, _, views := newReplCluster(t, n, 2, nil)
	const p = 0 // Identity(2,2): primary 0, follower 1
	vid := findFreeID(views[n], p, 1)

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob := gstore.EncodeBatch([]gstore.Mutation{{
				Op: gstore.OpPutVertex,
				Vertex: model.Vertex{ID: vid, Label: "Counter",
					Props: property.Map{"v": property.Int(int64(i))}},
			}})
			c.servers[p].Handle(n, wire.Message{
				Kind: wire.KindWriteReq, ReqID: uint64(1<<40) + uint64(i),
				Part: p, Blob: blob,
			})
		}(i)
	}
	wg.Wait()

	pollUntil(t, 10*time.Second, "follower catch-up", func() bool {
		return replAppliedSeq(c.servers[1], p) >= writers
	})
	pv, ok, err := c.stores[0].GetVertex(vid)
	if err != nil || !ok {
		t.Fatalf("vertex %d missing on primary (ok=%v err=%v)", vid, ok, err)
	}
	fv, ok, err := c.stores[1].GetVertex(vid)
	if err != nil || !ok {
		t.Fatalf("vertex %d missing on follower (ok=%v err=%v)", vid, ok, err)
	}
	if pv.Props["v"] != fv.Props["v"] {
		t.Errorf("primary/follower diverged on contended vertex %d: primary v=%v, follower v=%v",
			vid, pv.Props["v"], fv.Props["v"])
	}
}

// TestReplEpochScopedSequences reproduces the lost-acked-write hazard of
// cross-epoch sequence comparison: a follower holding old-epoch records past
// the new primary's base must resync through a snapshot instead of acking
// new-epoch sequences it never stored. The scenario: server 2 applies a
// divergent epoch-1 append (seq 2) the eventual new primary never saw; an
// epoch-2 table promotes server 1; a client write then reuses seq 2 under
// epoch 2. Without epoch scoping server 2 treats it as a duplicate, acks
// without storing, and the quorum-acked vertex silently never lands on it.
func TestStressReplEpochScopedSequences(t *testing.T) {
	const n = 3
	c, _, views := newReplCluster(t, n, 3, nil)
	clientView := views[n]
	p := clientView.Partition(1) // Identity(3,3): primary p, followers p+1, p+2
	srv1 := (p + 1) % n
	srv2 := (p + 2) % n

	// Seed one quorum write so every replica sits at sequence 1.
	seedID := findFreeID(clientView, p, 1)
	if err := c.client.Write([]gstore.Mutation{
		{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: seedID, Label: "Seed"}},
	}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, 5*time.Second, "seed write on all replicas", func() bool {
		return replAppliedSeq(c.servers[srv1], p) == 1 && replAppliedSeq(c.servers[srv2], p) == 1
	})

	// Divergent old-epoch history: server 2 applies an epoch-1 append at
	// sequence 2 that server 1 (the eventual new primary) never received.
	divID := findFreeID(clientView, p, seedID+1)
	divBlob := gstore.EncodeBatch([]gstore.Mutation{
		{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: divID, Label: "Divergent"}},
	})
	c.servers[srv2].Handle(p, wire.Message{
		Kind: wire.KindReplAppend, Part: int32(p), Epoch: 1, Seq: 2, Base: 0, Blob: divBlob,
	})
	pollUntil(t, 5*time.Second, "divergent append applied", func() bool {
		return replAppliedSeq(c.servers[srv2], p) == 2
	})

	// A lagging-follower promotion: epoch 2 names server 1 primary with
	// server 2 as the only follower, installed on both survivors and the
	// client (the deposed server p is left out, as after its crash).
	tbl := route.Identity(n, n)
	tbl.Parts[p] = route.Assignment{Epoch: 2, Primary: int32(srv1), Followers: []int32{int32(srv2)}}
	blob := tbl.Encode()
	c.servers[srv1].Handle(n, wire.Message{Kind: wire.KindRouteUpdate, Blob: blob})
	c.servers[srv2].Handle(n, wire.Message{Kind: wire.KindRouteUpdate, Blob: blob})
	clientView.Update(tbl)

	// The new primary assigns sequence 2 under epoch 2 — the sequence
	// server 2 already burned on divergent epoch-1 history.
	newID := findFreeID(clientView, p, divID+1)
	if err := c.client.Write([]gstore.Mutation{
		{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: newID, Label: "Marker"}},
	}, WriteOptions{Timeout: 10 * time.Second}); err != nil {
		t.Fatalf("post-promotion write: %v", err)
	}
	// The acked write must be durable on the quorum-counted follower. The
	// ack that satisfied the quorum is sent after the store holds the data
	// on both the resync (snapDone) and normal paths, so no poll is needed.
	if _, ok, _ := c.stores[srv2].GetVertex(newID); !ok {
		t.Fatalf("acked write %d missing on follower %d: old-epoch sequence treated as duplicate", newID, srv2)
	}
	if _, ok, _ := c.stores[srv1].GetVertex(newID); !ok {
		t.Errorf("acked write %d missing on new primary %d", newID, srv1)
	}
	// Divergence was repaired through the snapshot path, not by luck.
	if got := c.servers[srv1].Metrics().HandoffBytes; got <= 0 {
		t.Errorf("HandoffBytes = %d on the new primary, want > 0 (divergent follower must resync)", got)
	}
}

// TestReplRejoinAfterFalseSuspicion checks that a follower evicted from a
// replica set during a transient outage is automatically invited back once
// its suspicion clears: the replica set returns to the configured factor
// under a fresh epoch and new quorum writes land on the rejoined follower.
func TestStressReplRejoinAfterFalseSuspicion(t *testing.T) {
	const (
		n            = 3
		hb           = 40 * time.Millisecond
		suspectAfter = 3 * hb
	)
	c, chaos, views := newReplCluster(t, n, 2, func(cfg *Config) {
		cfg.HeartbeatInterval = hb
		cfg.SuspectAfter = suspectAfter
	})
	writeAuditGraph(t, c)
	clientView := views[n]
	p := clientView.Partition(1) // primary p, follower (p+1)%n at boot
	prim := p
	fol := (p + 1) % n

	// Crash the follower until the primary evicts it under a fresh epoch.
	chaos[fol].Crash()
	pollUntil(t, 10*time.Second, "replica-set shrink", func() bool {
		a := views[prim].Assignment(p)
		return a.Epoch >= 2 && len(a.Followers) == 0
	})

	// Revive: heartbeats clear the suspicion, and the primary must nudge the
	// ex-replica back in — snapshot catch-up, then a fresh epoch restoring
	// the replication factor.
	chaos[fol].Revive()
	pollUntil(t, 10*time.Second, "automatic rejoin", func() bool {
		a := views[prim].Assignment(p)
		return a.HasReplica(int32(fol)) && a.Epoch >= 3
	})
	if got := c.servers[prim].Metrics().RejoinNudges; got < 1 {
		t.Errorf("RejoinNudges = %d on the primary, want >= 1", got)
	}

	// Durability is back: a quorum write requires — and lands on — the
	// rejoined follower.
	newID := findFreeID(clientView, p, 1000)
	pollUntil(t, 5*time.Second, "client route convergence", func() bool {
		return clientView.Assignment(p).HasReplica(int32(fol))
	})
	if err := c.client.Write([]gstore.Mutation{
		{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: newID, Label: "Marker"}},
	}, WriteOptions{Timeout: 10 * time.Second}); err != nil {
		t.Fatalf("post-rejoin write: %v", err)
	}
	pollUntil(t, 5*time.Second, "post-rejoin write on the follower", func() bool {
		_, ok, _ := c.stores[fol].GetVertex(newID)
		return ok
	})
}
