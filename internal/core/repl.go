package core

import (
	"fmt"
	"time"

	"graphtrek/internal/events"
	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/route"
	"graphtrek/internal/wire"
)

// This file implements per-partition replication, epoch-based failover and
// online shard handoff. It is active only when Config.Route is set (the
// cluster was built with ReplicationFactor >= 2); without a route view the
// engine behaves exactly as before.
//
// Protocol sketch (DESIGN.md §12 has the full invariants):
//
//   - Writes go to a partition's primary (KindWriteReq). The primary
//     applies locally, ships the mutation batch to every follower
//     (KindReplAppend, stamped with the partition epoch and a dense
//     per-partition sequence number) and acknowledges the client once a
//     quorum — majority of the replica set, primary included — holds it.
//   - Followers apply appends in sequence order; a gap triggers a nak and
//     the primary re-ships from a bounded ring, falling back to a full
//     snapshot stream when the ring no longer covers the gap.
//   - Every append and ack is epoch-checked against the receiver's route
//     view: a message from a deposed primary carries a stale epoch and is
//     rejected (EpochRejects), with the rejecter's route table attached so
//     the straggler catches up.
//   - When the failure detector condemns a primary, the first live
//     follower drives promotion: under RF 2 it promotes itself outright;
//     with more followers it first queries their applied sequences for one
//     heartbeat interval and nominates the most caught-up. The new
//     assignment (epoch + 1, dead server excluded) is installed in the
//     local view and gossiped to every server and client (KindRouteUpdate,
//     merged per partition, higher epoch wins).
//   - A joining server streams a snapshot (KindSnapshot chunks) while the
//     primary forwards the live append tail; mutations are idempotent, so
//     the overlap is harmless. After the final chunk the joiner acks, and
//     the primary publishes a new epoch with the joiner as follower — at
//     which point it is promotable like any other follower.

const (
	ackModeAck      = 0 // follower applied through Seq
	ackModeNak      = 1 // follower is missing records; Seq = its applied seq
	ackModeEpochRej = 2 // receiver fenced the sender's stale epoch
	ackModeSeqQuery = 3 // promotion candidate asks for applied seq
	ackModeSeqInfo  = 4 // answer to a seq query; Seq = applied seq
)

const (
	snapReq   = 0 // joiner/lagging follower asks the primary for a stream
	snapChunk = 1 // one mutation batch
	snapFinal = 2 // last chunk; Seq = append sequence the snapshot covers
	snapDone  = 3 // receiver confirms the stream was applied
	snapNudge = 4 // primary invites a recovered ex-replica to rejoin; Blob = route table
)

// replRingCap bounds the per-partition ring of recent appends kept for
// re-shipping after a nak; gaps older than the ring fall back to a
// snapshot stream.
const replRingCap = 1024

// partRepl is one partition's replication state on one server. All fields
// are guarded by Server.replMu.
type partRepl struct {
	primary bool

	// epoch is the fencing epoch this node's applied history was counted
	// under. Sequence numbers are only comparable within one epoch: a
	// follower observing a higher epoch on an append must reconcile its
	// counter against the new primary's base before trusting comparisons.
	epoch uint64

	// Primary-side state. The ring is dual-role: primaries push every
	// sequenced append for gap repair, and followers push every applied
	// append so that, when promoted, they can serve change-feed backlog
	// (and repair gaps) from the history they actually hold.
	nextSeq   uint64           // sequence the next append will carry
	baseSeq   uint64           // appliedSeq when the current epoch began
	ringStart uint64           // sequence of ring[0]
	ring      [][]byte         // recent append payloads for gap repair + feed backlog
	ringTimes []int64          // per-ring-record apply stamps (unix nanos): feed lag + status age
	ackedSeq  map[int32]uint64 // follower -> highest acked sequence
	pending   map[uint64]*pendingWrite
	shipped   int64          // bytes shipped to followers (lag numerator)
	acked     int64          // bytes acknowledged by followers
	joiners   map[int32]bool // servers mid-handoff: forward live appends

	// Change-feed state (primary side). commitSeq is the partition's commit
	// high-watermark: the highest sequence a quorum of the replica set
	// (primary included) is known to hold. Feed subscribers only ever see
	// records at or below it — an uncommitted append can vanish in a
	// failover and its sequence be reassigned to a different mutation, which
	// a committed-only feed makes unobservable. feedSubs maps a subscriber
	// node to the highest sequence already delivered to it.
	commitSeq uint64
	feedSubs  map[int32]uint64

	// Follower-side state.
	appliedSeq uint64
	joining    bool              // snapshot in flight; buffer the live tail
	tail       map[uint64][]byte // buffered appends awaiting the snapshot
}

// pendingWrite is a client write awaiting its quorum.
type pendingWrite struct {
	from  int
	reqID uint64
	seq   uint64
	need  int       // follower acks still required
	start time.Time // when the quorum round began (latency histogram)
	timer *time.Timer
	// blob rides on the success response — the allocated id list of an
	// intern request. Failure responses never carry it: the allocation is
	// only observable once the quorum holds it.
	blob []byte
}

// replState lazily creates partition p's state.
func (s *Server) replState(p int) *partRepl {
	st, ok := s.repl[p]
	if !ok {
		st = &partRepl{
			ackedSeq: make(map[int32]uint64),
			pending:  make(map[uint64]*pendingWrite),
			joiners:  make(map[int32]bool),
			tail:     make(map[uint64][]byte),
			feedSubs: make(map[int32]uint64),
		}
		s.repl[p] = st
	}
	return st
}

// initRepl seeds the replica-role flags from the boot route table. Boot
// roles are not promotions.
func (s *Server) initRepl() {
	if s.cfg.Route == nil {
		return
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	for p := 0; p < s.cfg.Route.Parts(); p++ {
		a := s.cfg.Route.Assignment(p)
		if a.HasReplica(int32(s.cfg.ID)) {
			st := s.replState(p)
			st.primary = a.Primary == int32(s.cfg.ID)
			st.epoch = a.Epoch
		}
	}
}

// adoptPrimaryLocked aligns partition state with an assignment that names
// this server primary. On the follower→primary transition all primary-side
// state is reset — the ring, follower watermarks and byte counters
// described an older primaryship (or nothing), and sequences are not
// comparable across epochs. Whenever the epoch advances, the epoch base is
// pinned to the current applied sequence so appends can advertise it and
// followers can adjudicate divergence. Caller holds replMu.
func (s *Server) adoptPrimaryLocked(p int, st *partRepl, a route.Assignment) {
	promoted := false
	if !st.primary {
		promoted = true
		st.primary = true
		st.nextSeq = st.appliedSeq + 1
		st.ackedSeq = make(map[int32]uint64)
		st.shipped, st.acked = 0, 0
		// The ring survives the transition: as a follower this node pushed
		// every applied append, so the ring holds exactly the lineage history
		// feed subscribers resume from (and gap repair can re-ship).
		//
		// Everything the promoted node holds is adopted as committed — the
		// mirror of Raft's rule that a new leader commits its log by
		// replicating under its own term. An append the old primary never
		// got quorum for can thereby become committed here; what cannot
		// happen is a committed-then-lost sequence, because promotion prefers
		// the most caught-up live follower.
		st.commitSeq = st.appliedSeq
		s.met.AddPromotions(1)
		s.journal.Record(events.Event{Type: events.Promotion, Part: p, Peer: -1, Epoch: a.Epoch,
			Detail: fmt.Sprintf("follower -> primary at applied seq %d", st.appliedSeq)})
	}
	if st.epoch < a.Epoch {
		if !promoted {
			// A promotion entry already carries the new epoch; only
			// role-preserving advances get their own entry.
			s.journal.Record(events.Event{Type: events.EpochBump, Part: p, Peer: -1, Epoch: a.Epoch,
				Detail: fmt.Sprintf("epoch %d -> %d", st.epoch, a.Epoch)})
		}
		st.epoch = a.Epoch
		st.baseSeq = st.appliedSeq
	}
}

// misroutedEntries scans a dispatch batch for a vertex whose partition
// this server no longer primaries — evidence the sender routed with a
// stale table — returning the offending partition.
func (s *Server) misroutedEntries(entries []wire.Entry) (int, bool) {
	self := int32(s.cfg.ID)
	for _, e := range entries {
		p := s.cfg.Route.Partition(e.Vertex)
		if s.cfg.Route.Assignment(p).Primary != self {
			return p, true
		}
	}
	return 0, false
}

// updateLagLocked publishes the shipped-minus-acked byte lag across all
// partitions. Caller holds replMu.
func (s *Server) updateLagLocked() {
	var lag int64
	for _, st := range s.repl {
		if st.primary {
			lag += st.shipped - st.acked
		}
	}
	s.met.SetReplLagBytes(lag)
}

// handleWriteReq serves a client's mutation batch for one partition:
// apply locally, ship to followers, ack at quorum.
func (s *Server) handleWriteReq(from int, msg wire.Message) {
	resp := wire.Message{Kind: wire.KindWriteResp, ReqID: msg.ReqID, Part: msg.Part}
	switch msg.Mode {
	case wire.WriteModeResolve:
		// Read-only name→id lookup. Served even without replication (any
		// node holding the partition can answer), and by followers — the
		// dictionary is replicated state.
		resp.Blob, resp.Err = s.resolveNames(msg.Blob)
		s.send(from, resp)
		return
	case wire.WriteModeNames:
		// Read-only id→name materialization (the client boundary).
		resp.Blob, resp.Err = s.materializeNames(msg.Blob)
		s.send(from, resp)
		return
	}
	if s.cfg.Route == nil {
		resp.Err = "core: replication is not enabled on this cluster"
		s.send(from, resp)
		return
	}
	p := int(msg.Part)
	if p < 0 || p >= s.cfg.Route.Parts() {
		resp.Err = fmt.Sprintf("core: no such partition %d", p)
		s.send(from, resp)
		return
	}
	a := s.cfg.Route.Assignment(p)
	if a.Primary != int32(s.cfg.ID) {
		// Stale client route: attach our table so the retry goes to the
		// right server.
		resp.Err = fmt.Sprintf("%v: partition %d is primaried by server %d", ErrPartitionMoved, p, a.Primary)
		resp.Blob = s.cfg.Route.Table().Encode()
		s.send(from, resp)
		return
	}
	// Decode (and for intern requests, parse names) before the lock —
	// malformed payloads are terminal and never touch replication state.
	var muts []gstore.Mutation
	var names []string
	var err error
	switch msg.Mode {
	case wire.WriteModeIntern:
		names, err = wire.DecodeNames(msg.Blob)
	default:
		muts, err = gstore.DecodeBatch(msg.Blob)
	}
	if err != nil {
		resp.Err = "query: " + err.Error() // malformed batch: terminal
		s.send(from, resp)
		return
	}

	// Apply and sequence inside one critical section. The transport invokes
	// handlers concurrently (the TCP transport requires it), so applying
	// before taking the lock would let two same-key writes reach the
	// primary's store in one order but carry sequence numbers in the other —
	// and followers, which replay strictly in sequence order, would
	// permanently diverge from the primary on that key. Intern allocation
	// sits under the same lock for the same reason: the id a name gets must
	// be sequenced before any later allocation observes the counter.
	start := time.Now()
	s.replMu.Lock()
	st := s.replState(p)
	s.adoptPrimaryLocked(p, st, a)
	blob := msg.Blob
	if msg.Mode == wire.WriteModeIntern {
		// Allocate (or find) the interned ids, then replicate the result as
		// an ordinary OpIntern batch: followers and joiners replay the same
		// mutations a snapshot would carry, so every replica reconstructs
		// the identical name↔id mapping.
		ids := make([]model.VertexID, len(names))
		muts = make([]gstore.Mutation, len(names))
		in, ok := gstore.InternerOf(s.cfg.Store)
		if !ok {
			s.replMu.Unlock()
			resp.Err = fmt.Sprintf("core: server %d store does not support interning", s.cfg.ID)
			s.send(from, resp)
			return
		}
		for i, name := range names {
			id, err := in.Intern(name, p)
			if err != nil {
				s.replMu.Unlock()
				resp.Err = fmt.Sprintf("core: intern on server %d: %v", s.cfg.ID, err)
				s.send(from, resp)
				return
			}
			ids[i] = id
			muts[i] = gstore.Mutation{Op: gstore.OpIntern, ID: id, Name: name}
		}
		blob = gstore.EncodeBatch(muts)
		resp.Blob = wire.EncodeIDs(ids)
	} else {
		for _, m := range muts {
			if err := m.Apply(s.cfg.Store); err != nil {
				s.replMu.Unlock()
				resp.Err = fmt.Sprintf("core: apply write on server %d: %v", s.cfg.ID, err)
				s.send(from, resp)
				return
			}
		}
	}
	seq := st.nextSeq
	if seq == 0 {
		seq = st.appliedSeq + 1
	}
	st.nextSeq = seq + 1
	st.appliedSeq = seq
	st.pushRingLocked(seq, blob)
	targets := s.shipTargetsLocked(st, a)
	need := a.Quorum() - 1 // the local apply above is the primary's vote
	if need > len(targets) {
		need = len(targets) // replica set shrank below quorum; best effort
	}
	if need > 0 {
		pw := &pendingWrite{from: from, reqID: msg.ReqID, seq: seq, need: need, start: start, blob: resp.Blob}
		st.pending[seq] = pw
		timeout := s.cfg.WriteTimeout
		pw.timer = time.AfterFunc(timeout, func() { s.expireWrite(p, seq) })
	}
	app := wire.Message{
		Kind: wire.KindReplAppend, Part: msg.Part,
		// st.epoch (not the earlier assignment read) so Epoch and Base are
		// the consistent pair followers adjudicate divergence with.
		Epoch: st.epoch, Seq: seq, Base: st.baseSeq, Blob: blob,
	}
	st.shipped += int64(len(blob) * len(targets))
	var feed []feedShip
	if need <= 0 {
		// The primary alone is a quorum: the write commits at apply time and
		// feeds out immediately.
		feed = s.advanceCommitLocked(p, st, a)
	}
	s.updateLagLocked()
	s.replMu.Unlock()

	for _, f := range targets {
		s.send(int(f), app)
	}
	if need <= 0 {
		// The primary alone was the quorum: the round completed at apply time.
		s.met.ObserveQuorumWrite(time.Since(start))
		s.send(from, resp)
	}
	s.shipFeed(p, feed)
}

// resolveNames serves a WriteModeResolve request: each name in the encoded
// list resolves to its interned id, or 0 when unknown.
func (s *Server) resolveNames(blob []byte) ([]byte, string) {
	names, err := wire.DecodeNames(blob)
	if err != nil {
		return nil, "query: " + err.Error()
	}
	in, ok := gstore.InternerOf(s.cfg.Store)
	if !ok {
		return nil, fmt.Sprintf("core: server %d store does not support interning", s.cfg.ID)
	}
	ids := make([]model.VertexID, len(names))
	for i, name := range names {
		id, _, err := in.LookupID(name)
		if err != nil {
			return nil, fmt.Sprintf("core: resolve on server %d: %v", s.cfg.ID, err)
		}
		ids[i] = id
	}
	return wire.EncodeIDs(ids), ""
}

// materializeNames serves a WriteModeNames request: each id in the encoded
// list materializes to its interned name, or "" when unknown.
func (s *Server) materializeNames(blob []byte) ([]byte, string) {
	ids, err := wire.DecodeIDs(blob)
	if err != nil {
		return nil, "query: " + err.Error()
	}
	in, ok := gstore.InternerOf(s.cfg.Store)
	if !ok {
		return nil, fmt.Sprintf("core: server %d store does not support interning", s.cfg.ID)
	}
	names := make([]string, len(ids))
	for i, id := range ids {
		name, _, err := in.LookupName(id)
		if err != nil {
			return nil, fmt.Sprintf("core: materialize on server %d: %v", s.cfg.ID, err)
		}
		names[i] = name
	}
	return wire.EncodeNames(names), ""
}

// shipTargetsLocked lists the servers a primary ships appends to: the
// assignment's followers plus any joiners mid-handoff. Caller holds replMu.
func (s *Server) shipTargetsLocked(st *partRepl, a route.Assignment) []int32 {
	targets := append([]int32(nil), a.Followers...)
	for j := range st.joiners {
		if !a.HasReplica(j) {
			targets = append(targets, j)
		}
	}
	return targets
}

// pushRingLocked appends one shipped payload to the gap-repair ring.
// Caller holds replMu.
func (st *partRepl) pushRingLocked(seq uint64, blob []byte) {
	if len(st.ring) == 0 {
		st.ringStart = seq
	}
	st.ring = append(st.ring, blob)
	// The parallel apply stamp feeds the change-feed delivery-lag histogram
	// and the status document's commit-age gauge.
	st.ringTimes = append(st.ringTimes, time.Now().UnixNano())
	if len(st.ring) > replRingCap {
		drop := len(st.ring) - replRingCap
		st.ring = append([][]byte(nil), st.ring[drop:]...)
		st.ringTimes = append([]int64(nil), st.ringTimes[drop:]...)
		st.ringStart += uint64(drop)
	}
}

// expireWrite fails a write whose quorum never assembled — a retryable
// condition (the client re-routes after failover finishes).
func (s *Server) expireWrite(p int, seq uint64) {
	s.replMu.Lock()
	st, ok := s.repl[p]
	if !ok {
		s.replMu.Unlock()
		return
	}
	pw, ok := st.pending[seq]
	if !ok {
		s.replMu.Unlock()
		return
	}
	delete(st.pending, seq)
	s.replMu.Unlock()
	s.send(pw.from, wire.Message{
		Kind: wire.KindWriteResp, ReqID: pw.reqID, Part: int32(p),
		Err: fmt.Sprintf("core: server %d write quorum timed out, retry later", s.cfg.ID),
	})
}

// failPendingLocked fails every pending write on a partition (demotion or
// epoch fence). Caller holds replMu; sends happen after release via the
// returned closure pattern — callers invoke the result outside the lock.
func (st *partRepl) failPendingLocked(errMsg string, p int) []wire.Message {
	var out []wire.Message
	for seq, pw := range st.pending {
		if pw.timer != nil {
			pw.timer.Stop()
		}
		out = append(out, wire.Message{Kind: wire.KindWriteResp, ReqID: pw.reqID, Part: int32(p), Err: errMsg, Peer: int32(pw.from)})
		delete(st.pending, seq)
	}
	return out
}

// handleReplAppend applies (or rejects) one shipped mutation batch on a
// follower.
func (s *Server) handleReplAppend(from int, msg wire.Message) {
	if s.cfg.Route == nil {
		return
	}
	p := int(msg.Part)
	if p < 0 || p >= s.cfg.Route.Parts() {
		return
	}
	a := s.cfg.Route.Assignment(p)
	if msg.Epoch < a.Epoch {
		// Fenced: the sender is a deposed primary. Attach our table so it
		// learns the new assignment.
		s.met.AddEpochRejects(1)
		s.send(from, wire.Message{
			Kind: wire.KindReplAck, Part: msg.Part, Epoch: a.Epoch, Seq: msg.Seq,
			Mode: ackModeEpochRej, Blob: s.cfg.Route.Table().Encode(),
		})
		return
	}

	s.replMu.Lock()
	st := s.replState(p)
	if msg.Epoch > st.epoch {
		// First append of a newer epoch: our sequence counter advanced under
		// an older epoch, and cross-epoch sequences are only comparable up
		// to the new primary's base (its applied sequence when its epoch
		// began, advertised in Base). History past the base is old-epoch
		// appends the new primary never saw — treating the new primary's
		// records at those sequences as duplicates would ack, and count
		// toward quorum, writes this replica does not hold. Discard the
		// counter and resync through the snapshot path instead.
		if st.appliedSeq > msg.Base && !st.joining {
			st.epoch = msg.Epoch
			st.appliedSeq = 0
			// The retained ring described the divergent history; drop it so
			// post-resync pushes restart a contiguous run.
			st.ring, st.ringTimes, st.ringStart = nil, nil, 0
			st.joining = true
			st.tail = map[uint64][]byte{msg.Seq: msg.Blob}
			s.replMu.Unlock()
			s.send(from, wire.Message{Kind: wire.KindSnapshot, Mode: snapReq, Part: msg.Part})
			return
		}
		st.epoch = msg.Epoch
	}
	// Acks carry the epoch the applied watermark belongs to, so a primary
	// never credits an old-epoch watermark against new-epoch sequences.
	ack := wire.Message{Kind: wire.KindReplAck, Part: msg.Part, Epoch: st.epoch, Seq: msg.Seq}
	if st.joining {
		// Snapshot in flight: buffer the live tail; it is replayed (or
		// skipped as already-covered) once the final chunk lands.
		st.tail[msg.Seq] = msg.Blob
		s.replMu.Unlock()
		return
	}
	switch {
	case msg.Seq <= st.appliedSeq:
		// Duplicate delivery; mutations are idempotent but skipping is
		// cheaper. Ack so the primary's watermark advances.
		ack.Seq = st.appliedSeq
		s.replMu.Unlock()
	case msg.Seq == st.appliedSeq+1:
		epoch := st.epoch
		s.replMu.Unlock()
		if err := s.applyBatch(msg.Blob); err != nil {
			return // local apply failure: no ack, primary times out / re-ships
		}
		s.replMu.Lock()
		if st.epoch != epoch || st.joining {
			// A newer epoch reset this replica while the batch was applying;
			// the in-flight resync supersedes this record, so no ack.
			s.replMu.Unlock()
			return
		}
		st.appliedSeq = msg.Seq
		// Retain the applied record: if this follower is later promoted, the
		// ring is what lets resuming feed subscribers (and lagging peers)
		// read back the history it holds.
		st.pushRingLocked(msg.Seq, msg.Blob)
		// A buffered out-of-order successor may now be applicable.
		for {
			blob, ok := st.tail[st.appliedSeq+1]
			if !ok {
				break
			}
			delete(st.tail, st.appliedSeq+1)
			s.replMu.Unlock()
			if err := s.applyBatch(blob); err != nil {
				return
			}
			s.replMu.Lock()
			if st.epoch != epoch || st.joining {
				s.replMu.Unlock()
				return
			}
			st.appliedSeq++
			st.pushRingLocked(st.appliedSeq, blob)
		}
		ack.Seq = st.appliedSeq
		s.replMu.Unlock()
	default:
		// Gap: hold the record, report what we have; the primary re-ships.
		st.tail[msg.Seq] = msg.Blob
		ack.Mode = ackModeNak
		ack.Seq = st.appliedSeq
		s.replMu.Unlock()
	}
	s.send(from, ack)
}

// applyBatch decodes and applies one shipped mutation batch to the local
// store.
func (s *Server) applyBatch(blob []byte) error {
	muts, err := gstore.DecodeBatch(blob)
	if err != nil {
		return err
	}
	for _, m := range muts {
		if err := m.Apply(s.cfg.Store); err != nil {
			return err
		}
	}
	return nil
}

// handleReplAck processes a follower's response on the primary (ack, nak,
// fence) and promotion-time sequence queries on anyone.
func (s *Server) handleReplAck(from int, msg wire.Message) {
	if s.cfg.Route == nil {
		return
	}
	p := int(msg.Part)
	if p < 0 || p >= s.cfg.Route.Parts() {
		return
	}
	switch msg.Mode {
	case ackModeSeqQuery:
		s.replMu.Lock()
		var seq uint64
		if st, ok := s.repl[p]; ok {
			seq = st.appliedSeq
		}
		s.replMu.Unlock()
		s.send(from, wire.Message{Kind: wire.KindReplAck, Part: msg.Part, Mode: ackModeSeqInfo, Seq: seq})
		return
	case ackModeSeqInfo:
		s.recordSeqVote(p, int32(from), msg.Seq)
		return
	case ackModeEpochRej:
		// We are the deposed primary: adopt the rejecter's table and fail
		// what we were still trying to replicate. (The rejecter counted the
		// EpochRejects metric.)
		if tbl, err := route.DecodeTable(msg.Blob); err == nil {
			s.applyRouteTable(tbl)
		}
		s.replMu.Lock()
		var fails []wire.Message
		if st, ok := s.repl[p]; ok {
			fails = st.failPendingLocked(ErrWrongEpoch.Error(), p)
		}
		s.replMu.Unlock()
		for _, f := range fails {
			s.send(int(f.Peer), wire.Message{Kind: f.Kind, ReqID: f.ReqID, Part: f.Part, Err: f.Err})
		}
		return
	case ackModeNak:
		s.repairFollower(p, int32(from), msg.Seq)
		return
	}

	// Plain ack: advance the follower's watermark and complete satisfied
	// quorum writes.
	s.replMu.Lock()
	st, ok := s.repl[p]
	if !ok || !st.primary {
		s.replMu.Unlock()
		return
	}
	if msg.Epoch < st.epoch {
		// The follower's watermark was measured under an older epoch;
		// old-epoch sequences are not comparable to ours and must not vote
		// on new-epoch quorums.
		s.replMu.Unlock()
		return
	}
	f := int32(from)
	if msg.Seq > st.ackedSeq[f] {
		st.acked += int64(s.ringBytesLocked(st, st.ackedSeq[f]+1, msg.Seq))
		st.ackedSeq[f] = msg.Seq
	}
	a := s.cfg.Route.Assignment(p)
	var done []*pendingWrite
	for seq, pw := range st.pending {
		votes := 0
		for _, fol := range a.Followers {
			if st.ackedSeq[fol] >= seq {
				votes++
			}
		}
		if votes >= pw.need {
			if pw.timer != nil {
				pw.timer.Stop()
			}
			delete(st.pending, seq)
			done = append(done, pw)
		}
	}
	feed := s.advanceCommitLocked(p, st, a)
	s.updateLagLocked()
	s.replMu.Unlock()
	for _, pw := range done {
		s.met.ObserveQuorumWrite(time.Since(pw.start))
		s.send(pw.from, wire.Message{Kind: wire.KindWriteResp, ReqID: pw.reqID, Part: msg.Part, Blob: pw.blob})
	}
	s.shipFeed(p, feed)
}

// ringBytesLocked sums the payload bytes of ring records in [lo, hi].
// Records outside the ring count zero (their bytes were already charged
// when the ring evicted them). Caller holds replMu.
func (s *Server) ringBytesLocked(st *partRepl, lo, hi uint64) int {
	var n int
	for seq := lo; seq <= hi; seq++ {
		if seq >= st.ringStart && seq < st.ringStart+uint64(len(st.ring)) {
			n += len(st.ring[seq-st.ringStart])
		}
	}
	return n
}

// repairFollower re-ships the records a nak reported missing, from the
// ring when it covers the gap and via a snapshot stream otherwise.
func (s *Server) repairFollower(p int, f int32, appliedSeq uint64) {
	s.replMu.Lock()
	st, ok := s.repl[p]
	if !ok || !st.primary {
		s.replMu.Unlock()
		return
	}
	from := appliedSeq + 1
	if from >= st.ringStart && len(st.ring) > 0 {
		var resend []wire.Message
		for seq := from; seq < st.nextSeq; seq++ {
			if seq < st.ringStart || seq >= st.ringStart+uint64(len(st.ring)) {
				break
			}
			resend = append(resend, wire.Message{
				Kind: wire.KindReplAppend, Part: int32(p),
				Epoch: st.epoch, Seq: seq, Base: st.baseSeq, Blob: st.ring[seq-st.ringStart],
			})
		}
		s.replMu.Unlock()
		for _, m := range resend {
			s.send(int(f), m)
		}
		return
	}
	s.replMu.Unlock()
	// The ring no longer covers the gap: stream a full snapshot.
	s.streamSnapshot(p, int(f))
}

// --- Failover -------------------------------------------------------------

// seqVote tracks one in-flight promotion poll.
type seqVote struct {
	epoch uint64
	votes map[int32]uint64
}

// replOnPeerDown reacts to a condemned backend: promote (or nominate) a
// new primary for partitions it led, and shrink the replica set of
// partitions where it followed us — both under fresh epochs, gossiped
// cluster-wide.
func (s *Server) replOnPeerDown(peer int) {
	if s.cfg.Route == nil {
		return
	}
	// Majority guard: a node that cannot see most of the backends is more
	// likely the isolated one than a witness to everyone else's death. If it
	// drove promotions or replica-set shrinks anyway, its higher epochs
	// would hijack partitions when the partition healed — with data the
	// real majority never acked. The standard consequence: automatic
	// failover needs >= 3 backends; a 2-server cluster cannot distinguish
	// peer death from its own isolation and stays read-available only.
	n := s.cfg.Part.N()
	visible := 1 // self
	for p := 0; p < n; p++ {
		if p != s.cfg.ID && !s.isSuspect(p) {
			visible++
		}
	}
	if visible*2 <= n {
		return
	}
	self := int32(s.cfg.ID)
	dead := int32(peer)
	for p := 0; p < s.cfg.Route.Parts(); p++ {
		a := s.cfg.Route.Assignment(p)
		switch {
		case a.Primary == dead && a.HasReplica(self):
			live := s.liveFollowers(a, dead)
			if len(live) == 0 || live[0] != self {
				// Another follower outranks us for driving the promotion;
				// dueling proposals would still converge (higher epoch
				// wins), but one driver keeps epochs dense.
				continue
			}
			if len(live) == 1 {
				s.promote(p, a, self, live)
				continue
			}
			// Poll the other live followers' applied sequences for one
			// heartbeat interval, then promote the most caught-up.
			s.replMu.Lock()
			st := s.replState(p)
			vote := &seqVote{epoch: a.Epoch, votes: map[int32]uint64{self: st.appliedSeq}}
			s.promoPolls[p] = vote
			s.replMu.Unlock()
			for _, f := range live[1:] {
				s.send(int(f), wire.Message{Kind: wire.KindReplAck, Part: int32(p), Mode: ackModeSeqQuery})
			}
			wait := s.cfg.HeartbeatInterval
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			time.AfterFunc(wait, func() { s.finishPromotion(p, a, dead) })
		case a.Primary == self && a.HasReplica(dead):
			// A follower died: publish a shrunk replica set so quorum
			// counting stops waiting for it.
			next := route.Assignment{Epoch: a.Epoch + 1, Primary: self}
			for _, f := range a.Followers {
				if f != dead {
					next.Followers = append(next.Followers, f)
				}
			}
			if tbl := s.cfg.Route.Propose(p, next); tbl != nil {
				s.reconcileRoles()
				s.gossipRoute(tbl)
				// Outstanding writes may now have quorum with the smaller
				// set; re-evaluate by replaying a no-op ack pass.
				s.reapQuorums(p)
			}
		}
	}
}

// liveFollowers lists an assignment's followers that are not suspected and
// not the condemned server, preserving promotion-preference order.
func (s *Server) liveFollowers(a route.Assignment, dead int32) []int32 {
	var live []int32
	for _, f := range a.Followers {
		if f == dead || s.isSuspect(int(f)) {
			continue
		}
		live = append(live, f)
	}
	return live
}

// recordSeqVote stores one follower's applied-sequence answer for an open
// promotion poll.
func (s *Server) recordSeqVote(p int, from int32, seq uint64) {
	s.replMu.Lock()
	if v, ok := s.promoPolls[p]; ok {
		v.votes[from] = seq
	}
	s.replMu.Unlock()
}

// finishPromotion closes a promotion poll: the most caught-up live
// follower becomes primary under a fresh epoch.
func (s *Server) finishPromotion(p int, a route.Assignment, dead int32) {
	select {
	case <-s.stop:
		return
	default:
	}
	s.replMu.Lock()
	vote, ok := s.promoPolls[p]
	delete(s.promoPolls, p)
	s.replMu.Unlock()
	if !ok {
		return
	}
	if cur := s.cfg.Route.Assignment(p); cur.Epoch != vote.epoch {
		return // someone else already installed a newer assignment
	}
	best := int32(s.cfg.ID)
	var bestSeq uint64
	for f, seq := range vote.votes {
		if seq > bestSeq || (seq == bestSeq && f == int32(s.cfg.ID)) {
			best, bestSeq = f, seq
		}
	}
	live := s.liveFollowers(a, dead)
	s.promote(p, a, best, live)
}

// promote installs and gossips a new assignment for partition p: newPrim
// leads, the remaining live followers stay, the dead primary is excluded —
// its possibly diverged copy must never serve reads again until it rejoins
// through the snapshot path.
func (s *Server) promote(p int, a route.Assignment, newPrim int32, live []int32) {
	next := route.Assignment{Epoch: a.Epoch + 1, Primary: newPrim}
	for _, f := range live {
		if f != newPrim {
			next.Followers = append(next.Followers, f)
		}
	}
	tbl := s.cfg.Route.Propose(p, next)
	if tbl == nil {
		return // lost to a concurrent higher-epoch proposal
	}
	s.reconcileRoles()
	s.gossipRoute(tbl)
}

// reapQuorums re-checks pending writes on partition p against the current
// (possibly shrunk) replica set.
func (s *Server) reapQuorums(p int) {
	s.replMu.Lock()
	st, ok := s.repl[p]
	if !ok || !st.primary {
		s.replMu.Unlock()
		return
	}
	a := s.cfg.Route.Assignment(p)
	need := a.Quorum() - 1
	var done []*pendingWrite
	for seq, pw := range st.pending {
		votes := 0
		for _, fol := range a.Followers {
			if st.ackedSeq[fol] >= seq {
				votes++
			}
		}
		if votes >= need {
			if pw.timer != nil {
				pw.timer.Stop()
			}
			delete(st.pending, seq)
			done = append(done, pw)
		}
	}
	feed := s.advanceCommitLocked(p, st, a)
	s.replMu.Unlock()
	for _, pw := range done {
		s.met.ObserveQuorumWrite(time.Since(pw.start))
		s.send(pw.from, wire.Message{Kind: wire.KindWriteResp, ReqID: pw.reqID, Part: int32(p), Blob: pw.blob})
	}
	s.shipFeed(p, feed)
}

// --- Route gossip ---------------------------------------------------------

// gossipRoute broadcasts a route table to every node on the transport —
// servers and clients alike — so traversal dispatch and write routing
// converge on the new assignment within one message delay.
func (s *Server) gossipRoute(tbl *route.Table) {
	blob := tbl.Encode()
	for n := 0; n < s.tr.N(); n++ {
		if n == s.cfg.ID {
			continue
		}
		s.send(n, wire.Message{Kind: wire.KindRouteUpdate, Blob: blob})
	}
}

// handleRouteUpdate merges a gossiped table and reconciles local replica
// roles. Anti-entropy: when our table is strictly newer somewhere, reply
// with it so the sender converges too.
func (s *Server) handleRouteUpdate(from int, msg wire.Message) {
	if s.cfg.Route == nil {
		return
	}
	tbl, err := route.DecodeTable(msg.Blob)
	if err != nil {
		return
	}
	s.applyRouteTable(tbl)
	if ours := s.cfg.Route.Table(); tableNewer(ours, tbl) {
		s.send(from, wire.Message{Kind: wire.KindRouteUpdate, Blob: ours.Encode()})
	}
}

// tableNewer reports whether a carries a higher epoch than b for any
// partition.
func tableNewer(a, b *route.Table) bool {
	if len(a.Parts) != len(b.Parts) {
		return false
	}
	for p := range a.Parts {
		if a.Parts[p].Epoch > b.Parts[p].Epoch {
			return true
		}
	}
	return false
}

// applyRouteTable merges a table into the view and reconciles roles if
// anything changed.
func (s *Server) applyRouteTable(tbl *route.Table) {
	if s.cfg.Route.Update(tbl) {
		s.reconcileRoles()
	}
}

// reconcileRoles walks the current table and aligns local per-partition
// replication state with it: adopt primaryship (a promotion when we held
// the partition as follower), demote (failing pending writes with the
// fencing error), or drop state for partitions we no longer replicate.
func (s *Server) reconcileRoles() {
	self := int32(s.cfg.ID)
	var fails []wire.Message
	var feedFails []feedShip
	s.replMu.Lock()
	for p := 0; p < s.cfg.Route.Parts(); p++ {
		a := s.cfg.Route.Assignment(p)
		st, have := s.repl[p]
		switch {
		case a.Primary == self:
			st = s.replState(p)
			s.adoptPrimaryLocked(p, st, a)
		case a.HasReplica(self):
			if have && st.primary {
				// Demotion: drop primary-side state — follower watermarks and
				// counters describe our deposed primaryship and must not leak
				// into a later re-promotion. The ring stays: it holds the
				// appends this node actually applied, which is exactly the
				// retained history a follower keeps (and a divergence resync
				// clears it if the new primary disowns any of it). st.epoch
				// stays: our applied history was counted under it, and the new
				// primary's first append adjudicates divergence against it.
				st.primary = false
				st.nextSeq = 0
				st.ackedSeq = make(map[int32]uint64)
				st.shipped, st.acked = 0, 0
				fails = append(fails, st.failPendingLocked(ErrWrongEpoch.Error(), p)...)
				feedFails = append(feedFails, st.failFeedSubsLocked(s, p)...)
			}
		default:
			if have {
				fails = append(fails, st.failPendingLocked(ErrPartitionMoved.Error(), p)...)
				feedFails = append(feedFails, st.failFeedSubsLocked(s, p)...)
				delete(s.repl, p)
			}
		}
	}
	s.updateLagLocked()
	s.replMu.Unlock()
	for _, f := range fails {
		s.send(int(f.Peer), wire.Message{Kind: f.Kind, ReqID: f.ReqID, Part: f.Part, Err: f.Err})
	}
	for _, f := range feedFails {
		s.send(f.to, f.msg)
	}
}

// --- Snapshot / shard handoff --------------------------------------------

// JoinPartition asks partition p's primary to stream its state to this
// server, making it a follower without downtime: snapshot chunks plus the
// forwarded live append tail, then a fresh epoch that adds this server to
// the replica set.
func (s *Server) JoinPartition(p int) error {
	if s.cfg.Route == nil {
		return fmt.Errorf("core: replication is not enabled on this cluster")
	}
	if p < 0 || p >= s.cfg.Route.Parts() {
		return fmt.Errorf("core: no such partition %d", p)
	}
	a := s.cfg.Route.Assignment(p)
	if a.HasReplica(int32(s.cfg.ID)) {
		return nil // already a replica
	}
	s.replMu.Lock()
	st := s.replState(p)
	st.joining = true
	s.replMu.Unlock()
	return s.send(int(a.Primary), wire.Message{Kind: wire.KindSnapshot, Mode: snapReq, Part: int32(p)})
}

// handleSnapshot drives both sides of a snapshot stream.
func (s *Server) handleSnapshot(from int, msg wire.Message) {
	if s.cfg.Route == nil {
		return
	}
	p := int(msg.Part)
	if p < 0 || p >= s.cfg.Route.Parts() {
		return
	}
	switch msg.Mode {
	case snapReq:
		a := s.cfg.Route.Assignment(p)
		if a.Primary != int32(s.cfg.ID) {
			return // stale request; the joiner will retry off a fresh table
		}
		s.replMu.Lock()
		st := s.replState(p)
		st.primary = true
		st.joiners[int32(from)] = true
		s.replMu.Unlock()
		s.journal.Record(events.Event{Type: events.HandoffStart, Part: p, Peer: from,
			Detail: "streaming snapshot to joiner"})
		// Stream off the dispatch goroutine: a snapshot scan of a large
		// partition must not stall heartbeat and traversal handling.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.streamSnapshot(p, from)
		}()
	case snapChunk:
		_ = s.applyBatch(msg.Blob) // idempotent; a failed chunk surfaces as a stalled join
	case snapFinal:
		if len(msg.Blob) > 0 {
			_ = s.applyBatch(msg.Blob)
		}
		s.replMu.Lock()
		st := s.replState(p)
		if msg.Epoch > st.epoch {
			// The snapshot hands us the streamer's history, so our applied
			// counter is now measured in the streamer's epoch.
			st.epoch = msg.Epoch
		}
		if msg.Seq > st.appliedSeq {
			st.appliedSeq = msg.Seq
			// The snapshot jumped the applied counter past the ring's run;
			// whatever was retained is no longer contiguous with it.
			st.ring, st.ringTimes, st.ringStart = nil, nil, 0
		}
		st.joining = false
		epoch := st.epoch
		// Replay the buffered live tail that extends past the snapshot.
		for {
			blob, ok := st.tail[st.appliedSeq+1]
			if !ok {
				break
			}
			delete(st.tail, st.appliedSeq+1)
			s.replMu.Unlock()
			if err := s.applyBatch(blob); err != nil {
				return
			}
			s.replMu.Lock()
			if st.epoch != epoch || st.joining {
				// A newer epoch reset this replica mid-replay; the fresh
				// resync supersedes this one.
				s.replMu.Unlock()
				return
			}
			st.appliedSeq++
			st.pushRingLocked(st.appliedSeq, blob)
		}
		for seq := range st.tail { // anything at or below the snapshot is covered
			if seq <= st.appliedSeq {
				delete(st.tail, seq)
			}
		}
		// Report the post-replay watermark: on a divergence resync the
		// primary credits it as this follower's ack, which may complete the
		// very write whose append triggered the resync.
		done := wire.Message{Kind: wire.KindSnapshot, Mode: snapDone, Part: msg.Part, Seq: st.appliedSeq}
		s.replMu.Unlock()
		s.send(from, done)
	case snapNudge:
		// A primary noticed this server return from suspicion and is
		// inviting it back into a replica set it was dropped from. The local
		// table may be stale enough to still list this server as a replica —
		// which would make JoinPartition a no-op — so merge the nudger's
		// table first.
		if tbl, err := route.DecodeTable(msg.Blob); err == nil {
			s.applyRouteTable(tbl)
		}
		_ = s.JoinPartition(p)
	case snapDone:
		// The joiner is caught up: publish an epoch that makes it a
		// follower (no-op if it already is one, e.g. after a nak repair or
		// a divergence resync — those credit the reported watermark as an
		// ack instead, which may complete pending quorum writes).
		a := s.cfg.Route.Assignment(p)
		if a.Primary != int32(s.cfg.ID) || a.HasReplica(int32(from)) {
			s.replMu.Lock()
			wasJoiner := false
			if st, ok := s.repl[p]; ok {
				wasJoiner = st.joiners[int32(from)]
				delete(st.joiners, int32(from))
				if st.primary && msg.Seq > st.ackedSeq[int32(from)] {
					st.ackedSeq[int32(from)] = msg.Seq
				}
			}
			s.replMu.Unlock()
			if wasJoiner {
				s.journal.Record(events.Event{Type: events.HandoffDone, Part: p, Peer: from, Epoch: a.Epoch,
					Detail: fmt.Sprintf("joiner caught up at seq %d (already in replica set)", msg.Seq)})
			}
			s.reapQuorums(p)
			return
		}
		next := route.Assignment{
			Epoch: a.Epoch + 1, Primary: a.Primary,
			Followers: append(append([]int32(nil), a.Followers...), int32(from)),
		}
		if tbl := s.cfg.Route.Propose(p, next); tbl != nil {
			s.replMu.Lock()
			st := s.replState(p)
			delete(st.joiners, int32(from))
			st.ackedSeq[int32(from)] = msg.Seq
			s.replMu.Unlock()
			s.journal.Record(events.Event{Type: events.HandoffDone, Part: p, Peer: from, Epoch: next.Epoch,
				Detail: fmt.Sprintf("joiner caught up at seq %d, published as follower", msg.Seq)})
			s.reconcileRoles()
			s.gossipRoute(tbl)
			// The replica set (and quorum size) changed; re-evaluate pending
			// writes and the feed commit floor against it.
			s.reapQuorums(p)
		}
	}
}

// streamSnapshot scans the local store for partition p and ships it to
// node `to` as snapshot chunks, closing with the current append sequence.
func (s *Server) streamSnapshot(p, to int) {
	s.replMu.Lock()
	st := s.replState(p)
	// The snapshot covers everything applied before the scan starts; the
	// live tail (forwarded because `to` is a joiner) covers the rest.
	seq := st.appliedSeq
	epoch := st.epoch
	s.replMu.Unlock()
	view := s.cfg.Route
	keep := func(id model.VertexID) bool { return view.Partition(id) == p }
	err := gstore.SnapshotMutations(s.cfg.Store, keep, s.cfg.BatchSize, func(ms []gstore.Mutation) error {
		blob := gstore.EncodeBatch(ms)
		s.met.AddHandoffBytes(int64(len(blob)))
		return s.send(to, wire.Message{Kind: wire.KindSnapshot, Mode: snapChunk, Part: int32(p), Blob: blob})
	})
	if err != nil {
		return // stalled join; the joiner's operator retries
	}
	s.send(to, wire.Message{Kind: wire.KindSnapshot, Mode: snapFinal, Part: int32(p), Epoch: epoch, Seq: seq})
}

// replOnPeerUp reacts to a peer's suspicion clearing: every partition this
// server primaries below the configured replication factor — typically
// because replOnPeerDown shrank the set while the peer was unreachable —
// sends the recovered peer a rejoin invitation. Without it a transient
// network blip silently and permanently erodes durability.
func (s *Server) replOnPeerUp(peer int) {
	if s.cfg.Route == nil {
		return
	}
	self := int32(s.cfg.ID)
	pr := int32(peer)
	var nudge []int
	s.replMu.Lock()
	for p := 0; p < s.cfg.Route.Parts(); p++ {
		a := s.cfg.Route.Assignment(p)
		if a.Primary != self || a.HasReplica(pr) {
			continue
		}
		if rf := s.cfg.ReplicationFactor; rf >= 2 && len(a.Followers)+1 >= rf {
			continue // someone else already restored the factor
		}
		if st, ok := s.repl[p]; ok && st.joiners[pr] {
			continue // handoff already in flight
		}
		nudge = append(nudge, p)
	}
	s.replMu.Unlock()
	if len(nudge) == 0 {
		return
	}
	s.met.AddRejoinNudges(int64(len(nudge)))
	blob := s.cfg.Route.Table().Encode()
	for _, p := range nudge {
		s.journal.Record(events.Event{Type: events.RejoinNudge, Part: p, Peer: peer,
			Detail: "inviting recovered peer back into the replica set"})
		s.send(peer, wire.Message{Kind: wire.KindSnapshot, Mode: snapNudge, Part: int32(p), Blob: blob})
	}
}
