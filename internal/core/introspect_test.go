package core

import (
	"strings"
	"testing"
	"time"

	"graphtrek/internal/events"
	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/simio"
)

// TestStressIntrospectionFailoverJournalAndStatus is the chaos end-to-end
// for the cluster-health surface: a primary is crash-stopped, and the whole
// failover story must then be reconstructable from the outside exactly the
// way an operator would see it — the merged wire-pulled event journal (gtq
// -events) shows the suspicion and the promotion fenced at the epoch the
// route table publishes, every surviving server answers a journal and a
// status pull, the promoted primary's status document shows the new role
// with a committed, lag-free log covering a post-failover write, the
// follower-shrink reconfiguration that restores survivor readiness is
// journaled as an epoch bump, and the whole cluster reports ready again
// when the crashed server rejoins.
func TestStressIntrospectionFailoverJournalAndStatus(t *testing.T) {
	const (
		n            = 3
		hb           = 100 * time.Millisecond
		suspectAfter = 3 * hb
	)
	c, chaos, views := newReplCluster(t, n, 2, func(cfg *Config) {
		cfg.HeartbeatInterval = hb
		cfg.SuspectAfter = suspectAfter
		cfg.Disk = simio.NewDisk(time.Millisecond, 2)
		cfg.Workers = 2
	})
	writeAuditGraph(t, c)
	clientView := views[n]
	// Identity boot table: partition p is primaried by server p with server
	// (p+1)%n as its follower; anchor on the partition holding vertex 1.
	p0 := clientView.Partition(1)
	victim := p0
	promotee := (p0 + 1) % n
	coord := (p0 + 2) % n

	// A healthy replicated cluster is ready everywhere, and quiet: no
	// control-plane events beyond what boot itself may have logged.
	for i := 0; i < n; i++ {
		if r := c.servers[i].Ready(); !r.Ready {
			t.Fatalf("server %d unready before the crash: %v", i, r.Reasons)
		}
	}

	chaos[victim].Crash()
	pollUntil(t, 10*time.Second, "follower promotion", func() bool {
		return c.servers[promotee].Metrics().Promotions >= 1
	})
	pollUntil(t, 5*time.Second, "route convergence", func() bool {
		return clientView.Assignment(p0).Primary == int32(promotee)
	})
	epoch := clientView.Assignment(p0).Epoch

	// Quorum writes resume against the promoted primary; the write below is
	// what the status document must show as applied AND committed.
	newID := findFreeID(clientView, p0, 1000)
	if err := c.client.Write([]gstore.Mutation{
		{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: newID, Label: "Marker"}},
	}, WriteOptions{Timeout: 10 * time.Second}); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}

	// Every surviving server must answer a wire journal pull (the per-server
	// leg of gtq -events) — and the merged, time-sorted timeline must hold
	// the suspicion of the victim and the epoch-fenced promotion.
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		if _, err := c.client.ServerEvents(i, 5*time.Second); err != nil {
			t.Errorf("journal pull from server %d: %v", i, err)
		}
		if _, err := c.client.ServerStatus(i, 5*time.Second); err != nil {
			t.Errorf("status pull from server %d: %v", i, err)
		}
	}
	evs, err := c.client.ClusterEvents(10 * time.Second)
	if err != nil {
		t.Fatalf("merged journal pull: %v", err)
	}
	var sawSuspicion, sawPromotion bool
	for i, e := range evs {
		if i > 0 && e.TimeUnixNano < evs[i-1].TimeUnixNano {
			t.Fatalf("merged timeline out of order at %d: %d after %d", i, e.TimeUnixNano, evs[i-1].TimeUnixNano)
		}
		if e.Type == events.SuspicionUp && e.Peer == victim {
			sawSuspicion = true
		}
		if e.Type == events.Promotion && e.Part == p0 && e.Server == promotee && e.Epoch == epoch {
			sawPromotion = true
		}
	}
	if !sawSuspicion {
		t.Errorf("no suspicion_up event for crashed server %d in %d merged events", victim, len(evs))
	}
	if !sawPromotion {
		t.Errorf("no promotion event for partition %d by server %d at epoch %d in %d merged events", p0, promotee, epoch, len(evs))
	}

	// The promoted primary's status document must agree with the journal:
	// role primary at the promotion epoch, the post-failover write applied,
	// committed, and lag-free. Commit acknowledgment is asynchronous to the
	// client ack, so poll.
	pollUntil(t, 10*time.Second, "promoted primary status row", func() bool {
		sts, err := c.client.ClusterStatus(5 * time.Second)
		if err != nil {
			return false
		}
		for _, st := range sts {
			if st.Server != promotee {
				continue
			}
			for _, p := range st.Partitions {
				if p.Part == p0 {
					return p.Role == "primary" && p.Epoch == epoch &&
						p.AppliedSeq >= 1 && p.CommitSeq == p.AppliedSeq && p.LagEntries == 0
				}
			}
		}
		return false
	})

	// Readiness: with a 3-server majority the cluster self-heals — the
	// partition that had the victim as its follower shrinks its replica set
	// under a fresh epoch (visible as an epoch_bump in the journal), so its
	// primary returns to ready even while the victim is still down. The
	// durable below-quorum unready state needs the majority guard; see
	// TestStressReadinessQuorumLoss.
	var sawShrink bool
	for _, e := range evs {
		if e.Type == events.EpochBump && e.Part == coord && e.Server == coord {
			sawShrink = true
		}
	}
	if !sawShrink {
		t.Errorf("no epoch_bump event for the follower-shrink of partition %d in %d merged events", coord, len(evs))
	}
	pollUntil(t, 10*time.Second, "survivor readiness while victim is down", func() bool {
		for i := 0; i < n; i++ {
			if i == victim {
				continue
			}
			if !c.servers[i].Ready().Ready {
				return false
			}
		}
		return true
	})

	// Revive the victim: the failure detector clears the suspicion, rejoin
	// nudges invite it back, and once the replica sets are whole again every
	// server must report ready. The nudge itself must land in the journal.
	chaos[victim].Revive()
	pollUntil(t, 20*time.Second, "cluster-wide readiness after rejoin", func() bool {
		for i := 0; i < n; i++ {
			if !c.servers[i].Ready().Ready {
				return false
			}
		}
		return true
	})
	evs, err = c.client.ClusterEvents(10 * time.Second)
	if err != nil {
		t.Fatalf("merged journal pull after rejoin: %v", err)
	}
	var sawDown, sawNudge bool
	for _, e := range evs {
		if e.Type == events.SuspicionDown && e.Peer == victim {
			sawDown = true
		}
		if e.Type == events.RejoinNudge && e.Peer == victim {
			sawNudge = true
		}
	}
	if !sawDown {
		t.Errorf("no suspicion_down event for revived server %d in %d merged events", victim, len(evs))
	}
	if !sawNudge {
		t.Errorf("no rejoin_nudge event for revived server %d in %d merged events", victim, len(evs))
	}
}

// TestStressReadinessQuorumLoss pins the durable unready state behind
// /readyz. A 2-server cluster sits below the majority-guard threshold, so
// a crashed peer cannot be reconfigured away: the survivor keeps a
// primaried partition below write quorum and must report unready with a
// below-quorum reason until the peer comes back — the durability contract
// (can this server meet quorum?) as distinct from liveness (is it up?).
func TestStressReadinessQuorumLoss(t *testing.T) {
	const (
		n            = 2
		hb           = 100 * time.Millisecond
		suspectAfter = 3 * hb
	)
	c, chaos, _ := newReplCluster(t, n, 2, func(cfg *Config) {
		cfg.HeartbeatInterval = hb
		cfg.SuspectAfter = suspectAfter
		cfg.Disk = simio.NewDisk(time.Millisecond, 2)
		cfg.Workers = 2
	})
	for i := 0; i < n; i++ {
		if r := c.servers[i].Ready(); !r.Ready {
			t.Fatalf("server %d unready before the crash: %v", i, r.Reasons)
		}
	}

	chaos[1].Crash()
	pollUntil(t, 10*time.Second, "below-quorum unreadiness", func() bool {
		r := c.servers[0].Ready()
		if r.Ready {
			return false
		}
		for _, reason := range r.Reasons {
			if strings.Contains(reason, "below quorum") {
				return true
			}
		}
		return false
	})

	// No reconfiguration may have slipped through the majority guard: the
	// replica set (and its epoch) must be exactly what boot published.
	for p := 0; p < n; p++ {
		if e := c.servers[0].cfg.Route.Assignment(p).Epoch; e != 1 {
			t.Errorf("partition %d epoch %d: the majority guard should have blocked reconfiguration", p, e)
		}
	}

	chaos[1].Revive()
	pollUntil(t, 20*time.Second, "readiness after the peer returns", func() bool {
		for i := 0; i < n; i++ {
			if !c.servers[i].Ready().Ready {
				return false
			}
		}
		return true
	})
}
