package core

import (
	"sync"
	"testing"
	"time"

	"graphtrek/internal/query"
	"graphtrek/internal/trace"
)

// TestTraceLedgerCrossCheck runs concurrent traversals across every
// server-side engine and validates the span-per-terminated-execution
// invariant: for each cleanly completed traversal, the coordinator's
// TravelSummary reports Created == Ended, and the spans buffered across the
// cluster for that traversal number exactly Created. Trace completeness
// thereby doubles as an independent check of the §IV-C quiescence ledger.
func TestTraceLedgerCrossCheck(t *testing.T) {
	c := newCluster(t, 4, nil)
	loadAuditGraph(t, c)
	plans := []*query.Plan{
		mustPlan(t, query.V(1).E("run")),
		mustPlan(t, query.V(1, 2).E("run").E("read")),
		mustPlan(t, query.VLabel("Execution").E("read")),
		mustPlan(t, query.VLabel("User").Rtn().E("run").Rtn().E("read")),
	}
	modes := []Mode{ModeSync, ModeAsyncPlain, ModeGraphTrek, ModeAsyncCacheOnly, ModeAsyncSchedOnly}
	const rounds = 15
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan := plans[i%len(plans)]
			mode := modes[i%len(modes)]
			if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: mode, Coordinator: -1, Timeout: 20 * time.Second}); err != nil {
				t.Errorf("traversal %d (%v): %v", i, mode, err)
			}
		}(i)
	}
	wg.Wait()

	var summaries []trace.TravelSummary
	for _, s := range c.servers {
		summaries = append(summaries, s.TraceSummaries()...)
	}
	if len(summaries) != rounds {
		t.Fatalf("got %d coordinator summaries, want %d", len(summaries), rounds)
	}
	seen := make(map[uint64]bool)
	for _, sum := range summaries {
		if seen[sum.Travel] {
			t.Errorf("travel %d summarized twice", sum.Travel)
		}
		seen[sum.Travel] = true
		if sum.Err != "" {
			t.Errorf("travel %d: unexpected error %q", sum.Travel, sum.Err)
			continue
		}
		if sum.Created != sum.Ended {
			t.Errorf("travel %d: ledger created %d != ended %d", sum.Travel, sum.Created, sum.Ended)
		}
		if sum.Created == 0 {
			t.Errorf("travel %d: no executions registered", sum.Travel)
		}
		if sum.ElapsedNs <= 0 {
			t.Errorf("travel %d: elapsed %d", sum.Travel, sum.ElapsedNs)
		}
		spans := 0
		for _, s := range c.servers {
			spans += len(s.TraceSpans(sum.Travel))
		}
		if spans != sum.Created {
			t.Errorf("travel %d (%s): %d spans buffered, ledger registered %d executions",
				sum.Travel, sum.Mode, spans, sum.Created)
		}
	}
}

// TestTraceDispositionMatchesMetrics checks the per-span attribution
// invariant: summing redundant/combined/real over a server's spans
// reproduces that server's engine counters, so the paper's §VII-A identity
// (redundant + combined + real == received) holds at span granularity too.
func TestTraceDispositionMatchesMetrics(t *testing.T) {
	c := newCluster(t, 3, nil)
	loadAuditGraph(t, c)
	plans := []*query.Plan{
		mustPlan(t, query.V(1, 2).E("run").E("read")),
		mustPlan(t, query.VLabel("Execution").E("read")),
	}
	for _, plan := range plans {
		for _, mode := range allModes {
			if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: mode, Timeout: 20 * time.Second}); err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
		}
	}
	for _, s := range c.servers {
		var red, comb, real, frontier int64
		for _, sp := range s.TraceSpans(0) {
			red += int64(sp.Redundant)
			comb += int64(sp.Combined)
			real += int64(sp.Real)
			frontier += int64(sp.Frontier)
			if sp.WallNs < 0 || sp.QueueWaitNs < 0 {
				t.Errorf("server %d: negative timing in span %+v", s.ID(), sp)
			}
		}
		snap := s.Metrics()
		if red != snap.Redundant || comb != snap.Combined || real != snap.RealIO {
			t.Errorf("server %d: span dispositions (red=%d comb=%d real=%d) != counters (red=%d comb=%d real=%d)",
				s.ID(), red, comb, real, snap.Redundant, snap.Combined, snap.RealIO)
		}
		// Frontier covers every enqueued item plus the instant (never
		// enqueued) executions, so it dominates the received counter.
		if frontier < snap.Received {
			t.Errorf("server %d: span frontier sum %d < received %d", s.ID(), frontier, snap.Received)
		}
		st := s.TraceStats()
		if st.SpansRecorded == 0 || st.SpansBuffered == 0 {
			t.Errorf("server %d: no spans recorded: %+v", s.ID(), st)
		}
	}
}

// TestHandleProfile exercises the TraceReq/TraceResp round trip: the
// client-side profile of a completed traversal must agree with the spans
// buffered on the servers.
func TestHandleProfile(t *testing.T) {
	c := newCluster(t, 3, nil)
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.V(1, 2).E("run").E("read"))
	h, err := c.client.SubmitPlanAsync(plan, SubmitOptions{Mode: ModeGraphTrek})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats, err := h.Profile(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("profile returned no rows")
	}
	var want []trace.StepStat
	for _, s := range c.servers {
		want = append(want, trace.Aggregate(s.TraceSpans(h.TravelID()))...)
	}
	trace.Sort(want)
	if len(stats) != len(want) {
		t.Fatalf("profile rows = %d, want %d", len(stats), len(want))
	}
	var execs int
	for i, st := range stats {
		if st != want[i] {
			t.Errorf("row %d: got %+v want %+v", i, st, want[i])
		}
		execs += st.Execs
	}
	// The profiled execution count matches the coordinator's ledger totals.
	sum, ok := c.servers[h.Coordinator()].TraceSummary(h.TravelID())
	if !ok {
		t.Fatal("no coordinator summary for profiled traversal")
	}
	if execs != sum.Created {
		t.Errorf("profiled execs %d != ledger created %d", execs, sum.Created)
	}
	merged := trace.MergeSteps(stats)
	var mergedExecs int
	for _, st := range merged {
		if st.Server != -1 {
			t.Errorf("merged row has server %d, want -1", st.Server)
		}
		mergedExecs += st.Execs
	}
	if mergedExecs != execs {
		t.Errorf("merged execs %d != per-server execs %d", mergedExecs, execs)
	}
}

// TestTraceDisabled pins the opt-out: TraceCap < 0 turns the recorder off
// entirely and every accessor degrades to empty results while traversals
// stay correct.
func TestTraceDisabled(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) { cfg.TraceCap = -1 })
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V(1).E("run").E("read")))
	for _, s := range c.servers {
		if got := s.TraceSpans(0); len(got) != 0 {
			t.Errorf("server %d: %d spans with tracing disabled", s.ID(), len(got))
		}
		if got := s.TraceSummaries(); len(got) != 0 {
			t.Errorf("server %d: %d summaries with tracing disabled", s.ID(), len(got))
		}
		if _, ok := s.TraceSummary(1); ok {
			t.Errorf("server %d: summary lookup succeeded with tracing disabled", s.ID())
		}
		if st := s.TraceStats(); st.SpansRecorded != 0 {
			t.Errorf("server %d: stats nonzero with tracing disabled: %+v", s.ID(), st)
		}
	}
}

// TestTraceQueueWaitObserved checks wait attribution end to end: items
// spend measurable time queued behind a slow disk on a single worker, and
// the resulting spans carry a positive queue wait.
func TestTraceQueueWaitObserved(t *testing.T) {
	c := newCluster(t, 1, func(cfg *Config) { cfg.Workers = 1 })
	loadAuditGraph(t, c)
	if _, err := c.client.SubmitPlan(
		mustPlan(t, query.VLabel("User").E("run").E("read")),
		SubmitOptions{Mode: ModeGraphTrek, Timeout: 20 * time.Second},
	); err != nil {
		t.Fatal(err)
	}
	var sawWait bool
	for _, sp := range c.servers[0].TraceSpans(0) {
		if sp.QueueWaitNs > 0 {
			sawWait = true
		}
	}
	if !sawWait {
		t.Error("no span observed a positive queue wait")
	}
}
