package core

import (
	"errors"
	"strings"
)

// Replication / routing error sentinels. They travel as message text, so
// classification matches on their strings.
var (
	// ErrWrongEpoch fences a stale primary: a replica with a newer epoch
	// for the partition rejected its write or append.
	ErrWrongEpoch = errors.New("core: write fenced by a newer partition epoch (stale primary)")
	// ErrPartitionMoved rejects work routed with a stale table: the
	// partition's primary is now another server. The sender refreshes its
	// route view and retries.
	ErrPartitionMoved = errors.New("core: partition moved to another server (stale route)")
)

// terminalMarks are the substrings of errors no retry can fix: a malformed
// plan stays malformed, a client-cancelled traversal stays cancelled, and
// an unbound client cannot reach anything. Everything else — backpressure
// (sched.ErrBackpressure via the admission "retry later" text), suspected
// peers, watchdog timeouts, epoch fences, moved partitions, transport
// failures — is transient cluster state that a restarted attempt can land
// around, so retryability defaults to true.
var terminalMarks = []string{
	"query:",                        // plan compile/decode errors
	"traversal cancelled by client", // Handle.Cancel
	"client not bound",              // local misconfiguration
	"cannot run asynchronously",     // mode misuse
	"replication is not enabled",    // Write without a route table
	"predates retained history",     // feed cursor aged out of the ring
}

// Retryable classifies a traversal or write error as transient (worth a
// fresh attempt) or terminal. This is the single retry policy: client
// submit loops and the bench harness consult it instead of inspecting
// error text at call sites.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	for _, m := range terminalMarks {
		if strings.Contains(msg, m) {
			return false
		}
	}
	return true
}
