package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"graphtrek/internal/events"
	"graphtrek/internal/gstore"
	"graphtrek/internal/metrics"
	"graphtrek/internal/status"
	"graphtrek/internal/wire"
)

// This file is the cluster-health introspection surface: the event journal
// and the replication status document, readable three ways — in process
// (Server.Events / Server.Status / Server.Ready, which internal/obs serves
// over HTTP), and over the wire (KindEventsReq / KindStatusReq), which
// Client.ClusterEvents / Client.ClusterStatus merge across every backend
// for gtq -events / gtq -status.

// Events returns the server's buffered control-plane journal, oldest
// first. Empty when the journal is disabled (Config.EventCap < 0).
func (s *Server) Events() []events.Event { return s.journal.Events() }

// EventsDropped counts journal entries evicted by the ring bound.
func (s *Server) EventsDropped() uint64 { return s.journal.Dropped() }

// Histograms returns snapshots of the server's native latency histograms
// for metric exposition.
func (s *Server) Histograms() []metrics.HistogramSnapshot { return s.met.Histograms() }

// Status assembles the server's live status document: executor and cache
// gauges plus, with replication enabled, one entry per partition this
// server holds a role in.
func (s *Server) Status() status.Server {
	out := status.Server{
		Server:         s.cfg.ID,
		QueueLen:       s.exec.Len(),
		QueueHighWater: s.exec.HighWater(),
	}
	if cs, ok := s.cfg.Store.(gstore.CacheStatter); ok {
		st := cs.CacheStats()
		out.Cache = status.CacheStats{
			VtxHits: st.VtxHits, VtxMisses: st.VtxMisses,
			AdjHits: st.AdjHits, AdjMisses: st.AdjMisses,
		}
	}
	if s.cfg.Route != nil {
		now := time.Now().UnixNano()
		s.replMu.Lock()
		parts := make([]int, 0, len(s.repl))
		for p := range s.repl {
			parts = append(parts, p)
		}
		sort.Ints(parts)
		for _, p := range parts {
			out.Partitions = append(out.Partitions, s.partitionStatusLocked(p, now))
		}
		s.replMu.Unlock()
	}
	r := s.Ready()
	out.Ready = r.Ready
	out.NotReadyReasons = r.Reasons
	return out
}

// partitionStatusLocked builds one partition's status row. Caller holds
// replMu.
func (s *Server) partitionStatusLocked(p int, now int64) status.Partition {
	st := s.repl[p]
	a := s.cfg.Route.Assignment(p)
	ps := status.Partition{
		Part:       p,
		Epoch:      st.epoch,
		Primary:    int(a.Primary),
		Role:       "follower",
		AppliedSeq: st.appliedSeq,
		Joining:    st.joining,
	}
	for _, f := range a.Followers {
		ps.Followers = append(ps.Followers, int(f))
	}
	if !st.primary {
		return ps
	}
	ps.Role = "primary"
	ps.CommitSeq = st.commitSeq
	// AckedSeq is the quorum floor: the lowest follower watermark, i.e. what
	// every follower is known to hold. No followers means the primary alone
	// is the replica set and its applied watermark is fully acknowledged.
	ps.AckedSeq = st.appliedSeq
	for _, f := range a.Followers {
		if ack := st.ackedSeq[f]; ack < ps.AckedSeq {
			ps.AckedSeq = ack
		}
	}
	if st.appliedSeq > ps.AckedSeq {
		ps.LagEntries = st.appliedSeq - ps.AckedSeq
	}
	ps.LagBytes = st.shipped - st.acked
	// Age of the oldest uncommitted entry, when its timestamp is still
	// ring-resident (it always is: the ring retains at least everything past
	// the commit watermark or feed subscribers would already have been
	// dropped).
	if oldest := st.commitSeq + 1; oldest <= st.appliedSeq &&
		oldest >= st.ringStart && oldest < st.ringStart+uint64(len(st.ringTimes)) {
		ps.LagAgeNs = now - st.ringTimes[oldest-st.ringStart]
	}
	ps.HandoffsInFlight = len(st.joiners)
	for sub, cursor := range st.feedSubs {
		ps.FeedSubscribers = append(ps.FeedSubscribers, status.FeedSubscriber{Peer: int(sub), Cursor: cursor})
	}
	sort.Slice(ps.FeedSubscribers, func(i, j int) bool {
		return ps.FeedSubscribers[i].Peer < ps.FeedSubscribers[j].Peer
	})
	return ps
}

// Ready reports whether this server can currently meet its durability
// contract: every partition it primaries must reach write quorum with
// unsuspected replicas, no snapshot replay may be in flight locally, and
// no handoff stream may be mid-flight to a joiner. Unreplicated clusters
// are always ready.
func (s *Server) Ready() status.Readiness {
	var reasons []string
	if s.cfg.Route != nil {
		s.replMu.Lock()
		parts := make([]int, 0, len(s.repl))
		for p := range s.repl {
			parts = append(parts, p)
		}
		sort.Ints(parts)
		for _, p := range parts {
			st := s.repl[p]
			if st.joining {
				reasons = append(reasons, fmt.Sprintf("partition %d: snapshot replay in flight", p))
				continue
			}
			if !st.primary {
				continue
			}
			a := s.cfg.Route.Assignment(p)
			if a.Primary != int32(s.cfg.ID) {
				continue // stale local flag; reconcileRoles will demote
			}
			live := 1 // self
			for _, f := range a.Followers {
				if !s.isSuspect(int(f)) {
					live++
				}
			}
			if q := a.Quorum(); live < q {
				reasons = append(reasons, fmt.Sprintf("partition %d: %d live replicas below quorum %d", p, live, q))
			}
			if n := len(st.joiners); n > 0 {
				reasons = append(reasons, fmt.Sprintf("partition %d: %d handoff stream(s) in flight", p, n))
			}
		}
		s.replMu.Unlock()
	}
	return status.Readiness{Ready: len(reasons) == 0, Reasons: reasons}
}

// handleEventsReq serves a wire pull of the event journal, JSON-encoded in
// Blob (the PR 5 blob-pull shape: ReqID routes the reply).
func (s *Server) handleEventsReq(from int, msg wire.Message) {
	resp := wire.Message{Kind: wire.KindEventsResp, ReqID: msg.ReqID}
	blob, err := json.Marshal(s.Events())
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.Blob = blob
	}
	s.send(from, resp)
}

// handleStatusReq serves a wire pull of the status document, JSON-encoded
// in Blob.
func (s *Server) handleStatusReq(from int, msg wire.Message) {
	resp := wire.Message{Kind: wire.KindStatusResp, ReqID: msg.ReqID}
	blob, err := json.Marshal(s.Status())
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.Blob = blob
	}
	s.send(from, resp)
}

// introspectPull runs one request/response round of an introspection kind
// against one backend and returns the JSON payload.
func (c *Client) introspectPull(srv int, kind wire.Kind, deadline time.Time) ([]byte, error) {
	if c.tr == nil {
		return nil, errors.New("core: client not bound to a transport")
	}
	reqID := c.reqSeq.Add(1)
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	c.reqs[reqID] = ch
	c.mu.Unlock()
	if err := c.tr.Send(srv, wire.Message{Kind: kind, ReqID: reqID}); err != nil {
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Err != "" {
			return nil, errors.New(resp.Err)
		}
		return resp.Blob, nil
	case <-time.After(time.Until(deadline)):
		c.mu.Lock()
		delete(c.reqs, reqID)
		c.mu.Unlock()
		return nil, fmt.Errorf("core: introspection pull from server %d timed out", srv)
	}
}

// ServerEvents pulls one backend's event journal.
func (c *Client) ServerEvents(srv int, timeout time.Duration) ([]events.Event, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	blob, err := c.introspectPull(srv, wire.KindEventsReq, time.Now().Add(timeout))
	if err != nil {
		return nil, err
	}
	var evs []events.Event
	if err := json.Unmarshal(blob, &evs); err != nil {
		return nil, fmt.Errorf("core: bad events payload from server %d: %v", srv, err)
	}
	return evs, nil
}

// ClusterEvents pulls every backend's journal and merges the entries into
// one timeline, ordered by wall-clock stamp (ties: server, then per-server
// sequence). Best-effort across a degraded cluster: the pulls run
// concurrently so a dead server consumes only its own timeout instead of
// starving the rest of the fleet, unreachable servers are skipped, and the
// call errors only when no server answered.
func (c *Client) ClusterEvents(timeout time.Duration) ([]events.Event, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	n := c.part.N()
	perSrv := make([][]events.Event, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for srv := 0; srv < n; srv++ {
		wg.Add(1)
		go func(srv int) {
			defer wg.Done()
			blob, err := c.introspectPull(srv, wire.KindEventsReq, deadline)
			if err != nil {
				errs[srv] = err
				return
			}
			var evs []events.Event
			if err := json.Unmarshal(blob, &evs); err != nil {
				errs[srv] = fmt.Errorf("core: bad events payload from server %d: %v", srv, err)
				return
			}
			perSrv[srv] = evs
		}(srv)
	}
	wg.Wait()
	var all []events.Event
	var lastErr error
	answered := 0
	for srv := 0; srv < n; srv++ {
		if errs[srv] != nil {
			lastErr = errs[srv]
			continue
		}
		all = append(all, perSrv[srv]...)
		answered++
	}
	if answered == 0 && lastErr != nil {
		return nil, lastErr
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].TimeUnixNano != all[j].TimeUnixNano {
			return all[i].TimeUnixNano < all[j].TimeUnixNano
		}
		if all[i].Server != all[j].Server {
			return all[i].Server < all[j].Server
		}
		return all[i].Seq < all[j].Seq
	})
	return all, nil
}

// ServerStatus pulls one backend's status document.
func (c *Client) ServerStatus(srv int, timeout time.Duration) (status.Server, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	blob, err := c.introspectPull(srv, wire.KindStatusReq, time.Now().Add(timeout))
	if err != nil {
		return status.Server{}, err
	}
	var st status.Server
	if err := json.Unmarshal(blob, &st); err != nil {
		return status.Server{}, fmt.Errorf("core: bad status payload from server %d: %v", srv, err)
	}
	return st, nil
}

// ClusterStatus pulls every backend's status document, ordered by server
// id. Best-effort like ClusterEvents: the pulls run concurrently so a dead
// server consumes only its own timeout, unreachable servers are skipped,
// and the call errors only when no server answered.
func (c *Client) ClusterStatus(timeout time.Duration) ([]status.Server, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	n := c.part.N()
	perSrv := make([]*status.Server, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for srv := 0; srv < n; srv++ {
		wg.Add(1)
		go func(srv int) {
			defer wg.Done()
			blob, err := c.introspectPull(srv, wire.KindStatusReq, deadline)
			if err != nil {
				errs[srv] = err
				return
			}
			var st status.Server
			if err := json.Unmarshal(blob, &st); err != nil {
				errs[srv] = fmt.Errorf("core: bad status payload from server %d: %v", srv, err)
				return
			}
			perSrv[srv] = &st
		}(srv)
	}
	wg.Wait()
	var all []status.Server
	var lastErr error
	for srv := 0; srv < n; srv++ {
		if errs[srv] != nil {
			lastErr = errs[srv]
			continue
		}
		all = append(all, *perSrv[srv])
	}
	if len(all) == 0 && lastErr != nil {
		return nil, lastErr
	}
	return all, nil
}
