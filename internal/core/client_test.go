package core

import (
	"reflect"
	"testing"
	"time"

	"graphtrek/internal/model"
	"graphtrek/internal/query"
)

func TestSortedUnique(t *testing.T) {
	cases := []struct {
		in, want []model.VertexID
	}{
		{nil, nil},
		{[]model.VertexID{3, 1, 2}, []model.VertexID{1, 2, 3}},
		{[]model.VertexID{5, 5, 5}, []model.VertexID{5}},
		{[]model.VertexID{2, 1, 2, 1}, []model.VertexID{1, 2}},
		{[]model.VertexID{7}, []model.VertexID{7}},
	}
	for _, c := range cases {
		got := sortedUnique(append([]model.VertexID(nil), c.in...))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("sortedUnique(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClientUnboundErrors(t *testing.T) {
	c := NewClient(nil)
	if _, err := c.SubmitPlan(mustPlanT(t), SubmitOptions{}); err == nil {
		t.Error("unbound client SubmitPlan should error")
	}
	if _, err := c.SubmitPlanAsync(mustPlanT(t), SubmitOptions{}); err == nil {
		t.Error("unbound client SubmitPlanAsync should error")
	}
}

func mustPlanT(t *testing.T) *query.Plan {
	t.Helper()
	p, err := query.V(1).E("x").Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClientSideModeUnboundErrors(t *testing.T) {
	c := NewClient(nil)
	if _, err := c.SubmitPlan(mustPlanT(t), SubmitOptions{Mode: ModeClientSide}); err == nil {
		t.Error("unbound client-side submit should error")
	}
}

func TestSubmitDistributesCoordinators(t *testing.T) {
	// With Coordinator: -1, successive traversals should not all pick the
	// same backend (the paper's "selected backend server" rotates).
	c := newCluster(t, 4, nil)
	loadAuditGraph(t, c)
	coords := map[int]bool{}
	for i := 0; i < 12; i++ {
		h, err := c.client.SubmitPlanAsync(mustPlan(t, query.V(1).E("run")),
			SubmitOptions{Mode: ModeGraphTrek, Coordinator: -1})
		if err != nil {
			t.Fatal(err)
		}
		coords[h.Coordinator()] = true
		if _, err := h.Wait(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if len(coords) < 2 {
		t.Errorf("12 traversals used only coordinators %v", coords)
	}
}

func TestTravelIDsUniquePerClient(t *testing.T) {
	c := newCluster(t, 2, nil)
	loadAuditGraph(t, c)
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		h, err := c.client.SubmitPlanAsync(mustPlan(t, query.V(1).E("run")),
			SubmitOptions{Mode: ModeSync, Coordinator: 0})
		if err != nil {
			t.Fatal(err)
		}
		if seen[h.TravelID()] {
			t.Fatalf("duplicate travel id %d", h.TravelID())
		}
		seen[h.TravelID()] = true
		if _, err := h.Wait(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
}
