// Package core implements the paper's primary contribution: the GraphTrek
// server-side traversal engines. One Server runs next to each backend
// storage partition; a traversal is submitted by a Client to one server,
// which becomes that traversal's coordinator (§IV-A). Four execution modes
// share the same storage, language and message plumbing:
//
//   - ModeSync (Sync-GT, §VI): level-synchronous BFS with a controller
//     barrier between steps; data still flows server-to-server.
//   - ModeAsyncPlain (Async-GT, §VII): plain asynchronous execution —
//     servers forward the traversal immediately, with no dedup cache, no
//     priority scheduling, no merging.
//   - ModeGraphTrek: asynchronous execution plus the two §V optimizations
//     (traversal-affiliate caching; execution scheduling and merging).
//   - ModeClientSide (Fig 2a): the client drives each step itself,
//     aggregating intermediate frontiers — the design the paper argues
//     against, implemented as a baseline.
//
// Correctness machinery shared by the server-side modes:
//
//   - status and progress tracing (§IV-C): every traversal execution is
//     registered (created) at the coordinator before it can be observed
//     terminating, and a traversal completes exactly when the created and
//     terminated sets coincide — a quiescence-detection ledger that
//     tolerates cross-server message reordering;
//   - traversal return (§IV-D): rtn()-marked vertices redirect downstream
//     reporting destinations, so a marked vertex is returned iff one of its
//     descendant paths reaches the end of the chain;
//   - silent-failure detection: a coordinator watchdog fails the traversal
//     if the ledger stops making progress (e.g. a server drops requests).
package core

import (
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/metrics"
	"graphtrek/internal/partition"
	"graphtrek/internal/route"
	"graphtrek/internal/rpc"
	"graphtrek/internal/simio"
)

// Mode selects the traversal execution strategy. The value travels in
// StartTravel messages, so the numeric codes are part of the wire format.
type Mode uint8

const (
	// ModeSync is the synchronous baseline (Sync-GT).
	ModeSync Mode = iota
	// ModeAsyncPlain is asynchronous traversal without optimizations
	// (Async-GT).
	ModeAsyncPlain
	// ModeGraphTrek is asynchronous traversal with traversal-affiliate
	// caching and execution scheduling/merging — the paper's system.
	ModeGraphTrek
	// ModeClientSide is the client-driven baseline of Fig 2a.
	ModeClientSide
	// ModeAsyncCacheOnly ablates GraphTrek: cache on, scheduling and
	// merging off.
	ModeAsyncCacheOnly
	// ModeAsyncSchedOnly ablates GraphTrek: scheduling and merging on,
	// cache off.
	ModeAsyncSchedOnly
)

// String names the mode the way the paper's tables do.
func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "Sync-GT"
	case ModeAsyncPlain:
		return "Async-GT"
	case ModeGraphTrek:
		return "GraphTrek"
	case ModeClientSide:
		return "Client-GT"
	case ModeAsyncCacheOnly:
		return "Async+Cache"
	case ModeAsyncSchedOnly:
		return "Async+Sched"
	default:
		return "Unknown"
	}
}

// tuning is the feature matrix a mode expands to on each server.
type tuning struct {
	useCache bool // traversal-affiliate caching (§V-A)
	priority bool // smallest-step-first scheduling (§V-B)
	merge    bool // same-vertex execution merging (§V-B)
	gated    bool // controller barrier between steps (Sync-GT)
}

func (m Mode) tuning() tuning {
	switch m {
	case ModeSync:
		// Level-synchronous BFS deduplicates its frontier each step; the
		// cache provides exactly that visited-set behaviour.
		return tuning{useCache: true, gated: true}
	case ModeGraphTrek:
		return tuning{useCache: true, priority: true, merge: true}
	case ModeAsyncCacheOnly:
		return tuning{useCache: true}
	case ModeAsyncSchedOnly:
		return tuning{priority: true, merge: true}
	default: // ModeAsyncPlain, ModeClientSide
		return tuning{}
	}
}

// Config configures one backend server.
type Config struct {
	// ID is this server's node id on the transport (0..Servers-1).
	ID int
	// Store is the local graph partition.
	Store gstore.Graph
	// Part maps vertices to owning servers. Node ids 0..Part.N()-1 must be
	// backend servers; higher transport ids are clients.
	Part partition.Partitioner
	// IndexKeys lists property keys to secondary-index at boot (best
	// effort) so step-0 filters on them resolve via index pushdown instead
	// of a label scan. Requires a Store implementing gstore.PropertyIndex;
	// keys are silently skipped otherwise.
	IndexKeys []string
	// Disk is the simulated storage device; nil means no simulated
	// latency.
	Disk *simio.Disk
	// Workers sizes the server's shared executor pool (default 4): the
	// fixed number of goroutines draining the two-level scheduler on behalf
	// of every concurrent traversal. Per server, not per traversal — K
	// in-flight traversals still cost exactly Workers goroutines.
	Workers int
	// MaxQueueDepth bounds the executor queue's total buffered items across
	// all traversals (admission control). A batch that would exceed it is
	// rejected whole and surfaces as a retryable traversal error at the
	// client. Zero or negative means unbounded.
	MaxQueueDepth int
	// CacheCap bounds the traversal-affiliate cache (default 1<<20
	// entries; negative means unbounded).
	CacheCap int
	// BatchSize flushes a dispatch outbox early once it holds this many
	// entries (default 4096).
	BatchSize int
	// FlushLinger delays the quiescence-triggered outbox flush briefly so
	// batches arriving close together consolidate into one outgoing wave
	// per step instead of fragmenting. Zero disables the linger (fastest
	// for latency-free unit tests); simulated-disk deployments use a few
	// service times.
	FlushLinger time.Duration
	// TravelTimeout is the coordinator watchdog deadline for ledger
	// inactivity (default 30s; zero selects the default, negative
	// disables). It is the coarse backstop; with heartbeats enabled,
	// crashed peers are detected within a couple of HeartbeatInterval.
	TravelTimeout time.Duration
	// HeartbeatInterval enables the backend failure detector: each
	// backend beacons liveness to every other backend at this interval,
	// and a peer silent for SuspectAfter is suspected dead. Coordinators
	// then fail traversals with live executions on the suspect
	// immediately — peer-specific error, fast client retry — instead of
	// waiting out TravelTimeout. Zero disables the detector.
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a backend may stay silent before being
	// suspected dead (default 3 × HeartbeatInterval).
	SuspectAfter time.Duration
	// TraceCap sizes the server's execution-trace ring buffer: the last
	// TraceCap terminated executions keep a span (step, frontier size,
	// queue wait, cache/merge disposition, wall time) for the observability
	// endpoints and gtq -profile. Zero selects the default (8192); negative
	// disables tracing entirely.
	TraceCap int
	// SlowTravelNs makes a coordinator capture the full causal trace DAG of
	// any traversal whose end-to-end latency reaches this many nanoseconds:
	// it pulls every server's raw spans, assembles them, and retains the
	// result in a small bounded ring (see Server.SlowTravels and the obs
	// /traces/slow endpoint). Zero or negative disables capture. Requires
	// tracing (TraceCap >= 0) to observe anything.
	SlowTravelNs int64
	// Route, when set, enables per-partition replication, epoch-based
	// failover and online shard handoff: the view publishes the
	// epoch-stamped partition→(primary, followers) table every node in the
	// cluster shares via gossip. Part should be the same *route.View so
	// traversal dispatch follows failover automatically. Nil (the default)
	// disables replication entirely — identical behavior to the seed
	// cluster.
	Route *route.View
	// WriteTimeout bounds how long a primary holds a client write while
	// collecting its replication quorum before failing it as retryable
	// (default 5s).
	WriteTimeout time.Duration
	// ReplicationFactor is the replica count each partition was laid out
	// with. Primaries use it to decide whether a recovered peer should be
	// invited back into a replica set that shrank during its outage; zero
	// means unknown, and every recovered ex-replica is invited back.
	ReplicationFactor int
	// EventCap sizes the cluster event journal: the bounded ring of
	// typed control-plane transitions (suspicions, promotions, epoch
	// bumps, handoffs, backpressure bursts, slow-travel captures) served
	// at /events and by gtq -events. Zero selects 256; negative disables
	// the journal.
	EventCap int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.CacheCap == 0 {
		c.CacheCap = 1 << 20
	}
	if c.CacheCap < 0 {
		c.CacheCap = 0 // cache.New treats 0 as unbounded
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.TravelTimeout == 0 {
		c.TravelTimeout = 30 * time.Second
	}
	if c.TraceCap == 0 {
		c.TraceCap = 8192
	}
	if c.HeartbeatInterval > 0 && c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.EventCap == 0 {
		c.EventCap = 256
	}
	return c
}

// noopDisk is used when Config.Disk is nil.
var noopDisk = simio.NewDisk(0, 1)

// Metrics re-exports the per-server counter snapshot type.
type Metrics = metrics.Snapshot

// transport is the narrowed rpc surface the engine uses.
type transport = rpc.Transport

// scanBlock is the simulated-disk block id charged for index scans (seed
// selection); it is outside the vertex-id space.
const scanBlock = ^uint64(0)
