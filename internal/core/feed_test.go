package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/partition"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/route"
)

// TestFeedCommitFloor pins the commit high-watermark computation: the
// need-th highest follower ack, capped at the primary's applied sequence,
// with a 1-replica set committing at the applied sequence directly.
func TestFeedCommitFloor(t *testing.T) {
	st := &partRepl{appliedSeq: 10, ackedSeq: map[int32]uint64{1: 7, 2: 4}}
	cases := []struct {
		name      string
		followers []int32
		want      uint64
	}{
		// Quorum(3 replicas)=2: primary + 1 follower, floor = max follower ack.
		{"two followers", []int32{1, 2}, 7},
		// Quorum(2 replicas)=2: the single follower's ack bounds the floor.
		{"one follower", []int32{1}, 7},
		// Shrunk set: the primary alone is the quorum.
		{"no followers", nil, 10},
		// A follower that never acked holds the floor at zero.
		{"silent follower", []int32{3}, 0},
	}
	for _, tc := range cases {
		a := route.Assignment{Primary: 0, Followers: tc.followers}
		if got := commitFloorLocked(st, a); got != tc.want {
			t.Errorf("%s: commit floor = %d, want %d", tc.name, got, tc.want)
		}
	}
	// The follower ack can run ahead of the primary apply mid-handoff; the
	// floor must never outrun what the primary itself holds.
	ahead := &partRepl{appliedSeq: 5, ackedSeq: map[int32]uint64{1: 9}}
	if got := commitFloorLocked(ahead, route.Assignment{Followers: []int32{1}}); got != 5 {
		t.Errorf("floor with follower ahead = %d, want 5 (primary applied)", got)
	}
}

// TestMutateNamedOps drives the name-addressed mutation API end to end on a
// replicated cluster: adds intern their names and land on every replica,
// the returned id map matches the dictionary, deletes resolve read-only,
// and deleting a never-interned name is a no-op rather than an error.
func TestMutateNamedOps(t *testing.T) {
	c, _, views := newReplCluster(t, 3, 2, nil)
	view := views[3]
	ids, err := c.client.Mutate([]NamedMutation{
		{Op: NamedAddVertex, Name: "alice", Label: "User", Props: property.Map{"team": property.String("infra")}},
		{Op: NamedAddVertex, Name: "job-1", Label: "Execution"},
		{Op: NamedAddEdge, Src: "alice", Label: "run", Dst: "job-1", Props: property.Map{"ts": property.Int(5)}},
	}, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids["alice"] == 0 || ids["job-1"] == 0 {
		t.Fatalf("Mutate returned ids %v, want alice and job-1", ids)
	}
	got, err := c.client.ResolveNames([]string{"alice", "job-1"}, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != ids["alice"] || got[1] != ids["job-1"] {
		t.Fatalf("dictionary resolves %v, Mutate returned %v", got, ids)
	}
	for name, id := range ids {
		p := view.Partition(id)
		for _, r := range view.Assignment(p).Replicas() {
			if _, ok, err := c.stores[r].GetVertex(id); err != nil || !ok {
				t.Fatalf("vertex %q (%d) missing on replica %d (ok=%v err=%v)", name, id, r, ok, err)
			}
		}
	}
	edges := 0
	prim := int(view.Assignment(view.Partition(ids["alice"])).Primary)
	if err := c.stores[prim].ScanAllEdges(ids["alice"], func(model.Edge) bool { edges++; return true }); err != nil {
		t.Fatal(err)
	}
	if edges != 1 {
		t.Fatalf("alice has %d out-edges, want 1", edges)
	}

	// Re-adding a name updates in place under the same id.
	ids2, err := c.client.Mutate([]NamedMutation{
		{Op: NamedAddVertex, Name: "alice", Label: "User", Props: property.Map{"team": property.String("storage")}},
	}, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ids2["alice"] != ids["alice"] {
		t.Fatalf("re-add moved alice from id %d to %d", ids["alice"], ids2["alice"])
	}
	v, ok, _ := c.stores[prim].GetVertex(ids["alice"])
	if !ok || v.Props["team"] != property.String("storage") {
		t.Fatalf("re-add did not update properties: %+v", v)
	}

	// Deletes: edge first, then vertex; unknown names are no-ops.
	if _, err := c.client.Mutate([]NamedMutation{
		{Op: NamedDelEdge, Src: "alice", Label: "run", Dst: "job-1"},
		{Op: NamedDelVertex, Name: "job-1"},
		{Op: NamedDelVertex, Name: "never-interned"},
		{Op: NamedDelEdge, Src: "alice", Label: "run", Dst: "also-never-interned"},
	}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.stores[int(view.Assignment(view.Partition(ids["job-1"])).Primary)].GetVertex(ids["job-1"]); ok {
		t.Error("job-1 still present after NamedDelVertex")
	}
	edges = 0
	if err := c.stores[prim].ScanAllEdges(ids["alice"], func(model.Edge) bool { edges++; return true }); err != nil {
		t.Fatal(err)
	}
	if edges != 0 {
		t.Errorf("alice has %d out-edges after NamedDelEdge, want 0", edges)
	}
	if _, err := c.client.Mutate([]NamedMutation{{Op: NamedOp(99), Name: "x"}}, WriteOptions{}); err == nil || Retryable(err) {
		t.Errorf("unknown op must be a terminal error, got %v", err)
	}
}

// TestBulkLoadOrderAndOverwrite checks the bulk loader's two contracts:
// everything lands on every replica, and same-key writes apply in input
// order even when split across rounds (MaxBatch smaller than a partition's
// run) — the last write wins.
func TestBulkLoadOrderAndOverwrite(t *testing.T) {
	c, _, views := newReplCluster(t, 3, 2, nil)
	view := views[3]
	const n = 90
	var muts []gstore.Mutation
	ids := make([]model.VertexID, 0, n)
	for i := 0; i < n; i++ {
		id := model.VertexID(1000 + i)
		ids = append(ids, id)
		// Three generations of each vertex, interleaved across the whole
		// input, so every partition's run holds same-key rewrites spanning
		// multiple MaxBatch rounds.
		muts = append(muts, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: model.Vertex{
			ID: id, Label: "Doc", Props: property.Map{"gen": property.Int(1)},
		}})
	}
	for gen := int64(2); gen <= 3; gen++ {
		for _, id := range ids {
			muts = append(muts, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: model.Vertex{
				ID: id, Label: "Doc", Props: property.Map{"gen": property.Int(gen)},
			}})
		}
	}
	if err := c.client.BulkLoad(muts, BulkOptions{MaxBatch: 7}); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		p := view.Partition(id)
		for _, r := range view.Assignment(p).Replicas() {
			v, ok, err := c.stores[r].GetVertex(id)
			if err != nil || !ok {
				t.Fatalf("vertex %d missing on replica %d (ok=%v err=%v)", id, r, ok, err)
			}
			if view.Assignment(p).Primary == r && v.Props["gen"] != property.Int(3) {
				t.Fatalf("vertex %d gen = %v on primary %d, want 3 (order lost across rounds)", id, v.Props["gen"], r)
			}
		}
	}
	// Empty loads are a no-op; unreplicated clients fail terminally.
	if err := c.client.BulkLoad(nil, BulkOptions{}); err != nil {
		t.Errorf("empty BulkLoad: %v", err)
	}
	plain := NewClient(partition.NewHash(3))
	if err := plain.BulkLoad(muts[:1], BulkOptions{}); err == nil || Retryable(err) {
		t.Errorf("BulkLoad without a route table must fail terminally, got %v", err)
	}
}

// collectFeed appends every event a feed delivers into a shared slice until
// the feed closes.
func collectFeed(f *Feed, mu *sync.Mutex, out *[]FeedEvent) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range f.Events() {
			mu.Lock()
			*out = append(*out, ev)
			mu.Unlock()
		}
	}()
	return done
}

// TestStressFeedCursorResumeAcrossFailover is the change-feed chaos e2e: a
// subscriber streams one partition's committed mutations while the
// partition's primary is crash-stopped mid-stream. The subscription must
// hop to the promoted follower on its own and keep delivering — every acked
// write observed exactly once, sequence numbers contiguous across the
// epoch change, no duplicates and no gaps. A second subscription then
// resumes from a mid-stream cursor and must replay exactly the tail.
func TestStressFeedCursorResumeAcrossFailover(t *testing.T) {
	const (
		n            = 3
		hb           = 40 * time.Millisecond
		suspectAfter = 3 * hb
		before       = 12 // acked writes before the crash
		after        = 12 // acked writes after the crash
	)
	c, chaos, views := newReplCluster(t, n, 2, func(cfg *Config) {
		cfg.HeartbeatInterval = hb
		cfg.SuspectAfter = suspectAfter
	})
	clientView := views[n]
	p := clientView.Partition(1)
	victim := p
	promotee := (p + 1) % n

	feed, err := c.client.SubscribeFeed(p, FeedOptions{Refresh: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []FeedEvent
	done := collectFeed(feed, &mu, &events)

	// ackedWrite upserts one vertex through the quorum path, retrying the
	// same idempotent mutation until an ack lands (writes issued across the
	// failover window block on the dead primary until routes converge).
	written := make([]model.VertexID, 0, before+after)
	next := model.VertexID(1000)
	ackedWrite := func() {
		t.Helper()
		id := findFreeID(clientView, p, next)
		next = id + 1
		written = append(written, id)
		deadline := time.Now().Add(20 * time.Second)
		for {
			err := c.client.Write([]gstore.Mutation{
				{Op: gstore.OpPutVertex, Vertex: model.Vertex{ID: id, Label: "Event"}},
			}, WriteOptions{Timeout: 2 * time.Second})
			if err == nil {
				return
			}
			if !Retryable(err) || time.Now().After(deadline) {
				t.Fatalf("acked write %d never landed: %v", id, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	for i := 0; i < before; i++ {
		ackedWrite()
	}
	chaos[victim].Crash()
	pollUntil(t, 10*time.Second, "follower promotion", func() bool {
		return c.servers[promotee].Metrics().Promotions >= 1
	})
	for i := 0; i < after; i++ {
		ackedWrite()
	}

	// Every acked write must stream out. Retried acks may commit twice (a
	// timed-out round that actually landed re-commits under a new sequence),
	// so assert set coverage plus per-sequence contiguity, not a 1:1 count.
	wantIDs := make(map[model.VertexID]bool, len(written))
	for _, id := range written {
		wantIDs[id] = true
	}
	seen := make(map[model.VertexID]bool)
	pollUntil(t, 20*time.Second, "feed coverage of all acked writes", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, ev := range events {
			for _, m := range ev.Muts {
				seen[m.Vertex.ID] = true
			}
		}
		for id := range wantIDs {
			if !seen[id] {
				return false
			}
		}
		return true
	})
	mu.Lock()
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has sequence %d, want %d (gap or duplicate across failover)", i, ev.Seq, i+1)
		}
		if len(ev.Muts) != 1 {
			t.Fatalf("event %d carries %d mutations, want 1", i, len(ev.Muts))
		}
		if !wantIDs[ev.Muts[0].Vertex.ID] {
			t.Fatalf("event %d delivered unknown vertex %d", i, ev.Muts[0].Vertex.ID)
		}
	}
	total := len(events)
	lastEpoch := events[total-1].Epoch
	resumeAt := total / 2
	wantTail := make([]model.VertexID, 0, total-resumeAt)
	for _, ev := range events[resumeAt:] {
		wantTail = append(wantTail, ev.Muts[0].Vertex.ID)
	}
	mu.Unlock()
	if lastEpoch < 2 {
		t.Errorf("post-failover events stamped epoch %d, want >= 2", lastEpoch)
	}
	feed.Close()
	<-done

	// Cursor resume: a fresh subscription presenting a mid-stream cursor
	// replays exactly the tail, in order, against the promoted primary.
	resumed, err := c.client.SubscribeFeed(p, FeedOptions{Cursor: uint64(resumeAt), Refresh: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	var rmu sync.Mutex
	var replay []FeedEvent
	collectFeed(resumed, &rmu, &replay)
	pollUntil(t, 10*time.Second, "cursor-resume replay", func() bool {
		rmu.Lock()
		defer rmu.Unlock()
		return len(replay) >= total-resumeAt
	})
	rmu.Lock()
	defer rmu.Unlock()
	if len(replay) != total-resumeAt {
		t.Fatalf("resume from cursor %d replayed %d events, want %d", resumeAt, len(replay), total-resumeAt)
	}
	for i, ev := range replay {
		if ev.Seq != uint64(resumeAt+i+1) {
			t.Fatalf("replayed event %d has sequence %d, want %d", i, ev.Seq, resumeAt+i+1)
		}
		if ev.Muts[0].Vertex.ID != wantTail[i] {
			t.Fatalf("replayed event %d is vertex %d, want %d", i, ev.Muts[0].Vertex.ID, wantTail[i])
		}
	}
}

// TestStressFeedTraversalDifferentialOracle runs traversals, named writes
// and full-cluster feed consumption concurrently, then checks the streams
// against each other: a shadow store built purely from feed events must
// answer the audit query identically to the live cluster — the feed is a
// complete, ordered, committed view of the write stream, interleaved safely
// with traversal reads.
func TestStressFeedTraversalDifferentialOracle(t *testing.T) {
	const parts = 3
	c, _, _ := newReplCluster(t, parts, 2, nil)

	shadow := gstore.NewMemStore()
	var smu sync.Mutex
	feeds := make([]*Feed, parts)
	var collectors []chan struct{}
	for p := 0; p < parts; p++ {
		f, err := c.client.SubscribeFeed(p, FeedOptions{Refresh: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		feeds[p] = f
		done := make(chan struct{})
		collectors = append(collectors, done)
		go func(f *Feed) {
			defer close(done)
			last := uint64(0)
			for ev := range f.Events() {
				if ev.Seq != last+1 {
					t.Errorf("partition %d feed jumped %d -> %d", ev.Part, last, ev.Seq)
				}
				last = ev.Seq
				smu.Lock()
				for _, m := range ev.Muts {
					if err := m.Apply(shadow); err != nil {
						t.Errorf("feed replay: %v", err)
					}
				}
				smu.Unlock()
			}
		}(f)
	}

	writeAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("User").E("run").E("read"))

	// Churn: four writers extend the graph with User->Execution->File chains
	// through the named-mutation path while two readers traverse through it.
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 6; i++ {
				u := fmt.Sprintf("u-%d-%d", w, i)
				x := fmt.Sprintf("x-%d-%d", w, i)
				y := fmt.Sprintf("y-%d-%d", w, i)
				if _, err := c.client.Mutate([]NamedMutation{
					{Op: NamedAddVertex, Name: u, Label: "User"},
					{Op: NamedAddVertex, Name: x, Label: "Execution"},
					{Op: NamedAddVertex, Name: y, Label: "File", Props: property.Map{"type": property.String("text")}},
					{Op: NamedAddEdge, Src: u, Label: "run", Dst: x},
					{Op: NamedAddEdge, Src: x, Label: "read", Dst: y},
				}, WriteOptions{Timeout: 10 * time.Second}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	readErrs := make(chan error, 2)
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				_, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: -1, Timeout: 10 * time.Second, Retries: 2})
				if err != nil && !Retryable(err) {
					readErrs <- err
					return
				}
			}
		}()
	}
	// Wait for the writers, then stop the readers.
	writersDone := make(chan struct{})
	go func() { writers.Wait(); close(writersDone) }()
	select {
	case err := <-readErrs:
		t.Fatalf("concurrent traversal failed terminally: %v", err)
	case <-writersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("writers stuck")
	}
	close(stopReads)
	readers.Wait()

	// Differential oracle: once the feeds drain, the shadow store answers
	// the query exactly like the live cluster.
	want, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: -1, Timeout: 10 * time.Second, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	pollUntil(t, 15*time.Second, "shadow store convergence", func() bool {
		smu.Lock()
		defer smu.Unlock()
		ref, err := query.Reference(shadow, plan)
		if err != nil {
			return false
		}
		got := append([]model.VertexID(nil), ref.Results...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		return sameIDs(got, want)
	})
	for _, f := range feeds {
		f.Close()
	}
	for _, done := range collectors {
		<-done
	}
	for _, f := range feeds {
		if err := f.Err(); err != nil {
			t.Errorf("feed closed with terminal error: %v", err)
		}
	}
}

// TestStressMutateCacheIndexCoherence hammers one indexed, read-cached
// cluster with concurrent named mutations (property flips on indexed keys)
// and traversals whose final step filters on that index. After the churn,
// the traversal must see exactly the final committed state — a stale read
// cache or unmaintained index surfaces as phantom or missing results.
func TestStressMutateCacheIndexCoherence(t *testing.T) {
	c, _, _ := newReplCluster(t, 3, 2, func(cfg *Config) {
		cfg.Store = gstore.NewCachedGraph(cfg.Store, 1<<20)
		cfg.IndexKeys = []string{"type"}
	})
	const docs = 12
	if _, err := c.client.Mutate([]NamedMutation{
		{Op: NamedAddVertex, Name: "root", Label: "Job"},
	}, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, query.VLabel("Job").E("emit").Va("type", property.EQ, "text"))

	var wg sync.WaitGroup
	finalType := make([]string, docs)
	for d := 0; d < docs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			name := fmt.Sprintf("doc-%d", d)
			// Flip the indexed property several times; the last value is
			// deterministic per doc.
			vals := []string{"text", "bin", "text", "bin"}
			if d%2 == 0 {
				vals = append(vals, "text")
			} else {
				vals = append(vals, "bin")
			}
			finalType[d] = vals[len(vals)-1]
			for i, v := range vals {
				muts := []NamedMutation{
					{Op: NamedAddVertex, Name: name, Label: "Doc", Props: property.Map{"type": property.String(v)}},
				}
				if i == 0 {
					muts = append(muts, NamedMutation{Op: NamedAddEdge, Src: "root", Label: "emit", Dst: name})
				}
				if _, err := c.client.Mutate(muts, WriteOptions{Timeout: 10 * time.Second}); err != nil {
					t.Errorf("doc %d: %v", d, err)
					return
				}
			}
		}(d)
	}
	stopReads := make(chan struct{})
	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: -1, Timeout: 10 * time.Second, Retries: 2}); err != nil && !Retryable(err) {
				t.Errorf("concurrent traversal: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stopReads)
	<-readsDone

	// Expected final state: the text docs' interned ids.
	var wantNames []string
	for d := 0; d < docs; d++ {
		if finalType[d] == "text" {
			wantNames = append(wantNames, fmt.Sprintf("doc-%d", d))
		}
	}
	ids, err := c.client.ResolveNames(wantNames, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]model.VertexID(nil), ids...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	pollUntil(t, 10*time.Second, "coherent post-churn traversal", func() bool {
		got, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: -1, Timeout: 10 * time.Second, Retries: 2})
		if err != nil {
			return false
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		return sameIDs(got, want)
	})
	// The sync engine (separate read path) agrees.
	got, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeSync, Coordinator: -1, Timeout: 10 * time.Second, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !sameIDs(got, want) {
		t.Errorf("sync engine sees %v through cache+index, want %v", got, want)
	}
}

// TestFeedSubscribeErrors pins the subscription failure modes: bad
// partitions and ahead-of-history cursors are terminal; subscribing against
// a non-primary is redirected, not an error.
func TestFeedSubscribeErrors(t *testing.T) {
	c, _, _ := newReplCluster(t, 3, 2, nil)
	if _, err := c.client.SubscribeFeed(99, FeedOptions{}); err == nil || !strings.Contains(err.Error(), "no such partition") {
		t.Errorf("bad partition: %v", err)
	}
	f, err := c.client.SubscribeFeed(0, FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.client.SubscribeFeed(0, FeedOptions{}); err == nil {
		t.Error("duplicate subscription accepted")
	}
	f.Close()
	if err := f.Err(); err != nil {
		t.Errorf("clean close left terminal error: %v", err)
	}
	// After Close the slot frees.
	f2, err := c.client.SubscribeFeed(0, FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()

	plain := NewClient(partition.NewHash(3))
	if _, err := plain.SubscribeFeed(0, FeedOptions{}); err == nil || Retryable(err) {
		t.Errorf("unreplicated client must fail terminally, got %v", err)
	}
}
