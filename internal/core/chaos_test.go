package core

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/rpc"
	"graphtrek/internal/simio"
)

// TestChaosDifferentialAllModes replays seeded message duplication and
// delay against every engine and demands the exact reference vertex set.
// The engines' correctness machinery — ledger idempotency under duplicate
// registrations, rtn() return-once records, result-set semantics — must
// absorb the faults without changing any answer. Drops and reordering are
// deliberately excluded: a dropped message is a failure (covered by the
// retry tests), and reordering breaks the per-pair FIFO contract the
// completion argument relies on.
func TestChaosDifferentialAllModes(t *testing.T) {
	plans := []struct {
		name string
		q    *query.Travel
	}{
		{"chain", query.VLabel("User").E("run").E("read")},
		{"rtn", query.VLabel("Execution").Rtn().E("read").Va("type", property.EQ, "text")},
	}
	for _, seed := range []int64{1, 7, 42} {
		c, _ := newChaosCluster(t, 3, func(id int) rpc.ChaosConfig {
			return rpc.ChaosConfig{
				Seed:      seed*31 + int64(id),
				DupProb:   0.15,
				DelayProb: 0.3,
				MaxDelay:  3 * time.Millisecond,
			}
		}, nil)
		loadAuditGraph(t, c)
		for _, p := range plans {
			plan := mustPlan(t, p.q)
			want, err := query.Reference(c.global, plan)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range allModes {
				got, err := c.client.SubmitPlan(plan, SubmitOptions{
					Mode: mode, Coordinator: 0, Timeout: 30 * time.Second,
				})
				if err != nil {
					t.Fatalf("seed %d %s %v: %v", seed, p.name, mode, err)
				}
				if !sameIDs(got, want.Results) {
					t.Errorf("seed %d %s %v: got %v want %v", seed, p.name, mode, got, want.Results)
				}
			}
		}
	}
}

// TestCrashedBackendFailsFastAndRetrySucceeds is the crash-recovery
// end-to-end test: a backend crash-stops mid-traversal, the heartbeat
// detector fails the traversal within a couple of intervals (far under the
// 15s watchdog), and a retried submission routes around the dead peer and
// returns the exact results. The victim is chosen so it owns none of the
// query's vertices — it participates only through its scan-seed root
// execution, whose termination report the crash swallows.
func TestCrashedBackendFailsFastAndRetrySucceeds(t *testing.T) {
	const (
		n      = 3
		victim = 0
		coord  = 2
		hb     = 25 * time.Millisecond
	)
	c, chaos := newChaosCluster(t, n, nil, func(cfg *Config) {
		cfg.HeartbeatInterval = hb // SuspectAfter defaults to 3x
		cfg.TravelTimeout = 15 * time.Second
		cfg.Disk = simio.NewDisk(30*time.Millisecond, 2)
		cfg.Workers = 2
	})
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("User").E("run"))
	want, err := query.Reference(c.global, plan)
	if err != nil {
		t.Fatal(err)
	}
	// The scenario requires the victim to own no query-relevant vertex;
	// guard against the partitioner or test graph changing under us.
	for _, id := range []model.VertexID{1, 2, 10, 11, 12} {
		if c.part.Owner(id) == victim {
			t.Fatalf("test setup broken: victim %d owns vertex %d", victim, id)
		}
	}
	before := runtime.NumGoroutine()

	// Phase 1: crash the victim right after submission. Its scan-seed
	// execution is registered at the coordinator but its termination never
	// arrives, so only the failure detector can end this traversal.
	h, err := c.client.SubmitPlanAsync(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	chaos[victim].Crash()
	start := time.Now()
	_, werr := h.Wait(10 * time.Second)
	elapsed := time.Since(start)
	if werr == nil {
		t.Fatal("traversal touching a crashed backend should fail")
	}
	if !strings.Contains(werr.Error(), "suspected dead") {
		t.Errorf("want a suspected-dead failure, got: %v", werr)
	}
	if elapsed > 2*time.Second {
		t.Errorf("detection took %v; heartbeats should fail the traversal well under the 15s watchdog", elapsed)
	}

	// Detection must be visible in the metrics: at least the coordinator
	// (locally or via gossip) counted a peer-down event.
	var peerDowns int64
	for i, s := range c.servers {
		if i != victim {
			peerDowns += s.Metrics().PeerDownEvents
		}
	}
	if peerDowns < 1 {
		t.Errorf("PeerDownEvents = %d, want >= 1", peerDowns)
	}

	// Phase 2: the §IV-C restart policy. The coordinator now suspects the
	// victim and excludes it from the new traversal, which completes with
	// the full result set (the victim owns nothing the query needs).
	got, err := c.client.SubmitPlan(plan, SubmitOptions{
		Mode: ModeGraphTrek, Coordinator: coord, Timeout: 10 * time.Second, Retries: 2,
	})
	if err != nil {
		t.Fatalf("retry after crash: %v", err)
	}
	if !sameIDs(got, want.Results) {
		t.Errorf("retry results %v, want %v", got, want.Results)
	}

	// No goroutine leaks beyond the crashed server's own stuck travel
	// workers (at most cfg.Workers, if the StartTravel broadcast beat the
	// crash): everything the failed traversal spawned must wind down.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+8 {
			break
		} else if time.Now().After(deadline) {
			t.Errorf("goroutines grew from %d to %d; failed traversal leaked", before, g)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDetectorRecoversAfterPartitionHeals drives the suspect lifecycle both
// ways: a partitioned backend is suspected (traversals fail fast), and once
// the partition heals its heartbeats clear the suspicion, after which
// traversals use all partitions again and return complete results.
func TestDetectorRecoversAfterPartitionHeals(t *testing.T) {
	c, chaos := newChaosCluster(t, 2, nil, func(cfg *Config) {
		cfg.HeartbeatInterval = 20 * time.Millisecond
		cfg.TravelTimeout = 15 * time.Second
	})
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("User").E("run").E("read"))
	want, err := query.Reference(c.global, plan)
	if err != nil {
		t.Fatal(err)
	}

	chaos[1].Crash()
	// Wait for server 0 to suspect server 1.
	deadline := time.Now().Add(5 * time.Second)
	for c.servers[0].Metrics().PeerDownEvents == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server 0 never suspected the crashed peer")
		}
		time.Sleep(10 * time.Millisecond)
	}

	chaos[1].Revive()
	// Heartbeats resume; once the suspicion clears, a scan-seeded
	// traversal includes server 1 again and the full result set comes
	// back. Right after Revive the first attempts may still exclude the
	// partition, so poll.
	deadline = time.Now().Add(5 * time.Second)
	for {
		got, err := c.client.SubmitPlan(plan, SubmitOptions{
			Mode: ModeGraphTrek, Coordinator: 0, Timeout: 5 * time.Second,
		})
		if err == nil && sameIDs(got, want.Results) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered: got %v (err %v), want %v", got, err, want.Results)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
