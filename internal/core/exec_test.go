package core

import (
	"testing"

	"graphtrek/internal/query"
	"graphtrek/internal/wire"
)

func TestOutboxSetDedupsWithinBatch(t *testing.T) {
	box := &outboxSet{}
	e := wire.Entry{Vertex: 7, Anc: 1, AncStep: 0, Dest: 2}
	if !box.add(e) {
		t.Fatal("first add should be fresh")
	}
	if box.add(e) {
		t.Fatal("second add of identical entry should be suppressed")
	}
	if len(box.list) != 1 {
		t.Fatalf("list = %d entries", len(box.list))
	}
}

func TestOutboxSetDistinguishesProvenance(t *testing.T) {
	box := &outboxSet{}
	base := wire.Entry{Vertex: 7, Anc: 1, AncStep: 0, Dest: 2}
	variants := []wire.Entry{
		{Vertex: 8, Anc: 1, AncStep: 0, Dest: 2},  // different vertex
		{Vertex: 7, Anc: 2, AncStep: 0, Dest: 2},  // different ancestor
		{Vertex: 7, Anc: 1, AncStep: 1, Dest: 2},  // different ancestor step
		{Vertex: 7, Anc: 1, AncStep: 0, Dest: -1}, // different destination
	}
	box.add(base)
	for i, v := range variants {
		if !box.add(v) {
			t.Errorf("variant %d wrongly suppressed: rtn provenance must not collapse", i)
		}
	}
}

func TestOutboxSetSeenSurvivesTake(t *testing.T) {
	// The send-once-per-traversal property: draining the pending list must
	// not forget what was already sent.
	box := &outboxSet{}
	e1 := wire.Entry{Vertex: 1}
	e2 := wire.Entry{Vertex: 2}
	box.add(e1)
	got := box.take()
	if len(got) != 1 || got[0] != e1 {
		t.Fatalf("take = %v", got)
	}
	if box.add(e1) {
		t.Fatal("re-adding a flushed entry must be suppressed")
	}
	if !box.add(e2) {
		t.Fatal("a genuinely new entry must pass after take")
	}
	if got := box.take(); len(got) != 1 || got[0] != e2 {
		t.Fatalf("second take = %v", got)
	}
	if got := box.take(); len(got) != 0 {
		t.Fatalf("empty take = %v", got)
	}
}

func TestExecAccCountdown(t *testing.T) {
	c := newCluster(t, 1, nil)
	ts := &travelState{
		id:     1,
		outbox: make(map[outKey]*outboxSet),
		sigbox: make(map[int]*outboxSet),
		rtn:    make(map[rtnKey]*rtnRec),
	}
	acc := &execAcc{id: 99}
	acc.pending.Store(3)
	s := c.servers[0]
	s.itemDone(ts, acc)
	s.itemDone(ts, acc)
	ts.flushMu.Lock()
	if len(ts.ended) != 0 {
		t.Fatal("execution ended early")
	}
	ts.flushMu.Unlock()
	s.itemDone(ts, acc)
	ts.flushMu.Lock()
	defer ts.flushMu.Unlock()
	if len(ts.ended) != 1 || ts.ended[0] != 99 {
		t.Fatalf("ended = %v", ts.ended)
	}
}

func TestNewExecIDsUniqueAcrossServers(t *testing.T) {
	c := newCluster(t, 3, nil)
	seen := make(map[uint64]bool)
	for _, s := range c.servers {
		for i := 0; i < 1000; i++ {
			id := s.newExecID()
			if seen[id] {
				t.Fatalf("duplicate exec id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestBatchSizeTriggersEarlyFlush(t *testing.T) {
	// With BatchSize 4, a step producing many entries to one target must
	// split into multiple dispatch messages — and still return the right
	// answer.
	c := newCluster(t, 2, func(cfg *Config) { cfg.BatchSize = 4 })
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V().E("run").E("read")))
}
