package core

import (
	"errors"
	"testing"

	"graphtrek/internal/model"
	"graphtrek/internal/query"
	"graphtrek/internal/sched"
	"graphtrek/internal/wire"
)

var errForTest = errors.New("simulated storage failure")

func TestOutboxSetDedupsWithinBatch(t *testing.T) {
	box := &outboxSet{}
	e := wire.Entry{Vertex: 7, Anc: 1, AncStep: 0, Dest: 2}
	if !box.add(e, 1) {
		t.Fatal("first add should be fresh")
	}
	if box.add(e, 2) {
		t.Fatal("second add of identical entry should be suppressed")
	}
	if len(box.list) != 1 {
		t.Fatalf("list = %d entries", len(box.list))
	}
}

func TestOutboxSetDistinguishesProvenance(t *testing.T) {
	box := &outboxSet{}
	base := wire.Entry{Vertex: 7, Anc: 1, AncStep: 0, Dest: 2}
	variants := []wire.Entry{
		{Vertex: 8, Anc: 1, AncStep: 0, Dest: 2},  // different vertex
		{Vertex: 7, Anc: 2, AncStep: 0, Dest: 2},  // different ancestor
		{Vertex: 7, Anc: 1, AncStep: 1, Dest: 2},  // different ancestor step
		{Vertex: 7, Anc: 1, AncStep: 0, Dest: -1}, // different destination
	}
	box.add(base, 1)
	for i, v := range variants {
		if !box.add(v, 1) {
			t.Errorf("variant %d wrongly suppressed: rtn provenance must not collapse", i)
		}
	}
}

func TestOutboxSetSeenSurvivesTake(t *testing.T) {
	// The send-once-per-traversal property: draining the pending list must
	// not forget what was already sent.
	box := &outboxSet{}
	e1 := wire.Entry{Vertex: 1}
	e2 := wire.Entry{Vertex: 2}
	box.add(e1, 11)
	got, parent := box.take()
	if len(got) != 1 || got[0] != e1 {
		t.Fatalf("take = %v", got)
	}
	if parent != 11 {
		t.Fatalf("parent = %d, want the first contributor", parent)
	}
	if box.add(e1, 12) {
		t.Fatal("re-adding a flushed entry must be suppressed")
	}
	if !box.add(e2, 13) {
		t.Fatal("a genuinely new entry must pass after take")
	}
	if got, parent := box.take(); len(got) != 1 || got[0] != e2 || parent != 13 {
		t.Fatalf("second take = %v parent %d", got, parent)
	}
	if got, parent := box.take(); len(got) != 0 || parent != 0 {
		t.Fatalf("empty take = %v parent %d", got, parent)
	}
}

func TestExecAccCountdown(t *testing.T) {
	c := newCluster(t, 1, nil)
	ts := &travelState{
		id:     1,
		outbox: make(map[outKey]*outboxSet),
		sigbox: make(map[int]*outboxSet),
		rtn:    make(map[rtnKey]*rtnRec),
	}
	acc := &execAcc{id: 99}
	acc.pending.Store(3)
	items := make([]sched.Item, 3)
	for i := range items {
		items[i] = sched.Item{Travel: 1, Vertex: model.VertexID(i), Exec: acc}
	}
	ts.inProcess.Add(3)
	s := c.servers[0]
	s.finishItems(ts, items[:2], nil)
	ts.flushMu.Lock()
	if len(ts.ended) != 0 {
		t.Fatal("execution ended early")
	}
	ts.flushMu.Unlock()
	s.finishItems(ts, items[2:], nil)
	ts.flushMu.Lock()
	if len(ts.ended) != 1 || ts.ended[0] != 99 {
		t.Fatalf("ended = %v", ts.ended)
	}
	ts.flushMu.Unlock()
	if ts.inProcess.Load() != 0 {
		t.Fatalf("inProcess = %d after all items finished", ts.inProcess.Load())
	}
}

func TestFinishItemsRecordsFailureOncePerExec(t *testing.T) {
	c := newCluster(t, 1, nil)
	ts := &travelState{
		id:     1,
		outbox: make(map[outKey]*outboxSet),
		sigbox: make(map[int]*outboxSet),
		rtn:    make(map[rtnKey]*rtnRec),
	}
	acc := &execAcc{id: 7}
	acc.pending.Store(2)
	items := []sched.Item{
		{Travel: 1, Vertex: 1, Exec: acc},
		{Travel: 1, Vertex: 2, Exec: acc},
	}
	ts.inProcess.Add(2)
	c.servers[0].finishItems(ts, items, errForTest)
	ts.flushMu.Lock()
	defer ts.flushMu.Unlock()
	if len(ts.errs) != 1 {
		t.Fatalf("errs = %v, want the shared failure recorded once", ts.errs)
	}
	if len(ts.ended) != 1 || ts.ended[0] != 7 {
		t.Fatalf("ended = %v, want the execution terminated despite failure", ts.ended)
	}
}

func TestNewExecIDsUniqueAcrossServers(t *testing.T) {
	c := newCluster(t, 3, nil)
	seen := make(map[uint64]bool)
	for _, s := range c.servers {
		for i := 0; i < 1000; i++ {
			id := s.newExecID()
			if seen[id] {
				t.Fatalf("duplicate exec id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestBatchSizeTriggersEarlyFlush(t *testing.T) {
	// With BatchSize 4, a step producing many entries to one target must
	// split into multiple dispatch messages — and still return the right
	// answer.
	c := newCluster(t, 2, func(cfg *Config) { cfg.BatchSize = 4 })
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V().E("run").E("read")))
}
