package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/partition"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/rpc"
	"graphtrek/internal/wire"
)

// allModes are the server-side + client-side engines under differential test.
var allModes = []Mode{
	ModeSync, ModeAsyncPlain, ModeGraphTrek, ModeClientSide,
	ModeAsyncCacheOnly, ModeAsyncSchedOnly,
}

// cluster is an in-process test cluster: n backend servers plus one client
// on a channel fabric, with a mirrored global graph for the oracle.
type cluster struct {
	fabric  *rpc.Fabric
	servers []*Server
	client  *Client
	part    partition.Partitioner
	stores  []*gstore.MemStore
	global  *gstore.MemStore
}

func newCluster(t testing.TB, n int, tweak func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		part:   partition.NewHash(n),
		fabric: rpc.NewFabric(n+1, 0),
		global: gstore.NewMemStore(),
	}
	for i := 0; i < n; i++ {
		store := gstore.NewMemStore()
		c.stores = append(c.stores, store)
		cfg := Config{ID: i, Store: store, Part: c.part, TravelTimeout: 15 * time.Second}
		if tweak != nil {
			tweak(&cfg)
		}
		srv := NewServer(cfg)
		srv.Bind(c.fabric.Endpoint(i))
		if err := c.fabric.Endpoint(i).Start(srv.Handle); err != nil {
			t.Fatal(err)
		}
		c.servers = append(c.servers, srv)
	}
	c.client = NewClient(c.part)
	c.client.Bind(c.fabric.Endpoint(n))
	if err := c.fabric.Endpoint(n).Start(c.client.Handle); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range c.servers {
			s.Close()
		}
		c.fabric.Close()
	})
	return c
}

// newChaosCluster is newCluster with every backend's transport wrapped in a
// seeded fault injector; the returned chaos[i] controls server i's network
// view (drops, delays, duplication, crash-stop). The client endpoint stays
// fault-free so submissions and result collection are themselves reliable —
// faults under test are the server-to-server ones.
func newChaosCluster(t testing.TB, n int, chaosFor func(id int) rpc.ChaosConfig, tweak func(*Config)) (*cluster, []*rpc.Chaos) {
	t.Helper()
	c := &cluster{
		part:   partition.NewHash(n),
		fabric: rpc.NewFabric(n+1, 0),
		global: gstore.NewMemStore(),
	}
	chaos := make([]*rpc.Chaos, n)
	for i := 0; i < n; i++ {
		store := gstore.NewMemStore()
		c.stores = append(c.stores, store)
		cfg := Config{ID: i, Store: store, Part: c.part, TravelTimeout: 15 * time.Second}
		if tweak != nil {
			tweak(&cfg)
		}
		srv := NewServer(cfg)
		var cc rpc.ChaosConfig
		if chaosFor != nil {
			cc = chaosFor(i)
		}
		ch := rpc.NewChaos(c.fabric.Endpoint(i), cc)
		chaos[i] = ch
		srv.Bind(ch)
		if err := c.fabric.Endpoint(i).Start(ch.WrapHandler(srv.Handle)); err != nil {
			t.Fatal(err)
		}
		c.servers = append(c.servers, srv)
	}
	c.client = NewClient(c.part)
	c.client.Bind(c.fabric.Endpoint(n))
	if err := c.fabric.Endpoint(n).Start(c.client.Handle); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, s := range c.servers {
			s.Close()
		}
		for _, ch := range chaos {
			ch.Close()
		}
		c.fabric.Close()
	})
	return c, chaos
}

func (c *cluster) addVertex(t testing.TB, v model.Vertex) {
	t.Helper()
	owner := c.part.Owner(v.ID)
	if err := c.stores[owner].PutVertex(v); err != nil {
		t.Fatal(err)
	}
	if err := c.global.PutVertex(v); err != nil {
		t.Fatal(err)
	}
}

func (c *cluster) addEdge(t testing.TB, e model.Edge) {
	t.Helper()
	owner := c.part.Owner(e.Src)
	if err := c.stores[owner].PutEdge(e); err != nil {
		t.Fatal(err)
	}
	if err := c.global.PutEdge(e); err != nil {
		t.Fatal(err)
	}
}

// loadAuditGraph installs the Fig 1-style metadata graph used across tests.
func loadAuditGraph(t testing.TB, c *cluster) {
	verts := []model.Vertex{
		{ID: 1, Label: "User", Props: property.Map{"name": property.String("sam")}},
		{ID: 2, Label: "User", Props: property.Map{"name": property.String("john")}},
		{ID: 10, Label: "Execution", Props: property.Map{"model": property.String("A")}},
		{ID: 11, Label: "Execution", Props: property.Map{"model": property.String("B")}},
		{ID: 12, Label: "Execution", Props: property.Map{"model": property.String("A")}},
		{ID: 20, Label: "File", Props: property.Map{"type": property.String("text")}},
		{ID: 21, Label: "File", Props: property.Map{"type": property.String("bin")}},
		{ID: 22, Label: "File", Props: property.Map{"type": property.String("text")}},
	}
	edges := []model.Edge{
		{Src: 1, Dst: 10, Label: "run", Props: property.Map{"ts": property.Int(5)}},
		{Src: 1, Dst: 11, Label: "run", Props: property.Map{"ts": property.Int(50)}},
		{Src: 2, Dst: 12, Label: "run", Props: property.Map{"ts": property.Int(5)}},
		{Src: 10, Dst: 20, Label: "read"},
		{Src: 11, Dst: 21, Label: "read"},
		{Src: 10, Dst: 22, Label: "write"},
	}
	for _, v := range verts {
		c.addVertex(t, v)
	}
	for _, e := range edges {
		c.addEdge(t, e)
	}
}

// runAllModes submits the plan under every engine and checks each against
// the reference oracle.
func (c *cluster) runAllModes(t *testing.T, plan *query.Plan) {
	t.Helper()
	want, err := query.Reference(c.global, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range allModes {
		got, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: mode, Coordinator: -1, Timeout: 20 * time.Second})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !sameIDs(got, want.Results) {
			t.Errorf("%v: results = %v, want %v", mode, got, want.Results)
		}
	}
}

func sameIDs(a, b []model.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustPlan(t testing.TB, tr *query.Travel) *query.Plan {
	t.Helper()
	p, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAuditQueryAllModes(t *testing.T) {
	c := newCluster(t, 4, nil)
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V(1).
		E("run").Ea("ts", property.RANGE, 0, 10).
		E("read").Va("type", property.EQ, "text")))
}

func TestProvenanceRtnAllModes(t *testing.T) {
	c := newCluster(t, 4, nil)
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V().
		Va(query.LabelKey, property.EQ, "Execution").Va("model", property.EQ, "A").Rtn().
		E("read").Va("type", property.EQ, "text")))
}

func TestLabelSeededAllModes(t *testing.T) {
	c := newCluster(t, 3, nil)
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.VLabel("User").E("run")))
}

func TestMultiLevelRtnAllModes(t *testing.T) {
	c := newCluster(t, 4, nil)
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V(1, 2).Rtn().E("run").Rtn().E("read").Rtn()))
}

func TestEmptyResultAllModes(t *testing.T) {
	c := newCluster(t, 3, nil)
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V(1).E("run").E("read").Va("type", property.EQ, "nothing")))
}

func TestMissingSeedAllModes(t *testing.T) {
	c := newCluster(t, 3, nil)
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V(999).E("run")))
}

func TestDanglingEdgeAllModes(t *testing.T) {
	c := newCluster(t, 3, nil)
	c.addVertex(t, model.Vertex{ID: 1, Label: "User"})
	c.addEdge(t, model.Edge{Src: 1, Dst: 404, Label: "run"}) // 404 never stored
	c.runAllModes(t, mustPlan(t, query.V(1).E("run")))
}

func TestCyclicRevisitAllModes(t *testing.T) {
	c := newCluster(t, 3, nil)
	c.addVertex(t, model.Vertex{ID: 1, Label: "N"})
	c.addVertex(t, model.Vertex{ID: 2, Label: "N"})
	c.addEdge(t, model.Edge{Src: 1, Dst: 2, Label: "next"})
	c.addEdge(t, model.Edge{Src: 2, Dst: 1, Label: "next"})
	c.runAllModes(t, mustPlan(t, query.V(1).E("next").E("next").E("next")))
}

func TestSingleServerCluster(t *testing.T) {
	c := newCluster(t, 1, nil)
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.V(1).E("run").E("read")))
}

// randomGraph builds a random power-law-ish graph mirrored into the
// cluster and the oracle store.
func randomGraph(t testing.TB, c *cluster, r *rand.Rand, nVerts, nEdges int) {
	labels := []string{"User", "Execution", "File"}
	for i := 0; i < nVerts; i++ {
		c.addVertex(t, model.Vertex{
			ID:    model.VertexID(i),
			Label: labels[r.Intn(len(labels))],
			Props: property.Map{"p": property.Int(int64(r.Intn(10)))},
		})
	}
	elabels := []string{"run", "read", "write"}
	for i := 0; i < nEdges; i++ {
		// Square the source draw to skew out-degree.
		src := r.Intn(nVerts) * r.Intn(nVerts) / nVerts
		c.addEdge(t, model.Edge{
			Src:   model.VertexID(src),
			Dst:   model.VertexID(r.Intn(nVerts)),
			Label: elabels[r.Intn(len(elabels))],
			Props: property.Map{"w": property.Int(int64(r.Intn(10)))},
		})
	}
}

// TestRandomizedDifferential cross-checks every engine against the oracle
// on randomized graphs and randomized plans — the core correctness test.
func TestRandomizedDifferential(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(seed)))
			c := newCluster(t, 2+r.Intn(5), nil)
			randomGraph(t, c, r, 60, 300)
			elabels := []string{"run", "read", "write"}
			for q := 0; q < 4; q++ {
				// Random plan: random seeds, 1-4 hops, random filters and
				// rtn placement.
				var tr *query.Travel
				switch r.Intn(3) {
				case 0:
					ids := make([]model.VertexID, 1+r.Intn(4))
					for i := range ids {
						ids[i] = model.VertexID(r.Intn(60))
					}
					tr = query.V(ids...)
				case 1:
					tr = query.VLabel([]string{"User", "Execution", "File"}[r.Intn(3)])
				default:
					tr = query.V().Va("p", property.RANGE, 0, 5+r.Intn(5))
				}
				rtnPlaced := false
				hops := 1 + r.Intn(4)
				if r.Intn(3) == 0 {
					tr = tr.Rtn()
					rtnPlaced = true
				}
				for h := 0; h < hops; h++ {
					tr = tr.E(elabels[r.Intn(len(elabels))])
					if r.Intn(4) == 0 {
						tr = tr.Ea("w", property.RANGE, 0, 2+r.Intn(8))
					}
					if r.Intn(4) == 0 {
						tr = tr.Va("p", property.RANGE, 0, 2+r.Intn(8))
					}
					if r.Intn(4) == 0 {
						tr = tr.Rtn()
						rtnPlaced = true
					}
				}
				_ = rtnPlaced
				c.runAllModes(t, mustPlan(t, tr))
			}
		})
	}
}

func TestConcurrentTraversals(t *testing.T) {
	c := newCluster(t, 4, nil)
	loadAuditGraph(t, c)
	plans := []*query.Plan{
		mustPlan(t, query.V(1).E("run")),
		mustPlan(t, query.V(1).E("run").E("read")),
		mustPlan(t, query.VLabel("Execution").E("read")),
		mustPlan(t, query.V(2).E("run")),
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan := plans[i%len(plans)]
			mode := allModes[i%len(allModes)]
			want, err := query.Reference(c.global, plan)
			if err != nil {
				t.Error(err)
				return
			}
			got, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: mode, Coordinator: -1, Timeout: 20 * time.Second})
			if err != nil {
				t.Errorf("traversal %d (%v): %v", i, mode, err)
				return
			}
			if !sameIDs(got, want.Results) {
				t.Errorf("traversal %d (%v): got %v want %v", i, mode, got, want.Results)
			}
		}(i)
	}
	wg.Wait()
}

func TestMetricsAccountingIdentity(t *testing.T) {
	c := newCluster(t, 4, nil)
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.V(1, 2).E("run").E("read"))
	if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek}); err != nil {
		t.Fatal(err)
	}
	total := Metrics{}
	for _, s := range c.servers {
		snap := s.Metrics()
		if !snap.Consistent() {
			t.Errorf("server %d: inconsistent accounting %+v", s.ID(), snap)
		}
		total = total.Add(snap)
	}
	if total.Received == 0 || total.RealIO == 0 {
		t.Errorf("no work recorded: %+v", total)
	}
}

func TestAsyncPlainDoesMoreIO(t *testing.T) {
	// A diamond fan: seed -> m middles -> one hot vertex. Plain async
	// visits the hot vertex m times; GraphTrek's cache dedups to 1.
	const m = 8
	build := func(c *cluster) {
		c.addVertex(t, model.Vertex{ID: 1, Label: "S"})
		c.addVertex(t, model.Vertex{ID: 100, Label: "H"})
		c.addVertex(t, model.Vertex{ID: 200, Label: "T"})
		c.addEdge(t, model.Edge{Src: 100, Dst: 200, Label: "next"})
		for i := 0; i < m; i++ {
			mid := model.VertexID(10 + i)
			c.addVertex(t, model.Vertex{ID: mid, Label: "M"})
			c.addEdge(t, model.Edge{Src: 1, Dst: mid, Label: "next"})
			c.addEdge(t, model.Edge{Src: mid, Dst: 100, Label: "next"})
		}
	}
	plan := func(t *testing.T) *query.Plan {
		return mustPlan(t, query.V(1).E("next").E("next").E("next"))
	}
	run := func(t *testing.T, mode Mode) Metrics {
		c := newCluster(t, 3, nil)
		build(c)
		got, err := c.client.SubmitPlan(plan(t), SubmitOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, []model.VertexID{200}) {
			t.Fatalf("%v results = %v", mode, got)
		}
		total := Metrics{}
		for _, s := range c.servers {
			total = total.Add(s.Metrics())
		}
		return total
	}
	plain := run(t, ModeAsyncPlain)
	gt := run(t, ModeGraphTrek)
	if plain.RealIO <= gt.RealIO {
		t.Errorf("plain async RealIO %d should exceed GraphTrek %d", plain.RealIO, gt.RealIO)
	}
	if gt.Redundant == 0 {
		t.Errorf("GraphTrek should have counted redundant visits, got %+v", gt)
	}
}

func TestWatchdogDetectsSilentFailure(t *testing.T) {
	// Server 1 silently drops every inbound message: executions registered
	// as created there never terminate, and with the heartbeat detector
	// off (it cannot see a live-but-deaf server anyway — server 1 still
	// beacons) the coordinator watchdog must fail the traversal rather
	// than hang (§IV-C).
	c, _ := newChaosCluster(t, 3, func(id int) rpc.ChaosConfig {
		if id == 1 {
			return rpc.ChaosConfig{DropIn: func(int, wire.Message) bool { return true }}
		}
		return rpc.ChaosConfig{}
	}, func(cfg *Config) {
		cfg.TravelTimeout = 500 * time.Millisecond
	})
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("User").E("run").E("read"))
	start := time.Now()
	_, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0, Timeout: 10 * time.Second})
	if err == nil {
		t.Fatal("expected watchdog failure, got success")
	}
	if !strings.Contains(err.Error(), "timeout") && !strings.Contains(err.Error(), "failure") {
		t.Errorf("unexpected error text: %v", err)
	}
	if time.Since(start) > 8*time.Second {
		t.Errorf("watchdog took %v, should trip near the 500ms timeout", time.Since(start))
	}
}

func TestProgressReporting(t *testing.T) {
	// Slow the disk so the traversal is observable in flight.
	c := newCluster(t, 2, func(cfg *Config) {
		cfg.Workers = 1
	})
	loadAuditGraph(t, c)
	// Pre-register: run a traversal and poll Progress concurrently.
	plan := mustPlan(t, query.VLabel("File").E("read")) // no-op-ish
	done := make(chan struct{})
	var sawProgress bool
	go func() {
		defer close(done)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for _, s := range c.servers {
				s.mu.Lock()
				n := len(s.ledgers)
				s.mu.Unlock()
				if n > 0 {
					sawProgress = true
					return
				}
			}
		}
	}()
	if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek}); err != nil {
		t.Fatal(err)
	}
	<-done
	_ = sawProgress // ledger presence is timing-dependent; Progress API exercised below
	// Progress on an unknown traversal reports false.
	if _, ok := c.servers[0].Progress(12345); ok {
		t.Error("Progress on unknown travel should be false")
	}
}

func TestMalformedPlanRejected(t *testing.T) {
	c := newCluster(t, 2, nil)
	// Handcraft a bad plan payload straight to a server.
	p := &pendingTravel{done: make(chan struct{})}
	c.client.mu.Lock()
	c.client.pending[999] = p
	c.client.mu.Unlock()
	err := c.client.tr.Send(0, wire.Message{
		Kind: wire.KindStartTravel, TravelID: 999,
		Mode: uint8(ModeGraphTrek), Coord: int32(c.client.tr.Self()),
		Plan: []byte{0xde, 0xad},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.done:
		if p.err == nil {
			t.Error("expected plan decode error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no error reply for malformed plan")
	}
}

func TestSubmitValidatesBuilderErrors(t *testing.T) {
	c := newCluster(t, 2, nil)
	if _, err := c.client.Submit(query.V(1).E(""), SubmitOptions{}); err == nil {
		t.Error("builder error should surface at Submit")
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeSync: "Sync-GT", ModeAsyncPlain: "Async-GT", ModeGraphTrek: "GraphTrek",
		ModeClientSide: "Client-GT", ModeAsyncCacheOnly: "Async+Cache",
		ModeAsyncSchedOnly: "Async+Sched", Mode(99): "Unknown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

// TestTinyCacheStillCorrect forces heavy traversal-affiliate cache
// eviction (capacity 8) and checks results are unaffected: the cache is a
// performance structure, never a correctness dependency.
func TestTinyCacheStillCorrect(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) { cfg.CacheCap = 8 })
	r := rand.New(rand.NewSource(11))
	randomGraph(t, c, r, 50, 250)
	for q := 0; q < 3; q++ {
		tr := query.V(model.VertexID(r.Intn(50))).E("run").E("read").E("write")
		c.runAllModes(t, mustPlan(t, tr))
	}
}

// TestSingleWorkerPerServer pins Workers to 1: scheduling merge windows
// shrink but every engine must stay correct and deadlock-free.
func TestSingleWorkerPerServer(t *testing.T) {
	c := newCluster(t, 4, func(cfg *Config) { cfg.Workers = 1 })
	loadAuditGraph(t, c)
	c.runAllModes(t, mustPlan(t, query.VLabel("User").E("run").E("read")))
}

// TestManyWorkersPerServer goes the other way: a wide worker pool racing
// on the same queue and outboxes.
func TestManyWorkersPerServer(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) { cfg.Workers = 16 })
	r := rand.New(rand.NewSource(13))
	randomGraph(t, c, r, 60, 300)
	c.runAllModes(t, mustPlan(t, query.V(0, 1, 2).E("run").E("read")))
}
