package core

import (
	"fmt"
	"sort"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/route"
	"graphtrek/internal/wire"
)

// This file is the server side of the change feed (DESIGN.md §14): a
// per-partition ordered stream of committed mutation batches that external
// consumers subscribe to over the wire (KindFeedSub / KindFeedBatch),
// served from the same ring buffer replication uses for gap repair.
//
// Only committed records are ever emitted. An append the primary applied
// but no quorum holds can vanish in a failover — the new primary would
// reassign its sequence number to a different mutation, and a consumer that
// had already seen the first meaning of that sequence would silently skip
// the second. The commit high-watermark (partRepl.commitSeq) makes that
// impossible: it only covers sequences a quorum holds, so every emitted
// (seq, batch) pair is durable under the protocol's failure model and the
// sequence is monotone along the surviving replica lineage. A consumer's
// cursor is therefore a plain sequence number that stays valid across
// primary failover.

// Feed subscribe sub-modes (wire.Message.Mode on KindFeedSub).
const (
	feedModeSub   = 0 // subscribe from cursor Seq (exclusive)
	feedModeUnsub = 1 // drop the sender's subscription
)

// feedShip is one outbound feed message, built under replMu and sent after
// release.
type feedShip struct {
	to  int
	msg wire.Message
}

// commitFloorLocked computes the highest sequence a quorum of the replica
// set holds: with need = Quorum()-1 follower acks required beside the
// primary's own copy, it is the need-th highest follower ack watermark,
// capped at the primary's applied sequence. need <= 0 means the primary
// alone is a quorum. Caller holds replMu.
func commitFloorLocked(st *partRepl, a route.Assignment) uint64 {
	need := a.Quorum() - 1
	if need > len(a.Followers) {
		need = len(a.Followers)
	}
	if need <= 0 {
		return st.appliedSeq
	}
	marks := make([]uint64, 0, len(a.Followers))
	for _, f := range a.Followers {
		marks = append(marks, st.ackedSeq[f])
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] > marks[j] })
	c := marks[need-1]
	if c > st.appliedSeq {
		c = st.appliedSeq
	}
	return c
}

// advanceCommitLocked raises the partition's commit high-watermark to the
// current quorum floor and builds the feed batches that newly committed
// span unlocks. The watermark is monotone — a replica-set change can lower
// the instantaneous floor, but committed records stay committed. Caller
// holds replMu and sends the returned ships after release (shipFeed).
func (s *Server) advanceCommitLocked(p int, st *partRepl, a route.Assignment) []feedShip {
	if !st.primary {
		return nil
	}
	c := commitFloorLocked(st, a)
	if c <= st.commitSeq {
		return nil
	}
	st.commitSeq = c
	return s.feedShipLocked(p, st)
}

// feedShipLocked builds one KindFeedBatch per subscriber that is behind the
// commit watermark, reading record payloads straight out of the repair ring
// (they are already in EncodeBatch form — no decode/re-encode). A
// subscriber whose backlog has aged out of the ring is dropped with a
// terminal error; it must re-seed from a full read instead. Caller holds
// replMu.
func (s *Server) feedShipLocked(p int, st *partRepl) []feedShip {
	var out []feedShip
	var shipped int64
	now := time.Now().UnixNano()
	for sub, sent := range st.feedSubs {
		if sent >= st.commitSeq {
			continue
		}
		lo, hi := sent+1, st.commitSeq
		if len(st.ring) == 0 || lo < st.ringStart || hi >= st.ringStart+uint64(len(st.ring)) {
			delete(st.feedSubs, sub)
			out = append(out, feedShip{to: int(sub), msg: wire.Message{
				Kind: wire.KindFeedBatch, Part: int32(p), Epoch: st.epoch,
				Err: fmt.Sprintf("core: feed cursor %d on partition %d predates retained history (ring starts at %d)", sent, p, st.ringStart),
			}})
			continue
		}
		blob := gstore.AppendFeedCount(nil, int(hi-lo+1))
		for seq := lo; seq <= hi; seq++ {
			blob = gstore.AppendFeedRecordRaw(blob, st.epoch, seq, st.ring[seq-st.ringStart])
			// Delivery lag: apply-stamp age at ship time, one sample per
			// record, pinning the histogram count to feed_records_total.
			s.met.ObserveFeedLag(time.Duration(now - st.ringTimes[seq-st.ringStart]))
		}
		st.feedSubs[sub] = hi
		shipped += int64(hi - lo + 1)
		out = append(out, feedShip{to: int(sub), msg: wire.Message{
			Kind: wire.KindFeedBatch, Part: int32(p), Epoch: st.epoch, Seq: hi, Blob: blob,
		}})
	}
	if shipped > 0 {
		s.met.AddFeedRecords(shipped)
	}
	return out
}

// failFeedSubsLocked drops every subscription on a partition this server no
// longer primaries, notifying each subscriber with the moved error and the
// current route table so it resubscribes to the new primary directly.
// Caller holds replMu.
func (st *partRepl) failFeedSubsLocked(s *Server, p int) []feedShip {
	if len(st.feedSubs) == 0 {
		return nil
	}
	blob := s.cfg.Route.Table().Encode()
	out := make([]feedShip, 0, len(st.feedSubs))
	for sub := range st.feedSubs {
		out = append(out, feedShip{to: int(sub), msg: wire.Message{
			Kind: wire.KindFeedBatch, Part: int32(p), Err: ErrPartitionMoved.Error(), Blob: blob,
		}})
		delete(st.feedSubs, sub)
	}
	return out
}

// shipFeed delivers feed batches built under the lock. A subscriber the
// transport cannot reach is unsubscribed — it re-presents its cursor when
// it returns, and the watermark-based protocol makes the overlap harmless.
func (s *Server) shipFeed(p int, ships []feedShip) {
	for _, f := range ships {
		if s.send(f.to, f.msg) != nil {
			s.replMu.Lock()
			if st, ok := s.repl[p]; ok {
				delete(st.feedSubs, int32(f.to))
			}
			s.replMu.Unlock()
		}
	}
}

// handleFeedSub serves a subscribe (or unsubscribe) request. On subscribe
// the reply is immediate: the committed backlog past the cursor, or an
// empty confirmation batch when the subscriber is already caught up —
// consumers use it to learn the subscription landed. Subsequent batches
// stream as the commit watermark advances.
func (s *Server) handleFeedSub(from int, msg wire.Message) {
	reply := wire.Message{Kind: wire.KindFeedBatch, ReqID: msg.ReqID, Part: msg.Part}
	if s.cfg.Route == nil {
		reply.Err = "core: replication is not enabled on this cluster"
		s.send(from, reply)
		return
	}
	p := int(msg.Part)
	if p < 0 || p >= s.cfg.Route.Parts() {
		reply.Err = fmt.Sprintf("query: no such partition %d", p)
		s.send(from, reply)
		return
	}
	if msg.Mode == feedModeUnsub {
		s.replMu.Lock()
		if st, ok := s.repl[p]; ok {
			delete(st.feedSubs, int32(from))
		}
		s.replMu.Unlock()
		return
	}
	a := s.cfg.Route.Assignment(p)
	if a.Primary != int32(s.cfg.ID) {
		// Stale subscriber route: attach our table so the resubscribe goes to
		// the right server.
		reply.Err = fmt.Sprintf("%v: partition %d is primaried by server %d", ErrPartitionMoved, p, a.Primary)
		reply.Blob = s.cfg.Route.Table().Encode()
		s.send(from, reply)
		return
	}
	cursor := msg.Seq
	s.replMu.Lock()
	st := s.replState(p)
	s.adoptPrimaryLocked(p, st, a)
	if cursor < st.commitSeq {
		// The backlog (cursor, commitSeq] must be fully ring-resident.
		if len(st.ring) == 0 || cursor+1 < st.ringStart {
			floor := st.ringStart
			s.replMu.Unlock()
			reply.Err = fmt.Sprintf("core: feed cursor %d on partition %d predates retained history (ring starts at %d)", cursor, p, floor)
			s.send(from, reply)
			return
		}
	}
	st.feedSubs[int32(from)] = cursor
	ships := s.feedShipLocked(p, st)
	caughtUp := st.feedSubs[int32(from)] >= st.commitSeq
	epoch := st.epoch
	commit := st.commitSeq
	s.replMu.Unlock()
	var acked bool
	for _, f := range ships {
		if f.to == from {
			acked = true
		}
	}
	s.shipFeed(p, ships)
	if !acked && caughtUp {
		// Nothing to back-fill: confirm the subscription with an empty batch
		// carrying the current watermark.
		reply.Epoch = epoch
		reply.Seq = commit
		reply.Blob = gstore.AppendFeedCount(nil, 0)
		s.send(from, reply)
	}
}
