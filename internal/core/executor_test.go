package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"graphtrek/internal/model"
	"graphtrek/internal/query"
)

// sharedExecPlans builds a few structurally different plans over the random
// test graph, with their oracle results.
func sharedExecPlans(t *testing.T, c *cluster) []*query.Plan {
	t.Helper()
	return []*query.Plan{
		mustPlan(t, query.V(1, 2, 3).E("run").E("read")),
		mustPlan(t, query.VLabel("User").E("run")),
		mustPlan(t, query.V(5, 6, 7).E("run").Rtn().E("read").Rtn()),
		mustPlan(t, query.V(0, 10, 20, 30).E("write")),
	}
}

// TestSharedExecutorGoroutineBound is the scale contract of the shared
// executor: K=64 simultaneous traversals on 8 servers must not grow the
// goroutine count with K — the per-traversal-pool design cost
// O(K × servers × Workers) goroutines, the shared pool costs
// O(servers × Workers) regardless of K.
func TestStressSharedExecutorGoroutineBound(t *testing.T) {
	const (
		servers = 8
		workers = 4
		kAsync  = 56 // server-side engines, submitted without client goroutines
		kClient = 8  // client-driven engine, one goroutine each at the client
	)
	c := newCluster(t, servers, func(cfg *Config) {
		cfg.Workers = workers
		// Disable the per-traversal coordinator watchdog so the measured
		// goroutine budget is exactly the standing pools.
		cfg.TravelTimeout = -1
	})
	r := rand.New(rand.NewSource(7))
	randomGraph(t, c, r, 80, 400)
	plans := sharedExecPlans(t, c)
	want := make([][]model.VertexID, len(plans))
	for i, p := range plans {
		ref, err := query.Reference(c.global, p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref.Results
	}

	base := runtime.NumGoroutine()

	// Launch the async wave and track the peak goroutine count while it is
	// in flight.
	modes := []Mode{ModeSync, ModeAsyncPlain, ModeGraphTrek, ModeAsyncCacheOnly, ModeAsyncSchedOnly}
	type flight struct {
		h    *Handle
		plan int
		mode Mode
	}
	flights := make([]flight, 0, kAsync)
	peak := base
	sample := func() {
		if n := runtime.NumGoroutine(); n > peak {
			peak = n
		}
	}
	for i := 0; i < kAsync; i++ {
		pi := i % len(plans)
		mode := modes[i%len(modes)]
		h, err := c.client.SubmitPlanAsync(plans[pi], SubmitOptions{Mode: mode, Coordinator: -1})
		if err != nil {
			t.Fatalf("submit %d (%v): %v", i, mode, err)
		}
		flights = append(flights, flight{h, pi, mode})
		sample()
	}
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			sample()
			select {
			case <-time.After(time.Millisecond):
			case <-stop:
				return
			}
		}
	}()
	for i, f := range flights {
		got, err := f.h.Wait(30 * time.Second)
		if err != nil {
			t.Fatalf("traversal %d (%v): %v", i, f.mode, err)
		}
		if !sameIDs(got, want[f.plan]) {
			t.Errorf("traversal %d (%v): results = %v, want %v", i, f.mode, got, want[f.plan])
		}
	}
	close(stop)
	<-samplerDone

	// The old per-traversal design would have added ≥ kAsync × workers
	// goroutines on the coordinator servers alone (2048 cluster-wide); the
	// shared pool adds none. Allow modest slack for runtime/test goroutines.
	const slack = 48
	if peak > base+slack {
		t.Errorf("goroutines peaked at %d (baseline %d): executor is spawning per-traversal goroutines", peak, base)
	}

	// The client-driven engine runs through the same executor; its
	// goroutines live at the client, not per-traversal on the servers.
	var wg sync.WaitGroup
	errCh := make(chan error, kClient)
	for i := 0; i < kClient; i++ {
		pi := i % len(plans)
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			got, err := c.client.SubmitPlan(plans[pi], SubmitOptions{Mode: ModeClientSide, Timeout: 30 * time.Second})
			if err != nil {
				errCh <- err
				return
			}
			if !sameIDs(got, want[pi]) {
				errCh <- fmt.Errorf("client-side results = %v, want %v", got, want[pi])
			}
		}(pi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// No leaks: once every traversal finished, the goroutine count returns
	// to the standing baseline and every executor queue is empty.
	waitForQuiescence(t, c, base+slack)
}

// waitForQuiescence polls until every server's executor queue is drained,
// all traversal state is released and the goroutine count is back under the
// given bound.
func waitForQuiescence(t *testing.T, c *cluster, maxGoroutines int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		settled := runtime.NumGoroutine() <= maxGoroutines
		for _, s := range c.servers {
			if s.exec.Len() != 0 {
				settled = false
			}
			s.mu.Lock()
			if len(s.travels) != 0 {
				settled = false
			}
			s.mu.Unlock()
		}
		if settled {
			return
		}
		if time.Now().After(deadline) {
			for i, s := range c.servers {
				s.mu.Lock()
				t.Logf("server %d: queue=%d travels=%d", i, s.exec.Len(), len(s.travels))
				s.mu.Unlock()
			}
			t.Fatalf("cluster did not quiesce: %d goroutines (bound %d)", runtime.NumGoroutine(), maxGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSharedExecutorBackpressure drives a server past its MaxQueueDepth and
// checks the rejection surfaces as a retryable traversal error in both the
// server-side dispatch path and the client-side VisitReq path.
func TestStressSharedExecutorBackpressure(t *testing.T) {
	c := newCluster(t, 1, func(cfg *Config) { cfg.MaxQueueDepth = 1 })
	loadAuditGraph(t, c)

	// Server-side: the two-entry root dispatch exceeds the depth-1 bound.
	plan := mustPlan(t, query.V(1, 2).E("run"))
	_, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Timeout: 10 * time.Second})
	if err == nil {
		t.Fatal("overloaded server accepted the traversal")
	}
	if !strings.Contains(err.Error(), "backpressure") || !strings.Contains(err.Error(), "retry") {
		t.Errorf("rejection error not marked retryable: %v", err)
	}

	// Client-side: the VisitReq batch takes the same admission check.
	_, err = c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeClientSide, Timeout: 10 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "backpressure") {
		t.Errorf("client-side rejection = %v, want backpressure error", err)
	}

	// A single-source plan fits the bound step by step... until its first
	// expansion fans out to two entries; a server with headroom runs the
	// same plans to completion.
	roomy := newCluster(t, 1, func(cfg *Config) { cfg.MaxQueueDepth = 1 << 16 })
	loadAuditGraph(t, roomy)
	roomy.runAllModes(t, plan)
	if got := roomy.servers[0].Metrics().Rejected; got != 0 {
		t.Errorf("roomy server rejected %d batches", got)
	}
	if c.servers[0].Metrics().Rejected == 0 {
		t.Error("overloaded server recorded no rejections")
	}
}

// TestSharedExecutorRetryAfterRejection: a rejected traversal retried once
// the queue has drained succeeds — the contract that makes ErrBackpressure
// a load-shedding signal rather than a hard failure.
func TestStressSharedExecutorRetryAfterRejection(t *testing.T) {
	c := newCluster(t, 1, func(cfg *Config) { cfg.MaxQueueDepth = 1 })
	loadAuditGraph(t, c)
	single := mustPlan(t, query.V(1))
	ref, err := query.Reference(c.global, single)
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1 admits single-entry batches: the one-source, zero-hop plan
	// completes even on the tightly bounded server.
	got, err := c.client.SubmitPlan(single, SubmitOptions{Mode: ModeGraphTrek, Timeout: 10 * time.Second, Retries: 2})
	if err != nil {
		t.Fatalf("single-entry traversal failed under depth bound: %v", err)
	}
	if !sameIDs(got, ref.Results) {
		t.Errorf("results = %v, want %v", got, ref.Results)
	}
}

// TestSharedExecutorCancelEviction: cancelling a traversal evicts its
// pending groups from the shared queue — dead work never occupies a worker
// — and the executor keeps serving subsequent traversals correctly.
func TestStressSharedExecutorCancelEviction(t *testing.T) {
	c := newCluster(t, 4, func(cfg *Config) {
		cfg.Workers = 1
		cfg.TravelTimeout = -1
	})
	r := rand.New(rand.NewSource(11))
	randomGraph(t, c, r, 80, 600)
	plan := mustPlan(t, query.VLabel("User").E("run").E("read").E("write"))

	for i := 0; i < 8; i++ {
		h, err := c.client.SubmitPlanAsync(plan, SubmitOptions{Mode: ModeAsyncPlain, Coordinator: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Cancel(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(10 * time.Second); err == nil {
			t.Fatal("cancelled traversal reported success")
		}
	}
	base := runtime.NumGoroutine()
	waitForQuiescence(t, c, base+16)

	// The executor still serves fresh traversals after the evictions.
	c.runAllModes(t, mustPlan(t, query.VLabel("User").E("run")))
}
