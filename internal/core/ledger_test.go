package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"graphtrek/internal/model"
	"graphtrek/internal/query"
	"graphtrek/internal/simio"
	"graphtrek/internal/wire"
)

func newTestLedger() *ledger {
	return &ledger{
		execs:        make(map[uint64]*execInfo),
		liveByStep:   make(map[int32]int),
		liveByServer: make(map[int32]int),
		results:      make(map[model.VertexID]bool),
		stopWake:     make(chan struct{}),
	}
}

func (l *ledger) quiescentLocked() bool {
	return l.rootsSent && l.unmatchedEnds == 0 && l.liveTotal == 0
}

func TestLedgerCreateThenEnd(t *testing.T) {
	l := newTestLedger()
	l.rootsSent = true
	l.registerCreatedLocked(wire.ExecRef{ID: 1, Server: 0, Step: 0})
	if l.quiescentLocked() {
		t.Fatal("live execution should block completion")
	}
	if l.liveByStep[0] != 1 || l.liveTotal != 1 {
		t.Fatalf("live accounting: %v total %d", l.liveByStep, l.liveTotal)
	}
	l.registerEndedLocked(1)
	if !l.quiescentLocked() {
		t.Fatal("matched create+end should complete")
	}
	if l.liveByStep[0] != 0 || l.liveTotal != 0 {
		t.Fatalf("live accounting after end: %v total %d", l.liveByStep, l.liveTotal)
	}
}

func TestLedgerEndBeforeCreate(t *testing.T) {
	// The termination report can overtake the registration on another
	// link (§IV-C); the ledger must not declare completion in between.
	l := newTestLedger()
	l.rootsSent = true
	l.registerCreatedLocked(wire.ExecRef{ID: 1, Server: 0, Step: 0})

	// Exec 2's end arrives before its creation.
	l.registerEndedLocked(2)
	if l.unmatchedEnds != 1 {
		t.Fatalf("unmatchedEnds = %d", l.unmatchedEnds)
	}
	l.registerEndedLocked(1)
	if l.quiescentLocked() {
		t.Fatal("unmatched end must block completion")
	}
	l.registerCreatedLocked(wire.ExecRef{ID: 2, Server: 1, Step: 1})
	if !l.quiescentLocked() {
		t.Fatal("matching the early end should complete the traversal")
	}
	if l.liveTotal != 0 || l.unmatchedEnds != 0 {
		t.Fatalf("final accounting: live %d unmatched %d", l.liveTotal, l.unmatchedEnds)
	}
}

func TestLedgerDuplicateEventsIdempotent(t *testing.T) {
	l := newTestLedger()
	l.rootsSent = true
	ref := wire.ExecRef{ID: 7, Server: 0, Step: 2}
	l.registerCreatedLocked(ref)
	l.registerCreatedLocked(ref)
	if l.liveTotal != 1 {
		t.Fatalf("duplicate create counted: %d", l.liveTotal)
	}
	l.registerEndedLocked(7)
	l.registerEndedLocked(7)
	if l.liveTotal != 0 || l.unmatchedEnds != 0 {
		t.Fatalf("duplicate end mis-counted: live %d unmatched %d", l.liveTotal, l.unmatchedEnds)
	}
	if !l.quiescentLocked() {
		t.Fatal("should be quiescent")
	}
}

func TestLedgerRootsGateCompletion(t *testing.T) {
	l := newTestLedger()
	if l.quiescentLocked() {
		t.Fatal("completion before roots registered must be impossible")
	}
}

func TestLedgerPerStepAccounting(t *testing.T) {
	l := newTestLedger()
	l.rootsSent = true
	for i := uint64(1); i <= 3; i++ {
		l.registerCreatedLocked(wire.ExecRef{ID: i, Server: int32(i), Step: 0})
	}
	l.registerCreatedLocked(wire.ExecRef{ID: 10, Server: 0, Step: 1})
	if l.liveByStep[0] != 3 || l.liveByStep[1] != 1 {
		t.Fatalf("liveByStep = %v", l.liveByStep)
	}
	if l.liveByServer[0] != 1 || l.liveByServer[1] != 1 || l.liveByServer[2] != 1 || l.liveByServer[3] != 1 {
		t.Fatalf("liveByServer = %v", l.liveByServer)
	}
	l.registerEndedLocked(1)
	l.registerEndedLocked(2)
	if l.liveByStep[0] != 1 {
		t.Fatalf("liveByStep[0] = %d", l.liveByStep[0])
	}
	// The failure detector keys off per-server live counts: only the
	// servers whose executions have not ended may still hold the traversal.
	if l.liveByServer[1] != 0 || l.liveByServer[2] != 0 || l.liveByServer[3] != 1 || l.liveByServer[0] != 1 {
		t.Fatalf("liveByServer after ends = %v", l.liveByServer)
	}
}

// TestSyncModeStepOrdering verifies the barrier property end to end: with
// the synchronous engine, no step-k+1 vertex access may start before every
// step-k access finished. A disk tracer timestamps each simulated access
// with the step it serves.
func TestSyncModeStepOrdering(t *testing.T) {
	rec := &stepRecorder{}
	c := newCluster(t, 3, func(cfg *Config) {
		d := simio.NewDisk(0, 1)
		d.AttachTracer(func(_, step int, _ uint64) {
			rec.mu.Lock()
			rec.steps = append(rec.steps, int32(step))
			rec.mu.Unlock()
		})
		cfg.Disk = d
	})
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("User").E("run").E("read"))
	if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeSync, Coordinator: 0, Timeout: 20 * time.Second}); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	// In sync mode the recorded access steps must be non-decreasing:
	// 0...0 1...1 2...2.
	maxSeen := int32(-1)
	for i, step := range rec.steps {
		if step < maxSeen {
			t.Fatalf("access %d at step %d after step %d began: barrier violated (%v)",
				i, step, maxSeen, rec.steps)
		}
		if step > maxSeen {
			maxSeen = step
		}
	}
	if maxSeen != 2 {
		t.Fatalf("expected steps through 2, saw %v", rec.steps)
	}
}

// TestAsyncModeOverlapsSteps is the converse: with a slowed disk and the
// asynchronous engine, step processing should interleave — at least one
// access of a lower step lands after a higher step began.
func TestAsyncModeOverlapsSteps(t *testing.T) {
	rec := &stepRecorder{}
	c := newCluster(t, 4, func(cfg *Config) {
		d := simio.NewDisk(500*time.Microsecond, 1)
		d.AttachTracer(func(_, step int, _ uint64) {
			rec.mu.Lock()
			rec.steps = append(rec.steps, int32(step))
			rec.mu.Unlock()
		})
		cfg.Disk = d
	})
	// A wider random graph so servers progress unevenly.
	r := rand.New(rand.NewSource(3))
	randomGraph(t, c, r, 80, 400)
	plan := mustPlan(t, query.V(0, 1, 2, 3).E("run").E("read").E("write").E("run"))
	if _, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0, Timeout: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	overlapped := false
	maxSeen := int32(-1)
	for _, step := range rec.steps {
		if step < maxSeen {
			overlapped = true
			break
		}
		if step > maxSeen {
			maxSeen = step
		}
	}
	if !overlapped {
		t.Log("no overlap observed; asynchronous interleaving is timing-dependent")
	}
}

// stepRecorder logs the traversal step of every simulated disk access.
type stepRecorder struct {
	mu    sync.Mutex
	steps []int32
}
