package core

import (
	"errors"
	"fmt"
	"sync"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// This file is the client side of the streaming mutation pipeline
// (DESIGN.md §14): Mutate turns name-addressed add/update/delete operations
// into interned-id mutation batches on the quorum write path, and BulkLoad
// saturates every partition primary concurrently for initial ingest.

// NamedOp discriminates NamedMutation payloads.
type NamedOp uint8

const (
	// NamedAddVertex upserts a vertex addressed by its external name:
	// the name is interned (idempotently) and the vertex stored under the
	// interned id with the given label and properties. Re-adding a name
	// updates its label/properties in place.
	NamedAddVertex NamedOp = iota + 1
	// NamedDelVertex deletes the vertex a name resolves to, along with its
	// out-edges. Deleting a never-interned name is a no-op.
	NamedDelVertex
	// NamedAddEdge upserts a directed edge between two named vertices. Both
	// endpoint names are interned, so the edge can be written before (or
	// without) its endpoint vertices — pair with NamedAddVertex to give the
	// endpoints labels and properties.
	NamedAddEdge
	// NamedDelEdge deletes the directed edge between two named vertices. A
	// no-op when either name was never interned or the edge does not exist.
	NamedDelEdge
)

// NamedMutation is one write expressed in external vertex names instead of
// interned ids — the application-facing shape of a metadata mutation.
type NamedMutation struct {
	Op NamedOp
	// Name is the vertex's external name (vertex ops).
	Name string
	// Label is the vertex's type label (NamedAddVertex) or the edge's
	// relationship label (edge ops).
	Label string
	// Props carries the vertex or edge properties for add ops.
	Props property.Map
	// Src and Dst name the edge's endpoints (edge ops).
	Src, Dst string
}

// Mutate applies a batch of name-addressed mutations through the quorum
// write path: names referenced by add ops are interned first (one quorum
// round per touched partition), delete ops resolve their names read-only
// (never-interned names make the delete a no-op), and the resulting
// id-addressed mutations ship grouped by partition via Write. The returned
// map gives the interned id of every name an add op touched. Each replica
// applies the mutations to its own store, so read caches invalidate
// write-through and property indexes update incrementally — there is no
// backfill step.
func (c *Client) Mutate(muts []NamedMutation, opts WriteOptions) (map[string]model.VertexID, error) {
	if len(muts) == 0 {
		return nil, nil
	}
	// Pass 1: split the referenced names into those that must exist after
	// the batch (interned) and those only looked up (resolved).
	var internNames, resolveNames []string
	internSeen := make(map[string]bool)
	resolveSeen := make(map[string]bool)
	need := func(name string, create bool) {
		if name == "" {
			return
		}
		if create {
			if !internSeen[name] {
				internSeen[name] = true
				internNames = append(internNames, name)
			}
			return
		}
		if !resolveSeen[name] {
			resolveSeen[name] = true
			resolveNames = append(resolveNames, name)
		}
	}
	for _, m := range muts {
		switch m.Op {
		case NamedAddVertex:
			need(m.Name, true)
		case NamedDelVertex:
			need(m.Name, false)
		case NamedAddEdge:
			need(m.Src, true)
			need(m.Dst, true)
		case NamedDelEdge:
			need(m.Src, false)
			need(m.Dst, false)
		default:
			return nil, fmt.Errorf("query: unknown named mutation op %d", m.Op)
		}
	}
	ids := make(map[string]model.VertexID, len(internNames)+len(resolveNames))
	if len(internNames) > 0 {
		got, err := c.Intern(internNames, opts)
		if err != nil {
			return nil, err
		}
		for i, name := range internNames {
			ids[name] = got[i]
		}
	}
	if len(resolveNames) > 0 {
		// Skip names an add op in the same batch already interned.
		var ask []string
		for _, name := range resolveNames {
			if _, ok := ids[name]; !ok {
				ask = append(ask, name)
			}
		}
		if len(ask) > 0 {
			got, err := c.ResolveNames(ask, opts)
			if err != nil {
				return nil, err
			}
			for i, name := range ask {
				ids[name] = got[i] // 0 when never interned
			}
		}
	}
	// Pass 2: lower to id-addressed mutations. Deletes of unknown names
	// drop out as no-ops (their target cannot exist).
	out := make([]gstore.Mutation, 0, len(muts))
	for _, m := range muts {
		switch m.Op {
		case NamedAddVertex:
			out = append(out, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: model.Vertex{
				ID: ids[m.Name], Label: m.Label, Props: m.Props,
			}})
		case NamedDelVertex:
			if id := ids[m.Name]; id != 0 {
				out = append(out, gstore.Mutation{Op: gstore.OpDelVertex, ID: id})
			}
		case NamedAddEdge:
			out = append(out, gstore.Mutation{Op: gstore.OpPutEdge, Edge: model.Edge{
				Src: ids[m.Src], Dst: ids[m.Dst], Label: m.Label, Props: m.Props,
			}})
		case NamedDelEdge:
			src, dst := ids[m.Src], ids[m.Dst]
			if src != 0 && dst != 0 {
				out = append(out, gstore.Mutation{Op: gstore.OpDelEdge, Src: src, Label: m.Label, Dst: dst})
			}
		}
	}
	if err := c.Write(out, opts); err != nil {
		return nil, err
	}
	// Report only the ids guaranteed to exist after the batch.
	named := make(map[string]model.VertexID, len(internNames))
	for _, name := range internNames {
		named[name] = ids[name]
	}
	return named, nil
}

// BulkOptions tunes BulkLoad.
type BulkOptions struct {
	// MaxBatch splits each partition's run into quorum rounds of at most
	// this many mutations (default 256), bounding message size and
	// per-round primary work.
	MaxBatch int
	// Parallel bounds the number of partitions loaded concurrently
	// (default: all of them — one in-flight stream per partition saturates
	// every primary at once).
	Parallel int
	// Write carries the per-round timeout/retry policy.
	Write WriteOptions
}

// BulkLoad ingests a large mutation set through the quorum write path at
// full cluster width: mutations are grouped by partition (preserving each
// partition's relative order, so later writes to a key win), oversized
// groups split into MaxBatch rounds, and the per-partition streams run
// concurrently — every primary is loading at once, instead of the one-
// partition-at-a-time cadence a sequential Write loop would produce.
func (c *Client) BulkLoad(muts []gstore.Mutation, opts BulkOptions) error {
	if c.route == nil {
		return errors.New("core: replication is not enabled on this cluster")
	}
	if len(muts) == 0 {
		return nil
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	byPart := make(map[int][]gstore.Mutation)
	for _, m := range muts {
		p := c.route.Partition(m.RoutingID())
		byPart[p] = append(byPart[p], m)
	}
	parallel := opts.Parallel
	if parallel <= 0 || parallel > len(byPart) {
		parallel = len(byPart)
	}
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, run := range byPart {
		wg.Add(1)
		go func(run []gstore.Mutation) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Rounds within one partition stay sequential: same-key order is
			// the contract that makes the last write win.
			for lo := 0; lo < len(run); lo += opts.MaxBatch {
				hi := lo + opts.MaxBatch
				if hi > len(run) {
					hi = len(run)
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				if err := c.Write(run[lo:hi], opts.Write); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(run)
	}
	wg.Wait()
	return firstErr
}
