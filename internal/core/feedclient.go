package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/wire"
)

// This file is the consumer side of the change feed (DESIGN.md §14). A
// Feed maintains one partition subscription against whichever server
// currently primaries the partition, resubscribing with its cursor across
// primary failover. The cursor is the last committed sequence the consumer
// processed; because the server only ever emits quorum-committed records
// and sequences are monotone along the surviving replica lineage, resuming
// by cursor yields every committed mutation exactly once — no gaps, no
// duplicates — even when the subscription hops primaries mid-stream.

// FeedEvent is one committed mutation batch delivered to a subscriber.
type FeedEvent struct {
	Part  int
	Epoch uint64
	Seq   uint64
	Muts  []gstore.Mutation
}

// FeedOptions tunes SubscribeFeed.
type FeedOptions struct {
	// Cursor resumes the stream after this sequence (exclusive). Zero
	// starts from the beginning of the partition's retained history; a
	// consumer that falls further behind than the primary's retention ring
	// gets a terminal error and must re-seed from a full read.
	Cursor uint64
	// Refresh is the cadence of the subscription keepalive check: each tick
	// the feed resubscribes if the partition's primary moved or the last
	// subscribe attempt went unconfirmed (default 200ms).
	Refresh time.Duration
}

// Feed is a live subscription to one partition's committed-mutation stream.
type Feed struct {
	c    *Client
	part int

	mu         sync.Mutex
	cursor     uint64
	target     int  // server the current subscription points at
	confirmed  bool // a batch (or confirmation) arrived since the last (re)subscribe
	queue      []FeedEvent
	err        error // terminal error, surfaced via Err after Events closes
	closed     bool
	wake       chan struct{} // pump wakeup, capacity 1
	resub      chan struct{} // resubscribe kick, capacity 1
	stop       chan struct{}
	events     chan FeedEvent
	pumpDone   chan struct{}
	refresh    time.Duration
	unsubOnced sync.Once
}

// SubscribeFeed opens a change-feed subscription on one partition. Events
// arrive on Events() in sequence order; Close releases the subscription.
// Requires a replicated cluster (a *route.View partitioner).
func (c *Client) SubscribeFeed(part int, opts FeedOptions) (*Feed, error) {
	if c.tr == nil {
		return nil, errors.New("core: client not bound to a transport")
	}
	if c.route == nil {
		return nil, errors.New("core: replication is not enabled on this cluster")
	}
	if part < 0 || part >= c.route.Parts() {
		return nil, fmt.Errorf("query: no such partition %d", part)
	}
	if opts.Refresh <= 0 {
		opts.Refresh = 200 * time.Millisecond
	}
	f := &Feed{
		c:        c,
		part:     part,
		cursor:   opts.Cursor,
		target:   -1,
		wake:     make(chan struct{}, 1),
		resub:    make(chan struct{}, 1),
		stop:     make(chan struct{}),
		events:   make(chan FeedEvent, 64),
		pumpDone: make(chan struct{}),
		refresh:  opts.Refresh,
	}
	c.mu.Lock()
	if c.feeds == nil {
		c.feeds = make(map[int]*Feed)
	}
	if _, dup := c.feeds[part]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("core: a feed subscription for partition %d is already open on this client", part)
	}
	c.feeds[part] = f
	c.mu.Unlock()
	go f.pump()
	go f.loop()
	return f, nil
}

// Events returns the delivery channel. It closes when the feed is closed or
// hits a terminal error (check Err after it closes).
func (f *Feed) Events() <-chan FeedEvent { return f.events }

// Err reports the feed's terminal error, if any. Meaningful once Events is
// closed.
func (f *Feed) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Cursor reports the last committed sequence delivered to the pump — the
// value a future SubscribeFeed would resume from.
func (f *Feed) Cursor() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursor
}

// Close unsubscribes and tears the feed down. Safe to call more than once.
func (f *Feed) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	target := f.target
	f.mu.Unlock()
	f.c.mu.Lock()
	if f.c.feeds[f.part] == f {
		delete(f.c.feeds, f.part)
	}
	f.c.mu.Unlock()
	close(f.stop)
	if target >= 0 {
		f.unsubOnced.Do(func() {
			f.c.tr.Send(target, wire.Message{Kind: wire.KindFeedSub, Mode: feedModeUnsub, Part: int32(f.part)})
		})
	}
	<-f.pumpDone
}

// fail records a terminal error and tears the feed down from the handler
// side.
func (f *Feed) fail(err error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.err = err
	f.closed = true
	f.mu.Unlock()
	f.c.mu.Lock()
	if f.c.feeds[f.part] == f {
		delete(f.c.feeds, f.part)
	}
	f.c.mu.Unlock()
	close(f.stop)
}

// loop drives (re)subscription: an immediate subscribe, then resubscribes
// whenever the handler kicks (gap, moved-primary error) or a refresh tick
// finds the primary moved or the last attempt unconfirmed — which covers a
// subscribe message lost to a dying primary.
func (f *Feed) loop() {
	f.subscribe()
	tick := time.NewTicker(f.refresh)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-f.resub:
			f.subscribe()
		case <-tick.C:
			primary := int(f.c.route.Assignment(f.part).Primary)
			f.mu.Lock()
			stale := !f.confirmed || primary != f.target
			f.mu.Unlock()
			if stale {
				f.subscribe()
			}
		}
	}
}

// subscribe (re)sends the subscription to the partition's current primary
// with the current cursor. The server replies with the committed backlog
// past the cursor (or an empty confirmation), then streams.
func (f *Feed) subscribe() {
	primary := int(f.c.route.Assignment(f.part).Primary)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	cursor := f.cursor
	f.target = primary
	f.confirmed = false
	f.mu.Unlock()
	f.c.tr.Send(primary, wire.Message{
		Kind: wire.KindFeedSub, Mode: feedModeSub, Part: int32(f.part), Seq: cursor,
	})
}

// kick requests a resubscribe without blocking the transport handler.
func (f *Feed) kick() {
	select {
	case f.resub <- struct{}{}:
	default:
	}
}

// handleBatch processes one KindFeedBatch from the wire. It runs on the
// transport's dispatch goroutine, so it never blocks: events land in an
// unbounded queue drained by the pump.
func (f *Feed) handleBatch(msg wire.Message) {
	if msg.Err != "" {
		err := errors.New(msg.Err)
		if len(msg.Blob) > 0 {
			f.c.mergeRoute(msg.Blob)
		}
		if !Retryable(err) {
			f.fail(err)
			return
		}
		// Transient (moved primary, replication off during boot): point the
		// subscription at whatever the merged table now says.
		f.kick()
		return
	}
	recs, err := gstore.DecodeFeedRecords(msg.Blob)
	if err != nil {
		f.fail(fmt.Errorf("core: bad feed batch for partition %d: %w", f.part, err))
		return
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.confirmed = true
	queued := false
	for _, r := range recs {
		if r.Seq <= f.cursor {
			continue // duplicate of an already delivered record (resubscribe overlap)
		}
		if r.Seq != f.cursor+1 {
			// A gap means this batch was built against a watermark ahead of
			// our cursor (e.g. a stale in-flight batch raced a resubscribe).
			// Drop the rest and re-present the cursor; the server re-ships.
			f.mu.Unlock()
			f.kick()
			return
		}
		f.queue = append(f.queue, FeedEvent{Part: f.part, Epoch: r.Epoch, Seq: r.Seq, Muts: r.Muts})
		f.cursor = r.Seq
		queued = true
	}
	f.mu.Unlock()
	if queued {
		select {
		case f.wake <- struct{}{}:
		default:
		}
	}
}

// pump drains the queue into the consumer-facing channel, decoupling a slow
// consumer from the transport dispatch goroutine.
func (f *Feed) pump() {
	defer close(f.pumpDone)
	defer close(f.events)
	for {
		f.mu.Lock()
		var next []FeedEvent
		if len(f.queue) > 0 {
			next = f.queue
			f.queue = nil
		}
		f.mu.Unlock()
		if next == nil {
			select {
			case <-f.stop:
				// Drain-free shutdown: the consumer is gone or the feed died.
				return
			case <-f.wake:
				continue
			}
		}
		for _, ev := range next {
			select {
			case f.events <- ev:
			case <-f.stop:
				return
			}
		}
	}
}
