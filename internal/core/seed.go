package core

import (
	"sort"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
)

// Seed filter pushdown (§III: traversal entry points are "retrieved with
// searching or indexing mechanisms provided by the underlying graph
// storage"). When the local store indexes a property that step 0 filters
// on, the seed's source set resolves through the index — O(matches) step-0
// candidates — instead of enqueuing the whole label population and
// filtering each vertex after its disk access. The index is label-agnostic,
// so candidates still pass through the full step-0 predicate
// (query.SourceMatches) when processed; the pushdown only shrinks the
// candidate set, never changes results.

// seedFromIndex resolves the step-0 source candidates through a property
// index when one covers a step-0 filter. ok is false when no index covers
// (or a lookup fails), in which case the caller falls back to the scan
// path. An empty id list with ok == true is authoritative: the index
// proves no local vertex carries a matching value.
func (s *Server) seedFromIndex(s0 query.Step) (ids []model.VertexID, ok bool) {
	ix, isIx := s.cfg.Store.(gstore.PropertyIndex)
	if !isIx {
		return nil, false
	}
	f, found := pickIndexedFilter(ix, s0.VertexFilters)
	if !found {
		return nil, false
	}
	var err error
	switch f.Op {
	case property.EQ:
		ids, err = ix.LookupVertices(f.Key, f.Args[0])
	case property.IN:
		ids, err = lookupUnion(ix, f.Key, f.Args)
	case property.RANGE:
		ids, err = ix.LookupVerticesRange(f.Key, f.Args[0], f.Args[1])
	default:
		return nil, false
	}
	if err != nil {
		// A failed lookup degrades to the scan path rather than failing
		// the traversal: the index is an accelerator, not a correctness
		// dependency.
		return nil, false
	}
	return ids, true
}

// pickIndexedFilter chooses the step-0 vertex filter to push into the
// index. Ops are preferred in selectivity order — EQ (one value), then IN
// (a few values), then RANGE — and within an op the first filter in plan
// order wins. The reserved label pseudo-key is not a stored property and
// never indexable; RANGE additionally needs the order-preserving encoding,
// so string ranges stay on the scan path.
func pickIndexedFilter(ix gstore.PropertyIndex, fs property.Filters) (property.Filter, bool) {
	for _, op := range []property.Op{property.EQ, property.IN, property.RANGE} {
		for _, f := range fs {
			if f.Op != op || f.Key == query.LabelKey || !ix.HasIndex(f.Key) {
				continue
			}
			if len(f.Args) == 0 {
				continue
			}
			if op == property.RANGE && !property.OrderComparable(f.Args[0].Kind()) {
				continue
			}
			return f, true
		}
	}
	return property.Filter{}, false
}

// lookupUnion resolves an IN filter as the deduplicated union of per-value
// exact-match lookups, in ascending id order like every index lookup.
func lookupUnion(ix gstore.PropertyIndex, key string, vals []property.Value) ([]model.VertexID, error) {
	seen := make(map[model.VertexID]bool)
	var ids []model.VertexID
	for _, v := range vals {
		got, err := ix.LookupVertices(key, v)
		if err != nil {
			return nil, err
		}
		for _, id := range got {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// selectSeeds enumerates this server's step-0 source candidates: via index
// pushdown when possible, else the by-label (or full) scan. It charges the
// simulated disk one sequential scan either way — the index read replaces
// the label-namespace read — and feeds the seed-selection counters:
// SeedScanned counts candidates enumerated on either path, SeedIndexHits
// only index-resolved ones, so an indexed selective seed shows
// SeedScanned == matches where the scan path shows the label population.
func (s *Server) selectSeeds(s0 query.Step) ([]model.VertexID, error) {
	s.disk.Access(0, scanBlock) // one sequential index/label-namespace scan
	ids, usedIndex := s.seedFromIndex(s0)
	var err error
	if !usedIndex {
		if s0.SourceLabel != "" {
			err = s.cfg.Store.ScanVerticesByLabel(s0.SourceLabel, func(id model.VertexID) bool {
				ids = append(ids, id)
				return true
			})
		} else {
			err = s.cfg.Store.ScanVertices(func(v model.Vertex) bool {
				ids = append(ids, v.ID)
				return true
			})
		}
	}
	if err != nil {
		return nil, err
	}
	// With replication enabled this store holds vertices for every partition
	// it replicates, but only partitions it currently primaries may seed a
	// traversal here — the primary of each other partition enumerates its
	// own copy. Without the filter every replica would seed the same
	// vertices ReplicationFactor times.
	if s.cfg.Route != nil {
		self := int32(s.cfg.ID)
		owned := ids[:0]
		for _, id := range ids {
			p := s.cfg.Route.Partition(id)
			if s.cfg.Route.Assignment(p).Primary == self {
				owned = append(owned, id)
			}
		}
		ids = owned
	}
	if usedIndex {
		s.met.AddSeedIndexHits(len(ids))
	}
	s.met.AddSeedScanned(len(ids))
	return ids, nil
}
