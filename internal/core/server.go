package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graphtrek/internal/cache"
	"graphtrek/internal/events"
	"graphtrek/internal/gstore"
	"graphtrek/internal/metrics"
	"graphtrek/internal/model"
	"graphtrek/internal/query"
	"graphtrek/internal/sched"
	"graphtrek/internal/simio"
	"graphtrek/internal/trace"
	"graphtrek/internal/wire"
)

// Server is one backend traversal-engine instance, colocated with one
// storage partition. Wire it to a transport by passing Server.Handle as the
// transport's handler and calling Bind.
type Server struct {
	cfg   Config
	tr    transport
	disk  *simio.Disk
	met   metrics.Server
	cache *cache.Cache
	// exec is the shared executor queue: one two-level scheduler multiplexing
	// every concurrent traversal over the server's single worker pool.
	exec *sched.Multi
	// trc ring-buffers a span per terminated traversal execution, plus
	// coordinator travel summaries. Nil when Config.TraceCap is negative.
	trc *trace.Recorder
	// journal ring-buffers typed control-plane events (suspicions,
	// promotions, handoffs — see internal/events). Nil (a valid no-op
	// recorder) when Config.EventCap is negative.
	journal *events.Journal

	mu      sync.Mutex
	travels map[uint64]*travelState
	ledgers map[uint64]*ledger
	// pendingMsgs buffers messages that raced ahead of their StartTravel
	// broadcast (possible across independent links).
	pendingMsgs map[uint64][]pendingMsg
	// traceReqs routes KindTraceResp replies to in-flight raw-span pulls
	// (slow-traversal capture), keyed by request id.
	traceReqs map[uint64]chan wire.Message
	traceSeq  atomic.Uint64
	// slowMu guards the bounded ring of captured slow-traversal DAGs.
	slowMu   sync.Mutex
	slowDAGs []*trace.DAG
	// doneTravels remembers recently finished traversals so late messages
	// are dropped instead of buffered forever.
	doneTravels map[uint64]bool
	doneOrder   []uint64
	closed      bool

	// Failure-detector state: per-backend liveness timestamps (unix
	// nanos) and suspicion flags, indexed by server id. Allocated even
	// when heartbeats are disabled so suspicion checks are always safe
	// (and always false).
	lastSeen  []atomic.Int64
	suspected []atomic.Bool
	stop      chan struct{}

	// Replication state (repl.go): per-partition primary/follower machinery
	// and in-flight promotion polls. One mutex guards both because the
	// transport dispatch goroutine, the failure detector and write-timeout
	// timers all touch them. Empty maps when Config.Route is nil.
	replMu     sync.Mutex
	repl       map[int]*partRepl
	promoPolls map[int]*seqVote

	execSeq atomic.Uint64
	wg      sync.WaitGroup
}

type pendingMsg struct {
	from int
	msg  wire.Message
}

const maxPendingMsgs = 1 << 16
const doneHistory = 4096

// NewServer creates a server. Bind must be called with the transport before
// any message can be sent or received.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	disk := cfg.Disk
	if disk == nil {
		disk = noopDisk
	}
	var trc *trace.Recorder
	if cfg.TraceCap > 0 {
		trc = trace.NewRecorder(cfg.TraceCap)
	}
	if len(cfg.IndexKeys) > 0 {
		// Best-effort boot-time enable: a store without index support (or a
		// failed backfill) leaves the key un-indexed and seed selection on
		// the scan path — slower, never wrong. Deployments that must know
		// enable explicitly (cmd/graphtrek-server does, and fails loudly).
		if ix, ok := cfg.Store.(gstore.PropertyIndex); ok {
			for _, key := range cfg.IndexKeys {
				_ = ix.EnableIndex(key)
			}
		}
	}
	var journal *events.Journal
	if cfg.EventCap > 0 {
		journal = events.NewJournal(cfg.ID, cfg.EventCap)
	}
	return &Server{
		cfg:         cfg,
		disk:        disk,
		cache:       cache.New(cfg.CacheCap),
		journal:     journal,
		exec:        sched.NewMulti(cfg.MaxQueueDepth),
		trc:         trc,
		travels:     make(map[uint64]*travelState),
		ledgers:     make(map[uint64]*ledger),
		pendingMsgs: make(map[uint64][]pendingMsg),
		traceReqs:   make(map[uint64]chan wire.Message),
		doneTravels: make(map[uint64]bool),
		lastSeen:    make([]atomic.Int64, cfg.Part.N()),
		suspected:   make([]atomic.Bool, cfg.Part.N()),
		stop:        make(chan struct{}),
		repl:        make(map[int]*partRepl),
		promoPolls:  make(map[int]*seqVote),
	}
}

// Bind attaches the transport and starts the server's worker pool — exactly
// Workers goroutines for the server's lifetime, independent of how many
// traversals are in flight. It must be called exactly once, before the
// transport starts delivering messages. With HeartbeatInterval set, Bind
// also starts the failure detector.
func (s *Server) Bind(tr transport) {
	s.tr = tr
	s.initRepl()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cfg.HeartbeatInterval > 0 {
		s.startFailureDetector()
	}
	// Boot route announcement: offer our table to every node. On a fresh
	// cluster everyone holds the identical epoch-1 table and this is a
	// no-op; on a restart after a failover it is what fences us — any peer
	// holding a newer assignment replies with it (anti-entropy in
	// handleRouteUpdate), demoting a stale ex-primary within one round
	// trip even on an otherwise quiet cluster.
	if s.cfg.Route != nil {
		s.gossipRoute(s.cfg.Route.Table())
	}
}

// worker is one lane of the shared executor pool: it drains the two-level
// queue, serving whichever traversal the fair-share policy selects.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		g, ok := s.exec.Pop()
		if !ok {
			return
		}
		s.mu.Lock()
		ts := s.travels[g.Travel]
		s.mu.Unlock()
		if ts == nil {
			continue // traversal torn down between pop and lookup
		}
		ts.inProcess.Add(int64(len(g.Items)))
		// Popped is stamped by the scheduler's pop, so the metric and the
		// span-level wait attribution downstream share one clock read.
		s.met.AddQueueWait(g.Popped.Sub(g.Enqueued))
		s.processGroup(ts, g)
		// One compute sample per popped group, so the step-compute
		// histogram's _count stays pinned to queue_groups_total.
		s.met.ObserveStepCompute(time.Since(g.Popped))
		s.maybeFlush(ts)
	}
}

// maybeFlush flushes a traversal's outboxes at local quiescence — eligible
// queue empty AND nothing in process. With FlushLinger configured the flush
// is deferred on a timer (never on a shared worker: a sleeping worker would
// stall other traversals) so waves of in-flight batches consolidate.
func (s *Server) maybeFlush(ts *travelState) {
	if s.exec.EligibleLen(ts.id) != 0 || ts.inProcess.Load() != 0 {
		return
	}
	if s.cfg.FlushLinger <= 0 {
		s.flushTravel(ts)
		return
	}
	if !ts.flushPending.CompareAndSwap(false, true) {
		return // a deferred flush is already scheduled
	}
	// The timer goroutine joins the server's waitgroup; Add happens on a
	// worker goroutine, so the counter is still positive during Close's Wait.
	s.wg.Add(1)
	time.AfterFunc(s.cfg.FlushLinger, func() {
		defer s.wg.Done()
		ts.flushPending.Store(false)
		select {
		case <-s.stop:
			return
		default:
		}
		if s.exec.EligibleLen(ts.id) == 0 && ts.inProcess.Load() == 0 {
			s.flushTravel(ts)
		}
	})
}

// enqueue admits a request batch into the shared executor, enforcing
// MaxQueueDepth. On ErrBackpressure the whole batch was refused and the
// caller must surface it on the traversal's error path so the client can
// retry; admitted batches update the received counter and depth gauge.
func (s *Server) enqueue(items []sched.Item) error {
	depth, err := s.exec.Push(items)
	if err != nil {
		s.met.AddRejected(1)
		// Bursts coalesce into one journal entry with a growing count.
		s.journal.Record(events.Event{Type: events.Backpressure, Part: -1, Peer: -1,
			Detail: fmt.Sprintf("executor queue full, batch of %d refused", len(items))})
		return err
	}
	s.met.AddReceived(len(items))
	s.met.ObserveQueueDepth(int64(depth))
	return nil
}

// admissionError formats an executor rejection as a retryable traversal
// error.
func (s *Server) admissionError(err error) string {
	return fmt.Sprintf("core: server %d rejected traversal work, retry later: %v", s.cfg.ID, err)
}

// ID returns the server's node id.
func (s *Server) ID() int { return s.cfg.ID }

// Metrics returns a snapshot of this server's engine counters.
func (s *Server) Metrics() Metrics {
	m := s.met.Snapshot()
	// The storage layer owns the read-cache counters; overlay them so one
	// snapshot carries the whole read path.
	if cs, ok := s.cfg.Store.(gstore.CacheStatter); ok {
		st := cs.CacheStats()
		m.VtxCacheHits = st.VtxHits
		m.VtxCacheMisses = st.VtxMisses
		m.AdjCacheHits = st.AdjHits
		m.AdjCacheMisses = st.AdjMisses
	}
	// The trace layer owns the span-eviction counter; overlay it the same
	// way so DAG assemblers can tell wrapped rings from tracing bugs.
	m.SpansDropped = int64(s.trc.Stats().SpansEvicted)
	// The Go runtime owns the GC gauges.
	metrics.ReadRuntime(&m)
	return m
}

// QueueLen reports the shared executor's current buffered item count.
func (s *Server) QueueLen() int { return s.exec.Len() }

// QueueHighWater reports the executor queue's depth high-water mark.
func (s *Server) QueueHighWater() int { return s.exec.HighWater() }

// TraceSpans returns this server's buffered execution spans for one
// traversal (travel == 0: all traversals), oldest first. Empty when
// tracing is disabled.
func (s *Server) TraceSpans(travel uint64) []trace.Span { return s.trc.Spans(travel) }

// TraceSummaries returns the travel summaries of traversals this server
// coordinated, oldest first.
func (s *Server) TraceSummaries() []trace.TravelSummary { return s.trc.Summaries() }

// TraceSummary returns the coordinator summary for one traversal, if this
// server coordinated it and the record is still buffered.
func (s *Server) TraceSummary(travel uint64) (trace.TravelSummary, bool) {
	return s.trc.Summary(travel)
}

// TraceStats reports the trace ring's buffering counters.
func (s *Server) TraceStats() trace.RingStats { return s.trc.Stats() }

// beginSpan starts a span for an execution of `frontier` entries on this
// server; nil (recorded nowhere, all methods no-ops) when tracing is off.
// parent is the exec id of the dispatching execution (zero for roots).
func (s *Server) beginSpan(travel, exec, parent uint64, step int32, frontier int) *trace.Builder {
	if s.trc == nil {
		return nil
	}
	return trace.Begin(travel, exec, parent, int32(s.cfg.ID), step, frontier)
}

// recordInstantSpan traces an execution that terminated without entering
// the executor — an empty dispatch, a lightweight return-signal batch, or
// an admission-rejected batch. Keeping these in the ring preserves the
// span-per-terminated-execution invariant the ledger cross-check relies
// on.
func (s *Server) recordInstantSpan(travel, exec, parent uint64, step int32, frontier int, errMsg string) {
	if s.trc == nil {
		return
	}
	b := trace.Begin(travel, exec, parent, int32(s.cfg.ID), step, frontier)
	if errMsg != "" {
		b.Fail(errMsg)
	}
	s.trc.RecordSpan(b.Finish())
}

// Close stops the worker pool, releases every in-flight traversal's state
// and waits for the server's goroutines. The transport is owned by the
// caller and closed separately.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for id := range s.travels {
		s.dropTravelLocked(id)
	}
	s.mu.Unlock()
	close(s.stop)
	s.exec.Close()
	s.wg.Wait()
}

// ObserveReconnect records a transport-level peer reconnection in this
// server's metrics; wire it to rpc.TCPOptions.OnReconnect.
func (s *Server) ObserveReconnect(int) { s.met.AddReconnects(1) }

// ObserveSendFailure records a transport-level frame loss in this server's
// metrics; wire it to rpc.TCPOptions.OnSendFailure.
func (s *Server) ObserveSendFailure(int) { s.met.AddMsgsFailed(1) }

// travelState is the per-traversal state a backend server keeps. Its
// requests live in the server's shared executor queue, keyed by id.
type travelState struct {
	id    uint64
	plan  *query.Plan
	mode  Mode
	tun   tuning
	coord int32

	// flushMu guards the outboxes, buffered results and ended executions.
	flushMu sync.Mutex
	outbox  map[outKey]*outboxSet // dispatch entry sets per (target, step)
	sigbox  map[int]*outboxSet    // rtn() end-of-chain signals per target
	results []model.VertexID
	errs    []string
	ended   []uint64

	// rtnMu guards the rtn() pending table (§IV-D).
	rtnMu sync.Mutex
	rtn   map[rtnKey]*rtnRec

	// inProcess counts items popped from the queue but not yet finished.
	// Outboxes are flushed only at local quiescence — eligible queue empty
	// AND nothing in process — so each server's step output consolidates
	// into approximately one batch per target. Flushing on every transient
	// queue drain would fragment the output into many small batches whose
	// re-processing compounds step over step; consolidation keeps the
	// plain-async engine's redundant-visit amplification at the moderate
	// levels the paper's Fig 7 and Table I report.
	inProcess atomic.Int64
	// flushPending guards against stacking more than one deferred
	// FlushLinger flush timer per traversal.
	flushPending atomic.Bool
}

type rtnKey struct {
	vertex model.VertexID
	step   int32
}

// rtnRec tracks one rtn()-marked vertex awaiting an end-of-chain signal.
type rtnRec struct {
	returned bool
	ups      []upRef
}

type upRef struct {
	anc     model.VertexID
	ancStep int32
	dest    int32
}

// newExecID mints a traversal-execution id unique across the cluster:
// high bits identify the creating server.
func (s *Server) newExecID() uint64 {
	return uint64(s.cfg.ID+1)<<48 | s.execSeq.Add(1)
}

// Handle is the transport handler. It is safe for concurrent invocation.
func (s *Server) Handle(from int, msg wire.Message) {
	s.noteAlive(from)
	switch msg.Kind {
	case wire.KindStartTravel:
		s.handleStartTravel(from, msg)
	case wire.KindDispatch:
		s.withTravel(from, msg, s.handleDispatch)
	case wire.KindReturnSig:
		s.withTravel(from, msg, s.handleReturnSig)
	case wire.KindStepGo:
		s.withTravel(from, msg, func(_ int, m wire.Message, ts *travelState) {
			s.exec.Release(ts.id, m.Step)
		})
	case wire.KindTravelDone:
		s.handleTravelDone(msg)
	case wire.KindVisitReq:
		s.withTravel(from, msg, s.handleVisitReq)
	case wire.KindProgressReq:
		s.handleProgressReq(from, msg)
	case wire.KindCancel:
		s.handleCancel(msg)
	case wire.KindResult, wire.KindExecEvents:
		s.handleCoordinator(from, msg)
	case wire.KindHeartbeat:
		// Liveness already noted above; heartbeats carry nothing else.
	case wire.KindPeerDown:
		s.handlePeerDown(from, msg)
	case wire.KindTraceReq:
		s.handleTraceReq(from, msg)
	case wire.KindTraceResp:
		s.handleTraceResp(msg)
	case wire.KindWriteReq:
		s.handleWriteReq(from, msg)
	case wire.KindReplAppend:
		s.handleReplAppend(from, msg)
	case wire.KindReplAck:
		s.handleReplAck(from, msg)
	case wire.KindSnapshot:
		s.handleSnapshot(from, msg)
	case wire.KindRouteUpdate:
		s.handleRouteUpdate(from, msg)
	case wire.KindFeedSub:
		s.handleFeedSub(from, msg)
	case wire.KindEventsReq:
		s.handleEventsReq(from, msg)
	case wire.KindStatusReq:
		s.handleStatusReq(from, msg)
	}
}

// handleTraceReq answers a trace query, JSON-encoded in Blob. Mode 0
// returns this server's per-step aggregate for the traversal (TravelID ==
// 0: everything buffered); Mode traceModeRaw returns the raw spans as a
// trace.SpanDump — the input the DAG assembler joins across servers — plus
// the ledger summary when this server coordinated the traversal. With
// tracing disabled the response carries an empty payload, not an error —
// profiling degrades, it never fails.
func (s *Server) handleTraceReq(from int, msg wire.Message) {
	resp := wire.Message{Kind: wire.KindTraceResp, TravelID: msg.TravelID, ReqID: msg.ReqID, Mode: msg.Mode}
	var payload any
	if msg.Mode == traceModeRaw {
		dump := trace.SpanDump{
			Server:  int32(s.cfg.ID),
			Spans:   s.TraceSpans(msg.TravelID),
			Dropped: s.trc.Stats().SpansEvicted,
		}
		if sum, ok := s.TraceSummary(msg.TravelID); ok {
			dump.Summary = &sum
		}
		payload = dump
	} else {
		stats := trace.Aggregate(s.TraceSpans(msg.TravelID))
		if len(stats) == 0 {
			s.send(from, resp)
			return
		}
		payload = stats
	}
	blob, err := json.Marshal(payload)
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.Blob = blob
	}
	s.send(from, resp)
}

// handleTraceResp routes a raw-span reply to the slow-traversal capture
// that requested it; unmatched responses (capture timed out) are dropped.
func (s *Server) handleTraceResp(msg wire.Message) {
	s.mu.Lock()
	ch := s.traceReqs[msg.ReqID]
	s.mu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default:
		}
	}
}

// withTravel resolves the traversal state for a message, buffering the
// message if its StartTravel has not arrived yet and dropping it if the
// traversal already finished.
func (s *Server) withTravel(from int, msg wire.Message, fn func(int, wire.Message, *travelState)) {
	s.mu.Lock()
	ts, ok := s.travels[msg.TravelID]
	if !ok {
		if !s.doneTravels[msg.TravelID] && !s.closed {
			if len(s.pendingMsgs[msg.TravelID]) < maxPendingMsgs {
				s.pendingMsgs[msg.TravelID] = append(s.pendingMsgs[msg.TravelID], pendingMsg{from, msg})
			}
		}
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	fn(from, msg, ts)
}

// handleStartTravel registers a traversal on this server. If the message
// came from a client node (id >= Part.N()), this server becomes the
// traversal's coordinator.
func (s *Server) handleStartTravel(from int, msg wire.Message) {
	plan, err := query.DecodePlan(msg.Plan)
	if err != nil {
		// A malformed plan from a client gets an immediate error reply.
		if from >= s.cfg.Part.N() {
			s.send(from, wire.Message{Kind: wire.KindTravelDone, TravelID: msg.TravelID, Err: err.Error()})
		}
		return
	}
	mode := Mode(msg.Mode)
	isCoordinatorRequest := from >= s.cfg.Part.N() && mode != ModeClientSide

	ts := &travelState{
		id:     msg.TravelID,
		plan:   plan,
		mode:   mode,
		tun:    mode.tuning(),
		coord:  msg.Coord,
		outbox: make(map[outKey]*outboxSet),
		sigbox: make(map[int]*outboxSet),
		rtn:    make(map[rtnKey]*rtnRec),
	}
	if isCoordinatorRequest {
		ts.coord = int32(s.cfg.ID)
	}

	s.mu.Lock()
	if s.closed || s.travels[msg.TravelID] != nil || s.doneTravels[msg.TravelID] {
		s.mu.Unlock()
		return
	}
	// Register the traversal's sub-queue with the shared executor before any
	// request can be pushed; the server's standing worker pool picks its
	// groups up under the fair-share policy.
	s.exec.Register(msg.TravelID, sched.Options{
		Priority: ts.tun.priority,
		Merge:    ts.tun.merge,
		Gated:    ts.tun.gated,
	})
	s.travels[msg.TravelID] = ts
	replay := s.pendingMsgs[msg.TravelID]
	delete(s.pendingMsgs, msg.TravelID)
	s.mu.Unlock()

	if isCoordinatorRequest {
		s.startCoordination(from, msg.TravelID, ts)
	} else if msg.ExecID != 0 {
		// The broadcast carried a seed execution: select local sources.
		s.runSeedExec(ts, msg.ExecID)
	}

	for _, pm := range replay {
		s.Handle(pm.from, pm.msg)
	}
}

// runSeedExec performs the local source selection for label / full-scan
// seeded traversals: every candidate local vertex becomes a step-0 request.
// Candidates come from an index pushdown when one covers a step-0 filter,
// else from the label (or full) scan — see selectSeeds.
func (s *Server) runSeedExec(ts *travelState, execID uint64) {
	s0 := ts.plan.Steps[0]
	ids, err := s.selectSeeds(s0)
	if err != nil {
		ts.addErr(err.Error())
	}
	if len(ids) == 0 || err != nil {
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		ts.addEnded(execID)
		s.recordInstantSpan(ts.id, execID, 0, 0, len(ids), errMsg)
		s.flushTravel(ts)
		return
	}
	// Seed executions are DAG roots: no dispatching execution created them.
	acc := &execAcc{id: execID, sp: s.beginSpan(ts.id, execID, 0, 0, len(ids))}
	acc.pending.Store(int32(len(ids)))
	items := make([]sched.Item, len(ids))
	for i, id := range ids {
		items[i] = sched.Item{
			Travel: ts.id, Step: 0, Vertex: id,
			Anc: 0, AncStep: -1, Dest: -1, Exec: acc,
		}
	}
	if err := s.enqueue(items); err != nil {
		msg := s.admissionError(err)
		ts.addErr(msg)
		ts.addEnded(execID)
		if acc.sp != nil {
			acc.sp.Fail(msg)
			s.trc.RecordSpan(acc.sp.Finish())
		}
		s.flushTravel(ts)
	}
}

// handleDispatch enqueues a frontier batch as one traversal execution.
func (s *Server) handleDispatch(_ int, msg wire.Message, ts *travelState) {
	if len(msg.Entries) == 0 {
		ts.addEnded(msg.ExecID)
		s.recordInstantSpan(ts.id, msg.ExecID, msg.ParentExec, msg.Step, 0, "")
		s.flushTravel(ts)
		return
	}
	// With replication enabled, fence work routed with a stale table: a
	// batch holding any vertex whose partition this server no longer
	// primaries fails whole with a retryable error, and the retry — after
	// the client merges the gossiped route — lands on the new primary.
	if s.cfg.Route != nil {
		if p, moved := s.misroutedEntries(msg.Entries); moved {
			errMsg := fmt.Sprintf("%v: partition %d is not primaried by server %d", ErrPartitionMoved, p, s.cfg.ID)
			ts.addErr(errMsg)
			ts.addEnded(msg.ExecID)
			s.recordInstantSpan(ts.id, msg.ExecID, msg.ParentExec, msg.Step, len(msg.Entries), errMsg)
			s.flushTravel(ts)
			return
		}
	}
	acc := &execAcc{id: msg.ExecID, sp: s.beginSpan(ts.id, msg.ExecID, msg.ParentExec, msg.Step, len(msg.Entries))}
	acc.pending.Store(int32(len(msg.Entries)))
	items := make([]sched.Item, len(msg.Entries))
	for i, e := range msg.Entries {
		items[i] = sched.Item{
			Travel: ts.id, Step: msg.Step, Vertex: e.Vertex,
			Anc: e.Anc, AncStep: e.AncStep, Dest: e.Dest, Exec: acc,
		}
	}
	if err := s.enqueue(items); err != nil {
		// The batch was refused whole; report the execution terminated with
		// a retryable error so the ledger fails the traversal promptly.
		errMsg := s.admissionError(err)
		ts.addErr(errMsg)
		ts.addEnded(msg.ExecID)
		if acc.sp != nil {
			acc.sp.Fail(errMsg)
			s.trc.RecordSpan(acc.sp.Finish())
		}
		s.flushTravel(ts)
	}
}

// handleTravelDone releases a finished traversal's state.
func (s *Server) handleTravelDone(msg wire.Message) {
	s.mu.Lock()
	s.dropTravelLocked(msg.TravelID)
	s.mu.Unlock()
}

func (s *Server) dropTravelLocked(id uint64) {
	if _, ok := s.travels[id]; ok {
		// Evict the dead traversal's pending groups from the shared
		// executor so they never occupy a worker.
		s.exec.Drop(id)
		delete(s.travels, id)
	}
	delete(s.pendingMsgs, id)
	s.cache.DropTravel(id)
	if !s.doneTravels[id] {
		s.doneTravels[id] = true
		s.doneOrder = append(s.doneOrder, id)
		if len(s.doneOrder) > doneHistory {
			old := s.doneOrder[0]
			s.doneOrder = s.doneOrder[1:]
			delete(s.doneTravels, old)
		}
	}
}

// send transmits one engine message, tracking the outbound-message and
// failure counters. There is no per-message retry — callers that can
// attribute a failure to a traversal record it on the traversal's error
// path, and the failure detector / watchdog cover the rest — but a dead
// link is observable in MsgsFailed instead of vanishing silently.
func (s *Server) send(to int, msg wire.Message) error {
	s.met.AddMsgsSent(1)
	if err := s.tr.Send(to, msg); err != nil {
		s.met.AddMsgsFailed(1)
		return err
	}
	return nil
}

// addErr records a traversal-level error for the next flush.
func (ts *travelState) addErr(e string) {
	ts.flushMu.Lock()
	defer ts.flushMu.Unlock()
	ts.errs = append(ts.errs, e)
}

// addEnded records a completed execution for the next flush.
func (ts *travelState) addEnded(id uint64) {
	ts.flushMu.Lock()
	defer ts.flushMu.Unlock()
	ts.ended = append(ts.ended, id)
}
