package core

import (
	"encoding/json"
	"fmt"
	"time"

	"graphtrek/internal/events"
	"graphtrek/internal/trace"
	"graphtrek/internal/wire"
)

// Slow-traversal capture: when a traversal's end-to-end latency crosses
// Config.SlowTravelNs, its coordinator pulls every server's raw spans for
// it (KindTraceReq in raw mode), assembles the causal DAG, and keeps the
// result in a small bounded ring. The evidence for "why was that one slow"
// thus survives the per-server trace rings' churn and stays inspectable
// later through Server.SlowTravels and the obs /traces/slow endpoint.

// traceModeRaw selects the raw-span trace.SpanDump payload on a
// KindTraceReq, as opposed to the default per-step aggregate.
const traceModeRaw = 1

// slowTravelCap bounds the retained slow-traversal DAGs (oldest evicted).
const slowTravelCap = 32

// slowPullTimeout bounds how long the capture waits for each peer's spans.
const slowPullTimeout = 2 * time.Second

// maybeCaptureSlow spawns the slow-traversal capture when a finished
// traversal crossed the configured latency threshold. Asynchronous and
// best-effort: a peer that never answers costs one timeout and shows up as
// orphans in the assembled DAG, never as a stuck coordinator.
func (s *Server) maybeCaptureSlow(sum trace.TravelSummary) {
	if s.cfg.SlowTravelNs <= 0 || s.trc == nil || sum.ElapsedNs < s.cfg.SlowTravelNs {
		return
	}
	s.journal.Record(events.Event{Type: events.SlowTravel, Part: -1, Peer: -1,
		Detail: fmt.Sprintf("travel %d took %v (threshold %v), capturing DAG",
			sum.Travel, time.Duration(sum.ElapsedNs), time.Duration(s.cfg.SlowTravelNs))})
	s.wg.Add(1)
	go s.captureSlowTravel(sum)
}

func (s *Server) captureSlowTravel(sum trace.TravelSummary) {
	defer s.wg.Done()
	spans := s.TraceSpans(sum.Travel)
	dropped := s.trc.Stats().SpansEvicted
	for peer := 0; peer < s.cfg.Part.N(); peer++ {
		if peer == s.cfg.ID {
			continue
		}
		dump, err := s.pullSpans(peer, sum.Travel, slowPullTimeout)
		if err != nil {
			continue // missing servers surface as orphans in the DAG
		}
		spans = append(spans, dump.Spans...)
		dropped += dump.Dropped
	}
	d := trace.Assemble(sum.Travel, spans, &sum)
	d.SpansDropped = dropped
	s.slowMu.Lock()
	s.slowDAGs = append(s.slowDAGs, d)
	if len(s.slowDAGs) > slowTravelCap {
		s.slowDAGs = s.slowDAGs[len(s.slowDAGs)-slowTravelCap:]
	}
	s.slowMu.Unlock()
}

// pullSpans fetches one peer's raw spans for a traversal, blocking until
// the reply, the timeout, or server shutdown.
func (s *Server) pullSpans(peer int, travel uint64, timeout time.Duration) (trace.SpanDump, error) {
	req := s.traceSeq.Add(1)
	ch := make(chan wire.Message, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return trace.SpanDump{}, fmt.Errorf("core: server closed")
	}
	s.traceReqs[req] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.traceReqs, req)
		s.mu.Unlock()
	}()
	if err := s.send(peer, wire.Message{
		Kind: wire.KindTraceReq, TravelID: travel, ReqID: req, Mode: traceModeRaw,
	}); err != nil {
		return trace.SpanDump{}, err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case msg := <-ch:
		if msg.Err != "" {
			return trace.SpanDump{}, fmt.Errorf("core: trace pull from server %d: %s", peer, msg.Err)
		}
		var dump trace.SpanDump
		if err := json.Unmarshal(msg.Blob, &dump); err != nil {
			return trace.SpanDump{}, fmt.Errorf("core: trace pull from server %d: %w", peer, err)
		}
		return dump, nil
	case <-t.C:
		return trace.SpanDump{}, fmt.Errorf("core: trace pull from server %d timed out", peer)
	case <-s.stop:
		return trace.SpanDump{}, fmt.Errorf("core: server closing")
	}
}

// SlowTravels returns the captured slow-traversal DAGs, oldest first.
func (s *Server) SlowTravels() []*trace.DAG {
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	out := make([]*trace.DAG, len(s.slowDAGs))
	copy(out, s.slowDAGs)
	return out
}
