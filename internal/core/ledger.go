package core

import (
	"fmt"
	"sync"
	"time"

	"graphtrek/internal/model"
	"graphtrek/internal/query"
	"graphtrek/internal/trace"
	"graphtrek/internal/wire"
)

// ledger is the coordinator's status-tracing record for one traversal
// (§IV-C). Every traversal execution in the cluster is logged here as
// created and, later, terminated. Because creation and termination reports
// travel on independent links, either may arrive first; the ledger
// therefore tracks matched pairs and declares the traversal complete
// exactly when the created and terminated sets coincide. The key soundness
// property: a terminating execution registers its children in the same
// (atomically processed) message, so set equality implies cluster-wide
// quiescence.
type ledger struct {
	mu      sync.Mutex
	travel  uint64
	mode    Mode
	client  int
	plan    *query.Plan
	servers int

	execs         map[uint64]*execInfo
	liveByStep    map[int32]int // created-and-not-ended executions per step
	liveByServer  map[int32]int // same, keyed by assigned server — the failure detector's join point
	liveTotal     int
	unmatchedEnds int
	rootsSent     bool

	// createdTotal / endedTotal count distinct registered / terminated
	// executions over the traversal's lifetime (live counters net out to
	// zero at completion). They feed the coordinator's TravelSummary, where
	// trace-span counts can be cross-checked against ledger accounting.
	createdTotal int
	endedTotal   int
	started      time.Time

	gate     int32 // Sync-GT barrier position
	results  map[model.VertexID]bool
	errs     []string
	done     bool
	activity time.Time
	stopWake chan struct{}
}

type execInfo struct {
	step    int32
	server  int32
	created bool
	ended   bool
}

// startCoordination turns this server into the coordinator for a traversal
// submitted by a client: it broadcasts the plan to the other backends,
// seeds the source step, and arms the watchdog.
func (s *Server) startCoordination(client int, travelID uint64, ts *travelState) {
	led := &ledger{
		travel:       travelID,
		mode:         ts.mode,
		client:       client,
		plan:         ts.plan,
		servers:      s.cfg.Part.N(),
		execs:        make(map[uint64]*execInfo),
		liveByStep:   make(map[int32]int),
		liveByServer: make(map[int32]int),
		results:      make(map[model.VertexID]bool),
		activity:     time.Now(),
		started:      time.Now(),
		stopWake:     make(chan struct{}),
	}
	s.mu.Lock()
	s.ledgers[travelID] = led
	s.mu.Unlock()

	// Replicated clusters: every partition needs an un-suspected primary,
	// or the traversal would silently skip that partition's vertices —
	// between a primary's death and a follower's promotion the partition is
	// orphaned. Failing here (retryably) makes the client's retry loop wait
	// out the failover instead of accepting an incomplete result set.
	if s.cfg.Route != nil {
		for p := 0; p < s.cfg.Route.Parts(); p++ {
			if prim := int(s.cfg.Route.Assignment(p).Primary); s.isSuspect(prim) {
				led.mu.Lock()
				led.errs = append(led.errs,
					fmt.Sprintf("core: partition %d primary server %d suspected dead; awaiting failover", p, prim))
				led.mu.Unlock()
				s.checkLedger(led)
				return
			}
		}
	}

	planBytes := ts.plan.Encode()
	s0 := ts.plan.Steps[0]
	seedByScan := len(s0.SourceIDs) == 0

	led.mu.Lock()
	// Broadcast the traversal to every other live backend; with scan
	// seeding, each broadcast carries that server's root execution id.
	// Suspected-dead peers are skipped entirely — a traversal started
	// while a peer is down routes around it (its partition's vertices are
	// unreachable until it recovers) instead of hanging on it.
	type bcast struct {
		server int
		msg    wire.Message
	}
	var bcasts []bcast
	for srv := 0; srv < led.servers; srv++ {
		if srv == s.cfg.ID || s.isSuspect(srv) {
			continue
		}
		m := wire.Message{
			Kind: wire.KindStartTravel, TravelID: travelID,
			Mode: uint8(ts.mode), Coord: int32(s.cfg.ID), Plan: planBytes,
		}
		if seedByScan {
			m.ExecID = s.newExecID()
			led.registerCreatedLocked(wire.ExecRef{ID: m.ExecID, Server: int32(srv), Step: 0})
		}
		bcasts = append(bcasts, bcast{srv, m})
	}
	var selfSeed uint64
	if seedByScan {
		selfSeed = s.newExecID()
		led.registerCreatedLocked(wire.ExecRef{ID: selfSeed, Server: int32(s.cfg.ID), Step: 0})
	}
	// Explicit-id seeding: one root dispatch per owning server.
	type rootMsg struct {
		server int
		msg    wire.Message
	}
	var roots []rootMsg
	if !seedByScan {
		byOwner := make(map[int][]wire.Entry)
		seen := make(map[model.VertexID]bool, len(s0.SourceIDs))
		for _, id := range s0.SourceIDs {
			if seen[id] {
				continue
			}
			seen[id] = true
			owner := s.cfg.Part.Owner(id)
			byOwner[owner] = append(byOwner[owner], wire.Entry{Vertex: id, AncStep: -1, Dest: -1})
		}
		for owner, entries := range byOwner {
			id := s.newExecID()
			led.registerCreatedLocked(wire.ExecRef{ID: id, Server: int32(owner), Step: 0})
			roots = append(roots, rootMsg{owner, wire.Message{
				Kind: wire.KindDispatch, TravelID: travelID,
				Step: 0, ExecID: id, Entries: entries,
			}})
		}
	}
	led.rootsSent = true
	led.mu.Unlock()

	// A failed send here means the execution just registered for that
	// peer will never run: record it on the ledger so the traversal fails
	// fast instead of waiting for the watchdog.
	var sendErrs []string
	for _, b := range bcasts {
		if err := s.send(b.server, b.msg); err != nil {
			sendErrs = append(sendErrs, fmt.Sprintf("core: start broadcast to server %d failed: %v", b.server, err))
		}
	}
	if seedByScan {
		s.runSeedExec(ts, selfSeed)
	}
	for _, r := range roots {
		if err := s.send(r.server, r.msg); err != nil {
			sendErrs = append(sendErrs, fmt.Sprintf("core: root dispatch to server %d failed: %v", r.server, err))
		}
	}
	if len(sendErrs) > 0 {
		led.mu.Lock()
		led.errs = append(led.errs, sendErrs...)
		led.mu.Unlock()
	}
	// A traversal with zero sources completes immediately; one with a
	// dead link or a suspected peer in its root set fails immediately.
	s.checkLedger(led)

	if s.cfg.TravelTimeout > 0 {
		s.wg.Add(1)
		go s.watchdog(led)
	}
}

// registerCreatedLocked records a newly created execution.
func (l *ledger) registerCreatedLocked(ref wire.ExecRef) {
	info, ok := l.execs[ref.ID]
	if !ok {
		l.execs[ref.ID] = &execInfo{step: ref.Step, server: ref.Server, created: true}
		l.liveByStep[ref.Step]++
		l.liveByServer[ref.Server]++
		l.liveTotal++
		l.createdTotal++
		return
	}
	if info.created {
		return // duplicate registration
	}
	info.created = true
	info.step = ref.Step
	info.server = ref.Server
	l.createdTotal++
	if info.ended {
		l.unmatchedEnds-- // the early termination is now matched
	}
}

// registerEndedLocked records a terminated execution.
func (l *ledger) registerEndedLocked(id uint64) {
	info, ok := l.execs[id]
	if !ok {
		// Termination raced ahead of registration on another link.
		l.execs[id] = &execInfo{ended: true}
		l.unmatchedEnds++
		l.endedTotal++
		return
	}
	if info.ended {
		return
	}
	info.ended = true
	l.endedTotal++
	if info.created {
		l.liveByStep[info.step]--
		l.liveByServer[info.server]--
		l.liveTotal--
	} else {
		l.unmatchedEnds++
	}
}

// handleCoordinator processes Result and ExecEvents messages addressed to
// this server in its coordinator role.
func (s *Server) handleCoordinator(_ int, msg wire.Message) {
	s.mu.Lock()
	led, ok := s.ledgers[msg.TravelID]
	s.mu.Unlock()
	if !ok {
		return // finished or unknown traversal; drop silently
	}
	led.mu.Lock()
	led.activity = time.Now()
	switch msg.Kind {
	case wire.KindResult:
		for _, v := range msg.Verts {
			led.results[v] = true
		}
		led.mu.Unlock()
		return
	case wire.KindExecEvents:
		for _, ref := range msg.Created {
			led.registerCreatedLocked(ref)
		}
		for _, id := range msg.Ended {
			led.registerEndedLocked(id)
		}
		if msg.Err != "" {
			led.errs = append(led.errs, msg.Err)
		}
	}
	led.mu.Unlock()
	s.checkLedger(led)
}

// checkLedger advances the synchronous barrier and detects completion.
func (s *Server) checkLedger(led *ledger) {
	led.mu.Lock()
	if led.done {
		led.mu.Unlock()
		return
	}
	if len(led.errs) > 0 {
		s.finishTravelLocked(led)
		return
	}
	// Fast failure: live work registered on a suspected-dead backend will
	// never terminate — fail now, not at TravelTimeout. This also catches
	// mid-traversal dispatches to a peer that died after the start
	// broadcast.
	for p := 0; p < led.servers; p++ {
		if s.isSuspect(p) && led.liveByServer[int32(p)] > 0 {
			led.errs = append(led.errs, peerDeadError(p))
			s.finishTravelLocked(led)
			return
		}
	}
	if !led.rootsSent || led.unmatchedEnds > 0 {
		led.mu.Unlock()
		return
	}
	if led.liveTotal == 0 {
		s.finishTravelLocked(led)
		return
	}
	if led.mode == ModeSync {
		// Barrier: when nothing at or below the gate is live, release the
		// next step that has registered executions.
		minLive := int32(-1)
		for step, n := range led.liveByStep {
			if n > 0 && (minLive < 0 || step < minLive) {
				minLive = step
			}
		}
		if minLive > led.gate {
			led.gate = minLive
			travel := led.travel
			servers := led.servers
			gate := led.gate
			led.mu.Unlock()
			for srv := 0; srv < servers; srv++ {
				s.send(srv, wire.Message{Kind: wire.KindStepGo, TravelID: travel, Step: gate})
			}
			return
		}
	}
	led.mu.Unlock()
}

// finishTravelLocked completes a traversal: results (or the error) go to
// the client, every backend is told to release its state, and the ledger
// is retired. Called with led.mu held; releases it.
func (s *Server) finishTravelLocked(led *ledger) {
	led.done = true
	results := make([]model.VertexID, 0, len(led.results))
	for v := range led.results {
		results = append(results, v)
	}
	errText := ""
	if len(led.errs) > 0 {
		errText = led.errs[0]
	}
	client := led.client
	travel := led.travel
	servers := led.servers
	sum := trace.TravelSummary{
		Travel:      travel,
		Mode:        led.mode.String(),
		Coordinator: int32(s.cfg.ID),
		Created:     led.createdTotal,
		Ended:       led.endedTotal,
		Results:     len(results),
		Err:         errText,
		ElapsedNs:   int64(time.Since(led.started)),
	}
	if s.trc != nil {
		s.trc.RecordSummary(sum)
	}
	// End-to-end latency histogram at the coordinator: one sample per
	// coordinated traversal, tracing enabled or not.
	s.met.ObserveTravelLatency(time.Duration(sum.ElapsedNs))
	close(led.stopWake)
	led.mu.Unlock()

	s.mu.Lock()
	delete(s.ledgers, travel)
	s.mu.Unlock()

	// Result batches precede the final done marker on the same link.
	const chunk = 1 << 14
	for i := 0; i < len(results); i += chunk {
		end := min(i+chunk, len(results))
		s.send(client, wire.Message{Kind: wire.KindResult, TravelID: travel, Verts: results[i:end]})
	}
	s.send(client, wire.Message{Kind: wire.KindTravelDone, TravelID: travel, Err: errText})
	for srv := 0; srv < servers; srv++ {
		if srv == s.cfg.ID {
			continue
		}
		s.send(srv, wire.Message{Kind: wire.KindTravelDone, TravelID: travel})
	}
	// Drop the local state directly rather than via a self-send: the dead
	// traversal's pending groups must leave the shared executor even if the
	// loopback link is saturated or failing.
	s.mu.Lock()
	s.dropTravelLocked(travel)
	s.mu.Unlock()
	// Trace rings outlive travel state, so the capture can still join every
	// server's spans after the release broadcast above.
	s.maybeCaptureSlow(sum)
}

// watchdog fails the traversal if the ledger stops making progress — the
// silent-failure detection of §IV-C. Without it, a server that crashed (or
// a fault-injected one that drops requests) would leave the traversal
// hanging forever.
func (s *Server) watchdog(led *ledger) {
	defer s.wg.Done()
	tick := s.cfg.TravelTimeout / 4
	if tick <= 0 {
		tick = time.Second
	}
	timer := time.NewTicker(tick)
	defer timer.Stop()
	for {
		select {
		case <-led.stopWake:
			return
		case <-timer.C:
		}
		led.mu.Lock()
		if led.done {
			led.mu.Unlock()
			return
		}
		if time.Since(led.activity) > s.cfg.TravelTimeout {
			led.errs = append(led.errs,
				"core: traversal made no progress within the failure-detection timeout; "+
					"an execution was created but never terminated (suspected server failure)")
			s.finishTravelLocked(led)
			return
		}
		led.mu.Unlock()
	}
}

// handleCancel aborts a traversal this server coordinates: the client gets
// a cancellation error, backends drop their state, and late messages for
// the traversal are discarded through the done-travel history. Cancelling
// an unknown or finished traversal is a no-op.
func (s *Server) handleCancel(msg wire.Message) {
	s.mu.Lock()
	led, ok := s.ledgers[msg.TravelID]
	s.mu.Unlock()
	if !ok {
		return
	}
	led.mu.Lock()
	if led.done {
		led.mu.Unlock()
		return
	}
	led.errs = append(led.errs, "core: traversal cancelled by client")
	s.finishTravelLocked(led)
}

// handleProgressReq answers a client's progress query from the ledger
// (§IV-C): one (step, live-execution-count) pair per active step, packed
// into ExecRefs. A finished or unknown traversal answers with an empty
// report and an explanatory Err.
func (s *Server) handleProgressReq(from int, msg wire.Message) {
	resp := wire.Message{Kind: wire.KindProgressResp, TravelID: msg.TravelID, ReqID: msg.ReqID}
	live, ok := s.Progress(msg.TravelID)
	if !ok {
		resp.Err = "core: traversal not coordinated here (finished or unknown)"
	}
	for step, n := range live {
		resp.Created = append(resp.Created, wire.ExecRef{Step: step, ID: uint64(n)})
	}
	s.send(from, resp)
}

// Progress reports, for a traversal this server coordinates, the number of
// live (created but unterminated) executions per step — the progress-
// estimation signal of §IV-C. The second result is false when this server
// does not coordinate the traversal.
func (s *Server) Progress(travelID uint64) (map[int32]int, bool) {
	s.mu.Lock()
	led, ok := s.ledgers[travelID]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	led.mu.Lock()
	defer led.mu.Unlock()
	out := make(map[int32]int, len(led.liveByStep))
	for step, n := range led.liveByStep {
		if n > 0 {
			out[step] = n
		}
	}
	return out, true
}
