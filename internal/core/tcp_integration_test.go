package core

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/partition"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/rpc"
	"graphtrek/internal/wire"
)

// newTCPCluster assembles a real-TCP cluster on loopback: n backend
// servers plus one client, each with its own transport — the deployment
// cmd/graphtrek-server runs, exercised in-process.
func newTCPCluster(t *testing.T, n int) (*cluster, func()) {
	t.Helper()
	c := &cluster{part: partition.NewHash(n), global: gstore.NewMemStore()}
	addrs := make([]string, n+1)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	transports := make([]*rpc.TCP, 0, n+1)
	// Bind sequentially, patching the address list as ports resolve.
	for i := 0; i < n; i++ {
		store := gstore.NewMemStore()
		c.stores = append(c.stores, store)
		srv := NewServer(Config{ID: i, Store: store, Part: c.part, TravelTimeout: 15 * time.Second})
		tr, err := rpc.NewTCP(i, addrs, srv.Handle)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = tr.Addr()
		srv.Bind(tr)
		transports = append(transports, tr)
		c.servers = append(c.servers, srv)
	}
	c.client = NewClient(c.part)
	ctr, err := rpc.NewTCP(n, addrs, c.client.Handle)
	if err != nil {
		t.Fatal(err)
	}
	addrs[n] = ctr.Addr()
	c.client.Bind(ctr)
	transports = append(transports, ctr)
	// Every node needs the final address list; TCP transports dial lazily,
	// so updating the slice before first use is sufficient. The slice is
	// shared per-transport; patch each one.
	for _, tr := range transports {
		tr.PatchAddrs(addrs)
	}
	cleanup := func() {
		for _, s := range c.servers {
			s.Close()
		}
		for _, tr := range transports {
			tr.Close()
		}
	}
	return c, cleanup
}

func TestTCPClusterEndToEnd(t *testing.T) {
	c, cleanup := newTCPCluster(t, 3)
	defer cleanup()
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.V(1).
		E("run").Ea("ts", property.RANGE, 0, 10).
		E("read"))
	want, err := query.Reference(c.global, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeSync, ModeAsyncPlain, ModeGraphTrek, ModeClientSide} {
		got, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: mode, Coordinator: -1, Timeout: 20 * time.Second})
		if err != nil {
			t.Fatalf("%v over TCP: %v", mode, err)
		}
		if !reflect.DeepEqual(got, want.Results) {
			t.Errorf("%v over TCP: got %v want %v", mode, got, want.Results)
		}
	}
}

func TestTCPClusterRtnQuery(t *testing.T) {
	c, cleanup := newTCPCluster(t, 2)
	defer cleanup()
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("Execution").Rtn().E("read").Va("type", property.EQ, "text"))
	want, err := query.Reference(c.global, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.client.SubmitPlan(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Results) {
		t.Errorf("got %v want %v", got, want.Results)
	}
}

func TestRetryRoutesAroundDeadCoordinator(t *testing.T) {
	// Server 0 drops everything (a crashed coordinator). With retries and
	// hash-picked coordinators, the traversal must eventually land on a
	// live coordinator and succeed — the §IV-C restart policy.
	c, _ := newChaosCluster(t, 3, func(id int) rpc.ChaosConfig {
		if id == 0 {
			return rpc.ChaosConfig{DropIn: func(int, wire.Message) bool { return true }}
		}
		return rpc.ChaosConfig{}
	}, func(cfg *Config) {
		cfg.TravelTimeout = 300 * time.Millisecond
	})
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.V(1).E("run"))
	want, _ := query.Reference(c.global, plan)

	// Force first attempt onto the dead server by trying until a travel id
	// hashes there; with Coordinator: -1 and several retries the client
	// will rotate coordinators.
	got, err := c.client.SubmitPlan(plan, SubmitOptions{
		Mode: ModeGraphTrek, Coordinator: -1,
		Timeout: 5 * time.Second, Retries: 5,
	})
	if err != nil {
		t.Fatalf("retries exhausted: %v", err)
	}
	if !sameIDs(got, want.Results) {
		t.Errorf("got %v want %v", got, want.Results)
	}
}

func TestRetryRecoversFromTransientDrop(t *testing.T) {
	// Server 1 drops messages for the first traversal it sees, then
	// behaves. One retry must recover.
	var dropped atomic.Uint64
	c, _ := newChaosCluster(t, 3, func(id int) rpc.ChaosConfig {
		if id == 1 {
			return rpc.ChaosConfig{DropIn: func(_ int, msg wire.Message) bool {
				if msg.TravelID == 0 {
					return false
				}
				first := dropped.CompareAndSwap(0, msg.TravelID)
				return first || dropped.Load() == msg.TravelID
			}}
		}
		return rpc.ChaosConfig{}
	}, func(cfg *Config) {
		cfg.TravelTimeout = 300 * time.Millisecond
	})
	loadAuditGraph(t, c)
	plan := mustPlan(t, query.VLabel("User").E("run"))
	want, _ := query.Reference(c.global, plan)
	got, err := c.client.SubmitPlan(plan, SubmitOptions{
		Mode: ModeSync, Coordinator: 0,
		Timeout: 5 * time.Second, Retries: 2,
	})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if !sameIDs(got, want.Results) {
		t.Errorf("got %v want %v", got, want.Results)
	}
}

func TestNoRetryFailsFast(t *testing.T) {
	c, _ := newChaosCluster(t, 2, func(id int) rpc.ChaosConfig {
		if id == 1 {
			return rpc.ChaosConfig{DropIn: func(int, wire.Message) bool { return true }}
		}
		return rpc.ChaosConfig{}
	}, func(cfg *Config) {
		cfg.TravelTimeout = 200 * time.Millisecond
	})
	loadAuditGraph(t, c)
	_, err := c.client.SubmitPlan(mustPlan(t, query.VLabel("User").E("run")),
		SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0, Timeout: 5 * time.Second})
	if err == nil {
		t.Fatal("expected failure without retries")
	}
	if !strings.Contains(err.Error(), "timeout") && !strings.Contains(err.Error(), "failure") {
		t.Errorf("error = %v", err)
	}
}
