package core

import (
	"fmt"
	"time"

	"graphtrek/internal/events"
	"graphtrek/internal/wire"
)

// This file implements the backend failure detector that sharpens the
// paper's §IV-C failure story from "timeouts flag silent failures" to
// detection within a couple of heartbeat intervals. Every backend sends a
// lightweight heartbeat to every other backend each HeartbeatInterval; any
// inbound message refreshes the sender's liveness, so heartbeats only set a
// floor on the signal. A peer silent for SuspectAfter is suspected dead:
// the detector gossips a PeerDown announcement and every coordinator fails
// its traversals that have live executions registered on the suspect —
// immediately, with a peer-specific error — so the client's retry policy
// reroutes around the dead server instead of waiting out TravelTimeout.
// The coarse TravelTimeout watchdog remains as the backstop for failures
// heartbeats cannot see (e.g. a live server that silently discards work).

// startFailureDetector launches the heartbeat and detection loops. Called
// from Bind when HeartbeatInterval > 0.
func (s *Server) startFailureDetector() {
	now := time.Now().UnixNano()
	for i := range s.lastSeen {
		s.lastSeen[i].Store(now)
	}
	s.wg.Add(2)
	go s.heartbeatLoop()
	go s.detectLoop()
}

// heartbeatLoop beacons liveness to every other backend. Heartbeats bypass
// the MsgsSent engine counter so benchmark message accounting stays
// comparable whether or not the detector is enabled.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		for p := 0; p < s.cfg.Part.N(); p++ {
			if p == s.cfg.ID {
				continue
			}
			_ = s.tr.Send(p, wire.Message{Kind: wire.KindHeartbeat, Peer: int32(s.cfg.ID)})
		}
	}
}

// detectLoop scans peer liveness at twice the heartbeat rate and raises a
// suspicion for any backend silent longer than SuspectAfter.
func (s *Server) detectLoop() {
	defer s.wg.Done()
	interval := s.cfg.HeartbeatInterval / 2
	if interval <= 0 {
		interval = s.cfg.HeartbeatInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		now := time.Now().UnixNano()
		// Mark every newly silent peer before reacting to any of them: a
		// node isolated from the whole cluster sees all its peers expire in
		// one scan, and the replication layer's majority guard must observe
		// the full suspicion set or it would drive a split-brain failover
		// off the first name in iteration order.
		var fresh []int
		for p := range s.lastSeen {
			if p == s.cfg.ID {
				continue
			}
			if now-s.lastSeen[p].Load() <= int64(s.cfg.SuspectAfter) {
				continue
			}
			if s.suspected[p].Swap(true) {
				continue // already suspected
			}
			fresh = append(fresh, p)
		}
		for _, p := range fresh {
			s.met.AddPeerDownEvents(1)
			s.journal.Record(events.Event{Type: events.SuspicionUp, Part: -1, Peer: p,
				Detail: "missed heartbeats (local detection)"})
			s.onPeerDown(p, true)
		}
	}
}

// noteAlive refreshes a backend peer's liveness; any message counts. A
// suspected peer that speaks again is un-suspected — the detector
// re-raises the suspicion if the silence resumes.
func (s *Server) noteAlive(from int) {
	if from < 0 || from >= len(s.lastSeen) || from == s.cfg.ID {
		return
	}
	s.lastSeen[from].Store(time.Now().UnixNano())
	if s.suspected[from].Swap(false) {
		// Suspicion cleared: a false positive, or a recovered peer. Invite
		// it back into any replica set it was evicted from (repl.go); a
		// transient blip must not permanently erode the replication factor.
		s.journal.Record(events.Event{Type: events.SuspicionDown, Part: -1, Peer: from,
			Detail: "peer spoke again"})
		s.replOnPeerUp(from)
	}
}

// isSuspect reports whether backend p is currently suspected dead.
func (s *Server) isSuspect(p int) bool {
	return p >= 0 && p < len(s.suspected) && s.suspected[p].Load()
}

// onPeerDown reacts to a fresh suspicion: locally detected suspicions are
// gossiped so the whole cluster converges within one message delay, and
// every coordinated traversal with live work on the suspect fails fast.
func (s *Server) onPeerDown(peer int, broadcast bool) {
	if broadcast {
		for p := 0; p < s.cfg.Part.N(); p++ {
			if p == s.cfg.ID || p == peer || s.isSuspect(p) {
				continue
			}
			s.send(p, wire.Message{Kind: wire.KindPeerDown, Peer: int32(peer)})
		}
	}
	s.failLedgersForPeer(peer)
	// With replication enabled, a condemned backend also triggers failover:
	// promote a new primary for partitions it led, shrink replica sets it
	// followed in (repl.go).
	s.replOnPeerDown(peer)
}

// handlePeerDown adopts a suspicion gossiped by another backend.
func (s *Server) handlePeerDown(from int, msg wire.Message) {
	peer := int(msg.Peer)
	if from >= s.cfg.Part.N() || peer < 0 || peer >= len(s.suspected) || peer == s.cfg.ID {
		return
	}
	if s.suspected[peer].Swap(true) {
		return
	}
	s.met.AddPeerDownEvents(1)
	s.journal.Record(events.Event{Type: events.SuspicionUp, Part: -1, Peer: peer,
		Detail: fmt.Sprintf("adopted from server %d's PeerDown broadcast", from)})
	s.onPeerDown(peer, false)
}

// failLedgersForPeer fails every traversal this server coordinates that
// still has live executions registered on the suspect — the fast path that
// replaces waiting out the TravelTimeout watchdog.
func (s *Server) failLedgersForPeer(peer int) {
	s.mu.Lock()
	leds := make([]*ledger, 0, len(s.ledgers))
	for _, led := range s.ledgers {
		leds = append(leds, led)
	}
	s.mu.Unlock()
	for _, led := range leds {
		led.mu.Lock()
		if led.done || led.liveByServer[int32(peer)] == 0 {
			led.mu.Unlock()
			continue
		}
		led.errs = append(led.errs, peerDeadError(peer))
		s.finishTravelLocked(led)
	}
}

// peerDeadError is the peer-specific failure a suspected-dead backend
// produces; clients match on "suspected dead" to distinguish fast
// detection from the generic inactivity timeout.
func peerDeadError(peer int) string {
	return fmt.Sprintf("core: server %d suspected dead (missed heartbeats); traversal failed for fast retry", peer)
}
