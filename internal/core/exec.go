package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"graphtrek/internal/model"
	"graphtrek/internal/sched"
	"graphtrek/internal/trace"
	"graphtrek/internal/wire"
)

// accumulator is the engine-side contract behind sched.Accumulator: every
// scheduled item carries one, and finishItems — the single termination
// point — drives its completion protocol. Implementations: execAcc for
// server-side traversal executions, visitAcc for client-mode VisitReq
// batches.
type accumulator interface {
	sched.Accumulator
	// fail records a processing failure on whatever error path the
	// accumulator reports through. Called at most once per finishItems call.
	fail(s *Server, ts *travelState, msg string)
	// finished runs the accumulator's completion action after its last item
	// was processed (ItemDone returned true).
	finished(s *Server, ts *travelState)
	// span returns the execution's trace builder, nil when tracing is off.
	// Workers attribute per-item queue wait and cache/merge disposition to
	// it while processing groups.
	span() *trace.Builder
	// execID is the accumulator's causal identity: the ledger execution id
	// (or, for client-mode batches, the request id) stamped as ParentExec
	// on every dispatch its items produce.
	execID() uint64
}

// execAcc tracks one traversal execution being processed on this server: a
// countdown of its unprocessed frontier entries. Outputs are not owned by
// the execution — they accumulate in the traversal's per-target outboxes so
// consecutive executions batch into few messages — but an execution only
// reports termination after its outputs reached an outbox, and the flusher
// always sends outbox-derived child registrations in the same ExecEvents
// message as the terminations, preserving the ledger invariant (§IV-C):
// every terminated execution's children are registered no later than the
// termination itself.
type execAcc struct {
	id      uint64
	pending atomic.Int32
	sp      *trace.Builder // nil when tracing is off
}

// ItemDone marks one entry of the execution processed; the caller must have
// already buffered any outputs.
func (a *execAcc) ItemDone() bool { return a.pending.Add(-1) == 0 }

func (a *execAcc) span() *trace.Builder { return a.sp }

func (a *execAcc) execID() uint64 { return a.id }

func (a *execAcc) fail(_ *Server, ts *travelState, msg string) {
	a.sp.Fail(msg)
	ts.addErr(msg)
}

// finished puts the execution on the traversal's pending-termination list
// for the next flush and seals its trace span.
func (a *execAcc) finished(s *Server, ts *travelState) {
	ts.addEnded(a.id)
	if a.sp != nil {
		s.trc.RecordSpan(a.sp.Finish())
	}
}

// finishItems is the single termination point for scheduled items: it
// records the failure (if any) once per distinct accumulator, counts each
// item done — running the completion action of accumulators whose last item
// this was — and balances the in-process counter that gates quiescence
// flushes.
func (s *Server) finishItems(ts *travelState, items []sched.Item, failure error) {
	if len(items) == 0 {
		return
	}
	var failed map[accumulator]bool
	for _, it := range items {
		acc := it.Exec.(accumulator)
		if failure != nil {
			if failed == nil {
				failed = make(map[accumulator]bool, 1)
			}
			if !failed[acc] {
				failed[acc] = true
				acc.fail(s, ts, failure.Error())
			}
		}
		if acc.ItemDone() {
			acc.finished(s, ts)
		}
		ts.inProcess.Add(-1)
	}
}

// outKey addresses one dispatch outbox: entries bound for one target
// server at one traversal step.
type outKey struct {
	target int
	step   int32
}

// outboxSet accumulates one outbox's entries as a set: a traversal
// execution produces a *set* of next-step vertices (§IV-B), so each entry
// is sent to a given target for a given step at most once per traversal —
// the `seen` set survives flushes. Without set semantics the number of
// in-flight entries would track the number of distinct *walks* rather than
// vertices and grow combinatorially with traversal depth; the published
// Async-GT measurements (within ~1.3x of Sync-GT, Table I) are only
// consistent with per-step output sets. Residual redundancy — the same
// vertex arriving from several different sender servers — is exactly what
// the traversal-affiliate cache then removes at the receiver (§V-A).
type outboxSet struct {
	seen map[wire.Entry]struct{}
	list []wire.Entry
	// parent is the causal attribution of the current batch: the exec id of
	// the first execution that contributed to it since the last take. Batches
	// merge the outputs of many executions, so one parent per message is an
	// approximation — the trace DAG documents it as "first contributor wins".
	parent uint64
}

func (o *outboxSet) add(e wire.Entry, parent uint64) bool {
	if o.seen == nil {
		o.seen = make(map[wire.Entry]struct{})
	}
	if _, dup := o.seen[e]; dup {
		return false
	}
	if len(o.list) == 0 {
		o.parent = parent
	}
	o.seen[e] = struct{}{}
	o.list = append(o.list, e)
	return true
}

// take drains the pending entries and the batch's parent attribution,
// keeping the seen set so repeats are suppressed for the traversal's
// lifetime.
func (o *outboxSet) take() ([]wire.Entry, uint64) {
	list, parent := o.list, o.parent
	o.list, o.parent = nil, 0
	return list, parent
}

// bufferDispatch adds a next-step entry to the target server's outbox,
// flushing that outbox early if it reached the batch threshold. parent is
// the exec id of the execution producing the entry, carried onto the wire
// as the child's ParentExec.
func (s *Server) bufferDispatch(ts *travelState, parent uint64, target int, step int32, e wire.Entry) {
	k := outKey{target, step}
	var full []wire.Entry
	var fullParent uint64
	ts.flushMu.Lock()
	box := ts.outbox[k]
	if box == nil {
		box = &outboxSet{}
		ts.outbox[k] = box
	}
	if box.add(e, parent) && len(box.list) >= s.cfg.BatchSize {
		full, fullParent = box.take()
	}
	ts.flushMu.Unlock()
	if full != nil {
		s.sendDispatch(ts, fullParent, target, step, full)
	}
}

// bufferSig adds an end-of-chain signal for an rtn()-marked ancestor,
// deduplicated per batch. parent attributes the resulting return-signal
// execution to the execution that reached the chain's end.
func (s *Server) bufferSig(ts *travelState, parent uint64, target int, e wire.Entry) {
	ts.flushMu.Lock()
	box := ts.sigbox[target]
	if box == nil {
		box = &outboxSet{}
		ts.sigbox[target] = box
	}
	box.add(e, parent)
	ts.flushMu.Unlock()
}

// bufferResult appends a returned vertex bound for the coordinator.
func (s *Server) bufferResult(ts *travelState, v model.VertexID) {
	ts.flushMu.Lock()
	ts.results = append(ts.results, v)
	ts.flushMu.Unlock()
}

// sendDispatch registers a freshly created child execution at the
// coordinator and ships its entries. Registration and shipping may happen
// in either order: the ledger tolerates an execution's events arriving
// before its registration (it only declares completion when the created and
// terminated sets coincide). A failed send is recorded as a traversal error
// — the next flush carries it to the coordinator, which fails the
// traversal instead of waiting for the watchdog to notice the lost work.
func (s *Server) sendDispatch(ts *travelState, parent uint64, target int, step int32, entries []wire.Entry) {
	id := s.newExecID()
	if err := s.send(int(ts.coord), wire.Message{
		Kind: wire.KindExecEvents, TravelID: ts.id,
		Created: []wire.ExecRef{{ID: id, Server: int32(target), Step: step}},
	}); err != nil {
		ts.addErr(fmt.Sprintf("core: exec registration to coordinator %d failed: %v", ts.coord, err))
	}
	if err := s.send(target, wire.Message{
		Kind: wire.KindDispatch, TravelID: ts.id,
		Step: step, ExecID: id, ParentExec: parent, Entries: entries,
	}); err != nil {
		ts.addErr(fmt.Sprintf("core: dispatch to server %d failed: %v", target, err))
	}
}

// flushTravel drains the traversal's outboxes, buffered results and
// pending terminations into messages. Multiple workers may call it
// concurrently; each call atomically swaps out the buffered state.
func (s *Server) flushTravel(ts *travelState) {
	numSteps := int32(ts.plan.NumSteps())
	var created []wire.ExecRef
	type outMsg struct {
		target int
		msg    wire.Message
	}
	var msgs []outMsg

	ts.flushMu.Lock()
	for k, box := range ts.outbox {
		entries, parent := box.take()
		if len(entries) == 0 {
			continue
		}
		id := s.newExecID()
		created = append(created, wire.ExecRef{ID: id, Server: int32(k.target), Step: k.step})
		msgs = append(msgs, outMsg{k.target, wire.Message{
			Kind: wire.KindDispatch, TravelID: ts.id,
			Step: k.step, ExecID: id, ParentExec: parent, Entries: entries,
		}})
	}
	for target, box := range ts.sigbox {
		entries, parent := box.take()
		if len(entries) == 0 {
			continue
		}
		id := s.newExecID()
		created = append(created, wire.ExecRef{ID: id, Server: int32(target), Step: numSteps})
		msgs = append(msgs, outMsg{target, wire.Message{
			Kind: wire.KindReturnSig, TravelID: ts.id,
			Step: numSteps, ExecID: id, ParentExec: parent, Entries: entries,
		}})
	}
	results := ts.results
	ended := ts.ended
	errs := ts.errs
	ts.results = nil
	ts.ended = nil
	ts.errs = nil
	ts.flushMu.Unlock()
	if len(msgs) == 0 && len(results) == 0 && len(ended) == 0 && len(errs) == 0 {
		return
	}
	coord := int(ts.coord)
	var sendErrs []string
	if len(results) > 0 {
		if err := s.send(coord, wire.Message{Kind: wire.KindResult, TravelID: ts.id, Verts: results}); err != nil {
			sendErrs = append(sendErrs, fmt.Sprintf("core: result send to coordinator %d failed: %v", coord, err))
		}
	}
	// Register children and report terminations in one atomic ledger
	// update, then ship the children.
	if len(created) > 0 || len(ended) > 0 || len(errs) > 0 {
		if err := s.send(coord, wire.Message{
			Kind: wire.KindExecEvents, TravelID: ts.id,
			Created: created, Ended: ended, Err: strings.Join(errs, "; "),
		}); err != nil {
			sendErrs = append(sendErrs, fmt.Sprintf("core: exec events to coordinator %d failed: %v", coord, err))
		}
	}
	s.met.AddExecs(int(int64(len(ended))))
	for _, om := range msgs {
		if err := s.send(om.target, om.msg); err != nil {
			sendErrs = append(sendErrs, fmt.Sprintf("core: dispatch to server %d failed: %v", om.target, err))
		}
	}
	// Lost messages mean lost work the ledger is waiting on: surface the
	// failure to the coordinator so the traversal errors out promptly. If
	// even that send fails, the errors stay buffered for the next flush and
	// the coordinator-side failure detector / watchdog takes over.
	if len(sendErrs) > 0 {
		if err := s.send(coord, wire.Message{
			Kind: wire.KindExecEvents, TravelID: ts.id,
			Err: strings.Join(sendErrs, "; "),
		}); err != nil {
			for _, e := range sendErrs {
				ts.addErr(e)
			}
		}
	}
}
