package core

import (
	"encoding/json"
	"testing"
	"time"

	"graphtrek/internal/query"
	"graphtrek/internal/rpc"
	"graphtrek/internal/trace"
)

// TestDAGAcceptance is the end-to-end causal-trace gate: a multi-server
// traversal's assembled DAG must be a single rooted graph whose node count
// equals the coordinator ledger's Created total, whose critical path is
// bounded by the traversal's end-to-end latency from below by the slowest
// single execution, and whose Chrome export parses as trace_event JSON.
func TestDAGAcceptance(t *testing.T) {
	c := newCluster(t, 3, nil)
	loadAuditGraph(t, c)
	h, err := c.client.SubmitPlanAsync(
		mustPlan(t, query.V(1, 2).E("run").E("read")),
		SubmitOptions{Mode: ModeGraphTrek, Timeout: 20 * time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	dag, err := h.FetchDAG(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dag.Summary == nil {
		t.Fatal("assembled DAG carries no coordinator summary")
	}
	if !dag.Complete() {
		t.Fatalf("DAG incomplete: %d nodes vs %d created, orphans %v, duplicates %v",
			len(dag.Nodes), dag.Summary.Created, dag.Orphans, dag.Duplicates)
	}
	if len(dag.Nodes) != dag.Summary.Created {
		t.Fatalf("DAG nodes %d != ledger created %d", len(dag.Nodes), dag.Summary.Created)
	}
	// Both sources sit on one server, so the seed scan is one root
	// execution and the DAG is singly rooted.
	if len(dag.Roots) != 1 {
		t.Fatalf("roots = %v, want exactly one", dag.Roots)
	}
	if dag.CriticalPath == nil {
		t.Fatal("no critical path on a nonempty DAG")
	}
	var maxWall int64
	for _, n := range dag.Nodes {
		if n.WallNs > maxWall {
			maxWall = n.WallNs
		}
	}
	cp := dag.CriticalPath.DurationNs
	if cp < maxWall {
		t.Errorf("critical path %dns shorter than slowest single execution %dns", cp, maxWall)
	}
	if cp > dag.Summary.ElapsedNs {
		t.Errorf("critical path %dns exceeds traversal elapsed %dns", cp, dag.Summary.ElapsedNs)
	}
	// Every non-root hop chain stays within the critical path.
	for _, ch := range dag.TopChains(0) {
		if ch.DurationNs > cp {
			t.Errorf("chain to %d (%dns) exceeds critical path (%dns)", ch.Leaf, ch.DurationNs, cp)
		}
	}
	buf, err := dag.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(dag.Nodes) {
		t.Fatalf("chrome export has %d events for %d nodes", len(doc.TraceEvents), len(dag.Nodes))
	}
}

// TestDAGUnderChaos runs a traversal through a duplicating, delaying
// transport and demands the assembler stay honest: either the DAG passes
// the ledger cross-check, or every deviation is reported precisely — each
// orphan's parent is genuinely absent from the joined span set, and each
// duplicate id genuinely appeared in more than one span. The traversal's
// answer must be exact either way.
func TestDAGUnderChaos(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		c, _ := newChaosCluster(t, 3, func(id int) rpc.ChaosConfig {
			return rpc.ChaosConfig{
				Seed:      seed*17 + int64(id),
				DupProb:   0.2,
				DelayProb: 0.3,
				MaxDelay:  2 * time.Millisecond,
			}
		}, nil)
		loadAuditGraph(t, c)
		plan := mustPlan(t, query.VLabel("User").E("run").E("read"))
		want, err := query.Reference(c.global, plan)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.client.SubmitPlanAsync(plan, SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Wait(30 * time.Second)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sameIDs(res, want.Results) {
			t.Errorf("seed %d: results %v, want %v", seed, res, want.Results)
		}
		dag, err := h.FetchDAG(5 * time.Second)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		nodeSet := make(map[uint64]bool, len(dag.Nodes))
		for _, n := range dag.Nodes {
			nodeSet[n.Exec] = true
		}
		if dag.Complete() {
			if len(dag.Nodes) != dag.Summary.Created {
				t.Errorf("seed %d: complete DAG with %d nodes vs %d created", seed, len(dag.Nodes), dag.Summary.Created)
			}
			continue
		}
		for _, id := range dag.Orphans {
			if !nodeSet[id] {
				t.Errorf("seed %d: orphan %d not among the DAG's nodes", seed, id)
			}
		}
		// Re-fetch the raw spans and confirm each reported duplicate really
		// occurred more than once (and each orphan's parent really has no
		// span anywhere in the cluster).
		count := make(map[uint64]int)
		byExec := make(map[uint64]trace.Span)
		for _, s := range c.servers {
			for _, sp := range s.TraceSpans(h.TravelID()) {
				count[sp.Exec]++
				byExec[sp.Exec] = sp
			}
		}
		for _, id := range dag.Duplicates {
			if count[id] < 2 {
				t.Errorf("seed %d: reported duplicate %d has %d spans", seed, id, count[id])
			}
		}
		for _, id := range dag.Orphans {
			parent := byExec[id].Parent
			if parent == 0 {
				t.Errorf("seed %d: orphan %d has zero parent (roots are not orphans)", seed, id)
			} else if count[parent] > 0 {
				t.Errorf("seed %d: orphan %d's parent %d has a span after all", seed, id, parent)
			}
		}
	}
}

// TestSlowTravelCapture pins the bounded slow-traversal recorder: with a
// 1ns threshold every traversal qualifies, and the coordinator must
// capture a ledger-complete DAG — pulling peer spans over the wire — that
// is then served from SlowTravels.
func TestSlowTravelCapture(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) { cfg.SlowTravelNs = 1 })
	loadAuditGraph(t, c)
	if _, err := c.client.SubmitPlan(
		mustPlan(t, query.V(1, 2).E("run").E("read")),
		SubmitOptions{Mode: ModeGraphTrek, Coordinator: 0, Timeout: 20 * time.Second},
	); err != nil {
		t.Fatal(err)
	}
	// The capture runs asynchronously after the ledger retires.
	deadline := time.Now().Add(10 * time.Second)
	var slow []*trace.DAG
	for len(slow) == 0 && time.Now().Before(deadline) {
		slow = c.servers[0].SlowTravels()
		if len(slow) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if len(slow) == 0 {
		t.Fatal("no slow-traversal DAG captured")
	}
	dag := slow[0]
	if !dag.Complete() {
		t.Fatalf("captured DAG incomplete: %d nodes, summary %+v, orphans %v, duplicates %v",
			len(dag.Nodes), dag.Summary, dag.Orphans, dag.Duplicates)
	}
	// Peers must have contributed: the traversal spans three servers.
	servers := make(map[int32]bool)
	for _, n := range dag.Nodes {
		servers[n.Server] = true
	}
	if len(servers) < 2 {
		t.Errorf("captured DAG covers %d servers, want cross-server spans", len(servers))
	}
	// The non-coordinator servers capture nothing.
	if got := c.servers[1].SlowTravels(); len(got) != 0 {
		t.Errorf("non-coordinator captured %d DAGs", len(got))
	}
}
