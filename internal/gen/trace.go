package gen

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// This file implements the ingestion path of the paper's §VII-D: the
// authors imported one year of Darshan I/O characterization logs into the
// property graph. Darshan's binary logs are not redistributable at that
// granularity, so the importer consumes an equivalent line-oriented trace
// format carrying the same entities and relationships:
//
//	# comment or blank line
//	user <name>
//	job <id> <user-name> <start-ts>
//	exec <id> <job-id> <model>
//	read <exec-id> <file-path>
//	write <exec-id> <file-path> <ts>
//
// Every identifier is interned into a dense vertex id per namespace, and
// the edges mirror the generator's schema: run, hasExecutions, read +
// readBy, write — so an imported graph answers exactly the Table III audit
// query.

// ImportStats summarizes one trace import.
type ImportStats struct {
	Users, Jobs, Executions, Files int
	Edges                          int
	Lines                          int
}

// String renders the stats in Table II's shape.
func (s ImportStats) String() string {
	return fmt.Sprintf("users=%d jobs=%d executions=%d files=%d edges=%d",
		s.Users, s.Jobs, s.Executions, s.Files, s.Edges)
}

// traceImporter interns entity names and streams graph elements out.
type traceImporter struct {
	sink   Sink
	nextID model.VertexID
	users  map[string]model.VertexID
	jobs   map[string]model.VertexID
	execs  map[string]model.VertexID
	files  map[string]model.VertexID
	stats  ImportStats
}

// ImportTrace parses a trace stream into the sink. Lines referencing
// entities that were never declared are an error (a malformed trace must
// not silently produce a partial graph).
func ImportTrace(r io.Reader, sink Sink) (ImportStats, error) {
	imp := &traceImporter{
		sink:  sink,
		users: make(map[string]model.VertexID),
		jobs:  make(map[string]model.VertexID),
		execs: make(map[string]model.VertexID),
		files: make(map[string]model.VertexID),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		imp.stats.Lines++
		if err := imp.line(line); err != nil {
			return imp.stats, fmt.Errorf("gen: trace line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return imp.stats, fmt.Errorf("gen: trace read: %w", err)
	}
	return imp.stats, nil
}

func (imp *traceImporter) line(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "user":
		if len(fields) != 2 {
			return fmt.Errorf("user takes 1 field, got %d", len(fields)-1)
		}
		return imp.addUser(fields[1])
	case "job":
		if len(fields) != 4 {
			return fmt.Errorf("job takes 3 fields, got %d", len(fields)-1)
		}
		return imp.addJob(fields[1], fields[2], fields[3])
	case "exec":
		if len(fields) != 4 {
			return fmt.Errorf("exec takes 3 fields, got %d", len(fields)-1)
		}
		return imp.addExec(fields[1], fields[2], fields[3])
	case "read":
		if len(fields) != 3 {
			return fmt.Errorf("read takes 2 fields, got %d", len(fields)-1)
		}
		return imp.addRead(fields[1], fields[2])
	case "write":
		if len(fields) != 4 {
			return fmt.Errorf("write takes 3 fields, got %d", len(fields)-1)
		}
		return imp.addWrite(fields[1], fields[2], fields[3])
	default:
		return fmt.Errorf("unknown record kind %q", fields[0])
	}
}

func (imp *traceImporter) alloc() model.VertexID {
	id := imp.nextID
	imp.nextID++
	return id
}

func (imp *traceImporter) addUser(name string) error {
	if _, ok := imp.users[name]; ok {
		return nil // idempotent redeclaration
	}
	id := imp.alloc()
	imp.users[name] = id
	imp.stats.Users++
	return imp.sink.AddVertex(model.Vertex{
		ID: id, Label: "User",
		Props: property.Map{"name": property.String(name)},
	})
}

func (imp *traceImporter) addJob(jobID, userName, ts string) error {
	owner, ok := imp.users[userName]
	if !ok {
		return fmt.Errorf("job %s references undeclared user %s", jobID, userName)
	}
	if _, dup := imp.jobs[jobID]; dup {
		return fmt.Errorf("duplicate job id %s", jobID)
	}
	tsv, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return fmt.Errorf("job %s: bad timestamp %q", jobID, ts)
	}
	id := imp.alloc()
	imp.jobs[jobID] = id
	imp.stats.Jobs++
	if err := imp.sink.AddVertex(model.Vertex{
		ID: id, Label: "Job",
		Props: property.Map{"name": property.String(jobID)},
	}); err != nil {
		return err
	}
	imp.stats.Edges++
	return imp.sink.AddEdge(model.Edge{
		Src: owner, Dst: id, Label: "run",
		Props: property.Map{"ts": property.Int(tsv)},
	})
}

func (imp *traceImporter) addExec(execID, jobID, modelName string) error {
	job, ok := imp.jobs[jobID]
	if !ok {
		return fmt.Errorf("exec %s references undeclared job %s", execID, jobID)
	}
	if _, dup := imp.execs[execID]; dup {
		return fmt.Errorf("duplicate exec id %s", execID)
	}
	id := imp.alloc()
	imp.execs[execID] = id
	imp.stats.Executions++
	if err := imp.sink.AddVertex(model.Vertex{
		ID: id, Label: "Execution",
		Props: property.Map{"name": property.String(execID), "model": property.String(modelName)},
	}); err != nil {
		return err
	}
	imp.stats.Edges++
	return imp.sink.AddEdge(model.Edge{Src: job, Dst: id, Label: "hasExecutions"})
}

func (imp *traceImporter) file(path string) (model.VertexID, error) {
	if id, ok := imp.files[path]; ok {
		return id, nil
	}
	id := imp.alloc()
	imp.files[path] = id
	imp.stats.Files++
	err := imp.sink.AddVertex(model.Vertex{
		ID: id, Label: "File",
		Props: property.Map{"name": property.String(path)},
	})
	return id, err
}

func (imp *traceImporter) addRead(execID, path string) error {
	exec, ok := imp.execs[execID]
	if !ok {
		return fmt.Errorf("read references undeclared exec %s", execID)
	}
	file, err := imp.file(path)
	if err != nil {
		return err
	}
	imp.stats.Edges += 2
	if err := imp.sink.AddEdge(model.Edge{Src: exec, Dst: file, Label: "read"}); err != nil {
		return err
	}
	return imp.sink.AddEdge(model.Edge{Src: file, Dst: exec, Label: "readBy"})
}

func (imp *traceImporter) addWrite(execID, path, ts string) error {
	exec, ok := imp.execs[execID]
	if !ok {
		return fmt.Errorf("write references undeclared exec %s", execID)
	}
	tsv, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return fmt.Errorf("write by %s: bad timestamp %q", execID, ts)
	}
	file, err := imp.file(path)
	if err != nil {
		return err
	}
	imp.stats.Edges++
	return imp.sink.AddEdge(model.Edge{
		Src: exec, Dst: file, Label: "write",
		Props: property.Map{"ts": property.Int(tsv)},
	})
}

// ExportTrace walks a metadata property graph and emits the trace format,
// so imported and generated graphs can round-trip through text. Entity
// names come from each vertex's "name" property, falling back to the
// vertex id.
func ExportTrace(g gstore.Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := func(id model.VertexID) (string, error) {
		v, ok, err := g.GetVertex(id)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("gen: export: dangling vertex %v", id)
		}
		if n, ok := v.Props["name"]; ok {
			return n.Str(), nil
		}
		return fmt.Sprintf("v%d", uint64(id)), nil
	}
	users, err := sortedByLabel(g, "User")
	if err != nil {
		return err
	}
	for _, u := range users {
		un, err := name(u)
		if err != nil {
			return err
		}
		fmt.Fprintf(bw, "user %s\n", un)
	}
	// Jobs under each user, executions under each job, I/O under each
	// execution — in id order throughout for deterministic output.
	for _, u := range users {
		un, _ := name(u)
		err := g.ScanEdges(u, "run", func(run model.Edge) bool {
			jn, err := name(run.Dst)
			if err != nil {
				return false
			}
			fmt.Fprintf(bw, "job %s %s %d\n", jn, un, run.Props["ts"].I64())
			return true
		})
		if err != nil {
			return err
		}
	}
	jobs, err := sortedByLabel(g, "Job")
	if err != nil {
		return err
	}
	for _, j := range jobs {
		jn, _ := name(j)
		err := g.ScanEdges(j, "hasExecutions", func(he model.Edge) bool {
			en, err := name(he.Dst)
			if err != nil {
				return false
			}
			mv, _, _ := g.GetVertex(he.Dst)
			modelName := "unknown"
			if m, ok := mv.Props["model"]; ok {
				modelName = m.Str()
			}
			fmt.Fprintf(bw, "exec %s %s %s\n", en, jn, modelName)
			return true
		})
		if err != nil {
			return err
		}
	}
	execs, err := sortedByLabel(g, "Execution")
	if err != nil {
		return err
	}
	for _, e := range execs {
		en, _ := name(e)
		err := g.ScanEdges(e, "read", func(rd model.Edge) bool {
			fn, err := name(rd.Dst)
			if err != nil {
				return false
			}
			fmt.Fprintf(bw, "read %s %s\n", en, fn)
			return true
		})
		if err != nil {
			return err
		}
		err = g.ScanEdges(e, "write", func(wr model.Edge) bool {
			fn, err := name(wr.Dst)
			if err != nil {
				return false
			}
			fmt.Fprintf(bw, "write %s %s %d\n", en, fn, wr.Props["ts"].I64())
			return true
		})
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sortedByLabel(g gstore.Graph, label string) ([]model.VertexID, error) {
	var ids []model.VertexID
	err := g.ScanVerticesByLabel(label, func(id model.VertexID) bool {
		ids = append(ids, id)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, err
}
