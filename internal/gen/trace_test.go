package gen

import (
	"bytes"
	"strings"
	"testing"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
)

const sampleTrace = `
# one year of synthetic I/O activity
user sam
user john

job J100 sam 140050
job J101 john 140200

exec E1 J100 modelA
exec E2 J100 modelB
exec E3 J101 modelA

read E1 /data/input.h5
read E2 /data/input.h5
write E1 /data/out-1.nc 140060
write E3 /data/out-1.nc 140250
read E3 /apps/solver.exe
`

func importSample(t *testing.T) (*gstore.MemStore, ImportStats) {
	t.Helper()
	g := gstore.NewMemStore()
	stats, err := ImportTrace(strings.NewReader(sampleTrace), memSink{g})
	if err != nil {
		t.Fatal(err)
	}
	return g, stats
}

func TestImportTraceCounts(t *testing.T) {
	_, stats := importSample(t)
	want := ImportStats{Users: 2, Jobs: 2, Executions: 3, Files: 3,
		Edges: 2 + 3 + 3*2 + 2, Lines: 12}
	if stats != want {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}
	if !strings.Contains(stats.String(), "users=2") {
		t.Errorf("String() = %q", stats.String())
	}
}

func TestImportTraceSchema(t *testing.T) {
	g, _ := importSample(t)
	// sam (declared first) must own J100 whose E1 wrote /data/out-1.nc.
	var sam model.VertexID = ^model.VertexID(0)
	g.ScanVerticesByLabel("User", func(id model.VertexID) bool {
		v, _, _ := g.GetVertex(id)
		if v.Props["name"].Str() == "sam" {
			sam = id
		}
		return true
	})
	if sam == ^model.VertexID(0) {
		t.Fatal("sam not found")
	}
	jobs := 0
	g.ScanEdges(sam, "run", func(e model.Edge) bool {
		jobs++
		if e.Props["ts"].I64() != 140050 {
			t.Errorf("run ts = %v", e.Props["ts"])
		}
		return true
	})
	if jobs != 1 {
		t.Errorf("sam owns %d jobs", jobs)
	}
	// The shared input file must have two readBy edges.
	var input model.VertexID = ^model.VertexID(0)
	g.ScanVerticesByLabel("File", func(id model.VertexID) bool {
		v, _, _ := g.GetVertex(id)
		if v.Props["name"].Str() == "/data/input.h5" {
			input = id
		}
		return true
	})
	readers := 0
	g.ScanEdges(input, "readBy", func(model.Edge) bool { readers++; return true })
	if readers != 2 {
		t.Errorf("input.h5 has %d readers, want 2", readers)
	}
}

func TestImportTraceErrors(t *testing.T) {
	cases := map[string]string{
		"unknown kind":   "frobnicate x",
		"user arity":     "user a b",
		"job arity":      "job J1 sam",
		"job bad user":   "job J1 ghost 1",
		"job bad ts":     "user sam\njob J1 sam xyz",
		"dup job":        "user sam\njob J1 sam 1\njob J1 sam 2",
		"exec arity":     "exec E1 J1",
		"exec bad job":   "exec E1 ghost m",
		"dup exec":       "user s\njob J1 s 1\nexec E1 J1 m\nexec E1 J1 m",
		"read arity":     "read E1",
		"read bad exec":  "read E1 /f",
		"write bad exec": "write E1 /f 5",
		"write bad ts":   "user s\njob J1 s 1\nexec E1 J1 m\nwrite E1 /f xs",
	}
	for name, trace := range cases {
		if _, err := ImportTrace(strings.NewReader(trace), memSink{gstore.NewMemStore()}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestImportTraceIdempotentUserRedeclaration(t *testing.T) {
	g := gstore.NewMemStore()
	stats, err := ImportTrace(strings.NewReader("user sam\nuser sam\n"), memSink{g})
	if err != nil || stats.Users != 1 {
		t.Fatalf("stats=%+v err=%v", stats, err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g1, stats1 := importSample(t)
	var buf bytes.Buffer
	if err := ExportTrace(g1, &buf); err != nil {
		t.Fatal(err)
	}
	g2 := gstore.NewMemStore()
	stats2, err := ImportTrace(&buf, memSink{g2})
	if err != nil {
		t.Fatalf("re-import: %v\ntrace:\n%s", err, buf.String())
	}
	if stats1.Users != stats2.Users || stats1.Jobs != stats2.Jobs ||
		stats1.Executions != stats2.Executions || stats1.Files != stats2.Files ||
		stats1.Edges != stats2.Edges {
		t.Errorf("round trip changed counts: %+v vs %+v", stats1, stats2)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Errorf("round trip changed graph size: %d/%d vs %d/%d",
			g1.NumVertices(), g1.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
}

func TestExportGeneratedGraph(t *testing.T) {
	// A generator-produced graph must export and re-import cleanly too.
	g := gstore.NewMemStore()
	if _, err := Metadata(MetaConfig{Users: 3, Jobs: 6, Executions: 40, Files: 15, Seed: 2}, memSink{g}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportTrace(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2 := gstore.NewMemStore()
	stats, err := ImportTrace(&buf, memSink{gstore.NewMemStore()})
	_ = g2
	if err != nil {
		t.Fatalf("re-import of generated graph: %v", err)
	}
	if stats.Users != 3 || stats.Jobs != 6 || stats.Executions != 40 {
		t.Errorf("re-import stats = %+v", stats)
	}
}
