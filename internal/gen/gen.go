// Package gen synthesizes the evaluation graphs of §VII:
//
//   - RMAT: the recursive-matrix scale-free generator (Chakrabarti et al.)
//     with the paper's RMAT-1 parameters — a=0.45 b=0.15 c=0.15 d=0.25,
//     2^20 vertices, average out-degree 16, 128-byte random attributes —
//     plus configurable scaled-down variants for laptop runs;
//   - Metadata: a heterogeneous HPC rich-metadata property graph with the
//     schema of the Darshan/Intrepid graph in Table II (users → run → jobs
//     → hasExecutions → executions → read/write → files, with readBy
//     reverse edges), preserving the paper's entity ratios and the
//     power-law file-popularity skew at any scale.
package gen

import (
	"fmt"
	"math/rand"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// Sink receives generated graph elements. The benchmark harness routes
// vertices and edges to their owning server's store (and a mirror copy to
// the oracle store in tests).
type Sink interface {
	AddVertex(model.Vertex) error
	AddEdge(model.Edge) error
}

// Funcs adapts two closures into a Sink.
type Funcs struct {
	Vertex func(model.Vertex) error
	Edge   func(model.Edge) error
}

// AddVertex implements Sink.
func (f Funcs) AddVertex(v model.Vertex) error { return f.Vertex(v) }

// AddEdge implements Sink.
func (f Funcs) AddEdge(e model.Edge) error { return f.Edge(e) }

// randAttr builds the paper's fixed-size random attribute payload.
func randAttr(r *rand.Rand, n int) property.Value {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return property.String(string(b))
}

// RMATConfig parameterizes the recursive-matrix generator.
type RMATConfig struct {
	// Scale gives 2^Scale vertices.
	Scale int
	// AvgDegree gives AvgDegree * 2^Scale generated edges (before the
	// store deduplicates repeated (src,dst) pairs, as RMAT allows).
	AvgDegree int
	// A, B, C, D are the quadrant probabilities; they must sum to ~1.
	A, B, C, D float64
	// AttrBytes is the random attribute size per vertex and edge
	// (default 128, the paper's setting; negative disables attributes).
	AttrBytes int
	// EdgeLabel labels every edge (default "link"; the paper's synthetic
	// graphs are homogeneous).
	EdgeLabel string
	// Seed makes generation reproducible.
	Seed int64
}

// RMAT1 returns the paper's RMAT-1 configuration at a given scale and
// degree (the paper used Scale=20, AvgDegree=16).
func RMAT1(scale, avgDegree int, seed int64) RMATConfig {
	return RMATConfig{
		Scale: scale, AvgDegree: avgDegree,
		A: 0.45, B: 0.15, C: 0.15, D: 0.25,
		AttrBytes: 128, EdgeLabel: "link", Seed: seed,
	}
}

// RMATStats reports what a generation run produced.
type RMATStats struct {
	Vertices  int
	EdgesDraw int // edges drawn (duplicates included)
}

// RMAT generates a scale-free directed property graph into the sink.
func RMAT(cfg RMATConfig, sink Sink) (RMATStats, error) {
	if cfg.Scale < 1 || cfg.Scale > 30 {
		return RMATStats{}, fmt.Errorf("gen: RMAT scale %d out of range", cfg.Scale)
	}
	if cfg.AvgDegree < 1 {
		return RMATStats{}, fmt.Errorf("gen: RMAT average degree %d out of range", cfg.AvgDegree)
	}
	sum := cfg.A + cfg.B + cfg.C + cfg.D
	if sum < 0.999 || sum > 1.001 {
		return RMATStats{}, fmt.Errorf("gen: RMAT probabilities sum to %g, want 1", sum)
	}
	if cfg.AttrBytes == 0 {
		cfg.AttrBytes = 128
	}
	if cfg.EdgeLabel == "" {
		cfg.EdgeLabel = "link"
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := 1 << cfg.Scale
	for i := 0; i < n; i++ {
		v := model.Vertex{ID: model.VertexID(i), Label: "V"}
		if cfg.AttrBytes > 0 {
			v.Props = property.Map{
				"attr": randAttr(r, cfg.AttrBytes),
				"ts":   property.Int(int64(r.Intn(1 << 20))),
			}
		}
		if err := sink.AddVertex(v); err != nil {
			return RMATStats{}, err
		}
	}
	edges := n * cfg.AvgDegree
	for i := 0; i < edges; i++ {
		src, dst := rmatPick(r, cfg)
		e := model.Edge{
			Src:   model.VertexID(src),
			Dst:   model.VertexID(dst),
			Label: cfg.EdgeLabel,
		}
		if cfg.AttrBytes > 0 {
			e.Props = property.Map{
				"attr": randAttr(r, cfg.AttrBytes),
				"w":    property.Int(int64(r.Intn(100))),
			}
		}
		if err := sink.AddEdge(e); err != nil {
			return RMATStats{}, err
		}
	}
	return RMATStats{Vertices: n, EdgesDraw: edges}, nil
}

// rmatPick draws one (src, dst) pair by recursive quadrant descent.
func rmatPick(r *rand.Rand, cfg RMATConfig) (int, int) {
	src, dst := 0, 0
	for level := cfg.Scale - 1; level >= 0; level-- {
		p := r.Float64()
		switch {
		case p < cfg.A:
			// top-left: no bits set
		case p < cfg.A+cfg.B:
			dst |= 1 << level
		case p < cfg.A+cfg.B+cfg.C:
			src |= 1 << level
		default:
			src |= 1 << level
			dst |= 1 << level
		}
	}
	return src, dst
}
