package gen

import (
	"fmt"
	"math/rand"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// Paper ratios from Table II: 177 users, 47,600 jobs, 123.4M executions,
// 34.6M files, 239.8M edges (one year of Darshan logs from Intrepid).
const (
	paperUsers      = 177
	paperJobs       = 47600
	paperExecutions = 123_400_000
	paperFiles      = 34_600_000
	paperEdges      = 239_800_000
)

// MetaConfig sizes a synthetic HPC rich-metadata graph.
type MetaConfig struct {
	Users      int
	Jobs       int
	Executions int
	Files      int
	// ReadFrac is the probability an execution reads a (power-law
	// popular) file; WriteFrac the probability it writes one. The
	// defaults (0.30 / 0.33) reproduce the paper's edges/vertices ratio
	// of ≈1.5 (each read also stores the reverse readBy edge).
	ReadFrac  float64
	WriteFrac float64
	// AttrBytes sizes the random attribute payload (default 64).
	AttrBytes int
	// Seed makes generation reproducible.
	Seed int64
}

// ScaledMeta derives a MetaConfig with the paper's Table II entity ratios
// scaled so the graph holds roughly totalVertices vertices.
func ScaledMeta(totalVertices int, seed int64) MetaConfig {
	const paperVerts = paperUsers + paperJobs + paperExecutions + paperFiles
	f := float64(totalVertices) / float64(paperVerts)
	atLeast := func(v, lo int) int {
		if v < lo {
			return lo
		}
		return v
	}
	return MetaConfig{
		Users:      atLeast(int(paperUsers*f), 4),
		Jobs:       atLeast(int(paperJobs*f), 16),
		Executions: atLeast(int(paperExecutions*f), 64),
		Files:      atLeast(int(paperFiles*f), 32),
		ReadFrac:   0.30,
		WriteFrac:  0.33,
		AttrBytes:  64,
		Seed:       seed,
	}
}

// MetaStats describes a generated metadata graph: entity id ranges (handy
// for seeding queries) and counts, printable next to the paper's Table II.
type MetaStats struct {
	Users, Jobs, Executions, Files int
	Edges                          int
	// FirstUser..: inclusive id range starts; each section is contiguous.
	FirstUser, FirstJob, FirstExecution, FirstFile model.VertexID
}

// UserID returns the i-th user's vertex id.
func (s MetaStats) UserID(i int) model.VertexID {
	return s.FirstUser + model.VertexID(i%s.Users)
}

// String renders the stats in Table II's shape.
func (s MetaStats) String() string {
	return fmt.Sprintf("users=%d jobs=%d executions=%d files=%d edges=%d",
		s.Users, s.Jobs, s.Executions, s.Files, s.Edges)
}

// Metadata generates a heterogeneous user/job/execution/file property
// graph. Schema (matching the Table III audit query):
//
//	User -run-> Job -hasExecutions-> Execution -read/write-> File
//	File -readBy-> Execution        (reverse edge for file→reader hops)
//
// Jobs are assigned to users with a Zipf skew (a few users own most jobs),
// executions spread over jobs uniformly, and file popularity follows a
// Zipf distribution — the small-world, power-law structure the paper
// reports for the real Darshan graph.
func Metadata(cfg MetaConfig, sink Sink) (MetaStats, error) {
	if cfg.Users < 1 || cfg.Jobs < 1 || cfg.Executions < 1 || cfg.Files < 1 {
		return MetaStats{}, fmt.Errorf("gen: metadata config needs at least one of each entity: %+v", cfg)
	}
	if cfg.ReadFrac == 0 && cfg.WriteFrac == 0 {
		cfg.ReadFrac, cfg.WriteFrac = 0.30, 0.33
	}
	if cfg.AttrBytes == 0 {
		cfg.AttrBytes = 64
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	stats := MetaStats{
		Users: cfg.Users, Jobs: cfg.Jobs, Executions: cfg.Executions, Files: cfg.Files,
	}
	stats.FirstUser = 0
	stats.FirstJob = model.VertexID(cfg.Users)
	stats.FirstExecution = stats.FirstJob + model.VertexID(cfg.Jobs)
	stats.FirstFile = stats.FirstExecution + model.VertexID(cfg.Executions)

	addV := func(id model.VertexID, label string, props property.Map) error {
		if cfg.AttrBytes > 0 {
			props["attr"] = randAttr(r, cfg.AttrBytes)
		}
		return sink.AddVertex(model.Vertex{ID: id, Label: label, Props: props})
	}
	addE := func(src, dst model.VertexID, label string, props property.Map) error {
		stats.Edges++
		return sink.AddEdge(model.Edge{Src: src, Dst: dst, Label: label, Props: props})
	}

	for i := 0; i < cfg.Users; i++ {
		err := addV(stats.FirstUser+model.VertexID(i), "User",
			property.Map{"name": property.String(fmt.Sprintf("user-%04d", i))})
		if err != nil {
			return stats, err
		}
	}
	// Zipf job ownership: a handful of heavy users.
	userZipf := newZipf(r, cfg.Users)
	for i := 0; i < cfg.Jobs; i++ {
		job := stats.FirstJob + model.VertexID(i)
		err := addV(job, "Job", property.Map{"queue": property.String([]string{"prod", "debug", "backfill"}[r.Intn(3)])})
		if err != nil {
			return stats, err
		}
		owner := stats.UserID(int(userZipf.Uint64()))
		err = addE(owner, job, "run", property.Map{"ts": property.Int(int64(r.Intn(1 << 20)))})
		if err != nil {
			return stats, err
		}
	}
	fileZipf := newZipf(r, cfg.Files)
	models := []string{"A", "B", "C", "D"}
	for i := 0; i < cfg.Executions; i++ {
		exec := stats.FirstExecution + model.VertexID(i)
		err := addV(exec, "Execution", property.Map{"model": property.String(models[r.Intn(len(models))])})
		if err != nil {
			return stats, err
		}
		job := stats.FirstJob + model.VertexID(r.Intn(cfg.Jobs))
		if err := addE(job, exec, "hasExecutions", nil); err != nil {
			return stats, err
		}
		if r.Float64() < cfg.ReadFrac {
			file := stats.FirstFile + model.VertexID(fileZipf.Uint64())
			if err := addE(exec, file, "read", nil); err != nil {
				return stats, err
			}
			if err := addE(file, exec, "readBy", nil); err != nil {
				return stats, err
			}
		}
		if r.Float64() < cfg.WriteFrac {
			file := stats.FirstFile + model.VertexID(fileZipf.Uint64())
			ts := property.Map{"ts": property.Int(int64(r.Intn(1 << 20)))}
			if err := addE(exec, file, "write", ts); err != nil {
				return stats, err
			}
		}
	}
	for i := 0; i < cfg.Files; i++ {
		file := stats.FirstFile + model.VertexID(i)
		err := addV(file, "File", property.Map{
			"name": property.String(fmt.Sprintf("/data/set-%06d.h5", i)),
			"size": property.Int(int64(r.Intn(1 << 30))),
		})
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// newZipf builds a Zipf sampler over [0, n) with the skew used for both
// job ownership and file popularity.
func newZipf(r *rand.Rand, n int) *rand.Zipf {
	return rand.NewZipf(r, 1.3, 1.0, uint64(n-1))
}
