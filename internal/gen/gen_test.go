package gen

import (
	"math"
	"sort"
	"testing"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
)

// memSink routes generated elements into a MemStore.
type memSink struct{ g *gstore.MemStore }

func (m memSink) AddVertex(v model.Vertex) error { return m.g.PutVertex(v) }
func (m memSink) AddEdge(e model.Edge) error     { return m.g.PutEdge(e) }

func TestRMATBasicShape(t *testing.T) {
	g := gstore.NewMemStore()
	cfg := RMAT1(10, 8, 42) // 1024 vertices, ~8192 edge draws
	stats, err := RMAT(cfg, memSink{g})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Vertices != 1024 || stats.EdgesDraw != 8192 {
		t.Fatalf("stats = %+v", stats)
	}
	if g.NumVertices() != 1024 {
		t.Errorf("store has %d vertices", g.NumVertices())
	}
	// Duplicates collapse, so stored edges <= draws but should be most.
	if e := g.NumEdges(); e < 4000 || e > 8192 {
		t.Errorf("stored edges = %d", e)
	}
}

func TestRMATDeterministicBySeed(t *testing.T) {
	g1, g2, g3 := gstore.NewMemStore(), gstore.NewMemStore(), gstore.NewMemStore()
	RMAT(RMAT1(8, 4, 7), memSink{g1})
	RMAT(RMAT1(8, 4, 7), memSink{g2})
	RMAT(RMAT1(8, 4, 8), memSink{g3})
	if g1.NumEdges() != g2.NumEdges() {
		t.Error("same seed should give identical graphs")
	}
	if g1.NumEdges() == g3.NumEdges() {
		// Edge counts could coincide, but degree sequences should not.
		d1, d3 := degreeSeq(g1, 1<<8), degreeSeq(g3, 1<<8)
		same := true
		for i := range d1 {
			if d1[i] != d3[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func degreeSeq(g *gstore.MemStore, n int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		cnt := 0
		g.ScanAllEdges(model.VertexID(i), func(model.Edge) bool { cnt++; return true })
		out[i] = cnt
	}
	return out
}

func TestRMATPowerLawSkew(t *testing.T) {
	// With a=0.45 the out-degree distribution must be heavily skewed: the
	// top 10% of vertices should own a disproportionate share of edges.
	g := gstore.NewMemStore()
	if _, err := RMAT(RMAT1(12, 8, 1), memSink{g}); err != nil {
		t.Fatal(err)
	}
	deg := degreeSeq(g, 1<<12)
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	total, top := 0, 0
	for i, d := range deg {
		total += d
		if i < len(deg)/10 {
			top += d
		}
	}
	if share := float64(top) / float64(total); share < 0.25 {
		t.Errorf("top-10%% degree share = %.2f, want skewed (> 0.25)", share)
	}
	// And a uniform graph (a=b=c=d=0.25) should be much flatter.
	gu := gstore.NewMemStore()
	cfg := RMAT1(12, 8, 1)
	cfg.A, cfg.B, cfg.C, cfg.D = 0.25, 0.25, 0.25, 0.25
	if _, err := RMAT(cfg, memSink{gu}); err != nil {
		t.Fatal(err)
	}
	degU := degreeSeq(gu, 1<<12)
	sort.Sort(sort.Reverse(sort.IntSlice(degU)))
	totalU, topU := 0, 0
	for i, d := range degU {
		totalU += d
		if i < len(degU)/10 {
			topU += d
		}
	}
	skewed := float64(top) / float64(total)
	uniform := float64(topU) / float64(totalU)
	if skewed <= uniform {
		t.Errorf("RMAT-1 skew %.2f should exceed uniform skew %.2f", skewed, uniform)
	}
}

func TestRMATAttributeSize(t *testing.T) {
	g := gstore.NewMemStore()
	if _, err := RMAT(RMAT1(6, 2, 3), memSink{g}); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := g.GetVertex(0)
	if !ok {
		t.Fatal("vertex 0 missing")
	}
	if got := len(v.Props["attr"].Str()); got != 128 {
		t.Errorf("attr size = %d, want 128", got)
	}
}

func TestRMATValidation(t *testing.T) {
	bad := []RMATConfig{
		{Scale: 0, AvgDegree: 2, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 40, AvgDegree: 2, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, AvgDegree: 0, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 4, AvgDegree: 2, A: 0.9, B: 0.9, C: 0.1, D: 0.1},
	}
	for i, cfg := range bad {
		if _, err := RMAT(cfg, memSink{gstore.NewMemStore()}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMetadataCountsAndSchema(t *testing.T) {
	g := gstore.NewMemStore()
	cfg := MetaConfig{Users: 5, Jobs: 20, Executions: 200, Files: 50, Seed: 11}
	stats, err := Metadata(cfg, memSink{g})
	if err != nil {
		t.Fatal(err)
	}
	wantVerts := 5 + 20 + 200 + 50
	if g.NumVertices() != wantVerts {
		t.Errorf("vertices = %d, want %d", g.NumVertices(), wantVerts)
	}
	// Every entity range carries the right label.
	checkLabel := func(id model.VertexID, want string) {
		t.Helper()
		v, ok, _ := g.GetVertex(id)
		if !ok || v.Label != want {
			t.Errorf("vertex %d label = %q ok=%v, want %q", id, v.Label, ok, want)
		}
	}
	checkLabel(stats.FirstUser, "User")
	checkLabel(stats.FirstJob, "Job")
	checkLabel(stats.FirstExecution, "Execution")
	checkLabel(stats.FirstFile, "File")
	// Every job has exactly one owning user (run in-edge).
	runEdges := 0
	for u := 0; u < cfg.Users; u++ {
		g.ScanEdges(stats.UserID(u), "run", func(model.Edge) bool { runEdges++; return true })
	}
	if runEdges != cfg.Jobs {
		t.Errorf("run edges = %d, want %d", runEdges, cfg.Jobs)
	}
	// readBy edges mirror read edges.
	reads, readBys := 0, 0
	for i := 0; i < cfg.Executions; i++ {
		g.ScanEdges(stats.FirstExecution+model.VertexID(i), "read", func(model.Edge) bool { reads++; return true })
	}
	for i := 0; i < cfg.Files; i++ {
		g.ScanEdges(stats.FirstFile+model.VertexID(i), "readBy", func(model.Edge) bool { readBys++; return true })
	}
	if reads == 0 || readBys == 0 {
		t.Error("expected read and readBy edges")
	}
	// Duplicate (exec,file) pairs collapse identically on both directions,
	// but counts should at least be close.
	if math.Abs(float64(reads-readBys)) > float64(reads)/2 {
		t.Errorf("reads %d vs readBys %d wildly different", reads, readBys)
	}
}

func TestMetadataFilePopularitySkew(t *testing.T) {
	g := gstore.NewMemStore()
	cfg := MetaConfig{Users: 4, Jobs: 16, Executions: 2000, Files: 500, Seed: 3}
	stats, err := Metadata(cfg, memSink{g})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int, cfg.Files)
	for i := 0; i < cfg.Files; i++ {
		g.ScanEdges(stats.FirstFile+model.VertexID(i), "readBy", func(model.Edge) bool {
			in[i]++
			return true
		})
	}
	sort.Sort(sort.Reverse(sort.IntSlice(in)))
	total, top := 0, 0
	for i, d := range in {
		total += d
		if i < len(in)/20 { // top 5%
			top += d
		}
	}
	if total == 0 {
		t.Fatal("no readBy edges")
	}
	if share := float64(top) / float64(total); share < 0.4 {
		t.Errorf("top-5%% file popularity = %.2f, want Zipf-skewed (> 0.4)", share)
	}
}

func TestScaledMetaPreservesRatios(t *testing.T) {
	cfg := ScaledMeta(100_000, 1)
	total := cfg.Users + cfg.Jobs + cfg.Executions + cfg.Files
	if total < 80_000 || total > 130_000 {
		t.Errorf("total = %d, want ≈100k", total)
	}
	// Executions dominate (paper: ~78%).
	if frac := float64(cfg.Executions) / float64(total); frac < 0.6 || frac > 0.9 {
		t.Errorf("execution fraction = %.2f", frac)
	}
	// Files ≈ 28% of executions in the paper.
	ratio := float64(cfg.Files) / float64(cfg.Executions)
	if ratio < 0.2 || ratio > 0.4 {
		t.Errorf("files/executions = %.2f, want ≈0.28", ratio)
	}
	// Tiny scales still produce a usable graph.
	small := ScaledMeta(100, 1)
	if small.Users < 1 || small.Jobs < 1 || small.Executions < 1 || small.Files < 1 {
		t.Errorf("tiny config degenerate: %+v", small)
	}
}

func TestMetadataValidation(t *testing.T) {
	if _, err := Metadata(MetaConfig{}, memSink{gstore.NewMemStore()}); err == nil {
		t.Error("zero config should error")
	}
}

func TestMetadataDeterministicBySeed(t *testing.T) {
	g1, g2 := gstore.NewMemStore(), gstore.NewMemStore()
	cfg := MetaConfig{Users: 4, Jobs: 8, Executions: 100, Files: 30, Seed: 9}
	s1, _ := Metadata(cfg, memSink{g1})
	s2, _ := Metadata(cfg, memSink{g2})
	if s1.Edges != s2.Edges || g1.NumEdges() != g2.NumEdges() {
		t.Error("same seed should reproduce the same graph")
	}
}

func TestFuncsSink(t *testing.T) {
	var verts, edges int
	sink := Funcs{
		Vertex: func(model.Vertex) error { verts++; return nil },
		Edge:   func(model.Edge) error { edges++; return nil },
	}
	if _, err := RMAT(RMAT1(4, 2, 0), sink); err != nil {
		t.Fatal(err)
	}
	if verts != 16 || edges != 32 {
		t.Errorf("verts=%d edges=%d", verts, edges)
	}
}
