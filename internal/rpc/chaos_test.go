package rpc

import (
	"testing"
	"time"

	"graphtrek/internal/wire"
)

// chaosPair wires node 0's sends through a fault injector on a 2-node
// fabric and returns the injector plus node 1's collector.
func chaosPair(t *testing.T, cfg ChaosConfig) (*Chaos, *collector) {
	t.Helper()
	f := NewFabric(2, 0)
	var c collector
	if err := f.Endpoint(1).Start(c.handle); err != nil {
		t.Fatal(err)
	}
	ch := NewChaos(f.Endpoint(0), cfg)
	t.Cleanup(func() {
		ch.Close()
		f.Close()
	})
	return ch, &c
}

func TestChaosPassThrough(t *testing.T) {
	ch, c := chaosPair(t, ChaosConfig{Seed: 1})
	for i := 0; i < 50; i++ {
		if err := ch.Send(1, wire.Message{Kind: wire.KindResult, TravelID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c.len() == 50 })
	if s := ch.Stats(); s.Sent != 50 || s.Dropped != 0 || s.Duplicated != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestChaosDropAll(t *testing.T) {
	ch, c := chaosPair(t, ChaosConfig{Seed: 1, DropProb: 1})
	for i := 0; i < 20; i++ {
		if err := ch.Send(1, wire.Message{Kind: wire.KindResult}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if c.len() != 0 {
		t.Errorf("delivered %d messages through DropProb=1", c.len())
	}
	if s := ch.Stats(); s.Dropped != 20 {
		t.Errorf("Dropped = %d, want 20", s.Dropped)
	}
}

func TestChaosDuplicateAll(t *testing.T) {
	ch, c := chaosPair(t, ChaosConfig{Seed: 1, DupProb: 1, MaxDelay: time.Millisecond})
	const n = 25
	for i := 0; i < n; i++ {
		if err := ch.Send(1, wire.Message{Kind: wire.KindResult, TravelID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c.len() == 2*n })
	if s := ch.Stats(); s.Duplicated != n {
		t.Errorf("Duplicated = %d, want %d", s.Duplicated, n)
	}
}

// TestChaosDelayPreservesFIFO is the property the engines' completion
// argument depends on: even with every message delayed by a random amount,
// per-pair delivery order matches send order.
func TestChaosDelayPreservesFIFO(t *testing.T) {
	ch, c := chaosPair(t, ChaosConfig{Seed: 99, DelayProb: 1, MaxDelay: 2 * time.Millisecond})
	const n = 100
	for i := 0; i < n; i++ {
		if err := ch.Send(1, wire.Message{Kind: wire.KindResult, TravelID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c.len() == n })
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.msgs {
		if m.TravelID != uint64(i) {
			t.Fatalf("message %d has id %d: delay broke per-pair FIFO", i, m.TravelID)
		}
	}
}

// TestChaosDeterministicReplay: the same seed over the same send sequence
// injects the same faults — the property that makes chaos failures
// reproducible.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() ChaosStats {
		ch, c := chaosPair(t, ChaosConfig{
			Seed: 1234, DropProb: 0.2, DupProb: 0.2, DelayProb: 0.3, MaxDelay: time.Millisecond,
		})
		const n = 200
		for i := 0; i < n; i++ {
			if err := ch.Send(1, wire.Message{Kind: wire.KindResult, TravelID: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		s := ch.Stats()
		expect := int(s.Sent - s.Dropped + s.Duplicated)
		waitFor(t, func() bool { return c.len() == expect })
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestChaosCrashStop(t *testing.T) {
	ch, c := chaosPair(t, ChaosConfig{Seed: 1})
	if err := ch.Send(1, wire.Message{Kind: wire.KindResult}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.len() == 1 })
	ch.Crash()
	// A dead node's sends vanish without error, and its inbound side (the
	// wrapped handler) discards everything.
	if err := ch.Send(1, wire.Message{Kind: wire.KindResult}); err != nil {
		t.Errorf("crashed send should not error, got %v", err)
	}
	var in collector
	h := ch.WrapHandler(in.handle)
	h(1, wire.Message{Kind: wire.KindResult})
	time.Sleep(10 * time.Millisecond)
	if c.len() != 1 || in.len() != 0 {
		t.Errorf("crash leaked messages: out=%d in=%d", c.len(), in.len())
	}
	if s := ch.Stats(); s.CrashDiscarded != 1 {
		t.Errorf("CrashDiscarded = %d, want 1", s.CrashDiscarded)
	}
	ch.Revive()
	if err := ch.Send(1, wire.Message{Kind: wire.KindResult}); err != nil {
		t.Fatal(err)
	}
	h(1, wire.Message{Kind: wire.KindResult})
	waitFor(t, func() bool { return c.len() == 2 && in.len() == 1 })
}

func TestChaosIsolateHeal(t *testing.T) {
	ch, c := chaosPair(t, ChaosConfig{Seed: 1})
	ch.Isolate(1)
	if err := ch.Send(1, wire.Message{Kind: wire.KindResult}); err != nil {
		t.Fatal(err)
	}
	var in collector
	h := ch.WrapHandler(in.handle)
	h(1, wire.Message{Kind: wire.KindResult})
	time.Sleep(10 * time.Millisecond)
	if c.len() != 0 || in.len() != 0 {
		t.Errorf("isolated link leaked: out=%d in=%d", c.len(), in.len())
	}
	ch.Heal(1)
	if err := ch.Send(1, wire.Message{Kind: wire.KindResult}); err != nil {
		t.Fatal(err)
	}
	h(1, wire.Message{Kind: wire.KindResult})
	waitFor(t, func() bool { return c.len() == 1 && in.len() == 1 })
}

func TestChaosTargetedDrop(t *testing.T) {
	ch, c := chaosPair(t, ChaosConfig{
		Seed:    1,
		DropOut: func(_ int, msg wire.Message) bool { return msg.Kind == wire.KindExecEvents },
	})
	if err := ch.Send(1, wire.Message{Kind: wire.KindExecEvents}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Send(1, wire.Message{Kind: wire.KindResult}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.len() == 1 })
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.msgs[0].Kind != wire.KindResult {
		t.Errorf("wrong message survived: %v", c.msgs[0].Kind)
	}
}
