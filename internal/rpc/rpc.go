// Package rpc provides the asynchronous message transport the traversal
// engines run over — the role ZeroMQ played in the paper. Two
// implementations share one interface:
//
//   - Fabric / Endpoint: an in-process transport over buffered channels,
//     used by the simulated clusters in tests and benchmarks;
//   - TCP (tcp.go): a length-framed stream transport over net, used by the
//     standalone server daemon.
//
// Both guarantee the property the engines' correctness argument needs:
// messages from one sender goroutine to one receiver are delivered in send
// order (per-pair FIFO). Delivery is asynchronous — Send enqueues and
// returns — which is what lets a traversal execution finish without waiting
// for downstream servers (§IV-B).
package rpc

import (
	"errors"
	"fmt"
	"sync"

	"graphtrek/internal/wire"
)

// ErrClosed is returned by Send after the transport is closed.
var ErrClosed = errors.New("rpc: transport closed")

// Handler processes one inbound message. Handlers run on the transport's
// dispatch goroutine; long work must be handed off (the engines enqueue
// into their scheduler).
type Handler func(from int, msg wire.Message)

// Transport is the engine-facing messaging contract. Node ids are dense
// indexes 0..N-1; the coordinator and clients use ids from the same space.
type Transport interface {
	// Self returns this node's id.
	Self() int
	// N returns the cluster size.
	N() int
	// Send enqueues msg for delivery to node `to`. It blocks only when the
	// receiver's inbox is full (backpressure), and preserves per-pair FIFO
	// order. Sending to self is allowed and loops back through the inbox.
	Send(to int, msg wire.Message) error
	// Close shuts the transport down; pending messages may be dropped.
	Close() error
}

// Fabric is an in-process cluster of endpoints connected by channels.
type Fabric struct {
	mu        sync.Mutex
	endpoints []*Endpoint
	inboxSize int
}

// NewFabric creates a fabric of n endpoints with the given inbox capacity
// per endpoint (0 selects a default sized for traversal bursts).
func NewFabric(n int, inboxSize int) *Fabric {
	if inboxSize <= 0 {
		inboxSize = 4096
	}
	f := &Fabric{inboxSize: inboxSize}
	f.endpoints = make([]*Endpoint, n)
	for i := range f.endpoints {
		f.endpoints[i] = &Endpoint{
			fabric: f,
			id:     i,
			inbox:  make(chan envelope, inboxSize),
			done:   make(chan struct{}),
		}
	}
	return f
}

// Endpoint returns node i's transport.
func (f *Fabric) Endpoint(i int) *Endpoint { return f.endpoints[i] }

// N returns the cluster size.
func (f *Fabric) N() int { return len(f.endpoints) }

// Close closes every endpoint.
func (f *Fabric) Close() error {
	for _, ep := range f.endpoints {
		ep.Close()
	}
	return nil
}

type envelope struct {
	from int
	msg  wire.Message
}

// Endpoint is one node's in-process transport.
type Endpoint struct {
	fabric *Fabric
	id     int
	inbox  chan envelope

	mu      sync.Mutex
	handler Handler
	started bool
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

var _ Transport = (*Endpoint)(nil)

// Self implements Transport.
func (e *Endpoint) Self() int { return e.id }

// N implements Transport.
func (e *Endpoint) N() int { return e.fabric.N() }

// Start registers the handler and begins dispatching inbound messages on a
// dedicated goroutine. It must be called exactly once before any peer
// sends to this endpoint.
func (e *Endpoint) Start(h Handler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("rpc: endpoint %d already started", e.id)
	}
	if e.closed {
		return ErrClosed
	}
	e.handler = h
	e.started = true
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			select {
			case env := <-e.inbox:
				h(env.from, env.msg)
			case <-e.done:
				// Drain what is already queued, then stop.
				for {
					select {
					case env := <-e.inbox:
						h(env.from, env.msg)
					default:
						return
					}
				}
			}
		}
	}()
	return nil
}

// Send implements Transport.
func (e *Endpoint) Send(to int, msg wire.Message) error {
	if to < 0 || to >= e.fabric.N() {
		return fmt.Errorf("rpc: no such node %d", to)
	}
	peer := e.fabric.endpoints[to]
	select {
	case <-peer.done:
		return ErrClosed
	default:
	}
	select {
	case peer.inbox <- envelope{from: e.id, msg: msg}:
		return nil
	case <-peer.done:
		return ErrClosed
	}
}

// Close implements Transport.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}
