package rpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"graphtrek/internal/wire"
)

// TCP is the network transport for standalone deployments: every node
// listens on one address and lazily dials its peers. Frames are
// [length: 4 bytes LE][wire-encoded message]; the first frame on a dialed
// connection is a 4-byte hello carrying the dialer's node id.
//
// A dedicated writer goroutine per peer preserves per-pair FIFO order, and
// each inbound connection is read (and its handler invoked) sequentially,
// so the ordering contract matches the in-process Fabric. The Handler must
// therefore be safe for concurrent calls from different peers.
type TCP struct {
	self    int
	addrs   []string
	handler Handler
	ln      net.Listener

	mu      sync.Mutex
	peers   map[int]*tcpPeer
	inbound map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

type tcpPeer struct {
	conn net.Conn
	out  chan []byte
	done chan struct{}
}

const tcpOutboxSize = 4096

// NewTCP starts a TCP transport for node self among the given peer
// addresses (index = node id). The handler receives every inbound message.
func NewTCP(self int, addrs []string, h Handler) (*TCP, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("rpc: self %d out of range", self)
	}
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addrs[self], err)
	}
	addrs = append([]string(nil), addrs...)
	addrs[self] = ln.Addr().String() // resolve ":0" to the bound port
	t := &TCP{
		self: self, addrs: addrs, handler: h, ln: ln,
		peers:   make(map[int]*tcpPeer),
		inbound: make(map[net.Conn]bool),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful when the
// configured address used port 0).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// PatchAddrs replaces the peer address list — used when a cluster binds
// ephemeral ports one node at a time and the final list is only known once
// every node is up. It must be called before the first Send to any
// not-yet-dialed peer; established connections are unaffected.
func (t *TCP) PatchAddrs(addrs []string) error {
	if len(addrs) != len(t.addrs) {
		return fmt.Errorf("rpc: PatchAddrs length %d != %d", len(addrs), len(t.addrs))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	copy(t.addrs, addrs)
	t.addrs[t.self] = t.ln.Addr().String()
	return nil
}

// Self implements Transport.
func (t *TCP) Self() int { return t.self }

// N implements Transport.
func (t *TCP) N() int { return len(t.addrs) }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := int(binary.LittleEndian.Uint32(hello[:]))
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 256<<20 {
			return // absurd frame, drop the connection
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		msg, err := wire.Decode(payload)
		if err != nil {
			return
		}
		t.handler(from, msg)
	}
}

// Send implements Transport.
func (t *TCP) Send(to int, msg wire.Message) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("rpc: no such node %d", to)
	}
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	frame := make([]byte, 4, 4+256)
	frame = wire.Append(frame, &msg)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	select {
	case p.out <- frame:
		return nil
	case <-p.done:
		return ErrClosed
	}
}

// peer returns (dialing if necessary) the outbound connection to node `to`.
func (t *TCP) peer(to int) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if p, ok := t.peers[to]; ok {
		return p, nil
	}
	conn, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("rpc: dial node %d: %w", to, err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(t.self))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	p := &tcpPeer{conn: conn, out: make(chan []byte, tcpOutboxSize), done: make(chan struct{})}
	t.peers[to] = p
	t.wg.Add(1)
	go t.writeLoop(p)
	return p, nil
}

func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	defer p.conn.Close()
	for {
		select {
		case frame := <-p.out:
			if _, err := p.conn.Write(frame); err != nil {
				return
			}
		case <-p.done:
			// Flush anything already queued, then stop.
			for {
				select {
				case frame := <-p.out:
					if _, err := p.conn.Write(frame); err != nil {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := t.peers
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range peers {
		close(p.done)
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
