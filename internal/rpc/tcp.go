package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"graphtrek/internal/wire"
)

// ErrBackpressure is returned by TCP.Send when a peer's outbox stays full
// for the bounded wait — the peer is stuck or the link is down, and the
// caller must not block forever behind it.
var ErrBackpressure = errors.New("rpc: peer outbox full (backpressure)")

// framePool recycles encode buffers between Send and the writer goroutines:
// a frame is taken here, filled, handed through the outbox, and returned
// once written (or lost). High-rate dispatch traffic would otherwise
// allocate every frame and feed it straight to the GC.
var framePool sync.Pool // holds *[]byte

// maxPooledFrame caps the buffers the pool retains: an occasional huge
// frame (a snapshot chunk, a giant plan) should not stay pinned forever.
const maxPooledFrame = 1 << 20

// getFrame returns a frame buffer with the 4-byte length header reserved.
func getFrame() []byte {
	if p, ok := framePool.Get().(*[]byte); ok {
		return (*p)[:4]
	}
	return make([]byte, 4, 4+512)
}

// putFrame recycles a frame buffer once no goroutine references it.
func putFrame(b []byte) {
	if cap(b) > maxPooledFrame {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// TCP is the network transport for standalone deployments: every node
// listens on one address and lazily dials its peers. Frames are
// [length: 4 bytes LE][wire-encoded message]; the first frame on a dialed
// connection is a 4-byte hello carrying the dialer's node id.
//
// A dedicated writer goroutine per peer preserves per-pair FIFO order, and
// each inbound connection is read (and its handler invoked) sequentially,
// so the ordering contract matches the in-process Fabric. The Handler must
// therefore be safe for concurrent calls from different peers.
//
// Failure behavior: a broken peer connection is redialed with capped
// exponential backoff. A frame whose write fails is retried once on a
// fresh connection — the engines tolerate duplicates, and the retry is
// what lets a restarted peer pick up where it left off — and is lost if
// the retry fails too (the engine's failure detector, not the transport,
// provides delivery guarantees). While a peer is unreachable its outbox
// fills, and Send fails with ErrBackpressure after Options.SendTimeout
// instead of blocking forever.
type TCP struct {
	self    int
	addrs   []string
	handler Handler
	ln      net.Listener
	opts    TCPOptions

	mu      sync.Mutex
	peers   map[int]*tcpPeer
	inbound map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup

	reconnects   atomic.Int64
	sendFailures atomic.Int64
	framesLost   atomic.Int64
}

var _ Transport = (*TCP)(nil)

// TCPOptions tunes the transport's robustness behavior. The zero value
// selects the defaults.
type TCPOptions struct {
	// OutboxSize is the per-peer outbox depth (default 4096 frames).
	OutboxSize int
	// SendTimeout bounds how long Send waits on a full outbox before
	// returning ErrBackpressure (default 2s; negative fails immediately).
	SendTimeout time.Duration
	// DialBackoffBase is the first redial delay after a connection failure
	// (default 50ms); it doubles per consecutive failure.
	DialBackoffBase time.Duration
	// DialBackoffMax caps the redial delay (default 2s).
	DialBackoffMax time.Duration
	// OnReconnect, when set, is invoked after a peer connection is
	// re-established following a loss (not on the first dial).
	OnReconnect func(peer int)
	// OnSendFailure, when set, is invoked when a frame is lost to a write
	// error or rejected by backpressure.
	OnSendFailure func(peer int)
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.OutboxSize <= 0 {
		o.OutboxSize = 4096
	}
	if o.SendTimeout == 0 {
		o.SendTimeout = 2 * time.Second
	}
	if o.DialBackoffBase <= 0 {
		o.DialBackoffBase = 50 * time.Millisecond
	}
	if o.DialBackoffMax <= 0 {
		o.DialBackoffMax = 2 * time.Second
	}
	return o
}

// TCPStats is a snapshot of the transport's failure counters.
type TCPStats struct {
	// Reconnects counts successful re-dials after a lost connection.
	Reconnects int64
	// SendFailures counts frames rejected by backpressure plus frames
	// lost to write errors.
	SendFailures int64
	// FramesLost counts frames accepted into an outbox but lost to a
	// write or dial failure.
	FramesLost int64
}

type tcpPeer struct {
	id   int
	out  chan []byte
	done chan struct{}
	// connDead is set by the connection monitor when the peer closes or
	// resets the outbound connection. Outbound connections are write-only,
	// so without the monitor a peer's death is invisible until a write
	// fails — and the kernel accepts the first write after a FIN, silently
	// losing the frame. connGen keeps a stale monitor (for an already
	// replaced connection) from flagging the live one.
	connDead atomic.Bool
	connGen  atomic.Uint64
}

// NewTCP starts a TCP transport for node self among the given peer
// addresses (index = node id) with default options. The handler receives
// every inbound message.
func NewTCP(self int, addrs []string, h Handler) (*TCP, error) {
	return NewTCPWithOptions(self, addrs, h, TCPOptions{})
}

// NewTCPWithOptions starts a TCP transport with explicit robustness
// options.
func NewTCPWithOptions(self int, addrs []string, h Handler, opts TCPOptions) (*TCP, error) {
	if self < 0 || self >= len(addrs) {
		return nil, fmt.Errorf("rpc: self %d out of range", self)
	}
	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addrs[self], err)
	}
	addrs = append([]string(nil), addrs...)
	addrs[self] = ln.Addr().String() // resolve ":0" to the bound port
	t := &TCP{
		self: self, addrs: addrs, handler: h, ln: ln,
		opts:    opts.withDefaults(),
		peers:   make(map[int]*tcpPeer),
		inbound: make(map[net.Conn]bool),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address (useful when the
// configured address used port 0).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Stats returns the transport's failure counters.
func (t *TCP) Stats() TCPStats {
	return TCPStats{
		Reconnects:   t.reconnects.Load(),
		SendFailures: t.sendFailures.Load(),
		FramesLost:   t.framesLost.Load(),
	}
}

// PatchAddrs replaces the peer address list — used when a cluster binds
// ephemeral ports one node at a time and the final list is only known once
// every node is up. It must be called before the first Send to any
// not-yet-dialed peer; established connections are unaffected.
func (t *TCP) PatchAddrs(addrs []string) error {
	if len(addrs) != len(t.addrs) {
		return fmt.Errorf("rpc: PatchAddrs length %d != %d", len(addrs), len(t.addrs))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	copy(t.addrs, addrs)
	t.addrs[t.self] = t.ln.Addr().String()
	return nil
}

// Self implements Transport.
func (t *TCP) Self() int { return t.self }

// N implements Transport.
func (t *TCP) N() int { return len(t.addrs) }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var hello [4]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	from := int(binary.LittleEndian.Uint32(hello[:]))
	var lenBuf [4]byte
	var payload []byte // reused across frames; wire.Decode never aliases it
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 256<<20 {
			return // absurd frame, drop the connection
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		msg, err := wire.Decode(payload)
		if err != nil {
			return
		}
		t.handler(from, msg)
	}
}

// Send implements Transport. A full outbox is waited on for at most
// SendTimeout before ErrBackpressure — a stuck peer cannot wedge the
// engine's worker goroutines indefinitely.
func (t *TCP) Send(to int, msg wire.Message) error {
	if to < 0 || to >= len(t.addrs) {
		return fmt.Errorf("rpc: no such node %d", to)
	}
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	frame := getFrame()
	frame = wire.Append(frame, &msg)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	select {
	case p.out <- frame:
		return nil
	case <-p.done:
		putFrame(frame)
		return ErrClosed
	default:
	}
	if t.opts.SendTimeout < 0 {
		putFrame(frame)
		return t.rejectFrame(to)
	}
	timer := time.NewTimer(t.opts.SendTimeout)
	defer timer.Stop()
	select {
	case p.out <- frame:
		return nil
	case <-p.done:
		putFrame(frame)
		return ErrClosed
	case <-timer.C:
		putFrame(frame)
		return t.rejectFrame(to)
	}
}

func (t *TCP) rejectFrame(to int) error {
	t.sendFailures.Add(1)
	if t.opts.OnSendFailure != nil {
		t.opts.OnSendFailure(to)
	}
	return fmt.Errorf("rpc: send to node %d: %w", to, ErrBackpressure)
}

// peer returns node to's outbox, starting its writer (which dials, and
// redials on failure) on first use.
func (t *TCP) peer(to int) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if p, ok := t.peers[to]; ok {
		return p, nil
	}
	p := &tcpPeer{id: to, out: make(chan []byte, t.opts.OutboxSize), done: make(chan struct{})}
	t.peers[to] = p
	t.wg.Add(1)
	go t.writeLoop(p)
	return p, nil
}

// dial establishes one outbound connection to peer and sends the hello
// frame identifying this node.
func (t *TCP) dial(to int) (net.Conn, error) {
	t.mu.Lock()
	addr := t.addrs[to]
	t.mu.Unlock()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(t.self))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// writeLoop owns one peer's connection: it dials (with capped exponential
// backoff on failure), drains the outbox, and on a dead connection redials
// and retries the frame once. A frame is lost only when the retry fails
// too, with loss made visible through the counters.
func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := t.opts.DialBackoffBase
	everConnected := false
	connect := func() bool {
		for conn == nil {
			select {
			case <-p.done:
				return false
			default:
			}
			c, err := t.dial(p.id)
			if err != nil {
				select {
				case <-p.done:
					return false
				case <-time.After(backoff):
				}
				backoff *= 2
				if backoff > t.opts.DialBackoffMax {
					backoff = t.opts.DialBackoffMax
				}
				continue
			}
			conn = c
			p.connDead.Store(false)
			t.monitorConn(c, p, p.connGen.Add(1))
			if everConnected {
				t.reconnects.Add(1)
				if t.opts.OnReconnect != nil {
					t.opts.OnReconnect(p.id)
				}
			}
			everConnected = true
			backoff = t.opts.DialBackoffBase
		}
		return true
	}
	write := func(frame []byte) {
		for attempt := 0; attempt < 2; attempt++ {
			if conn != nil && p.connDead.Load() {
				conn.Close()
				conn = nil
			}
			if conn == nil && !connect() {
				t.framesLost.Add(1)
				return // transport closing
			}
			if _, err := conn.Write(frame); err == nil {
				return
			}
			conn.Close()
			conn = nil
		}
		t.framesLost.Add(1)
		t.sendFailures.Add(1)
		if t.opts.OnSendFailure != nil {
			t.opts.OnSendFailure(p.id)
		}
	}
	for {
		select {
		case frame := <-p.out:
			write(frame)
			putFrame(frame)
		case <-p.done:
			// Flush anything already queued (best effort), then stop.
			for {
				select {
				case frame := <-p.out:
					if conn != nil {
						if _, err := conn.Write(frame); err != nil {
							conn.Close()
							conn = nil
						}
					}
					putFrame(frame)
				default:
					return
				}
			}
		}
	}
}

// monitorConn watches an outbound (write-only) connection for the peer
// closing its end. The protocol never sends data back on a dialed
// connection, so Read returning — EOF, reset, or local close — means the
// connection is gone; the flag tells writeLoop to redial before the next
// write instead of burying it in a dead socket.
func (t *TCP) monitorConn(conn net.Conn, p *tcpPeer, gen uint64) {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		var b [1]byte
		conn.Read(b[:])
		if p.connGen.Load() == gen {
			p.connDead.Store(true)
		}
	}()
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := t.peers
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range peers {
		close(p.done)
	}
	for _, c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
