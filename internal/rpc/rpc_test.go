package rpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphtrek/internal/wire"
)

// collector accumulates received messages behind a mutex.
type collector struct {
	mu   sync.Mutex
	msgs []wire.Message
	from []int
}

func (c *collector) handle(from int, msg wire.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, msg)
	c.from = append(c.from, from)
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for condition")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFabricBasicDelivery(t *testing.T) {
	f := NewFabric(3, 0)
	defer f.Close()
	var c collector
	for i := 0; i < 3; i++ {
		if err := f.Endpoint(i).Start(c.handle); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Endpoint(0).Send(1, wire.Message{Kind: wire.KindResult, TravelID: 9}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.len() == 1 })
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.from[0] != 0 || c.msgs[0].TravelID != 9 {
		t.Errorf("got from=%d msg=%+v", c.from[0], c.msgs[0])
	}
}

func TestFabricSelfSend(t *testing.T) {
	f := NewFabric(1, 0)
	defer f.Close()
	var c collector
	f.Endpoint(0).Start(c.handle)
	if err := f.Endpoint(0).Send(0, wire.Message{Kind: wire.KindStepGo}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.len() == 1 })
}

func TestFabricPerPairFIFO(t *testing.T) {
	f := NewFabric(2, 0)
	defer f.Close()
	var c collector
	f.Endpoint(0).Start(c.handle)
	f.Endpoint(1).Start(c.handle)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := f.Endpoint(0).Send(1, wire.Message{Kind: wire.KindResult, TravelID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c.len() == n })
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.msgs {
		if m.TravelID != uint64(i) {
			t.Fatalf("message %d has id %d: FIFO violated", i, m.TravelID)
		}
	}
}

func TestFabricInvalidDestination(t *testing.T) {
	f := NewFabric(2, 0)
	defer f.Close()
	f.Endpoint(0).Start(func(int, wire.Message) {})
	if err := f.Endpoint(0).Send(5, wire.Message{}); err == nil {
		t.Error("send to unknown node should error")
	}
	if err := f.Endpoint(0).Send(-1, wire.Message{}); err == nil {
		t.Error("send to negative node should error")
	}
}

func TestFabricSendAfterCloseErrors(t *testing.T) {
	f := NewFabric(2, 0)
	f.Endpoint(0).Start(func(int, wire.Message) {})
	f.Endpoint(1).Start(func(int, wire.Message) {})
	f.Endpoint(1).Close()
	if err := f.Endpoint(0).Send(1, wire.Message{}); err != ErrClosed {
		t.Errorf("send to closed endpoint = %v, want ErrClosed", err)
	}
	f.Close()
}

func TestFabricDoubleStartErrors(t *testing.T) {
	f := NewFabric(1, 0)
	defer f.Close()
	ep := f.Endpoint(0)
	if err := ep.Start(func(int, wire.Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Start(func(int, wire.Message) {}); err == nil {
		t.Error("second Start should error")
	}
}

func TestFabricConcurrentSenders(t *testing.T) {
	f := NewFabric(4, 0)
	defer f.Close()
	var total atomic.Int64
	for i := 0; i < 4; i++ {
		f.Endpoint(i).Start(func(int, wire.Message) { total.Add(1) })
	}
	var wg sync.WaitGroup
	const per = 500
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := f.Endpoint(s).Send((s+i)%4, wire.Message{Kind: wire.KindResult}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	waitFor(t, func() bool { return total.Load() == 4*per })
}

func newTCPPair(t *testing.T, h0, h1 Handler) (*TCP, *TCP) {
	t.Helper()
	// Bind both listeners on ephemeral ports, then exchange real addrs.
	t0, err := NewTCP(0, []string{"127.0.0.1:0", "127.0.0.1:0"}, h0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTCP(1, []string{t0.Addr(), "127.0.0.1:0"}, h1)
	if err != nil {
		t0.Close()
		t.Fatal(err)
	}
	patched := append([]string(nil), t0.addrs...)
	patched[1] = t1.Addr()
	if err := t0.PatchAddrs(patched); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { t0.Close(); t1.Close() })
	return t0, t1
}

func TestTCPDelivery(t *testing.T) {
	var c collector
	t0, _ := newTCPPair(t, c.handle, c.handle)
	msg := wire.Message{Kind: wire.KindDispatch, TravelID: 3, Entries: []wire.Entry{{Vertex: 8, Dest: -1}}}
	if err := t0.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.len() == 1 })
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.from[0] != 0 || c.msgs[0].TravelID != 3 || len(c.msgs[0].Entries) != 1 {
		t.Errorf("got from=%d msg=%+v", c.from[0], c.msgs[0])
	}
}

func TestTCPBidirectionalAndFIFO(t *testing.T) {
	var c0, c1 collector
	t0, t1 := newTCPPair(t, c0.handle, c1.handle)
	const n = 200
	for i := 0; i < n; i++ {
		if err := t0.Send(1, wire.Message{Kind: wire.KindResult, TravelID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := t1.Send(0, wire.Message{Kind: wire.KindResult, TravelID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return c0.len() == n && c1.len() == n })
	for name, c := range map[string]*collector{"c0": &c0, "c1": &c1} {
		c.mu.Lock()
		for i, m := range c.msgs {
			if m.TravelID != uint64(i) {
				t.Errorf("%s: message %d has id %d", name, i, m.TravelID)
			}
		}
		c.mu.Unlock()
	}
}

func TestTCPSelfSend(t *testing.T) {
	var c collector
	t0, _ := newTCPPair(t, c.handle, func(int, wire.Message) {})
	if err := t0.Send(0, wire.Message{Kind: wire.KindStepGo, Step: 4}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.len() == 1 })
}

func TestTCPInvalidDestination(t *testing.T) {
	t0, _ := newTCPPair(t, func(int, wire.Message) {}, func(int, wire.Message) {})
	if err := t0.Send(9, wire.Message{}); err == nil {
		t.Error("send to unknown node should error")
	}
}

func TestTCPCloseIsClean(t *testing.T) {
	var c collector
	t0, t1 := newTCPPair(t, c.handle, c.handle)
	t0.Send(1, wire.Message{Kind: wire.KindResult})
	waitFor(t, func() bool { return c.len() == 1 })
	if err := t0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := t0.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := t0.Send(1, wire.Message{}); err != ErrClosed {
		t.Errorf("send after close = %v", err)
	}
	_ = t1.Close()
}

func TestTCPManyNodes(t *testing.T) {
	const n = 5
	var c [n]collector
	nodes := make([]*TCP, n)
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	// Start sequentially, patching in real addresses as they bind.
	for i := 0; i < n; i++ {
		node, err := NewTCP(i, append([]string(nil), addrs...), c[i].handle)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = node.Addr()
		nodes[i] = node
		defer node.Close()
	}
	// Everyone now knows the final address list.
	for _, node := range nodes {
		if err := node.PatchAddrs(addrs); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if err := nodes[s].Send(d, wire.Message{Kind: wire.KindResult, TravelID: uint64(s*n + d)}); err != nil {
				t.Fatalf("send %d->%d: %v", s, d, err)
			}
		}
	}
	waitFor(t, func() bool {
		for i := range c {
			if c[i].len() != n {
				return false
			}
		}
		return true
	})
	for i := range c {
		c[i].mu.Lock()
		seen := map[uint64]bool{}
		for _, m := range c[i].msgs {
			seen[m.TravelID] = true
		}
		c[i].mu.Unlock()
		for s := 0; s < n; s++ {
			if !seen[uint64(s*n+i)] {
				t.Errorf("node %d missing message from %d", i, s)
			}
		}
	}
}

func BenchmarkFabricSend(b *testing.B) {
	f := NewFabric(2, 1<<16)
	defer f.Close()
	var n atomic.Int64
	f.Endpoint(0).Start(func(int, wire.Message) {})
	f.Endpoint(1).Start(func(int, wire.Message) { n.Add(1) })
	msg := wire.Message{Kind: wire.KindDispatch, Entries: make([]wire.Entry, 8)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Endpoint(0).Send(1, msg); err != nil {
			b.Fatal(err)
		}
	}
	for n.Load() < int64(b.N) {
		time.Sleep(time.Microsecond)
	}
}

func BenchmarkTCPSend(b *testing.B) {
	var n atomic.Int64
	t0, err := NewTCP(0, []string{"127.0.0.1:0", "127.0.0.1:0"}, func(int, wire.Message) {})
	if err != nil {
		b.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewTCP(1, []string{t0.Addr(), "127.0.0.1:0"}, func(int, wire.Message) { n.Add(1) })
	if err != nil {
		b.Fatal(err)
	}
	defer t1.Close()
	patched := append([]string(nil), t0.addrs...)
	patched[1] = t1.Addr()
	t0.PatchAddrs(patched)
	msg := wire.Message{Kind: wire.KindDispatch, Entries: make([]wire.Entry, 8)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t0.Send(1, msg); err != nil {
			b.Fatal(err)
		}
	}
	for n.Load() < int64(b.N) {
		time.Sleep(time.Microsecond)
	}
}

var _ = fmt.Sprintf // keep fmt for future debug use
