package rpc

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"graphtrek/internal/wire"
)

// Chaos wraps a Transport with deterministic, seed-driven fault injection:
// message drops, delays, duplication, reordering, link partitions, and
// whole-node crash-stop. It is the standard harness for robustness tests —
// the same faults can be replayed from the same seed.
//
// Faults are injected on the send side (and, via WrapHandler, on the
// receive side), so a Chaos per node models that node's network view.
// Ordering: unless ReorderProb fires, every message to a given peer flows
// through one per-peer delay queue drained by a single goroutine, so
// per-pair FIFO — the property the engines' correctness argument relies on
// — is preserved even under delay and duplication. A reordered message
// bypasses the queue and may overtake earlier sends; engines tolerate
// completion-detection noise from that only in failure tests, so keep
// ReorderProb at zero in differential (exact-result) tests.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig

	mu      sync.Mutex
	rng     *rand.Rand
	links   map[int]*chaosLink
	cutOut  map[int]bool
	cutIn   map[int]bool
	closed  bool
	crashed atomic.Bool
	wg      sync.WaitGroup

	stats ChaosStats
}

// ChaosConfig selects the fault mix. All probabilities are in [0, 1] and
// drawn from one seeded source, so a given (seed, send sequence) replays
// identically.
type ChaosConfig struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// DropProb silently discards an outbound message.
	DropProb float64
	// DupProb enqueues a second copy of the message after the original.
	DupProb float64
	// DelayProb holds a message in the per-peer queue for up to MaxDelay
	// before delivery (FIFO per peer is preserved).
	DelayProb float64
	// MaxDelay bounds injected delays (default 2ms when a delay fires).
	MaxDelay time.Duration
	// ReorderProb delivers a message on a side path after a random delay,
	// letting it overtake or fall behind queue traffic — this breaks
	// per-pair FIFO by design.
	ReorderProb float64
	// DropOut, when set, deterministically discards matching outbound
	// messages (targeted fault injection, e.g. "drop everything to the
	// coordinator for traversal 7").
	DropOut func(to int, msg wire.Message) bool
	// DropIn, when set, deterministically discards matching inbound
	// messages; it is consulted by the handler returned from WrapHandler.
	DropIn func(from int, msg wire.Message) bool
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Sent, Dropped, Delayed, Duplicated, Reordered, CrashDiscarded int64
}

// delayed is one queued outbound message with its delivery time.
type delayed struct {
	at  time.Time
	to  int
	msg wire.Message
}

// chaosLink is the per-peer FIFO delay queue.
type chaosLink struct {
	ch chan delayed
}

const chaosLinkDepth = 8192

// NewChaos wraps tr in a fault injector. Close the Chaos, not the inner
// transport; Close propagates.
func NewChaos(tr Transport, cfg ChaosConfig) *Chaos {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	return &Chaos{
		inner:  tr,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		links:  make(map[int]*chaosLink),
		cutOut: make(map[int]bool),
		cutIn:  make(map[int]bool),
	}
}

// Self implements Transport.
func (c *Chaos) Self() int { return c.inner.Self() }

// N implements Transport.
func (c *Chaos) N() int { return c.inner.N() }

// Crash simulates a crash-stop of this node: every subsequent outbound and
// (via WrapHandler) inbound message is discarded. The wrapped node's
// goroutines keep running — from the cluster's perspective that is
// indistinguishable from a dead process.
func (c *Chaos) Crash() { c.crashed.Store(true) }

// Crashed reports whether Crash was called.
func (c *Chaos) Crashed() bool { return c.crashed.Load() }

// Revive undoes Crash — the node "restarts" with its state intact, which
// models a network partition healing rather than a process restart.
func (c *Chaos) Revive() { c.crashed.Store(false) }

// Isolate cuts both directions of the link to peer: a symmetric partition
// between this node and peer as seen from this side.
func (c *Chaos) Isolate(peer int) {
	c.mu.Lock()
	c.cutOut[peer] = true
	c.cutIn[peer] = true
	c.mu.Unlock()
}

// Heal restores the link to peer.
func (c *Chaos) Heal(peer int) {
	c.mu.Lock()
	delete(c.cutOut, peer)
	delete(c.cutIn, peer)
	c.mu.Unlock()
}

// Stats returns a copy of the fault counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// WrapHandler returns a handler that applies receive-side faults (crash,
// partitions, DropIn) before delegating to h. Register it with the inner
// transport in place of h.
func (c *Chaos) WrapHandler(h Handler) Handler {
	return func(from int, msg wire.Message) {
		if c.crashed.Load() {
			return
		}
		c.mu.Lock()
		cut := c.cutIn[from]
		c.mu.Unlock()
		if cut {
			return
		}
		if c.cfg.DropIn != nil && c.cfg.DropIn(from, msg) {
			return
		}
		h(from, msg)
	}
}

// Send implements Transport, applying the configured fault mix.
func (c *Chaos) Send(to int, msg wire.Message) error {
	if c.crashed.Load() {
		c.mu.Lock()
		c.stats.CrashDiscarded++
		c.mu.Unlock()
		return nil // a dead node's sends vanish without an error
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.cutOut[to] {
		c.stats.Dropped++
		c.mu.Unlock()
		return nil
	}
	if c.cfg.DropOut != nil && c.cfg.DropOut(to, msg) {
		c.stats.Dropped++
		c.mu.Unlock()
		return nil
	}
	drop := c.roll(c.cfg.DropProb)
	dup := c.roll(c.cfg.DupProb)
	reorder := c.roll(c.cfg.ReorderProb)
	var delay time.Duration
	if c.roll(c.cfg.DelayProb) {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay)))
	}
	var dupDelay time.Duration
	if dup {
		dupDelay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay)))
	}
	var reorderDelay time.Duration
	if reorder {
		reorderDelay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay)))
	}
	c.stats.Sent++
	switch {
	case drop:
		c.stats.Dropped++
	case reorder:
		c.stats.Reordered++
	default:
		if delay > 0 {
			c.stats.Delayed++
		}
	}
	if dup && !drop {
		c.stats.Duplicated++
	}
	useQueue := c.cfg.DelayProb > 0 || c.cfg.DupProb > 0 || c.cfg.ReorderProb > 0
	var link *chaosLink
	if useQueue && !drop {
		link = c.linkLocked(to)
	}
	c.mu.Unlock()

	if drop {
		return nil
	}
	if reorder {
		// Side path: overtakes (or trails) the per-peer queue.
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			time.Sleep(reorderDelay)
			_ = c.inner.Send(to, msg)
		}()
		return nil
	}
	if link == nil {
		return c.inner.Send(to, msg)
	}
	now := time.Now()
	c.enqueue(link, delayed{at: now.Add(delay), to: to, msg: msg})
	if dup {
		c.enqueue(link, delayed{at: now.Add(delay + dupDelay), to: to, msg: msg})
	}
	return nil
}

// roll draws one seeded probabilistic decision. Caller holds c.mu.
func (c *Chaos) roll(p float64) bool {
	return p > 0 && c.rng.Float64() < p
}

// linkLocked returns (starting if necessary) the per-peer delivery queue.
// Caller holds c.mu.
func (c *Chaos) linkLocked(to int) *chaosLink {
	l, ok := c.links[to]
	if !ok {
		l = &chaosLink{ch: make(chan delayed, chaosLinkDepth)}
		c.links[to] = l
		c.wg.Add(1)
		go c.drainLink(l)
	}
	return l
}

// enqueue adds a message to a link's queue, dropping it if the queue is
// saturated (an overloaded chaotic link loses messages — like a real one).
// It holds c.mu across the send so Close cannot close the channel between
// the closed check and the send: Send's entry check is not enough, because
// delivering one enqueued copy can unblock the caller's shutdown path
// while a duplicate's enqueue is still in flight.
func (c *Chaos) enqueue(l *chaosLink, d delayed) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		c.stats.Dropped++
		return
	}
	select {
	case l.ch <- d:
	default:
		c.stats.Dropped++
	}
}

// drainLink delivers one peer's queue sequentially: waiting out each
// message's remaining delay in arrival order preserves per-pair FIFO.
func (c *Chaos) drainLink(l *chaosLink) {
	defer c.wg.Done()
	for d := range l.ch {
		if wait := time.Until(d.at); wait > 0 {
			time.Sleep(wait)
		}
		if c.crashed.Load() {
			continue
		}
		_ = c.inner.Send(d.to, d.msg)
	}
}

// Close stops the fault injector, drains queued deliveries, and closes the
// inner transport.
func (c *Chaos) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, l := range c.links {
		close(l.ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
	return c.inner.Close()
}

var _ Transport = (*Chaos)(nil)
