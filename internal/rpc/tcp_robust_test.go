package rpc

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"graphtrek/internal/wire"
)

// TestTCPReconnectAfterPeerRestart kills a peer's transport and restarts a
// fresh one on the same address: the sender's write loop must notice the
// broken connection, redial with backoff, and resume delivery — counting
// the reconnect.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	var c0, c1 collector
	t0, err := NewTCPWithOptions(0, []string{"127.0.0.1:0", "127.0.0.1:0"}, c0.handle, TCPOptions{
		DialBackoffBase: 5 * time.Millisecond,
		DialBackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := NewTCP(1, []string{t0.Addr(), "127.0.0.1:0"}, c1.handle)
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := t1.Addr()
	patched := []string{t0.Addr(), peerAddr}
	if err := t0.PatchAddrs(patched); err != nil {
		t.Fatal(err)
	}

	if err := t0.Send(1, wire.Message{Kind: wire.KindResult, TravelID: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c1.len() == 1 })

	// Kill the peer. In-flight and near-future frames are lost (at-most-
	// once delivery); the transport must not error out or wedge.
	if err := t1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart a fresh transport on the same address and keep sending until
	// a frame arrives over the re-established connection.
	var c1b collector
	t1b, err := NewTCP(1, []string{t0.Addr(), peerAddr}, c1b.handle)
	if err != nil {
		t.Fatalf("restart on %s: %v", peerAddr, err)
	}
	defer t1b.Close()

	deadline := time.Now().Add(10 * time.Second)
	for c1b.len() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no delivery after peer restart; stats %+v", t0.Stats())
		}
		if err := t0.Send(1, wire.Message{Kind: wire.KindResult, TravelID: 2}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := t0.Stats(); s.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1 (stats %+v)", s.Reconnects, s)
	}
}

// TestTCPBackpressure points a tiny outbox at an unreachable peer: once the
// writer is stuck in dial backoff the outbox fills, and Send must fail with
// ErrBackpressure instead of blocking the caller forever.
func TestTCPBackpressure(t *testing.T) {
	reconnectObserved := make(chan int, 16)
	var failures atomic.Int64
	t0, err := NewTCPWithOptions(0, []string{"127.0.0.1:0", "127.0.0.1:1"}, func(int, wire.Message) {}, TCPOptions{
		OutboxSize:      2,
		SendTimeout:     -1, // fail immediately on a full outbox
		DialBackoffBase: 10 * time.Millisecond,
		DialBackoffMax:  50 * time.Millisecond,
		OnReconnect:     func(peer int) { reconnectObserved <- peer },
		OnSendFailure:   func(int) { failures.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	// Port 1 refuses connections, so the writer loops in dial backoff. The
	// outbox holds 2 frames plus one in the writer's hands; within a few
	// sends the outbox is full and backpressure must kick in.
	var bpErr error
	for i := 0; i < 20 && bpErr == nil; i++ {
		bpErr = t0.Send(1, wire.Message{Kind: wire.KindResult, TravelID: uint64(i)})
	}
	if !errors.Is(bpErr, ErrBackpressure) {
		t.Fatalf("want ErrBackpressure, got %v", bpErr)
	}
	if s := t0.Stats(); s.SendFailures < 1 {
		t.Errorf("SendFailures = %d, want >= 1", s.SendFailures)
	}
	if failures.Load() < 1 {
		t.Error("OnSendFailure callback never fired")
	}
	select {
	case p := <-reconnectObserved:
		t.Errorf("unexpected reconnect to %d (never connected)", p)
	default:
	}
}

// TestTCPBackpressureBoundedWait verifies the positive-timeout path: Send
// blocks for about SendTimeout, not forever, on a wedged peer.
func TestTCPBackpressureBoundedWait(t *testing.T) {
	t0, err := NewTCPWithOptions(0, []string{"127.0.0.1:0", "127.0.0.1:1"}, func(int, wire.Message) {}, TCPOptions{
		OutboxSize:  1,
		SendTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	var bpErr error
	start := time.Now()
	for i := 0; i < 10 && bpErr == nil; i++ {
		bpErr = t0.Send(1, wire.Message{Kind: wire.KindResult})
	}
	if !errors.Is(bpErr, ErrBackpressure) {
		t.Fatalf("want ErrBackpressure, got %v", bpErr)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("bounded wait took %v; Send must not block indefinitely", elapsed)
	}
}
