package query

import (
	"reflect"
	"strings"
	"testing"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

func TestBuilderAuditQuery(t *testing.T) {
	// The paper's §III-A1 data-auditing query.
	p, err := V(1).
		E("run").Ea("start_ts", property.RANGE, 100, 200).
		E("read").Va("type", property.EQ, "text").Rtn().
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSteps() != 3 {
		t.Fatalf("steps = %d", p.NumSteps())
	}
	if p.Steps[1].EdgeLabel != "run" || len(p.Steps[1].EdgeFilters) != 1 {
		t.Errorf("step 1 = %+v", p.Steps[1])
	}
	if p.Steps[2].EdgeLabel != "read" || len(p.Steps[2].VertexFilters) != 1 || !p.Steps[2].Rtn {
		t.Errorf("step 2 = %+v", p.Steps[2])
	}
}

func TestBuilderProvenanceQuery(t *testing.T) {
	// §III-A2: return source executions whose inputs carry annotation B.
	p, err := V().Va(LabelKey, property.EQ, "Execution").Rtn().
		Va("model", property.EQ, "A").
		E("read").
		Va("annotation", property.EQ, "B").
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Steps[0].Rtn || p.Steps[1].Rtn {
		t.Error("rtn should mark step 0 only")
	}
	if len(p.Steps[0].VertexFilters) != 2 {
		t.Errorf("step 0 filters = %d, want 2", len(p.Steps[0].VertexFilters))
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]*Travel{
		"empty edge label": V(1).E(""),
		"ea before e":      V(1).Ea("k", property.EQ, 1),
		"bad filter arity": V(1).E("run").Ea("k", property.RANGE, 1),
		"empty vlabel":     VLabel(""),
		"bad filter value": V(1).Va("k", property.EQ, struct{}{}),
	}
	for name, tr := range cases {
		if _, err := tr.Compile(); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	tr := V(1).E("") // error here
	tr.E("run").Va("k", property.EQ, 1).Rtn()
	if _, err := tr.Compile(); err == nil || !strings.Contains(err.Error(), "empty edge label") {
		t.Errorf("first error should stick, got %v", err)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []*Plan{
		{},
		{Steps: []Step{{EdgeLabel: "run"}}},
		{Steps: []Step{{SourceIDs: []model.VertexID{1}, SourceLabel: "User"}}},
		{Steps: []Step{{}, {}}},
		{Steps: []Step{{}, {EdgeLabel: "run", SourceIDs: []model.VertexID{1}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestReturnedImplicitAndExplicit(t *testing.T) {
	imp, _ := V(1).E("a").E("b").Compile()
	if imp.Returned(0) || imp.Returned(1) || !imp.Returned(2) {
		t.Error("implicit rtn should mark only the final step")
	}
	exp, _ := V(1).Rtn().E("a").E("b").Compile()
	if !exp.Returned(0) || exp.Returned(2) {
		t.Error("explicit rtn should mark only marked steps")
	}
}

func TestPlanEncodeDecodeRoundTrip(t *testing.T) {
	plans := []*Plan{
		mustCompile(t, V(1, 2, 3).E("run").Ea("ts", property.RANGE, 1, 9).E("read").Rtn()),
		mustCompile(t, VLabel("Execution").Va("model", property.EQ, "A").Rtn().E("read")),
		mustCompile(t, V().E("x").Va("b", property.IN, 1, 2, 3)),
	}
	for i, p := range plans {
		enc := p.Encode()
		got, err := DecodePlan(enc)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("plan %d: round trip mismatch\n got %+v\nwant %+v", i, got, p)
		}
	}
}

func mustCompile(t *testing.T, tr *Travel) *Plan {
	t.Helper()
	p, err := tr.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDecodePlanErrors(t *testing.T) {
	if _, err := DecodePlan(nil); err == nil {
		t.Error("nil input should error")
	}
	if _, err := DecodePlan([]byte{9, 9}); err == nil {
		t.Error("bad version should error")
	}
	p := mustCompile(t, V(1).E("run"))
	enc := p.Encode()
	if _, err := DecodePlan(enc[:len(enc)-1]); err == nil {
		t.Error("truncated plan should error")
	}
	if _, err := DecodePlan(append(enc, 0)); err == nil {
		t.Error("trailing bytes should error")
	}
}

func TestPlanString(t *testing.T) {
	p := mustCompile(t, V(1).E("run").Ea("ts", property.EQ, 5).Rtn())
	s := p.String()
	for _, want := range []string{"GTravel", ".v(1 ids)", `.e("run")`, ".ea", ".rtn()"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if s := mustCompile(t, VLabel("User")).String(); !strings.Contains(s, "label=User") {
		t.Errorf("VLabel String() = %q", s)
	}
	if s := mustCompile(t, V()).String(); !strings.Contains(s, ".v()") {
		t.Errorf("V() String() = %q", s)
	}
}

func TestVertexMatchesLabelKey(t *testing.T) {
	v := model.Vertex{ID: 1, Label: "Execution", Props: property.Map{"model": property.String("A")}}
	okf, _ := property.NewFilter(LabelKey, property.EQ, property.String("Execution"))
	badf, _ := property.NewFilter(LabelKey, property.EQ, property.String("File"))
	propf, _ := property.NewFilter("model", property.EQ, property.String("A"))
	if !VertexMatches(v, property.Filters{okf, propf}) {
		t.Error("label + prop filters should match")
	}
	if VertexMatches(v, property.Filters{badf}) {
		t.Error("wrong label should not match")
	}
}

// buildTestGraph constructs the paper's Fig. 1-style metadata graph:
//
//	user1 -run-> exec10 (ts 5)  -read->  file20 (type text)
//	user1 -run-> exec11 (ts 50) -read->  file21 (type bin)
//	exec10 -write-> file22
//	user2 -run-> exec12 (ts 5)  (no reads)
func buildTestGraph(t *testing.T) gstore.Graph {
	t.Helper()
	g := gstore.NewMemStore()
	add := func(v model.Vertex) {
		if err := g.PutVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	add(model.Vertex{ID: 1, Label: "User", Props: property.Map{"name": property.String("sam")}})
	add(model.Vertex{ID: 2, Label: "User", Props: property.Map{"name": property.String("john")}})
	add(model.Vertex{ID: 10, Label: "Execution", Props: property.Map{"model": property.String("A")}})
	add(model.Vertex{ID: 11, Label: "Execution", Props: property.Map{"model": property.String("B")}})
	add(model.Vertex{ID: 12, Label: "Execution", Props: property.Map{"model": property.String("A")}})
	add(model.Vertex{ID: 20, Label: "File", Props: property.Map{"type": property.String("text")}})
	add(model.Vertex{ID: 21, Label: "File", Props: property.Map{"type": property.String("bin")}})
	add(model.Vertex{ID: 22, Label: "File", Props: property.Map{"type": property.String("text")}})
	for _, e := range []model.Edge{
		{Src: 1, Dst: 10, Label: "run", Props: property.Map{"ts": property.Int(5)}},
		{Src: 1, Dst: 11, Label: "run", Props: property.Map{"ts": property.Int(50)}},
		{Src: 2, Dst: 12, Label: "run", Props: property.Map{"ts": property.Int(5)}},
		{Src: 10, Dst: 20, Label: "read"},
		{Src: 11, Dst: 21, Label: "read"},
		{Src: 10, Dst: 22, Label: "write"},
	} {
		if err := g.PutEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestReferenceAuditQuery(t *testing.T) {
	g := buildTestGraph(t)
	// Files of type text read by user 1 via runs with ts in [0,10].
	p := mustCompile(t, V(1).
		E("run").Ea("ts", property.RANGE, 0, 10).
		E("read").Va("type", property.EQ, "text"))
	res, err := Reference(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Results, []model.VertexID{20}) {
		t.Errorf("results = %v, want [20]", res.Results)
	}
	if !reflect.DeepEqual(res.Frontiers, []int{1, 1, 1}) {
		t.Errorf("frontiers = %v", res.Frontiers)
	}
}

func TestReferenceRtnReturnsSourcesWithSurvivingPaths(t *testing.T) {
	g := buildTestGraph(t)
	// Executions with model A whose reads reach a text file. Exec 10
	// qualifies; exec 12 (model A, no reads) must not.
	p := mustCompile(t, V().
		Va(LabelKey, property.EQ, "Execution").Va("model", property.EQ, "A").Rtn().
		E("read").Va("type", property.EQ, "text"))
	res, err := Reference(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Results, []model.VertexID{10}) {
		t.Errorf("results = %v, want [10]", res.Results)
	}
}

func TestReferenceMultipleRtnSteps(t *testing.T) {
	g := buildTestGraph(t)
	// Both the user and the file step marked: result is their union,
	// restricted to paths that survive to the end.
	p := mustCompile(t, V(1, 2).Rtn().
		E("run").
		E("read").Rtn())
	res, err := Reference(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Results, []model.VertexID{1, 20, 21}) {
		t.Errorf("results = %v, want [1 20 21] (user 2 has no read path)", res.Results)
	}
}

func TestReferenceSourceLabelSelection(t *testing.T) {
	g := buildTestGraph(t)
	p := mustCompile(t, VLabel("User"))
	res, err := Reference(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Results, []model.VertexID{1, 2}) {
		t.Errorf("results = %v", res.Results)
	}
}

func TestReferenceDanglingEdgeIgnored(t *testing.T) {
	g := gstore.NewMemStore()
	g.PutVertex(model.Vertex{ID: 1, Label: "User"})
	g.PutEdge(model.Edge{Src: 1, Dst: 99, Label: "run"}) // 99 never stored
	p := mustCompile(t, V(1).E("run"))
	res, err := Reference(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 0 {
		t.Errorf("dangling edge produced results: %v", res.Results)
	}
}

func TestReferenceDuplicateSeedsDeduped(t *testing.T) {
	g := buildTestGraph(t)
	p := mustCompile(t, V(1, 1, 1).E("run"))
	res, err := Reference(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Results, []model.VertexID{10, 11}) {
		t.Errorf("results = %v", res.Results)
	}
	if res.Frontiers[0] != 1 {
		t.Errorf("seed frontier = %d, want 1 after dedup", res.Frontiers[0])
	}
}

func TestReferenceRevisitAcrossSteps(t *testing.T) {
	// A cycle: 1 -next-> 2 -next-> 1. BFS would refuse to revisit vertex 1
	// at step 2; GraphTrek's pattern 2 allows it.
	g := gstore.NewMemStore()
	g.PutVertex(model.Vertex{ID: 1, Label: "N"})
	g.PutVertex(model.Vertex{ID: 2, Label: "N"})
	g.PutEdge(model.Edge{Src: 1, Dst: 2, Label: "next"})
	g.PutEdge(model.Edge{Src: 2, Dst: 1, Label: "next"})
	p := mustCompile(t, V(1).E("next").E("next"))
	res, err := Reference(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Results, []model.VertexID{1}) {
		t.Errorf("results = %v, want revisited [1]", res.Results)
	}
}
