// Package query implements the GTravel traversal language of §III: an
// iterative, chainable query builder whose methods return the receiver so
// traversals read as one expression, e.g. the paper's data-auditing query:
//
//	q := query.V(userA).
//		E("run").Ea("start_ts", property.RANGE, ts, te).
//		E("read").Va("type", property.EQ, "text").Rtn()
//	plan, err := q.Compile()
//
// A Travel compiles into a Plan — the wire-portable, validated step list the
// traversal engines execute. The package also provides Reference, a
// single-threaded oracle evaluator used to cross-check every distributed
// engine in tests.
package query

import (
	"errors"
	"fmt"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// Travel is a GTravel query under construction. Builder methods record the
// first error encountered and make every later call a no-op, so call sites
// only check the error once, at Compile.
type Travel struct {
	steps []Step
	err   error
}

// V starts a traversal from an explicit set of source vertices, mirroring
// GTravel.v(). With no arguments the traversal starts from every vertex
// (filtered by subsequent Va calls), as in the paper's provenance example.
func V(ids ...model.VertexID) *Travel {
	t := &Travel{}
	t.steps = append(t.steps, Step{SourceIDs: ids})
	return t
}

// VLabel starts a traversal from every vertex with the given label, using
// the store's by-label namespace index rather than a full scan.
func VLabel(label string) *Travel {
	t := &Travel{}
	if label == "" {
		t.err = errors.New("query: VLabel with empty label")
	}
	t.steps = append(t.steps, Step{SourceLabel: label})
	return t
}

func (t *Travel) fail(err error) *Travel {
	if t.err == nil {
		t.err = err
	}
	return t
}

func (t *Travel) last() *Step { return &t.steps[len(t.steps)-1] }

// E appends a traversal step that follows edges with the given label,
// mirroring GTravel.e().
func (t *Travel) E(label string) *Travel {
	if t.err != nil {
		return t
	}
	if label == "" {
		return t.fail(errors.New("query: E with empty edge label"))
	}
	t.steps = append(t.steps, Step{EdgeLabel: label})
	return t
}

// Va adds a vertex property filter to the current step, mirroring
// GTravel.va(). Multiple filters on one step compose with AND. Values are
// native Go scalars (string, int, int64, float64, bool).
func (t *Travel) Va(key string, op property.Op, vals ...any) *Travel {
	if t.err != nil {
		return t
	}
	f, err := newFilter(key, op, vals)
	if err != nil {
		return t.fail(err)
	}
	t.last().VertexFilters = append(t.last().VertexFilters, f)
	return t
}

// Ea adds an edge property filter to the current step, mirroring
// GTravel.ea(). It is only meaningful after E.
func (t *Travel) Ea(key string, op property.Op, vals ...any) *Travel {
	if t.err != nil {
		return t
	}
	if len(t.steps) == 1 {
		return t.fail(errors.New("query: Ea before any E step"))
	}
	f, err := newFilter(key, op, vals)
	if err != nil {
		return t.fail(err)
	}
	t.last().EdgeFilters = append(t.last().EdgeFilters, f)
	return t
}

// Rtn marks the current step's working set for return, mirroring
// GTravel.rtn(): the vertices at this point are returned to the user, but
// only those whose resulting traversals reach the end of the call chain.
func (t *Travel) Rtn() *Travel {
	if t.err != nil {
		return t
	}
	t.last().Rtn = true
	return t
}

func newFilter(key string, op property.Op, vals []any) (property.Filter, error) {
	args := make([]property.Value, len(vals))
	for i, v := range vals {
		args[i] = property.Of(v)
	}
	return property.NewFilter(key, op, args...)
}

// Compile validates the traversal and freezes it into an executable Plan.
func (t *Travel) Compile() (*Plan, error) {
	if t.err != nil {
		return nil, t.err
	}
	p := &Plan{Steps: append([]Step(nil), t.steps...)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Plan is a validated, immutable traversal: step 0 selects sources, each
// later step follows one edge label with optional edge and vertex filters.
type Plan struct {
	Steps []Step
}

// Step is one hop of a Plan. For step 0, EdgeLabel is empty and exactly one
// of SourceIDs / SourceLabel / neither (full scan) selects the seeds.
type Step struct {
	// EdgeLabel is the edge type this step follows (empty on step 0).
	EdgeLabel string
	// EdgeFilters are AND-composed predicates on edge properties.
	EdgeFilters property.Filters
	// VertexFilters are AND-composed predicates on the vertices reached.
	VertexFilters property.Filters
	// SourceIDs seeds step 0 with explicit vertices.
	SourceIDs []model.VertexID
	// SourceLabel seeds step 0 with every vertex of one label.
	SourceLabel string
	// Rtn marks this step's surviving vertices for return.
	Rtn bool
}

// Validate checks structural invariants of the plan.
func (p *Plan) Validate() error {
	if len(p.Steps) == 0 {
		return errors.New("query: empty plan")
	}
	s0 := p.Steps[0]
	if s0.EdgeLabel != "" || len(s0.EdgeFilters) != 0 {
		return errors.New("query: step 0 cannot follow edges")
	}
	if len(s0.SourceIDs) > 0 && s0.SourceLabel != "" {
		return errors.New("query: step 0 has both id and label sources")
	}
	for i, s := range p.Steps {
		if i > 0 && s.EdgeLabel == "" {
			return fmt.Errorf("query: step %d has no edge label", i)
		}
		if i > 0 && (len(s.SourceIDs) > 0 || s.SourceLabel != "") {
			return fmt.Errorf("query: step %d has sources", i)
		}
		if err := s.EdgeFilters.Validate(); err != nil {
			return fmt.Errorf("query: step %d: %w", i, err)
		}
		if err := s.VertexFilters.Validate(); err != nil {
			return fmt.Errorf("query: step %d: %w", i, err)
		}
	}
	return nil
}

// NumSteps returns the number of steps, counting the source step.
func (p *Plan) NumSteps() int { return len(p.Steps) }

// HasExplicitRtn reports whether any step carries an rtn() mark.
func (p *Plan) HasExplicitRtn() bool {
	for _, s := range p.Steps {
		if s.Rtn {
			return true
		}
	}
	return false
}

// Returned reports whether step i's survivors are part of the result set.
// When no step is explicitly marked, the final step is returned — the
// conventional "return the destination vertices" behaviour.
func (p *Plan) Returned(i int) bool {
	if p.HasExplicitRtn() {
		return p.Steps[i].Rtn
	}
	return i == len(p.Steps)-1
}

// String renders the plan in GTravel-like syntax for logs and CLIs.
func (p *Plan) String() string {
	out := "GTravel"
	for i, s := range p.Steps {
		if i == 0 {
			switch {
			case len(s.SourceIDs) > 0:
				out += fmt.Sprintf(".v(%d ids)", len(s.SourceIDs))
			case s.SourceLabel != "":
				out += fmt.Sprintf(".v(label=%s)", s.SourceLabel)
			default:
				out += ".v()"
			}
		} else {
			out += fmt.Sprintf(".e(%q)", s.EdgeLabel)
		}
		for _, f := range s.EdgeFilters {
			out += ".ea" + f.String()
		}
		for _, f := range s.VertexFilters {
			out += ".va" + f.String()
		}
		if s.Rtn {
			out += ".rtn()"
		}
	}
	return out
}
