package query

import (
	"encoding/binary"
	"fmt"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// Plan wire encoding, used when the client ships a GTravel instance to the
// coordinator and the coordinator broadcasts it to the backend servers.
//
//	[version: 1 byte][step count: uvarint] then per step:
//	[flags: 1 byte (bit0 rtn)][edge label][edge filters][vertex filters]
//	[source label][source id count: uvarint][source ids: uvarint each]

const planVersion = 1

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func consumeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("query: truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// Encode serializes the plan.
func (p *Plan) Encode() []byte {
	b := []byte{planVersion}
	b = binary.AppendUvarint(b, uint64(len(p.Steps)))
	for _, s := range p.Steps {
		var flags byte
		if s.Rtn {
			flags |= 1
		}
		b = append(b, flags)
		b = appendString(b, s.EdgeLabel)
		b = property.AppendFilters(b, s.EdgeFilters)
		b = property.AppendFilters(b, s.VertexFilters)
		b = appendString(b, s.SourceLabel)
		b = binary.AppendUvarint(b, uint64(len(s.SourceIDs)))
		for _, id := range s.SourceIDs {
			b = binary.AppendUvarint(b, uint64(id))
		}
	}
	return b
}

// DecodePlan parses a plan encoded by Encode and validates it.
func DecodePlan(b []byte) (*Plan, error) {
	if len(b) < 2 || b[0] != planVersion {
		return nil, fmt.Errorf("query: bad plan header")
	}
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("query: truncated plan")
	}
	b = b[sz:]
	// A step encodes to at least 6 bytes; reject a count that cannot fit
	// before allocating (plans arrive off the network).
	if n > uint64(len(b))/6 {
		return nil, fmt.Errorf("query: plan declares %d steps in %d bytes", n, len(b))
	}
	p := &Plan{Steps: make([]Step, 0, n)}
	for i := uint64(0); i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("query: truncated step %d", i)
		}
		var s Step
		s.Rtn = b[0]&1 != 0
		b = b[1:]
		var err error
		if s.EdgeLabel, b, err = consumeString(b); err != nil {
			return nil, err
		}
		if s.EdgeFilters, b, err = property.ConsumeFilters(b); err != nil {
			return nil, err
		}
		if s.VertexFilters, b, err = property.ConsumeFilters(b); err != nil {
			return nil, err
		}
		if s.SourceLabel, b, err = consumeString(b); err != nil {
			return nil, err
		}
		cnt, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, fmt.Errorf("query: truncated source ids")
		}
		b = b[sz:]
		if cnt > uint64(len(b)) { // each id takes at least one byte
			return nil, fmt.Errorf("query: plan declares %d source ids in %d bytes", cnt, len(b))
		}
		for j := uint64(0); j < cnt; j++ {
			id, sz := binary.Uvarint(b)
			if sz <= 0 {
				return nil, fmt.Errorf("query: truncated source id")
			}
			b = b[sz:]
			s.SourceIDs = append(s.SourceIDs, model.VertexID(id))
		}
		p.Steps = append(p.Steps, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("query: %d trailing bytes in plan", len(b))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
