package query

import (
	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// LabelKey is the reserved filter key that matches a vertex's type label
// rather than a stored property. The paper's provenance query filters
// va('type', EQ, 'Execution'); with our explicit vertex labels that is
// written Va(query.LabelKey, property.EQ, "Execution").
const LabelKey = "label"

// VertexMatches applies a step's vertex filters to a vertex, resolving the
// reserved LabelKey against the vertex label. Every engine and the
// reference evaluator share this single definition so their semantics
// cannot drift.
// SourceMatches applies a traversal's full step-0 predicate to a candidate
// source vertex: the SourceLabel restriction (when the plan seeds from a
// label) plus the vertex filters. Engines that resolve seed candidates
// through a property index need this — index matches are label-agnostic, so
// the label restriction the scan path gets for free must be re-checked.
func SourceMatches(v model.Vertex, s0 Step) bool {
	if s0.SourceLabel != "" && v.Label != s0.SourceLabel {
		return false
	}
	return VertexMatches(v, s0.VertexFilters)
}

func VertexMatches(v model.Vertex, fs property.Filters) bool {
	for _, f := range fs {
		if f.Key == LabelKey {
			if !f.Match(property.Map{LabelKey: property.String(v.Label)}) {
				return false
			}
			continue
		}
		if !f.Match(v.Props) {
			return false
		}
	}
	return true
}
