package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphtrek/internal/model"
	"graphtrek/internal/property"
)

// randomPlan builds an arbitrary valid plan.
func randomPlan(r *rand.Rand) *Plan {
	labels := []string{"run", "read", "write", "link", "readBy"}
	var t *Travel
	switch r.Intn(3) {
	case 0:
		n := 1 + r.Intn(5)
		ids := make([]model.VertexID, n)
		for i := range ids {
			ids[i] = model.VertexID(r.Uint64() >> 1)
		}
		t = V(ids...)
	case 1:
		t = VLabel(labels[r.Intn(len(labels))])
	default:
		t = V()
	}
	addFilters := func(vertex bool) {
		for r.Intn(3) == 0 {
			key := string(rune('a' + r.Intn(8)))
			var err error
			switch r.Intn(3) {
			case 0:
				if vertex {
					t = t.Va(key, property.EQ, r.Intn(10))
				} else {
					t = t.Ea(key, property.EQ, r.Intn(10))
				}
				_ = err
			case 1:
				if vertex {
					t = t.Va(key, property.IN, 1, 2, 3)
				} else {
					t = t.Ea(key, property.IN, "a", "b")
				}
			default:
				lo := r.Intn(50)
				if vertex {
					t = t.Va(key, property.RANGE, lo, lo+r.Intn(50))
				} else {
					t = t.Ea(key, property.RANGE, lo, lo+r.Intn(50))
				}
			}
		}
	}
	addFilters(true)
	if r.Intn(3) == 0 {
		t = t.Rtn()
	}
	for h := 0; h < 1+r.Intn(6); h++ {
		t = t.E(labels[r.Intn(len(labels))])
		addFilters(false)
		addFilters(true)
		if r.Intn(4) == 0 {
			t = t.Rtn()
		}
	}
	p, err := t.Compile()
	if err != nil {
		panic(err) // construction above is always valid
	}
	return p
}

func TestPlanEncodeDecodeRandomQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPlan(r)
		got, err := DecodePlan(p.Encode())
		return err == nil && reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsRandomCorruptionQuick(t *testing.T) {
	// Flipping or truncating bytes must never panic; it may either error
	// or yield a (different) valid plan, but must stay memory-safe.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		enc := randomPlan(r).Encode()
		switch r.Intn(2) {
		case 0:
			if len(enc) > 1 {
				enc = enc[:r.Intn(len(enc))]
			}
		default:
			if len(enc) > 0 {
				enc[r.Intn(len(enc))] ^= byte(1 + r.Intn(255))
			}
		}
		_, _ = DecodePlan(enc) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReturnedNeverOutOfRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPlan(r)
		marked := 0
		for i := range p.Steps {
			if p.Returned(i) {
				marked++
			}
		}
		// At least one step is always returned (implicit final fallback).
		return marked >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
