package query_test

import (
	"fmt"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
)

// Example reproduces the paper's §III-A1 data-auditing command and
// evaluates it with the single-threaded reference engine.
func Example() {
	g := gstore.NewMemStore()
	g.PutVertex(model.Vertex{ID: 1, Label: "User",
		Props: property.Map{"name": property.String("userA")}})
	g.PutVertex(model.Vertex{ID: 2, Label: "Execution"})
	g.PutVertex(model.Vertex{ID: 3, Label: "File",
		Props: property.Map{"type": property.String("text")}})
	g.PutEdge(model.Edge{Src: 1, Dst: 2, Label: "run",
		Props: property.Map{"start_ts": property.Int(150)}})
	g.PutEdge(model.Edge{Src: 2, Dst: 3, Label: "read"})

	// GTravel.v(userA).e('run').ea('start_ts', RANGE, [t_s, t_e])
	//        .e('read').va('type', EQ, 'text').rtn()
	plan, err := query.V(1).
		E("run").Ea("start_ts", property.RANGE, 100, 200).
		E("read").Va("type", property.EQ, "text").Rtn().
		Compile()
	if err != nil {
		panic(err)
	}
	res, err := query.Reference(g, plan)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan)
	fmt.Println(res.Results)
	// Output:
	// GTravel.v(1 ids).e("run").ea("start_ts", RANGE, [100, 200]).e("read").va("type", EQ, ["text"]).rtn()
	// [v3]
}
