package query

import (
	"sort"

	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
)

// RefResult is the output of the Reference evaluator.
type RefResult struct {
	// Results are the returned vertices, sorted and deduplicated.
	Results []model.VertexID
	// Frontiers[i] is the number of distinct vertices surviving step i.
	Frontiers []int
}

// Reference evaluates a plan against a graph with a plain, single-threaded
// level-by-level sweep. It is the semantic oracle for every distributed
// engine: same filters, same revisit rules (a vertex may reappear at a
// different step but is deduplicated within one step — §II-C pattern 2),
// and the same rtn() rule (a marked vertex is returned only if at least one
// path through it survives to the end of the chain).
func Reference(g gstore.Graph, p *Plan) (RefResult, error) {
	if err := p.Validate(); err != nil {
		return RefResult{}, err
	}
	// Forward pass: frontier per step, plus the step-local edges between
	// consecutive frontiers for the backward liveness pass.
	type hop struct{ from, to model.VertexID }
	frontiers := make([]map[model.VertexID]bool, len(p.Steps))
	hops := make([][]hop, len(p.Steps)) // hops[i] connect frontier i-1 -> i

	seed, err := sources(g, p.Steps[0])
	if err != nil {
		return RefResult{}, err
	}
	frontiers[0] = make(map[model.VertexID]bool)
	for _, id := range seed {
		ok, err := vertexPasses(g, id, p.Steps[0])
		if err != nil {
			return RefResult{}, err
		}
		if ok {
			frontiers[0][id] = true
		}
	}
	for i := 1; i < len(p.Steps); i++ {
		step := p.Steps[i]
		cand := make(map[model.VertexID]bool)
		var stepHops []hop
		for u := range frontiers[i-1] {
			err := g.ScanEdges(u, step.EdgeLabel, func(e model.Edge) bool {
				if !step.EdgeFilters.MatchAll(e.Props) {
					return true
				}
				cand[e.Dst] = true
				stepHops = append(stepHops, hop{from: u, to: e.Dst})
				return true
			})
			if err != nil {
				return RefResult{}, err
			}
		}
		frontiers[i] = make(map[model.VertexID]bool)
		for id := range cand {
			ok, err := vertexPasses(g, id, step)
			if err != nil {
				return RefResult{}, err
			}
			if ok {
				frontiers[i][id] = true
			}
		}
		hops[i] = stepHops
	}

	// Backward pass: alive(i) = vertices of frontier i with a path to the
	// final frontier.
	last := len(p.Steps) - 1
	alive := make([]map[model.VertexID]bool, len(p.Steps))
	alive[last] = frontiers[last]
	for i := last; i > 0; i-- {
		alive[i-1] = make(map[model.VertexID]bool)
		for _, h := range hops[i] {
			if alive[i][h.to] && frontiers[i-1][h.from] {
				alive[i-1][h.from] = true
			}
		}
	}

	out := RefResult{Frontiers: make([]int, len(p.Steps))}
	resultSet := make(map[model.VertexID]bool)
	for i := range p.Steps {
		out.Frontiers[i] = len(frontiers[i])
		if p.Returned(i) {
			for id := range alive[i] {
				resultSet[id] = true
			}
		}
	}
	for id := range resultSet {
		out.Results = append(out.Results, id)
	}
	sort.Slice(out.Results, func(a, b int) bool { return out.Results[a] < out.Results[b] })
	return out, nil
}

// sources returns the seed candidate ids of step 0 (before vertex filters).
func sources(g gstore.Graph, s0 Step) ([]model.VertexID, error) {
	switch {
	case len(s0.SourceIDs) > 0:
		// Deduplicate explicit seeds.
		seen := make(map[model.VertexID]bool, len(s0.SourceIDs))
		var out []model.VertexID
		for _, id := range s0.SourceIDs {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		return out, nil
	case s0.SourceLabel != "":
		var out []model.VertexID
		err := g.ScanVerticesByLabel(s0.SourceLabel, func(id model.VertexID) bool {
			out = append(out, id)
			return true
		})
		return out, err
	default:
		var out []model.VertexID
		err := g.ScanVertices(func(v model.Vertex) bool {
			out = append(out, v.ID)
			return true
		})
		return out, err
	}
}

// vertexPasses fetches a vertex and applies a step's vertex filters.
// A candidate id with no stored vertex (dangling edge) never passes.
func vertexPasses(g gstore.Graph, id model.VertexID, s Step) (bool, error) {
	v, ok, err := g.GetVertex(id)
	if err != nil || !ok {
		return false, err
	}
	return VertexMatches(v, s.VertexFilters), nil
}
