// Package wire defines the messages the GraphTrek traversal engines
// exchange between backend servers, and a compact length-framed binary
// codec for sending them over byte-stream transports. The in-process
// transport passes Message values directly; the TCP transport uses the
// codec. This is the role ZeroMQ messages played in the paper (§VI).
package wire

import (
	"encoding/binary"
	"fmt"

	"graphtrek/internal/model"
)

// Kind discriminates message payloads.
type Kind uint8

const (
	// KindStartTravel is broadcast by the coordinator to every backend
	// server before a traversal: it registers the plan and engine mode.
	KindStartTravel Kind = iota + 1
	// KindDispatch carries a frontier batch to the server owning its
	// vertices, creating one traversal execution there.
	KindDispatch
	// KindReturnSig notifies an rtn()-holding server that descendant paths
	// of the listed ancestor vertices reached the end of the chain (§IV-D).
	KindReturnSig
	// KindResult delivers returned vertices to the coordinator.
	KindResult
	// KindExecEvents reports execution creation/termination to the
	// coordinator's status-tracing ledger (§IV-C).
	KindExecEvents
	// KindStepGo is the synchronous engine's barrier release: the
	// controller permits processing of the given step.
	KindStepGo
	// KindTravelDone tells backend servers a traversal has completed so
	// they may release per-traversal state (plans, caches, rtn tables).
	KindTravelDone
	// KindVisitReq is the client-side traversal mode's unit RPC: process
	// these vertices for one step and reply, rather than forwarding.
	KindVisitReq
	// KindVisitResp answers a KindVisitReq.
	KindVisitResp
	// KindProgressReq asks a coordinator for a traversal's live execution
	// counts per step (§IV-C progress estimation).
	KindProgressReq
	// KindProgressResp answers a KindProgressReq; Created carries one
	// ExecRef per step with ID = live execution count.
	KindProgressResp
	// KindCancel asks a coordinator to abort a traversal: the ledger is
	// failed with a cancellation error and every backend releases its
	// per-traversal state.
	KindCancel
	// KindHeartbeat is the liveness beacon backends exchange every
	// heartbeat interval. Any message from a peer refreshes its liveness;
	// heartbeats guarantee a floor on that signal even on idle clusters.
	KindHeartbeat
	// KindPeerDown announces that the sender's failure detector suspects
	// the backend in Peer of having crashed (missed heartbeats). Receivers
	// adopt the suspicion immediately, so one detection propagates
	// cluster-wide within a message delay instead of a detection period.
	KindPeerDown
	// KindTraceReq asks a backend for its per-step execution-trace
	// aggregate of one traversal (TravelID; 0 means all buffered spans).
	KindTraceReq
	// KindTraceResp answers a KindTraceReq; Blob carries JSON-encoded
	// trace.StepStat rows for the responding server.
	KindTraceResp
	// KindWriteReq asks a partition's primary to apply the mutation batch
	// in Blob durably (replicated to a quorum before the response).
	KindWriteReq
	// KindWriteResp answers a KindWriteReq (ReqID matches; Err on failure).
	KindWriteResp
	// KindReplAppend ships one mutation batch (Blob) from a partition
	// primary to a follower, stamped with the primary's Epoch and the
	// per-partition Seq. Followers reject stale epochs.
	KindReplAppend
	// KindReplAck acknowledges a KindReplAppend. Mode distinguishes ack (0)
	// from nak (1, follower is missing records before Seq and reports its
	// applied sequence) and from a promotion-time sequence query/answer.
	KindReplAck
	// KindSnapshot streams partition state for catch-up and shard handoff:
	// Mode 0 requests a snapshot, Mode 1 carries one mutation-batch chunk,
	// Mode 2 is the final chunk (Seq = WAL position the snapshot covers),
	// Mode 3 acknowledges completion.
	KindSnapshot
	// KindRouteUpdate gossips an epoch-stamped route table (Blob); the
	// receiver merges it per partition, higher epoch wins.
	KindRouteUpdate
	// KindFeedSub subscribes the sender to a partition's change feed from
	// cursor Seq (exclusive): the primary replies with every committed
	// record after Seq and streams new commits as they happen. ReqID ties
	// error replies back to the subscribe call.
	KindFeedSub
	// KindFeedBatch carries committed change-feed records (Blob, a
	// gstore.FeedRecord batch) for partition Part. Err set means the
	// subscription failed (wrong primary, cursor too old) and carries a
	// piggybacked route table in Blob when the sender knows a newer one.
	KindFeedBatch
	// KindEventsReq asks a backend for its cluster event journal
	// (suspicions, promotions, epoch bumps, handoffs — see
	// internal/events). ReqID ties the response back, PR 5 blob-pull
	// style.
	KindEventsReq
	// KindEventsResp answers a KindEventsReq; Blob carries JSON-encoded
	// events.Event entries, oldest first.
	KindEventsResp
	// KindStatusReq asks a backend for its replication/engine status
	// document (per-partition epoch, role, watermarks, lag — see
	// internal/status).
	KindStatusReq
	// KindStatusResp answers a KindStatusReq; Blob carries one
	// JSON-encoded status.Server document.
	KindStatusResp
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindStartTravel:
		return "StartTravel"
	case KindDispatch:
		return "Dispatch"
	case KindReturnSig:
		return "ReturnSig"
	case KindResult:
		return "Result"
	case KindExecEvents:
		return "ExecEvents"
	case KindStepGo:
		return "StepGo"
	case KindTravelDone:
		return "TravelDone"
	case KindVisitReq:
		return "VisitReq"
	case KindVisitResp:
		return "VisitResp"
	case KindProgressReq:
		return "ProgressReq"
	case KindProgressResp:
		return "ProgressResp"
	case KindCancel:
		return "Cancel"
	case KindHeartbeat:
		return "Heartbeat"
	case KindPeerDown:
		return "PeerDown"
	case KindTraceReq:
		return "TraceReq"
	case KindTraceResp:
		return "TraceResp"
	case KindWriteReq:
		return "WriteReq"
	case KindWriteResp:
		return "WriteResp"
	case KindReplAppend:
		return "ReplAppend"
	case KindReplAck:
		return "ReplAck"
	case KindSnapshot:
		return "Snapshot"
	case KindRouteUpdate:
		return "RouteUpdate"
	case KindFeedSub:
		return "FeedSub"
	case KindFeedBatch:
		return "FeedBatch"
	case KindEventsReq:
		return "EventsReq"
	case KindEventsResp:
		return "EventsResp"
	case KindStatusReq:
		return "StatusReq"
	case KindStatusResp:
		return "StatusResp"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Entry is one frontier element: a candidate vertex tagged with its most
// recent rtn()-marked ancestor (vertex plus the step at which it was
// marked) and the server that must receive the end-of-chain signal for that
// ancestor (the "reporting destination" of Fig. 4). Dest < 0 means no rtn
// level is open. In KindReturnSig messages, Vertex and AncStep identify the
// marked vertex being signalled.
type Entry struct {
	Vertex  model.VertexID
	Anc     model.VertexID
	AncStep int32
	Dest    int32
}

// ExecRef identifies one traversal execution in the coordinator ledger.
type ExecRef struct {
	ID     uint64
	Server int32
	Step   int32
}

// Message is the single on-the-wire envelope; which fields are meaningful
// depends on Kind. A flat struct keeps the codec simple and lets the
// in-process transport pass messages by value with no marshaling.
type Message struct {
	Kind     Kind
	TravelID uint64
	Step     int32
	Mode     uint8
	Coord    int32
	// Peer names the backend a KindPeerDown message suspects.
	Peer    int32
	Plan    []byte
	ExecID  uint64
	Entries []Entry
	Created []ExecRef
	Ended   []uint64
	Verts   []model.VertexID
	ReqID   uint64
	// ParentExec is the ledger id of the execution whose outputs produced
	// this message's payload: the causal parent of the execution a
	// KindDispatch / KindReturnSig creates, or of a client-mode
	// KindVisitReq's span. Zero marks a root (client submission or seed
	// scan) — execution ids are minted with a nonzero server tag, so zero
	// is never a real id.
	ParentExec uint64
	// Epoch is the sender's view of the partition's fencing epoch
	// (replication and route messages).
	Epoch uint64
	// Seq is the per-partition replication sequence number of a
	// KindReplAppend / KindReplAck, or the WAL position a snapshot covers.
	Seq uint64
	// Base is the sender's epoch base in a KindReplAppend: the primary's
	// applied sequence at the moment its current epoch began. Sequence
	// numbers are only comparable within one epoch; a follower whose
	// applied sequence exceeds the advertised base holds old-epoch records
	// the new primary never saw and must resync instead of acking.
	Base uint64
	// Part is the partition id a replication message concerns.
	Part int32
	Err  string
	// Blob carries an opaque auxiliary payload; currently JSON-encoded
	// trace.StepStat rows in KindTraceResp messages.
	Blob []byte
}

// AppendV1 serializes m in the legacy v1 row format, appending to b: a
// fixed little-endian scalar header followed by per-entry interleaved
// fields. Kept for the version-rejection tests and as the bench baseline
// the v2 columnar codec (v2.go) is measured against; live transports frame
// with Append/Decode.
func AppendV1(b []byte, m *Message) []byte {
	b = append(b, byte(m.Kind), m.Mode)
	b = binary.LittleEndian.AppendUint64(b, m.TravelID)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Step))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Coord))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Peer))
	b = binary.LittleEndian.AppendUint64(b, m.ExecID)
	b = binary.LittleEndian.AppendUint64(b, m.ReqID)
	b = binary.LittleEndian.AppendUint64(b, m.ParentExec)
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint64(b, m.Seq)
	b = binary.LittleEndian.AppendUint64(b, m.Base)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Part))
	b = binary.AppendUvarint(b, uint64(len(m.Plan)))
	b = append(b, m.Plan...)
	b = binary.AppendUvarint(b, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b = binary.AppendUvarint(b, uint64(e.Vertex))
		b = binary.AppendUvarint(b, uint64(e.Anc))
		b = binary.LittleEndian.AppendUint32(b, uint32(e.AncStep))
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Dest))
	}
	b = binary.AppendUvarint(b, uint64(len(m.Created)))
	for _, c := range m.Created {
		b = binary.AppendUvarint(b, c.ID)
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Server))
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Step))
	}
	b = binary.AppendUvarint(b, uint64(len(m.Ended)))
	for _, id := range m.Ended {
		b = binary.AppendUvarint(b, id)
	}
	b = binary.AppendUvarint(b, uint64(len(m.Verts)))
	for _, v := range m.Verts {
		b = binary.AppendUvarint(b, uint64(v))
	}
	b = binary.AppendUvarint(b, uint64(len(m.Err)))
	b = append(b, m.Err...)
	b = binary.AppendUvarint(b, uint64(len(m.Blob)))
	b = append(b, m.Blob...)
	return b
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, sz := binary.Uvarint(d.b)
	if sz <= 0 {
		d.err = fmt.Errorf("wire: truncated uvarint")
		return 0
	}
	d.b = d.b[sz:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.err = fmt.Errorf("wire: truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = fmt.Errorf("wire: truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("wire: truncated bytes")
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// count validates a declared element count against the bytes actually
// remaining: each element needs at least minSize bytes, so a count that
// cannot fit is corruption. This bounds allocation before any make() —
// the decoder sits on a network trust boundary.
func (d *decoder) count(n uint64, minSize int) int {
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b))/uint64(minSize) {
		d.err = fmt.Errorf("wire: declared %d elements but only %d bytes remain", n, len(d.b))
		return 0
	}
	return int(n)
}

// DecodeV1 parses a message serialized by AppendV1. The entire input must
// be consumed. A v2 frame is rejected up front by its version byte.
func DecodeV1(b []byte) (Message, error) {
	if len(b) < 2 {
		return Message{}, fmt.Errorf("wire: message too short")
	}
	if b[0] == FrameV2 {
		return Message{}, fmt.Errorf("wire: v2 frame (version byte 0x%02x) passed to the v1 decoder; use Decode", FrameV2)
	}
	var m Message
	m.Kind = Kind(b[0])
	m.Mode = b[1]
	d := &decoder{b: b[2:]}
	m.TravelID = d.u64()
	m.Step = int32(d.u32())
	m.Coord = int32(d.u32())
	m.Peer = int32(d.u32())
	m.ExecID = d.u64()
	m.ReqID = d.u64()
	m.ParentExec = d.u64()
	m.Epoch = d.u64()
	m.Seq = d.u64()
	m.Base = d.u64()
	m.Part = int32(d.u32())
	if n := d.uvarint(); n > 0 {
		m.Plan = append([]byte(nil), d.bytes(n)...)
	}
	// An Entry encodes to at least 1+1+4+4 bytes, an ExecRef to 1+4+4,
	// Ended ids and Verts to at least 1 byte each.
	if n := d.count(d.uvarint(), 10); n > 0 && d.err == nil {
		m.Entries = make([]Entry, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			e := Entry{
				Vertex: model.VertexID(d.uvarint()),
				Anc:    model.VertexID(d.uvarint()),
			}
			e.AncStep = int32(d.u32())
			e.Dest = int32(d.u32())
			m.Entries = append(m.Entries, e)
		}
	}
	if n := d.count(d.uvarint(), 9); n > 0 && d.err == nil {
		m.Created = make([]ExecRef, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			c := ExecRef{ID: d.uvarint()}
			c.Server = int32(d.u32())
			c.Step = int32(d.u32())
			m.Created = append(m.Created, c)
		}
	}
	if n := d.count(d.uvarint(), 1); n > 0 && d.err == nil {
		m.Ended = make([]uint64, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			m.Ended = append(m.Ended, d.uvarint())
		}
	}
	if n := d.count(d.uvarint(), 1); n > 0 && d.err == nil {
		m.Verts = make([]model.VertexID, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			m.Verts = append(m.Verts, model.VertexID(d.uvarint()))
		}
	}
	if n := d.uvarint(); d.err == nil {
		m.Err = string(d.bytes(n))
	}
	if n := d.uvarint(); n > 0 && d.err == nil {
		m.Blob = append([]byte(nil), d.bytes(n)...)
	}
	if d.err != nil {
		return Message{}, d.err
	}
	if len(d.b) != 0 {
		return Message{}, fmt.Errorf("wire: %d trailing bytes", len(d.b))
	}
	return m, nil
}
