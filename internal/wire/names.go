package wire

import (
	"encoding/binary"
	"fmt"

	"graphtrek/internal/model"
)

// Name-list and id-list payloads for the interning write path: a client's
// KindWriteReq with Mode=WriteModeIntern carries EncodeNames in Blob, and
// the primary's KindWriteResp returns EncodeIDs with the allocated ids in
// the same order. These ride inside the framed Blob field, so they need no
// version byte of their own — the enclosing frame is already versioned.

// Write-request modes (wire.Message.Mode on KindWriteReq).
const (
	// WriteModeMutate is the default: Blob is a gstore mutation batch.
	WriteModeMutate = 0
	// WriteModeIntern asks the partition primary to allocate interned ids
	// for the names in Blob, replicating the allocations before acking.
	WriteModeIntern = 1
	// WriteModeResolve is a read-only name→id lookup on the primary;
	// unknown names resolve to id 0 (never a valid interned id).
	WriteModeResolve = 2
	// WriteModeNames is the read-only id→name direction (Blob is an id
	// list, the response an aligned name list; unknown ids yield ""). This
	// is the client-boundary materialization RPC.
	WriteModeNames = 3
)

// EncodeNames appends a length-prefixed name list.
func EncodeNames(names []string) []byte {
	n := binary.MaxVarintLen64
	for _, s := range names {
		n += binary.MaxVarintLen64 + len(s)
	}
	b := make([]byte, 0, n)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, s := range names {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

// DecodeNames parses an EncodeNames payload.
func DecodeNames(b []byte) ([]string, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 || cnt > uint64(len(b)) {
		return nil, fmt.Errorf("wire: malformed name list header")
	}
	b = b[n:]
	names := make([]string, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		l, n := binary.Uvarint(b)
		if n <= 0 || l > uint64(len(b)-n) {
			return nil, fmt.Errorf("wire: malformed name list entry %d", i)
		}
		names = append(names, string(b[n:n+int(l)]))
		b = b[n+int(l):]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after name list", len(b))
	}
	return names, nil
}

// EncodeIDs appends a length-prefixed vertex-id list.
func EncodeIDs(ids []model.VertexID) []byte {
	b := make([]byte, 0, (len(ids)+1)*binary.MaxVarintLen64)
	b = binary.AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(id))
	}
	return b
}

// DecodeIDs parses an EncodeIDs payload.
func DecodeIDs(b []byte) ([]model.VertexID, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 || cnt > uint64(len(b)) {
		return nil, fmt.Errorf("wire: malformed id list header")
	}
	b = b[n:]
	ids := make([]model.VertexID, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("wire: malformed id list entry %d", i)
		}
		ids = append(ids, model.VertexID(v))
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after id list", len(b))
	}
	return ids, nil
}
