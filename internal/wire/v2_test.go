package wire

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"graphtrek/internal/model"
)

// TestV2DeltaEdgeCases pins the varint-delta id columns on the shapes that
// break naive delta coders: empty batches, single ids, max-uint64 values,
// and full-range jumps in both directions (which wrap the unsigned
// subtraction).
func TestV2DeltaEdgeCases(t *testing.T) {
	max := ^uint64(0)
	cases := [][]uint64{
		nil,                      // empty batch
		{0},                      // single zero id
		{max},                    // single max id
		{max, max, max},          // zero deltas at the top of the range
		{0, max, 0, max},         // alternating extremes (wrapping deltas)
		{max, 0, 1, max - 1},     // descending and ascending jumps
		{5, 4, 3, 2, 1, 0},       // strictly descending (negative deltas)
		{1 << 63, (1 << 63) - 1}, // sign-boundary neighbors
	}
	for _, ids := range cases {
		m := Message{Kind: KindResult, TravelID: 9}
		for _, v := range ids {
			m.Verts = append(m.Verts, model.VertexID(v))
			m.Ended = append(m.Ended, v)
			m.Entries = append(m.Entries, Entry{Vertex: model.VertexID(v), Anc: model.VertexID(max - v), AncStep: -1, Dest: -1})
		}
		got, err := Decode(Append(nil, &m))
		if err != nil {
			t.Fatalf("ids %v: %v", ids, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("ids %v:\n got %+v\nwant %+v", ids, got, m)
		}
	}
}

// TestV2RejectsV1Frame pins the versioned rejection in both directions: a
// legacy v1 frame fed to the v2 decoder (and vice versa) must fail cleanly
// with an error that names the version mismatch, never misparse.
func TestV2RejectsV1Frame(t *testing.T) {
	m := Message{Kind: KindDispatch, TravelID: 3, Entries: []Entry{{Vertex: 1, Anc: 2, AncStep: -1, Dest: -1}}}
	v1 := AppendV1(nil, &m)
	if _, err := Decode(v1); err == nil {
		t.Fatal("v2 decoder accepted a v1 frame")
	} else if !strings.Contains(err.Error(), "v1") || !strings.Contains(err.Error(), "version") {
		t.Errorf("v1-frame rejection not actionable: %v", err)
	}
	v2 := Append(nil, &m)
	if _, err := DecodeV1(v2); err == nil {
		t.Fatal("v1 decoder accepted a v2 frame")
	} else if !strings.Contains(err.Error(), "v2") {
		t.Errorf("v2-frame rejection not actionable: %v", err)
	}
}

// TestV1RoundTripQuick keeps the retained v1 codec honest — it is the bench
// baseline the v2 bytes/vertex win is measured against.
func TestV1RoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		got, err := DecodeV1(AppendV1(nil, &m))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestV2RoundTripFullRangeQuick round-trips messages whose id columns span
// the whole uint64 range (randomMessage masks the top bit for legacy
// reasons; interned ids set it).
func TestV2RoundTripFullRangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Message{Kind: KindDispatch, TravelID: r.Uint64(), Step: int32(r.Intn(8))}
		for i := 0; i < 1+r.Intn(64); i++ {
			m.Entries = append(m.Entries, Entry{
				Vertex:  model.VertexID(r.Uint64()),
				Anc:     model.VertexID(r.Uint64()),
				AncStep: int32(r.Intn(16) - 1),
				Dest:    int32(r.Intn(64) - 1),
			})
			m.Verts = append(m.Verts, model.VertexID(r.Uint64()))
		}
		got, err := Decode(Append(nil, &m))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestV2SmallerThanV1OnDenseBatches is the format's reason to exist: a
// frontier batch of dense, ascending interned ids must take fewer bytes
// columnar-delta-coded than in the v1 row format.
func TestV2SmallerThanV1OnDenseBatches(t *testing.T) {
	m := Message{Kind: KindDispatch, TravelID: 1, Step: 2, Coord: 0, ExecID: 7, Epoch: 3}
	for i := 0; i < 1024; i++ {
		m.Entries = append(m.Entries, Entry{
			Vertex:  model.InternedID(3, uint64(4*i)),
			Anc:     model.InternedID(3, 0),
			AncStep: -1,
			Dest:    -1,
		})
	}
	v1 := len(AppendV1(nil, &m))
	v2 := len(Append(nil, &m))
	if v2*2 > v1 {
		t.Errorf("v2 frame %dB vs v1 %dB: want at least 2x smaller", v2, v1)
	}
}

// FuzzDecodeV2 is the native fuzz target over the v2 trust boundary; the
// seeds cover a valid frame, a truncation, a v1 frame and raw soup.
func FuzzDecodeV2(f *testing.F) {
	m := Message{Kind: KindDispatch, TravelID: 5,
		Entries: []Entry{{Vertex: 1, Anc: ^model.VertexID(0), AncStep: -1, Dest: 2}},
		Verts:   []model.VertexID{0, ^model.VertexID(0)}}
	valid := Append(nil, &m)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(AppendV1(nil, &m))
	f.Add([]byte{FrameV2, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		if dec, err := Decode(b); err == nil {
			// A successfully decoded message must re-encode and re-decode to
			// itself: Decode ∘ Append is idempotent on the codec's image.
			again, err := Decode(Append(nil, &dec))
			if err != nil || !reflect.DeepEqual(again, dec) {
				t.Fatalf("re-decode mismatch: %v", err)
			}
		}
	})
}

// TestV2LengthBomb mirrors TestUvarintLengthBombs for the v2 header: a tiny
// frame declaring a huge entry count must be rejected before allocation.
func TestV2LengthBomb(t *testing.T) {
	b := []byte{FrameV2, byte(KindDispatch), 0}
	for i := 0; i < 11; i++ { // header varints
		b = append(b, 0)
	}
	b = append(b, 0)                                                    // plan len
	b = append(b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x10) // entries count 2^60
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "declared") {
		t.Errorf("length bomb: %v", err)
	}
}
