package wire

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"graphtrek/internal/model"
)

func TestRoundTripAllFields(t *testing.T) {
	m := Message{
		Kind:       KindDispatch,
		TravelID:   77,
		Step:       -3,
		Mode:       2,
		Coord:      -1,
		Peer:       5,
		Plan:       []byte{1, 2, 3},
		ExecID:     999,
		Entries:    []Entry{{Vertex: 5, Anc: 6, AncStep: 2, Dest: -1}, {Vertex: 7, Anc: 0, AncStep: -1, Dest: 3}},
		Created:    []ExecRef{{ID: 1, Server: 2, Step: 3}},
		Ended:      []uint64{4, 5},
		Verts:      []model.VertexID{10, 20},
		ReqID:      42,
		ParentExec: 888,
		Epoch:      13,
		Seq:        314,
		Base:       271,
		Part:       -2,
		Err:        "boom",
		Blob:       []byte("{\"x\":1}"),
	}
	got, err := Decode(Append(nil, &m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestRoundTripEmptyMessage(t *testing.T) {
	m := Message{Kind: KindTravelDone, TravelID: 1}
	got, err := Decode(Append(nil, &m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v want %+v", got, m)
	}
}

func randomMessage(r *rand.Rand) Message {
	m := Message{
		Kind:     Kind(1 + r.Intn(9)),
		TravelID: r.Uint64(),
		Step:     int32(r.Int31() - r.Int31()),
		Mode:     uint8(r.Intn(4)),
		Coord:    int32(r.Intn(64) - 1),
		Peer:     int32(r.Intn(64) - 1),
		ExecID:   r.Uint64(),
		ReqID:    r.Uint64(),
	}
	if r.Intn(2) == 0 {
		m.ParentExec = r.Uint64()
	}
	if r.Intn(2) == 0 {
		m.Epoch = r.Uint64()
		m.Seq = r.Uint64()
		m.Base = r.Uint64()
		m.Part = int32(r.Intn(64) - 1)
	}
	if r.Intn(2) == 0 {
		m.Plan = make([]byte, r.Intn(64))
		r.Read(m.Plan)
		if len(m.Plan) == 0 {
			m.Plan = nil
		}
	}
	for i := 0; i < r.Intn(5); i++ {
		m.Entries = append(m.Entries, Entry{
			Vertex:  model.VertexID(r.Uint64() >> 1),
			Anc:     model.VertexID(r.Uint64() >> 1),
			AncStep: int32(r.Intn(16) - 1),
			Dest:    int32(r.Intn(64) - 1),
		})
	}
	for i := 0; i < r.Intn(4); i++ {
		m.Created = append(m.Created, ExecRef{ID: r.Uint64() >> 1, Server: int32(r.Intn(64)), Step: int32(r.Intn(16))})
	}
	for i := 0; i < r.Intn(4); i++ {
		m.Ended = append(m.Ended, r.Uint64()>>1)
	}
	for i := 0; i < r.Intn(6); i++ {
		m.Verts = append(m.Verts, model.VertexID(r.Uint64()>>1))
	}
	if r.Intn(3) == 0 {
		m.Err = "some error text"
	}
	return m
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		got, err := Decode(Append(nil, &m))
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty input should error")
	}
	m := Message{Kind: KindResult, Verts: []model.VertexID{1, 2, 3}}
	enc := Append(nil, &m)
	for _, cut := range []int{3, 10, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncation at %d should error", cut)
		}
	}
	if _, err := Decode(append(enc, 0xff)); err == nil {
		t.Error("trailing bytes should error")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindStartTravel: "StartTravel",
		KindDispatch:    "Dispatch",
		KindReturnSig:   "ReturnSig",
		KindResult:      "Result",
		KindExecEvents:  "ExecEvents",
		KindStepGo:      "StepGo",
		KindTravelDone:  "TravelDone",
		KindVisitReq:    "VisitReq",
		KindVisitResp:   "VisitResp",
		KindHeartbeat:   "Heartbeat",
		KindPeerDown:    "PeerDown",
		KindWriteReq:    "WriteReq",
		KindWriteResp:   "WriteResp",
		KindReplAppend:  "ReplAppend",
		KindReplAck:     "ReplAck",
		KindSnapshot:    "Snapshot",
		KindRouteUpdate: "RouteUpdate",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind %d String = %q want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include its number")
	}
}
