package wire

import (
	"encoding/binary"
	"fmt"

	"graphtrek/internal/model"
)

// The v2 frame is the columnar batch format the transports actually ship.
// Where v1 interleaves each entry's fields row-at-a-time behind a 58-byte
// fixed scalar header, v2 writes one varint-packed header (kind, mode,
// traversal/step/epoch identity) followed by column-major sections: all
// vertex ids together, all ancestor ids together, and so on. Id columns are
// delta encoded — consecutive values are subtracted (wrapping) and the
// signed difference is zigzag-varint coded — so the dense, mostly-ascending
// id runs a frontier batch carries collapse to one or two bytes per vertex.
//
// Layout:
//
//	FrameV2 (0xF2)                 version byte; never a valid v1 Kind
//	kind:1 mode:1
//	uvarint  TravelID ExecID ReqID ParentExec Epoch Seq Base
//	zigzag   Step Coord Peer Part
//	Plan     uvarint len + bytes
//	Entries  uvarint count; Vertex column (delta), Anc column (delta),
//	         AncStep column (zigzag), Dest column (zigzag)
//	Created  uvarint count; ID column (delta), Server column (zigzag),
//	         Step column (zigzag)
//	Ended    uvarint count; delta column
//	Verts    uvarint count; delta column
//	Err      uvarint len + bytes
//	Blob     uvarint len + bytes
//
// The decoder never aliases its input: Plan, Blob and Err are copied, so a
// transport may reuse its read buffer as soon as Decode returns.

// FrameV2 is the v2 version byte. v1 frames start with their Kind byte,
// which the Kind enum keeps far below 0xF2, so the first byte of any frame
// identifies its codec version unambiguously.
const FrameV2 = 0xF2

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendDelta writes one id column: each value's wrapping difference from
// its predecessor (first value from zero), zigzag-varint coded. Wrapping
// arithmetic makes every uint64 value representable — including ^uint64(0)
// next to 0 — without widening.
func appendDelta(b []byte, prev, v uint64) ([]byte, uint64) {
	return binary.AppendUvarint(b, zigzag(int64(v-prev))), v
}

// Append serializes m as a v2 columnar frame, appending to b.
func Append(b []byte, m *Message) []byte {
	b = append(b, FrameV2, byte(m.Kind), m.Mode)
	b = binary.AppendUvarint(b, m.TravelID)
	b = binary.AppendUvarint(b, m.ExecID)
	b = binary.AppendUvarint(b, m.ReqID)
	b = binary.AppendUvarint(b, m.ParentExec)
	b = binary.AppendUvarint(b, m.Epoch)
	b = binary.AppendUvarint(b, m.Seq)
	b = binary.AppendUvarint(b, m.Base)
	b = binary.AppendUvarint(b, zigzag(int64(m.Step)))
	b = binary.AppendUvarint(b, zigzag(int64(m.Coord)))
	b = binary.AppendUvarint(b, zigzag(int64(m.Peer)))
	b = binary.AppendUvarint(b, zigzag(int64(m.Part)))
	b = binary.AppendUvarint(b, uint64(len(m.Plan)))
	b = append(b, m.Plan...)

	b = binary.AppendUvarint(b, uint64(len(m.Entries)))
	prev := uint64(0)
	for _, e := range m.Entries {
		b, prev = appendDelta(b, prev, uint64(e.Vertex))
	}
	prev = 0
	for _, e := range m.Entries {
		b, prev = appendDelta(b, prev, uint64(e.Anc))
	}
	for _, e := range m.Entries {
		b = binary.AppendUvarint(b, zigzag(int64(e.AncStep)))
	}
	for _, e := range m.Entries {
		b = binary.AppendUvarint(b, zigzag(int64(e.Dest)))
	}

	b = binary.AppendUvarint(b, uint64(len(m.Created)))
	prev = 0
	for _, c := range m.Created {
		b, prev = appendDelta(b, prev, c.ID)
	}
	for _, c := range m.Created {
		b = binary.AppendUvarint(b, zigzag(int64(c.Server)))
	}
	for _, c := range m.Created {
		b = binary.AppendUvarint(b, zigzag(int64(c.Step)))
	}

	b = binary.AppendUvarint(b, uint64(len(m.Ended)))
	prev = 0
	for _, id := range m.Ended {
		b, prev = appendDelta(b, prev, id)
	}

	b = binary.AppendUvarint(b, uint64(len(m.Verts)))
	prev = 0
	for _, v := range m.Verts {
		b, prev = appendDelta(b, prev, uint64(v))
	}

	b = binary.AppendUvarint(b, uint64(len(m.Err)))
	b = append(b, m.Err...)
	b = binary.AppendUvarint(b, uint64(len(m.Blob)))
	b = append(b, m.Blob...)
	return b
}

// deltaColumn reads n delta-coded values into out (pre-sized by the caller).
func (d *decoder) deltaColumn(out []uint64) {
	prev := uint64(0)
	for i := range out {
		prev += uint64(unzigzag(d.uvarint()))
		out[i] = prev
	}
}

// Decode parses a v2 columnar frame. A frame without the v2 version byte —
// a v1 frame, or garbage — is rejected with an error naming the versions so
// a mixed-version cluster fails loudly instead of misparsing. The entire
// input must be consumed.
func Decode(b []byte) (Message, error) {
	if len(b) < 3 {
		return Message{}, fmt.Errorf("wire: message too short")
	}
	if b[0] != FrameV2 {
		return Message{}, fmt.Errorf(
			"wire: frame version byte 0x%02x is not v2 (0x%02x); a v1 (unversioned) peer must be upgraded before it can talk to this node", b[0], FrameV2)
	}
	var m Message
	m.Kind = Kind(b[1])
	m.Mode = b[2]
	d := &decoder{b: b[3:]}
	m.TravelID = d.uvarint()
	m.ExecID = d.uvarint()
	m.ReqID = d.uvarint()
	m.ParentExec = d.uvarint()
	m.Epoch = d.uvarint()
	m.Seq = d.uvarint()
	m.Base = d.uvarint()
	m.Step = int32(unzigzag(d.uvarint()))
	m.Coord = int32(unzigzag(d.uvarint()))
	m.Peer = int32(unzigzag(d.uvarint()))
	m.Part = int32(unzigzag(d.uvarint()))
	if n := d.uvarint(); n > 0 && d.err == nil {
		m.Plan = append([]byte(nil), d.bytes(n)...)
	}
	// Column element minimums bound allocation before make(): an entry
	// spans four columns of >= 1 byte each, a created ref three, ended and
	// vert ids one.
	if n := d.count(d.uvarint(), 4); n > 0 && d.err == nil {
		m.Entries = make([]Entry, n)
		col := make([]uint64, n)
		d.deltaColumn(col)
		for i, v := range col {
			m.Entries[i].Vertex = model.VertexID(v)
		}
		d.deltaColumn(col)
		for i, v := range col {
			m.Entries[i].Anc = model.VertexID(v)
		}
		for i := range m.Entries {
			m.Entries[i].AncStep = int32(unzigzag(d.uvarint()))
		}
		for i := range m.Entries {
			m.Entries[i].Dest = int32(unzigzag(d.uvarint()))
		}
	}
	if n := d.count(d.uvarint(), 3); n > 0 && d.err == nil {
		m.Created = make([]ExecRef, n)
		col := make([]uint64, n)
		d.deltaColumn(col)
		for i, v := range col {
			m.Created[i].ID = v
		}
		for i := range m.Created {
			m.Created[i].Server = int32(unzigzag(d.uvarint()))
		}
		for i := range m.Created {
			m.Created[i].Step = int32(unzigzag(d.uvarint()))
		}
	}
	if n := d.count(d.uvarint(), 1); n > 0 && d.err == nil {
		m.Ended = make([]uint64, n)
		d.deltaColumn(m.Ended)
	}
	if n := d.count(d.uvarint(), 1); n > 0 && d.err == nil {
		col := make([]uint64, n)
		d.deltaColumn(col)
		m.Verts = make([]model.VertexID, n)
		for i, v := range col {
			m.Verts[i] = model.VertexID(v)
		}
	}
	if n := d.uvarint(); d.err == nil {
		m.Err = string(d.bytes(n))
	}
	if n := d.uvarint(); n > 0 && d.err == nil {
		m.Blob = append([]byte(nil), d.bytes(n)...)
	}
	if d.err != nil {
		return Message{}, d.err
	}
	if len(d.b) != 0 {
		return Message{}, fmt.Errorf("wire: %d trailing bytes", len(d.b))
	}
	return m, nil
}
