package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeRandomBytesNeverPanics feeds arbitrary byte soup to the
// decoder: it may error, but must never panic or over-read — messages
// arrive off the network, so the decoder is a trust boundary.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeMutatedMessagesNeverPanic mutates valid encodings — closer to
// real corruption than pure noise, and more likely to pass early length
// checks and reach deep decode paths.
func TestDecodeMutatedMessagesNeverPanic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMessage(r)
		enc := Append(nil, &m)
		for i := 0; i < 8; i++ {
			mut := append([]byte(nil), enc...)
			switch r.Intn(3) {
			case 0:
				if len(mut) > 0 {
					mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
				}
			case 1:
				mut = mut[:r.Intn(len(mut)+1)]
			default:
				extra := make([]byte, r.Intn(16))
				r.Read(extra)
				mut = append(mut, extra...)
			}
			_, _ = Decode(mut)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestUvarintLengthBombs checks that huge declared lengths inside a tiny
// message are rejected rather than causing giant allocations.
func TestUvarintLengthBombs(t *testing.T) {
	// Header (2) + fixed fields (36) + plan length claiming 2^60 bytes.
	msg := make([]byte, 38)
	msg[0] = byte(KindDispatch)
	bomb := append(msg, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x10)
	if _, err := Decode(bomb); err == nil {
		t.Error("length bomb should fail to decode")
	}
}
