package kv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log is a sequence of records:
//
//	[crc32 of payload: 4 bytes][payload length: 4 bytes][payload]
//
// where the payload encodes one entry:
//
//	[op: 1 byte (0 put, 1 delete)][klen uvarint][key][vlen uvarint][value]
//
// Replay stops at the first corrupt or truncated record and truncates the
// file there, which is the correct recovery behaviour for a crash
// mid-append: everything before the tear was acknowledged, everything
// after never was — and because the log is opened O_APPEND, garbage left
// in place would permanently orphan every record appended after it.

const (
	walOpPut    = 0
	walOpDelete = 1
)

type wal struct {
	f  *os.File
	w  *bufio.Writer
	n  int64 // bytes appended since open
	sy bool  // sync every append
}

func openWAL(path string, sync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kv: open wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), sy: sync}, nil
}

func encodeWALPayload(e entry) []byte {
	p := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(e.key)+len(e.value))
	if e.tombstone {
		p = append(p, walOpDelete)
	} else {
		p = append(p, walOpPut)
	}
	p = binary.AppendUvarint(p, uint64(len(e.key)))
	p = append(p, e.key...)
	p = binary.AppendUvarint(p, uint64(len(e.value)))
	p = append(p, e.value...)
	return p
}

func decodeWALPayload(p []byte) (entry, error) {
	if len(p) < 1 {
		return entry{}, fmt.Errorf("kv: empty wal payload")
	}
	e := entry{tombstone: p[0] == walOpDelete}
	p = p[1:]
	kn, sz := binary.Uvarint(p)
	if sz <= 0 || uint64(len(p)-sz) < kn {
		return entry{}, fmt.Errorf("kv: truncated wal key")
	}
	e.key = append([]byte(nil), p[sz:sz+int(kn)]...)
	p = p[sz+int(kn):]
	vn, sz := binary.Uvarint(p)
	if sz <= 0 || uint64(len(p)-sz) < vn {
		return entry{}, fmt.Errorf("kv: truncated wal value")
	}
	e.value = append([]byte(nil), p[sz:sz+int(vn)]...)
	return e, nil
}

// append writes one entry record and optionally syncs.
func (w *wal) append(e entry) error {
	payload := encodeWALPayload(e)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	w.n += int64(len(hdr) + len(payload))
	if w.sy {
		if err := w.w.Flush(); err != nil {
			return err
		}
		return w.f.Sync()
	}
	return nil
}

func (w *wal) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReplayStats reports what WAL replay found and did.
type ReplayStats struct {
	// Records is the count of intact records replayed.
	Records int64
	// GoodBytes is the offset of the first byte past the last intact
	// record — the length the file was truncated to if Truncated is set.
	GoodBytes int64
	// TornBytes is the length of the corrupt or torn tail that followed.
	TornBytes int64
	// Truncated reports that the torn tail was cut off. Replay must
	// truncate, not just stop: the log is opened O_APPEND, so leaving
	// garbage in place would strand every later record behind it — a
	// record that can never replay is data silently lost on the *next*
	// crash, long after this recovery.
	Truncated bool
	// Reason describes why replay stopped before EOF, for the warning log.
	Reason string
}

// replayWAL feeds every intact record in the log at path to fn, in append
// order, and truncates any corrupt or torn tail so subsequent appends go
// after the last intact record. A missing file is not an error (fresh
// database). A tear is the expected shape of a crash mid-append —
// everything before it was acknowledged, everything after never was — so
// it is recovered from, not returned as an error.
func replayWAL(path string, fn func(entry)) (ReplayStats, error) {
	var st ReplayStats
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("kv: open wal for replay: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil {
		_, err = f.Seek(0, io.SeekStart)
	}
	if err != nil {
		f.Close()
		return st, fmt.Errorf("kv: seek wal: %w", err)
	}
	r := bufio.NewReaderSize(f, 256<<10)
	var hdr [8]byte
	for st.Reason == "" {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				break // clean end
			}
			st.Reason = "torn record header"
			break
		}
		want := binary.LittleEndian.Uint32(hdr[0:4])
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 64<<20 {
			st.Reason = "absurd record length (corrupt header)"
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			st.Reason = "torn record payload"
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			st.Reason = "record checksum mismatch"
			break
		}
		e, err := decodeWALPayload(payload)
		if err != nil {
			st.Reason = "undecodable record payload"
			break
		}
		fn(e)
		st.Records++
		st.GoodBytes += int64(8 + n)
	}
	f.Close()
	if size > st.GoodBytes {
		st.TornBytes = size - st.GoodBytes
		if err := os.Truncate(path, st.GoodBytes); err != nil {
			return st, fmt.Errorf("kv: truncate torn wal tail: %w", err)
		}
		st.Truncated = true
	}
	return st, nil
}
