package kv

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestBloomNoFalseNegativesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		bf := newBloomFilter(n)
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%d-%d", seed, r.Int63()))
			bf.add(keys[i])
		}
		for _, k := range keys {
			if !bf.mayContain(k) {
				return false // a false negative is a correctness bug
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 10000
	bf := newBloomFilter(n)
	for i := 0; i < n; i++ {
		bf.add([]byte(fmt.Sprintf("present-%06d", i)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if bf.mayContain([]byte(fmt.Sprintf("absent-%06d", i))) {
			fp++
		}
	}
	// 10 bits/key, 6 probes → theoretical ~0.8%; allow up to 3%.
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Errorf("false positive rate %.3f too high", rate)
	}
}

func TestBloomEncodeDecodeRoundTrip(t *testing.T) {
	bf := newBloomFilter(100)
	for i := 0; i < 100; i++ {
		bf.add([]byte(fmt.Sprintf("k%d", i)))
	}
	dec := decodeBloomFilter(bf.encode())
	for i := 0; i < 100; i++ {
		if !dec.mayContain([]byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("decoded filter lost key k%d", i)
		}
	}
	if dec.k != bf.k || len(dec.bits) != len(bf.bits) {
		t.Errorf("decoded shape mismatch: k=%d bits=%d", dec.k, len(dec.bits))
	}
}

func TestBloomDegenerateInputs(t *testing.T) {
	// Zero-size filter passes everything (no false negatives even when
	// misconfigured).
	if !(&bloomFilter{}).mayContain([]byte("x")) {
		t.Error("empty filter must pass keys through")
	}
	if !decodeBloomFilter(nil).mayContain([]byte("x")) {
		t.Error("decoded nil filter must pass keys through")
	}
	bf := newBloomFilter(0) // clamped
	bf.add([]byte("a"))
	if !bf.mayContain([]byte("a")) {
		t.Error("clamped filter lost its key")
	}
}

func TestSSTableBloomSkipsAbsentKeys(t *testing.T) {
	dir := t.TempDir()
	var ents []entry
	for i := 0; i < 1000; i++ {
		ents = append(ents, entry{
			key:   []byte(fmt.Sprintf("key-%06d", i*2)), // even keys only
			value: []byte("v"),
		})
	}
	tbl, err := buildSSTable(filepath.Join(dir, "t.sst"), 1, ents, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.close()
	// Every present key must be found.
	for i := 0; i < 1000; i += 37 {
		if _, ok, err := tbl.get([]byte(fmt.Sprintf("key-%06d", i*2))); err != nil || !ok {
			t.Fatalf("present key %d not found (err %v)", i*2, err)
		}
	}
	// Absent (odd, in-range) keys must not be found — and mostly should
	// be rejected by the filter without touching the data section.
	for i := 0; i < 1000; i += 37 {
		if _, ok, _ := tbl.get([]byte(fmt.Sprintf("key-%06d", i*2+1))); ok {
			t.Fatalf("absent key %d reported found", i*2+1)
		}
	}
	if tbl.filter == nil {
		t.Error("table should carry a filter")
	}
}

func BenchmarkGetAbsentKey(b *testing.B) {
	// The Bloom filter's payoff: absent-key lookups against a flushed
	// table.
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 10000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%09d", i*2)), []byte("v"))
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get([]byte(fmt.Sprintf("key-%09d", (i%10000)*2+1)))
	}
}
