package kv

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// SSTable file format:
//
//	data section:   repeated records
//	                  [op: 1 byte][klen uvarint][key][vlen uvarint][value]
//	index section:  repeated samples (every IndexInterval-th record)
//	                  [klen uvarint][key][offset uvarint]
//	filter section: Bloom filter over all keys ([k: 4][bits])
//	footer (33 B):  [data len: 8][index count: 8][filter len: 8]
//	                [data crc: 4][magic: 5]
//
// The sparse index and Bloom filter are loaded into memory at open; a point
// lookup consults the filter, then binary searches the index and scans at
// most IndexInterval records forward. Iterators seek the same way and then
// read sequentially — the access pattern typed edge scans produce.

var sstMagic = [5]byte{'g', 't', 's', 's', '2'}

const footerSize = 8 + 8 + 8 + 4 + 5

// sstable is an open, immutable sorted table.
type sstable struct {
	path     string
	f        *os.File
	fileNum  uint64 // larger = newer
	dataLen  int64
	index    []indexEntry
	filter   *bloomFilter
	minKey   []byte
	maxKey   []byte
	numBytes int64
}

type indexEntry struct {
	key    []byte
	offset int64
}

// buildSSTable writes entries (which must be sorted by key, no duplicates)
// into a new table file at path. Tombstones are retained: a newer table's
// tombstone must shadow older tables until a full compaction drops it.
func buildSSTable(path string, fileNum uint64, ents []entry, indexInterval int) (*sstable, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kv: create sstable: %w", err)
	}
	crc := crc32.NewIEEE()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 256<<10)
	filter := newBloomFilter(len(ents))
	var (
		off   int64
		index []indexEntry
		buf   []byte
	)
	for i, e := range ents {
		filter.add(e.key)
		buf = buf[:0]
		if e.tombstone {
			buf = append(buf, walOpDelete)
		} else {
			buf = append(buf, walOpPut)
		}
		buf = binary.AppendUvarint(buf, uint64(len(e.key)))
		buf = append(buf, e.key...)
		buf = binary.AppendUvarint(buf, uint64(len(e.value)))
		buf = append(buf, e.value...)
		if i%indexInterval == 0 {
			index = append(index, indexEntry{key: append([]byte(nil), e.key...), offset: off})
		}
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return nil, err
		}
		off += int64(len(buf))
	}
	dataLen := off
	dataCRC := uint32(0)
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	dataCRC = crc.Sum32()
	// index section
	iw := bufio.NewWriter(f)
	for _, ie := range index {
		var b []byte
		b = binary.AppendUvarint(b, uint64(len(ie.key)))
		b = append(b, ie.key...)
		b = binary.AppendUvarint(b, uint64(ie.offset))
		if _, err := iw.Write(b); err != nil {
			f.Close()
			return nil, err
		}
	}
	filterBytes := filter.encode()
	if _, err := iw.Write(filterBytes); err != nil {
		f.Close()
		return nil, err
	}
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(dataLen))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(len(index)))
	binary.LittleEndian.PutUint64(footer[16:24], uint64(len(filterBytes)))
	binary.LittleEndian.PutUint32(footer[24:28], dataCRC)
	copy(footer[28:], sstMagic[:])
	if _, err := iw.Write(footer[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := iw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return openSSTable(path, fileNum)
}

// openSSTable opens an existing table and loads its sparse index.
func openSSTable(path string, fileNum uint64) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kv: open sstable: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < footerSize {
		f.Close()
		return nil, fmt.Errorf("kv: sstable %s too small", path)
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], st.Size()-footerSize); err != nil {
		f.Close()
		return nil, err
	}
	if [5]byte(footer[28:33]) != sstMagic {
		f.Close()
		return nil, fmt.Errorf("kv: sstable %s bad magic", path)
	}
	dataLen := int64(binary.LittleEndian.Uint64(footer[0:8]))
	count := binary.LittleEndian.Uint64(footer[8:16])
	filterLen := int64(binary.LittleEndian.Uint64(footer[16:24]))
	indexLen := st.Size() - footerSize - dataLen - filterLen
	if dataLen < 0 || indexLen < 0 || filterLen < 0 {
		f.Close()
		return nil, fmt.Errorf("kv: sstable %s corrupt footer", path)
	}
	raw := make([]byte, indexLen)
	if _, err := f.ReadAt(raw, dataLen); err != nil {
		f.Close()
		return nil, err
	}
	filterRaw := make([]byte, filterLen)
	if _, err := f.ReadAt(filterRaw, dataLen+indexLen); err != nil {
		f.Close()
		return nil, err
	}
	t := &sstable{
		path: path, f: f, fileNum: fileNum, dataLen: dataLen,
		filter: decodeBloomFilter(filterRaw), numBytes: st.Size(),
	}
	t.index = make([]indexEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		kn, sz := binary.Uvarint(raw)
		if sz <= 0 || uint64(len(raw)-sz) < kn {
			f.Close()
			return nil, fmt.Errorf("kv: sstable %s corrupt index", path)
		}
		key := append([]byte(nil), raw[sz:sz+int(kn)]...)
		raw = raw[sz+int(kn):]
		off, sz := binary.Uvarint(raw)
		if sz <= 0 {
			f.Close()
			return nil, fmt.Errorf("kv: sstable %s corrupt index offset", path)
		}
		raw = raw[sz:]
		t.index = append(t.index, indexEntry{key: key, offset: int64(off)})
	}
	if len(t.index) > 0 {
		t.minKey = t.index[0].key
		// The true max key requires a scan of the last block; do it once.
		it := t.iterate(t.index[len(t.index)-1].key)
		for it.valid() {
			t.maxKey = append(t.maxKey[:0], it.entry().key...)
			it.next()
		}
		if err := it.err; err != nil {
			f.Close()
			return nil, err
		}
	}
	return t, nil
}

func (t *sstable) close() error { return t.f.Close() }

// verifyChecksum re-reads the data section and compares its CRC against the
// footer. Used by DB.CheckIntegrity.
func (t *sstable) verifyChecksum() error {
	var footer [footerSize]byte
	st, err := t.f.Stat()
	if err != nil {
		return err
	}
	if _, err := t.f.ReadAt(footer[:], st.Size()-footerSize); err != nil {
		return err
	}
	want := binary.LittleEndian.Uint32(footer[24:28])
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, io.NewSectionReader(t.f, 0, t.dataLen)); err != nil {
		return err
	}
	if crc.Sum32() != want {
		return fmt.Errorf("kv: sstable %s data checksum mismatch", t.path)
	}
	return nil
}

// seekOffset returns the data offset at which a scan for key should start.
func (t *sstable) seekOffset(key []byte) int64 {
	// First index sample with key > target, then step back one.
	i := sort.Search(len(t.index), func(i int) bool {
		return compareKeys(t.index[i].key, key) > 0
	})
	if i == 0 {
		return 0
	}
	return t.index[i-1].offset
}

// get performs a point lookup, consulting the Bloom filter first.
func (t *sstable) get(key []byte) (entry, bool, error) {
	if len(t.index) == 0 {
		return entry{}, false, nil
	}
	if compareKeys(key, t.minKey) < 0 || compareKeys(key, t.maxKey) > 0 {
		return entry{}, false, nil
	}
	if t.filter != nil && !t.filter.mayContain(key) {
		return entry{}, false, nil
	}
	it := t.iterate(key)
	if it.err != nil {
		return entry{}, false, it.err
	}
	if it.valid() && compareKeys(it.entry().key, key) == 0 {
		return it.entry(), true, nil
	}
	return entry{}, false, it.err
}

// sstIterator reads records sequentially from a seek position.
type sstIterator struct {
	t   *sstable
	r   *bufio.Reader
	off int64
	cur entry
	ok  bool
	err error
}

// iterate returns an iterator positioned at the first key >= start.
func (t *sstable) iterate(start []byte) *sstIterator {
	off := int64(0)
	if start != nil {
		off = t.seekOffset(start)
	}
	it := &sstIterator{
		t:   t,
		r:   bufio.NewReaderSize(io.NewSectionReader(t.f, off, t.dataLen-off), 32<<10),
		off: off,
	}
	it.advance()
	if start != nil {
		for it.ok && compareKeys(it.cur.key, start) < 0 {
			it.advance()
		}
	}
	return it
}

func (it *sstIterator) advance() {
	it.ok = false
	if it.err != nil || it.off >= it.t.dataLen {
		return
	}
	op, err := it.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			it.err = err
		}
		return
	}
	kn, err := binary.ReadUvarint(it.r)
	if err != nil {
		it.err = fmt.Errorf("kv: sstable %s corrupt record: %w", it.t.path, err)
		return
	}
	key := make([]byte, kn)
	if _, err := io.ReadFull(it.r, key); err != nil {
		it.err = err
		return
	}
	vn, err := binary.ReadUvarint(it.r)
	if err != nil {
		it.err = err
		return
	}
	val := make([]byte, vn)
	if _, err := io.ReadFull(it.r, val); err != nil {
		it.err = err
		return
	}
	rec := 1 + uvarintLen(kn) + int64(kn) + uvarintLen(vn) + int64(vn)
	it.off += rec
	it.cur = entry{key: key, value: val, tombstone: op == walOpDelete}
	it.ok = true
}

func uvarintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (it *sstIterator) valid() bool  { return it.ok }
func (it *sstIterator) entry() entry { return it.cur }
func (it *sstIterator) next()        { it.advance() }
