package kv

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// walFixture writes n records through a DB without flushing, closes it,
// and returns the WAL path.
func walFixture(t *testing.T, dir string, n int) string {
	t.Helper()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, walName)
}

// reopen opens the DB capturing recovery warnings and asserts which keys
// survived.
func reopenExpect(t *testing.T, dir string, present, absent []string) (*DB, []string) {
	t.Helper()
	var warnings []string
	db, err := Open(dir, Options{Warnf: func(f string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(f, args...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range present {
		if _, ok, err := db.Get([]byte(k)); err != nil || !ok {
			t.Fatalf("key %q lost (ok=%v err=%v)", k, ok, err)
		}
	}
	for _, k := range absent {
		if _, ok, _ := db.Get([]byte(k)); ok {
			t.Fatalf("key %q from the torn tail survived", k)
		}
	}
	return db, warnings
}

// A crash mid-append leaves a short final record. Replay must keep every
// intact record, truncate the tear, and warn — and appends after recovery
// must land where the tear was, so a second replay sees them.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := walFixture(t, dir, 10)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 3 bytes.
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	db, warnings := reopenExpect(t, dir,
		keys(0, 9), []string{"key-009"})
	st := db.ReplayInfo()
	if st.Records != 9 || !st.Truncated || st.TornBytes == 0 {
		t.Fatalf("replay stats: %+v", st)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "truncated") {
		t.Fatalf("warnings: %q", warnings)
	}
	if got, _ := os.Stat(path); got.Size() != st.GoodBytes {
		t.Fatalf("wal size %d want %d", got.Size(), st.GoodBytes)
	}

	// New writes append after the truncation point and survive a restart.
	if err := db.Put([]byte("post-crash"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, warnings2 := reopenExpect(t, dir,
		append(keys(0, 9), "post-crash"), []string{"key-009"})
	if len(warnings2) != 0 {
		t.Fatalf("second recovery warned: %q", warnings2)
	}
	if st := db2.ReplayInfo(); st.Records != 10 || st.Truncated {
		t.Fatalf("second replay stats: %+v", st)
	}
	db2.Close()
}

// A bit flip inside a record's payload fails its CRC. Everything before it
// replays; the flipped record and everything after it are cut.
func TestWALBitFlipTruncatedAtCorruption(t *testing.T) {
	dir := t.TempDir()
	path := walFixture(t, dir, 10)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Records are uniform; flip a bit in the 8th record's payload, past
	// its 8-byte header.
	recLen := len(data) / 10
	off := recLen*7 + 12
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db, warnings := reopenExpect(t, dir,
		keys(0, 7), []string{"key-007", "key-008", "key-009"})
	st := db.ReplayInfo()
	if st.Records != 7 || !st.Truncated {
		t.Fatalf("replay stats: %+v", st)
	}
	if st.TornBytes != int64(3*recLen) {
		t.Fatalf("torn %d bytes want %d", st.TornBytes, 3*recLen)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "checksum") {
		t.Fatalf("warnings: %q", warnings)
	}
	db.Close()
}

// A header announcing an absurd record length is corruption, not a
// gigantic allocation.
func TestWALAbsurdLengthHeader(t *testing.T) {
	dir := t.TempDir()
	path := walFixture(t, dir, 3)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// crc=0, length=1GiB, no payload.
	if _, err := f.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0x40}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db, warnings := reopenExpect(t, dir, keys(0, 3), nil)
	if st := db.ReplayInfo(); st.Records != 3 || !st.Truncated || st.TornBytes != 8 {
		t.Fatalf("replay stats: %+v", st)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "absurd") {
		t.Fatalf("warnings: %q", warnings)
	}
	db.Close()
}

func keys(lo, hi int) []string {
	var ks []string
	for i := lo; i < hi; i++ {
		ks = append(ks, fmt.Sprintf("key-%03d", i))
	}
	return ks
}
