package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := openTemp(t, Options{})
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get a = %q %v %v", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("b")); ok {
		t.Fatal("absent key should not be found")
	}
	if err := db.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("a")); ok {
		t.Fatal("deleted key should not be found")
	}
}

func TestOverwrite(t *testing.T) {
	db := openTemp(t, Options{})
	for i := 0; i < 5; i++ {
		if err := db.Put([]byte("k"), []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, _ := db.Get([]byte("k"))
	if !ok || string(v) != "4" {
		t.Fatalf("got %q, want last write", v)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db := openTemp(t, Options{})
	if err := db.Put(nil, []byte("v")); err != ErrEmptyKey {
		t.Errorf("Put(nil) = %v, want ErrEmptyKey", err)
	}
	if err := db.Delete(nil); err != ErrEmptyKey {
		t.Errorf("Delete(nil) = %v, want ErrEmptyKey", err)
	}
	if _, _, err := db.Get(nil); err != ErrEmptyKey {
		t.Errorf("Get(nil) = %v, want ErrEmptyKey", err)
	}
}

func TestClosedDB(t *testing.T) {
	db := openTemp(t, Options{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
	if err := db.Put([]byte("a"), nil); err != ErrClosed {
		t.Errorf("Put after close = %v", err)
	}
	if _, _, err := db.Get([]byte("a")); err != ErrClosed {
		t.Errorf("Get after close = %v", err)
	}
	if _, err := db.NewIterator(IterOptions{}); err != ErrClosed {
		t.Errorf("NewIterator after close = %v", err)
	}
	if err := db.Flush(); err != ErrClosed {
		t.Errorf("Flush after close = %v", err)
	}
}

func TestGetAcrossFlush(t *testing.T) {
	db := openTemp(t, Options{})
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		if err := db.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Overwrite some after flush so reads must merge memtable + table.
	for i := 0; i < 100; i += 3 {
		key := []byte(fmt.Sprintf("key-%03d", i))
		if err := db.Put(key, []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		want := fmt.Sprintf("val-%d", i)
		if i%3 == 0 {
			want = "new"
		}
		v, ok, err := db.Get(key)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get %s = %q %v %v, want %q", key, v, ok, err, want)
		}
	}
}

func TestDeleteShadowsFlushedValue(t *testing.T) {
	db := openTemp(t, Options{})
	if err := db.Put([]byte("x"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("x")); ok {
		t.Fatal("tombstone in memtable must shadow flushed value")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("x")); ok {
		t.Fatal("tombstone in newer table must shadow older table")
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("x")); ok {
		t.Fatal("compaction must not resurrect deleted key")
	}
}

func TestIteratorOrderAndBounds(t *testing.T) {
	db := openTemp(t, Options{})
	keys := []string{"a", "ab", "abc", "b", "ba", "c"}
	for _, k := range keys {
		if err := db.Put([]byte(k), []byte("v"+k)); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(opts IterOptions) []string {
		it, err := db.NewIterator(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var got []string
		for it.Valid() {
			got = append(got, string(it.Key()))
			if want := "v" + string(it.Key()); string(it.Value()) != want {
				t.Errorf("value for %s = %q, want %q", it.Key(), it.Value(), want)
			}
			it.Next()
		}
		return got
	}
	if got := collect(IterOptions{}); !equalStrings(got, keys) {
		t.Errorf("full scan = %v", got)
	}
	if got := collect(IterOptions{Prefix: []byte("a")}); !equalStrings(got, []string{"a", "ab", "abc"}) {
		t.Errorf("prefix a = %v", got)
	}
	if got := collect(IterOptions{Start: []byte("ab"), End: []byte("ba")}); !equalStrings(got, []string{"ab", "abc", "b"}) {
		t.Errorf("range [ab,ba) = %v", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScanEarlyStop(t *testing.T) {
	db := openTemp(t, Options{})
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("p/%d", i)), []byte("v"))
	}
	var n int
	err := db.Scan([]byte("p/"), func(k, v []byte) bool {
		n++
		return n < 3
	})
	if err != nil || n != 3 {
		t.Fatalf("Scan stopped after %d (err %v), want 3", n, err)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct {
		in, want []byte
	}{
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xff}, []byte{0x02}},
		{[]byte{0xff, 0xff}, nil},
	}
	for _, c := range cases {
		if got := prefixEnd(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("prefixEnd(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k10"))
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: close the file handles without flushing memtable.
	db.mu.Lock()
	db.log.close()
	db.closeTables()
	db.closed = true
	db.mu.Unlock()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%02d", i)
		v, ok, err := db2.Get([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if i == 10 {
			if ok {
				t.Errorf("deleted key %s resurrected after recovery", key)
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Errorf("key %s = %q %v after recovery", key, v, ok)
		}
	}
}

func TestRecoveryAfterFlushAndRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("flushed"), []byte("1"))
	db.Flush()
	db.Put([]byte("walonly"), []byte("2"))
	db.Sync()
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k, want := range map[string]string{"flushed": "1", "walonly": "2"} {
		v, ok, _ := db2.Get([]byte(k))
		if !ok || string(v) != want {
			t.Errorf("%s = %q %v, want %q", k, v, ok, want)
		}
	}
}

func TestTornWALTailIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("good"), []byte("1"))
	db.Sync()
	db.Close()
	// Append garbage — a torn record from a crash mid-write.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3, 4, 5})
	f.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, ok, _ := db2.Get([]byte("good"))
	if !ok || string(v) != "1" {
		t.Fatal("record before the tear must survive")
	}
}

func TestCorruptWALRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Sync()
	db.Close()
	// Flip a byte in the middle of the log: record "b" becomes corrupt.
	path := filepath.Join(dir, walName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok, _ := db2.Get([]byte("a")); !ok {
		t.Error("first record should replay")
	}
	if _, ok, _ := db2.Get([]byte("b")); ok {
		t.Error("corrupt record should not replay")
	}
}

func TestAutoFlushOnMemtableSize(t *testing.T) {
	db := openTemp(t, Options{MemtableBytes: 1 << 10})
	big := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 20; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), big)
	}
	if s := db.Stats(); s.Flushes == 0 {
		t.Error("expected automatic flushes from small memtable")
	}
	for i := 0; i < 20; i++ {
		v, ok, _ := db.Get([]byte(fmt.Sprintf("k%d", i)))
		if !ok || !bytes.Equal(v, big) {
			t.Fatalf("k%d lost across auto flush", i)
		}
	}
}

func TestAutoCompaction(t *testing.T) {
	db := openTemp(t, Options{CompactAt: 3})
	for round := 0; round < 5; round++ {
		db.Put([]byte(fmt.Sprintf("r%d", round)), []byte("v"))
		db.Flush()
	}
	s := db.Stats()
	if s.Compacts == 0 {
		t.Error("expected automatic compaction")
	}
	if s.NumTables >= 3 {
		t.Errorf("table count %d should stay below CompactAt", s.NumTables)
	}
	for round := 0; round < 5; round++ {
		if _, ok, _ := db.Get([]byte(fmt.Sprintf("r%d", round))); !ok {
			t.Errorf("r%d lost in compaction", round)
		}
	}
}

func TestCheckIntegrity(t *testing.T) {
	db := openTemp(t, Options{})
	db.Put([]byte("a"), []byte("1"))
	db.Flush()
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("fresh table should verify: %v", err)
	}
}

func TestCheckIntegrityDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, Options{})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte("v"), 50))
	}
	db.Flush()
	db.Close()
	// Corrupt a byte inside the data section of the table.
	names, _ := filepath.Glob(filepath.Join(dir, "*.sst"))
	if len(names) != 1 {
		t.Fatalf("want 1 table, got %v", names)
	}
	data, _ := os.ReadFile(names[0])
	data[100] ^= 0xff
	os.WriteFile(names[0], data, 0o644)

	db2, err := Open(dir, Options{})
	if err != nil {
		// Corruption may already surface at open (index/maxKey scan).
		return
	}
	defer db2.Close()
	if err := db2.CheckIntegrity(); err == nil {
		t.Error("CheckIntegrity should detect the flipped byte")
	}
}

func TestStatsCounters(t *testing.T) {
	db := openTemp(t, Options{})
	db.Put([]byte("a"), []byte("1"))
	db.Delete([]byte("a"))
	db.Get([]byte("a"))
	s := db.Stats()
	if s.Puts != 1 || s.Deletes != 1 || s.Gets != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := openTemp(t, Options{MemtableBytes: 8 << 10})
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("k%04d", rnd.Intn(n)))
				if v, ok, err := db.Get(k); err != nil {
					t.Errorf("Get: %v", err)
				} else if ok && !bytes.HasPrefix(v, []byte("v")) {
					t.Errorf("bad value %q", v)
				}
			}
		}(int64(r))
	}
	wg.Wait()
}

// TestModelEquivalenceQuick drives the DB with random operations and checks
// point reads and full scans against a plain map model.
func TestModelEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		dir, err := os.MkdirTemp("", "kvq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		db, err := Open(dir, Options{MemtableBytes: 1 << 10, CompactAt: 3})
		if err != nil {
			return false
		}
		defer db.Close()
		model := map[string]string{}
		r := rand.New(rand.NewSource(seed))
		for op := 0; op < 300; op++ {
			key := fmt.Sprintf("k%02d", r.Intn(40))
			switch r.Intn(10) {
			case 0:
				if err := db.Delete([]byte(key)); err != nil {
					return false
				}
				delete(model, key)
			case 1:
				if err := db.Flush(); err != nil {
					return false
				}
			default:
				val := fmt.Sprintf("v%d", r.Int63())
				if err := db.Put([]byte(key), []byte(val)); err != nil {
					return false
				}
				model[key] = val
			}
		}
		// Point reads.
		for k, want := range model {
			v, ok, err := db.Get([]byte(k))
			if err != nil || !ok || string(v) != want {
				return false
			}
		}
		// Full ordered scan equals sorted model.
		var wantKeys []string
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		var gotKeys []string
		err = db.Scan(nil, func(k, v []byte) bool {
			gotKeys = append(gotKeys, string(k))
			if model[string(k)] != string(v) {
				gotKeys = append(gotKeys, "MISMATCH")
			}
			return true
		})
		if err != nil {
			return false
		}
		return equalStrings(gotKeys, wantKeys)
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMemtableRandomOrderQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newMemtable()
		model := map[string]string{}
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("%03d", r.Intn(100))
			v := fmt.Sprintf("%d", r.Int63())
			m.set(entry{key: []byte(k), value: []byte(v)})
			model[k] = v
		}
		if m.count != len(model) {
			return false
		}
		var prev []byte
		for it := m.iterate(nil); it.valid(); it.next() {
			e := it.entry()
			if prev != nil && compareKeys(prev, e.key) >= 0 {
				return false // order violation
			}
			if model[string(e.key)] != string(e.value) {
				return false
			}
			prev = append(prev[:0], e.key...)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSSTableEmptyAndSingle(t *testing.T) {
	dir := t.TempDir()
	// Empty table.
	te, err := buildSSTable(filepath.Join(dir, "e.sst"), 1, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer te.close()
	if _, ok, _ := te.get([]byte("x")); ok {
		t.Error("empty table should find nothing")
	}
	// Single entry.
	ts, err := buildSSTable(filepath.Join(dir, "s.sst"), 2,
		[]entry{{key: []byte("only"), value: []byte("1")}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.close()
	e, ok, err := ts.get([]byte("only"))
	if err != nil || !ok || string(e.value) != "1" {
		t.Fatalf("single get = %v %v %v", e, ok, err)
	}
	if _, ok, _ := ts.get([]byte("a")); ok {
		t.Error("below-range get should miss")
	}
	if _, ok, _ := ts.get([]byte("z")); ok {
		t.Error("above-range get should miss")
	}
}

func BenchmarkPut(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("v"), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
}

func BenchmarkGet(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte("v"), 128)
	const n = 10000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%09d", i)), val)
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}

func BenchmarkPrefixScan(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for v := 0; v < 100; v++ {
		for e := 0; e < 16; e++ {
			db.Put([]byte(fmt.Sprintf("e/%03d/read/%03d", v, e)), []byte("edge"))
		}
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefix := []byte(fmt.Sprintf("e/%03d/read/", i%100))
		db.Scan(prefix, func(k, v []byte) bool { return true })
	}
}
