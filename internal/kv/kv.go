// Package kv implements an embedded, persistent, ordered key-value store —
// the storage substrate that plays the role RocksDB played in the GraphTrek
// paper. It is a small but complete log-structured merge design:
//
//   - writes go to a write-ahead log and an in-memory skiplist memtable;
//   - when the memtable exceeds a size threshold it is flushed to an
//     immutable sorted-string table (SSTable) on disk;
//   - reads consult the memtable first, then SSTables newest-to-oldest;
//   - iterators merge all sources in key order with newest-wins semantics;
//   - when too many SSTables accumulate they are compacted into one.
//
// The property the graph layer depends on is ordered prefix iteration:
// all the edges of one vertex with one label are stored under a common key
// prefix, so a typed edge scan is a sequential read — exactly the layout
// argument the paper makes for its storage system (§IV-B, §VI).
package kv

import (
	"bytes"
	"errors"
	"fmt"
)

// Common errors returned by the store.
var (
	// ErrClosed is returned by operations on a closed DB.
	ErrClosed = errors.New("kv: database is closed")
	// ErrEmptyKey is returned when a key of length zero is used.
	ErrEmptyKey = errors.New("kv: empty key")
)

// Options configures a DB.
type Options struct {
	// MemtableBytes is the approximate memtable size that triggers a flush
	// to an SSTable. Zero selects the default (4 MiB).
	MemtableBytes int
	// CompactAt is the number of SSTables that triggers a full compaction.
	// Zero selects the default (6).
	CompactAt int
	// IndexInterval is the number of entries between sparse-index samples
	// in an SSTable. Zero selects the default (16).
	IndexInterval int
	// SyncWAL forces an fsync after every WAL append. Durable but slow;
	// the graph servers leave it off and rely on close-time syncs, the
	// same trade RocksDB's default makes.
	SyncWAL bool
	// Warnf, when set, receives recovery warnings (e.g. a torn WAL tail
	// truncated during replay). Nil discards them.
	Warnf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.CompactAt <= 0 {
		o.CompactAt = 6
	}
	if o.IndexInterval <= 0 {
		o.IndexInterval = 16
	}
	return o
}

// entry is one key-value record flowing through the store. A tombstone
// marks a deletion that must shadow older values until compaction drops it.
type entry struct {
	key       []byte
	value     []byte
	tombstone bool
}

// compareKeys orders keys lexicographically, the only order the store uses.
func compareKeys(a, b []byte) int { return bytes.Compare(a, b) }

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if no such key exists (prefix is all 0xff).
func prefixEnd(prefix []byte) []byte {
	end := bytes.Clone(prefix)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// validateKey rejects keys the store cannot represent.
func validateKey(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > 1<<20 {
		return fmt.Errorf("kv: key too large (%d bytes)", len(key))
	}
	return nil
}
