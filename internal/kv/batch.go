package kv

import "bytes"

// Batch accumulates writes to be applied atomically with DB.Apply: either
// every operation is durably logged or none is (the WAL records the batch
// contiguously, and replay stops at the first torn record). Batches also
// amortize locking during bulk loads.
type Batch struct {
	ents []entry
}

// Put queues a key-value write.
func (b *Batch) Put(key, value []byte) {
	b.ents = append(b.ents, entry{key: bytes.Clone(key), value: bytes.Clone(value)})
}

// Delete queues a deletion.
func (b *Batch) Delete(key []byte) {
	b.ents = append(b.ents, entry{key: bytes.Clone(key), tombstone: true})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ents) }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.ents = b.ents[:0] }

// Apply writes the batch under one lock acquisition. Keys are validated
// up front so a bad operation rejects the whole batch before anything is
// logged.
func (db *DB) Apply(b *Batch) error {
	for _, e := range b.ents {
		if err := validateKey(e.key); err != nil {
			return err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	for _, e := range b.ents {
		if err := db.log.append(e); err != nil {
			return err
		}
		db.mem.set(e)
		if e.tombstone {
			db.stats.Deletes++
		} else {
			db.stats.Puts++
		}
	}
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}
