package kv

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DB is an embedded ordered key-value store. It is safe for concurrent use;
// point operations take a short lock and iterators hold a read lock for
// their lifetime (see NewIterator).
type DB struct {
	dir  string
	opts Options

	mu      sync.RWMutex
	mem     *memtable
	log     *wal
	tables  []*sstable // newest first
	nextNum uint64
	closed  bool

	// stats counts write-side operations; guarded by mu. Gets is counted
	// separately with an atomic because reads only hold the read lock.
	stats Stats
	gets  atomic.Int64

	// replay records what Open's WAL recovery found; immutable after Open.
	replay ReplayStats
}

// Stats reports operation counters for a DB.
type Stats struct {
	Puts       int64
	Deletes    int64
	Gets       int64
	Flushes    int64
	Compacts   int64
	NumTables  int
	TableBytes int64
}

const (
	walName      = "wal.log"
	manifestName = "MANIFEST"
)

// Open opens (creating if necessary) a database in dir.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kv: mkdir: %w", err)
	}
	db := &DB{dir: dir, opts: opts, mem: newMemtable(), nextNum: 1}

	// Load the manifest: the ordered list of live SSTables.
	names, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		num, err := tableFileNum(name)
		if err != nil {
			return nil, err
		}
		t, err := openSSTable(filepath.Join(dir, name), num)
		if err != nil {
			return nil, err
		}
		db.tables = append(db.tables, t)
		if num >= db.nextNum {
			db.nextNum = num + 1
		}
	}
	// Newest first.
	sort.Slice(db.tables, func(i, j int) bool { return db.tables[i].fileNum > db.tables[j].fileNum })

	// Replay the WAL into the memtable — truncating any torn tail first,
	// so the O_APPEND log below continues from the last intact record —
	// then continue appending to it.
	walPath := filepath.Join(dir, walName)
	db.replay, err = replayWAL(walPath, func(e entry) { db.mem.set(e) })
	if err != nil {
		db.closeTables()
		return nil, err
	}
	if db.replay.Truncated && opts.Warnf != nil {
		opts.Warnf("kv: wal %s: %s at offset %d; truncated %d-byte tail after %d intact records",
			walPath, db.replay.Reason, db.replay.GoodBytes, db.replay.TornBytes, db.replay.Records)
	}
	db.log, err = openWAL(walPath, opts.SyncWAL)
	if err != nil {
		db.closeTables()
		return nil, err
	}
	return db, nil
}

func (db *DB) closeTables() {
	for _, t := range db.tables {
		t.close()
	}
}

// Close flushes and releases the database. Further use returns ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	err := db.log.close()
	db.closeTables()
	return err
}

// Put stores value under key, replacing any existing value.
func (db *DB) Put(key, value []byte) error {
	if err := validateKey(key); err != nil {
		return err
	}
	return db.write(entry{key: bytes.Clone(key), value: bytes.Clone(value)})
}

// Delete removes key. Deleting an absent key is not an error.
func (db *DB) Delete(key []byte) error {
	if err := validateKey(key); err != nil {
		return err
	}
	return db.write(entry{key: bytes.Clone(key), tombstone: true})
}

func (db *DB) write(e entry) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.log.append(e); err != nil {
		return err
	}
	db.mem.set(e)
	if e.tombstone {
		db.stats.Deletes++
	} else {
		db.stats.Puts++
	}
	if db.mem.bytes >= db.opts.MemtableBytes {
		return db.flushLocked()
	}
	return nil
}

// Get returns the value stored under key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	if err := validateKey(key); err != nil {
		return nil, false, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	db.gets.Add(1)
	if e, ok := db.mem.get(key); ok {
		if e.tombstone {
			return nil, false, nil
		}
		return bytes.Clone(e.value), true, nil
	}
	for _, t := range db.tables {
		e, ok, err := t.get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.tombstone {
				return nil, false, nil
			}
			return e.value, true, nil
		}
	}
	return nil, false, nil
}

// Flush persists the memtable to a new SSTable and truncates the WAL.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.mem.count == 0 {
		return nil
	}
	ents := make([]entry, 0, db.mem.count)
	for it := db.mem.iterate(nil); it.valid(); it.next() {
		ents = append(ents, it.entry())
	}
	num := db.nextNum
	db.nextNum++
	name := tableFileName(num)
	t, err := buildSSTable(filepath.Join(db.dir, name), num, ents, db.opts.IndexInterval)
	if err != nil {
		return err
	}
	db.tables = append([]*sstable{t}, db.tables...)
	if err := db.writeManifestLocked(); err != nil {
		return err
	}
	// The memtable contents are durable in the SSTable; start a fresh WAL.
	if err := db.log.close(); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(db.dir, walName)); err != nil {
		return err
	}
	db.log, err = openWAL(filepath.Join(db.dir, walName), db.opts.SyncWAL)
	if err != nil {
		return err
	}
	db.mem = newMemtable()
	db.stats.Flushes++
	if len(db.tables) >= db.opts.CompactAt {
		return db.compactLocked()
	}
	return nil
}

// Compact merges all SSTables into one, dropping shadowed values and
// tombstones.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.compactLocked()
}

func (db *DB) compactLocked() error {
	if len(db.tables) <= 1 {
		return nil
	}
	srcs := make([]source, len(db.tables))
	for i, t := range db.tables {
		srcs[i] = t.iterate(nil)
	}
	var ents []entry
	for it := newMergeIterator(srcs); it.valid(); it.next() {
		e := it.entry()
		if e.tombstone {
			continue // full compaction: nothing older can exist
		}
		ents = append(ents, e)
	}
	for _, s := range srcs {
		if si, ok := s.(*sstIterator); ok && si.err != nil {
			return si.err
		}
	}
	num := db.nextNum
	db.nextNum++
	t, err := buildSSTable(filepath.Join(db.dir, tableFileName(num)), num, ents, db.opts.IndexInterval)
	if err != nil {
		return err
	}
	old := db.tables
	db.tables = []*sstable{t}
	if err := db.writeManifestLocked(); err != nil {
		return err
	}
	for _, o := range old {
		o.close()
		os.Remove(o.path)
	}
	db.stats.Compacts++
	return nil
}

// ReplayInfo reports what WAL recovery found when the database was opened:
// how many records replayed and whether a torn tail was truncated.
func (db *DB) ReplayInfo() ReplayStats { return db.replay }

// Sync forces the WAL to stable storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.log.sync()
}

// Stats returns a snapshot of the operation counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.stats
	s.Gets = db.gets.Load()
	s.NumTables = len(db.tables)
	for _, t := range db.tables {
		s.TableBytes += t.numBytes
	}
	return s
}

// CheckIntegrity verifies the checksums of every live SSTable.
func (db *DB) CheckIntegrity() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	for _, t := range db.tables {
		if err := t.verifyChecksum(); err != nil {
			return err
		}
	}
	return nil
}

func tableFileName(num uint64) string { return fmt.Sprintf("%08d.sst", num) }

func tableFileNum(name string) (uint64, error) {
	var num uint64
	if _, err := fmt.Sscanf(name, "%08d.sst", &num); err != nil {
		return 0, fmt.Errorf("kv: bad table file name %q: %w", name, err)
	}
	return num, nil
}

// writeManifestLocked atomically records the live table set.
func (db *DB) writeManifestLocked() error {
	var b strings.Builder
	for _, t := range db.tables {
		fmt.Fprintln(&b, filepath.Base(t.path))
	}
	tmp := filepath.Join(db.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(db.dir, manifestName))
}

func readManifest(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			names = append(names, line)
		}
	}
	return names, nil
}
