package kv

// source is the common shape of memtable and sstable iterators.
type source interface {
	valid() bool
	entry() entry
	next()
}

// mergeIterator merges several key-ordered sources into one key-ordered
// stream with newest-wins semantics: sources earlier in the slice shadow
// later ones on equal keys. Tombstones are surfaced (not suppressed) so the
// caller decides whether they are visible (reads) or retained (compaction).
type mergeIterator struct {
	srcs []source
	cur  entry
	ok   bool
}

func newMergeIterator(srcs []source) *mergeIterator {
	m := &mergeIterator{srcs: srcs}
	m.advance()
	return m
}

// advance selects the smallest current key; among sources tied on that key
// the lowest index (newest) wins and the rest are stepped past.
func (m *mergeIterator) advance() {
	m.ok = false
	best := -1
	for i, s := range m.srcs {
		if !s.valid() {
			continue
		}
		if best < 0 || compareKeys(s.entry().key, m.srcs[best].entry().key) < 0 {
			best = i
		}
	}
	if best < 0 {
		return
	}
	m.cur = m.srcs[best].entry()
	m.ok = true
	key := m.cur.key
	for _, s := range m.srcs {
		for s.valid() && compareKeys(s.entry().key, key) == 0 {
			s.next()
		}
	}
}

func (m *mergeIterator) valid() bool  { return m.ok }
func (m *mergeIterator) entry() entry { return m.cur }
func (m *mergeIterator) next()        { m.advance() }
