package kv

import "bytes"

// maxHeight bounds the skiplist tower height; 2^12 expected entries per
// level-4 probability is far more than a memtable ever holds.
const maxHeight = 12

// skipNode is one tower in the skiplist. Nodes are never removed; deletion
// is represented by a tombstone entry so it can shadow older SSTables.
type skipNode struct {
	ent  entry
	next [maxHeight]*skipNode
}

// memtable is an in-memory ordered map from key to entry, implemented as a
// skiplist. It is not safe for concurrent use; the DB serializes access.
type memtable struct {
	head   *skipNode
	height int
	rng    uint64 // xorshift state for tower heights
	bytes  int    // approximate memory footprint
	count  int
}

func newMemtable() *memtable {
	return &memtable{head: &skipNode{}, height: 1, rng: 0x9e3779b97f4a7c15}
}

// randHeight draws a tower height with P(h >= k) = 4^-(k-1).
func (m *memtable) randHeight() int {
	m.rng ^= m.rng << 13
	m.rng ^= m.rng >> 7
	m.rng ^= m.rng << 17
	h := 1
	for v := m.rng; h < maxHeight && v&3 == 0; v >>= 2 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, also filling
// prev with the rightmost node before that position on every level.
func (m *memtable) findGreaterOrEqual(key []byte, prev *[maxHeight]*skipNode) *skipNode {
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && compareKeys(x.next[lvl].ent.key, key) < 0 {
			x = x.next[lvl]
		}
		if prev != nil {
			prev[lvl] = x
		}
	}
	return x.next[0]
}

// set inserts or replaces the entry for e.key.
func (m *memtable) set(e entry) {
	var prev [maxHeight]*skipNode
	if n := m.findGreaterOrEqual(e.key, &prev); n != nil && bytes.Equal(n.ent.key, e.key) {
		m.bytes += len(e.value) - len(n.ent.value)
		n.ent = e
		return
	}
	h := m.randHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			prev[lvl] = m.head
		}
		m.height = h
	}
	n := &skipNode{ent: e}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = n
	}
	m.bytes += len(e.key) + len(e.value) + 48
	m.count++
}

// get returns the entry for key, if present (possibly a tombstone).
func (m *memtable) get(key []byte) (entry, bool) {
	n := m.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.ent.key, key) {
		return n.ent, true
	}
	return entry{}, false
}

// memIterator walks the memtable in key order starting at a seek position.
type memIterator struct {
	n *skipNode
}

// iterate returns an iterator positioned at the first key >= start (or the
// first key overall when start is nil).
func (m *memtable) iterate(start []byte) *memIterator {
	if start == nil {
		return &memIterator{n: m.head.next[0]}
	}
	return &memIterator{n: m.findGreaterOrEqual(start, nil)}
}

func (it *memIterator) valid() bool { return it.n != nil }
func (it *memIterator) entry() entry {
	return it.n.ent
}
func (it *memIterator) next() { it.n = it.n.next[0] }
