package kv

import "bytes"

// Iterator walks live keys in ascending order. It holds the database's read
// lock from creation until Close, so the view is consistent; the calling
// goroutine must not write to the DB while an iterator is open.
type Iterator struct {
	db    *DB
	merge *mergeIterator
	end   []byte // exclusive bound, nil = none
	ok    bool
	key   []byte
	value []byte
	done  bool
}

// IterOptions bounds an iteration. Prefix is a convenience that sets
// [Start, End) to cover exactly the keys sharing the prefix; explicit
// Start/End override it when non-nil.
type IterOptions struct {
	Prefix []byte
	Start  []byte // inclusive
	End    []byte // exclusive
}

// NewIterator opens an iterator over the current contents of the database.
// Close must be called to release the read lock.
func (db *DB) NewIterator(opts IterOptions) (*Iterator, error) {
	start, end := opts.Start, opts.End
	if opts.Prefix != nil {
		if start == nil {
			start = opts.Prefix
		}
		if end == nil {
			end = prefixEnd(opts.Prefix)
		}
	}
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return nil, ErrClosed
	}
	srcs := make([]source, 0, len(db.tables)+1)
	srcs = append(srcs, db.mem.iterate(start))
	for _, t := range db.tables {
		srcs = append(srcs, t.iterate(start))
	}
	it := &Iterator{db: db, merge: newMergeIterator(srcs), end: end}
	it.advance()
	return it, nil
}

// advance steps to the next live (non-tombstone) entry within bounds.
func (it *Iterator) advance() {
	it.ok = false
	for it.merge.valid() {
		e := it.merge.entry()
		if it.end != nil && bytes.Compare(e.key, it.end) >= 0 {
			return
		}
		it.merge.next()
		if e.tombstone {
			continue
		}
		it.key, it.value = e.key, e.value
		it.ok = true
		return
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.ok }

// Key returns the current key. The slice is only valid until Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value. The slice is only valid until Next.
func (it *Iterator) Value() []byte { return it.value }

// Next advances to the following entry.
func (it *Iterator) Next() { it.advance() }

// Close releases the iterator's read lock. It is safe to call twice.
func (it *Iterator) Close() {
	if !it.done {
		it.done = true
		it.db.mu.RUnlock()
	}
}

// Scan invokes fn for every live key with the given prefix, in key order,
// stopping early if fn returns false. It is the common fast path for typed
// edge scans.
func (db *DB) Scan(prefix []byte, fn func(key, value []byte) bool) error {
	it, err := db.NewIterator(IterOptions{Prefix: prefix})
	if err != nil {
		return err
	}
	defer it.Close()
	for it.Valid() {
		if !fn(it.Key(), it.Value()) {
			return nil
		}
		it.Next()
	}
	return nil
}
