package kv

import (
	"fmt"
	"testing"
)

func TestBatchApply(t *testing.T) {
	db := openTemp(t, Options{})
	var b Batch
	for i := 0; i < 10; i++ {
		b.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	b.Delete([]byte("k05"))
	if b.Len() != 11 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, ok, _ := db.Get([]byte(fmt.Sprintf("k%02d", i)))
		if i == 5 {
			if ok {
				t.Error("k05 should be deleted by the batch")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Errorf("k%02d = %q %v", i, v, ok)
		}
	}
}

func TestBatchRejectsBadKeyUpFront(t *testing.T) {
	db := openTemp(t, Options{})
	var b Batch
	b.Put([]byte("good"), []byte("1"))
	b.Put(nil, []byte("2")) // invalid
	if err := db.Apply(&b); err != ErrEmptyKey {
		t.Fatalf("Apply = %v, want ErrEmptyKey", err)
	}
	// Nothing from the rejected batch may be visible.
	if _, ok, _ := db.Get([]byte("good")); ok {
		t.Error("rejected batch leaked a write")
	}
}

func TestBatchReset(t *testing.T) {
	var b Batch
	b.Put([]byte("a"), nil)
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d", b.Len())
	}
}

func TestBatchOnClosedDB(t *testing.T) {
	db := openTemp(t, Options{})
	db.Close()
	var b Batch
	b.Put([]byte("a"), nil)
	if err := db.Apply(&b); err != ErrClosed {
		t.Errorf("Apply on closed = %v", err)
	}
}

func TestBatchSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	for i := 0; i < 20; i++ {
		b.Put([]byte(fmt.Sprintf("b%02d", i)), []byte("x"))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Sync()
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 20; i++ {
		if _, ok, _ := db2.Get([]byte(fmt.Sprintf("b%02d", i))); !ok {
			t.Errorf("b%02d lost after recovery", i)
		}
	}
}

func TestBatchTriggersFlush(t *testing.T) {
	db := openTemp(t, Options{MemtableBytes: 1 << 10})
	var b Batch
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 100))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Flushes == 0 {
		t.Error("large batch should trigger a flush")
	}
}

func BenchmarkBatchApply(b *testing.B) {
	db, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batch Batch
		for j := 0; j < 100; j++ {
			batch.Put([]byte(fmt.Sprintf("key-%09d", i*100+j)), val)
		}
		if err := db.Apply(&batch); err != nil {
			b.Fatal(err)
		}
	}
}
