package kv

import (
	"encoding/binary"
	"hash/fnv"
)

// bloomFilter is a classic split Bloom filter over the keys of one SSTable,
// sized at build time for ~1% false positives (10 bits per key, 6 probes).
// Point lookups consult it before the sparse index, so a Get for an absent
// key usually costs no block scan at all — the same role RocksDB's per-table
// filter blocks play.
type bloomFilter struct {
	bits []byte
	k    uint32
}

const (
	bloomBitsPerKey = 10
	bloomProbes     = 6
)

// newBloomFilter sizes a filter for n keys.
func newBloomFilter(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nBits := n * bloomBitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	return &bloomFilter{bits: make([]byte, (nBits+7)/8), k: bloomProbes}
}

// bloomHash derives the two base hashes for double hashing.
func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	// A second, independent-enough hash via multiplicative mixing.
	h2 := h1 * 0xc6a4a7935bd1e995
	h2 ^= h2 >> 29
	h2 |= 1 // ensure odd so probes cycle the whole table
	return h1, h2
}

// add inserts a key.
func (f *bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	n := uint64(len(f.bits)) * 8
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		f.bits[bit/8] |= 1 << (bit % 8)
	}
}

// mayContain reports whether the key might be present. False negatives are
// impossible; false positives occur at the configured rate.
func (f *bloomFilter) mayContain(key []byte) bool {
	if len(f.bits) == 0 {
		return true
	}
	h1, h2 := bloomHash(key)
	n := uint64(len(f.bits)) * 8
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		if f.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// encode serializes the filter: [k: 4 bytes LE][bits].
func (f *bloomFilter) encode() []byte {
	out := make([]byte, 4+len(f.bits))
	binary.LittleEndian.PutUint32(out, f.k)
	copy(out[4:], f.bits)
	return out
}

// decodeBloomFilter parses an encoded filter; a nil/empty input yields a
// pass-through filter (treat everything as possibly present).
func decodeBloomFilter(b []byte) *bloomFilter {
	if len(b) < 4 {
		return &bloomFilter{}
	}
	return &bloomFilter{k: binary.LittleEndian.Uint32(b), bits: b[4:]}
}
