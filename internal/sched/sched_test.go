package sched

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"graphtrek/internal/model"
)

func item(travel uint64, step int32, vertex int) Item {
	return Item{Travel: travel, Step: step, Vertex: model.VertexID(vertex)}
}

func popAll(q *Queue) []Group {
	q.Close()
	var out []Group
	for {
		g, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, g)
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New(Options{})
	q.Push([]Item{item(1, 2, 10), item(1, 0, 11), item(1, 1, 12)})
	got := popAll(q)
	want := []model.VertexID{10, 11, 12}
	for i, g := range got {
		if g.Vertex != want[i] || len(g.Items) != 1 {
			t.Errorf("pop %d = %+v, want vertex %d", i, g, want[i])
		}
	}
}

func TestPriorityOrdersBySmallestStep(t *testing.T) {
	q := New(Options{Priority: true})
	q.Push([]Item{item(1, 5, 10), item(1, 1, 11), item(1, 3, 12), item(1, 1, 13)})
	got := popAll(q)
	wantSteps := []int32{1, 1, 3, 5}
	wantVerts := []model.VertexID{11, 13, 12, 10} // FIFO within a step
	for i, g := range got {
		if g.Items[0].Step != wantSteps[i] || g.Vertex != wantVerts[i] {
			t.Errorf("pop %d = step %d vertex %d, want step %d vertex %d",
				i, g.Items[0].Step, g.Vertex, wantSteps[i], wantVerts[i])
		}
	}
}

func TestMergeCoalescesSameVertex(t *testing.T) {
	q := New(Options{Priority: true, Merge: true})
	q.Push([]Item{item(1, 1, 10), item(1, 2, 10), item(1, 1, 11)})
	got := popAll(q)
	if len(got) != 2 {
		t.Fatalf("groups = %d, want 2", len(got))
	}
	if got[0].Vertex != 10 || len(got[0].Items) != 2 {
		t.Errorf("group 0 = %+v, want merged vertex 10 with 2 items", got[0])
	}
	if got[1].Vertex != 11 || len(got[1].Items) != 1 {
		t.Errorf("group 1 = %+v", got[1])
	}
}

func TestMergeDoesNotCrossTravels(t *testing.T) {
	q := New(Options{Merge: true})
	q.Push([]Item{item(1, 1, 10), item(2, 1, 10)})
	got := popAll(q)
	if len(got) != 2 {
		t.Fatalf("groups = %d, want 2 (no cross-travel merge)", len(got))
	}
}

func TestMergeMovesGroupToLowerStep(t *testing.T) {
	q := New(Options{Priority: true, Merge: true})
	q.Push([]Item{item(1, 4, 10)})
	q.Push([]Item{item(1, 2, 11)})
	q.Push([]Item{item(1, 1, 10)}) // merges; group 10 now has min step 1
	got := popAll(q)
	if got[0].Vertex != 10 || len(got[0].Items) != 2 {
		t.Fatalf("pop 0 = %+v, want vertex 10 popped first after move-down", got[0])
	}
	if got[1].Vertex != 11 {
		t.Errorf("pop 1 = %+v", got[1])
	}
}

func TestNoMergeAfterPop(t *testing.T) {
	q := New(Options{Merge: true})
	q.Push([]Item{item(1, 1, 10)})
	g, ok := q.Pop()
	if !ok || len(g.Items) != 1 {
		t.Fatal("first pop failed")
	}
	// The group was taken; a new arrival must form a fresh group.
	q.Push([]Item{item(1, 2, 10)})
	got := popAll(q)
	if len(got) != 1 || len(got[0].Items) != 1 || got[0].Items[0].Step != 2 {
		t.Errorf("post-pop arrival = %+v", got)
	}
}

func TestGatedQueueHoldsFutureSteps(t *testing.T) {
	q := New(Options{Gated: true})
	q.Push([]Item{item(1, 1, 10), item(1, 0, 11)})
	g, ok := q.Pop()
	if !ok || g.Vertex != 11 {
		t.Fatalf("pop = %+v, want the step-0 item", g)
	}
	// Step-1 item must be held until release.
	done := make(chan Group, 1)
	go func() {
		g, _ := q.Pop()
		done <- g
	}()
	select {
	case g := <-done:
		t.Fatalf("gated item popped early: %+v", g)
	case <-time.After(20 * time.Millisecond):
	}
	q.Release(1)
	select {
	case g := <-done:
		if g.Vertex != 10 {
			t.Errorf("released pop = %+v", g)
		}
	case <-time.After(time.Second):
		t.Fatal("release did not wake the popper")
	}
	q.Close()
}

func TestReleaseNeverLowersGate(t *testing.T) {
	q := New(Options{Gated: true})
	q.Release(5)
	q.Release(3)
	if q.Gate() != 5 {
		t.Errorf("gate = %d, want 5", q.Gate())
	}
	// Ungated queues ignore Release.
	u := New(Options{})
	u.Release(1)
	if u.Gate() <= 1<<30 {
		t.Errorf("ungated gate = %d", u.Gate())
	}
}

func TestLenTracksItems(t *testing.T) {
	q := New(Options{Merge: true})
	q.Push([]Item{item(1, 1, 10), item(1, 2, 10), item(1, 1, 11)})
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Errorf("Len after merged pop = %d, want 1", q.Len())
	}
}

func TestPushAfterCloseDropped(t *testing.T) {
	q := New(Options{})
	q.Close()
	q.Push([]Item{item(1, 0, 1)})
	if _, ok := q.Pop(); ok {
		t.Error("closed queue should not yield items pushed after close")
	}
}

func TestCloseDrainsEligibleWork(t *testing.T) {
	q := New(Options{})
	q.Push([]Item{item(1, 0, 1), item(1, 0, 2)})
	q.Close()
	if got := len(popAllOpen(q)); got != 2 {
		t.Errorf("drained %d items, want 2", got)
	}
}

func popAllOpen(q *Queue) []Group {
	var out []Group
	for {
		g, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, g)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New(Options{Priority: true, Merge: true})
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perProducer; i++ {
				q.Push([]Item{item(uint64(r.Intn(2)), int32(r.Intn(8)), r.Intn(100))})
			}
		}(int64(p))
	}
	var consumed sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for c := 0; c < 3; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				g, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				total += len(g.Items)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	consumed.Wait()
	if total != producers*perProducer {
		t.Errorf("consumed %d items, want %d", total, producers*perProducer)
	}
}

func TestExecPointerPreserved(t *testing.T) {
	q := New(Options{Merge: true})
	type acc struct{ n int }
	a1, a2 := &acc{1}, &acc{2}
	q.Push([]Item{{Travel: 1, Step: 0, Vertex: 9, Exec: a1}})
	q.Push([]Item{{Travel: 1, Step: 1, Vertex: 9, Exec: a2}})
	g, _ := q.Pop()
	if len(g.Items) != 2 || g.Items[0].Exec.(*acc) != a1 || g.Items[1].Exec.(*acc) != a2 {
		t.Errorf("exec pointers lost: %+v", g.Items)
	}
	q.Close()
}

// TestPriorityInvariantQuick: under priority scheduling, a popped group's
// step is never larger than the smallest step that was eligible in the
// queue at pop time.
func TestPriorityInvariantQuick(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		q := New(Options{Priority: true})
		pending := map[int32]int{}
		for i := 0; i < 30; i++ {
			step := int32(r.Intn(8))
			q.Push([]Item{item(1, step, 1000+i)})
			pending[step]++
		}
		for i := 0; i < 30; i++ {
			g, ok := q.Pop()
			if !ok {
				t.Fatal("queue drained early")
			}
			got := g.Items[0].Step
			for s := int32(0); s < got; s++ {
				if pending[s] > 0 {
					t.Fatalf("popped step %d while %d items at step %d were eligible", got, pending[s], s)
				}
			}
			pending[got]--
		}
		q.Close()
	}
}

func TestEligibleLenRespectsGate(t *testing.T) {
	q := New(Options{Gated: true})
	q.Push([]Item{item(1, 0, 1), item(1, 1, 2), item(1, 1, 3)})
	if got := q.EligibleLen(); got != 1 {
		t.Fatalf("EligibleLen = %d, want 1 (only step 0)", got)
	}
	q.Release(1)
	if got := q.EligibleLen(); got != 3 {
		t.Fatalf("EligibleLen after release = %d, want 3", got)
	}
	q.Close()
}
