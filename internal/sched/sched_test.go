package sched

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"graphtrek/internal/model"
)

func item(travel uint64, step int32, vertex int) Item {
	return Item{Travel: travel, Step: step, Vertex: model.VertexID(vertex)}
}

// newQueue builds a Multi with one registered traversal — the level-2
// policy tests all run against a single sub-queue.
func newQueue(travel uint64, opts Options) *Multi {
	m := NewMulti(0)
	m.Register(travel, opts)
	return m
}

func push(t testing.TB, m *Multi, items ...Item) {
	t.Helper()
	if _, err := m.Push(items); err != nil {
		t.Fatalf("push: %v", err)
	}
}

func popAll(q *Multi) []Group {
	q.Close()
	return popAllOpen(q)
}

func popAllOpen(q *Multi) []Group {
	var out []Group
	for {
		g, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, g)
	}
}

func TestFIFOOrder(t *testing.T) {
	q := newQueue(1, Options{})
	push(t, q, item(1, 2, 10), item(1, 0, 11), item(1, 1, 12))
	got := popAll(q)
	want := []model.VertexID{10, 11, 12}
	for i, g := range got {
		if g.Vertex != want[i] || len(g.Items) != 1 {
			t.Errorf("pop %d = %+v, want vertex %d", i, g, want[i])
		}
	}
}

func TestPriorityOrdersBySmallestStep(t *testing.T) {
	q := newQueue(1, Options{Priority: true})
	push(t, q, item(1, 5, 10), item(1, 1, 11), item(1, 3, 12), item(1, 1, 13))
	got := popAll(q)
	wantSteps := []int32{1, 1, 3, 5}
	wantVerts := []model.VertexID{11, 13, 12, 10} // FIFO within a step
	for i, g := range got {
		if g.Items[0].Step != wantSteps[i] || g.Vertex != wantVerts[i] {
			t.Errorf("pop %d = step %d vertex %d, want step %d vertex %d",
				i, g.Items[0].Step, g.Vertex, wantSteps[i], wantVerts[i])
		}
	}
}

func TestMergeCoalescesSameVertex(t *testing.T) {
	q := newQueue(1, Options{Priority: true, Merge: true})
	push(t, q, item(1, 1, 10), item(1, 2, 10), item(1, 1, 11))
	got := popAll(q)
	if len(got) != 2 {
		t.Fatalf("groups = %d, want 2", len(got))
	}
	if got[0].Vertex != 10 || len(got[0].Items) != 2 {
		t.Errorf("group 0 = %+v, want merged vertex 10 with 2 items", got[0])
	}
	if got[1].Vertex != 11 || len(got[1].Items) != 1 {
		t.Errorf("group 1 = %+v", got[1])
	}
}

func TestMergeDoesNotCrossTravels(t *testing.T) {
	q := NewMulti(0)
	q.Register(1, Options{Merge: true})
	q.Register(2, Options{Merge: true})
	push(t, q, item(1, 1, 10))
	push(t, q, item(2, 1, 10))
	got := popAll(q)
	if len(got) != 2 {
		t.Fatalf("groups = %d, want 2 (no cross-travel merge)", len(got))
	}
}

func TestMergeMovesGroupToLowerStep(t *testing.T) {
	q := newQueue(1, Options{Priority: true, Merge: true})
	push(t, q, item(1, 4, 10))
	push(t, q, item(1, 2, 11))
	push(t, q, item(1, 1, 10)) // merges; group 10 now has min step 1
	got := popAll(q)
	if got[0].Vertex != 10 || len(got[0].Items) != 2 {
		t.Fatalf("pop 0 = %+v, want vertex 10 popped first after move-down", got[0])
	}
	if got[1].Vertex != 11 {
		t.Errorf("pop 1 = %+v", got[1])
	}
}

func TestNoMergeAfterPop(t *testing.T) {
	q := newQueue(1, Options{Merge: true})
	push(t, q, item(1, 1, 10))
	g, ok := q.Pop()
	if !ok || len(g.Items) != 1 {
		t.Fatal("first pop failed")
	}
	// The group was taken; a new arrival must form a fresh group.
	push(t, q, item(1, 2, 10))
	got := popAll(q)
	if len(got) != 1 || len(got[0].Items) != 1 || got[0].Items[0].Step != 2 {
		t.Errorf("post-pop arrival = %+v", got)
	}
}

func TestGatedQueueHoldsFutureSteps(t *testing.T) {
	q := newQueue(1, Options{Gated: true})
	push(t, q, item(1, 1, 10), item(1, 0, 11))
	g, ok := q.Pop()
	if !ok || g.Vertex != 11 {
		t.Fatalf("pop = %+v, want the step-0 item", g)
	}
	// Step-1 item must be held until release.
	done := make(chan Group, 1)
	go func() {
		g, _ := q.Pop()
		done <- g
	}()
	select {
	case g := <-done:
		t.Fatalf("gated item popped early: %+v", g)
	case <-time.After(20 * time.Millisecond):
	}
	q.Release(1, 1)
	select {
	case g := <-done:
		if g.Vertex != 10 {
			t.Errorf("released pop = %+v", g)
		}
	case <-time.After(time.Second):
		t.Fatal("release did not wake the popper")
	}
	q.Close()
}

func TestReleaseNeverLowersGate(t *testing.T) {
	q := newQueue(1, Options{Gated: true})
	q.Release(1, 5)
	q.Release(1, 3)
	if q.Gate(1) != 5 {
		t.Errorf("gate = %d, want 5", q.Gate(1))
	}
	// Ungated traversals ignore Release.
	u := newQueue(1, Options{})
	u.Release(1, 1)
	if u.Gate(1) <= 1<<30 {
		t.Errorf("ungated gate = %d", u.Gate(1))
	}
}

func TestGateIsPerTravel(t *testing.T) {
	q := NewMulti(0)
	q.Register(1, Options{Gated: true})
	q.Register(2, Options{Gated: true})
	push(t, q, item(1, 1, 10))
	push(t, q, item(2, 1, 20))
	q.Release(1, 1)
	g, ok := q.Pop()
	if !ok || g.Travel != 1 {
		t.Fatalf("pop = %+v, want travel 1 (travel 2 still gated)", g)
	}
	if q.EligibleLen(2) != 0 {
		t.Errorf("travel 2 eligible = %d, want 0", q.EligibleLen(2))
	}
	q.Close()
}

func TestLenTracksItems(t *testing.T) {
	q := newQueue(1, Options{Merge: true})
	push(t, q, item(1, 1, 10), item(1, 2, 10), item(1, 1, 11))
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Errorf("Len after merged pop = %d, want 1", q.Len())
	}
}

func TestPushAfterCloseDropped(t *testing.T) {
	q := newQueue(1, Options{})
	q.Close()
	if _, err := q.Push([]Item{item(1, 0, 1)}); err != nil {
		t.Fatalf("push after close: %v", err)
	}
	if _, ok := q.Pop(); ok {
		t.Error("closed queue should not yield items pushed after close")
	}
}

func TestPushToUnknownTravelDropped(t *testing.T) {
	q := NewMulti(0)
	if _, err := q.Push([]Item{item(7, 0, 1)}); err != nil {
		t.Fatalf("push to unknown travel: %v", err)
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
}

func TestCloseDrainsEligibleWork(t *testing.T) {
	q := newQueue(1, Options{})
	push(t, q, item(1, 0, 1), item(1, 0, 2))
	q.Close()
	if got := len(popAllOpen(q)); got != 2 {
		t.Errorf("drained %d items, want 2", got)
	}
}

func TestDropEvictsPendingGroups(t *testing.T) {
	q := NewMulti(0)
	q.Register(1, Options{Merge: true})
	q.Register(2, Options{})
	push(t, q, item(1, 0, 10), item(1, 1, 10), item(1, 0, 11))
	push(t, q, item(2, 0, 20))
	if n := q.Drop(1); n != 3 {
		t.Errorf("Drop evicted %d items, want 3", n)
	}
	if q.Len() != 1 {
		t.Errorf("Len after drop = %d, want 1", q.Len())
	}
	// A push for the dropped traversal is discarded, not resurrected.
	push(t, q, item(1, 0, 12))
	got := popAll(q)
	if len(got) != 1 || got[0].Travel != 2 {
		t.Errorf("post-drop pops = %+v, want only travel 2", got)
	}
}

func TestBackpressureRejectsWholeBatch(t *testing.T) {
	q := NewMulti(3)
	q.Register(1, Options{})
	push(t, q, item(1, 0, 1), item(1, 0, 2))
	// Admitting two more would exceed the bound: all-or-nothing rejection.
	if _, err := q.Push([]Item{item(1, 0, 3), item(1, 0, 4)}); err != ErrBackpressure {
		t.Fatalf("push over limit = %v, want ErrBackpressure", err)
	}
	if q.Len() != 2 {
		t.Errorf("Len after rejection = %d, want 2 (batch not partially admitted)", q.Len())
	}
	// A batch that fits is still admitted.
	push(t, q, item(1, 0, 5))
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	// Draining frees capacity again.
	q.Pop()
	push(t, q, item(1, 0, 6))
	q.Close()
}

func TestHighWaterTracksPeakDepth(t *testing.T) {
	q := newQueue(1, Options{})
	push(t, q, item(1, 0, 1), item(1, 0, 2), item(1, 0, 3))
	q.Pop()
	q.Pop()
	push(t, q, item(1, 0, 4))
	if hw := q.HighWater(); hw != 3 {
		t.Errorf("HighWater = %d, want 3", hw)
	}
	if d, _ := q.Push([]Item{item(1, 0, 5)}); d != 3 {
		t.Errorf("Push depth = %d, want 3", d)
	}
	q.Close()
}

// TestFairShareAcrossTravels: with two traversals queued, workers alternate
// between them instead of draining the first before touching the second.
func TestFairShareAcrossTravels(t *testing.T) {
	q := NewMulti(0)
	q.Register(1, Options{})
	q.Register(2, Options{})
	for i := 0; i < 4; i++ {
		push(t, q, item(1, 0, 10+i))
	}
	for i := 0; i < 4; i++ {
		push(t, q, item(2, 0, 20+i))
	}
	got := popAll(q)
	if len(got) != 8 {
		t.Fatalf("pops = %d, want 8", len(got))
	}
	for i := 0; i < 8; i += 2 {
		// Served counts tie at each even pop; the older traversal (1) wins
		// the tie, then traversal 2 is strictly less served.
		if got[i].Travel != 1 || got[i+1].Travel != 2 {
			t.Fatalf("pops %d,%d = travels %d,%d, want alternation 1,2",
				i, i+1, got[i].Travel, got[i+1].Travel)
		}
	}
}

// TestOldestTravelDrainsFirst: on a served-count tie, the scheduler prefers
// the oldest traversal, so a straggler is not starved by newcomers.
func TestOldestTravelDrainsFirst(t *testing.T) {
	q := NewMulti(0)
	q.Register(5, Options{}) // oldest
	q.Register(6, Options{})
	q.Register(7, Options{})
	push(t, q, item(7, 0, 70))
	push(t, q, item(6, 0, 60))
	push(t, q, item(5, 0, 50))
	g, ok := q.Pop()
	if !ok || g.Travel != 5 {
		t.Fatalf("first pop = travel %d, want the oldest (5)", g.Travel)
	}
	q.Close()
}

// TestFairShareWeighsMergedItems: fair share counts items served, so a
// traversal whose groups merge many requests yields the pool sooner.
func TestFairShareWeighsMergedItems(t *testing.T) {
	q := NewMulti(0)
	q.Register(1, Options{Merge: true})
	q.Register(2, Options{})
	// Travel 1: one group of 3 merged items, then another group.
	push(t, q, item(1, 0, 10), item(1, 1, 10), item(1, 2, 10), item(1, 0, 11))
	push(t, q, item(2, 0, 20), item(2, 0, 21), item(2, 0, 22))
	first, _ := q.Pop() // tie at 0 served: oldest (1) wins, serves 3 items
	if first.Travel != 1 || len(first.Items) != 3 {
		t.Fatalf("first pop = %+v, want travel 1's merged group", first)
	}
	// Travel 1 now has 3 served vs travel 2's 0: the next three pops must
	// all come from travel 2.
	for i := 0; i < 3; i++ {
		g, _ := q.Pop()
		if g.Travel != 2 {
			t.Fatalf("pop %d = travel %d, want 2 (fair share by items)", i+1, g.Travel)
		}
	}
	q.Close()
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := NewMulti(0)
	q.Register(0, Options{Priority: true, Merge: true})
	q.Register(1, Options{Priority: true, Merge: true})
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perProducer; i++ {
				q.Push([]Item{item(uint64(r.Intn(2)), int32(r.Intn(8)), r.Intn(100))})
			}
		}(int64(p))
	}
	var consumed sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for c := 0; c < 3; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				g, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				total += len(g.Items)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	consumed.Wait()
	if total != producers*perProducer {
		t.Errorf("consumed %d items, want %d", total, producers*perProducer)
	}
}

type testAcc struct{ n int }

func (a *testAcc) ItemDone() bool { a.n--; return a.n == 0 }

func TestExecPointerPreserved(t *testing.T) {
	q := newQueue(1, Options{Merge: true})
	a1, a2 := &testAcc{1}, &testAcc{2}
	push(t, q, Item{Travel: 1, Step: 0, Vertex: 9, Exec: a1})
	push(t, q, Item{Travel: 1, Step: 1, Vertex: 9, Exec: a2})
	g, _ := q.Pop()
	if len(g.Items) != 2 || g.Items[0].Exec.(*testAcc) != a1 || g.Items[1].Exec.(*testAcc) != a2 {
		t.Errorf("exec accumulators lost: %+v", g.Items)
	}
	q.Close()
}

// TestPriorityInvariantQuick: under priority scheduling, a popped group's
// step is never larger than the smallest step that was eligible in the
// traversal's sub-queue at pop time.
func TestPriorityInvariantQuick(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		q := newQueue(1, Options{Priority: true})
		pending := map[int32]int{}
		for i := 0; i < 30; i++ {
			step := int32(r.Intn(8))
			push(t, q, item(1, step, 1000+i))
			pending[step]++
		}
		for i := 0; i < 30; i++ {
			g, ok := q.Pop()
			if !ok {
				t.Fatal("queue drained early")
			}
			got := g.Items[0].Step
			for s := int32(0); s < got; s++ {
				if pending[s] > 0 {
					t.Fatalf("popped step %d while %d items at step %d were eligible", got, pending[s], s)
				}
			}
			pending[got]--
		}
		q.Close()
	}
}

func TestEligibleLenRespectsGate(t *testing.T) {
	q := newQueue(1, Options{Gated: true})
	push(t, q, item(1, 0, 1), item(1, 1, 2), item(1, 1, 3))
	if got := q.EligibleLen(1); got != 1 {
		t.Fatalf("EligibleLen = %d, want 1 (only step 0)", got)
	}
	q.Release(1, 1)
	if got := q.EligibleLen(1); got != 3 {
		t.Fatalf("EligibleLen after release = %d, want 3", got)
	}
	q.Close()
}

func TestEnqueuedTimestampSet(t *testing.T) {
	q := newQueue(1, Options{})
	before := time.Now()
	push(t, q, item(1, 0, 1))
	g, ok := q.Pop()
	if !ok {
		t.Fatal("pop failed")
	}
	if g.Enqueued.Before(before) || g.Enqueued.After(time.Now()) {
		t.Errorf("Enqueued = %v outside push window", g.Enqueued)
	}
	q.Close()
}
