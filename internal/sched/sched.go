// Package sched implements the per-server request queue of §V-B. Incoming
// traversal requests are buffered locally (the server acknowledges its
// ancestor before processing, so ancestors finish asynchronously); a pool
// of worker goroutines drains the queue under two cooperating policies:
//
//   - execution scheduling: workers always take the request with the
//     smallest step id, so slow steps catch up and the spread between the
//     fastest and slowest in-flight step stays bounded (which also bounds
//     traversal-affiliate cache pressure);
//   - execution merging: requests for the same vertex — across different
//     steps of the same traversal — are coalesced into one group served by
//     a single disk access.
//
// Both policies are independently switchable so the benchmarks can ablate
// them, and a step gate turns the same queue into the synchronous engine's
// barrier buffer.
package sched

import (
	"math"
	"sync"

	"graphtrek/internal/model"
)

// Item is one buffered traversal request: visit Vertex on behalf of Step,
// carrying the rtn() provenance tag (Anc, AncStep, Dest) and an opaque
// reference to the execution accumulator that owns it.
type Item struct {
	Travel  uint64
	Step    int32
	Vertex  model.VertexID
	Anc     model.VertexID
	AncStep int32
	Dest    int32
	Exec    any
}

// Group is the unit a worker processes: one vertex of one traversal, with
// every request currently merged onto it. Without merging a group holds
// exactly one item.
type Group struct {
	Travel uint64
	Vertex model.VertexID
	Items  []Item
}

// Options selects the queue's policies.
type Options struct {
	// Priority pops smallest-step groups first (execution scheduling).
	Priority bool
	// Merge coalesces same-vertex requests into one group.
	Merge bool
	// Gated holds back items whose step exceeds the released gate — the
	// synchronous engine's barrier. Ungated queues admit every step.
	Gated bool
}

type groupKey struct {
	travel uint64
	vertex model.VertexID
}

type group struct {
	Group
	minStep int32
	seq     uint64
	taken   bool
}

// Queue is the buffered request queue. All methods are safe for concurrent
// use.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	opts   Options
	gate   int32
	seq    uint64
	byKey  map[groupKey]*group // only when merging
	bucket map[int32][]*group  // step -> groups in arrival order
	steps  []int32             // sorted distinct step ids with buckets
	size   int                 // buffered items
	closed bool
}

// New creates a queue with the given policies. A gated queue starts with
// gate 0 (only step-0 items eligible).
func New(opts Options) *Queue {
	q := &Queue{opts: opts, byKey: make(map[groupKey]*group), bucket: make(map[int32][]*group)}
	if !opts.Gated {
		q.gate = math.MaxInt32
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push buffers items. Pushing to a closed queue drops the items.
func (q *Queue) Push(items []Item) {
	if len(items) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	for _, it := range items {
		q.size++
		if q.opts.Merge {
			k := groupKey{it.Travel, it.Vertex}
			if g, ok := q.byKey[k]; ok && !g.taken {
				g.Items = append(g.Items, it)
				if it.Step < g.minStep {
					// Move the group down to the new step's bucket; the
					// stale slot in the old bucket is skipped lazily.
					g.minStep = it.Step
					q.addToBucket(g)
				}
				continue
			}
			g := &group{Group: Group{Travel: it.Travel, Vertex: it.Vertex, Items: []Item{it}}, minStep: it.Step, seq: q.seq}
			q.seq++
			q.byKey[k] = g
			q.addToBucket(g)
			continue
		}
		g := &group{Group: Group{Travel: it.Travel, Vertex: it.Vertex, Items: []Item{it}}, minStep: it.Step, seq: q.seq}
		q.seq++
		q.addToBucket(g)
	}
	q.cond.Broadcast()
}

func (q *Queue) addToBucket(g *group) {
	step := g.minStep
	if _, ok := q.bucket[step]; !ok {
		q.insertStep(step)
	}
	q.bucket[step] = append(q.bucket[step], g)
}

func (q *Queue) insertStep(step int32) {
	i := 0
	for i < len(q.steps) && q.steps[i] < step {
		i++
	}
	q.steps = append(q.steps, 0)
	copy(q.steps[i+1:], q.steps[i:])
	q.steps[i] = step
	if _, ok := q.bucket[step]; !ok {
		q.bucket[step] = nil
	}
}

// Pop blocks until a group is eligible (its smallest step is within the
// gate) and returns it. The second result is false once the queue is
// closed and drained of eligible work.
func (q *Queue) Pop() (Group, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if g := q.popLocked(); g != nil {
			return g.Group, true
		}
		if q.closed {
			return Group{}, false
		}
		q.cond.Wait()
	}
}

// popLocked selects the next group under the configured policy, skipping
// stale bucket slots left by merges that moved a group.
func (q *Queue) popLocked() *group {
	var best *group
	bestBucket := int32(-1)
	bestIdx := -1
	for _, step := range q.steps {
		if step > q.gate {
			break
		}
		list := q.bucket[step]
		// Trim stale heads (taken, or relocated to another bucket).
		i := 0
		for i < len(list) && (list[i].taken || list[i].minStep != step) {
			i++
		}
		if i > 0 {
			list = list[i:]
			q.bucket[step] = list
		}
		if len(list) == 0 {
			continue
		}
		head := list[0]
		if q.opts.Priority {
			best, bestBucket, bestIdx = head, step, 0
			break // smallest eligible step wins
		}
		if best == nil || head.seq < best.seq {
			best, bestBucket, bestIdx = head, step, 0
		}
	}
	if best == nil {
		return nil
	}
	q.bucket[bestBucket] = q.bucket[bestBucket][bestIdx+1:]
	best.taken = true
	if q.opts.Merge {
		delete(q.byKey, groupKey{best.Travel, best.Vertex})
	}
	q.size -= len(best.Items)
	return best
}

// Release raises the gate so items up to and including step become
// eligible. It is a no-op on ungated queues and never lowers the gate.
func (q *Queue) Release(step int32) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.opts.Gated || step <= q.gate {
		return
	}
	q.gate = step
	q.cond.Broadcast()
}

// Gate returns the current gate (MaxInt32 when ungated).
func (q *Queue) Gate() int32 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.gate
}

// Len reports the number of buffered items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// EligibleLen reports the number of buffered items whose step is within the
// gate — the items a worker could pop right now. The engine flushes its
// outboxes when this reaches zero; counting gated items would deadlock the
// synchronous barrier (step-k executions would never report termination
// while step-k+1 items wait behind the gate).
func (q *Queue) EligibleLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, step := range q.steps {
		if step > q.gate {
			break
		}
		for _, g := range q.bucket[step] {
			if !g.taken && g.minStep == step {
				n += len(g.Items)
			}
		}
	}
	return n
}

// Close wakes all blocked Pops; they drain remaining eligible work and then
// return false.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
