// Package sched implements the per-server request scheduler of §V-B,
// generalized to a server-wide, two-level queue that multiplexes every
// concurrent traversal over one bounded worker pool. Incoming traversal
// requests are buffered locally (the server acknowledges its ancestor
// before processing, so ancestors finish asynchronously); the server's
// worker pool drains the queue under three cooperating policies:
//
//   - traversal scheduling (level 1, across traversals): workers pick the
//     traversal that has been served the fewest requests so far — a
//     fair-share policy — breaking ties toward the oldest traversal so
//     stragglers drain instead of starving behind a stream of newcomers;
//   - execution scheduling (level 2, within a traversal): workers take the
//     request with the smallest step id, so slow steps catch up and the
//     spread between the fastest and slowest in-flight step stays bounded
//     (which also bounds traversal-affiliate cache pressure);
//   - execution merging (level 2): requests for the same vertex — across
//     different steps of the same traversal — are coalesced into one group
//     served by a single disk access.
//
// The level-2 policies are independently switchable per traversal so the
// benchmarks can ablate them, and a per-traversal step gate turns a
// traversal's sub-queue into the synchronous engine's barrier buffer.
// Admission control bounds the total buffered items across all traversals
// (Push fails with ErrBackpressure), and dropping a traversal evicts its
// pending groups without processing them.
package sched

import (
	"errors"
	"math"
	"sync"
	"time"

	"graphtrek/internal/model"
)

// ErrBackpressure is returned by Push when admitting a batch would exceed
// the queue's depth limit. The engine surfaces it as a traversal-level
// error the client can retry once load subsides.
var ErrBackpressure = errors.New("sched: server queue depth limit exceeded (backpressure)")

// Accumulator tracks the unprocessed items of one traversal execution. The
// scheduler never inspects it beyond carrying it with each item; the engine
// implements it with per-mode completion behaviour.
type Accumulator interface {
	// ItemDone marks one of the accumulator's items processed and reports
	// whether it was the last one.
	ItemDone() bool
}

// Item is one buffered traversal request: visit Vertex on behalf of Step,
// carrying the rtn() provenance tag (Anc, AncStep, Dest) and the
// accumulator of the execution that owns it.
type Item struct {
	Travel  uint64
	Step    int32
	Vertex  model.VertexID
	Anc     model.VertexID
	AncStep int32
	Dest    int32
	Exec    Accumulator
	// Enqueued is stamped by Push on admission. It attributes queue wait to
	// the individual request: merging can fold late arrivals into a group
	// whose head enqueued much earlier, so the group-level timestamp alone
	// would overstate their wait.
	Enqueued time.Time
}

// Group is the unit a worker processes: one vertex of one traversal, with
// every request currently merged onto it. Without merging a group holds
// exactly one item.
type Group struct {
	Travel uint64
	Vertex model.VertexID
	Items  []Item
	// Enqueued is when the group's first item arrived; the executor derives
	// its enqueue→pop wait metric from it.
	Enqueued time.Time
	// Popped is when a worker took the group — stamped by Pop, so wait and
	// per-phase span attribution downstream share one clock read instead of
	// each call site sampling its own.
	Popped time.Time
}

// Options selects a traversal's level-2 policies.
type Options struct {
	// Priority pops smallest-step groups first (execution scheduling).
	Priority bool
	// Merge coalesces same-vertex requests into one group.
	Merge bool
	// Gated holds back items whose step exceeds the released gate — the
	// synchronous engine's barrier. Ungated traversals admit every step.
	Gated bool
}

type groupKey struct {
	travel uint64
	vertex model.VertexID
}

type group struct {
	Group
	minStep int32
	seq     uint64
	taken   bool
}

// travelQueue is one traversal's sub-queue. All fields are guarded by the
// owning Multi's mutex.
type travelQueue struct {
	travel  uint64
	opts    Options
	gate    int32
	arrival uint64 // registration order — the fair-share tie-break
	served  int    // items handed to workers so far — the fair-share key
	seq     uint64
	byKey   map[groupKey]*group // only when merging
	bucket  map[int32][]*group  // step -> groups in arrival order
	steps   []int32             // sorted distinct step ids with buckets
	size    int                 // buffered items
}

// Multi is the server-wide two-level queue. All methods are safe for
// concurrent use.
type Multi struct {
	mu        sync.Mutex
	cond      *sync.Cond
	maxDepth  int // admission bound on buffered items; 0 = unbounded
	travels   map[uint64]*travelQueue
	arrival   uint64
	size      int // buffered items across all traversals
	highWater int
	closed    bool
}

// NewMulti creates the server's queue. maxDepth bounds the total buffered
// items across all traversals (admission control); zero or negative means
// unbounded.
func NewMulti(maxDepth int) *Multi {
	if maxDepth < 0 {
		maxDepth = 0
	}
	m := &Multi{maxDepth: maxDepth, travels: make(map[uint64]*travelQueue)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Register creates the traversal's sub-queue with the given policies. A
// gated traversal starts with gate 0 (only step-0 items eligible).
// Re-registering an existing traversal is a no-op.
func (m *Multi) Register(travel uint64, opts Options) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.travels[travel] != nil {
		return
	}
	t := &travelQueue{
		travel:  travel,
		opts:    opts,
		arrival: m.arrival,
		byKey:   make(map[groupKey]*group),
		bucket:  make(map[int32][]*group),
	}
	m.arrival++
	if !opts.Gated {
		t.gate = math.MaxInt32
	}
	m.travels[travel] = t
}

// Drop evicts a traversal: its pending groups are discarded unprocessed —
// a dead traversal's queued work must not occupy workers — and subsequent
// pushes for it are dropped. Returns the number of evicted items.
func (m *Multi) Drop(travel uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.travels[travel]
	if !ok {
		return 0
	}
	delete(m.travels, travel)
	m.size -= t.size
	return t.size
}

// Push buffers items for their traversal, enforcing the depth limit as
// all-or-nothing admission per batch. It returns the resulting total queue
// depth. Pushing to a closed queue or an unregistered (dropped) traversal
// silently discards the items, mirroring message delivery to a finished
// traversal.
func (m *Multi) Push(items []Item) (int, error) {
	if len(items) == 0 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.size, nil
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.size, nil
	}
	t, ok := m.travels[items[0].Travel]
	if !ok {
		return m.size, nil
	}
	if m.maxDepth > 0 && m.size+len(items) > m.maxDepth {
		return m.size, ErrBackpressure
	}
	for i := range items {
		it := items[i]
		it.Enqueued = now
		m.size++
		t.size++
		if t.opts.Merge {
			k := groupKey{it.Travel, it.Vertex}
			if g, ok := t.byKey[k]; ok && !g.taken {
				g.Items = append(g.Items, it)
				if it.Step < g.minStep {
					// Move the group down to the new step's bucket; the
					// stale slot in the old bucket is skipped lazily.
					g.minStep = it.Step
					t.addToBucket(g)
				}
				continue
			}
			g := t.newGroup(it, now)
			t.byKey[k] = g
			t.addToBucket(g)
			continue
		}
		t.addToBucket(t.newGroup(it, now))
	}
	if m.size > m.highWater {
		m.highWater = m.size
	}
	m.cond.Broadcast()
	return m.size, nil
}

func (t *travelQueue) newGroup(it Item, now time.Time) *group {
	g := &group{
		Group:   Group{Travel: it.Travel, Vertex: it.Vertex, Items: []Item{it}, Enqueued: now},
		minStep: it.Step,
		seq:     t.seq,
	}
	t.seq++
	return g
}

func (t *travelQueue) addToBucket(g *group) {
	step := g.minStep
	if _, ok := t.bucket[step]; !ok {
		t.insertStep(step)
	}
	t.bucket[step] = append(t.bucket[step], g)
}

func (t *travelQueue) insertStep(step int32) {
	i := 0
	for i < len(t.steps) && t.steps[i] < step {
		i++
	}
	t.steps = append(t.steps, 0)
	copy(t.steps[i+1:], t.steps[i:])
	t.steps[i] = step
	if _, ok := t.bucket[step]; !ok {
		t.bucket[step] = nil
	}
}

// Pop blocks until some traversal has an eligible group (its smallest step
// is within that traversal's gate) and returns it under the two-level
// policy. The second result is false once the queue is closed and drained
// of eligible work.
func (m *Multi) Pop() (Group, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if g := m.popLocked(); g != nil {
			return g.Group, true
		}
		if m.closed {
			return Group{}, false
		}
		m.cond.Wait()
	}
}

// popLocked runs the two-level selection: level 1 picks the least-served
// traversal with eligible work (ties to the oldest), level 2 picks that
// traversal's group under its own policy.
func (m *Multi) popLocked() *group {
	var best *travelQueue
	var bestG *group
	for _, t := range m.travels {
		g := t.peek()
		if g == nil {
			continue
		}
		if best == nil || t.served < best.served ||
			(t.served == best.served && t.arrival < best.arrival) {
			best, bestG = t, g
		}
	}
	if best == nil {
		return nil
	}
	best.take(bestG)
	best.served += len(bestG.Items)
	m.size -= len(bestG.Items)
	bestG.Popped = time.Now()
	return bestG
}

// peek selects the traversal's next group under its policy without removing
// it, trimming stale bucket slots left by merges that moved a group. The
// returned group is the head of its minStep bucket.
func (t *travelQueue) peek() *group {
	var best *group
	for _, step := range t.steps {
		if step > t.gate {
			break
		}
		list := t.bucket[step]
		// Trim stale heads (taken, or relocated to another bucket).
		i := 0
		for i < len(list) && (list[i].taken || list[i].minStep != step) {
			i++
		}
		if i > 0 {
			list = list[i:]
			t.bucket[step] = list
		}
		if len(list) == 0 {
			continue
		}
		head := list[0]
		if t.opts.Priority {
			return head // smallest eligible step wins
		}
		if best == nil || head.seq < best.seq {
			best = head
		}
	}
	return best
}

// take removes a group returned by peek from its bucket.
func (t *travelQueue) take(g *group) {
	t.bucket[g.minStep] = t.bucket[g.minStep][1:]
	g.taken = true
	if t.opts.Merge {
		delete(t.byKey, groupKey{g.Travel, g.Vertex})
	}
	t.size -= len(g.Items)
}

// Release raises a traversal's gate so items up to and including step
// become eligible. It is a no-op on ungated or unknown traversals and
// never lowers the gate.
func (m *Multi) Release(travel uint64, step int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.travels[travel]
	if !ok || !t.opts.Gated || step <= t.gate {
		return
	}
	t.gate = step
	m.cond.Broadcast()
}

// Gate returns a traversal's current gate (MaxInt32 when ungated or
// unknown).
func (m *Multi) Gate(travel uint64) int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.travels[travel]; ok {
		return t.gate
	}
	return math.MaxInt32
}

// Len reports the number of buffered items across all traversals.
func (m *Multi) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.size
}

// HighWater reports the maximum queue depth observed since creation.
func (m *Multi) HighWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.highWater
}

// EligibleLen reports the number of a traversal's buffered items whose step
// is within its gate — the items a worker could pop right now. The engine
// flushes a traversal's outboxes when this reaches zero; counting gated
// items would deadlock the synchronous barrier (step-k executions would
// never report termination while step-k+1 items wait behind the gate).
func (m *Multi) EligibleLen(travel uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.travels[travel]
	if !ok {
		return 0
	}
	n := 0
	for _, step := range t.steps {
		if step > t.gate {
			break
		}
		for _, g := range t.bucket[step] {
			if !g.taken && g.minStep == step {
				n += len(g.Items)
			}
		}
	}
	return n
}

// Close wakes all blocked Pops; they drain remaining eligible work and then
// return false.
func (m *Multi) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}
