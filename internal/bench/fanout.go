package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"graphtrek/internal/gstore"
	"graphtrek/internal/kv"
	"graphtrek/internal/model"
	"graphtrek/internal/wire"
)

// Fanout gates the PR's frontier data path: interned dense ids + packed
// adjacency runs + the columnar v2 frame versus the pre-refactor shape
// (full edge decode off the kv store, row-major v1 frames, a fresh buffer
// per batch). Both variants do the same logical work — expand every source
// vertex's out-edges and serialize the resulting frontier batch — on the
// same on-disk store, so the measured deltas are the refactor's:
//
//   - legacy/v1: Store.ScanEdges decodes each edge's key and property
//     block, collects destinations into a fresh slice, and encodes a v1
//     frame into a fresh buffer (24 fixed bytes per entry).
//   - packed/v2: CachedGraph.ScanEdgeIDs walks the warm packed []uint64
//     adjacency run, reuses the entry scratch across batches, and encodes
//     a delta-varint v2 frame into a pooled buffer (1-2 bytes per entry on
//     the dense interned ids the dictionary allocates).
//
// The report gates CI on the headline claims: >= 3x frontier throughput
// (vertices/sec) and >= 2x fewer wire bytes per vertex, plus payload
// equivalence (the v2 frame decodes to the same frontier the v1 frame
// carries) and a near-zero steady-state allocation rate on the pooled path.
func Fanout(s Scale, w io.Writer, rep *ExperimentResult) error {
	sources := s.MetaVertices / 4
	if sources < 256 {
		sources = 256
	}
	fanout := 4 * s.RMATDeg
	if fanout < 16 {
		fanout = 16
	}
	const rounds = 5
	fmt.Fprintf(w, "FANOUT — %d sources × %d edges, %d rounds, kv-backed store (scale=%s)\n",
		sources, fanout, rounds, s.Name)

	dir, err := os.MkdirTemp("", "graphtrek-fanout")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := gstore.Open(dir, kv.Options{})
	if err != nil {
		return err
	}
	defer st.Close()

	// Dictionary-shaped ids: sources are partition 0's dense allocations,
	// destinations partition 1's, so the id columns exercise exactly the
	// runs the interner produces.
	srcs := make([]model.VertexID, sources)
	for i := range srcs {
		srcs[i] = model.InternedID(0, uint64(i))
		for j := 0; j < fanout; j++ {
			dst := model.InternedID(1, uint64(i*fanout+j))
			if err := st.PutEdge(model.Edge{Src: srcs[i], Dst: dst, Label: "link"}); err != nil {
				return err
			}
		}
	}
	if err := st.Flush(); err != nil {
		return err
	}

	// --- legacy/v1: full edge decode, fresh slices and buffers per batch.
	var sampleV1 []byte
	legacy, err := measureFanout(srcs, rounds, func(src model.VertexID) (int, int, error) {
		var dsts []model.VertexID
		err := st.ScanEdges(src, "link", func(e model.Edge) bool {
			dsts = append(dsts, e.Dst)
			return true
		})
		if err != nil {
			return 0, 0, err
		}
		m := wire.Message{Kind: wire.KindVisitReq, TravelID: 1, Step: 1,
			Entries: make([]wire.Entry, len(dsts))}
		for i, d := range dsts {
			m.Entries[i] = wire.Entry{Vertex: d, Anc: src}
		}
		b := wire.AppendV1(nil, &m)
		if sampleV1 == nil {
			sampleV1 = b
		}
		return len(dsts), len(b), nil
	})
	if err != nil {
		return err
	}
	legacy.series = "legacy/v1"

	// --- packed/v2: warm packed adjacency, pooled buffers, reused scratch.
	cg := gstore.NewCachedGraph(st, 64<<20)
	for _, src := range srcs { // warm pass builds the packed runs
		if err := cg.ScanEdgeIDs(src, "link", func(model.VertexID) bool { return true }); err != nil {
			return err
		}
	}
	var pool sync.Pool // holds *[]byte, mirroring the transport's framePool
	ids := make([]model.VertexID, 0, fanout)
	entries := make([]wire.Entry, 0, fanout)
	var sampleV2 []byte
	packed, err := measureFanout(srcs, rounds, func(src model.VertexID) (int, int, error) {
		ids = ids[:0]
		err := cg.ScanEdgeIDs(src, "link", func(id model.VertexID) bool {
			ids = append(ids, id)
			return true
		})
		if err != nil {
			return 0, 0, err
		}
		entries = entries[:0]
		for _, d := range ids {
			entries = append(entries, wire.Entry{Vertex: d, Anc: src})
		}
		m := wire.Message{Kind: wire.KindVisitReq, TravelID: 1, Step: 1, Entries: entries}
		var buf []byte
		if p, ok := pool.Get().(*[]byte); ok {
			buf = (*p)[:0]
		}
		b := wire.Append(buf, &m)
		n := len(b)
		if sampleV2 == nil {
			sampleV2 = append([]byte(nil), b...)
		}
		pool.Put(&b)
		return len(ids), n, nil
	})
	if err != nil {
		return err
	}
	packed.series = "packed/v2"

	fmt.Fprintf(w, "%-12s%14s%16s%16s%14s\n", "Series", "Elapsed", "Vertices/sec", "Bytes/vertex", "Allocs/op")
	for _, r := range []fanoutResult{legacy, packed} {
		fmt.Fprintf(w, "%-12s%14s%16.0f%16.2f%14.2f\n",
			r.series, fmtDur(r.elapsed), r.verticesPerSec(), r.bytesPerVertex(), r.allocsPerOp())
		rep.AddRow(Row{Series: r.series, Runs: rounds, ElapsedNs: int64(r.elapsed),
			Vertices: r.vertices, WireBytes: r.bytes, AllocsPerOp: int64(r.allocsPerOp() + 0.5)})
	}

	speedup := packed.verticesPerSec() / legacy.verticesPerSec()
	shrink := legacy.bytesPerVertex() / packed.bytesPerVertex()
	rep.AddCheck("fanout-throughput-3x", speedup >= 3,
		"packed %0.f vs legacy %0.f vertices/sec (%.2fx, need >= 3x)",
		packed.verticesPerSec(), legacy.verticesPerSec(), speedup)
	rep.AddCheck("fanout-wire-2x", shrink >= 2,
		"legacy %.2f vs packed %.2f bytes/vertex (%.2fx, need >= 2x)",
		legacy.bytesPerVertex(), packed.bytesPerVertex(), shrink)
	rep.AddCheck("fanout-alloc-reuse", packed.allocsPerOp() < legacy.allocsPerOp(),
		"packed %.2f vs legacy %.2f allocs/op", packed.allocsPerOp(), legacy.allocsPerOp())

	// Payload equivalence: the two codecs carry the same frontier.
	m1, err := wire.DecodeV1(sampleV1)
	if err != nil {
		return fmt.Errorf("bench: fanout v1 sample: %w", err)
	}
	m2, err := wire.Decode(sampleV2)
	if err != nil {
		return fmt.Errorf("bench: fanout v2 sample: %w", err)
	}
	same := len(m1.Entries) == len(m2.Entries)
	for i := 0; same && i < len(m1.Entries); i++ {
		same = m1.Entries[i] == m2.Entries[i]
	}
	rep.AddCheck("fanout-equivalence", same,
		"v1 sample carries %d entries, v2 %d", len(m1.Entries), len(m2.Entries))
	fmt.Fprintf(w, "throughput %.2fx (gate 3x), wire %.2fx (gate 2x)\n", speedup, shrink)
	return nil
}

type fanoutResult struct {
	series   string
	elapsed  time.Duration
	vertices int64
	bytes    int64
	ops      int64
	mallocs  uint64
}

func (r fanoutResult) verticesPerSec() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.vertices) / r.elapsed.Seconds()
}

func (r fanoutResult) bytesPerVertex() float64 {
	if r.vertices == 0 {
		return 0
	}
	return float64(r.bytes) / float64(r.vertices)
}

func (r fanoutResult) allocsPerOp() float64 {
	if r.ops == 0 {
		return 0
	}
	return float64(r.mallocs) / float64(r.ops)
}

// measureFanout drives op over every source for the given number of rounds
// and returns the aggregate timing, payload and heap-allocation counts.
func measureFanout(srcs []model.VertexID, rounds int, op func(model.VertexID) (verts, bytes int, err error)) (fanoutResult, error) {
	var r fanoutResult
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for round := 0; round < rounds; round++ {
		for _, src := range srcs {
			v, b, err := op(src)
			if err != nil {
				return r, err
			}
			r.vertices += int64(v)
			r.bytes += int64(b)
			r.ops++
		}
	}
	r.elapsed = time.Since(start)
	runtime.ReadMemStats(&ms1)
	r.mallocs = ms1.Mallocs - ms0.Mallocs
	return r, nil
}
