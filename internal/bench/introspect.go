package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"

	"graphtrek"
	"graphtrek/internal/metrics"
	"graphtrek/internal/obs"
	"graphtrek/internal/status"
)

// ExpositionOut, when non-empty, makes the smoke experiment write the raw
// /metrics Prometheus exposition it scraped to this path
// (graphtrek-bench -exposition). CI validates the dump with
// scripts/validate_bench.py --exposition.
var ExpositionOut string

// StatusOut, when non-empty, makes the smoke experiment write the raw
// /status JSON document it scraped to this path (graphtrek-bench -status).
var StatusOut string

// histNames are the native latency histograms the smoke gate requires on
// /metrics, matching metrics.Histograms().
var histNames = []string{
	"graphtrek_travel_latency_seconds",
	"graphtrek_queue_wait_seconds",
	"graphtrek_step_compute_seconds",
	"graphtrek_quorum_write_seconds",
	"graphtrek_feed_lag_seconds",
}

// parseExposition reads the Prometheus text format into values keyed by
// metric name, then series key: "" for an unlabeled series, the server id
// for {server="N"}, and "N|<le>" for {server="N",le="<le>"}.
func parseExposition(body string) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name, key, valStr string
		if labeled, rest, ok := strings.Cut(line, "} "); ok {
			valStr = rest
			var labels string
			name, labels, ok = strings.Cut(labeled, "{")
			if !ok {
				return nil, fmt.Errorf("bad exposition line %q", line)
			}
			srv, le := "", ""
			for _, kv := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("bad label %q in %q", kv, line)
				}
				switch v = strings.Trim(v, `"`); k {
				case "server":
					srv = v
				case "le":
					le = v
				default:
					return nil, fmt.Errorf("unexpected label %q in %q", k, line)
				}
			}
			key = srv
			if le != "" {
				key = srv + "|" + le
			}
		} else {
			var ok bool
			name, valStr, ok = strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("bad exposition line %q", line)
			}
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		if out[name] == nil {
			out[name] = make(map[string]float64)
		}
		out[name][key] = val
	}
	return out, nil
}

// smokeIntrospection is the smoke experiment's observability leg: it
// scrapes /metrics, /status and /readyz from an obs mux over the live
// cluster and gates on the exposition invariants — every native histogram
// present with monotone cumulative buckets, the histogram _count series
// cross-checked against the plain counters that pin them, and a parseable,
// ready status document. The raw scrapes are optionally dumped for the
// out-of-process validator.
func smokeIntrospection(c *graphtrek.Cluster, w io.Writer, rep *ExperimentResult) error {
	targets := make([]obs.Target, c.Servers())
	for i := range targets {
		targets[i] = c.Server(i)
	}
	mux := obs.NewMux(targets...)
	scrape := func(path string) (string, int) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Body.String(), rec.Code
	}

	body, code := scrape("/metrics")
	if code != 200 {
		return fmt.Errorf("bench: smoke introspection: /metrics returned %d", code)
	}
	vals, err := parseExposition(body)
	if err != nil {
		return fmt.Errorf("bench: smoke introspection: %w", err)
	}
	les := make([]string, 0, len(metrics.DefaultLadderNs)+1)
	for _, ns := range metrics.DefaultLadderNs {
		les = append(les, strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64))
	}
	les = append(les, "+Inf")
	monotone, complete := true, true
	var badDetail string
	for _, name := range histNames {
		buckets, counts := vals[name+"_bucket"], vals[name+"_count"]
		for i := 0; i < c.Servers(); i++ {
			srv := strconv.Itoa(i)
			prev := -1.0
			for _, le := range les {
				v, ok := buckets[srv+"|"+le]
				if !ok {
					complete = false
					badDetail = fmt.Sprintf("%s missing bucket le=%q for server %s", name, le, srv)
					continue
				}
				if v < prev {
					monotone = false
					badDetail = fmt.Sprintf("%s server %s: bucket le=%q = %v < %v", name, srv, le, v, prev)
				}
				prev = v
			}
			if inf, cnt := buckets[srv+"|+Inf"], counts[srv]; inf != cnt {
				complete = false
				badDetail = fmt.Sprintf("%s server %s: +Inf bucket %v != _count %v", name, srv, inf, cnt)
			}
		}
	}
	rep.AddCheck("histogram-buckets-complete", complete, "%s", badDetail)
	rep.AddCheck("histogram-le-monotone", monotone, "%s", badDetail)

	// Count pins: one end-to-end sample per coordinator-ledgered traversal
	// (5 server-side engines x 3 runs + the traced run; the client-side
	// engine keeps no coordinator ledger), and one queue-wait plus one
	// step-compute sample per popped executor group on every server.
	var travels float64
	crossOK := true
	var crossDetail string
	for i := 0; i < c.Servers(); i++ {
		srv := strconv.Itoa(i)
		travels += vals["graphtrek_travel_latency_seconds_count"][srv]
		groups := vals["graphtrek_queue_groups_total"][srv]
		if got := vals["graphtrek_queue_wait_seconds_count"][srv]; got != groups {
			crossOK = false
			crossDetail = fmt.Sprintf("server %s: queue_wait count %v != queue_groups_total %v", srv, got, groups)
		}
		if got := vals["graphtrek_step_compute_seconds_count"][srv]; got != groups {
			crossOK = false
			crossDetail = fmt.Sprintf("server %s: step_compute count %v != queue_groups_total %v", srv, got, groups)
		}
	}
	const wantTravels = 16
	rep.AddCheck("histogram-travel-count", travels == wantTravels,
		"travel_latency count %v across the cluster, want %d", travels, wantTravels)
	rep.AddCheck("histogram-count-crosscheck", crossOK, "%s", crossDetail)

	stBody, code := scrape("/status")
	if code != 200 {
		return fmt.Errorf("bench: smoke introspection: /status returned %d", code)
	}
	var docs []status.Server
	if err := json.Unmarshal([]byte(stBody), &docs); err != nil {
		return fmt.Errorf("bench: smoke introspection: /status is not JSON: %w", err)
	}
	allReady := len(docs) == c.Servers()
	for _, d := range docs {
		allReady = allReady && d.Ready
	}
	rep.AddCheck("status-ready", allReady, "%d status documents (want %d), readiness %v",
		len(docs), c.Servers(), func() []bool {
			r := make([]bool, len(docs))
			for i, d := range docs {
				r[i] = d.Ready
			}
			return r
		}())
	_, code = scrape("/readyz")
	rep.AddCheck("readyz-200", code == 200, "/readyz returned %d on a healthy cluster", code)

	fmt.Fprintf(w, "introspection: %d histograms scraped, travel_latency count %v, %d status documents, /readyz %d\n",
		len(histNames), travels, len(docs), code)
	if ExpositionOut != "" {
		if err := os.WriteFile(ExpositionOut, []byte(body), 0o644); err != nil {
			return fmt.Errorf("bench: exposition dump: %w", err)
		}
		fmt.Fprintf(w, "metrics exposition written to %s\n", ExpositionOut)
	}
	if StatusOut != "" {
		if err := os.WriteFile(StatusOut, []byte(stBody), 0o644); err != nil {
			return fmt.Errorf("bench: status dump: %w", err)
		}
		fmt.Fprintf(w, "status document written to %s\n", StatusOut)
	}
	return nil
}
