package bench

import (
	"fmt"
	"io"
	"time"

	"graphtrek"
	"graphtrek/internal/core"
	"graphtrek/internal/events"
	"graphtrek/internal/gstore"
	"graphtrek/internal/property"
)

// Failover gates the replication subsystem end to end: quorum writes on a
// replicated cluster, a primary kill, follower promotion under a fresh
// epoch, zero lost acknowledged writes, traversal equivalence across the
// failover, and an online shard handoff onto a live server. Every gate is
// a pass/fail check in the -json report, so CI fails if any invariant
// regresses. Measurements (load throughput, promotion latency, handoff
// duration) are recorded as rows for trend tracking.
func Failover(s Scale, w io.Writer, rep *ExperimentResult) error {
	const (
		servers      = 3
		rf           = 2
		users        = 96
		filesPerUser = 3
	)
	hb := 50 * time.Millisecond
	suspectAfter := 3 * hb
	fmt.Fprintf(w, "FAILOVER — %d servers, RF=%d, heartbeat %v: kill a primary, verify promotion, durability and handoff (scale=%s)\n",
		servers, rf, hb, s.Name)
	c, err := graphtrek.NewCluster(graphtrek.Options{
		Servers:           servers,
		ReplicationFactor: rf,
		HeartbeatInterval: hb,
		SuspectAfter:      suspectAfter,
		DiskService:       s.DiskService,
		DiskParallelism:   s.DiskParallelism,
		TravelTimeout:     time.Minute,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// Load the workload through the quorum write path itself: users 1..N,
	// each running filesPerUser files. Every acknowledged mutation is the
	// durability contract the kill below must not break.
	var muts []gstore.Mutation
	var allIDs []graphtrek.VertexID
	nextFile := graphtrek.VertexID(10_000)
	for u := 1; u <= users; u++ {
		id := graphtrek.VertexID(u)
		allIDs = append(allIDs, id)
		muts = append(muts, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: graphtrek.Vertex{
			ID: id, Label: "User", Props: property.Map{"u": property.Int(int64(u))}}})
		for f := 0; f < filesPerUser; f++ {
			fid := nextFile
			nextFile++
			allIDs = append(allIDs, fid)
			muts = append(muts, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: graphtrek.Vertex{
				ID: fid, Label: "File"}})
			muts = append(muts, gstore.Mutation{Op: gstore.OpPutEdge, Edge: graphtrek.Edge{
				Src: id, Dst: fid, Label: "run"}})
		}
	}
	loadStart := time.Now()
	for i := 0; i < len(muts); i += 128 {
		end := i + 128
		if end > len(muts) {
			end = len(muts)
		}
		if err := c.Write(muts[i:end], core.WriteOptions{}); err != nil {
			return fmt.Errorf("bench: failover: quorum load: %w", err)
		}
	}
	loadDur := time.Since(loadStart)
	fmt.Fprintf(w, "quorum-acknowledged %d mutations in %s\n", len(muts), fmtDur(loadDur))
	rep.AddRow(Row{Series: "quorum-load", Servers: servers, ElapsedNs: int64(loadDur), Results: len(muts)})

	plan, err := graphtrek.VLabel("User").E("run").Compile()
	if err != nil {
		return err
	}
	baseline, err := c.RunPlan(plan, core.SubmitOptions{Mode: core.ModeGraphTrek, Coordinator: -1, Timeout: time.Minute})
	if err != nil {
		return fmt.Errorf("bench: failover: baseline traversal: %w", err)
	}
	rep.AddCheck("baseline-results", len(baseline) == users*filesPerUser,
		"baseline traversal returned %d results, want %d", len(baseline), users*filesPerUser)

	// Kill the primary of the partition owning user 1. Its sole follower
	// holds every acknowledged write (quorum 2 of 2), so promotion must
	// lose nothing.
	view := c.ClientRouteView()
	p0 := view.Partition(1)
	victim := int(view.Assignment(p0).Primary)
	coord := 0
	for coord == victim {
		coord++
	}
	killAt := time.Now()
	c.KillServer(victim)
	var promoDur time.Duration
	for deadline := time.Now().Add(15 * time.Second); ; {
		var promos int64
		for i := 0; i < servers; i++ {
			if i != victim {
				promos += c.Server(i).Metrics().Promotions
			}
		}
		if promos >= 1 {
			promoDur = time.Since(killAt)
			break
		}
		if time.Now().After(deadline) {
			rep.AddCheck("promotion", false, "no follower promoted within 15s of killing server %d", victim)
			return fmt.Errorf("bench: failover: no promotion within 15s of killing server %d", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rep.AddCheck("promotion", true, "")
	// Detection costs up to SuspectAfter plus a detector scan; the rest is
	// promotion and gossip. The wide margin absorbs CI scheduling noise.
	budget := suspectAfter + 10*hb
	rep.AddCheck("promotion-latency", promoDur <= budget,
		"promotion took %s, budget %s", fmtDur(promoDur), fmtDur(budget))
	rep.AddRow(Row{Series: "promotion", Servers: servers, ElapsedNs: int64(promoDur)})
	fmt.Fprintf(w, "killed server %d (primary of partition %d); promotion after %s (budget %s)\n",
		victim, p0, fmtDur(promoDur), fmtDur(budget))

	// Wait for the client's route view to converge off the dead primary,
	// then check durability: every acknowledged vertex must be on its
	// partition's current primary.
	for deadline := time.Now().Add(10 * time.Second); ; {
		stale := false
		for p := 0; p < view.Parts(); p++ {
			stale = stale || int(view.Assignment(p).Primary) == victim
		}
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: failover: client route view still names server %d as a primary after 10s", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	lost := 0
	for _, id := range allIDs {
		prim := int(view.Assignment(view.Partition(id)).Primary)
		if _, ok, err := c.Store(prim).GetVertex(id); err != nil || !ok {
			lost++
		}
	}
	rep.AddCheck("no-lost-acked-writes", lost == 0,
		"%d of %d acknowledged vertices missing from their current primaries", lost, len(allIDs))

	// The same traversal must return the same result set once routing has
	// converged; transient windows (suspicion raised, promotion pending)
	// surface as retryable errors, never as silently truncated results.
	var after []graphtrek.VertexID
	for deadline := time.Now().Add(15 * time.Second); ; {
		after, err = c.RunPlan(plan, core.SubmitOptions{
			Mode: core.ModeGraphTrek, Coordinator: coord, Timeout: 10 * time.Second, Retries: 2})
		if err == nil {
			break
		}
		if !core.Retryable(err) || time.Now().After(deadline) {
			return fmt.Errorf("bench: failover: post-failover traversal: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	equal := len(after) == len(baseline)
	for i := 0; equal && i < len(after); i++ {
		equal = after[i] == baseline[i]
	}
	rep.AddCheck("failover-equivalence", equal,
		"%d results after failover vs %d before", len(after), len(baseline))
	fmt.Fprintf(w, "post-failover traversal: %d results (baseline %d)\n", len(after), len(baseline))

	// Quorum writes must resume against the promoted primary.
	marker := graphtrek.VertexID(1_000_000)
	for view.Partition(marker) != p0 {
		marker++
	}
	if err := c.Write([]gstore.Mutation{{Op: gstore.OpPutVertex, Vertex: graphtrek.Vertex{
		ID: marker, Label: "Marker"}}}, core.WriteOptions{Timeout: 10 * time.Second}); err != nil {
		return fmt.Errorf("bench: failover: post-failover write: %w", err)
	}
	newPrim := int(view.Assignment(p0).Primary)
	_, onNew, err := c.Store(newPrim).GetVertex(marker)
	rep.AddCheck("post-failover-write", err == nil && onNew,
		"marker vertex %d on promoted primary %d: %v", marker, newPrim, onNew)

	// The merged cluster event journal — pulled over the wire from every
	// surviving server, exactly as gtq -events does — must show the
	// promotion of partition p0 by the new primary, fenced at the epoch the
	// route view now publishes.
	epoch := view.Assignment(p0).Epoch
	evs, err := c.Client().ClusterEvents(10 * time.Second)
	if err != nil {
		return fmt.Errorf("bench: failover: cluster events: %w", err)
	}
	promoSeen := false
	for _, e := range evs {
		if e.Type == events.Promotion && e.Part == p0 && e.Server == newPrim && e.Epoch == epoch {
			promoSeen = true
		}
	}
	rep.AddCheck("promotion-event", promoSeen,
		"no promotion event for partition %d by server %d at epoch %d in the merged journal (%d events)",
		p0, newPrim, epoch, len(evs))
	fmt.Fprintf(w, "merged event journal: %d events; promotion of partition %d at epoch %d recorded: %v\n",
		len(evs), p0, epoch, promoSeen)

	// The new primary's status document — the gtq -status view — must agree:
	// it primaries p0 at that epoch with a committed, lag-free log covering
	// the post-failover write.
	sts, err := c.Client().ClusterStatus(10 * time.Second)
	if err != nil {
		return fmt.Errorf("bench: failover: cluster status: %w", err)
	}
	statusOK, statusDetail := false, fmt.Sprintf("no status document from server %d", newPrim)
	for _, st := range sts {
		if st.Server != newPrim {
			continue
		}
		statusDetail = fmt.Sprintf("server %d reports no row for partition %d", newPrim, p0)
		for _, p := range st.Partitions {
			if p.Part != p0 {
				continue
			}
			statusOK = p.Role == "primary" && p.Epoch == epoch && p.CommitSeq >= 1 && p.AppliedSeq >= p.CommitSeq
			statusDetail = fmt.Sprintf("partition %d on server %d: role %s epoch %d applied %d commit %d lag %d",
				p0, newPrim, p.Role, p.Epoch, p.AppliedSeq, p.CommitSeq, p.LagEntries)
		}
	}
	rep.AddCheck("status-new-primary", statusOK, "%s", statusDetail)
	fmt.Fprintf(w, "status: %s\n", statusDetail)

	// Online shard handoff: stream a partition onto a live server that
	// does not replicate it, restoring the replica count the kill cost us.
	joiner, joinPart := -1, -1
	for p := 0; p < view.Parts() && joiner < 0; p++ {
		a := view.Assignment(p)
		if int(a.Primary) == victim {
			continue
		}
		for srv := 0; srv < servers; srv++ {
			if srv != victim && !a.HasReplica(int32(srv)) {
				joiner, joinPart = srv, p
				break
			}
		}
	}
	if joiner < 0 {
		rep.AddCheck("handoff", false, "no live (server, partition) pair left to hand a shard to")
		return fmt.Errorf("bench: failover: no handoff candidate")
	}
	handStart := time.Now()
	if err := c.JoinPartition(joiner, joinPart); err != nil {
		return fmt.Errorf("bench: failover: join partition %d on server %d: %w", joinPart, joiner, err)
	}
	for deadline := time.Now().Add(15 * time.Second); ; {
		if view.Assignment(joinPart).HasReplica(int32(joiner)) {
			break
		}
		if time.Now().After(deadline) {
			rep.AddCheck("handoff", false,
				"server %d never published as a replica of partition %d", joiner, joinPart)
			return fmt.Errorf("bench: failover: handoff of partition %d to server %d did not converge", joinPart, joiner)
		}
		time.Sleep(2 * time.Millisecond)
	}
	handDur := time.Since(handStart)
	rep.AddCheck("handoff", true, "")
	handPrim := int(view.Assignment(joinPart).Primary)
	handBytes := c.Server(handPrim).Metrics().HandoffBytes
	rep.AddCheck("handoff-bytes", handBytes > 0,
		"primary %d reports %d snapshot bytes streamed", handPrim, handBytes)
	rep.AddRow(Row{Series: "handoff", Servers: servers, ElapsedNs: int64(handDur), Results: int(handBytes)})
	fmt.Fprintf(w, "handed partition %d to server %d in %s (%d snapshot bytes)\n",
		joinPart, joiner, fmtDur(handDur), handBytes)

	// The joiner is now in the write quorum: a fresh write to that
	// partition must land on it before the client sees the ack.
	marker2 := graphtrek.VertexID(2_000_000)
	for view.Partition(marker2) != joinPart {
		marker2++
	}
	if err := c.Write([]gstore.Mutation{{Op: gstore.OpPutVertex, Vertex: graphtrek.Vertex{
		ID: marker2, Label: "Marker"}}}, core.WriteOptions{Timeout: 10 * time.Second}); err != nil {
		return fmt.Errorf("bench: failover: post-handoff write: %w", err)
	}
	_, onJoiner, err := c.Store(joiner).GetVertex(marker2)
	rep.AddCheck("post-handoff-write", err == nil && onJoiner,
		"marker vertex %d on joiner %d after a quorum ack: %v", marker2, joiner, onJoiner)
	return nil
}
