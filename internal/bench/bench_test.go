package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// microScale runs every experiment in a few seconds, for CI.
func microScale() Scale {
	return Scale{
		Name: "micro", RMATScale: 7, RMATDeg: 4,
		DiskService: 0, DiskParallelism: 1,
		StragglerDelay: 500 * time.Microsecond, StragglerCount: 5,
		MetaVertices: 600,
		ServerCounts: []int{2, 4}, Fig11Runs: 1,
	}
}

func TestGetScaleVariants(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		t.Setenv("GRAPHTREK_SCALE", name)
		s := GetScale()
		want := name
		if name == "small" {
			// default falls through to small
		}
		if s.Name != want {
			t.Errorf("GRAPHTREK_SCALE=%s -> %s", name, s.Name)
		}
		if s.RMATScale < 7 || len(s.ServerCounts) == 0 {
			t.Errorf("scale %s degenerate: %+v", name, s)
		}
	}
	t.Setenv("GRAPHTREK_SCALE", "")
	if s := GetScale(); s.Name != "small" {
		t.Errorf("default scale = %s", s.Name)
	}
}

func TestEveryExperimentRunsAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in short mode")
	}
	wantText := map[string]string{
		"smoke":      "SMOKE",
		"table1":     "TABLE I",
		"fig7":       "FIGURE 7",
		"fig8":       "FIGURE 8",
		"fig9":       "FIGURE 9",
		"fig10":      "FIGURE 10",
		"fig11":      "FIGURE 11",
		"table2":     "TABLE II",
		"table3":     "TABLE III",
		"ablation":   "ABLATION",
		"concurrent": "CONCURRENT",
		"partition":  "PARTITION",
	}
	s := microScale()
	for _, name := range Order {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Experiments[name](s, &buf, nil); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !strings.Contains(buf.String(), wantText[name]) {
				t.Errorf("%s output missing header %q:\n%s", name, wantText[name], buf.String())
			}
		})
	}
}

func TestOrderCoversAllExperiments(t *testing.T) {
	if len(Order) != len(Experiments) {
		t.Fatalf("Order has %d entries, Experiments has %d", len(Order), len(Experiments))
	}
	for _, name := range Order {
		if Experiments[name] == nil {
			t.Errorf("experiment %q in Order but not registered", name)
		}
	}
}

func TestHopPlanShape(t *testing.T) {
	p, err := hopPlan(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSteps() != 4 {
		t.Errorf("steps = %d, want seed + 3 hops", p.NumSteps())
	}
	for i := 1; i < p.NumSteps(); i++ {
		if p.Steps[i].EdgeLabel != "link" {
			t.Errorf("step %d label = %q", i, p.Steps[i].EdgeLabel)
		}
	}
}

// TestSmokeReport runs the CI gate experiment with a live report and pins
// the JSON schema: the document round-trips, the schema version and scale
// are stamped, every engine contributes a row with latency percentiles, and
// all equivalence/invariant checks pass on a healthy engine.
func TestSmokeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke experiment in short mode")
	}
	s := microScale()
	rep := NewReport(s)
	var buf bytes.Buffer
	if err := Smoke(s, &buf, rep.Experiment("smoke")); err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("healthy engine failed the report:\n%+v", rep.Experiments[0].Checks)
	}
	if rep.Schema != ReportSchema || rep.Scale != "micro" || rep.GoVersion == "" || rep.StartedAt == "" {
		t.Errorf("report header = %+v", rep)
	}
	e := rep.Experiments[0]
	if len(e.Rows) != 6 {
		t.Fatalf("smoke rows = %d, want one per engine", len(e.Rows))
	}
	for _, row := range e.Rows {
		if row.Series == "" || row.P50Ns <= 0 || row.P95Ns < row.P50Ns || row.Results == 0 {
			t.Errorf("degenerate row %+v", row)
		}
		if row.Redundant+row.Combined+row.RealIO != row.Received {
			t.Errorf("row %s violates the accounting identity: %+v", row.Series, row)
		}
	}
	// One equivalence check per non-baseline engine, one invariant check per
	// engine.
	var equiv, inv int
	for _, c := range e.Checks {
		switch {
		case strings.HasPrefix(c.Name, "equivalence-"):
			equiv++
		case strings.HasPrefix(c.Name, "invariant-"):
			inv++
		}
	}
	if equiv != 5 || inv != 6 {
		t.Errorf("checks: %d equivalence, %d invariant: %+v", equiv, inv, e.Checks)
	}

	path := t.TempDir() + "/BENCH_smoke.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || len(back.Experiments) != 1 || len(back.Experiments[0].Rows) != len(e.Rows) {
		t.Errorf("report did not round-trip: %+v", back)
	}
	// The CI consumer keys on these exact field names; renaming one is a
	// schema bump.
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "scale", "go_version", "started_at", "experiments"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report JSON missing top-level %q", key)
		}
	}
}

// TestReportFailure pins the gate semantics: a failed check or a recorded
// runner error fails the report, and nil report/section recording is a
// no-op so human-only runs cost nothing.
func TestReportFailure(t *testing.T) {
	rep := NewReport(microScale())
	e := rep.Experiment("x")
	e.AddCheck("ok", true, "fine")
	if rep.Failed() {
		t.Error("report with passing checks reported failure")
	}
	e.AddCheck("bad", false, "broke")
	if !rep.Failed() {
		t.Error("failed check did not fail the report")
	}

	rep = NewReport(microScale())
	sect := rep.Experiment("y")
	sect.SetErr(errors.New("boom"))
	if !rep.Failed() {
		t.Error("recorded runner error did not fail the report")
	}
	sect.SetErr(nil)
	if sect.Err != "boom" {
		t.Errorf("SetErr(nil) overwrote the recorded error: %q", sect.Err)
	}

	var nilRep *Report
	sect = nilRep.Experiment("z")
	sect.AddRow(Row{Series: "m"})
	sect.AddCheck("c", false, "ignored")
	sect.SetErr(errors.New("ignored"))
	if nilRep.Failed() {
		t.Error("nil report reported failure")
	}
}

func TestFmtDur(t *testing.T) {
	if got := fmtDur(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(2500 * time.Microsecond); got != "2.5ms" {
		t.Errorf("fmtDur = %q", got)
	}
}
