package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// microScale runs every experiment in a few seconds, for CI.
func microScale() Scale {
	return Scale{
		Name: "micro", RMATScale: 7, RMATDeg: 4,
		DiskService: 0, DiskParallelism: 1,
		StragglerDelay: 500 * time.Microsecond, StragglerCount: 5,
		MetaVertices: 600,
		ServerCounts: []int{2, 4}, Fig11Runs: 1,
	}
}

func TestGetScaleVariants(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		t.Setenv("GRAPHTREK_SCALE", name)
		s := GetScale()
		want := name
		if name == "small" {
			// default falls through to small
		}
		if s.Name != want {
			t.Errorf("GRAPHTREK_SCALE=%s -> %s", name, s.Name)
		}
		if s.RMATScale < 7 || len(s.ServerCounts) == 0 {
			t.Errorf("scale %s degenerate: %+v", name, s)
		}
	}
	t.Setenv("GRAPHTREK_SCALE", "")
	if s := GetScale(); s.Name != "small" {
		t.Errorf("default scale = %s", s.Name)
	}
}

func TestEveryExperimentRunsAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in short mode")
	}
	wantText := map[string]string{
		"table1":     "TABLE I",
		"fig7":       "FIGURE 7",
		"fig8":       "FIGURE 8",
		"fig9":       "FIGURE 9",
		"fig10":      "FIGURE 10",
		"fig11":      "FIGURE 11",
		"table2":     "TABLE II",
		"table3":     "TABLE III",
		"ablation":   "ABLATION",
		"concurrent": "CONCURRENT",
		"partition":  "PARTITION",
	}
	s := microScale()
	for _, name := range Order {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Experiments[name](s, &buf); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !strings.Contains(buf.String(), wantText[name]) {
				t.Errorf("%s output missing header %q:\n%s", name, wantText[name], buf.String())
			}
		})
	}
}

func TestOrderCoversAllExperiments(t *testing.T) {
	if len(Order) != len(Experiments) {
		t.Fatalf("Order has %d entries, Experiments has %d", len(Order), len(Experiments))
	}
	for _, name := range Order {
		if Experiments[name] == nil {
			t.Errorf("experiment %q in Order but not registered", name)
		}
	}
}

func TestHopPlanShape(t *testing.T) {
	p, err := hopPlan(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSteps() != 4 {
		t.Errorf("steps = %d, want seed + 3 hops", p.NumSteps())
	}
	for i := 1; i < p.NumSteps(); i++ {
		if p.Steps[i].EdgeLabel != "link" {
			t.Errorf("step %d label = %q", i, p.Steps[i].EdgeLabel)
		}
	}
}

func TestFmtDur(t *testing.T) {
	if got := fmtDur(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(2500 * time.Microsecond); got != "2.5ms" {
		t.Errorf("fmtDur = %q", got)
	}
}
