package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"graphtrek"
	"graphtrek/internal/core"
	"graphtrek/internal/gen"
	"graphtrek/internal/model"
	"graphtrek/internal/partition"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
	"graphtrek/internal/simio"
)

// Table1 reproduces Table I: Sync-GT vs Async-GT vs GraphTrek on an 8-step
// RMAT-1 traversal across the server-count sweep. Paper reference (seconds,
// 2→32 servers): Sync 47.8/28.5/17.1/10.3/7.2; Async 63.7/33.1/20.6/12.1/
// 7.4; GraphTrek 45.2/22.5/13.4/8.3/5.6.
func Table1(s Scale, w io.Writer, rep *ExperimentResult) error {
	fmt.Fprintf(w, "TABLE I — 8-step traversal on RMAT-1 (scale=%s), elapsed per engine\n", s.Name)
	fmt.Fprintln(w, "paper shape: Async-GT slowest everywhere; GraphTrek < Sync-GT at every width")
	modes := []core.Mode{core.ModeSync, core.ModeAsyncPlain, core.ModeGraphTrek}
	printSweepHeader(w, modes)
	_, err := runSweep(s, 8, modes, nil, 1, w, rep)
	return err
}

// Fig7 reproduces Figure 7: the per-server breakdown of received vertex
// requests into real I/O, merge-combined and cache-redundant visits for an
// 8-step GraphTrek traversal on the widest server count.
func Fig7(s Scale, w io.Writer, rep *ExperimentResult) error {
	servers := s.ServerCounts[len(s.ServerCounts)-1]
	fmt.Fprintf(w, "FIGURE 7 — per-server visit breakdown, 8-step GraphTrek on %d servers (scale=%s)\n", servers, s.Name)
	c, seed, err := rmatCluster(s, servers, nil)
	if err != nil {
		return err
	}
	defer c.Close()
	plan, err := hopPlan(seed, 8)
	if err != nil {
		return err
	}
	before := c.ServerMetrics()
	if _, _, err := timeTraversal(c, plan, core.ModeGraphTrek); err != nil {
		return err
	}
	after := c.ServerMetrics()
	fmt.Fprintf(w, "%-8s%12s%12s%12s%12s\n", "Server", "RealIO", "Combined", "Redundant", "Received")
	var totals graphtrek.Metrics
	for i := range after {
		d := after[i].Sub(before[i])
		totals = totals.Add(d)
		fmt.Fprintf(w, "%-8d%12d%12d%12d%12d\n", i, d.RealIO, d.Combined, d.Redundant, d.Received)
		rep.AddRow(Row{Series: "server", Servers: i,
			Received: d.Received, Redundant: d.Redundant, Combined: d.Combined, RealIO: d.RealIO})
		rep.AddCheck(fmt.Sprintf("invariant-server-%d", i), d.Consistent(),
			"redundant %d + combined %d + real %d vs received %d", d.Redundant, d.Combined, d.RealIO, d.Received)
		if !d.Consistent() {
			return fmt.Errorf("bench: server %d accounting identity violated: %+v", i, d)
		}
	}
	fmt.Fprintf(w, "%-8s%12d%12d%12d%12d\n", "total", totals.RealIO, totals.Combined, totals.Redundant, totals.Received)
	fmt.Fprintf(w, "paper shape: redundant visits dominate received requests; combining is concentrated on the loaded servers\n")
	return nil
}

// FigSteps reproduces Figures 8, 9 and 10: Sync-GT vs GraphTrek elapsed
// time for 2-, 4- and 8-step traversals across server counts. Paper shape:
// Sync wins short traversals on few servers (Fig 8); GraphTrek's advantage
// grows with steps and servers, reaching ≈24% at 8 steps / 32 servers
// versus ≈5% at 2 servers (Fig 10).
func FigSteps(s Scale, steps int, w io.Writer, rep *ExperimentResult) error {
	fig := map[int]string{2: "FIGURE 8", 4: "FIGURE 9", 8: "FIGURE 10"}[steps]
	if fig == "" {
		fig = "FIGURE"
	}
	fmt.Fprintf(w, "%s — %d-step traversal on RMAT-1 (scale=%s)\n", fig, steps, s.Name)
	modes := []core.Mode{core.ModeSync, core.ModeGraphTrek}
	printSweepHeader(w, modes)
	rows, err := runSweep(s, steps, modes, nil, 1, w, rep)
	if err != nil {
		return err
	}
	last := rows[len(rows)-1]
	gain := 1 - float64(last.Times[core.ModeGraphTrek])/float64(last.Times[core.ModeSync])
	fmt.Fprintf(w, "GraphTrek improvement at %d servers: %.0f%%\n", last.Servers, gain*100)
	return nil
}

// Fig11 reproduces Figure 11: the same 8-step sweep with emulated external
// interference — one straggler per step at steps 1, 3 and 7, placed
// round-robin on three chosen servers, each delaying StragglerCount vertex
// accesses by StragglerDelay (the paper used 50 ms × 500). Each bar is the
// average of Fig11Runs runs. Paper shape: GraphTrek ≈2× faster at 32
// servers.
func Fig11(s Scale, w io.Writer, rep *ExperimentResult) error {
	fmt.Fprintf(w, "FIGURE 11 — 8-step traversal with external stragglers (delay=%v x %d accesses, scale=%s, avg of %d runs)\n",
		s.StragglerDelay, s.StragglerCount, s.Name, s.Fig11Runs)
	modes := []core.Mode{core.ModeSync, core.ModeGraphTrek}
	printSweepHeader(w, modes)
	mk := func(servers int) *simio.StragglerPlan {
		// Three selected servers, one straggler per step at steps 1, 3, 7.
		sel := []int{0, servers / 2, servers - 1}
		if servers < 3 {
			sel = []int{0, servers - 1, 0}
		}
		return simio.PaperPlan(sel, []int{1, 3, 7}, s.StragglerDelay, s.StragglerCount)
	}
	rows, err := runSweep(s, 8, modes, mk, s.Fig11Runs, w, rep)
	if err != nil {
		return err
	}
	last := rows[len(rows)-1]
	ratio := float64(last.Times[core.ModeSync]) / float64(last.Times[core.ModeGraphTrek])
	fmt.Fprintf(w, "Sync/GraphTrek ratio at %d servers: %.2fx (paper: ≈2x)\n", last.Servers, ratio)
	return nil
}

// Table2 prints the synthetic rich-metadata graph statistics next to the
// paper's Table II, demonstrating that the generator preserves the entity
// ratios of the Darshan/Intrepid graph at the chosen scale.
func Table2(s Scale, w io.Writer, rep *ExperimentResult) error {
	fmt.Fprintf(w, "TABLE II — rich metadata graph statistics (scale=%s)\n", s.Name)
	cfg := gen.ScaledMeta(s.MetaVertices, 1)
	g := newCountingSink()
	stats, err := gen.Metadata(cfg, g)
	if err != nil {
		return err
	}
	rep.AddCheck("graph-nonempty", stats.Edges > 0 && stats.Executions > 0,
		"users=%d jobs=%d executions=%d files=%d edges=%d", stats.Users, stats.Jobs, stats.Executions, stats.Files, stats.Edges)
	fmt.Fprintf(w, "%-12s%12s%12s%14s%12s%12s\n", "", "Users", "Jobs", "Executions", "Files", "Edges")
	fmt.Fprintf(w, "%-12s%12d%12d%14d%12d%12d\n", "generated", stats.Users, stats.Jobs, stats.Executions, stats.Files, stats.Edges)
	fmt.Fprintf(w, "%-12s%12d%12d%14d%12d%12d\n", "paper", 177, 47600, 123_400_000, 34_600_000, 239_800_000)
	fmt.Fprintf(w, "ratio check: executions/files generated %.2f vs paper %.2f; edges/vertices %.2f vs paper %.2f\n",
		float64(stats.Executions)/float64(stats.Files), 123.4/34.6,
		float64(stats.Edges)/float64(stats.Users+stats.Jobs+stats.Executions+stats.Files),
		239.8/158.0)
	return nil
}

type countingSink struct{ verts, edges int }

func newCountingSink() *countingSink { return &countingSink{} }

func (c *countingSink) AddVertex(gen2 graphtrek.Vertex) error { c.verts++; return nil }
func (c *countingSink) AddEdge(gen2 graphtrek.Edge) error     { c.edges++; return nil }

// Table3 reproduces Table III: the 6-step suspicious-user audit query on
// the rich-metadata graph at the widest server count, under the three
// engines. Paper (32 servers): Sync 3575 ms, Async 4159 ms, GraphTrek
// 2839 ms.
func Table3(s Scale, w io.Writer, rep *ExperimentResult) error {
	servers := s.ServerCounts[len(s.ServerCounts)-1]
	fmt.Fprintf(w, "TABLE III — Darshan-style audit query on %d servers (scale=%s)\n", servers, s.Name)
	c, err := graphtrek.NewCluster(graphtrek.Options{
		Servers:         servers,
		DiskService:     s.DiskService,
		DiskParallelism: s.DiskParallelism,
		TravelTimeout:   10 * time.Minute,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	// Four times the Table II graph: the query follows six hops, so it
	// needs enough depth for the engines to differentiate above timer
	// noise.
	stats, err := gen.Metadata(gen.ScaledMeta(s.MetaVertices*4, 1), c.Sink())
	if err != nil {
		return err
	}
	// §VII-D: list all files written by executions whose input files are
	// suspicious (written by a suspect user's executions).
	suspect := stats.UserID(1)
	plan, err := query.V(suspect).
		E("run").Ea("ts", property.RANGE, 0, 1<<20).
		E("hasExecutions").
		E("write").
		E("readBy").
		E("write").Rtn().
		Compile()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "query: %s\n", plan)
	fmt.Fprintf(w, "%-14s%12s%12s   (average of 3 cold runs)\n", "Engine", "Elapsed", "Results")
	counts := make(map[core.Mode]int)
	for _, mode := range []core.Mode{core.ModeSync, core.ModeAsyncPlain, core.ModeGraphTrek} {
		var total time.Duration
		var n int
		const runs = 3
		for r := 0; r < runs; r++ {
			c.ResetDisks() // each run starts cold, as in §VII
			d, nn, err := timeTraversal(c, plan, mode)
			if err != nil {
				return err
			}
			total += d
			n = nn
		}
		counts[mode] = n
		rep.AddRow(Row{Series: mode.String(), Servers: servers, Runs: runs,
			ElapsedNs: int64(total / runs), Results: n})
		fmt.Fprintf(w, "%-14s%12s%12d\n", mode, fmtDur(total/runs), n)
	}
	rep.AddCheck("engine-equivalence", counts[core.ModeAsyncPlain] == counts[core.ModeSync] &&
		counts[core.ModeGraphTrek] == counts[core.ModeSync],
		"result counts sync=%d async=%d graphtrek=%d",
		counts[core.ModeSync], counts[core.ModeAsyncPlain], counts[core.ModeGraphTrek])
	fmt.Fprintln(w, "paper (32 servers): Sync-GT 3575ms, Async-GT 4159ms, GraphTrek 2839ms")
	return nil
}

// Ablation goes beyond the paper: it isolates each GraphTrek optimization
// (cache only, scheduling/merging only, both) on the 8-step RMAT workload
// at the widest server count, quantifying where the win comes from.
func Ablation(s Scale, w io.Writer, rep *ExperimentResult) error {
	servers := s.ServerCounts[len(s.ServerCounts)-1]
	fmt.Fprintf(w, "ABLATION — 8-step RMAT-1 on %d servers (scale=%s)\n", servers, s.Name)
	fmt.Fprintf(w, "%-16s%12s%12s%12s%12s\n", "Engine", "Elapsed", "RealIO", "Combined", "Redundant")
	for _, mode := range []core.Mode{
		core.ModeAsyncPlain, core.ModeAsyncCacheOnly, core.ModeAsyncSchedOnly,
		core.ModeGraphTrek, core.ModeSync, core.ModeClientSide,
	} {
		c, seed, err := rmatCluster(s, servers, nil)
		if err != nil {
			return err
		}
		plan, err := hopPlan(seed, 8)
		if err != nil {
			c.Close()
			return err
		}
		d, _, err := timeTraversal(c, plan, mode)
		if err != nil {
			c.Close()
			return err
		}
		var total graphtrek.Metrics
		for _, m := range c.ServerMetrics() {
			total = total.Add(m)
		}
		c.Close()
		rep.AddRow(Row{Series: mode.String(), Servers: servers, ElapsedNs: int64(d),
			Received: total.Received, Redundant: total.Redundant, Combined: total.Combined, RealIO: total.RealIO})
		rep.AddCheck("invariant-"+mode.String(), total.Consistent(),
			"redundant %d + combined %d + real %d vs received %d", total.Redundant, total.Combined, total.RealIO, total.Received)
		fmt.Fprintf(w, "%-16s%12s%12d%12d%12d\n", mode, fmtDur(d), total.RealIO, total.Combined, total.Redundant)
	}
	return nil
}

// Concurrent goes beyond the paper's figures but tests its core motivation
// (§I): concurrent traversals interfere and create stragglers, and global
// synchronization amplifies the damage. It sweeps K simultaneous 8-step
// traversals from different seeds over each server's shared executor and
// reports, per engine and K, the makespan, the per-traversal latency
// distribution (p50/p95) and the executor's own view of the contention —
// queue depth high-water mark and mean enqueue→pop wait.
func Concurrent(s Scale, w io.Writer, rep *ExperimentResult) error {
	servers := s.ServerCounts[len(s.ServerCounts)-1] / 2
	if servers < 2 {
		servers = 2
	}
	ks := []int{1, 4, 16, 64}
	fmt.Fprintf(w, "CONCURRENT — K simultaneous 8-step traversals on %d servers, shared executor (scale=%s)\n", servers, s.Name)
	fmt.Fprintf(w, "%-14s%6s%12s%12s%12s%12s%12s\n",
		"Engine", "K", "Makespan", "p50", "p95", "QDepthPeak", "AvgWait")
	for _, mode := range []core.Mode{core.ModeSync, core.ModeGraphTrek} {
		for _, k := range ks {
			c, seed, err := rmatCluster(s, servers, nil)
			if err != nil {
				return err
			}
			durs := make([]time.Duration, k)
			errs := make([]error, k)
			var wg sync.WaitGroup
			start := time.Now()
			for i := 0; i < k; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					p, err := hopPlan(seed+graphtrek.VertexID(i), 8)
					if err == nil {
						durs[i], _, err = timeTraversal(c, p, mode)
					}
					errs[i] = err
				}(i)
			}
			wg.Wait()
			makespan := time.Since(start)
			var peak, waitNs, groups int64
			for _, m := range c.ServerMetrics() {
				if m.QueueDepthPeak > peak {
					peak = m.QueueDepthPeak
				}
				waitNs += m.QueueWaitNs
				groups += m.QueueGroups
			}
			c.Close()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
			avgWait := time.Duration(0)
			if groups > 0 {
				avgWait = time.Duration(waitNs / groups)
			}
			rep.AddRow(Row{Series: mode.String(), Servers: servers, K: k, ElapsedNs: int64(makespan),
				P50Ns: int64(durs[k/2]), P95Ns: int64(durs[(95*(k-1))/100])})
			fmt.Fprintf(w, "%-14s%6d%12s%12s%12s%12d%12s\n",
				mode, k, fmtDur(makespan),
				fmtDur(durs[k/2]), fmtDur(durs[(95*(k-1))/100]),
				peak, fmtDur(avgWait))
		}
	}
	fmt.Fprintln(w, "paper motivation: interference among concurrent traversals penalizes the synchronous engine's barriers;")
	fmt.Fprintln(w, "the shared executor keeps per-server goroutines fixed while K grows, trading latency visible in the queue wait")
	return nil
}

// Partition goes beyond the paper: it contrasts the default hash edge-cut
// with the degree-aware Balanced placement (the paper's "automatic load
// balancing" future work, §VIII) on the 8-step workload. Even perfectly
// balanced placement leaves stragglers — the paper's argument for
// asynchrony — but it narrows Sync-GT's per-step barrier wait.
func Partition(s Scale, w io.Writer, rep *ExperimentResult) error {
	servers := s.ServerCounts[len(s.ServerCounts)-1]
	fmt.Fprintf(w, "PARTITION — 8-step RMAT-1 on %d servers, hash vs degree-balanced placement (scale=%s)\n", servers, s.Name)
	fmt.Fprintf(w, "%-12s%-14s%12s%16s\n", "Placement", "Engine", "Elapsed", "MaxIO/MeanIO")

	// Pass 1: degree census of the workload.
	degrees := make(map[model.VertexID]int)
	census := gen.Funcs{
		Vertex: func(model.Vertex) error { return nil },
		Edge:   func(e model.Edge) error { degrees[e.Src]++; return nil },
	}
	if _, err := gen.RMAT(gen.RMAT1(s.RMATScale, s.RMATDeg, 1), census); err != nil {
		return err
	}

	for _, placement := range []string{"hash", "balanced"} {
		var part partition.Partitioner
		if placement == "balanced" {
			part = partition.NewBalanced(servers, degrees)
		}
		for _, mode := range []core.Mode{core.ModeSync, core.ModeGraphTrek} {
			c, err := graphtrek.NewCluster(graphtrek.Options{
				Servers:         servers,
				DiskService:     s.DiskService,
				DiskParallelism: s.DiskParallelism,
				TravelTimeout:   10 * time.Minute,
				Partitioner:     part,
			})
			if err != nil {
				return err
			}
			if _, err := gen.RMAT(gen.RMAT1(s.RMATScale, s.RMATDeg, 1), c.Sink()); err != nil {
				c.Close()
				return err
			}
			seed := model.VertexID(0)
			for id, d := range degrees {
				if d >= s.RMATDeg && (seed == 0 || id < seed) {
					seed = id
				}
			}
			plan, err := hopPlan(seed, 8)
			if err != nil {
				c.Close()
				return err
			}
			before := c.ServerMetrics()
			d, _, err := timeTraversal(c, plan, mode)
			if err != nil {
				c.Close()
				return err
			}
			var maxIO, sumIO int64
			after := c.ServerMetrics()
			for i := range after {
				io := after[i].Sub(before[i]).RealIO
				sumIO += io
				if io > maxIO {
					maxIO = io
				}
			}
			c.Close()
			mean := float64(sumIO) / float64(servers)
			rep.AddRow(Row{Series: placement + "/" + mode.String(), Servers: servers,
				ElapsedNs: int64(d), RealIO: sumIO})
			fmt.Fprintf(w, "%-12s%-14s%12s%16.2f\n", placement, mode, fmtDur(d), float64(maxIO)/mean)
		}
	}
	fmt.Fprintln(w, "MaxIO/MeanIO is the per-step straggler potential; balanced placement narrows it")
	return nil
}

// Smoke is the CI gate: at the scale's smallest server count it runs every
// engine on the same RMAT workload and asserts the two properties CI blocks
// on — engine equivalence (every engine returns the identical result set)
// and the §VII-A accounting identity on every server — while recording
// per-engine latency percentiles over a few cold runs. Small enough for a
// per-commit run, strict enough to catch a broken engine or counter.
func Smoke(s Scale, w io.Writer, rep *ExperimentResult) error {
	servers := s.ServerCounts[0]
	const steps, runs = 4, 3
	fmt.Fprintf(w, "SMOKE — %d-step RMAT-1 on %d servers, all engines, %d cold runs (scale=%s)\n", steps, servers, runs, s.Name)
	c, seed, err := rmatCluster(s, servers, nil)
	if err != nil {
		return err
	}
	defer c.Close()
	plan, err := hopPlan(seed, steps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s%12s%12s%12s%12s\n", "Engine", "p50", "p95", "Results", "RealIO")
	var baseline []graphtrek.VertexID
	for _, mode := range []core.Mode{
		core.ModeSync, core.ModeAsyncPlain, core.ModeAsyncCacheOnly,
		core.ModeAsyncSchedOnly, core.ModeGraphTrek, core.ModeClientSide,
	} {
		durs := make([]time.Duration, runs)
		var res []graphtrek.VertexID
		before := c.ServerMetrics()
		for r := 0; r < runs; r++ {
			c.ResetDisks()
			start := time.Now()
			res, err = c.RunPlan(plan, core.SubmitOptions{Mode: mode, Coordinator: 0, Timeout: 10 * time.Minute})
			durs[r] = time.Since(start)
			if err != nil {
				return fmt.Errorf("bench: smoke %v: %w", mode, err)
			}
		}
		sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
		if baseline == nil {
			baseline = res
		} else {
			equal := len(res) == len(baseline)
			for i := 0; equal && i < len(res); i++ {
				equal = res[i] == baseline[i]
			}
			rep.AddCheck("equivalence-"+mode.String(), equal,
				"%d results vs %d from %v", len(res), len(baseline), core.ModeSync)
		}
		var delta graphtrek.Metrics
		consistent := true
		for i, m := range c.ServerMetrics() {
			d := m.Sub(before[i])
			consistent = consistent && d.Consistent()
			delta = delta.Add(d)
		}
		rep.AddCheck("invariant-"+mode.String(), consistent,
			"redundant %d + combined %d + real %d vs received %d", delta.Redundant, delta.Combined, delta.RealIO, delta.Received)
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		p50, p95 := durs[runs/2], durs[(95*(runs-1))/100]
		rep.AddRow(Row{Series: mode.String(), Servers: servers, Runs: runs,
			ElapsedNs: int64(p50), P50Ns: int64(p50), P95Ns: int64(p95), Results: len(res),
			Received: delta.Received, Redundant: delta.Redundant, Combined: delta.Combined, RealIO: delta.RealIO})
		fmt.Fprintf(w, "%-16s%12s%12s%12d%12d\n", mode, fmtDur(p50), fmtDur(p95), len(res), delta.RealIO)
	}
	if err := smokeTraceDAG(c, plan, w, rep); err != nil {
		return err
	}
	return smokeIntrospection(c, w, rep)
}

// ChromeOut, when non-empty, makes the smoke experiment write its traced
// traversal's Chrome trace_event JSON to this path (graphtrek-bench
// -chrome). CI uploads the file as a browsable timeline artifact.
var ChromeOut string

// smokeTraceDAG runs one more traced GraphTrek traversal and gates on
// trace completeness: the causal DAG assembled from every server's spans
// must match the coordinator ledger exactly — node count == Created, zero
// orphans, zero duplicates — on a fault-free transport. This is the
// end-to-end cross-check that span linkage (ParentExec on the wire) and
// the §IV-C quiescence accounting describe the same execution population.
func smokeTraceDAG(c *graphtrek.Cluster, plan *graphtrek.Plan, w io.Writer, rep *ExperimentResult) error {
	c.ResetDisks()
	h, err := c.Client().SubmitPlanAsync(plan, core.SubmitOptions{Mode: core.ModeGraphTrek, Coordinator: 0, Timeout: 10 * time.Minute})
	if err != nil {
		return fmt.Errorf("bench: smoke trace run: %w", err)
	}
	if _, err := h.Wait(10 * time.Minute); err != nil {
		return fmt.Errorf("bench: smoke trace run: %w", err)
	}
	dag, err := h.FetchDAG(0)
	if err != nil {
		return fmt.Errorf("bench: smoke trace fetch: %w", err)
	}
	created := -1
	if dag.Summary != nil {
		created = dag.Summary.Created
	}
	rep.AddCheck("trace-completeness", dag.Complete(),
		"dag execs %d vs ledger created %d, orphans %d, duplicates %d, spans dropped %d",
		len(dag.Nodes), created, len(dag.Orphans), len(dag.Duplicates), dag.SpansDropped)
	critNs := int64(0)
	if dag.CriticalPath != nil {
		critNs = dag.CriticalPath.DurationNs
	}
	hops := 0
	if dag.CriticalPath != nil {
		hops = len(dag.CriticalPath.Hops)
	}
	fmt.Fprintf(w, "trace DAG: %d execs, %d roots, critical path %s over %d hops\n",
		len(dag.Nodes), len(dag.Roots), fmtDur(time.Duration(critNs)), hops)
	if ChromeOut != "" {
		buf, err := dag.ChromeTrace()
		if err != nil {
			return fmt.Errorf("bench: chrome export: %w", err)
		}
		if err := os.WriteFile(ChromeOut, buf, 0o644); err != nil {
			return fmt.Errorf("bench: chrome export: %w", err)
		}
		fmt.Fprintf(w, "chrome trace written to %s\n", ChromeOut)
	}
	return nil
}

// Experiments maps experiment ids to runners, for cmd/graphtrek-bench. A
// runner prints its human-readable table to w and, when a report section is
// supplied (nil otherwise), mirrors the measurements and pass/fail checks
// into it for the -json document.
var Experiments = map[string]func(Scale, io.Writer, *ExperimentResult) error{
	"smoke":      Smoke,
	"readpath":   ReadPath,
	"table1":     Table1,
	"fig7":       Fig7,
	"fig8":       func(s Scale, w io.Writer, rep *ExperimentResult) error { return FigSteps(s, 2, w, rep) },
	"fig9":       func(s Scale, w io.Writer, rep *ExperimentResult) error { return FigSteps(s, 4, w, rep) },
	"fig10":      func(s Scale, w io.Writer, rep *ExperimentResult) error { return FigSteps(s, 8, w, rep) },
	"fig11":      Fig11,
	"table2":     Table2,
	"table3":     Table3,
	"ablation":   Ablation,
	"concurrent": Concurrent,
	"partition":  Partition,
	"failover":   Failover,
	"fanout":     Fanout,
	"readwrite":  ReadWrite,
}

// Order is the canonical run order for "all".
var Order = []string{"smoke", "readpath", "fanout", "table1", "fig7", "fig8", "fig9", "fig10", "fig11", "table2", "table3", "ablation", "concurrent", "partition", "failover", "readwrite"}

// RunAll executes every experiment in order, appending one report section
// per experiment when rep is non-nil. A runner error is recorded on its
// section (so the written report shows where the run died) and returned.
func RunAll(s Scale, w io.Writer, rep *Report) error {
	for _, name := range Order {
		fmt.Fprintln(w, strings.Repeat("=", 78))
		e := rep.Experiment(name)
		if err := Experiments[name](s, w, e); err != nil {
			e.SetErr(err)
			return fmt.Errorf("bench: %s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
