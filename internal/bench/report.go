package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// ReportSchema versions the -json document so CI consumers can reject an
// incompatible layout instead of silently misreading it. Bump it whenever a
// field changes meaning or moves.
const ReportSchema = 1

// Report is the machine-readable benchmark document graphtrek-bench -json
// writes (BENCH_<exp>.json): one section per experiment, each holding the
// measured rows and the pass/fail checks (metrics invariant, engine
// equivalence) that gate CI.
type Report struct {
	Schema      int                 `json:"schema"`
	Scale       string              `json:"scale"`
	GoVersion   string              `json:"go_version"`
	StartedAt   string              `json:"started_at"`
	Experiments []*ExperimentResult `json:"experiments"`
}

// ExperimentResult is one experiment's section of the report.
type ExperimentResult struct {
	Name string `json:"name"`
	// Rows holds the measured series; which fields are set depends on the
	// experiment (a sweep sets Servers, the concurrent experiment sets K and
	// percentiles, metric-oriented experiments set the §VII-A counters).
	Rows []Row `json:"rows,omitempty"`
	// Checks are the report's machine-checkable assertions; any failed
	// check fails the whole report.
	Checks []Check `json:"checks,omitempty"`
	// Err records a runner error; like a failed check it fails the report.
	Err string `json:"err,omitempty"`
}

// Row is one measured series point. Zero-valued fields are omitted, so a
// row only carries the dimensions its experiment measures.
type Row struct {
	// Series names the measured configuration: an engine mode, or a
	// compound like "balanced/Sync-GT" for the partition experiment.
	Series    string `json:"series"`
	Servers   int    `json:"servers,omitempty"`
	K         int    `json:"k,omitempty"`
	Runs      int    `json:"runs,omitempty"`
	ElapsedNs int64  `json:"elapsed_ns,omitempty"`
	P50Ns     int64  `json:"p50_ns,omitempty"`
	P95Ns     int64  `json:"p95_ns,omitempty"`
	Results   int    `json:"results,omitempty"`
	// §VII-A counters for the run (summed over servers unless the row is
	// per-server, in which case Servers is the server id and Series says so).
	Received  int64 `json:"received,omitempty"`
	Redundant int64 `json:"redundant,omitempty"`
	Combined  int64 `json:"combined,omitempty"`
	RealIO    int64 `json:"real_io,omitempty"`
	// Read-path counters (the readpath experiment): seed-selection
	// candidates and storage read-cache outcomes for the run.
	SeedScanned    int64 `json:"seed_scanned,omitempty"`
	SeedIndexHits  int64 `json:"seed_index_hits,omitempty"`
	VtxCacheHits   int64 `json:"vtx_cache_hits,omitempty"`
	VtxCacheMisses int64 `json:"vtx_cache_misses,omitempty"`
	AdjCacheHits   int64 `json:"adj_cache_hits,omitempty"`
	AdjCacheMisses int64 `json:"adj_cache_misses,omitempty"`
	// Frontier data-path counters (the fanout experiment): vertices
	// expanded, frame bytes produced, and heap allocations per batch.
	Vertices    int64 `json:"vertices,omitempty"`
	WireBytes   int64 `json:"wire_bytes,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
}

// Check is one pass/fail assertion recorded by an experiment.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// NewReport starts an empty report for one bench invocation.
func NewReport(s Scale) *Report {
	return &Report{
		Schema:    ReportSchema,
		Scale:     s.Name,
		GoVersion: runtime.Version(),
		StartedAt: time.Now().UTC().Format(time.RFC3339),
	}
}

// Experiment appends and returns a new named section. Nil-safe: a
// human-output-only run passes a nil report, gets a nil section back, and
// every recording method on a nil section is a no-op — runners never branch
// on whether JSON output was requested.
func (r *Report) Experiment(name string) *ExperimentResult {
	if r == nil {
		return nil
	}
	e := &ExperimentResult{Name: name}
	r.Experiments = append(r.Experiments, e)
	return e
}

// Failed reports whether any experiment errored or any check failed.
func (r *Report) Failed() bool {
	if r == nil {
		return false
	}
	for _, e := range r.Experiments {
		if e.Err != "" {
			return true
		}
		for _, c := range e.Checks {
			if !c.Pass {
				return true
			}
		}
	}
	return false
}

// WriteFile renders the report as indented JSON at path.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// AddRow records one measured series point.
func (e *ExperimentResult) AddRow(row Row) {
	if e == nil {
		return
	}
	e.Rows = append(e.Rows, row)
}

// AddCheck records one pass/fail assertion with a formatted detail line.
func (e *ExperimentResult) AddCheck(name string, pass bool, format string, args ...any) {
	if e == nil {
		return
	}
	e.Checks = append(e.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// SetErr records a runner error on the section.
func (e *ExperimentResult) SetErr(err error) {
	if e == nil || err == nil {
		return
	}
	e.Err = err.Error()
}
