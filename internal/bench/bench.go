// Package bench reproduces the paper's evaluation (§VII): every table and
// figure has a runner that builds a simulated cluster, loads the right
// workload, executes the traversals and prints the same rows/series the
// paper reports. Absolute times differ — the substrate is a one-process
// simulation with a virtual disk, not a 32-node InfiniBand cluster — but
// the comparisons (who wins, by what factor, where the crossover falls)
// are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"graphtrek"
	"graphtrek/internal/core"
	"graphtrek/internal/gen"
	"graphtrek/internal/model"
	"graphtrek/internal/query"
	"graphtrek/internal/simio"
)

// Scale sizes the experiments. The default fits a laptop run of the whole
// suite in minutes; GRAPHTREK_SCALE=medium and =paper select progressively
// larger configurations (paper = the publication's 2^20 / degree-16 graphs,
// which takes hours in simulation).
type Scale struct {
	Name string
	// RMAT workload (Table I, Figs 7-11).
	RMATScale int
	RMATDeg   int
	// Virtual disk.
	DiskService     time.Duration
	DiskParallelism int
	// Straggler emulation (Fig 11): per-access delay and access count,
	// scaled from the paper's 50 ms x 500.
	StragglerDelay time.Duration
	StragglerCount int
	// Metadata graph size (Tables II, III).
	MetaVertices int
	// Server counts on the x axis.
	ServerCounts []int
	// Runs to average for the straggler experiment.
	Fig11Runs int
}

// GetScale resolves the scale from the GRAPHTREK_SCALE environment
// variable ("", "small", "medium", "paper").
func GetScale() Scale {
	switch os.Getenv("GRAPHTREK_SCALE") {
	case "medium":
		return Scale{
			Name: "medium", RMATScale: 14, RMATDeg: 12,
			DiskService: 100 * time.Microsecond, DiskParallelism: 1,
			StragglerDelay: 10 * time.Millisecond, StragglerCount: 200,
			MetaVertices: 60000,
			ServerCounts: []int{2, 4, 8, 16, 32}, Fig11Runs: 3,
		}
	case "paper":
		return Scale{
			Name: "paper", RMATScale: 20, RMATDeg: 16,
			DiskService: 100 * time.Microsecond, DiskParallelism: 1,
			StragglerDelay: 50 * time.Millisecond, StragglerCount: 500,
			MetaVertices: 2_000_000,
			ServerCounts: []int{2, 4, 8, 16, 32}, Fig11Runs: 3,
		}
	case "tiny":
		return Scale{
			Name: "tiny", RMATScale: 9, RMATDeg: 6,
			DiskService: 20 * time.Microsecond, DiskParallelism: 1,
			StragglerDelay: 1 * time.Millisecond, StragglerCount: 30,
			MetaVertices: 3000,
			ServerCounts: []int{2, 8, 32}, Fig11Runs: 2,
		}
	default:
		return Scale{
			Name: "small", RMATScale: 12, RMATDeg: 8,
			DiskService: 100 * time.Microsecond, DiskParallelism: 1,
			StragglerDelay: 5 * time.Millisecond, StragglerCount: 100,
			MetaVertices: 20000,
			ServerCounts: []int{2, 4, 8, 16, 32}, Fig11Runs: 3,
		}
	}
}

// rmatCluster builds a cluster with the RMAT-1 graph loaded, returning the
// traversal seed vertex (a well-connected one, so deep traversals reach a
// large fraction of the graph, as in the paper's runs).
func rmatCluster(s Scale, servers int, stragglers *simio.StragglerPlan) (*graphtrek.Cluster, model.VertexID, error) {
	c, err := graphtrek.NewCluster(graphtrek.Options{
		Servers:         servers,
		DiskService:     s.DiskService,
		DiskParallelism: s.DiskParallelism,
		Stragglers:      stragglers,
		TravelTimeout:   10 * time.Minute,
	})
	if err != nil {
		return nil, 0, err
	}
	deg := make([]int, 1<<s.RMATScale)
	sink := gen.Funcs{
		Vertex: c.AddVertex,
		Edge: func(e model.Edge) error {
			deg[e.Src]++
			return c.AddEdge(e)
		},
	}
	if _, err := gen.RMAT(gen.RMAT1(s.RMATScale, s.RMATDeg, 1), sink); err != nil {
		c.Close()
		return nil, 0, err
	}
	// The paper starts from a randomly selected vertex; we pick the first
	// vertex with at least average degree to make runs deterministic and
	// non-degenerate.
	seed := model.VertexID(0)
	for i, d := range deg {
		if d >= s.RMATDeg {
			seed = model.VertexID(i)
			break
		}
	}
	return c, seed, nil
}

// hopPlan builds the k-step RMAT traversal: v(seed).e(link)^k.
func hopPlan(seed model.VertexID, steps int) (*query.Plan, error) {
	t := query.V(seed)
	for i := 0; i < steps; i++ {
		t = t.E("link")
	}
	return t.Compile()
}

// timeTraversal runs one traversal and returns the elapsed wall time.
func timeTraversal(c *graphtrek.Cluster, plan *query.Plan, mode core.Mode) (time.Duration, int, error) {
	start := time.Now()
	res, err := c.RunPlan(plan, core.SubmitOptions{Mode: mode, Coordinator: 0, Timeout: 30 * time.Minute})
	return time.Since(start), len(res), err
}

// Result rows shared by the runners.
type seriesRow struct {
	Servers int
	Times   map[core.Mode]time.Duration
}

// runSweep measures the given modes across the scale's server counts,
// printing each row as it lands and mirroring it into the report.
func runSweep(s Scale, steps int, modes []core.Mode, stragglers func(servers int) *simio.StragglerPlan, runs int, w io.Writer, rep *ExperimentResult) ([]seriesRow, error) {
	var rows []seriesRow
	for _, n := range s.ServerCounts {
		row := seriesRow{Servers: n, Times: make(map[core.Mode]time.Duration)}
		for _, mode := range modes {
			var total time.Duration
			for r := 0; r < runs; r++ {
				var plan *simio.StragglerPlan
				if stragglers != nil {
					plan = stragglers(n)
				}
				c, seed, err := rmatCluster(s, n, plan)
				if err != nil {
					return nil, err
				}
				p, err := hopPlan(seed, steps)
				if err != nil {
					c.Close()
					return nil, err
				}
				d, _, err := timeTraversal(c, p, mode)
				c.Close()
				if err != nil {
					return nil, fmt.Errorf("bench: %v on %d servers: %w", mode, n, err)
				}
				total += d
			}
			row.Times[mode] = total / time.Duration(runs)
		}
		rows = append(rows, row)
		printSweepRow(w, row, modes)
		for _, mode := range modes {
			rep.AddRow(Row{Series: mode.String(), Servers: n, Runs: runs, ElapsedNs: int64(row.Times[mode])})
		}
	}
	return rows, nil
}

func printSweepHeader(w io.Writer, modes []core.Mode) {
	fmt.Fprintf(w, "%-10s", "Servers")
	for _, m := range modes {
		fmt.Fprintf(w, "%14s", m.String())
	}
	fmt.Fprintln(w)
}

func printSweepRow(w io.Writer, row seriesRow, modes []core.Mode) {
	fmt.Fprintf(w, "%-10d", row.Servers)
	for _, m := range modes {
		fmt.Fprintf(w, "%14s", fmtDur(row.Times[m]))
	}
	fmt.Fprintln(w)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
}
