package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"graphtrek"
	"graphtrek/internal/core"
	"graphtrek/internal/gstore"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
)

// ReadWrite gates the streaming mutation pipeline under a mixed read/write
// workload (DESIGN.md §14): the base graph is bulk-loaded through the
// quorum write path at full cluster width, a read-only traversal baseline
// is measured, then named mutations churn the graph while the same
// traversals keep running. The pass/fail contract:
//
//   - every acknowledged write (bulk load and churn) is durable on its
//     partition's current primary — zero lost acked writes;
//   - traversal latency under churn stays within a bounded multiple of the
//     read-only baseline (writes slow reads, they must not starve them);
//   - the §VII-A accounting identity (redundant + combined + realIO ==
//     received) holds for the traversals that ran during churn;
//   - the change feed is complete and ordered: per partition, sequence
//     numbers arrive contiguously from 1 (exactly-once), every acked write
//     is eventually delivered, and a shadow store built purely from feed
//     events answers the workload queries identically to the live cluster.
func ReadWrite(s Scale, w io.Writer, rep *ExperimentResult) error {
	const (
		servers      = 3
		rf           = 2
		filesPerUser = 3
		writers      = 3
		writerDocs   = 8
		reads        = 24
	)
	users := s.MetaVertices / 25
	if users < 48 {
		users = 48
	}
	if users > 512 {
		users = 512
	}
	fmt.Fprintf(w, "READ/WRITE — %d servers, RF=%d: bulk load, churn %d writers against %d traversals (scale=%s)\n",
		servers, rf, writers, reads, s.Name)
	c, err := graphtrek.NewCluster(graphtrek.Options{
		Servers:           servers,
		ReplicationFactor: rf,
		DiskService:       s.DiskService,
		DiskParallelism:   s.DiskParallelism,
		ReadCacheBytes:    4 << 20,
		IndexKeys:         []string{"type"},
		TravelTimeout:     time.Minute,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	view := c.ClientRouteView()

	// Subscribe the change feed on every partition before the first write,
	// so completeness is checkable against the entire mutation history.
	shadow := gstore.NewMemStore()
	var smu sync.Mutex
	perPartEvents := make([]uint64, view.Parts())
	gapFree := true
	var feeds []*core.Feed
	var collectors []chan struct{}
	for p := 0; p < view.Parts(); p++ {
		f, err := c.SubscribeFeed(p, core.FeedOptions{Refresh: 50 * time.Millisecond})
		if err != nil {
			return fmt.Errorf("bench: readwrite: subscribe partition %d: %w", p, err)
		}
		feeds = append(feeds, f)
		done := make(chan struct{})
		collectors = append(collectors, done)
		go func(p int, f *core.Feed) {
			defer close(done)
			for ev := range f.Events() {
				smu.Lock()
				if ev.Seq != perPartEvents[p]+1 {
					gapFree = false
				}
				perPartEvents[p] = ev.Seq
				for _, m := range ev.Muts {
					m.Apply(shadow)
				}
				smu.Unlock()
			}
		}(p, f)
	}

	// Bulk load the base graph: users 1..N each running filesPerUser files,
	// through BulkLoad's partition-parallel quorum streams.
	var muts []gstore.Mutation
	var ackedIDs []graphtrek.VertexID
	nextFile := graphtrek.VertexID(1_000_000)
	for u := 1; u <= users; u++ {
		id := graphtrek.VertexID(u)
		ackedIDs = append(ackedIDs, id)
		muts = append(muts, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: graphtrek.Vertex{
			ID: id, Label: "User", Props: property.Map{"u": property.Int(int64(u))}}})
		for f := 0; f < filesPerUser; f++ {
			fid := nextFile
			nextFile++
			ackedIDs = append(ackedIDs, fid)
			kind := "text"
			if f%2 == 1 {
				kind = "bin"
			}
			muts = append(muts, gstore.Mutation{Op: gstore.OpPutVertex, Vertex: graphtrek.Vertex{
				ID: fid, Label: "File", Props: property.Map{"type": property.String(kind)}}})
			muts = append(muts, gstore.Mutation{Op: gstore.OpPutEdge, Edge: graphtrek.Edge{
				Src: id, Dst: fid, Label: "run"}})
		}
	}
	loadStart := time.Now()
	err = c.BulkLoad(muts, core.BulkOptions{MaxBatch: 128})
	loadDur := time.Since(loadStart)
	if err != nil {
		rep.AddCheck("bulkload", false, "parallel quorum load of %d mutations: %v", len(muts), err)
		return fmt.Errorf("bench: readwrite: bulk load: %w", err)
	}
	rep.AddCheck("bulkload", true, "parallel quorum load of %d mutations", len(muts))
	rate := float64(len(muts)) / loadDur.Seconds()
	fmt.Fprintf(w, "bulk-loaded %d mutations in %s (%.0f muts/s, all partitions in parallel)\n",
		len(muts), fmtDur(loadDur), rate)
	rep.AddRow(Row{Series: "bulkload", Servers: servers, ElapsedNs: int64(loadDur), Results: len(muts)})

	plan, err := graphtrek.VLabel("User").E("run").Compile()
	if err != nil {
		return err
	}
	planText, err := graphtrek.VLabel("User").E("run").Va("type", property.EQ, "text").Compile()
	if err != nil {
		return err
	}
	runOnce := func(p *query.Plan) (time.Duration, int, error) {
		start := time.Now()
		res, err := c.RunPlan(p, core.SubmitOptions{
			Mode: core.ModeGraphTrek, Coordinator: -1, Timeout: time.Minute, Retries: 2})
		return time.Since(start), len(res), err
	}

	// Read-only baseline.
	var baseLats []time.Duration
	baseResults := 0
	for i := 0; i < reads; i++ {
		d, n, err := runOnce(plan)
		if err != nil {
			return fmt.Errorf("bench: readwrite: baseline traversal: %w", err)
		}
		baseLats = append(baseLats, d)
		baseResults = n
	}
	rep.AddCheck("baseline-results", baseResults == users*filesPerUser,
		"baseline traversal returned %d results, want %d", baseResults, users*filesPerUser)
	baseP50, baseP95 := percentileNs(baseLats, 50), percentileNs(baseLats, 95)
	fmt.Fprintf(w, "read-only baseline: p50 %s  p95 %s  (%d results)\n",
		fmtDur(time.Duration(baseP50)), fmtDur(time.Duration(baseP95)), baseResults)
	rep.AddRow(Row{Series: "read-only", Servers: servers, Runs: reads, P50Ns: baseP50, P95Ns: baseP95, Results: baseResults})

	// Churn phase: writers stream named mutations (vertex adds, indexed
	// property flips, edges) while the same traversal load repeats.
	before := c.ServerMetrics()
	var wg sync.WaitGroup
	writerErrs := make(chan error, writers)
	namedIDs := make(chan map[string]graphtrek.VertexID, 2*writers*writerDocs)
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			user := fmt.Sprintf("churn-user-%d", wr)
			if _, err := c.Mutate([]core.NamedMutation{
				{Op: core.NamedAddVertex, Name: user, Label: "User"},
			}, core.WriteOptions{Timeout: 30 * time.Second}); err != nil {
				writerErrs <- err
				return
			}
			for i := 0; i < writerDocs; i++ {
				doc := fmt.Sprintf("churn-doc-%d-%d", wr, i)
				// Add with one type, then flip it — the flip must propagate
				// through the write-through cache and the incremental index.
				for _, kind := range []string{"bin", "text"} {
					ids, err := c.Mutate([]core.NamedMutation{
						{Op: core.NamedAddVertex, Name: doc, Label: "File",
							Props: property.Map{"type": property.String(kind)}},
						{Op: core.NamedAddEdge, Src: user, Label: "run", Dst: doc},
					}, core.WriteOptions{Timeout: 30 * time.Second})
					if err != nil {
						writerErrs <- err
						return
					}
					namedIDs <- ids
				}
			}
		}(wr)
	}
	var churnLats []time.Duration
	for i := 0; i < reads; i++ {
		d, _, err := runOnce(plan)
		if err != nil {
			return fmt.Errorf("bench: readwrite: churn traversal: %w", err)
		}
		churnLats = append(churnLats, d)
	}
	wg.Wait()
	close(writerErrs)
	close(namedIDs)
	for err := range writerErrs {
		rep.AddCheck("writers", false, "churn writer failed: %v", err)
		return fmt.Errorf("bench: readwrite: churn writer: %w", err)
	}
	rep.AddCheck("writers", true, "")
	for ids := range namedIDs {
		for _, id := range ids {
			ackedIDs = append(ackedIDs, id)
		}
	}
	after := c.ServerMetrics()

	churnP50, churnP95 := percentileNs(churnLats, 50), percentileNs(churnLats, 95)
	fmt.Fprintf(w, "under churn:        p50 %s  p95 %s\n",
		fmtDur(time.Duration(churnP50)), fmtDur(time.Duration(churnP95)))
	rep.AddRow(Row{Series: "under-churn", Servers: servers, Runs: reads, P50Ns: churnP50, P95Ns: churnP95})
	// Concurrent quorum writes may slow reads; they must not starve them.
	// The absolute floor absorbs tiny-scale noise where the baseline is
	// microseconds.
	budget := 5*baseP95 + int64(50*time.Millisecond)
	rep.AddCheck("p95-degradation", churnP95 <= budget,
		"churn p95 %s vs budget %s (5x baseline p95 %s + 50ms floor)",
		fmtDur(time.Duration(churnP95)), fmtDur(time.Duration(budget)), fmtDur(time.Duration(baseP95)))

	// §VII-A accounting identity over everything the churn phase executed.
	var totals graphtrek.Metrics
	for i := range after {
		totals = totals.Add(after[i].Sub(before[i]))
	}
	rep.AddCheck("invariant-under-churn", totals.Consistent(),
		"redundant %d + combined %d + real %d vs received %d",
		totals.Redundant, totals.Combined, totals.RealIO, totals.Received)

	// Zero lost acked writes: every acknowledged vertex — bulk-loaded or
	// churn-written — is on its partition's current primary.
	lost := 0
	for _, id := range ackedIDs {
		prim := int(view.Assignment(view.Partition(id)).Primary)
		if _, ok, err := c.Store(prim).GetVertex(id); err != nil || !ok {
			lost++
		}
	}
	rep.AddCheck("no-lost-acked-writes", lost == 0,
		"%d of %d acknowledged vertices missing from their current primaries", lost, len(ackedIDs))

	// Feed completeness: the shadow store, built purely from feed events,
	// must converge to answer both workload queries exactly like the live
	// cluster — every committed mutation delivered, none invented.
	wantPlain, err := c.RunPlan(plan, core.SubmitOptions{Mode: core.ModeGraphTrek, Coordinator: -1, Timeout: time.Minute, Retries: 2})
	if err != nil {
		return err
	}
	wantText, err := c.RunPlan(planText, core.SubmitOptions{Mode: core.ModeGraphTrek, Coordinator: -1, Timeout: time.Minute, Retries: 2})
	if err != nil {
		return err
	}
	converged := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		smu.Lock()
		okPlain := shadowMatches(shadow, plan, wantPlain)
		okText := okPlain && shadowMatches(shadow, planText, wantText)
		smu.Unlock()
		if okPlain && okText {
			converged = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var delivered uint64
	smu.Lock()
	for _, n := range perPartEvents {
		delivered += n
	}
	gaps := !gapFree
	smu.Unlock()
	rep.AddCheck("feed-gap-free", !gaps, "per-partition feed sequences must arrive contiguously from 1")
	rep.AddCheck("feed-completeness", converged,
		"shadow store replayed from %d feed records answers both queries like the live cluster", delivered)
	rep.AddRow(Row{Series: "feed", Servers: servers, Results: int(delivered)})
	fmt.Fprintf(w, "change feed: %d committed records delivered across %d partitions (gap-free=%v, shadow equivalent=%v)\n",
		delivered, view.Parts(), !gaps, converged)
	for _, f := range feeds {
		f.Close()
	}
	for _, done := range collectors {
		<-done
	}
	for p, f := range feeds {
		if err := f.Err(); err != nil {
			rep.AddCheck("feed-clean-close", false, "partition %d feed: %v", p, err)
			return fmt.Errorf("bench: readwrite: partition %d feed: %w", p, err)
		}
	}
	rep.AddCheck("feed-clean-close", true, "")
	return nil
}

// shadowMatches compares the reference engine's answer on the feed-replayed
// shadow store against the live cluster's result set (order-insensitive:
// the cluster merges per-server results in arrival order).
func shadowMatches(shadow *gstore.MemStore, plan *query.Plan, want []graphtrek.VertexID) bool {
	ref, err := query.Reference(shadow, plan)
	if err != nil {
		return false
	}
	if len(ref.Results) != len(want) {
		return false
	}
	a := append([]model.VertexID(nil), ref.Results...)
	b := append([]model.VertexID(nil), want...)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// percentileNs returns the q-th percentile of the latency sample in
// nanoseconds (nearest-rank).
func percentileNs(lats []time.Duration, q int) int64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (q*len(s) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(s) {
		idx = len(s)
	}
	return int64(s[idx-1])
}
