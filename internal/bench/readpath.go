package bench

import (
	"fmt"
	"io"
	"time"

	"graphtrek"
	"graphtrek/internal/core"
	"graphtrek/internal/model"
	"graphtrek/internal/property"
	"graphtrek/internal/query"
)

// ReadPath measures the storage hot layer's two read-path optimizations on
// a metadata-shaped workload (Users → run → Executions):
//
//   - Seed selection: the same selective step-0 traversal (va EQ / IN /
//     RANGE on a User property) runs once on the scan path and once with a
//     property index enabled. The report asserts the scan path enumerates
//     the whole label population while the indexed path enumerates exactly
//     the matches (SeedScanned == matches, the O(matches) claim), and that
//     both return identical results.
//   - Read cache: the same traversal runs cold and then warm against a
//     cache-wrapped cluster; the report asserts the warm run serves most
//     vertex+adjacency reads from cache and returns identical results.
func ReadPath(s Scale, w io.Writer, rep *ExperimentResult) error {
	const (
		servers     = 4
		teams       = 32
		runsPerUser = 4
	)
	users := s.MetaVertices
	if users < teams {
		users = teams
	}
	fmt.Fprintf(w, "READPATH — %d users/%d teams ×%d runs on %d servers (scale=%s)\n",
		users, teams, runsPerUser, servers, s.Name)

	// --- Prong 1: scan-vs-index seed selection (no read cache, so the
	// counters isolate seed behavior).
	c, err := loadUserRuns(graphtrek.Options{Servers: servers, TravelTimeout: 10 * time.Minute},
		users, teams, runsPerUser)
	if err != nil {
		return err
	}
	defer c.Close()

	team := "team-07"
	matches := teamPopulation(users, teams, 7)
	rangeLo, rangeHi := int64(users/4), int64(users/4+users/8)
	seedPlans := []struct {
		series  string
		matches int64
		travel  *query.Travel
	}{
		{"seed-eq", matches,
			query.VLabel("User").Va("team", property.EQ, team).E("run")},
		{"seed-in", teamPopulation(users, teams, 3) + teamPopulation(users, teams, 19),
			query.VLabel("User").Va("team", property.IN, "team-03", "team-19").E("run")},
		{"seed-range", rangeHi - rangeLo + 1,
			query.VLabel("User").Va("uid", property.RANGE, rangeLo, rangeHi).E("run")},
	}

	fmt.Fprintf(w, "%-24s%12s%14s%14s%10s\n", "Series", "Elapsed", "SeedScanned", "SeedIdxHits", "Results")
	type scanBaseline struct {
		results []graphtrek.VertexID
		scanned int64
	}
	baselines := make([]scanBaseline, len(seedPlans))
	for i, sp := range seedPlans {
		row, res, err := runReadPath(c, sp.travel, sp.series+"/scan")
		if err != nil {
			return err
		}
		baselines[i] = scanBaseline{results: res, scanned: row.SeedScanned}
		rep.AddCheck(sp.series+"-scan-population", row.SeedScanned == int64(users),
			"scan path enumerated %d candidates for %d users", row.SeedScanned, users)
		rep.AddRow(row)
		fmt.Fprintf(w, "%-24s%12s%14d%14d%10d\n", row.Series, fmtDur(time.Duration(row.ElapsedNs)), row.SeedScanned, row.SeedIndexHits, row.Results)
	}

	for _, key := range []string{"team", "uid"} {
		if err := c.EnableIndex(key); err != nil {
			return err
		}
	}

	for i, sp := range seedPlans {
		row, res, err := runReadPath(c, sp.travel, sp.series+"/index")
		if err != nil {
			return err
		}
		rep.AddCheck(sp.series+"-scanned-equals-matches",
			row.SeedScanned == sp.matches && row.SeedIndexHits == sp.matches,
			"indexed seed enumerated %d candidates (%d via index) for %d matches; scan path took %d",
			row.SeedScanned, row.SeedIndexHits, sp.matches, baselines[i].scanned)
		rep.AddCheck(sp.series+"-equivalence", sameResults(res, baselines[i].results),
			"%d results vs %d on the scan path", len(res), len(baselines[i].results))
		rep.AddRow(row)
		fmt.Fprintf(w, "%-24s%12s%14d%14d%10d\n", row.Series, fmtDur(time.Duration(row.ElapsedNs)), row.SeedScanned, row.SeedIndexHits, row.Results)
	}

	// --- Prong 2: cold vs warm read cache on a fresh cluster (its cache
	// starts empty) with the index pre-enabled, traversing every user.
	cc, err := loadUserRuns(graphtrek.Options{Servers: servers, TravelTimeout: 10 * time.Minute,
		ReadCacheBytes: 64 << 20, IndexKeys: []string{"team"}}, users, teams, runsPerUser)
	if err != nil {
		return err
	}
	defer cc.Close()
	hot := query.VLabel("User").E("run")

	cold, coldRes, err := runReadPath(cc, hot, "cache-cold")
	if err != nil {
		return err
	}
	rep.AddCheck("cold-cache-populates", cold.VtxCacheMisses > 0 && cold.AdjCacheMisses > 0,
		"cold run: %d vtx misses, %d adj misses", cold.VtxCacheMisses, cold.AdjCacheMisses)
	rep.AddRow(cold)

	warm, warmRes, err := runReadPath(cc, hot, "cache-warm")
	if err != nil {
		return err
	}
	hits := warm.VtxCacheHits + warm.AdjCacheHits
	total := hits + warm.VtxCacheMisses + warm.AdjCacheMisses
	rate := 0.0
	if total > 0 {
		rate = float64(hits) / float64(total)
	}
	rep.AddCheck("warm-cache-hit-rate", rate >= 0.8,
		"warm run hit rate %.3f (%d hits / %d reads)", rate, hits, total)
	rep.AddCheck("cache-equivalence", sameResults(coldRes, warmRes),
		"%d results warm vs %d cold", len(warmRes), len(coldRes))
	rep.AddRow(warm)

	fmt.Fprintf(w, "%-24s%12s  vtx %d/%d adj %d/%d (hits/misses)\n", "cache-cold",
		fmtDur(time.Duration(cold.ElapsedNs)), cold.VtxCacheHits, cold.VtxCacheMisses, cold.AdjCacheHits, cold.AdjCacheMisses)
	fmt.Fprintf(w, "%-24s%12s  vtx %d/%d adj %d/%d — hit rate %.3f\n", "cache-warm",
		fmtDur(time.Duration(warm.ElapsedNs)), warm.VtxCacheHits, warm.VtxCacheMisses, warm.AdjCacheHits, warm.AdjCacheMisses, rate)
	return nil
}

// loadUserRuns builds a cluster holding the experiment's metadata graph:
// `users` User vertices (props team = "team-NN", uid = ordinal), each with
// runsPerUser run-edges to private Execution vertices.
func loadUserRuns(opts graphtrek.Options, users, teams, runsPerUser int) (*graphtrek.Cluster, error) {
	c, err := graphtrek.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < users; i++ {
		uid := model.VertexID(i + 1)
		err := c.AddVertex(model.Vertex{ID: uid, Label: "User", Props: property.Map{
			"team": property.String(fmt.Sprintf("team-%02d", i%teams)),
			"uid":  property.Int(int64(i)),
		}})
		if err == nil {
			for r := 0; r < runsPerUser && err == nil; r++ {
				eid := model.VertexID(users + i*runsPerUser + r + 1)
				err = c.AddVertex(model.Vertex{ID: eid, Label: "Execution", Props: property.Map{
					"seq": property.Int(int64(r)),
				}})
				if err == nil {
					err = c.AddEdge(model.Edge{Src: uid, Dst: eid, Label: "run"})
				}
			}
		}
		if err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// teamPopulation counts users assigned (round-robin) to one team ordinal.
func teamPopulation(users, teams, team int) int64 {
	n := int64(users / teams)
	if team < users%teams {
		n++
	}
	return n
}

// runReadPath times one GraphTrek-mode traversal from cold disks and
// returns a row carrying the run's read-path counter deltas.
func runReadPath(c *graphtrek.Cluster, t *query.Travel, series string) (Row, []graphtrek.VertexID, error) {
	plan, err := t.Compile()
	if err != nil {
		return Row{}, nil, err
	}
	c.ResetDisks()
	before := c.ServerMetrics()
	start := time.Now()
	res, err := c.RunPlan(plan, core.SubmitOptions{Mode: core.ModeGraphTrek, Coordinator: 0, Timeout: 10 * time.Minute})
	elapsed := time.Since(start)
	if err != nil {
		return Row{}, nil, fmt.Errorf("bench: readpath %s: %w", series, err)
	}
	var delta graphtrek.Metrics
	for i, m := range c.ServerMetrics() {
		delta = delta.Add(m.Sub(before[i]))
	}
	return Row{
		Series: series, Servers: c.Servers(), ElapsedNs: int64(elapsed), Results: len(res),
		Received: delta.Received, Redundant: delta.Redundant, Combined: delta.Combined, RealIO: delta.RealIO,
		SeedScanned: delta.SeedScanned, SeedIndexHits: delta.SeedIndexHits,
		VtxCacheHits: delta.VtxCacheHits, VtxCacheMisses: delta.VtxCacheMisses,
		AdjCacheHits: delta.AdjCacheHits, AdjCacheMisses: delta.AdjCacheMisses,
	}, res, nil
}

// sameResults compares two sorted, deduplicated result sets.
func sameResults(a, b []graphtrek.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
