package simio

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var blockSeq atomic.Uint64

// nextBlock returns a fresh block id so each test access is a cold miss.
func nextBlock() uint64 { return blockSeq.Add(1) }

func TestZeroServiceTimeIsFree(t *testing.T) {
	d := NewDisk(0, 1)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		d.Access(0, nextBlock())
	}
	if took := time.Since(start); took > 100*time.Millisecond {
		t.Errorf("zero-latency disk took %v", took)
	}
	if d.Accesses() != 1000 {
		t.Errorf("Accesses = %d", d.Accesses())
	}
}

func TestServiceTimeApplied(t *testing.T) {
	d := NewDisk(5*time.Millisecond, 1)
	start := time.Now()
	for i := 0; i < 4; i++ {
		d.Access(0, nextBlock())
	}
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Errorf("4 serial accesses took %v, want >= 20ms", took)
	}
}

func TestParallelismAllowsConcurrentAccesses(t *testing.T) {
	// 8 accesses of 10ms on 4 slots should take ~20ms, not ~80ms.
	d := NewDisk(10*time.Millisecond, 4)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Access(0, nextBlock())
		}()
	}
	wg.Wait()
	took := time.Since(start)
	if took > 60*time.Millisecond {
		t.Errorf("8 accesses on 4 slots took %v, want well under serial 80ms", took)
	}
}

func TestSerialGateQueues(t *testing.T) {
	// 6 accesses of 10ms on 1 slot must take at least 60ms.
	d := NewDisk(10*time.Millisecond, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Access(0, nextBlock())
		}()
	}
	wg.Wait()
	if took := time.Since(start); took < 55*time.Millisecond {
		t.Errorf("serial disk took %v, want >= ~60ms", took)
	}
}

func TestStragglerRuleDelaysExactCount(t *testing.T) {
	p := NewStragglerPlan()
	p.AddRule(2, 3, 20*time.Millisecond, 2)
	d := NewDisk(0, 1)
	d.AttachStragglers(2, p)

	start := time.Now()
	d.Access(3, nextBlock())
	d.Access(3, nextBlock())
	if took := time.Since(start); took < 35*time.Millisecond {
		t.Errorf("two delayed accesses took %v, want >= 40ms", took)
	}
	if p.Remaining(2, 3) != 0 {
		t.Errorf("remaining = %d", p.Remaining(2, 3))
	}
	// Budget exhausted: further accesses are fast.
	start = time.Now()
	d.Access(3, nextBlock())
	if took := time.Since(start); took > 10*time.Millisecond {
		t.Errorf("post-budget access took %v", took)
	}
}

func TestStragglerOnlyMatchingServerAndStep(t *testing.T) {
	p := NewStragglerPlan()
	p.AddRule(1, 1, 20*time.Millisecond, 100)
	d := NewDisk(0, 1)
	d.AttachStragglers(0, p) // different server

	start := time.Now()
	d.Access(1, nextBlock())
	if took := time.Since(start); took > 10*time.Millisecond {
		t.Errorf("non-matching server delayed: %v", took)
	}
	d2 := NewDisk(0, 1)
	d2.AttachStragglers(1, p)
	start = time.Now()
	d2.Access(0, nextBlock()) // different step
	if took := time.Since(start); took > 10*time.Millisecond {
		t.Errorf("non-matching step delayed: %v", took)
	}
	if p.Remaining(1, 1) != 100 {
		t.Errorf("budget consumed by non-matching accesses: %d", p.Remaining(1, 1))
	}
}

func TestPaperPlanRoundRobin(t *testing.T) {
	// §VII-C: stragglers at steps 1, 3, 7 over three servers round-robin.
	p := PaperPlan([]int{4, 9, 14}, []int{1, 3, 7}, 50*time.Millisecond, 500)
	for _, c := range []struct{ server, step, want int }{
		{4, 1, 500}, {9, 3, 500}, {14, 7, 500},
		{4, 3, 0}, {9, 1, 0}, {14, 1, 0},
	} {
		if got := p.Remaining(c.server, c.step); got != c.want {
			t.Errorf("Remaining(%d,%d) = %d, want %d", c.server, c.step, got, c.want)
		}
	}
}

func TestParallelismFloor(t *testing.T) {
	d := NewDisk(0, 0)       // clamped to 1
	d.Access(0, nextBlock()) // must not deadlock
	if d.Accesses() != 1 {
		t.Error("access not recorded")
	}
}
