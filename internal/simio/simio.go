// Package simio is the virtual disk substrate. The paper's evaluation ran
// on a 320-node cluster where every vertex visit was a cold, mostly
// sequential disk access; here the whole cluster is simulated in one
// process, so each backend server gets a Disk: a gate with a configurable
// number of I/O slots and a fixed service time per access. Blocking a
// goroutine on the gate costs no CPU, which is what makes a 32-server
// simulation faithful on a small machine — the latency structure (serial
// per-server I/O, queueing under load, stragglers) is preserved even
// though the bytes live in memory.
//
// The package also implements the external-interference emulation of
// §VII-C verbatim: a StragglerPlan injects a fixed extra delay into a fixed
// number of individual vertex accesses on chosen servers at chosen steps.
package simio

import (
	"sync"
	"time"
)

// Disk models one backend server's storage device.
//
// Sub-millisecond service times are far below the OS sleep granularity, so
// the disk quantizes: it accrues virtual latency per access and sleeps only
// once the accrued debt reaches sleepQuantum. Throughput over any window
// longer than the quantum matches the configured service time exactly,
// which is the property the traversal simulation depends on.
type Disk struct {
	service time.Duration
	slots   chan struct{}

	mu        sync.Mutex
	straggler *StragglerPlan
	server    int
	accesses  int64
	cold      int64
	debt      time.Duration
	touched   map[uint64]struct{}
	tracer    func(server, step int, block uint64)
}

// sleepQuantum is the smallest sleep the simulation issues; shorter debts
// accumulate until they reach it.
const sleepQuantum = time.Millisecond

// warmFraction is the cost of a repeat access relative to a cold one: the
// paper's evaluations run each traversal from a cold start, but a vertex
// visited twice within one traversal is served by the storage system's
// block cache / OS page cache on the second visit, at memory speed rather
// than disk speed. Redundant visits therefore waste bandwidth and CPU, not
// full seeks — which is why the paper's unoptimized Async-GT is ~1.3x
// slower than Sync-GT rather than arbitrarily slower.
const warmFraction = 0.02

// NewDisk creates a disk with the given per-access service time and number
// of concurrent I/O slots (parallelism). A service time of zero disables
// the simulated latency entirely (unit-test mode); parallelism below one is
// treated as one.
func NewDisk(service time.Duration, parallelism int) *Disk {
	if parallelism < 1 {
		parallelism = 1
	}
	d := &Disk{
		service: service,
		slots:   make(chan struct{}, parallelism),
		server:  -1,
		touched: make(map[uint64]struct{}),
	}
	for i := 0; i < parallelism; i++ {
		d.slots <- struct{}{}
	}
	return d
}

// AttachStragglers arms a straggler plan for this disk, identifying which
// simulated server it belongs to.
func (d *Disk) AttachStragglers(server int, p *StragglerPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.server = server
	d.straggler = p
}

// AttachTracer installs an access-trace callback (tests and tooling). The
// tracer runs under the disk's lock and must be fast.
func (d *Disk) AttachTracer(fn func(server, step int, block uint64)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracer = fn
}

// Access performs one simulated access to the given block (a vertex id, or
// any distinct key for index scans) on behalf of the given traversal step:
// it acquires an I/O slot, waits the service time — full for a cold block,
// warmFraction of it for a previously touched block — plus any injected
// straggler delay, and releases the slot. With a zero service time and no
// straggler hit it returns immediately without blocking.
func (d *Disk) Access(step int, block uint64) {
	var extra time.Duration
	d.mu.Lock()
	d.accesses++
	service := d.service
	if _, warm := d.touched[block]; warm {
		service = time.Duration(float64(service) * warmFraction)
	} else {
		d.touched[block] = struct{}{}
		d.cold++
	}
	if d.straggler != nil {
		extra = d.straggler.take(d.server, step)
	}
	if d.tracer != nil {
		d.tracer(d.server, step, block)
	}
	d.mu.Unlock()
	total := service + extra
	if total == 0 {
		return
	}
	<-d.slots
	// Quantize: pay the accrued virtual latency only once it is large
	// enough for the OS timer to honor.
	d.mu.Lock()
	d.debt += total
	pay := d.debt
	if pay >= sleepQuantum {
		d.debt = 0
	} else {
		pay = 0
	}
	d.mu.Unlock()
	if pay > 0 {
		time.Sleep(pay)
	}
	d.slots <- struct{}{}
}

// Accesses reports how many accesses the disk has served.
func (d *Disk) Accesses() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.accesses
}

// ColdAccesses reports how many accesses missed the simulated block cache.
func (d *Disk) ColdAccesses() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cold
}

// Reset empties the simulated block cache and latency debt, restoring the
// cold-start condition the paper's evaluations begin each traversal from.
func (d *Disk) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.touched = make(map[uint64]struct{})
	d.debt = 0
}

// StragglerPlan emulates transient external interference the way §VII-C
// does: on selected (server, step) pairs, the first Count vertex accesses
// each suffer a fixed additional Delay. The paper used Delay = 50 ms and
// Count = 500, three selected servers, one straggler per step chosen
// round-robin at steps 1, 3 and 7.
type StragglerPlan struct {
	mu    sync.Mutex
	rules map[stragglerKey]*stragglerRule
}

type stragglerKey struct{ server, step int }

type stragglerRule struct {
	delay     time.Duration
	remaining int
}

// NewStragglerPlan returns an empty plan.
func NewStragglerPlan() *StragglerPlan {
	return &StragglerPlan{rules: make(map[stragglerKey]*stragglerRule)}
}

// AddRule arms one straggler: the first count accesses on server at the
// given traversal step each take an extra delay.
func (p *StragglerPlan) AddRule(server, step int, delay time.Duration, count int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[stragglerKey{server, step}] = &stragglerRule{delay: delay, remaining: count}
}

// PaperPlan builds the §VII-C configuration: len(steps) stragglers, each on
// one of the selected servers chosen round-robin per step.
func PaperPlan(servers []int, steps []int, delay time.Duration, count int) *StragglerPlan {
	p := NewStragglerPlan()
	for i, step := range steps {
		p.AddRule(servers[i%len(servers)], step, delay, count)
	}
	return p
}

// take consumes one delayed access if a rule matches, returning the delay.
func (p *StragglerPlan) take(server, step int) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.rules[stragglerKey{server, step}]
	if !ok || r.remaining <= 0 {
		return 0
	}
	r.remaining--
	return r.delay
}

// Remaining reports the undelivered delay count for a (server, step) rule,
// mostly for tests.
func (p *StragglerPlan) Remaining(server, step int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.rules[stragglerKey{server, step}]; ok {
		return r.remaining
	}
	return 0
}
