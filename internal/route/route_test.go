package route

import (
	"reflect"
	"testing"

	"graphtrek/internal/model"
	"graphtrek/internal/partition"
)

// The identity table must place every vertex exactly where the static hash
// partitioner does, or enabling replication would reshuffle the graph.
func TestIdentityMatchesHashPartitioner(t *testing.T) {
	for _, servers := range []int{1, 2, 3, 5, 8} {
		hash := partition.NewHash(servers)
		v := NewView(Identity(servers, 2))
		if v.N() != hash.N() {
			t.Fatalf("servers=%d: N()=%d want %d", servers, v.N(), hash.N())
		}
		for id := model.VertexID(0); id < 10000; id++ {
			if got, want := v.Owner(id), hash.Owner(id); got != want {
				t.Fatalf("servers=%d id=%d: Owner=%d want %d", servers, id, got, want)
			}
		}
	}
}

func TestIdentityReplicaSets(t *testing.T) {
	tbl := Identity(3, 2)
	for p, a := range tbl.Parts {
		if a.Epoch != 1 {
			t.Fatalf("part %d epoch %d want 1", p, a.Epoch)
		}
		if int(a.Primary) != p {
			t.Fatalf("part %d primary %d want %d", p, a.Primary, p)
		}
		want := []int32{int32((p + 1) % 3)}
		if !reflect.DeepEqual(a.Followers, want) {
			t.Fatalf("part %d followers %v want %v", p, a.Followers, want)
		}
		if q := a.Quorum(); q != 2 {
			t.Fatalf("part %d quorum %d want 2", p, q)
		}
	}
	// Replication factor clamps to the server count.
	if got := len(Identity(2, 5).Parts[0].Followers); got != 1 {
		t.Fatalf("RF clamp: followers=%d want 1", got)
	}
	// RF 1 means no followers and quorum 1 (replication off).
	solo := Identity(3, 1).Parts[0]
	if len(solo.Followers) != 0 || solo.Quorum() != 1 {
		t.Fatalf("RF=1: followers=%v quorum=%d", solo.Followers, solo.Quorum())
	}
}

// Merge must be per-partition higher-epoch-wins, idempotent, and
// order-insensitive — the properties that make route gossip safe to
// deliver duplicated and out of order.
func TestMergeHigherEpochWins(t *testing.T) {
	base := Identity(3, 2)
	newer := base.Clone()
	newer.Parts[1] = Assignment{Epoch: 5, Primary: 2, Followers: []int32{0}}

	got := base.Clone()
	if !got.Merge(newer) {
		t.Fatal("merge of newer table reported no change")
	}
	if !reflect.DeepEqual(got.Parts[1], newer.Parts[1]) {
		t.Fatalf("part 1 = %+v want %+v", got.Parts[1], newer.Parts[1])
	}
	if !reflect.DeepEqual(got.Parts[0], base.Parts[0]) {
		t.Fatalf("part 0 changed: %+v", got.Parts[0])
	}
	// Idempotent: merging again changes nothing.
	if got.Merge(newer) {
		t.Fatal("second merge reported a change")
	}
	// Stale direction: merging the old table into the new one is a no-op.
	n2 := newer.Clone()
	if n2.Merge(base) {
		t.Fatal("merging older table reported a change")
	}
	// Mismatched partition counts are rejected outright.
	if got.Merge(&Table{Servers: 3, Parts: make([]Assignment, 7)}) {
		t.Fatal("merge across partition counts reported a change")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tbl := Identity(4, 3)
	tbl.Parts[2] = Assignment{Epoch: 9, Primary: 0, Followers: []int32{3, 1}}
	got, err := DecodeTable(tbl.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tbl) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, tbl)
	}
	// Truncated payloads must fail cleanly, not panic or mis-parse.
	enc := tbl.Encode()
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeTable(enc[:i]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", i)
		}
	}
	if _, err := DecodeTable(append(enc, 0)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}

func TestViewUpdateAndPropose(t *testing.T) {
	v := NewView(Identity(3, 2))
	before := v.Table()

	// Propose with a stale epoch is rejected.
	if v.Propose(0, Assignment{Epoch: 1, Primary: 1}) != nil {
		t.Fatal("stale propose accepted")
	}
	if v.Table() != before {
		t.Fatal("rejected propose swapped the table")
	}

	// A fresh-epoch propose swaps in a new table without mutating the old.
	next := v.Propose(0, Assignment{Epoch: 2, Primary: 1, Followers: []int32{2}})
	if next == nil {
		t.Fatal("propose rejected")
	}
	if before.Parts[0].Epoch != 1 {
		t.Fatal("propose mutated the published table")
	}
	if got := v.Assignment(0); got.Epoch != 2 || got.Primary != 1 {
		t.Fatalf("assignment after propose: %+v", got)
	}

	// Update merges and reports change; repeat delivery is a no-op.
	remote := Identity(3, 2)
	remote.Parts[1] = Assignment{Epoch: 7, Primary: 0, Followers: []int32{2}}
	if !v.Update(remote) {
		t.Fatal("update with newer assignment reported no change")
	}
	if v.Update(remote) {
		t.Fatal("repeated update reported a change")
	}
	// The merge must not have rolled back partition 0's local epoch 2.
	if got := v.Assignment(0); got.Epoch != 2 {
		t.Fatalf("update rolled back partition 0 to %+v", got)
	}
	// Owner follows the merged table.
	tbl := v.Table()
	for id := model.VertexID(0); id < 2000; id++ {
		p := tbl.Partition(id)
		if got, want := v.Owner(id), int(tbl.Parts[p].Primary); got != want {
			t.Fatalf("id %d: owner %d want %d", id, got, want)
		}
	}
}
