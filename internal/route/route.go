// Package route maps partitions to replica sets. It replaces the static
// partition-index-equals-server-index identity the cluster booted with: a
// Table assigns every partition a primary plus follower servers under a
// monotonically increasing per-partition epoch, and a View publishes the
// current table to the traversal engines through the partition.Partitioner
// interface, so dispatch routing follows failover and shard handoff without
// the engines knowing either happened.
//
// Epochs are the fencing token of the replication protocol: any node can
// propose a new assignment for a partition by bumping its epoch, and Merge
// resolves concurrent tables per partition with higher-epoch-wins, which
// makes route gossip idempotent and order-insensitive. A deposed primary
// still operating under an old epoch is rejected by its followers (they
// know a higher epoch) rather than by any central authority.
package route

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"graphtrek/internal/model"
)

// Assignment is one partition's replica set under one epoch.
type Assignment struct {
	// Epoch fences stale primaries; it only ever increases for a partition.
	Epoch uint64
	// Primary is the server traversal dispatch and quorum writes route to.
	Primary int32
	// Followers are the replica servers the primary ships mutations to, in
	// promotion-preference order.
	Followers []int32
}

// Replicas returns the full replica set, primary first.
func (a Assignment) Replicas() []int32 {
	out := make([]int32, 0, 1+len(a.Followers))
	out = append(out, a.Primary)
	return append(out, a.Followers...)
}

// HasReplica reports whether server s is in the replica set.
func (a Assignment) HasReplica(s int32) bool {
	if a.Primary == s {
		return true
	}
	for _, f := range a.Followers {
		if f == s {
			return true
		}
	}
	return false
}

// Quorum is the ack count (primary included) that makes a write durable:
// a majority of the replica set.
func (a Assignment) Quorum() int { return (1+len(a.Followers))/2 + 1 }

// Table is an epoch-stamped partition→replica-set map. Tables are
// immutable once published through a View; derive changed copies with
// Clone.
type Table struct {
	// Servers is the backend server count (transport ids 0..Servers-1).
	Servers int
	// Parts is indexed by partition id; len(Parts) is the partition count,
	// which never changes over a cluster's lifetime (only assignments move).
	Parts []Assignment
}

// Identity builds the boot table that reproduces the seed cluster's static
// layout: partition i's primary is server i, with replicas-1 followers on
// the next servers round-robin. With replicas == 1 the table is exactly the
// partition.NewHash(servers) mapping and replication is effectively off.
func Identity(servers, replicas int) *Table {
	if servers <= 0 {
		panic("route: server count must be positive")
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > servers {
		replicas = servers
	}
	t := &Table{Servers: servers, Parts: make([]Assignment, servers)}
	for p := range t.Parts {
		a := Assignment{Epoch: 1, Primary: int32(p)}
		for r := 1; r < replicas; r++ {
			a.Followers = append(a.Followers, int32((p+r)%servers))
		}
		t.Parts[p] = a
	}
	return t
}

// Partition maps a vertex to its partition id with the same splitmix64
// finalizer partition.Hash uses, so the identity table reproduces the seed
// cluster's vertex placement exactly.
func (t *Table) Partition(id model.VertexID) int {
	if id.Interned() {
		// Interned ids embed the partition chosen at intern time; see
		// model.InternedID. No dictionary lookup on the routing path.
		return id.InternedPartition() % len(t.Parts)
	}
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(t.Parts)))
}

// Clone deep-copies the table so a new assignment can be installed without
// mutating the published one.
func (t *Table) Clone() *Table {
	out := &Table{Servers: t.Servers, Parts: make([]Assignment, len(t.Parts))}
	for i, a := range t.Parts {
		a.Followers = append([]int32(nil), a.Followers...)
		out.Parts[i] = a
	}
	return out
}

// Merge folds another table into this one per partition, higher epoch wins;
// equal epochs keep the local assignment (proposals are made under fresh
// epochs, so an equal-epoch difference never occurs in a correct cluster).
// It reports whether any assignment changed.
func (t *Table) Merge(o *Table) bool {
	if o == nil || len(o.Parts) != len(t.Parts) {
		return false
	}
	changed := false
	for p, a := range o.Parts {
		if a.Epoch > t.Parts[p].Epoch {
			a.Followers = append([]int32(nil), a.Followers...)
			t.Parts[p] = a
			changed = true
		}
	}
	return changed
}

// Encode serializes the table for route gossip (wire.Message Blob).
func (t *Table) Encode() []byte {
	b := binary.AppendUvarint(nil, uint64(t.Servers))
	b = binary.AppendUvarint(b, uint64(len(t.Parts)))
	for _, a := range t.Parts {
		b = binary.AppendUvarint(b, a.Epoch)
		b = binary.AppendUvarint(b, uint64(a.Primary))
		b = binary.AppendUvarint(b, uint64(len(a.Followers)))
		for _, f := range a.Followers {
			b = binary.AppendUvarint(b, uint64(f))
		}
	}
	return b
}

// DecodeTable parses an Encode payload.
func DecodeTable(b []byte) (*Table, error) {
	u := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("route: truncated table")
		}
		b = b[n:]
		return v, nil
	}
	servers, err := u()
	if err != nil {
		return nil, err
	}
	nparts, err := u()
	if err != nil {
		return nil, err
	}
	// Every assignment takes at least 3 bytes, which bounds allocation
	// before make (the decoder sits behind a network trust boundary).
	if nparts > uint64(len(b))/3+1 {
		return nil, fmt.Errorf("route: declared %d partitions in %d bytes", nparts, len(b))
	}
	t := &Table{Servers: int(servers), Parts: make([]Assignment, nparts)}
	for p := range t.Parts {
		var a Assignment
		if a.Epoch, err = u(); err != nil {
			return nil, err
		}
		prim, err := u()
		if err != nil {
			return nil, err
		}
		a.Primary = int32(prim)
		nf, err := u()
		if err != nil {
			return nil, err
		}
		if nf > uint64(len(b))+1 {
			return nil, fmt.Errorf("route: declared %d followers in %d bytes", nf, len(b))
		}
		for i := uint64(0); i < nf; i++ {
			f, err := u()
			if err != nil {
				return nil, err
			}
			a.Followers = append(a.Followers, int32(f))
		}
		t.Parts[p] = a
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("route: %d trailing bytes", len(b))
	}
	return t, nil
}

// View is the atomically swappable published table. It implements
// partition.Partitioner — Owner routes a vertex to its partition's current
// primary — so the traversal engines re-route through failover and handoff
// without code changes at the dispatch sites.
type View struct {
	t atomic.Pointer[Table]
}

// NewView publishes an initial table.
func NewView(t *Table) *View {
	v := &View{}
	v.t.Store(t)
	return v
}

// Table returns the current table. Treat it as immutable; install changes
// with Update or Propose.
func (v *View) Table() *Table { return v.t.Load() }

// Owner implements partition.Partitioner: the current primary of the
// vertex's partition.
func (v *View) Owner(id model.VertexID) int {
	t := v.t.Load()
	return int(t.Parts[t.Partition(id)].Primary)
}

// N implements partition.Partitioner: the backend server count.
func (v *View) N() int { return v.t.Load().Servers }

// Partition returns the vertex's partition id under the current table.
func (v *View) Partition(id model.VertexID) int { return v.t.Load().Partition(id) }

// Assignment returns partition p's current assignment.
func (v *View) Assignment(p int) Assignment { return v.t.Load().Parts[p] }

// Parts returns the partition count.
func (v *View) Parts() int { return len(v.t.Load().Parts) }

// Update merges an incoming table into the view (copy-on-write swap) and
// reports whether anything changed. Lost CAS races retry, so concurrent
// gossip deliveries all land.
func (v *View) Update(o *Table) bool {
	for {
		cur := v.t.Load()
		next := cur.Clone()
		if !next.Merge(o) {
			return false
		}
		if v.t.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// Propose installs a new assignment for one partition if epoch still
// advances past the current one, returning the table that now holds it (or
// nil if a concurrent proposal with an equal or higher epoch won).
func (v *View) Propose(p int, a Assignment) *Table {
	for {
		cur := v.t.Load()
		if p < 0 || p >= len(cur.Parts) || a.Epoch <= cur.Parts[p].Epoch {
			return nil
		}
		next := cur.Clone()
		next.Parts[p] = a
		if v.t.CompareAndSwap(cur, next) {
			return next
		}
	}
}
