// Package cache implements the traversal-affiliate cache of §V-A: a
// per-server, preallocated buffer remembering which {travel-id, step,
// vertex-id} requests have already been served, so the asynchronous engine
// can drop the redundant re-visits that different paths arriving at
// different times would otherwise turn into duplicate disk I/O.
//
// Two deliberate refinements over the paper's triple:
//
//   - the key also carries the rtn()-ancestor tag, because two requests for
//     the same vertex at the same step with different ancestors are NOT
//     redundant — dropping one would lose that ancestor's end-of-chain
//     signal. For plans without rtn() the tag is constant and the key
//     degenerates to the paper's exact triple;
//   - eviction follows the paper's time-based policy: within a traversal,
//     entries with the smallest step id are evicted first, because a larger
//     observed step implies the oldest steps have effectively drained.
package cache

import (
	"sync"

	"graphtrek/internal/model"
)

// Key identifies one served traversal request.
type Key struct {
	Travel  uint64
	Step    int32
	Vertex  model.VertexID
	Anc     model.VertexID
	AncStep int32
}

// Cache is a bounded set of served request keys. The zero value is not
// usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	size    int
	travels map[uint64]*travelSet
}

// travelSet holds one traversal's served keys bucketed by step, so
// smallest-step eviction is O(bucket).
type travelSet struct {
	steps   map[int32]map[Key]struct{}
	minStep int32
	maxStep int32
	size    int
}

// New creates a cache bounded to capacity entries. Capacity below one
// disables bounding (unlimited), which the synchronous engine uses for its
// per-step visited sets.
func New(capacity int) *Cache {
	return &Cache{cap: capacity, travels: make(map[uint64]*travelSet)}
}

// CheckAndInsert reports whether the key was already served; if it was not,
// the key is inserted (and, if the cache is full, entries from the smallest
// step of the same traversal are evicted to make room).
func (c *Cache) CheckAndInsert(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts, ok := c.travels[k.Travel]
	if !ok {
		ts = &travelSet{steps: make(map[int32]map[Key]struct{}), minStep: k.Step, maxStep: k.Step}
		c.travels[k.Travel] = ts
	}
	if bucket, ok := ts.steps[k.Step]; ok {
		if _, hit := bucket[k]; hit {
			return true
		}
	}
	if c.cap > 0 && c.size >= c.cap {
		c.evictLocked(ts, k.Step)
	}
	bucket, ok := ts.steps[k.Step]
	if !ok {
		bucket = make(map[Key]struct{})
		ts.steps[k.Step] = bucket
	}
	bucket[k] = struct{}{}
	ts.size++
	c.size++
	if k.Step < ts.minStep {
		ts.minStep = k.Step
	}
	if k.Step > ts.maxStep {
		ts.maxStep = k.Step
	}
	return false
}

// evictLocked frees room for an insert at step `incoming` by dropping the
// smallest-step bucket of the same traversal. If the traversal has only the
// incoming step's bucket (nothing older to drop), it falls back to evicting
// the smallest-step bucket of the largest other traversal.
func (c *Cache) evictLocked(ts *travelSet, incoming int32) {
	for c.size >= c.cap {
		victim := ts
		if victim.size == 0 || (victim.minStep >= incoming && len(victim.steps) <= 1) {
			// Nothing older within this traversal: evict from the largest
			// other traversal instead.
			victim = nil
			for _, other := range c.travels {
				if other.size == 0 {
					continue
				}
				if victim == nil || other.size > victim.size {
					victim = other
				}
			}
			if victim == nil {
				return // cache empty; insert proceeds
			}
		}
		// Drop the whole smallest-step bucket.
		step := victim.minStep
		for {
			if b, ok := victim.steps[step]; ok && len(b) > 0 {
				victim.size -= len(b)
				c.size -= len(b)
				delete(victim.steps, step)
				break
			}
			if step >= victim.maxStep {
				return
			}
			step++
		}
		// Recompute minStep lazily.
		victim.minStep = victim.maxStep
		for s, b := range victim.steps {
			if len(b) > 0 && s < victim.minStep {
				victim.minStep = s
			}
		}
	}
}

// DropTravel releases every entry of a finished traversal.
func (c *Cache) DropTravel(travel uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts, ok := c.travels[travel]; ok {
		c.size -= ts.size
		delete(c.travels, travel)
	}
}

// Len reports the number of cached keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
