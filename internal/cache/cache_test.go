package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphtrek/internal/model"
)

// id shortens VertexID literals in table entries.
func id(i int) model.VertexID { return model.VertexID(i) }

func TestCheckAndInsertBasic(t *testing.T) {
	c := New(100)
	k := Key{Travel: 1, Step: 2, Vertex: 3}
	if c.CheckAndInsert(k) {
		t.Error("first insert should miss")
	}
	if !c.CheckAndInsert(k) {
		t.Error("second insert should hit")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestDistinctKeysDoNotCollide(t *testing.T) {
	c := New(0)
	base := Key{Travel: 1, Step: 1, Vertex: 7}
	variants := []Key{
		{Travel: 2, Step: 1, Vertex: 7},
		{Travel: 1, Step: 2, Vertex: 7},
		{Travel: 1, Step: 1, Vertex: 8},
		{Travel: 1, Step: 1, Vertex: 7, Anc: 9},
		{Travel: 1, Step: 1, Vertex: 7, AncStep: 3},
	}
	if c.CheckAndInsert(base) {
		t.Fatal("base should miss")
	}
	for i, v := range variants {
		if c.CheckAndInsert(v) {
			t.Errorf("variant %d should not collide with base", i)
		}
	}
	if !c.CheckAndInsert(base) {
		t.Error("base should still be cached")
	}
}

func TestUnboundedCache(t *testing.T) {
	c := New(0)
	for i := 0; i < 10000; i++ {
		if c.CheckAndInsert(Key{Travel: 1, Step: int32(i % 8), Vertex: id(i)}) {
			t.Fatalf("unexpected hit at %d", i)
		}
	}
	if c.Len() != 10000 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestSmallestStepEvictedFirst(t *testing.T) {
	c := New(10)
	// Fill with 5 entries at step 0 and 5 at step 5.
	for i := 0; i < 5; i++ {
		c.CheckAndInsert(Key{Travel: 1, Step: 0, Vertex: id(i)})
	}
	for i := 0; i < 5; i++ {
		c.CheckAndInsert(Key{Travel: 1, Step: 5, Vertex: id(i)})
	}
	// Inserting at step 6 must evict the step-0 bucket, not step 5.
	if c.CheckAndInsert(Key{Travel: 1, Step: 6, Vertex: id(99)}) {
		t.Fatal("fresh key reported as hit")
	}
	for i := 0; i < 5; i++ {
		if c.CheckAndInsert(Key{Travel: 1, Step: 5, Vertex: id(i)}) == false {
			t.Errorf("step-5 entry %d was evicted; smallest step should go first", i)
		}
	}
}

func TestEvictionAcrossTravels(t *testing.T) {
	c := New(10)
	for i := 0; i < 10; i++ {
		c.CheckAndInsert(Key{Travel: 1, Step: 3, Vertex: id(i)})
	}
	// Travel 2 inserts at step 0; travel 2 has nothing older, so the big
	// travel 1 loses entries instead, and the insert succeeds.
	if c.CheckAndInsert(Key{Travel: 2, Step: 0, Vertex: id(0)}) {
		t.Fatal("fresh key reported as hit")
	}
	if !c.CheckAndInsert(Key{Travel: 2, Step: 0, Vertex: id(0)}) {
		t.Error("travel 2 entry should be cached")
	}
	if c.Len() > 10 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}

func TestDropTravel(t *testing.T) {
	c := New(0)
	for i := 0; i < 5; i++ {
		c.CheckAndInsert(Key{Travel: 1, Step: 1, Vertex: id(i)})
		c.CheckAndInsert(Key{Travel: 2, Step: 1, Vertex: id(i)})
	}
	c.DropTravel(1)
	if c.Len() != 5 {
		t.Errorf("Len = %d, want 5", c.Len())
	}
	if c.CheckAndInsert(Key{Travel: 1, Step: 1, Vertex: id(0)}) {
		t.Error("dropped travel entries should be gone")
	}
	if !c.CheckAndInsert(Key{Travel: 2, Step: 1, Vertex: id(0)}) {
		t.Error("other travel entries should remain")
	}
	c.DropTravel(99) // no-op
}

func TestCapacityIsRespectedQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := 8 + r.Intn(64)
		c := New(cap)
		for i := 0; i < 1000; i++ {
			c.CheckAndInsert(Key{
				Travel: uint64(r.Intn(3)),
				Step:   int32(r.Intn(8)),
				Vertex: id(r.Intn(200)),
			})
			if c.Len() > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNeverFalsePositiveQuick(t *testing.T) {
	// A bounded cache may forget (false negative) but must never claim an
	// unseen key was served (false positive) — that would corrupt results.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(16)
		seen := map[Key]bool{}
		for i := 0; i < 500; i++ {
			k := Key{Travel: uint64(r.Intn(2)), Step: int32(r.Intn(6)), Vertex: id(r.Intn(100))}
			hit := c.CheckAndInsert(k)
			if hit && !seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
