package property

import (
	"fmt"
	"strings"
)

// Op is the comparison operator of a property filter. The paper's GTravel
// language defines EQ, IN and RANGE; multiple filters attached to the same
// traversal step compose with AND.
type Op uint8

const (
	// EQ requires the property to equal the single comparison value.
	EQ Op = iota + 1
	// IN requires the property to be a member of the comparison set.
	IN
	// RANGE requires lo <= property <= hi (two comparison values).
	RANGE
)

// String returns the GTravel spelling of the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "EQ"
	case IN:
		return "IN"
	case RANGE:
		return "RANGE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Filter is one predicate over a property map. A Filter with a missing key
// never matches: the paper's filters only select entities that carry the
// attribute.
type Filter struct {
	Key  string
	Op   Op
	Args []Value
}

// NewFilter builds a filter, validating the operator arity. EQ takes one
// argument, RANGE exactly two (lo, hi), IN one or more.
func NewFilter(key string, op Op, args ...Value) (Filter, error) {
	f := Filter{Key: key, Op: op, Args: args}
	if err := f.Validate(); err != nil {
		return Filter{}, err
	}
	return f, nil
}

// Validate checks operator arity and argument validity.
func (f Filter) Validate() error {
	if f.Key == "" {
		return fmt.Errorf("property: filter with empty key")
	}
	for _, a := range f.Args {
		if !a.Valid() {
			return fmt.Errorf("property: filter %q has invalid argument", f.Key)
		}
	}
	switch f.Op {
	case EQ:
		if len(f.Args) != 1 {
			return fmt.Errorf("property: EQ filter %q needs 1 argument, got %d", f.Key, len(f.Args))
		}
	case IN:
		if len(f.Args) == 0 {
			return fmt.Errorf("property: IN filter %q needs at least 1 argument", f.Key)
		}
	case RANGE:
		if len(f.Args) != 2 {
			return fmt.Errorf("property: RANGE filter %q needs 2 arguments, got %d", f.Key, len(f.Args))
		}
		if f.Args[0].Kind() != f.Args[1].Kind() {
			return fmt.Errorf("property: RANGE filter %q bounds have different kinds", f.Key)
		}
		if f.Args[0].Compare(f.Args[1]) > 0 {
			return fmt.Errorf("property: RANGE filter %q has lo > hi", f.Key)
		}
	default:
		return fmt.Errorf("property: unknown filter op %d", f.Op)
	}
	return nil
}

// Match reports whether the property map satisfies the filter.
func (f Filter) Match(m Map) bool {
	v, ok := m[f.Key]
	if !ok {
		return false
	}
	switch f.Op {
	case EQ:
		return v.Equal(f.Args[0])
	case IN:
		for _, a := range f.Args {
			if v.Equal(a) {
				return true
			}
		}
		return false
	case RANGE:
		return v.Kind() == f.Args[0].Kind() &&
			v.Compare(f.Args[0]) >= 0 && v.Compare(f.Args[1]) <= 0
	}
	return false
}

// String renders the filter in GTravel-like syntax, e.g.
// ("start_ts", RANGE, [10, 20]).
func (f Filter) String() string {
	var args []string
	for _, a := range f.Args {
		args = append(args, a.String())
	}
	return fmt.Sprintf("(%q, %s, [%s])", f.Key, f.Op, strings.Join(args, ", "))
}

// Filters is an AND-composed list of filters, as attached to one traversal
// step.
type Filters []Filter

// MatchAll reports whether the map satisfies every filter (AND semantics;
// an empty list matches everything).
func (fs Filters) MatchAll(m Map) bool {
	for _, f := range fs {
		if !f.Match(m) {
			return false
		}
	}
	return true
}

// Validate validates every filter in the list.
func (fs Filters) Validate() error {
	for _, f := range fs {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// AppendFilter appends the binary encoding of f to b.
func AppendFilter(b []byte, f Filter) []byte {
	b = appendString(b, f.Key)
	b = append(b, byte(f.Op))
	b = append(b, byte(len(f.Args)))
	for _, a := range f.Args {
		b = AppendValue(b, a)
	}
	return b
}

// ConsumeFilter decodes one filter from the front of b.
func ConsumeFilter(b []byte) (Filter, []byte, error) {
	key, b, err := consumeString(b)
	if err != nil {
		return Filter{}, nil, err
	}
	if len(b) < 2 {
		return Filter{}, nil, fmt.Errorf("property: truncated filter")
	}
	op := Op(b[0])
	n := int(b[1])
	b = b[2:]
	f := Filter{Key: key, Op: op, Args: make([]Value, 0, n)}
	for i := 0; i < n; i++ {
		var v Value
		v, b, err = ConsumeValue(b)
		if err != nil {
			return Filter{}, nil, err
		}
		f.Args = append(f.Args, v)
	}
	return f, b, nil
}

// AppendFilters appends the binary encoding of fs to b.
func AppendFilters(b []byte, fs Filters) []byte {
	b = append(b, byte(len(fs)))
	for _, f := range fs {
		b = AppendFilter(b, f)
	}
	return b
}

// ConsumeFilters decodes a filter list from the front of b.
func ConsumeFilters(b []byte) (Filters, []byte, error) {
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("property: truncated filter list")
	}
	n := int(b[0])
	b = b[1:]
	if n == 0 {
		return nil, b, nil
	}
	fs := make(Filters, 0, n)
	for i := 0; i < n; i++ {
		f, rest, err := ConsumeFilter(b)
		if err != nil {
			return nil, nil, err
		}
		fs = append(fs, f)
		b = rest
	}
	return fs, b, nil
}
