package property

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := String("abc"); v.Kind() != KindString || v.Str() != "abc" {
		t.Errorf("String: got %v", v)
	}
	if v := Int(-42); v.Kind() != KindInt || v.I64() != -42 {
		t.Errorf("Int: got %v", v)
	}
	if v := Float(3.5); v.Kind() != KindFloat || v.F64() != 3.5 {
		t.Errorf("Float: got %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.B() {
		t.Errorf("Bool: got %v", v)
	}
	if (Value{}).Valid() {
		t.Error("zero Value should be invalid")
	}
}

func TestOfConversions(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{"x", String("x")},
		{7, Int(7)},
		{int32(8), Int(8)},
		{int64(-9), Int(-9)},
		{uint32(10), Int(10)},
		{1.5, Float(1.5)},
		{float32(2), Float(2)},
		{true, Bool(true)},
		{Int(3), Int(3)},
	}
	for _, c := range cases {
		if got := Of(c.in); !got.Equal(c.want) {
			t.Errorf("Of(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if Of(struct{}{}).Valid() {
		t.Error("Of(unsupported) should be invalid")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(1).Equal(Int(1)) {
		t.Error("Int(1) != Int(1)")
	}
	if Int(1).Equal(Float(1)) {
		t.Error("Int(1) should differ from Float(1)")
	}
	if String("a").Equal(String("b")) {
		t.Error("strings should differ")
	}
}

func TestValueCompareWithinKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAcrossKinds(t *testing.T) {
	// Cross-kind comparison orders by Kind so Compare is a total order.
	if String("z").Compare(Int(0)) >= 0 {
		t.Error("string should sort before int (kind order)")
	}
	if Int(5).Compare(String("a")) <= 0 {
		t.Error("int should sort after string")
	}
}

func TestValueStringer(t *testing.T) {
	cases := map[string]Value{
		`"hi"`:      String("hi"),
		"42":        Int(42),
		"1.5":       Float(1.5),
		"true":      Bool(true),
		"<invalid>": {},
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return String(string(b))
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Float(r.NormFloat64())
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func TestValueEncodeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r)
		enc := AppendValue(nil, v)
		got, rest, err := ConsumeValue(enc)
		return err == nil && len(rest) == 0 && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareIsTotalOrderQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		// antisymmetry
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// reflexivity / consistency with Equal
		if a.Compare(a) != 0 || (a.Compare(b) == 0) != equalForOrder(a, b) {
			return false
		}
		// transitivity of <=
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// equalForOrder mirrors Compare's notion of equality: NaN floats are the
// only case where Equal (bit comparison) and Compare can disagree.
func equalForOrder(a, b Value) bool {
	if a.Kind() == KindFloat && b.Kind() == KindFloat {
		return !(a.F64() < b.F64()) && !(a.F64() > b.F64())
	}
	return a.Equal(b)
}

func TestMapEncodeRoundTrip(t *testing.T) {
	m := Map{
		"name":  String("dset-1"),
		"size":  Int(1020 << 20),
		"ratio": Float(0.25),
		"dirty": Bool(false),
	}
	enc := AppendMap(nil, m)
	got, rest, err := ConsumeMap(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: err=%v rest=%d", err, len(rest))
	}
	if len(got) != len(m) {
		t.Fatalf("got %d entries, want %d", len(got), len(m))
	}
	for k, v := range m {
		if !got[k].Equal(v) {
			t.Errorf("key %q: got %v want %v", k, got[k], v)
		}
	}
}

func TestMapEncodeDeterministic(t *testing.T) {
	m := Map{"b": Int(2), "a": Int(1), "c": Int(3)}
	e1 := AppendMap(nil, m)
	e2 := AppendMap(nil, m.Clone())
	if !reflect.DeepEqual(e1, e2) {
		t.Error("map encoding not deterministic")
	}
}

func TestMapEmptyAndNil(t *testing.T) {
	enc := AppendMap(nil, nil)
	got, rest, err := ConsumeMap(enc)
	if err != nil || len(rest) != 0 || len(got) != 0 {
		t.Fatalf("nil map round trip: %v %v %v", got, rest, err)
	}
	if (Map)(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestMapEncodeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := make(Map)
		for i := 0; i < r.Intn(8); i++ {
			b := make([]byte, 1+r.Intn(10))
			r.Read(b)
			m[string(b)] = randomValue(r)
		}
		enc := AppendMap(nil, m)
		got, rest, err := ConsumeMap(enc)
		if err != nil || len(rest) != 0 || len(got) != len(m) {
			return false
		}
		for k, v := range m {
			g, ok := got[k]
			if !ok {
				return false
			}
			// Bit-level equality also covers NaN floats.
			if g.Kind() != v.Kind() || (v.Kind() == KindString && g.Str() != v.Str()) {
				return false
			}
			if v.Kind() != KindString && g.num != v.num {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsumeValueErrors(t *testing.T) {
	if _, _, err := ConsumeValue(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := ConsumeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Error("truncated scalar should error")
	}
	if _, _, err := ConsumeValue([]byte{99}); err == nil {
		t.Error("unknown kind should error")
	}
	if _, _, err := ConsumeValue([]byte{byte(KindString), 5, 'a'}); err == nil {
		t.Error("truncated string should error")
	}
}

func TestConsumeMapErrors(t *testing.T) {
	if _, _, err := ConsumeMap(nil); err == nil {
		t.Error("empty input should error")
	}
	// count says 1 entry but nothing follows
	if _, _, err := ConsumeMap([]byte{1}); err == nil {
		t.Error("truncated map should error")
	}
	// A length bomb — a tiny buffer declaring 2^56 entries — must be
	// rejected before allocation, not panic or OOM.
	bomb := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x01}
	if _, _, err := ConsumeMap(bomb); err == nil {
		t.Error("length bomb should error")
	}
}

func TestFloatSpecialValues(t *testing.T) {
	inf := Float(math.Inf(1))
	if inf.F64() != math.Inf(1) {
		t.Error("inf round trip")
	}
	nan := Float(math.NaN())
	enc := AppendValue(nil, nan)
	got, _, err := ConsumeValue(enc)
	if err != nil || !math.IsNaN(got.F64()) {
		t.Error("NaN should round-trip through encoding")
	}
}
