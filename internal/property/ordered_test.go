package property

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomOrderedPair returns two values sharing an order-comparable kind.
// NaN is excluded: Compare treats NaN as equal to everything (a partial
// order artifact), while the byte encoding places it at an extreme, so no
// sign agreement is possible or required — indexes document NaN as
// unsupported for range semantics.
func randomOrderedPair(r *rand.Rand) (Value, Value) {
	switch r.Intn(3) {
	case 0:
		return Int(r.Int63() - r.Int63()), Int(r.Int63() - r.Int63())
	case 1:
		f := func() float64 {
			switch r.Intn(8) {
			case 0:
				return 0
			case 1:
				return math.Copysign(0, -1)
			case 2:
				return math.Inf(1)
			case 3:
				return math.Inf(-1)
			default:
				return r.NormFloat64() * math.Pow(10, float64(r.Intn(20)-10))
			}
		}
		return Float(f()), Float(f())
	default:
		return Bool(r.Intn(2) == 0), Bool(r.Intn(2) == 0)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

// TestOrderedEncodingMatchesCompareQuick is the property the index range
// scan rests on: for every order-comparable kind, bytes.Compare over the
// ordered encodings agrees in sign with Value.Compare.
func TestOrderedEncodingMatchesCompareQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomOrderedPair(r)
		if !OrderComparable(a.Kind()) {
			return false
		}
		ea := AppendOrderedValue(nil, a)
		eb := AppendOrderedValue(nil, b)
		return sign(bytes.Compare(ea, eb)) == sign(a.Compare(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestOrderedEncodingEdgeCases pins the tricky boundaries the quickcheck
// may not hit: integer sign flip, float total-order branches, and the
// kind-tag prefix keeping kinds in disjoint byte ranges.
func TestOrderedEncodingEdgeCases(t *testing.T) {
	ladders := [][]Value{
		{Int(math.MinInt64), Int(-1), Int(0), Int(1), Int(math.MaxInt64)},
		{Float(math.Inf(-1)), Float(-math.MaxFloat64), Float(-1.5),
			Float(-math.SmallestNonzeroFloat64), Float(0),
			Float(math.SmallestNonzeroFloat64), Float(1.5), Float(math.Inf(1))},
		{Bool(false), Bool(true)},
	}
	for _, ladder := range ladders {
		for i := 0; i+1 < len(ladder); i++ {
			a, b := ladder[i], ladder[i+1]
			if bytes.Compare(AppendOrderedValue(nil, a), AppendOrderedValue(nil, b)) >= 0 {
				t.Errorf("enc(%v) should sort before enc(%v)", a, b)
			}
		}
	}
}

// TestNegativeZeroNormalized pins the Float constructor collapsing -0 to
// +0, the one float pair Compare calls equal but whose raw bit patterns
// would encode differently — left distinct, an exact-match index row
// written under one zero would be invisible to a lookup of the other.
func TestNegativeZeroNormalized(t *testing.T) {
	neg := Float(math.Copysign(0, -1))
	pos := Float(0)
	if !neg.Equal(pos) {
		t.Error("Float(-0) should equal Float(+0) after normalization")
	}
	if math.Signbit(neg.F64()) {
		t.Error("Float(-0) should store +0 bits")
	}
	if !bytes.Equal(AppendOrderedValue(nil, neg), AppendOrderedValue(nil, pos)) {
		t.Error("ordered encodings of the two zeros should be identical")
	}
	if !bytes.Equal(AppendValue(nil, neg), AppendValue(nil, pos)) {
		t.Error("plain encodings of the two zeros should be identical")
	}
}
