// Package property implements the typed property values attached to the
// vertices and edges of a property graph, together with the filter
// predicates (EQ, IN, RANGE) that the GTravel language applies during a
// traversal step.
//
// Values are deliberately restricted to a small set of scalar kinds —
// strings, signed integers, floats and booleans — matching the metadata
// attributes the paper's use cases need (file names, sizes, timestamps,
// permissions, annotations). Every value is totally ordered within its
// kind, which is what RANGE filters and the sorted storage layout rely on.
package property

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind enumerates the scalar types a property value may hold.
type Kind uint8

const (
	// KindInvalid is the zero Kind; no valid Value has it.
	KindInvalid Kind = iota
	// KindString holds an arbitrary UTF-8 string.
	KindString
	// KindInt holds a signed 64-bit integer (timestamps, sizes, ids).
	KindInt
	// KindFloat holds a 64-bit IEEE float.
	KindFloat
	// KindBool holds a boolean flag.
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed scalar property value. The zero Value is
// invalid; construct values with String, Int, Float or Bool.
type Value struct {
	kind Kind
	num  uint64 // int64 bits, float64 bits, or 0/1 for bool
	str  string
}

// String returns a Value holding s.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int returns a Value holding i.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a Value holding f. Negative zero is normalized to positive
// zero so that Equal, Compare and the ordered index encoding agree on the
// pair (Compare already treats them as equal; distinct bit patterns would
// let an exact-match index lookup and a byte-range scan disagree).
func Float(f float64) Value {
	if f == 0 {
		f = 0
	}
	return Value{kind: KindFloat, num: math.Float64bits(f)}
}

// Bool returns a Value holding b.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Of converts a native Go scalar into a Value. Supported argument types are
// string, int, int32, int64, uint32, float64, float32 and bool; any other
// type yields an invalid Value.
func Of(v any) Value {
	switch x := v.(type) {
	case string:
		return String(x)
	case int:
		return Int(int64(x))
	case int32:
		return Int(int64(x))
	case int64:
		return Int(x)
	case uint32:
		return Int(int64(x))
	case float32:
		return Float(float64(x))
	case float64:
		return Float(x)
	case bool:
		return Bool(x)
	case Value:
		return x
	default:
		return Value{}
	}
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// Valid reports whether the value holds one of the supported kinds.
func (v Value) Valid() bool { return v.kind != KindInvalid }

// Str returns the string payload; it is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// I64 returns the integer payload; it is only meaningful for KindInt.
func (v Value) I64() int64 { return int64(v.num) }

// F64 returns the float payload; it is only meaningful for KindFloat.
func (v Value) F64() float64 { return math.Float64frombits(v.num) }

// B returns the boolean payload; it is only meaningful for KindBool.
func (v Value) B() bool { return v.num != 0 }

// String implements fmt.Stringer for debugging and CLI output.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return fmt.Sprintf("%q", v.str)
	case KindInt:
		return fmt.Sprintf("%d", v.I64())
	case KindFloat:
		return fmt.Sprintf("%g", v.F64())
	case KindBool:
		return fmt.Sprintf("%t", v.B())
	default:
		return "<invalid>"
	}
}

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	if v.kind == KindString {
		return v.str == o.str
	}
	return v.num == o.num
}

// Compare orders v against o. Values of different kinds order by kind so
// that Compare is a total order over all values; within a kind the natural
// order applies. The result is -1, 0 or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.str, o.str)
	case KindInt:
		a, b := v.I64(), o.I64()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case KindFloat:
		a, b := v.F64(), o.F64()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case KindBool:
		a, b := v.num, o.num
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	return 0
}

// Map is a set of named property values, as stored on a vertex or edge.
type Map map[string]Value

// Clone returns a shallow copy of the map (values are immutable).
func (m Map) Clone() Map {
	if m == nil {
		return nil
	}
	c := make(Map, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Keys returns the sorted property names, for deterministic encoding.
func (m Map) Keys() []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func consumeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("property: truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// AppendValue appends the binary encoding of v to b. The encoding is a one
// byte kind tag followed by the payload (uvarint-length string or fixed
// 8-byte little-endian scalar).
func AppendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindString:
		b = appendString(b, v.str)
	case KindInt, KindFloat, KindBool:
		b = binary.LittleEndian.AppendUint64(b, v.num)
	}
	return b
}

// AppendOrderedValue appends an order-preserving encoding of v to b: a one
// byte kind tag followed by a payload whose byte order matches Compare for
// every kind OrderComparable reports true for. Ints are big-endian with the
// sign bit flipped, floats use the IEEE-754 total-order bit trick, bools are
// a big-endian 0/1 word. Strings keep the uvarint-length prefix of
// AppendValue — prefix-free (required for exact-match scans) but not
// order-preserving across different lengths. Secondary indexes use this
// encoding so RANGE lookups over numeric keys become one bounded key-range
// scan.
func AppendOrderedValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindString:
		b = appendString(b, v.str)
	case KindInt:
		b = binary.BigEndian.AppendUint64(b, v.num^(1<<63))
	case KindFloat:
		bits := v.num
		if bits>>63 == 1 {
			bits = ^bits // negative: flip everything so magnitude order reverses
		} else {
			bits |= 1 << 63 // positive: above all negatives
		}
		b = binary.BigEndian.AppendUint64(b, bits)
	case KindBool:
		b = binary.BigEndian.AppendUint64(b, v.num)
	}
	return b
}

// OrderComparable reports whether AppendOrderedValue preserves Compare
// order for values of kind k, i.e. whether a byte-range scan over the
// encoding implements a RANGE filter exactly.
func OrderComparable(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindBool
}

// ConsumeValue decodes one value from the front of b, returning the value
// and the remaining bytes.
func ConsumeValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("property: empty value encoding")
	}
	k := Kind(b[0])
	b = b[1:]
	switch k {
	case KindString:
		s, rest, err := consumeString(b)
		if err != nil {
			return Value{}, nil, err
		}
		return Value{kind: k, str: s}, rest, nil
	case KindInt, KindFloat, KindBool:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("property: truncated scalar")
		}
		return Value{kind: k, num: binary.LittleEndian.Uint64(b)}, b[8:], nil
	default:
		return Value{}, nil, fmt.Errorf("property: unknown kind %d", k)
	}
}

// AppendMap appends the binary encoding of m to b: a uvarint count followed
// by sorted key/value pairs. Sorting keeps the encoding deterministic, which
// the storage layer and tests rely on.
func AppendMap(b []byte, m Map) []byte {
	b = binary.AppendUvarint(b, uint64(len(m)))
	for _, k := range m.Keys() {
		b = appendString(b, k)
		b = AppendValue(b, m[k])
	}
	return b
}

// ConsumeMap decodes a property map from the front of b.
func ConsumeMap(b []byte) (Map, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("property: truncated map header")
	}
	b = b[sz:]
	if n == 0 {
		return nil, b, nil
	}
	// Each entry encodes to at least 2 bytes (key length + value kind);
	// a larger declared count is corruption, rejected before allocating.
	if n > uint64(len(b))/2 {
		return nil, nil, fmt.Errorf("property: map declares %d entries in %d bytes", n, len(b))
	}
	m := make(Map, n)
	for i := uint64(0); i < n; i++ {
		k, rest, err := consumeString(b)
		if err != nil {
			return nil, nil, err
		}
		v, rest, err := ConsumeValue(rest)
		if err != nil {
			return nil, nil, err
		}
		m[k] = v
		b = rest
	}
	return m, b, nil
}
