package property

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustFilter(t *testing.T, key string, op Op, args ...Value) Filter {
	t.Helper()
	f, err := NewFilter(key, op, args...)
	if err != nil {
		t.Fatalf("NewFilter(%q, %v): %v", key, op, err)
	}
	return f
}

func TestFilterEQ(t *testing.T) {
	f := mustFilter(t, "type", EQ, String("text"))
	if !f.Match(Map{"type": String("text")}) {
		t.Error("EQ should match equal value")
	}
	if f.Match(Map{"type": String("bin")}) {
		t.Error("EQ should not match different value")
	}
	if f.Match(Map{"other": String("text")}) {
		t.Error("EQ should not match missing key")
	}
	if f.Match(nil) {
		t.Error("EQ should not match nil map")
	}
}

func TestFilterIN(t *testing.T) {
	f := mustFilter(t, "group", IN, String("admin"), String("cgroup"))
	if !f.Match(Map{"group": String("admin")}) || !f.Match(Map{"group": String("cgroup")}) {
		t.Error("IN should match members")
	}
	if f.Match(Map{"group": String("guest")}) {
		t.Error("IN should reject non-members")
	}
}

func TestFilterRANGE(t *testing.T) {
	f := mustFilter(t, "ts", RANGE, Int(10), Int(20))
	for ts, want := range map[int64]bool{9: false, 10: true, 15: true, 20: true, 21: false} {
		if got := f.Match(Map{"ts": Int(ts)}); got != want {
			t.Errorf("RANGE match ts=%d: got %v want %v", ts, got, want)
		}
	}
	// RANGE against a value of a different kind must not match.
	if f.Match(Map{"ts": String("15")}) {
		t.Error("RANGE should not match mismatched kind")
	}
}

func TestFilterValidation(t *testing.T) {
	bad := []Filter{
		{Key: "", Op: EQ, Args: []Value{Int(1)}},
		{Key: "k", Op: EQ, Args: nil},
		{Key: "k", Op: EQ, Args: []Value{Int(1), Int(2)}},
		{Key: "k", Op: IN, Args: nil},
		{Key: "k", Op: RANGE, Args: []Value{Int(1)}},
		{Key: "k", Op: RANGE, Args: []Value{Int(2), Int(1)}},
		{Key: "k", Op: RANGE, Args: []Value{Int(1), String("x")}},
		{Key: "k", Op: Op(99), Args: []Value{Int(1)}},
		{Key: "k", Op: EQ, Args: []Value{{}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d (%v): expected validation error", i, f)
		}
	}
}

func TestFiltersMatchAllANDSemantics(t *testing.T) {
	fs := Filters{
		mustFilter(t, "type", EQ, String("Execution")),
		mustFilter(t, "ts", RANGE, Int(0), Int(100)),
	}
	if !fs.MatchAll(Map{"type": String("Execution"), "ts": Int(50)}) {
		t.Error("both filters satisfied should match")
	}
	if fs.MatchAll(Map{"type": String("Execution"), "ts": Int(200)}) {
		t.Error("one failing filter should reject")
	}
	if !(Filters{}).MatchAll(nil) {
		t.Error("empty filter list should match everything")
	}
}

func TestFiltersValidate(t *testing.T) {
	fs := Filters{{Key: "k", Op: EQ, Args: nil}}
	if err := fs.Validate(); err == nil {
		t.Error("expected error from invalid member")
	}
	ok := Filters{mustFilter(t, "a", EQ, Int(1))}
	if err := ok.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFilterString(t *testing.T) {
	f := mustFilter(t, "start_ts", RANGE, Int(1), Int(2))
	s := f.String()
	for _, want := range []string{"start_ts", "RANGE", "1", "2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if got := Op(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown op String() = %q", got)
	}
}

func randomFilter(r *rand.Rand) Filter {
	key := string(rune('a' + r.Intn(26)))
	switch r.Intn(3) {
	case 0:
		return Filter{Key: key, Op: EQ, Args: []Value{randomValue(r)}}
	case 1:
		n := 1 + r.Intn(4)
		args := make([]Value, n)
		for i := range args {
			args[i] = randomValue(r)
		}
		return Filter{Key: key, Op: IN, Args: args}
	default:
		lo, hi := Int(r.Int63n(100)), Int(r.Int63n(100)+100)
		return Filter{Key: key, Op: RANGE, Args: []Value{lo, hi}}
	}
}

func TestFilterEncodeRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fs := make(Filters, r.Intn(5))
		for i := range fs {
			fs[i] = randomFilter(r)
		}
		enc := AppendFilters(nil, fs)
		got, rest, err := ConsumeFilters(enc)
		if err != nil || len(rest) != 0 || len(got) != len(fs) {
			return false
		}
		for i := range fs {
			if got[i].Key != fs[i].Key || got[i].Op != fs[i].Op || len(got[i].Args) != len(fs[i].Args) {
				return false
			}
			for j := range fs[i].Args {
				a, b := got[i].Args[j], fs[i].Args[j]
				if a.Kind() != b.Kind() || (b.Kind() == KindString && a.Str() != b.Str()) {
					return false
				}
				if b.Kind() != KindString && a.num != b.num {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsumeFilterErrors(t *testing.T) {
	if _, _, err := ConsumeFilters(nil); err == nil {
		t.Error("empty filter list input should error")
	}
	if _, _, err := ConsumeFilter([]byte{1, 'k'}); err == nil {
		t.Error("truncated filter should error")
	}
	// Filter whose arg list is cut off.
	enc := AppendFilter(nil, Filter{Key: "k", Op: EQ, Args: []Value{Int(1)}})
	if _, _, err := ConsumeFilter(enc[:len(enc)-4]); err == nil {
		t.Error("truncated filter args should error")
	}
}
