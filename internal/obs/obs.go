// Package obs serves a GraphTrek backend's operational state over HTTP:
// Prometheus-style counter and histogram exposition (/metrics), Go runtime
// profiling (/debug/pprof/*), per-execution trace inspection (/traces),
// the cluster event journal (/events), the replication status document
// (/status), a liveness probe (/healthz) and a replication-aware readiness
// probe (/readyz). The endpoint is opt-in — a server without an obs
// listener runs exactly as before — and read-only: nothing served here can
// mutate engine state.
//
// The /metrics exposition is generated from metrics.Fields() — the
// canonical enumeration of the engine's §VII-A counters — plus
// Target.Histograms() for the native latency histograms, so every counter
// and histogram the engine records is scrapeable without obs needing a
// per-metric update. Queue gauges and trace-ring statistics ride along.
package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"graphtrek/internal/events"
	"graphtrek/internal/metrics"
	"graphtrek/internal/status"
	"graphtrek/internal/trace"
)

// Target is the engine surface obs exposes; *core.Server implements it.
type Target interface {
	// ID is the backend's node id, used as the exposition's server label.
	ID() int
	// Metrics snapshots the engine counters.
	Metrics() metrics.Snapshot
	// Histograms snapshots the native latency histograms.
	Histograms() []metrics.HistogramSnapshot
	// QueueLen is the shared executor's current buffered item count.
	QueueLen() int
	// QueueHighWater is the executor queue's depth high-water mark.
	QueueHighWater() int
	// TraceSpans returns buffered execution spans (travel 0: all).
	TraceSpans(travel uint64) []trace.Span
	// TraceSummaries returns coordinator travel summaries.
	TraceSummaries() []trace.TravelSummary
	// TraceStats reports the trace ring's buffering counters.
	TraceStats() trace.RingStats
	// SlowTravels returns captured slow-traversal DAGs, oldest first.
	SlowTravels() []*trace.DAG
	// Events returns the buffered control-plane event journal.
	Events() []events.Event
	// Status assembles the live replication status document.
	Status() status.Server
	// Ready reports the replication-aware readiness verdict.
	Ready() status.Readiness
}

// NewMux builds the observability handler for one or more local backends
// (one in cmd/graphtrek-server; several when a whole simulated cluster
// runs in-process).
func NewMux(targets ...Target) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		serveMetrics(w, targets)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraces(w, r, targets)
	})
	mux.HandleFunc("/traces/dag", func(w http.ResponseWriter, r *http.Request) {
		serveDAG(w, r, targets, false)
	})
	mux.HandleFunc("/traces/chrome", func(w http.ResponseWriter, r *http.Request) {
		serveDAG(w, r, targets, true)
	})
	mux.HandleFunc("/traces/slow", func(w http.ResponseWriter, r *http.Request) {
		serveSlow(w, targets)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(w, targets)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		serveStatus(w, targets)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		serveReady(w, targets)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveMetrics renders the Prometheus text exposition format (version
// 0.0.4): every metrics.Fields() counter per target (process-wide fields
// once, unlabeled), the native latency histograms in real histogram form
// (_bucket/_sum/_count with seconds-valued le bounds), then the scheduler
// and trace-ring gauges.
func serveMetrics(w http.ResponseWriter, targets []Target) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snaps := make([]metrics.Snapshot, len(targets))
	for i, t := range targets {
		snaps[i] = t.Metrics()
	}
	// Process-wide fields read the runtime once: in-process clusters share
	// one Go runtime, and per-server copies of the same value would multiply
	// under a PromQL sum().
	var rt metrics.Snapshot
	metrics.ReadRuntime(&rt)
	for _, f := range metrics.Fields() {
		typ := "counter"
		if f.Gauge {
			typ = "gauge"
		}
		fmt.Fprintf(w, "# HELP graphtrek_%s %s\n", f.Name, f.Help)
		fmt.Fprintf(w, "# TYPE graphtrek_%s %s\n", f.Name, typ)
		if f.Process {
			fmt.Fprintf(w, "graphtrek_%s %d\n", f.Name, f.Get(rt))
			continue
		}
		for i, t := range targets {
			fmt.Fprintf(w, "graphtrek_%s{server=%q} %d\n", f.Name, strconv.Itoa(t.ID()), f.Get(snaps[i]))
		}
	}
	serveHistograms(w, targets)
	extra := []struct {
		name, help, typ string
		get             func(Target) int64
	}{
		{"queue_len", "Items currently buffered in the shared executor queue.", "gauge",
			func(t Target) int64 { return int64(t.QueueLen()) }},
		{"queue_high_water", "Executor queue depth high-water mark.", "gauge",
			func(t Target) int64 { return int64(t.QueueHighWater()) }},
		{"trace_spans_recorded_total", "Execution spans recorded since start.", "counter",
			func(t Target) int64 { return int64(t.TraceStats().SpansRecorded) }},
		{"trace_spans_buffered", "Execution spans currently held in the trace ring.", "gauge",
			func(t Target) int64 { return int64(t.TraceStats().SpansBuffered) }},
		{"trace_spans_evicted_total", "Execution spans evicted from the trace ring.", "counter",
			func(t Target) int64 { return int64(t.TraceStats().SpansEvicted) }},
		{"trace_summaries_buffered", "Coordinator travel summaries currently buffered.", "gauge",
			func(t Target) int64 { return int64(t.TraceStats().Summaries) }},
	}
	for _, e := range extra {
		fmt.Fprintf(w, "# HELP graphtrek_%s %s\n", e.name, e.help)
		fmt.Fprintf(w, "# TYPE graphtrek_%s %s\n", e.name, e.typ)
		for _, t := range targets {
			fmt.Fprintf(w, "graphtrek_%s{server=%q} %d\n", e.name, strconv.Itoa(t.ID()), e.get(t))
		}
	}
}

// formatLE renders a nanosecond bucket bound as a seconds-valued le label,
// the base unit Prometheus histograms use for durations.
func formatLE(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// serveHistograms renders every Target.Histograms() entry as a native
// Prometheus histogram: cumulative _bucket series over the shared
// metrics.DefaultLadderNs bound ladder plus +Inf, then _sum (seconds) and
// _count. Every ladder bound coincides with a native bucket upper edge
// (histogram.go pins the alignment), so the cumulative counts are exact,
// not interpolated.
func serveHistograms(w http.ResponseWriter, targets []Target) {
	if len(targets) == 0 {
		return
	}
	hists := make([][]metrics.HistogramSnapshot, len(targets))
	for i, t := range targets {
		hists[i] = t.Histograms()
	}
	for hi, h := range hists[0] {
		name := "graphtrek_" + h.Name
		fmt.Fprintf(w, "# HELP %s %s\n", name, h.Help)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for i, t := range targets {
			hs := hists[i][hi].Hist
			srv := strconv.Itoa(t.ID())
			for _, bound := range metrics.DefaultLadderNs {
				fmt.Fprintf(w, "%s_bucket{server=%q,le=%q} %d\n", name, srv, formatLE(bound), hs.CumulativeLE(bound))
			}
			fmt.Fprintf(w, "%s_bucket{server=%q,le=\"+Inf\"} %d\n", name, srv, hs.Count)
			fmt.Fprintf(w, "%s_sum{server=%q} %s\n", name, srv, strconv.FormatFloat(float64(hs.Sum)/1e9, 'g', -1, 64))
			fmt.Fprintf(w, "%s_count{server=%q} %d\n", name, srv, hs.Count)
		}
	}
}

// serveEvents answers /events with every target's journal merged into one
// wall-clock-ordered timeline (ties: server, then per-server sequence).
func serveEvents(w http.ResponseWriter, targets []Target) {
	all := make([]events.Event, 0, 64)
	for _, t := range targets {
		all = append(all, t.Events()...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].TimeUnixNano != all[j].TimeUnixNano {
			return all[i].TimeUnixNano < all[j].TimeUnixNano
		}
		if all[i].Server != all[j].Server {
			return all[i].Server < all[j].Server
		}
		return all[i].Seq < all[j].Seq
	})
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(all)
}

// serveStatus answers /status with one status document per target,
// ordered as the targets were registered.
func serveStatus(w http.ResponseWriter, targets []Target) {
	all := make([]status.Server, 0, len(targets))
	for _, t := range targets {
		all = append(all, t.Status())
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(all)
}

// readyReport is the /readyz JSON body: the aggregate verdict plus each
// target's readiness detail.
type readyReport struct {
	Ready   bool          `json:"ready"`
	Servers []serverReady `json:"servers"`
}

type serverReady struct {
	Server  int      `json:"server"`
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// serveReady answers /readyz: 200 when every target can meet its
// durability contract, 503 with per-server reasons otherwise. Distinct
// from /healthz (pure liveness): a server mid-handoff or below write
// quorum is alive but should be rotated out of write traffic.
func serveReady(w http.ResponseWriter, targets []Target) {
	rep := readyReport{Ready: true}
	for _, t := range targets {
		r := t.Ready()
		rep.Servers = append(rep.Servers, serverReady{Server: t.ID(), Ready: r.Ready, Reasons: r.Reasons})
		if !r.Ready {
			rep.Ready = false
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if !rep.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// TraceReport is the /traces JSON document.
type TraceReport struct {
	// Travel is the queried traversal id; 0 means everything buffered.
	Travel uint64 `json:"travel"`
	// Summaries holds coordinator records for the queried traversal(s).
	Summaries []trace.TravelSummary `json:"summaries,omitempty"`
	// Steps is the per-(step, server) aggregate of the matching spans.
	Steps []trace.StepStat `json:"steps"`
	// Spans lists the matching raw spans, oldest first per server.
	Spans []trace.Span `json:"spans"`
}

// jsonError writes an error as a JSON body with the right Content-Type —
// machine consumers of these endpoints should never have to sniff
// text/plain error pages out of an otherwise-JSON API.
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// travelParam parses the travel query parameter; ok is false after an
// error response has been written.
func travelParam(w http.ResponseWriter, r *http.Request) (travel uint64, ok bool) {
	q := r.URL.Query().Get("travel")
	if q == "" {
		return 0, true
	}
	v, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad travel id: "+err.Error())
		return 0, false
	}
	return v, true
}

// serveTraces answers /traces?travel=<id> with the buffered spans,
// their per-step aggregate, and any matching coordinator summaries. A
// specific travel id that matches nothing — no spans, no summary on any
// target — is a 404, not an empty 200: the traversal either never ran
// here or its trace has been evicted, and callers should be able to tell
// that apart from a traced traversal that produced no work.
func serveTraces(w http.ResponseWriter, r *http.Request, targets []Target) {
	travel, ok := travelParam(w, r)
	if !ok {
		return
	}
	rep := TraceReport{Travel: travel}
	for _, t := range targets {
		rep.Spans = append(rep.Spans, t.TraceSpans(travel)...)
		for _, sum := range t.TraceSummaries() {
			if travel == 0 || sum.Travel == travel {
				rep.Summaries = append(rep.Summaries, sum)
			}
		}
	}
	if travel != 0 && len(rep.Spans) == 0 && len(rep.Summaries) == 0 {
		jsonError(w, http.StatusNotFound, fmt.Sprintf("no trace data for travel %d (never traced here, or evicted)", travel))
		return
	}
	sort.Slice(rep.Summaries, func(i, j int) bool { return rep.Summaries[i].Travel < rep.Summaries[j].Travel })
	rep.Steps = trace.Aggregate(rep.Spans)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// assembleDAG joins the targets' spans for one traversal into its causal
// DAG, using the coordinator summary when one of the targets holds it.
func assembleDAG(targets []Target, travel uint64) *trace.DAG {
	var spans []trace.Span
	var summary *trace.TravelSummary
	var dropped uint64
	for _, t := range targets {
		spans = append(spans, t.TraceSpans(travel)...)
		dropped += t.TraceStats().SpansEvicted
		for _, sum := range t.TraceSummaries() {
			if sum.Travel == travel {
				s := sum
				summary = &s
			}
		}
	}
	if len(spans) == 0 && summary == nil {
		return nil
	}
	d := trace.Assemble(travel, spans, summary)
	d.SpansDropped = dropped
	return d
}

// serveDAG answers /traces/dag?travel=<id> with the traversal's assembled
// causal DAG (ledger cross-check, critical path), or — with chrome set —
// /traces/chrome?travel=<id> with the same DAG rendered in Chrome
// trace_event format for about:tracing / Perfetto.
func serveDAG(w http.ResponseWriter, r *http.Request, targets []Target, chrome bool) {
	travel, ok := travelParam(w, r)
	if !ok {
		return
	}
	if travel == 0 {
		jsonError(w, http.StatusBadRequest, "travel parameter required (a DAG is per-traversal)")
		return
	}
	d := assembleDAG(targets, travel)
	if d == nil {
		jsonError(w, http.StatusNotFound, fmt.Sprintf("no trace data for travel %d (never traced here, or evicted)", travel))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if chrome {
		buf, err := d.ChromeTrace()
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Write(buf)
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(d)
}

// serveSlow answers /traces/slow with every captured slow-traversal DAG
// across the targets, oldest first per target.
func serveSlow(w http.ResponseWriter, targets []Target) {
	slow := make([]*trace.DAG, 0, 8)
	for _, t := range targets {
		slow = append(slow, t.SlowTravels()...)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(slow)
}

// ListenAndServe starts the observability endpoint on addr in a new
// goroutine and returns the server for shutdown. Errors after startup
// (including normal shutdown) are reported to errFn if non-nil.
func ListenAndServe(addr string, errFn func(error), targets ...Target) *http.Server {
	srv := &http.Server{Addr: addr, Handler: NewMux(targets...)}
	go func() {
		err := srv.ListenAndServe()
		if err != nil && err != http.ErrServerClosed && errFn != nil {
			errFn(err)
		}
	}()
	return srv
}
