package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"graphtrek"
	"graphtrek/internal/metrics"
	"graphtrek/internal/obs"
)

// startCluster builds a small cluster, loads the Fig 1-style audit graph,
// runs one traversal per server-side engine, and serves its backends
// through an obs mux.
func startCluster(t *testing.T) (*graphtrek.Cluster, *httptest.Server) {
	t.Helper()
	c, err := graphtrek.NewCluster(graphtrek.Options{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	load := func(v graphtrek.Vertex) {
		if err := c.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	load(graphtrek.Vertex{ID: 1, Label: "User"})
	load(graphtrek.Vertex{ID: 10, Label: "Execution"})
	load(graphtrek.Vertex{ID: 11, Label: "Execution"})
	load(graphtrek.Vertex{ID: 20, Label: "File", Props: graphtrek.Props{"type": graphtrek.String("text")}})
	for _, e := range []graphtrek.Edge{
		{Src: 1, Dst: 10, Label: "run"},
		{Src: 1, Dst: 11, Label: "run"},
		{Src: 10, Dst: 20, Label: "read"},
		{Src: 11, Dst: 20, Label: "read"},
	} {
		if err := c.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, mode := range []graphtrek.Mode{graphtrek.ModeGraphTrek, graphtrek.ModeSync, graphtrek.ModeAsyncPlain} {
		res, err := c.Run(graphtrek.V(1).E("run").E("read"), mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res) != 1 || res[0] != 20 {
			t.Fatalf("%v: results = %v", mode, res)
		}
	}
	targets := make([]obs.Target, c.Servers())
	for i := range targets {
		targets[i] = c.Server(i)
	}
	ts := httptest.NewServer(obs.NewMux(targets...))
	t.Cleanup(ts.Close)
	return c, ts
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body), resp
}

// parseExposition extracts metric values from the Prometheus text format,
// keyed by name, then series key: "" for an unlabeled (process-wide)
// series, the server id for a {server="N"} series, and "N|<le>" for a
// histogram bucket {server="N",le="<le>"}.
func parseExposition(t *testing.T, body string) map[string]map[string]float64 {
	t.Helper()
	out := make(map[string]map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name, key, valStr string
		if labeled, rest, ok := strings.Cut(line, "} "); ok {
			valStr = rest
			var labels string
			name, labels, ok = strings.Cut(labeled, "{")
			if !ok {
				t.Fatalf("bad exposition line %q", line)
			}
			srv, le := "", ""
			for _, kv := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					t.Fatalf("bad label %q in %q", kv, line)
				}
				v = strings.Trim(v, `"`)
				switch k {
				case "server":
					srv = v
				case "le":
					le = v
				default:
					t.Fatalf("unexpected label %q in %q", k, line)
				}
			}
			key = srv
			if le != "" {
				key = srv + "|" + le
			}
		} else {
			var ok bool
			name, valStr, ok = strings.Cut(line, " ")
			if !ok {
				t.Fatalf("bad exposition line %q", line)
			}
			key = ""
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if out[name] == nil {
			out[name] = make(map[string]float64)
		}
		out[name][key] = val
	}
	return out
}

// TestMetricsEndpointExposesEveryCounter is the e2e gate: after real
// traversals, /metrics must expose every metrics.Fields() counter for
// every server, and the paper's §VII-A identity redundant + combined +
// real == received must hold from scraped values alone.
func TestMetricsEndpointExposesEveryCounter(t *testing.T) {
	c, ts := startCluster(t)
	body, resp := get(t, ts.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	vals := parseExposition(t, body)
	for _, f := range metrics.Fields() {
		name := "graphtrek_" + f.Name
		series, ok := vals[name]
		if !ok {
			t.Errorf("counter %s missing from /metrics", name)
			continue
		}
		if f.Process {
			// Process-wide fields are emitted once, unlabeled: per-server
			// copies of one Go runtime would multiply under a PromQL sum().
			if _, ok := series[""]; !ok {
				t.Errorf("process field %s missing its unlabeled series", name)
			}
			if len(series) != 1 {
				t.Errorf("process field %s has %d series, want 1 unlabeled", name, len(series))
			}
		} else {
			for i := 0; i < c.Servers(); i++ {
				if _, ok := series[strconv.Itoa(i)]; !ok {
					t.Errorf("counter %s missing series for server %d", name, i)
				}
			}
		}
		if !strings.Contains(body, "# HELP "+name+" ") || !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("counter %s missing HELP/TYPE comments", name)
		}
	}
	var received float64
	for i := 0; i < c.Servers(); i++ {
		srv := strconv.Itoa(i)
		got := vals["graphtrek_redundant_total"][srv] +
			vals["graphtrek_combined_total"][srv] +
			vals["graphtrek_real_io_total"][srv]
		if got != vals["graphtrek_received_total"][srv] {
			t.Errorf("server %s: redundant+combined+real = %v, received = %v", srv, got, vals["graphtrek_received_total"][srv])
		}
		received += vals["graphtrek_received_total"][srv]
	}
	if received == 0 {
		t.Error("no requests recorded across the cluster")
	}
	for _, gauge := range []string{
		"graphtrek_queue_len", "graphtrek_queue_high_water",
		"graphtrek_trace_spans_recorded_total", "graphtrek_trace_spans_buffered",
		"graphtrek_trace_spans_evicted_total", "graphtrek_trace_summaries_buffered",
	} {
		if _, ok := vals[gauge]; !ok {
			t.Errorf("%s missing from /metrics", gauge)
		}
	}
	if vals["graphtrek_trace_spans_recorded_total"]["0"]+
		vals["graphtrek_trace_spans_recorded_total"]["1"]+
		vals["graphtrek_trace_spans_recorded_total"]["2"] == 0 {
		t.Error("no spans recorded across the cluster")
	}
}

// TestMetricsHistogramExposition is the e2e gate for the native latency
// histograms: every histogram is exposed in real Prometheus histogram form
// (cumulative _bucket series over the shared le ladder, _sum, _count), the
// cumulative counts are monotone, the +Inf bucket equals _count, and the
// _count series cross-check against the plain counters that pin them —
// the §VII-A-style identity for the latency pipeline.
func TestMetricsHistogramExposition(t *testing.T) {
	c, ts := startCluster(t)
	body, _ := get(t, ts.URL+"/metrics")
	vals := parseExposition(t, body)
	hists := []string{
		"graphtrek_travel_latency_seconds",
		"graphtrek_queue_wait_seconds",
		"graphtrek_step_compute_seconds",
		"graphtrek_quorum_write_seconds",
		"graphtrek_feed_lag_seconds",
	}
	les := make([]string, 0, len(metrics.DefaultLadderNs)+1)
	for _, ns := range metrics.DefaultLadderNs {
		les = append(les, strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64))
	}
	les = append(les, "+Inf")
	for _, name := range hists {
		if !strings.Contains(body, "# TYPE "+name+" histogram") {
			t.Errorf("%s not declared as TYPE histogram", name)
		}
		buckets, sums, counts := vals[name+"_bucket"], vals[name+"_sum"], vals[name+"_count"]
		for i := 0; i < c.Servers(); i++ {
			srv := strconv.Itoa(i)
			prev := -1.0
			for _, le := range les {
				v, ok := buckets[srv+"|"+le]
				if !ok {
					t.Fatalf("%s missing bucket le=%q for server %s", name, le, srv)
				}
				if v < prev {
					t.Errorf("%s server %s: bucket le=%q = %v < previous %v (non-monotone)", name, srv, le, v, prev)
				}
				prev = v
			}
			count, ok := counts[srv]
			if !ok {
				t.Fatalf("%s missing _count for server %s", name, srv)
			}
			if inf := buckets[srv+"|+Inf"]; inf != count {
				t.Errorf("%s server %s: +Inf bucket %v != _count %v", name, srv, inf, count)
			}
			if _, ok := sums[srv]; !ok {
				t.Errorf("%s missing _sum for server %s", name, srv)
			}
			if count == 0 && sums[srv] != 0 {
				t.Errorf("%s server %s: zero count but sum %v", name, srv, sums[srv])
			}
		}
	}
	// Count pins: one end-to-end latency sample per coordinator-ledgered
	// traversal (startCluster runs 3), one queue-wait and one step-compute
	// sample per popped executor group.
	var travels float64
	for i := 0; i < c.Servers(); i++ {
		srv := strconv.Itoa(i)
		travels += vals["graphtrek_travel_latency_seconds_count"][srv]
		groups := vals["graphtrek_queue_groups_total"][srv]
		if got := vals["graphtrek_queue_wait_seconds_count"][srv]; got != groups {
			t.Errorf("server %s: queue_wait count %v != queue_groups_total %v", srv, got, groups)
		}
		if got := vals["graphtrek_step_compute_seconds_count"][srv]; got != groups {
			t.Errorf("server %s: step_compute count %v != queue_groups_total %v", srv, got, groups)
		}
		if feed := vals["graphtrek_feed_records_total"][srv]; vals["graphtrek_feed_lag_seconds_count"][srv] != feed {
			t.Errorf("server %s: feed_lag count %v != feed_records_total %v", srv, vals["graphtrek_feed_lag_seconds_count"][srv], feed)
		}
	}
	if travels != 3 {
		t.Errorf("travel_latency count across cluster = %v, want 3 (one per traversal)", travels)
	}
}

// TestEventsEndpoint pins /events to a valid JSON event array. An
// unreplicated, fault-free cluster records no control-plane events, so the
// timeline is empty — but it must still be a well-formed array.
func TestEventsEndpoint(t *testing.T) {
	_, ts := startCluster(t)
	body, resp := get(t, ts.URL+"/events")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var evs []struct {
		Type         string `json:"type"`
		TimeUnixNano int64  `json:"time_unix_nano"`
		Server       int    `json:"server"`
	}
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/events is not a JSON array: %v\n%s", err, body)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeUnixNano < evs[i-1].TimeUnixNano {
			t.Errorf("merged timeline out of order at %d: %d after %d", i, evs[i].TimeUnixNano, evs[i-1].TimeUnixNano)
		}
	}
}

// TestStatusEndpoint checks /status end to end on an unreplicated cluster:
// one document per server, executor gauges populated, cache statistics
// present, no partition rows, and every server ready.
func TestStatusEndpoint(t *testing.T) {
	c, ts := startCluster(t)
	body, resp := get(t, ts.URL+"/status")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var docs []struct {
		Server     int  `json:"server"`
		Ready      bool `json:"ready"`
		QueueLen   int  `json:"queue_len"`
		HighWater  int  `json:"queue_high_water"`
		Partitions []struct {
			Part int `json:"part"`
		} `json:"partitions"`
		Cache struct {
			VtxHits   int64 `json:"vtx_hits"`
			VtxMisses int64 `json:"vtx_misses"`
			AdjHits   int64 `json:"adj_hits"`
			AdjMisses int64 `json:"adj_misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &docs); err != nil {
		t.Fatalf("/status is not a JSON array: %v\n%s", err, body)
	}
	if len(docs) != c.Servers() {
		t.Fatalf("%d status documents, want %d", len(docs), c.Servers())
	}
	var touched int64
	for i, d := range docs {
		if d.Server != i {
			t.Errorf("document %d is for server %d", i, d.Server)
		}
		if !d.Ready {
			t.Errorf("server %d not ready on an unreplicated cluster", d.Server)
		}
		if len(d.Partitions) != 0 {
			t.Errorf("server %d reports %d partitions without replication", d.Server, len(d.Partitions))
		}
		if d.HighWater < 0 || d.QueueLen < 0 {
			t.Errorf("server %d: negative queue gauges %d/%d", d.Server, d.QueueLen, d.HighWater)
		}
		touched += d.Cache.VtxHits + d.Cache.VtxMisses + d.Cache.AdjHits + d.Cache.AdjMisses
	}
	_ = touched // in-memory stores may not expose cache statistics at all
}

// TestReadyzEndpoint pins /readyz on a healthy cluster: 200 with an
// aggregate ready verdict and one per-server entry.
func TestReadyzEndpoint(t *testing.T) {
	c, ts := startCluster(t)
	body, resp := get(t, ts.URL+"/readyz")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var rep struct {
		Ready   bool `json:"ready"`
		Servers []struct {
			Server  int      `json:"server"`
			Ready   bool     `json:"ready"`
			Reasons []string `json:"reasons"`
		} `json:"servers"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Ready {
		t.Errorf("healthy cluster not ready: %s", body)
	}
	if len(rep.Servers) != c.Servers() {
		t.Errorf("%d server entries, want %d", len(rep.Servers), c.Servers())
	}
	for _, s := range rep.Servers {
		if !s.Ready || len(s.Reasons) != 0 {
			t.Errorf("server %d unready on a healthy cluster: %v", s.Server, s.Reasons)
		}
	}
}

func TestTracesEndpoint(t *testing.T) {
	_, ts := startCluster(t)
	body, resp := get(t, ts.URL+"/traces")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var rep obs.TraceReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) == 0 || len(rep.Steps) == 0 {
		t.Fatalf("empty trace report: %d spans, %d steps", len(rep.Spans), len(rep.Steps))
	}
	if len(rep.Summaries) != 3 {
		t.Errorf("summaries = %d, want 3 (one per traversal)", len(rep.Summaries))
	}
	// Filter by one summarized traversal: only its spans come back, and
	// their count matches the ledger accounting.
	sum := rep.Summaries[0]
	body, _ = get(t, fmt.Sprintf("%s/traces?travel=%d", ts.URL, sum.Travel))
	var one obs.TraceReport
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Summaries) != 1 || one.Summaries[0].Travel != sum.Travel {
		t.Errorf("filtered summaries = %+v", one.Summaries)
	}
	for _, sp := range one.Spans {
		if sp.Travel != sum.Travel {
			t.Errorf("span for travel %d leaked into filter for %d", sp.Travel, sum.Travel)
		}
	}
	if len(one.Spans) != sum.Created {
		t.Errorf("%d spans for travel %d, ledger created %d", len(one.Spans), sum.Travel, sum.Created)
	}
}

func TestTracesBadQuery(t *testing.T) {
	_, ts := startCluster(t)
	resp, err := http.Get(ts.URL + "/traces?travel=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

// getError expects a non-200 answer and returns its decoded JSON error
// body, pinning both the status and the machine-readable error contract.
func getError(t *testing.T, url string, wantCode int) map[string]string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d\n%s", url, resp.StatusCode, wantCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: error content type %q, want application/json", url, ct)
	}
	var msg map[string]string
	if err := json.Unmarshal(body, &msg); err != nil {
		t.Fatalf("GET %s: error body is not JSON: %v\n%s", url, err, body)
	}
	if msg["error"] == "" {
		t.Fatalf("GET %s: error body has no error field: %s", url, body)
	}
	return msg
}

// firstTravel pulls a summarized traversal id off /traces.
func firstTravel(t *testing.T, ts *httptest.Server) obs.TraceReport {
	t.Helper()
	body, _ := get(t, ts.URL+"/traces")
	var rep obs.TraceReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Summaries) == 0 {
		t.Fatal("no traversal summaries buffered")
	}
	return rep
}

// TestDAGEndpoint checks /traces/dag end to end: the assembled DAG for a
// completed traversal passes the ledger cross-check, and its node count,
// roots and critical path come back in the JSON document.
func TestDAGEndpoint(t *testing.T) {
	_, ts := startCluster(t)
	sum := firstTravel(t, ts).Summaries[0]
	body, resp := get(t, fmt.Sprintf("%s/traces/dag?travel=%d", ts.URL, sum.Travel))
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var dag struct {
		Travel  uint64           `json:"travel"`
		Summary *json.RawMessage `json:"summary"`
		Nodes   []struct {
			Exec   uint64 `json:"exec"`
			Parent uint64 `json:"parent"`
		} `json:"nodes"`
		Roots    []uint64 `json:"roots"`
		Orphans  []uint64 `json:"orphans"`
		Critical *struct {
			DurationNs int64 `json:"duration_ns"`
		} `json:"critical_path"`
	}
	if err := json.Unmarshal([]byte(body), &dag); err != nil {
		t.Fatal(err)
	}
	if dag.Travel != sum.Travel {
		t.Errorf("dag travel = %d, want %d", dag.Travel, sum.Travel)
	}
	if len(dag.Nodes) != sum.Created {
		t.Errorf("dag nodes = %d, ledger created %d", len(dag.Nodes), sum.Created)
	}
	if len(dag.Orphans) != 0 {
		t.Errorf("orphans = %v on a fault-free fabric", dag.Orphans)
	}
	if len(dag.Roots) == 0 || dag.Summary == nil {
		t.Errorf("dag missing roots (%v) or summary", dag.Roots)
	}
	if dag.Critical == nil || dag.Critical.DurationNs <= 0 {
		t.Errorf("dag critical path = %+v", dag.Critical)
	}
	if dag.Critical != nil && dag.Critical.DurationNs > sum.ElapsedNs {
		t.Errorf("critical path %dns exceeds traversal elapsed %dns", dag.Critical.DurationNs, sum.ElapsedNs)
	}
}

// TestChromeEndpoint checks /traces/chrome emits parseable trace_event
// JSON with one slice per execution.
func TestChromeEndpoint(t *testing.T) {
	_, ts := startCluster(t)
	sum := firstTravel(t, ts).Summaries[0]
	body, resp := get(t, fmt.Sprintf("%s/traces/chrome?travel=%d", ts.URL, sum.Travel))
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var slices int
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			slices++
		}
	}
	if slices != sum.Created {
		t.Errorf("chrome export has %d slices, ledger created %d", slices, sum.Created)
	}
}

// TestDAGEndpointErrors pins the error contract of the DAG endpoints:
// missing travel parameter is a 400, an unknown travel a 404, and both
// carry JSON bodies.
func TestDAGEndpointErrors(t *testing.T) {
	_, ts := startCluster(t)
	getError(t, ts.URL+"/traces/dag", http.StatusBadRequest)
	getError(t, ts.URL+"/traces/dag?travel=banana", http.StatusBadRequest)
	getError(t, ts.URL+"/traces/dag?travel=999999", http.StatusNotFound)
	getError(t, ts.URL+"/traces/chrome?travel=999999", http.StatusNotFound)
	msg := getError(t, ts.URL+"/traces?travel=999999", http.StatusNotFound)
	if !strings.Contains(msg["error"], "999999") {
		t.Errorf("404 body does not name the travel: %q", msg["error"])
	}
}

// TestSlowEndpoint drives the slow-traversal recorder through HTTP: with a
// 1ns threshold every traversal is captured, and /traces/slow serves the
// assembled, ledger-complete DAGs.
func TestSlowEndpoint(t *testing.T) {
	c, err := graphtrek.NewCluster(graphtrek.Options{Servers: 2, SlowTravelNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for _, v := range []graphtrek.Vertex{{ID: 1, Label: "User"}, {ID: 10, Label: "Execution"}} {
		if err := c.AddVertex(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddEdge(graphtrek.Edge{Src: 1, Dst: 10, Label: "run"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(graphtrek.V(1).E("run"), graphtrek.ModeGraphTrek); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(obs.NewMux(c.Server(0), c.Server(1)))
	t.Cleanup(ts.Close)
	deadline := time.Now().Add(10 * time.Second)
	for {
		body, resp := get(t, ts.URL+"/traces/slow")
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q", ct)
		}
		var slow []struct {
			Travel uint64 `json:"travel"`
			Nodes  []struct {
				Exec uint64 `json:"exec"`
			} `json:"nodes"`
			Summary *struct {
				Created int `json:"created"`
			} `json:"summary"`
		}
		if err := json.Unmarshal([]byte(body), &slow); err != nil {
			t.Fatal(err)
		}
		if len(slow) > 0 {
			d := slow[0]
			if d.Summary == nil || len(d.Nodes) != d.Summary.Created {
				t.Fatalf("captured DAG inconsistent: %s", body)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no slow-traversal DAG served before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthAndPprof(t *testing.T) {
	_, ts := startCluster(t)
	body, _ := get(t, ts.URL+"/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz body = %q", body)
	}
	body, _ = get(t, ts.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profiles:\n%.200s", body)
	}
	body, _ = get(t, ts.URL+"/debug/pprof/goroutine?debug=1")
	if !strings.Contains(body, "goroutine profile") {
		t.Errorf("goroutine profile malformed:\n%.200s", body)
	}
}
