package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log-linear bucket histogram for latency-style
// nonnegative int64 samples (nanoseconds by convention). Buckets are
// base-2 octaves split into 4 linear sub-buckets each, so any quantile
// read from a snapshot is within 25% relative error of the exact sample
// (plus the sub-bucket floor granularity below 4ns, where buckets are
// exact). Writers are striped across independent cache lines to keep
// concurrent Record calls from serializing on one counter word; Snapshot
// folds the stripes. The zero value is ready.
type Histogram struct {
	stripes [histStripes]histStripe
}

const (
	// histStripes is the writer-stripe count; a power of two so the
	// stripe pick is a mask, sized for the worker-pool parallelism the
	// engine actually runs (not per-CPU: snapshots walk every stripe).
	histStripes = 8
	// HistBuckets is the bucket-array length. Index 0-3 hold the exact
	// values 0-3; from there each octave [2^e, 2^(e+1)) contributes 4
	// sub-buckets at (e-1)*4 .. (e-1)*4+3. The maximum index a 63-bit
	// value can reach is (62)*4+3 = 251, so 256 covers every int64.
	HistBuckets = 256
)

// histStripe is one writer lane. The pad keeps adjacent stripes on
// separate cache lines so independent writers do not false-share.
type histStripe struct {
	counts [HistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	_      [64]byte
}

// bucketIndex maps a sample to its bucket. Negative samples (clock
// retrogression under NTP steps) clamp to bucket 0 rather than corrupting
// the array.
func bucketIndex(v int64) int {
	if v < 4 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	n := uint64(v)
	e := bits.Len64(n) - 1
	return (e-1)*4 + int((n>>(uint(e)-2))&3)
}

// BucketUpper returns bucket i's inclusive upper bound. The sequence is
// strictly increasing, and every octave's last sub-bucket (i%4 == 3) ends
// exactly at 2^(e+1)-1 — which is why DefaultLadderNs bounds of the form
// (1<<k)-1 make cumulative bucket sums exact, not approximate.
func BucketUpper(i int) int64 {
	if i < 4 {
		return int64(i)
	}
	e := uint(i/4 + 1)
	if e >= 63 {
		// Unreachable from Record (a positive int64 tops out at octave
		// 62), but the tail buckets exist; saturate instead of
		// overflowing the shift.
		return int64(^uint64(0) >> 1)
	}
	sub := int64(i % 4)
	return int64(1)<<e + (sub+1)<<(e-2) - 1
}

// Record adds one sample. Safe for any number of concurrent callers.
func (h *Histogram) Record(v int64) {
	s := &h.stripes[splitmix64(uint64(v))&(histStripes-1)]
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	if v < 0 {
		v = 0
	}
	s.sum.Add(v)
}

// splitmix64 is the SplitMix64 finalizer — enough mixing that samples
// landing in one bucket still spread across stripes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Snapshot folds the stripes into a point-in-time copy. Concurrent with
// Record: a racing sample may appear in Counts but not yet Count (or vice
// versa) by at most the number of in-flight writers, which is why the
// cross-check invariants are asserted only at quiescence.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.counts {
			s.Counts[b] += st.counts[b].Load()
		}
		s.Count += st.count.Load()
		s.Sum += st.sum.Load()
	}
	return s
}

// HistSnapshot is an immutable histogram copy: per-bucket counts plus the
// total sample count and sum (nanoseconds).
type HistSnapshot struct {
	Counts [HistBuckets]uint64
	Count  uint64
	Sum    int64
}

// Merge returns the bucket-wise sum of two snapshots — how per-server
// histograms aggregate into a cluster distribution without losing
// quantile fidelity (identical bucket boundaries everywhere).
func (a HistSnapshot) Merge(b HistSnapshot) HistSnapshot {
	out := a
	for i := range b.Counts {
		out.Counts[i] += b.Counts[i]
	}
	out.Count += b.Count
	out.Sum += b.Sum
	return out
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// sample (nearest-rank), in the sample unit. q outside (0,1] clamps; an
// empty histogram reports 0.
func (a HistSnapshot) Quantile(q float64) int64 {
	if a.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(a.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range a.Counts {
		cum += c
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(HistBuckets - 1)
}

// CumulativeLE counts samples in buckets whose upper bound is <= bound —
// the `le` semantics of a Prometheus cumulative bucket. Exact when bound
// is itself a bucket upper bound (every DefaultLadderNs entry is).
func (a HistSnapshot) CumulativeLE(bound int64) uint64 {
	var cum uint64
	for i, c := range a.Counts {
		if BucketUpper(i) > bound {
			break
		}
		cum += c
	}
	return cum
}

// DefaultLadderNs is the exposition bucket ladder: (1<<k)-1 nanoseconds
// for even k from 10 to 36, spanning ~1µs to ~68.7s in 4x steps. Each
// bound coincides exactly with a native bucket's upper edge, so the
// cumulative counts served at these bounds are exact, not interpolated.
var DefaultLadderNs = func() []int64 {
	var out []int64
	for k := uint(10); k <= 36; k += 2 {
		out = append(out, int64(1)<<k-1)
	}
	return out
}()
